package storage

import (
	"errors"
	"math/rand/v2"
	"time"
)

// ErrTransient marks an I/O error worth retrying: the operation failed but
// the device/store is expected to recover (controller hiccup, queue-full,
// injected fault). Wrap with fmt.Errorf("%w: ...", ErrTransient) or implement
// interface{ Transient() bool }. Everything else — ErrClosed,
// ErrCorruptArtifact, not-found, media death — is permanent and not retried.
var ErrTransient = errors.New("storage: transient I/O error")

// IsTransient reports whether err should be retried.
func IsTransient(err error) bool {
	if errors.Is(err, ErrTransient) {
		return true
	}
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy bounds a retry loop: up to Attempts tries with exponential
// backoff from Base, capped at Max, with full jitter. The zero value never
// retries (one attempt, no sleep).
type RetryPolicy struct {
	Attempts int
	Base     time.Duration
	Max      time.Duration
}

// DefaultRetry is the policy used by the I/O pool and the checked artifact
// helpers: 6 attempts spanning roughly 200µs … 50ms of backoff, enough to
// ride out transient device hiccups without stalling a commit noticeably.
var DefaultRetry = RetryPolicy{Attempts: 6, Base: 200 * time.Microsecond, Max: 50 * time.Millisecond}

// Do runs op, retrying transient failures per the policy. It returns nil on
// the first success, the last error once attempts are exhausted, and a
// permanent error immediately.
func (p RetryPolicy) Do(op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(p.backoff(i))
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// backoff returns the sleep before retry attempt i (1-based), exponential
// with full jitter.
func (p RetryPolicy) backoff(i int) time.Duration {
	d := p.Base << (i - 1)
	if p.Max > 0 && (d > p.Max || d <= 0) {
		d = p.Max
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int64N(int64(d))) + d/2
}

// ReadAtRetry is dev.ReadAt with DefaultRetry applied to transient errors.
// It is the synchronous-read primitive for recovery and page verification,
// where a transient fault must not fail the whole operation.
func ReadAtRetry(dev Device, p []byte, off int64) (int, error) {
	var n int
	err := DefaultRetry.Do(func() error {
		var e error
		n, e = dev.ReadAt(p, off)
		return e
	})
	return n, err
}

// WriteAtRetry is dev.WriteAt with DefaultRetry applied to transient errors.
// A torn write followed by a successful retry rewrites the full range, so the
// final on-device bytes are whole.
func WriteAtRetry(dev Device, p []byte, off int64) (int, error) {
	var n int
	err := DefaultRetry.Do(func() error {
		var e error
		n, e = dev.WriteAt(p, off)
		return e
	})
	return n, err
}
