package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"strings"
)

// Checkpoint artifacts are framed in a checksum envelope so that recovery can
// distinguish a fully-written artifact from a torn write or bit rot before
// deserializing a single byte of it:
//
//	offset  size  field
//	0       4     magic "CPR1"
//	4       4     CRC32-C (Castagnoli) of payload, little-endian
//	8       8     payload length, little-endian
//	16      n     payload
//
// Decoding is strict: wrong magic, a length that disagrees with the actual
// artifact size (truncation / trailing garbage), or a checksum mismatch all
// yield ErrCorruptArtifact. The envelope is what WriteArtifactChecked /
// ReadArtifactChecked speak; faster and txdb persist every commit artifact —
// manifests included — through them.

// envelopeMagic marks a checksum-framed artifact.
var envelopeMagic = [4]byte{'C', 'P', 'R', '1'}

// envelopeHeaderSize is the framing overhead per artifact.
const envelopeHeaderSize = 16

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptArtifact reports that an artifact failed its integrity check:
// torn (truncated) write, bit corruption, or not a framed artifact at all.
// Test with errors.Is.
var ErrCorruptArtifact = errors.New("storage: corrupt checkpoint artifact")

// ErrNotFound reports that a named artifact does not exist. MemCheckpointStore
// wraps it; DirCheckpointStore surfaces fs.ErrNotExist. Use IsNotFound to
// cover both.
var ErrNotFound = errors.New("storage: artifact not found")

// IsNotFound reports whether err means "no such artifact" (as opposed to an
// I/O failure or corruption), for any CheckpointStore implementation.
func IsNotFound(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, fs.ErrNotExist)
}

// EncodeArtifact frames payload in the checksum envelope.
func EncodeArtifact(payload []byte) []byte {
	out := make([]byte, envelopeHeaderSize+len(payload))
	copy(out[0:4], envelopeMagic[:])
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint64(out[8:16], uint64(len(payload)))
	copy(out[envelopeHeaderSize:], payload)
	return out
}

// DecodeArtifact strips and verifies the checksum envelope, returning the
// payload. The returned slice aliases data. Any framing or checksum violation
// returns an error wrapping ErrCorruptArtifact.
func DecodeArtifact(data []byte) ([]byte, error) {
	if len(data) < envelopeHeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, shorter than the %d-byte envelope header",
			ErrCorruptArtifact, len(data), envelopeHeaderSize)
	}
	if [4]byte(data[0:4]) != envelopeMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorruptArtifact, string(data[0:4]))
	}
	wantCRC := binary.LittleEndian.Uint32(data[4:8])
	wantLen := binary.LittleEndian.Uint64(data[8:16])
	payload := data[envelopeHeaderSize:]
	if uint64(len(payload)) != wantLen {
		return nil, fmt.Errorf("%w: payload is %d bytes, header says %d (torn write?)",
			ErrCorruptArtifact, len(payload), wantLen)
	}
	if got := crc32.Checksum(payload, castagnoli); got != wantCRC {
		return nil, fmt.Errorf("%w: CRC32C mismatch (stored %08x, computed %08x)",
			ErrCorruptArtifact, wantCRC, got)
	}
	return payload, nil
}

// WriteArtifactChecked persists payload under name inside the checksum
// envelope, retrying transient store errors with DefaultRetry. A torn write
// that does manage to persist a prefix is repaired by the retry (the artifact
// is rewritten whole); an exhausted or permanent error is returned so the
// caller can abort its commit cleanly.
func WriteArtifactChecked(cs CheckpointStore, name string, payload []byte) error {
	return WriteArtifactCheckedObserved(cs, name, payload, nil)
}

// WriteArtifactCheckedObserved is WriteArtifactChecked with a retry hook:
// onRetry(attempt, err) fires after each transient failure that will be
// retried (attempt counts failed tries from 1). The flight recorder uses it
// to log artifact-retry events.
func WriteArtifactCheckedObserved(cs CheckpointStore, name string, payload []byte, onRetry func(attempt int, err error)) error {
	framed := EncodeArtifact(payload)
	attempt := 0
	return DefaultRetry.Do(func() error {
		attempt++
		err := WriteArtifact(cs, name, framed)
		if err != nil && onRetry != nil && IsTransient(err) && attempt < DefaultRetry.Attempts {
			onRetry(attempt, err)
		}
		return err
	})
}

// ReadArtifactChecked reads the named artifact, verifies its envelope, and
// returns the payload. Transient read errors are retried with DefaultRetry;
// corruption is not retried at this level (the bytes at rest are wrong — the
// caller decides whether a fallback commit exists). Not-found errors satisfy
// IsNotFound.
func ReadArtifactChecked(cs CheckpointStore, name string) ([]byte, error) {
	var payload []byte
	err := DefaultRetry.Do(func() error {
		data, err := ReadArtifact(cs, name)
		if err != nil {
			return err
		}
		payload, err = DecodeArtifact(data)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("storage: artifact %q: %w", name, err)
	}
	return payload, nil
}

// VerifyArtifact checks the named artifact's envelope without returning its
// payload. It reports nil for a verifiable artifact, an ErrCorruptArtifact-
// wrapping error for a damaged one, and an IsNotFound error if absent.
func VerifyArtifact(cs CheckpointStore, name string) error {
	_, err := ReadArtifactChecked(cs, name)
	return err
}

// tokenFromArtifact extracts the commit token from an artifact name of the
// form "<kind>-<token>" for the given kind prefix (e.g. kind "meta" matches
// "meta-ckpt-000007"). The bool reports whether name has that form.
func tokenFromArtifact(name, kind string) (string, bool) {
	if strings.HasPrefix(name, kind+"-") {
		return name[len(kind)+1:], true
	}
	return "", false
}
