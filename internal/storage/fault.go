package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Fault injection wraps any Device / CheckpointStore with a deterministic,
// seeded fault schedule so the crash-recovery and self-healing paths can be
// driven, reproducibly, through every failure mode the integrity layer
// claims to survive:
//
//   - transient I/O errors  — fail this operation; a retry succeeds
//   - permanent failure     — every operation fails until Heal()
//   - torn writes           — a prefix of the data reaches the medium, then
//     the operation errors (crash mid-write)
//   - bit-flip corruption   — reads return data with one bit flipped
//   - latency spikes        — an operation stalls for a configured duration
//   - named crash points    — a callback fires at a precise instant (before /
//     mid- / after a named artifact write, or at the Nth device write) so a
//     test can snapshot state Clone()-style exactly there
//
// Decisions are drawn from a splitmix64 stream keyed by (Seed, operation
// index, fault kind): the schedule of decisions is a pure function of the
// seed, independent of wall time. Under concurrency the assignment of
// decisions to operations follows scheduling order, so a seed reproduces the
// same fault pressure, not necessarily the same victim ops.

// ErrInjectedPermanent is the error every operation returns after
// Injector.FailPermanently (until Heal). It is not transient: retries stop
// immediately and the caller must abort cleanly.
var ErrInjectedPermanent = errors.New("storage: permanent device failure (injected)")

// errInjectedTransient is wrapped by all retryable injected faults.
var errInjectedTransient = fmt.Errorf("%w (injected)", ErrTransient)

// FaultConfig parameterizes an Injector. Rates are probabilities in [0,1]
// evaluated per operation; zero disables that fault class.
type FaultConfig struct {
	// Seed keys the deterministic decision stream.
	Seed uint64
	// ReadErrorRate / WriteErrorRate inject transient failures on reads /
	// writes (both device I/O and checkpoint-store artifact I/O).
	ReadErrorRate  float64
	WriteErrorRate float64
	// TornWriteRate makes a write persist only a prefix and then fail
	// (transient, so a retry rewrites the range whole).
	TornWriteRate float64
	// BitFlipRate corrupts one bit of the data returned by a read.
	BitFlipRate float64
	// LatencyRate stalls an operation for Latency.
	LatencyRate float64
	Latency     time.Duration
	// Metrics, when non-nil, receives fault_injected_* counters.
	Metrics *obs.Registry
	// Flight, when non-nil, receives fault-injected and crash-point flight
	// events (shard -1: the injector wraps a whole medium, not one domain).
	Flight *obs.FlightRecorder
}

// Flight fault-class codes carried in FlightFaultInjected events' Arg1
// (named by obs.FlightFaultName).
const (
	faultClassTransient = 1 + iota
	faultClassTorn
	faultClassBitFlip
	faultClassLatency
)

// Injector holds the fault schedule shared by the FaultDevice /
// FaultCheckpointStore wrappers around one simulated medium.
type Injector struct {
	cfg       FaultConfig
	ops       atomic.Uint64
	writeOps  atomic.Uint64
	permanent atomic.Bool

	mu          sync.Mutex
	crashPoints map[string]func()
	writeCrash  map[uint64]func()

	transient, torn, flips, stalls *obs.Counter
}

// NewInjector returns an injector with the given schedule.
func NewInjector(cfg FaultConfig) *Injector {
	in := &Injector{
		cfg:         cfg,
		crashPoints: make(map[string]func()),
		writeCrash:  make(map[uint64]func()),
	}
	if cfg.Metrics != nil {
		in.transient = cfg.Metrics.Counter("fault_injected_transient_total")
		in.torn = cfg.Metrics.Counter("fault_injected_torn_total")
		in.flips = cfg.Metrics.Counter("fault_injected_bitflip_total")
		in.stalls = cfg.Metrics.Counter("fault_injected_latency_total")
	}
	return in
}

// FailPermanently makes every subsequent operation fail with
// ErrInjectedPermanent until Heal.
func (in *Injector) FailPermanently() { in.permanent.Store(true) }

// Heal clears a permanent failure.
func (in *Injector) Heal() { in.permanent.Store(false) }

// Ops reports how many operations have consulted the schedule (diagnostics).
func (in *Injector) Ops() uint64 { return in.ops.Load() }

// Arm registers a one-shot crash-point callback. FaultCheckpointStore fires
//
//	"before:<artifact>"  before any byte of the artifact is persisted
//	"torn:<artifact>"    with exactly a prefix of the artifact persisted
//	"after:<artifact>"   with the artifact fully persisted
//
// at the named artifact's write. The callback runs on the writing goroutine;
// a test typically clones the checkpoint store and then the device inside it
// (in that order — see MemCheckpointStore.Clone) to capture the crash image,
// after which execution continues as if the write completed normally.
func (in *Injector) Arm(point string, fn func()) {
	in.mu.Lock()
	in.crashPoints[point] = fn
	in.mu.Unlock()
}

// ArmDeviceWrite registers a one-shot crash point at the Nth device write
// (1-based) seen by any FaultDevice sharing this injector: the write persists
// only a prefix, fn fires, then the remainder is written so the live process
// continues intact while fn's snapshot holds a torn page.
func (in *Injector) ArmDeviceWrite(n uint64, fn func()) {
	in.mu.Lock()
	in.writeCrash[n] = fn
	in.mu.Unlock()
}

// take removes and returns the callback for point, if armed.
func (in *Injector) take(point string) func() {
	in.mu.Lock()
	fn := in.crashPoints[point]
	if fn != nil {
		delete(in.crashPoints, point)
	}
	in.mu.Unlock()
	return fn
}

// fire invokes point's callback if armed. The flight event is emitted before
// the callback so a crash dump taken inside the callback records its own
// trigger.
func (in *Injector) fire(point string) {
	if fn := in.take(point); fn != nil {
		in.cfg.Flight.Emit(obs.FlightCrashPoint, -1, 0, point, "", 0, 0)
		fn()
	}
}

// emitFault records one injected fault in the flight recorder. name (an
// artifact, for checkpoint-store faults) becomes the event token.
func (in *Injector) emitFault(class uint64, name string) {
	in.cfg.Flight.Emit(obs.FlightFaultInjected, -1, 0, name, "", class, 0)
}

// takeWriteCrash removes and returns the callback armed for device write n.
func (in *Injector) takeWriteCrash(n uint64) func() {
	in.mu.Lock()
	fn := in.writeCrash[n]
	if fn != nil {
		delete(in.writeCrash, n)
	}
	in.mu.Unlock()
	return fn
}

// Distinct decision streams per fault kind, so e.g. the torn-write schedule
// is independent of the transient-error schedule at the same op index.
const (
	streamReadErr = 1 + iota
	streamWriteErr
	streamTorn
	streamBitFlip
	streamLatency
)

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// decide draws the deterministic verdict for fault stream at op index op.
func (in *Injector) decide(op, stream uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	h := splitmix64(in.cfg.Seed ^ splitmix64(op*0x9E3779B97F4A7C15+stream))
	return float64(h>>11)/(1<<53) < rate
}

// rollBit picks the deterministic bit position to flip in a buffer of n bytes.
func (in *Injector) rollBit(op uint64, n int) (byteIdx int, bit uint) {
	h := splitmix64(in.cfg.Seed ^ splitmix64(op*0xBF58476D1CE4E5B9+streamBitFlip))
	return int(h % uint64(n)), uint((h >> 32) % 8)
}

// next allocates the next operation index.
func (in *Injector) next() uint64 { return in.ops.Add(1) }

// maybeStall applies a latency spike for op if scheduled.
func (in *Injector) maybeStall(op uint64) {
	if in.decide(op, streamLatency, in.cfg.LatencyRate) && in.cfg.Latency > 0 {
		in.stalls.Inc()
		in.emitFault(faultClassLatency, "")
		time.Sleep(in.cfg.Latency)
	}
}

// FaultDevice wraps a Device with the injector's schedule.
type FaultDevice struct {
	inner Device
	inj   *Injector
}

// NewFaultDevice wraps inner.
func NewFaultDevice(inner Device, inj *Injector) *FaultDevice {
	return &FaultDevice{inner: inner, inj: inj}
}

// Inner returns the wrapped device (tests clone it for crash images).
func (d *FaultDevice) Inner() Device { return d.inner }

// ReadAt implements Device: may stall, fail transiently, or flip one bit of
// the returned data.
func (d *FaultDevice) ReadAt(p []byte, off int64) (int, error) {
	in := d.inj
	if in.permanent.Load() {
		return 0, ErrInjectedPermanent
	}
	op := in.next()
	in.maybeStall(op)
	if in.decide(op, streamReadErr, in.cfg.ReadErrorRate) {
		in.transient.Inc()
		in.emitFault(faultClassTransient, "")
		return 0, fmt.Errorf("read at %d: %w", off, errInjectedTransient)
	}
	n, err := d.inner.ReadAt(p, off)
	if err == nil && n > 0 && in.decide(op, streamBitFlip, in.cfg.BitFlipRate) {
		idx, bit := in.rollBit(op, n)
		p[idx] ^= 1 << bit
		in.flips.Inc()
		in.emitFault(faultClassBitFlip, "")
	}
	return n, err
}

// WriteAt implements Device: may stall, fail transiently, or tear — persist
// a prefix and then fail (retry rewrites the range whole). An armed
// ArmDeviceWrite crash point persists a prefix, fires, then completes.
func (d *FaultDevice) WriteAt(p []byte, off int64) (int, error) {
	in := d.inj
	if in.permanent.Load() {
		return 0, ErrInjectedPermanent
	}
	wop := in.writeOps.Add(1)
	if fn := in.takeWriteCrash(wop); fn != nil {
		cut := len(p) / 2
		if _, err := d.inner.WriteAt(p[:cut], off); err != nil {
			return 0, err
		}
		fn()
		n, err := d.inner.WriteAt(p[cut:], off+int64(cut))
		return cut + n, err
	}
	op := in.next()
	in.maybeStall(op)
	if in.decide(op, streamWriteErr, in.cfg.WriteErrorRate) {
		in.transient.Inc()
		in.emitFault(faultClassTransient, "")
		return 0, fmt.Errorf("write at %d: %w", off, errInjectedTransient)
	}
	if len(p) > 1 && in.decide(op, streamTorn, in.cfg.TornWriteRate) {
		cut := len(p) / 2
		n, _ := d.inner.WriteAt(p[:cut], off)
		in.torn.Inc()
		in.emitFault(faultClassTorn, "")
		return n, fmt.Errorf("torn write at %d (%d of %d bytes): %w", off, n, len(p), errInjectedTransient)
	}
	return d.inner.WriteAt(p, off)
}

// Sync implements Device.
func (d *FaultDevice) Sync() error {
	if d.inj.permanent.Load() {
		return ErrInjectedPermanent
	}
	return d.inner.Sync()
}

// Size implements Device.
func (d *FaultDevice) Size() int64 { return d.inner.Size() }

// Close implements Device.
func (d *FaultDevice) Close() error { return d.inner.Close() }

// FaultCheckpointStore wraps a CheckpointStore with the injector's schedule.
// Writes are buffered and the fault verdict applies at Close, so a "torn
// write" persists a strict prefix of the artifact and then errors —
// modelling a crash mid-write — and never reports silent success.
type FaultCheckpointStore struct {
	inner CheckpointStore
	inj   *Injector
}

// NewFaultCheckpointStore wraps inner.
func NewFaultCheckpointStore(inner CheckpointStore, inj *Injector) *FaultCheckpointStore {
	return &FaultCheckpointStore{inner: inner, inj: inj}
}

// Inner returns the wrapped store (tests clone it for crash images).
func (s *FaultCheckpointStore) Inner() CheckpointStore { return s.inner }

type faultWriter struct {
	buf    bytes.Buffer
	store  *FaultCheckpointStore
	name   string
	closed bool
}

func (w *faultWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *faultWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	in := w.store.inj
	data := w.buf.Bytes()

	in.fire("before:" + w.name)
	if in.permanent.Load() {
		return fmt.Errorf("artifact %q: %w", w.name, ErrInjectedPermanent)
	}
	op := in.next()
	in.maybeStall(op)
	if in.decide(op, streamWriteErr, in.cfg.WriteErrorRate) {
		in.transient.Inc()
		in.emitFault(faultClassTransient, w.name)
		return fmt.Errorf("artifact %q: %w", w.name, errInjectedTransient)
	}
	if tornFn := in.take("torn:" + w.name); tornFn != nil {
		// Crash point: persist a strict prefix, fire (snapshots taken in the
		// callback see the torn artifact), then complete the write so the
		// live process continues as if the write had succeeded.
		if err := w.writeInner(data[:len(data)/2]); err != nil {
			return err
		}
		tornFn()
		if err := w.writeInner(data); err != nil {
			return err
		}
		in.fire("after:" + w.name)
		return nil
	}
	if len(data) > 1 && in.decide(op, streamTorn, in.cfg.TornWriteRate) {
		in.torn.Inc()
		in.emitFault(faultClassTorn, w.name)
		if err := w.writeInner(data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("artifact %q: torn write: %w", w.name, errInjectedTransient)
	}
	if err := w.writeInner(data); err != nil {
		return err
	}
	in.fire("after:" + w.name)
	return nil
}

func (w *faultWriter) writeInner(data []byte) error {
	return WriteArtifact(w.store.inner, w.name, data)
}

// Create implements CheckpointStore.
func (s *FaultCheckpointStore) Create(name string) (io.WriteCloser, error) {
	if s.inj.permanent.Load() {
		return nil, fmt.Errorf("artifact %q: %w", name, ErrInjectedPermanent)
	}
	return &faultWriter{store: s, name: name}, nil
}

// Open implements CheckpointStore: may stall, fail transiently, or flip one
// bit of the returned artifact.
func (s *FaultCheckpointStore) Open(name string) (io.ReadCloser, error) {
	in := s.inj
	if in.permanent.Load() {
		return nil, fmt.Errorf("artifact %q: %w", name, ErrInjectedPermanent)
	}
	op := in.next()
	in.maybeStall(op)
	if in.decide(op, streamReadErr, in.cfg.ReadErrorRate) {
		in.transient.Inc()
		in.emitFault(faultClassTransient, name)
		return nil, fmt.Errorf("artifact %q: %w", name, errInjectedTransient)
	}
	r, err := s.inner.Open(name)
	if err != nil || !in.decide(op, streamBitFlip, in.cfg.BitFlipRate) {
		return r, err
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		return nil, err
	}
	if len(data) > 0 {
		idx, bit := in.rollBit(op, len(data))
		data[idx] ^= 1 << bit
		in.flips.Inc()
		in.emitFault(faultClassBitFlip, name)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// List implements CheckpointStore.
func (s *FaultCheckpointStore) List() ([]string, error) {
	if s.inj.permanent.Load() {
		return nil, ErrInjectedPermanent
	}
	return s.inner.List()
}

// Remove implements CheckpointStore.
func (s *FaultCheckpointStore) Remove(name string) error {
	if s.inj.permanent.Load() {
		return ErrInjectedPermanent
	}
	return s.inner.Remove(name)
}
