package storage

import (
	"bytes"
	"testing"
)

// TestSyncBufferHoldsWritesUntilSync is the durability contract: writes are
// invisible to the inner device until Sync, then fully visible.
func TestSyncBufferHoldsWritesUntilSync(t *testing.T) {
	inner := NewMemDevice()
	d, err := NewSyncBufferDevice(inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("world"), 5); err != nil {
		t.Fatal(err)
	}
	if inner.Size() != 0 {
		t.Fatalf("inner saw %d bytes before Sync", inner.Size())
	}
	// Read-your-writes through the shadow.
	got := make([]byte, 10)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "helloworld" {
		t.Fatalf("shadow read = %q", got)
	}
	if d.Dirty() != 10 {
		t.Fatalf("dirty = %d, want 10", d.Dirty())
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if d.Dirty() != 0 {
		t.Fatalf("dirty = %d after Sync", d.Dirty())
	}
	innerGot := make([]byte, 10)
	if _, err := inner.ReadAt(innerGot, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(innerGot, got) {
		t.Fatalf("inner = %q after Sync, want %q", innerGot, got)
	}
}

// TestSyncBufferCrashImage: a clone of the inner device taken between Syncs
// holds exactly the synced prefix — the crash-model invariant the ingestion
// log's ack contract is built on.
func TestSyncBufferCrashImage(t *testing.T) {
	inner := NewMemDevice()
	d, err := NewSyncBufferDevice(inner)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("durable!"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("volatile"), 8); err != nil {
		t.Fatal(err)
	}

	crash := inner.Clone()
	if crash.Size() != 8 {
		t.Fatalf("crash image has %d bytes, want 8", crash.Size())
	}
	got := make([]byte, 8)
	if _, err := crash.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable!" {
		t.Fatalf("crash image = %q", got)
	}

	// Reopening the crash image behaves like a fresh mount: the shadow is
	// preloaded with the synced bytes.
	re, err := NewSyncBufferDevice(crash)
	if err != nil {
		t.Fatal(err)
	}
	if re.Size() != 8 {
		t.Fatalf("reopened size = %d", re.Size())
	}
}

// TestSyncBufferRetryAfterFailedSync: an inner write failure mid-Sync keeps
// the unflushed ranges dirty, so a retried Sync completes the flush.
func TestSyncBufferRetryAfterFailedSync(t *testing.T) {
	inner := NewMemDevice()
	inj := NewInjector(FaultConfig{Seed: 7, WriteErrorRate: 1})
	d, err := NewSyncBufferDevice(NewFaultDevice(inner, inj))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err == nil {
		t.Fatal("Sync succeeded under WriteErrorRate=1")
	}
	if d.Dirty() == 0 {
		t.Fatal("failed Sync discarded dirty ranges")
	}
	// Heal (rate applies per op; rebuild with a clean injector path by
	// swapping to rate 0 is not possible in place, so drain via retries).
	inj2 := NewInjector(FaultConfig{Seed: 7})
	d2, err := NewSyncBufferDevice(NewFaultDevice(inner, inj2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d2.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if err := d2.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := inner.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abcdef" {
		t.Fatalf("inner = %q", got)
	}
}
