package storage

import (
	"io"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestMemDeviceRoundTrip(t *testing.T) {
	d := NewMemDevice()
	defer d.Close()
	msg := []byte("hello hybridlog")
	if _, err := d.WriteAt(msg, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if d.Size() != 100+int64(len(msg)) {
		t.Fatalf("size = %d", d.Size())
	}
}

func TestMemDeviceReadPastEnd(t *testing.T) {
	d := NewMemDevice()
	defer d.Close()
	if _, err := d.ReadAt(make([]byte, 8), 0); err == nil {
		t.Fatal("expected error reading empty device")
	}
}

func TestMemDeviceClosed(t *testing.T) {
	d := NewMemDevice()
	d.Close()
	if _, err := d.WriteAt([]byte("x"), 0); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := d.ReadAt(make([]byte, 1), 0); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestMemDeviceConcurrentDisjointWrites(t *testing.T) {
	d := NewMemDevice()
	defer d.Close()
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := []byte{byte(i)}
			if _, err := d.WriteAt(buf, int64(i)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	got := make([]byte, n)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, got[i])
		}
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.log")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.WriteAt([]byte("abc"), 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if _, err := d.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if d.Size() != 13 {
		t.Fatalf("size = %d, want 13", d.Size())
	}
}

func TestPoolWriteThenRead(t *testing.T) {
	d := NewMemDevice()
	defer d.Close()
	p := NewPool(4, 16)
	defer p.Close()

	done := make(chan error, 1)
	p.Submit(IORequest{Dev: d, Buf: []byte("async"), Off: 0, Write: true,
		Done: func(n int, err error) { done <- err }})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	p.Submit(IORequest{Dev: d, Buf: buf, Off: 0,
		Done: func(n int, err error) { done <- err }})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(buf) != "async" {
		t.Fatalf("got %q", buf)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	d := NewMemDevice()
	defer d.Close()
	p := NewPool(2, 128)
	var mu sync.Mutex
	completed := 0
	for i := 0; i < 100; i++ {
		p.Submit(IORequest{Dev: d, Buf: []byte{1}, Off: int64(i), Write: true,
			Done: func(int, error) { mu.Lock(); completed++; mu.Unlock() }})
	}
	p.Close()
	if completed != 100 {
		t.Fatalf("completed = %d, want 100", completed)
	}
	if p.InFlight() != 0 {
		t.Fatalf("in-flight = %d after close", p.InFlight())
	}
}

func testStoreRoundTrip(t *testing.T, s CheckpointStore) {
	t.Helper()
	w, err := s.Create("meta/info.json")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open("meta/info.json")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if string(data) != `{"v":1}` {
		t.Fatalf("got %q", data)
	}
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "meta/info.json" {
		t.Fatalf("list = %v", names)
	}
	if err := s.Remove("meta/info.json"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("meta/info.json"); err == nil {
		t.Fatal("open after remove should fail")
	}
}

func TestMemCheckpointStore(t *testing.T) { testStoreRoundTrip(t, NewMemCheckpointStore()) }

func TestDirCheckpointStore(t *testing.T) {
	s, err := NewDirCheckpointStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStoreRoundTrip(t, s)
}

func TestQuickMemDeviceWriteReadAnyOffset(t *testing.T) {
	d := NewMemDevice()
	defer d.Close()
	f := func(data []byte, off uint16) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := d.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := d.ReadAt(got, int64(off)); err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
