// Package storage provides the secondary-storage substrate for the CPR
// reproduction: block devices (RAM-backed and file-backed), an asynchronous
// I/O pool matching FASTER's async model, and a checkpoint store used to
// persist CPR commit artifacts (HybridLog pages, index pages, metadata).
//
// The paper ran on an NVMe SSD; per DESIGN.md the default substitute is a
// RAM-backed device with optional simulated latency and bandwidth so the
// flush-duration effects of Sec. 7.3 reproduce on any machine, while
// FileDevice runs the identical code path against real files.
package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Device is a random-access block device. Implementations must support
// concurrent ReadAt/WriteAt on disjoint ranges.
type Device interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	// Sync blocks until previously written data is durable.
	Sync() error
	// Size returns the current device extent (highest written offset).
	Size() int64
	Close() error
}

// ErrClosed is returned by operations on a closed device.
var ErrClosed = errors.New("storage: device closed")

// MemDevice is a RAM-backed Device with optional simulated per-operation
// latency and write bandwidth. It is the default stand-in for the paper's
// SSD (see DESIGN.md substitutions).
type MemDevice struct {
	mu     sync.RWMutex
	data   []byte
	closed bool

	// Latency is added to every read and write when non-zero.
	Latency time.Duration
	// WriteBandwidth, when non-zero, throttles writes to this many bytes/sec,
	// reproducing the paper's "6 seconds to write 14 GB" flush plateaus.
	WriteBandwidth int64
}

// NewMemDevice returns an empty RAM-backed device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadAt implements Device.
func (d *MemDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(d.data)) {
		return 0, fmt.Errorf("storage: read past end (off=%d size=%d)", off, len(d.data))
	}
	n := copy(p, d.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("storage: short read at %d: got %d want %d", off, n, len(p))
	}
	return n, nil
}

// WriteAt implements Device, growing the device as needed.
func (d *MemDevice) WriteAt(p []byte, off int64) (int, error) {
	if d.Latency > 0 {
		time.Sleep(d.Latency)
	}
	if d.WriteBandwidth > 0 {
		time.Sleep(time.Duration(float64(len(p)) / float64(d.WriteBandwidth) * float64(time.Second)))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(d.data)) {
		grown := make([]byte, end)
		copy(grown, d.data)
		d.data = grown
	}
	copy(d.data[off:], p)
	return len(p), nil
}

// Sync implements Device; RAM is always "durable" for simulation purposes.
func (d *MemDevice) Sync() error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	return nil
}

// Size implements Device.
func (d *MemDevice) Size() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.data))
}

// Close implements Device.
func (d *MemDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return nil
}

// Clone returns an independent copy of the device's current contents —
// the crash-simulation primitive: recovery from a clone taken at an
// arbitrary instant models restarting from whatever had reached "disk".
func (d *MemDevice) Clone() *MemDevice {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c := NewMemDevice()
	c.data = append([]byte(nil), d.data...)
	return c
}

// FileDevice is a Device backed by a file on the host filesystem.
type FileDevice struct {
	f      *os.File
	mu     sync.Mutex // guards size tracking and the closed flag; I/O uses pread/pwrite
	sz     int64
	closed bool
}

// OpenFileDevice opens (creating if necessary) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, sz: st.Size()}, nil
}

// isClosed reports whether Close has been called (matching MemDevice's
// contract of returning ErrClosed rather than an os-level "file already
// closed" error).
func (d *FileDevice) isClosed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.closed
}

// ReadAt implements Device, looping on partial reads so a successful return
// always fills p (os.File.ReadAt already loops, but the Device contract must
// not depend on that implementation detail).
func (d *FileDevice) ReadAt(p []byte, off int64) (int, error) {
	if d.isClosed() {
		return 0, ErrClosed
	}
	total := 0
	for total < len(p) {
		n, err := d.f.ReadAt(p[total:], off+int64(total))
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, fmt.Errorf("storage: read at %d stalled after %d of %d bytes", off, total, len(p))
		}
	}
	return total, nil
}

// WriteAt implements Device, looping on partial writes so a successful
// return always persists all of p.
func (d *FileDevice) WriteAt(p []byte, off int64) (int, error) {
	if d.isClosed() {
		return 0, ErrClosed
	}
	total := 0
	for total < len(p) {
		n, err := d.f.WriteAt(p[total:], off+int64(total))
		total += n
		if err != nil {
			return total, err
		}
		if n == 0 {
			return total, fmt.Errorf("storage: write at %d stalled after %d of %d bytes", off, total, len(p))
		}
	}
	d.mu.Lock()
	if end := off + int64(total); end > d.sz {
		d.sz = end
	}
	d.mu.Unlock()
	return total, nil
}

// Sync implements Device.
func (d *FileDevice) Sync() error {
	if d.isClosed() {
		return ErrClosed
	}
	return d.f.Sync()
}

// Size implements Device.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sz
}

// Close implements Device. Closing twice is a no-op, like MemDevice.
func (d *FileDevice) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	return d.f.Close()
}
