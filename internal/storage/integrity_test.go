package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestArtifactEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte("hello, checkpoint"),
		bytes.Repeat([]byte{0xAB}, 4096),
	} {
		enc := EncodeArtifact(payload)
		got, err := DecodeArtifact(enc)
		if err != nil {
			t.Fatalf("decode %d-byte payload: %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch for %d-byte payload", len(payload))
		}
	}
}

func TestArtifactEnvelopeRejectsMutation(t *testing.T) {
	payload := []byte("the quick brown fox jumps over the lazy dog")
	enc := EncodeArtifact(payload)
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x40
		if _, err := DecodeArtifact(mut); err == nil {
			t.Fatalf("byte %d: mutation not detected", i)
		} else if !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("byte %d: error %v does not wrap ErrCorruptArtifact", i, err)
		}
	}
}

func TestArtifactEnvelopeRejectsTruncation(t *testing.T) {
	enc := EncodeArtifact([]byte("some payload worth protecting"))
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeArtifact(enc[:n]); !errors.Is(err, ErrCorruptArtifact) {
			t.Fatalf("truncation to %d bytes: got %v, want ErrCorruptArtifact", n, err)
		}
	}
	// Trailing garbage is corruption too: the length field is exact.
	if _, err := DecodeArtifact(append(append([]byte(nil), enc...), 0)); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("trailing byte: got %v, want ErrCorruptArtifact", err)
	}
}

func TestWriteReadArtifactChecked(t *testing.T) {
	cs := NewMemCheckpointStore()
	payload := []byte("framed artifact")
	if err := WriteArtifactChecked(cs, "a", payload); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifactChecked(cs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
	if err := VerifyArtifact(cs, "a"); err != nil {
		t.Fatal(err)
	}

	// The stored bytes are the envelope, not the raw payload.
	raw, err := ReadArtifact(cs, "a")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(raw, payload) {
		t.Fatal("artifact stored unframed")
	}

	// Corrupting the stored bytes must surface ErrCorruptArtifact, and the
	// read must NOT be retried into success (corruption is not transient).
	raw[len(raw)-1] ^= 1
	if err := WriteArtifact(cs, "a", raw); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifactChecked(cs, "a"); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("got %v, want ErrCorruptArtifact", err)
	}

	if _, err := ReadArtifactChecked(cs, "missing"); !IsNotFound(err) {
		t.Fatalf("missing artifact: got %v, want not-found", err)
	}
}

func FuzzArtifactEnvelope(f *testing.F) {
	f.Add([]byte(nil), uint16(0))
	f.Add([]byte("payload"), uint16(3))
	f.Add(bytes.Repeat([]byte{7}, 100), uint16(99))
	f.Fuzz(func(t *testing.T, payload []byte, mutPos uint16) {
		enc := EncodeArtifact(payload)
		got, err := DecodeArtifact(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded payload failed: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatal("round-trip mismatch")
		}
		// Any single-bit flip anywhere in the envelope must be rejected.
		mut := append([]byte(nil), enc...)
		i := int(mutPos) % len(mut)
		mut[i] ^= 1 << (mutPos % 8)
		if _, err := DecodeArtifact(mut); err == nil {
			t.Fatalf("bit flip at byte %d undetected", i)
		}
		// Decoding arbitrary bytes must never panic (error is fine).
		DecodeArtifact(payload) //nolint:errcheck
	})
}
