package storage

import (
	"sync"
	"sync/atomic"
)

// IORequest is one asynchronous device operation. Exactly one of the read or
// write semantics applies: if Write is true, Buf is written at Off; otherwise
// Buf is filled by reading at Off. Done is invoked from a pool worker with
// the operation result; it may submit follow-up requests (e.g. a record-body
// read chained after its header read) but must not block for long.
type IORequest struct {
	Dev   Device
	Buf   []byte
	Off   int64
	Write bool
	Done  func(n int, err error)
}

// Pool is a fixed set of worker goroutines servicing IORequests, modelling
// FASTER's background async I/O: the requesting thread continues processing
// while the operation completes.
//
// The queue is unbounded: Submit never blocks. This is load-bearing for
// deadlock freedom — completion callbacks run on pool workers and may chain
// further Submits; a bounded queue would let workers block on themselves.
// Callers bound their own in-flight work (sessions cap their pending lists).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []IORequest
	closed bool

	drained bool

	wg       sync.WaitGroup
	inFlight atomic.Int64
}

// NewPool starts a pool with the given number of workers (minimum 1). The
// depth argument is retained for call-site compatibility and ignored (the
// queue is unbounded; see the type comment).
func NewPool(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		req := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		var n int
		var err error
		if req.Write {
			n, err = req.Dev.WriteAt(req.Buf, req.Off)
		} else {
			n, err = req.Dev.ReadAt(req.Buf, req.Off)
		}
		if req.Done != nil {
			req.Done(n, err)
		}
		p.inFlight.Add(-1)
	}
}

// Submit enqueues req without blocking. Chained submissions during Close's
// drain are still serviced; submissions after the drain completes are
// dropped with an error delivered to Done.
func (p *Pool) Submit(req IORequest) {
	p.mu.Lock()
	if p.closed && p.drained {
		p.mu.Unlock()
		if req.Done != nil {
			req.Done(0, ErrClosed)
		}
		return
	}
	p.inFlight.Add(1)
	p.queue = append(p.queue, req)
	p.mu.Unlock()
	p.cond.Signal()
}

// InFlight reports the number of submitted-but-incomplete requests.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// Close stops accepting new external requests and waits until the queue —
// including requests chained by completion callbacks — drains.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	p.mu.Lock()
	p.drained = true
	p.mu.Unlock()
}
