package storage

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// IORequest is one asynchronous device operation. Exactly one of the read or
// write semantics applies: if Write is true, Buf is written at Off; otherwise
// Buf is filled by reading at Off. Done is invoked from a pool worker with
// the operation result; it may submit follow-up requests (e.g. a record-body
// read chained after its header read) but must not block for long.
type IORequest struct {
	Dev   Device
	Buf   []byte
	Off   int64
	Write bool
	Done  func(n int, err error)
}

// Pool is a fixed set of worker goroutines servicing IORequests, modelling
// FASTER's background async I/O: the requesting thread continues processing
// while the operation completes.
//
// The queue is unbounded: Submit never blocks. This is load-bearing for
// deadlock freedom — completion callbacks run on pool workers and may chain
// further Submits; a bounded queue would let workers block on themselves.
// Callers bound their own in-flight work (sessions cap their pending lists).
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []IORequest
	closed bool

	drained bool

	wg       sync.WaitGroup
	inFlight atomic.Int64

	// Retry governs transient-error handling in workers (self-healing I/O):
	// a failed operation classified by IsTransient is retried in place with
	// bounded exponential backoff before its error reaches Done. Set before
	// submitting work; defaults to DefaultRetry.
	Retry RetryPolicy

	// Observability (set under mu by Instrument; metrics are nil-safe).
	reads, writes         *obs.Counter
	readBytes, writeBytes *obs.Counter
	readNs, writeNs       *obs.Histogram
	retries               *obs.Counter
	timed                 bool
}

// Instrument registers the pool's metrics with reg:
//
//	storage_io_reads_total / storage_io_writes_total    completed operations
//	storage_io_read_bytes_total / storage_io_write_bytes_total
//	storage_io_read_ns / storage_io_write_ns            device latency
//	storage_io_inflight / storage_io_queue_depth        live queue state
//
// Call it before submitting work (hlog does so at construction).
func (p *Pool) Instrument(reg *obs.Registry) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.reads = reg.Counter("storage_io_reads_total")
	p.writes = reg.Counter("storage_io_writes_total")
	p.readBytes = reg.Counter("storage_io_read_bytes_total")
	p.writeBytes = reg.Counter("storage_io_write_bytes_total")
	p.readNs = reg.Histogram("storage_io_read_ns")
	p.writeNs = reg.Histogram("storage_io_write_ns")
	p.retries = reg.Counter("storage_io_retries_total")
	p.timed = p.readNs != nil
	reg.GaugeFunc("storage_io_inflight", func() int64 { return p.inFlight.Load() })
	reg.GaugeFunc("storage_io_queue_depth", func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return int64(len(p.queue))
	})
}

// NewPool starts a pool with the given number of workers (minimum 1). The
// depth argument is retained for call-site compatibility and ignored (the
// queue is unbounded; see the type comment).
func NewPool(workers, depth int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		req := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		var n int
		var err error
		var t0 time.Time
		if p.timed {
			t0 = time.Now()
		}
		retry := p.Retry
		if retry.Attempts == 0 {
			retry = DefaultRetry
		}
		first := true
		if req.Write {
			err = retry.Do(func() error {
				if !first {
					p.retries.Inc()
				}
				first = false
				var e error
				n, e = req.Dev.WriteAt(req.Buf, req.Off)
				return e
			})
			p.writes.Inc()
			p.writeBytes.Add(uint64(n))
			if p.timed {
				p.writeNs.Observe(time.Since(t0))
			}
		} else {
			err = retry.Do(func() error {
				if !first {
					p.retries.Inc()
				}
				first = false
				var e error
				n, e = req.Dev.ReadAt(req.Buf, req.Off)
				return e
			})
			p.reads.Inc()
			p.readBytes.Add(uint64(n))
			if p.timed {
				p.readNs.Observe(time.Since(t0))
			}
		}
		if req.Done != nil {
			req.Done(n, err)
		}
		p.inFlight.Add(-1)
	}
}

// Submit enqueues req without blocking. Chained submissions during Close's
// drain are still serviced; submissions after the drain completes are
// dropped with an error delivered to Done.
func (p *Pool) Submit(req IORequest) {
	p.mu.Lock()
	if p.closed && p.drained {
		p.mu.Unlock()
		if req.Done != nil {
			req.Done(0, ErrClosed)
		}
		return
	}
	p.inFlight.Add(1)
	p.queue = append(p.queue, req)
	p.mu.Unlock()
	p.cond.Signal()
}

// InFlight reports the number of submitted-but-incomplete requests.
func (p *Pool) InFlight() int64 { return p.inFlight.Load() }

// Close stops accepting new external requests and waits until the queue —
// including requests chained by completion callbacks — drains.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
	p.mu.Lock()
	p.drained = true
	p.mu.Unlock()
}
