package storage

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// CheckpointStore is a flat namespace of named checkpoint artifacts
// (metadata, index pages, log snapshots). Both the transactional database
// and FASTER persist their CPR commits through this interface, so every
// experiment can run against RAM or a real directory interchangeably.
type CheckpointStore interface {
	// Create opens a named artifact for writing, truncating any previous one.
	Create(name string) (io.WriteCloser, error)
	// Open opens a named artifact for reading.
	Open(name string) (io.ReadCloser, error)
	// List returns all artifact names, sorted.
	List() ([]string, error)
	// Remove deletes an artifact; removing a missing artifact is an error.
	Remove(name string) error
}

// ReadArtifact reads a whole named artifact into memory.
func ReadArtifact(cs CheckpointStore, name string) ([]byte, error) {
	r, err := cs.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

// WriteArtifact persists one named artifact in a single call.
func WriteArtifact(cs CheckpointStore, name string, data []byte) error {
	w, err := cs.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// ListPrefix enumerates the artifacts whose names start with prefix (sorted,
// prefix retained). It is the replication shipper's enumeration primitive.
func ListPrefix(cs CheckpointStore, prefix string) ([]string, error) {
	all, err := cs.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	return names, nil
}

// MemCheckpointStore keeps artifacts in process memory. It is the default
// store for benchmarks (the paper's checkpoints-to-SSD become
// checkpoints-to-RAM; shape of results is unaffected, see DESIGN.md).
type MemCheckpointStore struct {
	mu    sync.RWMutex
	files map[string][]byte
}

// NewMemCheckpointStore returns an empty in-memory store.
func NewMemCheckpointStore() *MemCheckpointStore {
	return &MemCheckpointStore{files: make(map[string][]byte)}
}

type memWriter struct {
	buf   bytes.Buffer
	store *MemCheckpointStore
	name  string
}

func (w *memWriter) Write(p []byte) (int, error) { return w.buf.Write(p) }

func (w *memWriter) Close() error {
	w.store.mu.Lock()
	w.store.files[w.name] = w.buf.Bytes()
	w.store.mu.Unlock()
	return nil
}

// Create implements CheckpointStore.
func (s *MemCheckpointStore) Create(name string) (io.WriteCloser, error) {
	return &memWriter{store: s, name: name}, nil
}

// Open implements CheckpointStore.
func (s *MemCheckpointStore) Open(name string) (io.ReadCloser, error) {
	s.mu.RLock()
	data, ok := s.files[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// List implements CheckpointStore.
func (s *MemCheckpointStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.files))
	for n := range s.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Remove implements CheckpointStore.
func (s *MemCheckpointStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(s.files, name)
	return nil
}

// Clone returns an independent copy of the store's current artifacts (see
// MemDevice.Clone; clone the checkpoint store BEFORE the device so cloned
// metadata never references log data missing from the cloned device).
func (s *MemCheckpointStore) Clone() *MemCheckpointStore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := NewMemCheckpointStore()
	for name, data := range s.files {
		c.files[name] = append([]byte(nil), data...)
	}
	return c
}

// Size returns the total bytes held by the store (diagnostics).
func (s *MemCheckpointStore) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.files {
		n += int64(len(b))
	}
	return n
}

// PrefixCheckpointStore is a view of a parent CheckpointStore with every
// artifact name prepended by a fixed prefix. The shards of a partitioned
// store each write their commit artifacts through such a view (prefix
// "shard<i>/"), so one parent store holds every shard's checkpoints plus the
// cross-shard commit manifests, and per-shard recovery addresses exactly its
// own namespace.
type PrefixCheckpointStore struct {
	parent CheckpointStore
	prefix string
}

// NewPrefixCheckpointStore wraps parent so all artifact names gain prefix.
func NewPrefixCheckpointStore(parent CheckpointStore, prefix string) *PrefixCheckpointStore {
	return &PrefixCheckpointStore{parent: parent, prefix: prefix}
}

// Create implements CheckpointStore.
func (s *PrefixCheckpointStore) Create(name string) (io.WriteCloser, error) {
	return s.parent.Create(s.prefix + name)
}

// Open implements CheckpointStore.
func (s *PrefixCheckpointStore) Open(name string) (io.ReadCloser, error) {
	return s.parent.Open(s.prefix + name)
}

// List implements CheckpointStore, returning only artifacts under the prefix
// with the prefix stripped.
func (s *PrefixCheckpointStore) List() ([]string, error) {
	all, err := s.parent.List()
	if err != nil {
		return nil, err
	}
	var names []string
	for _, n := range all {
		if len(n) > len(s.prefix) && n[:len(s.prefix)] == s.prefix {
			names = append(names, n[len(s.prefix):])
		}
	}
	return names, nil
}

// Remove implements CheckpointStore.
func (s *PrefixCheckpointStore) Remove(name string) error {
	return s.parent.Remove(s.prefix + name)
}

// DirCheckpointStore persists artifacts as files under a directory. Artifact
// names may contain '/' which map to subdirectories.
type DirCheckpointStore struct {
	dir string
}

// NewDirCheckpointStore creates (if needed) and wraps a directory.
func NewDirCheckpointStore(dir string) (*DirCheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	return &DirCheckpointStore{dir: dir}, nil
}

// Create implements CheckpointStore. The artifact is staged in a temp file,
// fsynced, and renamed into place (then the directory is fsynced) so a crash
// mid-write can never leave a half-written artifact under its final name:
// readers see either the previous complete artifact or the new complete one.
func (s *DirCheckpointStore) Create(name string) (io.WriteCloser, error) {
	path := filepath.Join(s.dir, filepath.FromSlash(name))
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	return &atomicFileWriter{f: tmp, dir: dir, final: path}, nil
}

// atomicFileWriter stages writes in a temp file; Close makes them visible
// atomically under the final name.
type atomicFileWriter struct {
	f     *os.File
	dir   string
	final string
	err   error
}

func (w *atomicFileWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	if err != nil && w.err == nil {
		w.err = err
	}
	return n, err
}

func (w *atomicFileWriter) Close() error {
	if w.err != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	if err := os.Rename(w.f.Name(), w.final); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	return syncDir(w.dir)
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Open implements CheckpointStore.
func (s *DirCheckpointStore) Open(name string) (io.ReadCloser, error) {
	return os.Open(filepath.Join(s.dir, filepath.FromSlash(name)))
}

// List implements CheckpointStore.
func (s *DirCheckpointStore) List() ([]string, error) {
	var names []string
	err := filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.dir, path)
		if err != nil {
			return err
		}
		// Skip in-flight (or crash-orphaned) staging files from Create.
		if strings.HasPrefix(filepath.Base(rel), ".") {
			return nil
		}
		names = append(names, filepath.ToSlash(rel))
		return nil
	})
	sort.Strings(names)
	return names, err
}

// Remove implements CheckpointStore.
func (s *DirCheckpointStore) Remove(name string) error {
	return os.Remove(filepath.Join(s.dir, filepath.FromSlash(name)))
}
