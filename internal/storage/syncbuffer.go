package storage

import (
	"fmt"
	"sync"
)

// SyncBufferDevice models an OS page cache in front of a Device: WriteAt
// lands in a volatile shadow buffer (reads see it immediately), and only
// Sync pushes the accumulated dirty ranges down to the inner device. A crash
// image taken from the inner device (e.g. MemDevice.Clone) therefore holds
// exactly the bytes that were fsynced — writes that were never Synced vanish,
// and a fault injected mid-Sync (torn write, crash point) leaves a prefix of
// a dirty range on the medium. The ingestion-log crash tests use it to prove
// that an append acked only after fsync survives every crash, and an unacked
// one never resurfaces.
//
// Layer it above the fault injector — SyncBufferDevice(FaultDevice(inner)) —
// so faults strike at fsync time, where a real medium fails.
type SyncBufferDevice struct {
	mu     sync.Mutex
	inner  Device
	shadow []byte
	dirty  []dirtyRange // coalesced, ordered, non-overlapping
	closed bool
}

type dirtyRange struct{ off, end int64 }

// NewSyncBufferDevice wraps inner. The shadow starts as a copy of the inner
// device's current contents, so reopening an existing medium behaves like a
// freshly mounted file.
func NewSyncBufferDevice(inner Device) (*SyncBufferDevice, error) {
	d := &SyncBufferDevice{inner: inner}
	if sz := inner.Size(); sz > 0 {
		d.shadow = make([]byte, sz)
		if _, err := inner.ReadAt(d.shadow, 0); err != nil {
			return nil, fmt.Errorf("storage: syncbuffer preload: %w", err)
		}
	}
	return d, nil
}

// ReadAt implements Device; reads observe unsynced writes (read-your-writes,
// like a page cache).
func (d *SyncBufferDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	if off >= int64(len(d.shadow)) {
		return 0, fmt.Errorf("storage: read past end (off=%d size=%d)", off, len(d.shadow))
	}
	n := copy(p, d.shadow[off:])
	if n < len(p) {
		return n, fmt.Errorf("storage: short read at %d: got %d want %d", off, n, len(p))
	}
	return n, nil
}

// WriteAt implements Device, buffering the write until the next Sync.
func (d *SyncBufferDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("storage: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(d.shadow)) {
		grown := make([]byte, end)
		copy(grown, d.shadow)
		d.shadow = grown
	}
	copy(d.shadow[off:], p)
	d.markDirty(off, end)
	return len(p), nil
}

// markDirty records [off, end) as pending, merging adjacent/overlapping
// ranges so Sync issues few large inner writes.
func (d *SyncBufferDevice) markDirty(off, end int64) {
	merged := dirtyRange{off: off, end: end}
	out := d.dirty[:0]
	for _, r := range d.dirty {
		if r.end < merged.off || r.off > merged.end {
			out = append(out, r)
			continue
		}
		if r.off < merged.off {
			merged.off = r.off
		}
		if r.end > merged.end {
			merged.end = r.end
		}
	}
	d.dirty = append(out, merged)
}

// Sync implements Device: flushes every dirty range to the inner device (in
// ascending offset order), then syncs it. On an inner write error the range
// that failed — and everything after it — stays dirty, so a retried Sync
// rewrites it whole.
func (d *SyncBufferDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	ranges := d.dirty
	sortDirty(ranges)
	for i, r := range ranges {
		if _, err := d.inner.WriteAt(d.shadow[r.off:r.end], r.off); err != nil {
			d.dirty = ranges[i:]
			return err
		}
	}
	d.dirty = d.dirty[:0]
	return d.inner.Sync()
}

// sortDirty orders ranges ascending (insertion sort; the list is tiny).
func sortDirty(rs []dirtyRange) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].off < rs[j-1].off; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// Size implements Device, reporting the shadow extent (what a reader of this
// device can address, like a file's st_size including unsynced appends).
func (d *SyncBufferDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.shadow))
}

// Dirty reports the number of bytes written but not yet synced (diagnostics).
func (d *SyncBufferDevice) Dirty() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var n int64
	for _, r := range d.dirty {
		n += r.end - r.off
	}
	return n
}

// Close implements Device. Buffered writes are dropped — exactly what a
// crash does; call Sync first for a clean shutdown.
func (d *SyncBufferDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	return d.inner.Close()
}
