package storage

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestInjectorDeterminism: the same seed and rates must produce the same
// fault schedule, operation for operation.
func TestInjectorDeterminism(t *testing.T) {
	run := func() string {
		inj := NewInjector(FaultConfig{Seed: 7, ReadErrorRate: 0.3, WriteErrorRate: 0.3, TornWriteRate: 0.2})
		dev := NewFaultDevice(NewMemDevice(), inj)
		var sb strings.Builder
		buf := make([]byte, 64)
		for i := 0; i < 200; i++ {
			var err error
			if i%2 == 0 {
				_, err = dev.WriteAt(buf, int64(i)*64)
			} else {
				_, err = dev.ReadAt(buf, 0)
			}
			if err != nil {
				fmt.Fprintf(&sb, "%d:%v;", i, err)
			}
		}
		return sb.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("schedules differ:\n%s\n%s", a, b)
	}
	if a == "" {
		t.Fatal("no faults injected at 30% rates over 200 ops")
	}
}

// TestTornArtifactWriteNeverSilent: a torn artifact write persists a strict
// prefix AND returns a transient error — never silent success.
func TestTornArtifactWriteNeverSilent(t *testing.T) {
	inner := NewMemCheckpointStore()
	inj := NewInjector(FaultConfig{Seed: 3, TornWriteRate: 1})
	cs := NewFaultCheckpointStore(inner, inj)

	payload := bytes.Repeat([]byte("data"), 64)
	err := WriteArtifact(cs, "a", payload)
	if err == nil {
		t.Fatal("torn write reported success")
	}
	if !IsTransient(err) {
		t.Fatalf("torn write error %v is not transient", err)
	}
	got, rerr := ReadArtifact(inner, "a")
	if rerr != nil {
		t.Fatalf("torn artifact missing entirely: %v", rerr)
	}
	if len(got) >= len(payload) || !bytes.Equal(got, payload[:len(got)]) {
		t.Fatalf("inner holds %d bytes, want a strict prefix of %d", len(got), len(payload))
	}

	// WriteArtifactChecked at 100% torn rate exhausts retries and fails; the
	// surviving bytes must fail verification, not decode to garbage.
	if err := WriteArtifactChecked(cs, "b", payload); err == nil {
		t.Fatal("checked write succeeded at 100% torn rate")
	}
	if _, err := ReadArtifactChecked(inner, "b"); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("torn checked artifact: got %v, want ErrCorruptArtifact", err)
	}
}

// TestSelfHealingRetry: at a moderate transient rate the checked writer and
// reader retry to success, end to end.
func TestSelfHealingRetry(t *testing.T) {
	inner := NewMemCheckpointStore()
	inj := NewInjector(FaultConfig{Seed: 11, WriteErrorRate: 0.4, TornWriteRate: 0.2, ReadErrorRate: 0.4})
	cs := NewFaultCheckpointStore(inner, inj)
	payload := []byte("retry until it sticks")
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("art-%d", i)
		if err := WriteArtifactChecked(cs, name, payload); err != nil {
			t.Fatalf("write %s: %v", name, err)
		}
		got, err := ReadArtifactChecked(cs, name)
		if err != nil {
			t.Fatalf("read %s: %v", name, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("read %s: payload mismatch", name)
		}
	}
}

// TestPermanentFailureAndHeal: after FailPermanently every operation fails
// with a non-transient error (retries must stop); Heal restores service.
func TestPermanentFailureAndHeal(t *testing.T) {
	inj := NewInjector(FaultConfig{Seed: 1})
	dev := NewFaultDevice(NewMemDevice(), inj)
	cs := NewFaultCheckpointStore(NewMemCheckpointStore(), inj)

	inj.FailPermanently()
	if _, err := dev.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjectedPermanent) {
		t.Fatalf("device write: %v", err)
	}
	if IsTransient(ErrInjectedPermanent) {
		t.Fatal("permanent error classified transient")
	}
	if err := WriteArtifactChecked(cs, "a", []byte("x")); !errors.Is(err, ErrInjectedPermanent) {
		t.Fatalf("artifact write: %v", err)
	}
	inj.Heal()
	if _, err := dev.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if err := WriteArtifactChecked(cs, "a", []byte("x")); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

// TestCrashPoints: the before/torn/after crash points observe exactly the
// promised persisted state, and the live process continues unharmed.
func TestCrashPoints(t *testing.T) {
	inner := NewMemCheckpointStore()
	inj := NewInjector(FaultConfig{Seed: 5})
	cs := NewFaultCheckpointStore(inner, inj)
	payload := bytes.Repeat([]byte("artifact-body"), 32)

	var beforeSnap, tornSnap, afterSnap *MemCheckpointStore
	inj.Arm("before:a", func() { beforeSnap = inner.Clone() })
	inj.Arm("torn:a", func() { tornSnap = inner.Clone() })
	inj.Arm("after:a", func() { afterSnap = inner.Clone() })

	if err := WriteArtifactChecked(cs, "a", payload); err != nil {
		t.Fatalf("live write failed: %v", err)
	}
	if beforeSnap == nil || tornSnap == nil || afterSnap == nil {
		t.Fatal("not all crash points fired")
	}
	if _, err := ReadArtifactChecked(beforeSnap, "a"); !IsNotFound(err) {
		t.Fatalf("before-crash image: got %v, want not-found", err)
	}
	if _, err := ReadArtifactChecked(tornSnap, "a"); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("torn-crash image: got %v, want ErrCorruptArtifact", err)
	}
	if got, err := ReadArtifactChecked(afterSnap, "a"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("after-crash image: %v", err)
	}
	// And the live store still has the complete artifact.
	if got, err := ReadArtifactChecked(cs, "a"); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("live store after crash points: %v", err)
	}
}

// TestArmDeviceWrite: the Nth device write tears for the snapshot, then
// completes for the live process.
func TestArmDeviceWrite(t *testing.T) {
	inner := NewMemDevice()
	inj := NewInjector(FaultConfig{Seed: 9})
	dev := NewFaultDevice(inner, inj)

	data := bytes.Repeat([]byte{0xEE}, 256)
	var snap *MemDevice
	inj.ArmDeviceWrite(2, func() { snap = inner.Clone() })

	if _, err := dev.WriteAt(data, 0); err != nil { // write 1: untouched
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(data, 256); err != nil { // write 2: torn for snap
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("device-write crash point never fired")
	}
	// The snapshot ends exactly at the torn boundary: first half present,
	// second half never reached the medium.
	if sz := snap.Size(); sz != 256+128 {
		t.Fatalf("snapshot size %d, want %d (torn at half)", sz, 256+128)
	}
	got := make([]byte, 128)
	if _, err := snap.ReadAt(got, 256); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xEE}, 128)) {
		t.Fatal("snapshot does not hold the written half")
	}
	// Live device holds the full write.
	got = make([]byte, 256)
	if _, err := inner.ReadAt(got, 256); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("live device missing completed write")
	}
}

// TestBitFlipInjection: reads at BitFlipRate 1 differ from the stored bytes
// by exactly one bit, and checked reads reject them.
func TestBitFlipInjection(t *testing.T) {
	inner := NewMemCheckpointStore()
	if err := WriteArtifactChecked(inner, "a", []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(FaultConfig{Seed: 13, BitFlipRate: 1})
	cs := NewFaultCheckpointStore(inner, inj)
	if _, err := ReadArtifactChecked(cs, "a"); !errors.Is(err, ErrCorruptArtifact) {
		t.Fatalf("bit-flipped read: got %v, want ErrCorruptArtifact", err)
	}
}

// TestDirCheckpointStoreAtomicCreate: artifacts appear atomically — staging
// files are invisible to List and no temp files survive Close.
func TestDirCheckpointStoreAtomicCreate(t *testing.T) {
	dir := t.TempDir()
	cs, err := NewDirCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := cs.Create("meta-x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("half")); err != nil {
		t.Fatal(err)
	}
	// Mid-write: no artifact visible under its final name, not in List.
	if names, _ := cs.List(); len(names) != 0 {
		t.Fatalf("staging file visible in List: %v", names)
	}
	if _, err := os.Stat(filepath.Join(dir, "meta-x")); !os.IsNotExist(err) {
		t.Fatal("final name exists before Close")
	}
	if _, err := w.Write([]byte("+rest")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(cs, "meta-x")
	if err != nil || string(got) != "half+rest" {
		t.Fatalf("got %q, %v", got, err)
	}
	// No temp droppings.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".") {
			t.Fatalf("staging file %s left behind", e.Name())
		}
	}
}

// TestFileDeviceClosedAndPartialIO: I/O after Close fails with ErrClosed;
// double Close is a no-op; reads past EOF zero-fill like MemDevice.
func TestFileDeviceClosed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.dat")
	dev, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := dev.ReadAt(make([]byte, 3), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := dev.WriteAt([]byte("x"), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	if err := dev.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

// TestRetryPolicy: transient errors are retried up to Attempts; permanent
// errors abort immediately.
func TestRetryPolicy(t *testing.T) {
	pol := RetryPolicy{Attempts: 4, Base: 1, Max: 10}
	n := 0
	err := pol.Do(func() error {
		n++
		if n < 3 {
			return fmt.Errorf("flaky: %w", ErrTransient)
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("transient retry: err=%v n=%d", err, n)
	}

	n = 0
	perm := errors.New("disk on fire")
	err = pol.Do(func() error { n++; return perm })
	if !errors.Is(err, perm) || n != 1 {
		t.Fatalf("permanent: err=%v n=%d (want 1 attempt)", err, n)
	}

	n = 0
	err = pol.Do(func() error { n++; return fmt.Errorf("always: %w", ErrTransient) })
	if err == nil || n != 4 {
		t.Fatalf("exhaustion: err=%v n=%d (want 4 attempts)", err, n)
	}
}
