package hashfn

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	b := []byte("hello, cpr")
	if Hash64(b) != Hash64(b) {
		t.Fatal("Hash64 not deterministic")
	}
}

func TestUint64MatchesByteForm(t *testing.T) {
	// Uint64 must be usable interchangeably as a fast path only if callers
	// are consistent; here we just pin its determinism and non-triviality.
	if Uint64(1) == Uint64(2) {
		t.Fatal("trivial collision between 1 and 2")
	}
	if Uint64(0) == 0 {
		t.Fatal("hash of 0 should not be 0 (index reserves 0)")
	}
}

func TestDistributionBuckets(t *testing.T) {
	const n = 1 << 16
	const buckets = 1 << 8
	counts := make([]int, buckets)
	var k [8]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(k[:], uint64(i))
		counts[Hash64(k[:])&(buckets-1)]++
	}
	want := n / buckets
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("bucket %d holds %d keys, expected near %d", i, c, want)
		}
	}
}

func TestQuickNoLengthExtensionCollision(t *testing.T) {
	f := func(a, b []byte) bool {
		if string(a) == string(b) {
			return true
		}
		return Hash64(a) != Hash64(b) || len(a) == len(b)
		// Different-length inputs must essentially never collide; equal-length
		// collisions are possible but astronomically unlikely for quick's
		// small corpus — treat any observed one as suspicious but allowed.
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAvalancheSingleBitFlip(t *testing.T) {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], 0xDEADBEEF)
	h0 := Hash64(k[:])
	for bit := 0; bit < 64; bit++ {
		var k2 [8]byte
		binary.LittleEndian.PutUint64(k2[:], 0xDEADBEEF^(1<<bit))
		h1 := Hash64(k2[:])
		diff := popcount(h0 ^ h1)
		if diff < 10 {
			t.Fatalf("bit %d flip changed only %d output bits", bit, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func BenchmarkHash64_8B(b *testing.B) {
	var k [8]byte
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(k[:], uint64(i))
		_ = Hash64(k[:])
	}
}
