// Package hashfn provides the deterministic 64-bit key hash used by the
// FASTER hash index. Unlike hash/maphash it is stable across process
// restarts, which recovery requires: the index checkpoint stores bucket
// positions derived from this hash.
package hashfn

import "encoding/binary"

const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
)

// Hash64 returns a 64-bit hash of b. The construction is a small
// xxhash-style mix: 8-byte lanes folded with multiply-rotate, finished with
// an avalanche, giving good bucket and tag distribution for the index.
func Hash64(b []byte) uint64 {
	h := uint64(prime3) ^ uint64(len(b))*prime1
	for len(b) >= 8 {
		k := binary.LittleEndian.Uint64(b)
		h ^= mix(k)
		h = rotl(h, 27)*prime1 + prime2
		b = b[8:]
	}
	if len(b) >= 4 {
		h ^= uint64(binary.LittleEndian.Uint32(b)) * prime1
		h = rotl(h, 23)*prime2 + prime3
		b = b[4:]
	}
	for _, c := range b {
		h ^= uint64(c) * prime3
		h = rotl(h, 11) * prime1
	}
	return avalanche(h)
}

// Uint64 hashes an 8-byte integer key without allocating.
func Uint64(k uint64) uint64 { return avalanche(mix(k + prime3)) }

func mix(k uint64) uint64 {
	k *= prime2
	k = rotl(k, 31)
	k *= prime1
	return k
}

func rotl(x uint64, r uint) uint64 { return x<<r | x>>(64-r) }

func avalanche(h uint64) uint64 {
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}
