package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/kvserver"
	"repro/internal/obs"
	"repro/internal/repl"
	"repro/internal/storage"
)

// tailtrace drives traced kvserver clients against a live server and sweeps
// the auto-commit cadence with replication off and on, decomposing client
// tail latency into the per-hop histograms the request tracer feeds
// (queue/exec/durwait). The durability-wait hop should shrink as commits
// become more frequent — durwait is bounded by the cadence of the covering
// commit — while exec stays flat, which is the attribution claim behind the
// TRACE op and fasterctl trace.
func init() {
	register(Experiment{
		ID:    "tailtrace",
		Title: "Tail-latency attribution: durwait vs commit cadence, repl off/on",
		Paper: "Sec. 3 (session durability), replication extension",
		Run:   runTailTrace,
	})
}

func runTailTrace(cfg Config, w io.Writer) error {
	cfg.fill()
	duration := cfg.Seconds
	if cfg.Addr != "" {
		// External mode: drive a live cprserver instead of an in-process one
		// (its commit cadence is whatever -autocommit it runs with). Span
		// trees are then inspectable with `fasterctl trace -addr`.
		return runTailTraceExternal(cfg, w, duration)
	}
	// Sweep from sparse to frequent commits; durwait ~ cadence/2 on average.
	cadences := []time.Duration{
		time.Duration(duration / 2 * float64(time.Second)),
		time.Duration(duration / 8 * float64(time.Second)),
		time.Duration(duration / 32 * float64(time.Second)),
	}
	fmt.Fprintf(w, "%-12s %-5s %10s %12s %12s %12s %12s\n",
		"cadence(ms)", "repl", "Mops/sec", "wd-p50(ms)", "wd-p99(ms)", "durw-p50(ms)", "exec-p50(us)")
	for _, withRepl := range []bool{false, true} {
		for _, cadence := range cadences {
			if cadence < time.Millisecond {
				cadence = time.Millisecond
			}
			if err := runTailTracePoint(cfg, w, cadence, withRepl, duration); err != nil {
				return err
			}
		}
	}
	return nil
}

func runTailTracePoint(cfg Config, w io.Writer, cadence time.Duration, withRepl bool, duration float64) error {
	keys := uint64(scaled(20_000, cfg.Scale))
	threads := cfg.Threads
	if threads > 4 {
		threads = 4 // the loopback, not the store, saturates first
	}

	mk := func() faster.Config {
		buckets := 1
		for uint64(buckets) < keys/2 {
			buckets <<= 1
		}
		recBytes := uint64(hlog.RecordSize(8, 8))
		memPages := int(2*keys*recBytes>>18) + 4
		shards := cfg.Shards
		if shards > 1 {
			memPages += 4 * (shards - 1)
		}
		return faster.Config{
			Shards:       shards,
			IndexBuckets: buckets,
			PageBits:     18,
			MemPages:     memPages,
			DeviceFactory: func(int) (storage.Device, error) {
				return storage.NewMemDevice(), nil
			},
		}
	}

	storeCfg := mk()
	storeCfg.ReqTrace = obs.NewRequestTracer(64)
	store, err := faster.Open(storeCfg)
	if err != nil {
		return err
	}
	defer store.Close()

	srv := kvserver.NewServer(store)
	srv.AutoCommit = cadence    // must be set before Serve starts the committer
	go srv.Serve("127.0.0.1:0") //nolint:errcheck
	defer srv.Close()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	addr := srv.Addr().String()

	if withRepl {
		rsrv := repl.NewServer(store)
		rsrv.ClientAddr = addr
		srv.ReplStats = rsrv.ReplStats
		go rsrv.Serve("127.0.0.1:0") //nolint:errcheck
		defer rsrv.Close()
		for rsrv.Addr() == nil {
			time.Sleep(time.Millisecond)
		}
		rep, err := repl.NewReplica(repl.Config{
			Upstream: rsrv.Addr().String(), StoreConfig: mk(),
		})
		if err != nil {
			return err
		}
		defer rep.Store().Close()
		defer rep.Close()
	}

	mops, wdNs, setNs := tailLoad(addr, threads, keys, duration)

	snap := store.Metrics().Snapshot()
	durw := snap.Histograms["faster_op_durwait_ns"]
	exec := snap.Histograms["faster_op_exec_ns"]
	queue := snap.Histograms["faster_op_queue_ns"]

	wdP50 := float64(pctile(wdNs, 0.50)) / 1e6
	wdP99 := float64(pctile(wdNs, 0.99)) / 1e6
	replCol := "off"
	if withRepl {
		replCol = "on"
	}
	fmt.Fprintf(w, "%-12.1f %-5s %10.3f %12.2f %12.2f %12.2f %12.2f\n",
		float64(cadence)/1e6, replCol, mops, wdP50, wdP99,
		float64(durw.P50Nanos)/1e6, float64(exec.P50Nanos)/1e3)

	row := Row{
		"cadence_ms":      float64(cadence) / 1e6,
		"repl":            withRepl,
		"mops":            mops,
		"waitdur_calls":   len(wdNs),
		"wd_p50_ms":       wdP50,
		"wd_p99_ms":       wdP99,
		"set_p50_us":      float64(pctile(setNs, 0.50)) / 1e3,
		"set_p99_us":      float64(pctile(setNs, 0.99)) / 1e3,
		"durwait":         histRow(durw),
		"exec":            histRow(exec),
		"queue":           histRow(queue),
		"traces_retained": len(store.RequestTracer().Slowest(0)),
	}
	if withRepl {
		row["replwait"] = histRow(snap.Histograms["faster_op_replwait_ns"])
	}
	cfg.Record(row)
	return nil
}

// tailLoad drives the traced client workload against addr for duration
// seconds: every worker blind-writes batches of 64 keys, and worker 0 probes
// the durability hop with WaitDurable between batches while the rest keep the
// store busy (so the probe measures durwait, not an idle box). Returns the
// achieved throughput plus client-observed wait-durable and sampled set
// latencies.
func tailLoad(addr string, threads int, keys uint64, duration float64) (mops float64, wdNs, setNs []int64) {
	var opsTotal atomic.Uint64
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := kvserver.Dial(addr, "")
			if err != nil {
				return
			}
			defer c.Close()
			rng := seed*2654435761 + 1
			var kb, vb [8]byte
			var localWd, localSet []int64
			for {
				select {
				case <-stop:
					mu.Lock()
					wdNs = append(wdNs, localWd...)
					setNs = append(setNs, localSet...)
					mu.Unlock()
					return
				default:
				}
				for b := 0; b < 64; b++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					binary.LittleEndian.PutUint64(kb[:], rng%keys)
					binary.LittleEndian.PutUint64(vb[:], rng)
					t0 := time.Now()
					if _, err := c.Set(kb[:], vb[:]); err != nil {
						return
					}
					if b&15 == 0 {
						localSet = append(localSet, time.Since(t0).Nanoseconds())
					}
					opsTotal.Add(1)
				}
				if seed == 0 {
					t0 := time.Now()
					if _, _, err := c.WaitDurable(); err != nil {
						return
					}
					localWd = append(localWd, time.Since(t0).Nanoseconds())
				}
			}
		}(uint64(i))
	}
	start := time.Now()
	time.Sleep(time.Duration(duration * float64(time.Second)))
	close(stop)
	wg.Wait()
	return float64(opsTotal.Load()) / time.Since(start).Seconds() / 1e6, wdNs, setNs
}

// runTailTraceExternal is the -addr mode: the same workload pointed at an
// already-running cprserver. Server-side histograms are not reachable here;
// the row carries the client-observed decomposition and the server's span
// trees are inspected with `fasterctl trace -addr`.
func runTailTraceExternal(cfg Config, w io.Writer, duration float64) error {
	keys := uint64(scaled(20_000, cfg.Scale))
	threads := cfg.Threads
	if threads > 4 {
		threads = 4
	}
	mops, wdNs, setNs := tailLoad(cfg.Addr, threads, keys, duration)
	wdP50 := float64(pctile(wdNs, 0.50)) / 1e6
	wdP99 := float64(pctile(wdNs, 0.99)) / 1e6
	fmt.Fprintf(w, "%-24s %10s %12s %12s %12s %12s\n",
		"server", "Mops/sec", "wd-p50(ms)", "wd-p99(ms)", "set-p50(us)", "set-p99(us)")
	fmt.Fprintf(w, "%-24s %10.3f %12.2f %12.2f %12.2f %12.2f\n",
		cfg.Addr, mops, wdP50, wdP99,
		float64(pctile(setNs, 0.50))/1e3, float64(pctile(setNs, 0.99))/1e3)
	cfg.Record(Row{
		"addr": cfg.Addr, "mops": mops, "waitdur_calls": len(wdNs),
		"wd_p50_ms": wdP50, "wd_p99_ms": wdP99,
		"set_p50_us": float64(pctile(setNs, 0.50)) / 1e3,
		"set_p99_us": float64(pctile(setNs, 0.99)) / 1e3,
	})
	return nil
}
