package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
)

// ArtifactSchemaV is the BENCH_<exp>.json schema version; bump on any
// incompatible change so downstream tooling can reject artifacts it does not
// understand.
const ArtifactSchemaV = 1

// Row is one structured data point of an experiment — typically mirroring one
// printed table row, with machine-readable keys instead of column layout.
type Row = map[string]any

// Artifact is the machine-readable result of one experiment run, written next
// to the human-readable output as BENCH_<experiment>.json.
type Artifact struct {
	V          uint32         `json:"v"`
	Experiment string         `json:"experiment"`
	Title      string         `json:"title,omitempty"`
	Paper      string         `json:"paper,omitempty"`
	Params     map[string]any `json:"params"`
	Rows       []Row          `json:"rows"`
	ElapsedSec float64        `json:"elapsed_sec"`
}

// Recorder accumulates an experiment's structured output. A nil *Recorder is
// valid and drops everything, so experiments record unconditionally.
type Recorder struct {
	mu  sync.Mutex
	art Artifact
}

// NewRecorder starts an artifact for one experiment.
func NewRecorder(e Experiment, cfg Config) *Recorder {
	return &Recorder{art: Artifact{
		V:          ArtifactSchemaV,
		Experiment: e.ID,
		Title:      e.Title,
		Paper:      e.Paper,
		Params: map[string]any{
			"threads":    cfg.Threads,
			"seconds":    cfg.Seconds,
			"scale":      cfg.Scale,
			"timepoints": cfg.TimePoints,
			"shards":     cfg.Shards,
		},
	}}
}

// AddRow appends one structured data point.
func (r *Recorder) AddRow(row Row) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.Rows = append(r.art.Rows, row)
	r.mu.Unlock()
}

// SetElapsed stamps the run's wall-clock duration.
func (r *Recorder) SetElapsed(sec float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.art.ElapsedSec = sec
	r.mu.Unlock()
}

// WriteFile writes BENCH_<experiment>.json under dir and returns its path.
func (r *Recorder) WriteFile(dir string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("bench: nil recorder")
	}
	r.mu.Lock()
	if r.art.Rows == nil {
		r.art.Rows = []Row{} // an empty artifact still carries [] not null
	}
	buf, err := json.MarshalIndent(r.art, "", "  ")
	name := r.art.Experiment
	r.mu.Unlock()
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	return path, os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Record appends a structured row to the experiment's artifact recorder, if
// one is attached; experiments call it next to each printed table row.
func (c Config) Record(row Row) { c.Rec.AddRow(row) }

// summaryRow flattens a FasterSummary into artifact fields: throughput,
// latency, commit shape, and the interesting metric deltas (histograms as
// percentile sub-maps, counters verbatim).
func summaryRow(sum FasterSummary) Row {
	row := Row{
		"mops":           sum.Mops,
		"avg_latency_us": sum.AvgLatencyUs,
		"commits":        len(sum.Commits),
	}
	if sum.CommitIntervalSec > 0 {
		row["commit_interval_sec"] = sum.CommitIntervalSec
	}
	if len(sum.Metrics.Counters) > 0 {
		counters := make(map[string]uint64, len(sum.Metrics.Counters))
		for k, v := range sum.Metrics.Counters {
			if v != 0 {
				counters[k] = v
			}
		}
		if len(counters) > 0 {
			row["counter_deltas"] = counters
		}
	}
	if len(sum.Metrics.Histograms) > 0 {
		hists := make(map[string]Row, len(sum.Metrics.Histograms))
		for k, h := range sum.Metrics.Histograms {
			if h.Count == 0 {
				continue
			}
			hists[k] = histRow(h)
		}
		if len(hists) > 0 {
			row["histogram_deltas"] = hists
		}
	}
	if len(sum.PhaseNanos) > 0 {
		row["phase_ns"] = sum.PhaseNanos
	}
	return row
}

// histRow flattens a histogram snapshot to its latency percentiles.
func histRow(h obs.HistogramSnapshot) Row {
	return Row{
		"count":   h.Count,
		"mean_ns": h.MeanNanos,
		"p50_ns":  h.P50Nanos,
		"p90_ns":  h.P90Nanos,
		"p99_ns":  h.P99Nanos,
		"p999_ns": h.P999Nanos,
		"max_ns":  h.MaxNanos,
	}
}

// seriesRow flattens a time series into parallel arrays (one Row).
func seriesRow(series []FasterSample) Row {
	t := make([]float64, len(series))
	mops := make([]float64, len(series))
	latUs := make([]float64, len(series))
	logMiB := make([]float64, len(series))
	for i, sm := range series {
		t[i] = sm.T
		mops[i] = sm.Mops
		latUs[i] = sm.LatencyUs
		logMiB[i] = float64(sm.LogBytes) / (1 << 20)
	}
	return Row{"t_sec": t, "mops": mops, "latency_us": latUs, "log_mib": logMiB}
}

// pctile returns the p-th percentile (0..1] of ns by nearest-rank, after
// sorting a copy. Returns 0 on an empty slice.
func pctile(ns []int64, p float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ns...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := int(p*float64(len(sorted))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
