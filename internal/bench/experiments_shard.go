package bench

import (
	"fmt"
	"io"

	"repro/internal/faster"
)

// shardscale measures the tentpole claim of the partitioned store: with the
// total thread count fixed, splitting the store into shard-per-core CPR
// domains removes cross-core contention on the index, the log tail and the
// epoch table, so zipfian YCSB throughput scales with the shard count while
// commits remain a single coordinated cross-shard checkpoint.
func init() {
	register(Experiment{
		ID:    "shardscale",
		Title: "Shard-per-core scaling, YCSB 50:50 zipfian, fixed threads",
		Paper: "Sec. 7.3 (partitioned variant)",
		Run: func(cfg Config, w io.Writer) error {
			cfg.fill()
			fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "shards", "Mops/sec", "speedup", "lat(us)")
			var base float64
			for _, n := range shardSweep(cfg.Threads) {
				p := fasterBase(cfg, 0.5, true, faster.FoldOver)
				p.Shards = n
				p.WithIndex = false
				d := p.Seconds
				p.CommitAt = []float64{d * 0.5}
				sum, err := RunFaster(p)
				if err != nil {
					return err
				}
				if base == 0 {
					base = sum.Mops
				}
				row := summaryRow(sum)
				row["shards"], row["speedup"] = n, sum.Mops/base
				cfg.Record(row)
				fmt.Fprintf(w, "%-8d %12.2f %11.2fx %12.3f\n",
					n, sum.Mops, sum.Mops/base, sum.AvgLatencyUs)
			}
			return nil
		}})
}

// shardSweep returns 1,2,4,... up to the thread count (a shard per core is
// the intended operating point; more shards than threads adds nothing).
func shardSweep(threads int) []int {
	out := []int{1}
	for n := 2; n <= threads; n *= 2 {
		out = append(out, n)
	}
	return out
}
