package bench

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/obs"
	"repro/internal/ycsb"
)

// FasterParams configures one FASTER measurement (Sec. 7.3).
type FasterParams struct {
	Threads   int
	Keys      uint64
	ValueSize int
	// Shards partitions the store (default 1 = the unpartitioned store).
	Shards int
	// ReadFrac is the fraction of reads; the rest are blind updates, or
	// read-modify-writes when RMW is set (the paper's "0:100 RMW").
	ReadFrac float64
	RMW      bool
	// Zipf selects the zipfian (theta 0.99) distribution; false = uniform.
	Zipf bool

	Kind     faster.CommitKind
	Transfer faster.VersionTransfer

	Seconds float64
	// CommitAt issues commits at these absolute times (seconds).
	CommitAt  []float64
	WithIndex bool
	// SampleEvery sets the time-series sampling interval (default 100ms).
	SampleEvery time.Duration

	// HybridLog sizing; zero values pick defaults fitting Keys in memory.
	PageBits, MemPages int

	// Store reuses a pre-loaded store; nil opens and loads a fresh one.
	Store *faster.Store
}

// FasterSample is one time-series point.
type FasterSample struct {
	T         float64
	Mops      float64
	LatencyUs float64 // mean sampled operation latency in the interval
	LogBytes  int64   // HybridLog extent (tail - begin), Fig. 12d
}

// FasterSummary aggregates a run.
type FasterSummary struct {
	Mops         float64
	AvgLatencyUs float64
	Commits      []faster.CommitResult
	Series       []FasterSample
	// CommitIntervalSec is the mean spacing between issued commits (for
	// the end-to-end experiment, Fig. 15).
	CommitIntervalSec float64
	// Metrics is the store's registry delta over the run.
	Metrics obs.Snapshot
	// PhaseNanos sums, per CPR phase, the tracer's span durations for the
	// commits this run issued (where does checkpoint time go?).
	PhaseNanos map[string]int64
}

// OpenLoadedStore opens a store sized for p and pre-loads all keys, as the
// paper does before each experiment ("Threads first load the key-value store
// with data").
func OpenLoadedStore(p FasterParams) (*faster.Store, error) {
	pageBits := p.PageBits
	memPages := p.MemPages
	if pageBits == 0 {
		pageBits = 18 // 256 KiB pages
	}
	if memPages == 0 {
		// Size memory to ~2x the loaded data set.
		recBytes := uint64(hlog.RecordSize(8, p.ValueSize))
		need := 2 * p.Keys * recBytes
		memPages = int(need>>uint(pageBits)) + 4
	}
	buckets := 1
	for uint64(buckets) < p.Keys/2 {
		buckets <<= 1
	}
	shards := p.Shards
	if shards < 1 {
		shards = 1
	}
	if shards > 1 {
		// MemPages is a store-wide budget split across shards; add the same
		// fixed headroom each shard would have had alone, keeping the data
		// budget comparable to the single-shard configuration.
		memPages += 4 * (shards - 1)
	}
	s, err := faster.Open(faster.Config{
		Shards:       shards,
		IndexBuckets: buckets,
		PageBits:     uint(pageBits),
		MemPages:     memPages,
		Kind:         p.Kind,
		Transfer:     p.Transfer,
	})
	if err != nil {
		return nil, err
	}
	// Parallel load.
	loaders := p.Threads
	if loaders < 1 {
		loaders = 1
	}
	var wg sync.WaitGroup
	per := p.Keys / uint64(loaders)
	for i := 0; i < loaders; i++ {
		lo := uint64(i) * per
		hi := lo + per
		if i == loaders-1 {
			hi = p.Keys
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.StopSession()
			val := make([]byte, p.ValueSize)
			var kb [8]byte
			for k := lo; k < hi; k++ {
				binary.LittleEndian.PutUint64(kb[:], k)
				binary.LittleEndian.PutUint64(val, k)
				if st := sess.Upsert(kb[:], val); st == faster.Pending {
					sess.CompletePending(true)
				}
			}
			sess.CompletePending(true)
		}()
	}
	wg.Wait()
	return s, nil
}

// RunFaster drives the YCSB-style key-value workload over a store.
func RunFaster(p FasterParams) (FasterSummary, error) {
	s := p.Store
	if s == nil {
		var err error
		s, err = OpenLoadedStore(p)
		if err != nil {
			return FasterSummary{}, err
		}
		defer s.Close()
	}
	theta := 0.0
	if p.Zipf {
		theta = 0.99
	}

	var stop atomic.Bool
	var opsTotal atomic.Int64
	var latSumNs, latCount atomic.Int64
	var wg sync.WaitGroup
	metricsBefore := s.Metrics().Snapshot()

	for i := 0; i < p.Threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.StartSession()
			gen := ycsb.NewGenerator(ycsb.TxnSpec{
				Keys: p.Keys, TxnSize: 1, ReadFraction: p.ReadFrac, Theta: theta,
			}, uint64(i)*1e9+17)
			var kb, vb [8]byte
			val := make([]byte, p.ValueSize)
			local := int64(0)
			for n := 0; ; n++ {
				if n%64 == 0 {
					if stop.Load() {
						break
					}
					opsTotal.Add(local)
					local = 0
					sess.CompletePending(false)
				}
				k := gen.NextKey()
				binary.LittleEndian.PutUint64(kb[:], k)
				sample := n%256 == 0
				var t0 time.Time
				if sample {
					t0 = time.Now()
				}
				if gen.IsWrite() {
					if p.RMW {
						binary.LittleEndian.PutUint64(vb[:], 1+uint64(n%8))
						sess.RMW(kb[:], vb[:])
					} else {
						binary.LittleEndian.PutUint64(val, uint64(n))
						sess.Upsert(kb[:], val)
					}
				} else {
					sess.Read(kb[:], nil)
				}
				if sample {
					latSumNs.Add(time.Since(t0).Nanoseconds())
					latCount.Add(1)
				}
				local++
			}
			opsTotal.Add(local)
			sess.CompletePending(true)
			for s.Phase() != faster.Rest {
				sess.Refresh()
				sess.CompletePending(false)
			}
			sess.StopSession()
		}()
	}

	start := time.Now()
	tick := p.SampleEvery
	if tick == 0 {
		tick = 100 * time.Millisecond
	}
	var series []FasterSample
	var commits []faster.CommitResult
	var commitTimes []float64
	var commitMu sync.Mutex
	nextMark := 0
	issued := 0
	lastOps, lastLat, lastLatN := int64(0), int64(0), int64(0)
	lastT := 0.0
	for {
		time.Sleep(tick)
		now := time.Since(start).Seconds()
		cur := opsTotal.Load()
		ls, ln := latSumNs.Load(), latCount.Load()
		sm := FasterSample{
			T:        now,
			Mops:     float64(cur-lastOps) / (now - lastT) / 1e6,
			LogBytes: s.LogBytes(),
		}
		if ln > lastLatN {
			sm.LatencyUs = float64(ls-lastLat) / float64(ln-lastLatN) / 1e3
		}
		series = append(series, sm)
		lastOps, lastT, lastLat, lastLatN = cur, now, ls, ln
		for nextMark < len(p.CommitAt) && now >= p.CommitAt[nextMark] {
			tok, err := s.Commit(faster.CommitOptions{
				WithIndex: p.WithIndex,
				OnDone: func(res faster.CommitResult) {
					commitMu.Lock()
					commits = append(commits, res)
					commitTimes = append(commitTimes, time.Since(start).Seconds())
					commitMu.Unlock()
				},
			})
			_ = tok
			if err == nil {
				issued++
			} else if err != faster.ErrCommitInProgress {
				return FasterSummary{}, fmt.Errorf("commit at %.1fs: %w", now, err)
			}
			nextMark++
		}
		if now >= p.Seconds {
			stop.Store(true)
			break
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	// OnDone fires just after the store returns to rest; give stragglers a
	// moment so the summary counts every issued commit.
	for deadline := time.Now().Add(2 * time.Second); ; {
		commitMu.Lock()
		n := len(commits)
		commitMu.Unlock()
		if n >= issued || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	commitMu.Lock()
	sum := FasterSummary{
		Mops:    float64(opsTotal.Load()) / elapsed / 1e6,
		Series:  series,
		Commits: append([]faster.CommitResult(nil), commits...),
	}
	if len(commitTimes) > 1 {
		sum.CommitIntervalSec = (commitTimes[len(commitTimes)-1] - commitTimes[0]) /
			float64(len(commitTimes)-1)
	}
	commitMu.Unlock()
	if n := latCount.Load(); n > 0 {
		sum.AvgLatencyUs = float64(latSumNs.Load()) / float64(n) / 1e3
	}
	sum.Metrics = s.Metrics().Snapshot().Sub(metricsBefore)
	sum.PhaseNanos = phaseNanos(s.Tracer(), sum.Commits)
	return sum, nil
}

// phaseNanos sums the tracer's closed phase spans, per phase, for the given
// commits' tokens.
func phaseNanos(tr *obs.Tracer, commits []faster.CommitResult) map[string]int64 {
	if tr == nil || len(commits) == 0 {
		return nil
	}
	tokens := make(map[string]bool, len(commits))
	for _, c := range commits {
		tokens[c.Token] = true
	}
	out := make(map[string]int64)
	for _, sp := range tr.Timeline().Spans {
		if sp.Open {
			continue
		}
		// A partitioned store traces each shard's machine as token/s<i>.
		tok := sp.Token
		if i := strings.LastIndex(tok, "/s"); i >= 0 {
			tok = tok[:i]
		}
		if !tokens[tok] {
			continue
		}
		out[sp.Phase] += sp.DurationNanos
	}
	return out
}
