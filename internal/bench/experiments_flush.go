package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

// ablate-flush measures commit latency against device write bandwidth,
// reproducing the flush-bound plateau of Sec. 7.3.1 ("It takes 6 secs to
// write 14GB of index and log, close to the sequential bandwidth of our
// SSD"): commit duration should track capture-bytes / bandwidth once the
// device, not the protocol, is the bottleneck.
func init() {
	register(Experiment{
		ID:    "ablate-flush",
		Title: "Ablation: commit latency vs device write bandwidth",
		Paper: "Sec. 7.3.1 flush plateau",
		Run: func(cfg Config, w io.Writer) error {
			keys := uint64(scaled(50_000, cfg.Scale*4))
			fmt.Fprintf(w, "%-16s %12s %14s %14s   (%d keys, full fold-over commit)\n",
				"bandwidth", "bytes", "commit(ms)", "expected(ms)", keys)
			for _, mbps := range []int64{0, 512, 128, 32} {
				dev := storage.NewMemDevice()
				dev.WriteBandwidth = mbps << 20
				s, err := faster.Open(faster.Config{
					IndexBuckets: 1 << 14, PageBits: 18, MemPages: 64, Device: dev,
				})
				if err != nil {
					return err
				}
				sess := s.StartSession()
				var kb, vb [8]byte
				for i := uint64(0); i < keys; i++ {
					binary.LittleEndian.PutUint64(kb[:], i)
					binary.LittleEndian.PutUint64(vb[:], i)
					if st := sess.Upsert(kb[:], vb[:]); st == faster.Pending {
						sess.CompletePending(true)
					}
				}
				start := time.Now()
				token, err := s.Commit(faster.CommitOptions{WithIndex: true})
				if err != nil {
					return err
				}
				var res faster.CommitResult
				for {
					var ok bool
					if res, ok = s.TryResult(token); ok {
						break
					}
					sess.Refresh()
				}
				elapsed := time.Since(start)
				if res.Err != nil {
					return res.Err
				}
				label := "unlimited"
				expected := 0.0
				if mbps > 0 {
					label = fmt.Sprintf("%d MiB/s", mbps)
					expected = float64(res.Bytes) / float64(mbps<<20) * 1000
				}
				cfg.Record(Row{"bandwidth_mbps": mbps, "bytes": res.Bytes,
					"commit_ms": float64(elapsed.Milliseconds()), "expected_ms": expected})
				fmt.Fprintf(w, "%-16s %12d %14.1f %14.1f\n",
					label, res.Bytes, float64(elapsed.Milliseconds()), expected)
				sess.StopSession()
				s.Close()
			}
			return nil
		}})
}
