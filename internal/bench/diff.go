package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// This file implements artifact diffing for regression gating: two
// BENCH_<experiment>.json artifacts (an old baseline and a new run) are
// flattened to dotted numeric metrics and compared row by row. Metrics with
// a known goodness direction (throughput up, latency down) become
// regressions when they move the wrong way past a threshold; everything
// else is informational. `fasterctl benchdiff` is the CLI face, and CI runs
// it against the committed results/ artifacts.

// LoadArtifact reads and validates one BENCH_*.json artifact.
func LoadArtifact(path string) (*Artifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(buf, &a); err != nil {
		return nil, fmt.Errorf("bench: %s: malformed artifact: %w", path, err)
	}
	if a.V != ArtifactSchemaV {
		return nil, fmt.Errorf("bench: %s: artifact schema v%d, want v%d", path, a.V, ArtifactSchemaV)
	}
	return &a, nil
}

// Direction classifies how a metric should move.
type Direction int

const (
	// DirInfo metrics have no inherent goodness direction; changes are
	// reported but never count as regressions.
	DirInfo Direction = iota
	// DirHigherBetter marks throughput-shaped metrics.
	DirHigherBetter
	// DirLowerBetter marks latency/lag-shaped metrics.
	DirLowerBetter
)

func (d Direction) String() string {
	switch d {
	case DirHigherBetter:
		return "higher-better"
	case DirLowerBetter:
		return "lower-better"
	}
	return "info"
}

// MetricDiff is one compared metric of one row.
type MetricDiff struct {
	Row        int       `json:"row"`
	Key        string    `json:"key"` // dotted path inside the row
	Old        float64   `json:"old"`
	New        float64   `json:"new"`
	PctChange  float64   `json:"pct_change"` // signed, new vs old
	Direction  Direction `json:"-"`
	Regression bool      `json:"regression"`
}

// DiffResult is the full comparison of two artifacts.
type DiffResult struct {
	Experiment  string       `json:"experiment"`
	Rows        int          `json:"rows"` // rows compared (min of the two)
	RowMismatch bool         `json:"row_mismatch,omitempty"`
	Diffs       []MetricDiff `json:"diffs"`
	Regressions int          `json:"regressions"`
}

// classifyMetric infers a metric's direction from its dotted key. The
// conventions match the repo's artifact field names: mops/ops/speedup-shaped
// keys are throughput, *_ns/*_us/latency/lag/behind-shaped keys are
// latencies or backlogs.
func classifyMetric(key string) Direction {
	last := key
	if i := strings.LastIndex(key, "."); i >= 0 {
		last = key[i+1:]
	}
	lk := strings.ToLower(last)
	switch {
	case lk == "mops" || lk == "speedup_vs_depth1" || strings.Contains(lk, "ops_per") ||
		strings.Contains(lk, "per_sec") || strings.Contains(lk, "throughput") ||
		strings.Contains(lk, "replies_per_flush"):
		return DirHigherBetter
	case strings.HasSuffix(lk, "_ns") || strings.HasSuffix(lk, "_us") ||
		strings.HasSuffix(lk, "_ms") || strings.Contains(lk, "latency") ||
		strings.Contains(lk, "lag") || strings.Contains(lk, "behind"):
		return DirLowerBetter
	}
	return DirInfo
}

// flattenRow walks a row's nested maps into dotted numeric leaves. Arrays
// (time series) and non-numeric values are skipped: they carry shapes, not
// single comparable metrics.
func flattenRow(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, sub := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenRow(key, sub, out)
		}
	case map[string]Row: // histogram_deltas before a JSON round-trip
		for k, sub := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			flattenRow(key, map[string]any(sub), out)
		}
	case map[string]uint64: // counter_deltas before a JSON round-trip
		for k, n := range x {
			key := k
			if prefix != "" {
				key = prefix + "." + k
			}
			out[key] = float64(n)
		}
	case float64:
		out[prefix] = x
	case int:
		out[prefix] = float64(x)
	case int64:
		out[prefix] = float64(x)
	case uint64:
		out[prefix] = float64(x)
	case json.Number:
		if f, err := x.Float64(); err == nil {
			out[prefix] = f
		}
	}
}

// DiffArtifacts compares two artifacts of the same experiment row by row.
// A directional metric that moves the wrong way by more than thresholdPct
// percent is a regression; a baseline value of zero never regresses (no
// meaningful relative change exists). Diffs are sorted by (row, key).
func DiffArtifacts(oldA, newA *Artifact, thresholdPct float64) (*DiffResult, error) {
	if oldA.Experiment != newA.Experiment {
		return nil, fmt.Errorf("bench: comparing different experiments: %q vs %q",
			oldA.Experiment, newA.Experiment)
	}
	res := &DiffResult{Experiment: newA.Experiment}
	res.Rows = len(oldA.Rows)
	if len(newA.Rows) < res.Rows {
		res.Rows = len(newA.Rows)
	}
	res.RowMismatch = len(oldA.Rows) != len(newA.Rows)
	for i := 0; i < res.Rows; i++ {
		oldFlat := map[string]float64{}
		newFlat := map[string]float64{}
		flattenRow("", map[string]any(oldA.Rows[i]), oldFlat)
		flattenRow("", map[string]any(newA.Rows[i]), newFlat)
		keys := make([]string, 0, len(oldFlat))
		for k := range oldFlat {
			if _, ok := newFlat[k]; ok {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov, nv := oldFlat[k], newFlat[k]
			d := MetricDiff{Row: i, Key: k, Old: ov, New: nv, Direction: classifyMetric(k)}
			if ov != 0 {
				d.PctChange = (nv - ov) / ov * 100
			}
			if ov != 0 && d.Direction != DirInfo {
				switch d.Direction {
				case DirHigherBetter:
					d.Regression = d.PctChange < -thresholdPct
				case DirLowerBetter:
					d.Regression = d.PctChange > thresholdPct
				}
			}
			if d.Regression {
				res.Regressions++
			}
			res.Diffs = append(res.Diffs, d)
		}
	}
	return res, nil
}
