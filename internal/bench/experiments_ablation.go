package bench

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/txdb"
	"repro/internal/ycsb"
)

// Ablation experiments for design choices DESIGN.md calls out beyond the
// paper's figures. fig12/fig18 already ablate fold-over vs snapshot and
// fig14 ablates fine- vs coarse-grained transfer; this file adds the
// incremental-checkpoint ablation (the Sec. 4.1 "capture only records that
// changed" optimization).

func init() {
	register(Experiment{
		ID:    "ablate-incr",
		Title: "Ablation: full vs incremental checkpoint size (txdb)",
		Paper: "Sec. 4.1 extension",
		Run: func(cfg Config, w io.Writer) error {
			records := scaled(100_000, cfg.Scale*4)
			fmt.Fprintf(w, "%-14s %-12s %14s %14s   (commit artifact bytes; %d records, sparse zipf updates)\n",
				"mode", "commit#", "bytes", "vs-full%", records)
			for _, incremental := range []bool{false, true} {
				db, err := txdb.Open(txdb.Config{
					Records: records, Checkpoints: nil,
					Incremental: incremental, FullEvery: 100,
				})
				if err != nil {
					return err
				}
				worker := db.NewWorker()
				gen := ycsb.NewGenerator(ycsb.TxnSpec{
					Keys: uint64(records), TxnSize: 1, ReadFraction: 0, Theta: 0.99,
				}, 7)
				val := make([]byte, 8)
				full := int64(records * 8)
				for c := 1; c <= 4; c++ {
					// A sparse burst of hot-key writes between commits.
					for n := 0; n < records/50; n++ {
						keys, _ := gen.NextTxn()
						binary.LittleEndian.PutUint64(val, uint64(n))
						txn := &txdb.Txn{Ops: []txdb.Op{{Key: keys[0], Write: true}}, WriteValue: val}
						for worker.Execute(txn) != txdb.Committed {
						}
					}
					token, err := db.Commit(nil)
					if err != nil {
						return err
					}
					var res txdb.CommitResult
					for {
						var ok bool
						if res, ok = db.TryResult(token); ok {
							break
						}
						worker.Refresh()
					}
					if res.Err != nil {
						return res.Err
					}
					mode := "full"
					if incremental {
						mode = "incremental"
					}
					cfg.Record(Row{"mode": mode, "commit": c, "bytes": res.Bytes,
						"vs_full_pct": 100 * float64(res.Bytes) / float64(full)})
					fmt.Fprintf(w, "%-14s %-12d %14d %13.1f%%\n",
						mode, c, res.Bytes, 100*float64(res.Bytes)/float64(full))
				}
				worker.Close()
				db.Close()
			}
			return nil
		}})
}
