package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

// recoveryttfo measures time-to-first-op (TTFO) after a crash: full replay
// recovery vs instant restore (Config.InstantRestore). Both recover the same
// crash image on a device with a fixed per-I/O latency (an SSD-ish cost
// model; the build phase runs latency-free so only recovery pays it).
//
// The asymmetry under test: full replay walks the committed suffix with two
// random device reads per record before serving anything, while instant
// restore's analysis pass materializes each suffix page with one sequential
// read, then serves immediately — the first op blocks only on analysis plus
// its own bucket's warm-up, and the sweeper finishes the rest in background.
// TTFO is measured to the completion of a read of a suffix-overwritten key,
// so the instant number includes an on-demand bucket warm, not just Recover
// returning.
func init() {
	register(Experiment{
		ID:    "recoveryttfo",
		Title: "Instant restore: time-to-first-op vs full replay",
		Paper: "Sec. 4 recovery, instant-restore extension",
		Run: func(cfg Config, w io.Writer) error {
			const devLatency = 20 * time.Microsecond
			base := uint64(scaled(10_000, cfg.Scale))
			suffixes := []uint64{
				uint64(scaled(5_000, cfg.Scale)),
				uint64(scaled(20_000, cfg.Scale)),
				uint64(scaled(80_000, cfg.Scale)),
			}
			fmt.Fprintf(w, "device read/write latency %v; %d base keys\n", devLatency, base)
			fmt.Fprintf(w, "%12s %10s %12s %12s %12s %10s\n",
				"suffix", "mode", "recover(ms)", "ttfo(ms)", "warm(ms)", "speedup")

			var lastRatio float64
			for _, sfx := range suffixes {
				dev := storage.NewMemDevice()
				ckpts := storage.NewMemCheckpointStore()
				open := faster.Config{IndexBuckets: 1 << 12, PageBits: 14,
					MemPages: 8, Device: dev, Checkpoints: ckpts}
				if err := buildRestoreBenchImage(open, base, sfx); err != nil {
					return err
				}

				// Read a key the suffix overwrote: under instant restore this
				// forces analysis + one on-demand bucket warm before the value
				// is visible, the honest definition of "first op served".
				probe := uint64(0) // overwritten by every suffix size (j=0 writes key 0)
				var ttfoMs [2]float64
				for mi, instant := range []bool{false, true} {
					rdev := dev.Clone()
					rdev.Latency = devLatency
					rcfg := open
					rcfg.Device = rdev
					rcfg.Checkpoints = ckpts.Clone()
					rcfg.InstantRestore = instant

					t0 := time.Now()
					r, err := faster.Recover(rcfg)
					if err != nil {
						return err
					}
					recoverMs := ms(time.Since(t0))
					sess := r.StartSession()
					var kb [8]byte
					binary.LittleEndian.PutUint64(kb[:], probe)
					var got uint64
					var done bool
					val, st := sess.Read(kb[:], func(v []byte, s2 faster.Status) {
						done = true
						if s2 == faster.Ok {
							got = binary.LittleEndian.Uint64(v)
						}
					})
					if st == faster.Pending {
						sess.CompletePending(true)
					} else if st == faster.Ok {
						done, got = true, binary.LittleEndian.Uint64(val)
					}
					if !done || got != probe+1 {
						sess.StopSession()
						r.Close()
						return fmt.Errorf("recoveryttfo: probe key %d = %d (done=%v), want suffix value %d",
							probe, got, done, probe+1)
					}
					ttfoMs[mi] = ms(time.Since(t0))
					warmMs := 0.0
					mode := "full"
					if instant {
						mode = "instant"
						if err := r.WaitRestored(); err != nil {
							sess.StopSession()
							r.Close()
							return err
						}
						warmMs = ms(time.Since(t0))
					}
					sess.StopSession()
					r.Close()

					row := Row{"suffix_records": sfx, "mode": mode,
						"dev_latency_us": float64(devLatency.Microseconds()),
						"recover_ms":     recoverMs, "ttfo_ms": ttfoMs[mi],
						"warm_ms": warmMs}
					speedup := ""
					if instant && ttfoMs[1] > 0 {
						lastRatio = ttfoMs[0] / ttfoMs[1]
						row["ttfo_speedup"] = lastRatio
						speedup = fmt.Sprintf("%.1fx", lastRatio)
					}
					cfg.Record(row)
					fmt.Fprintf(w, "%12d %10s %12.1f %12.1f %12.1f %10s\n",
						sfx, mode, recoverMs, ttfoMs[mi], warmMs, speedup)
				}
			}
			fmt.Fprintf(w, "largest suffix: instant-restore TTFO is %.1fx lower than full replay\n",
				lastRatio)
			return nil
		}})
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// buildRestoreBenchImage loads base keys (key i -> i) under an index
// checkpoint, then a suffix of updates (key j%(2*base) -> j%(2*base)+1, half
// overwrites, half fresh keys) under a log-only checkpoint, and closes the
// store — the crash image every recovery mode starts from.
func buildRestoreBenchImage(open faster.Config, base, sfx uint64) error {
	s, err := faster.Open(open)
	if err != nil {
		return err
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	var kb, vb [8]byte
	put := func(k, v uint64) {
		binary.LittleEndian.PutUint64(kb[:], k)
		binary.LittleEndian.PutUint64(vb[:], v)
		if st := sess.Upsert(kb[:], vb[:]); st == faster.Pending {
			sess.CompletePending(true)
		}
	}
	commit := func(idx bool) error {
		token, err := s.Commit(faster.CommitOptions{WithIndex: idx})
		if err != nil {
			return err
		}
		for {
			if res, ok := s.TryResult(token); ok {
				return res.Err
			}
			sess.Refresh()
			sess.CompletePending(false)
		}
	}
	for i := uint64(0); i < base; i++ {
		put(i, i)
	}
	if err := commit(true); err != nil {
		return err
	}
	for j := uint64(0); j < sfx; j++ {
		k := j % (2 * base)
		put(k, k+1)
	}
	return commit(false)
}
