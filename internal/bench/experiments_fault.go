package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
	"repro/internal/storage"
)

// faulttolerance measures how the self-healing storage paths hold up under
// injected transient faults: throughput and commit latency vs the injected
// fault rate. Transient read/write errors and torn artifact writes are
// retried (storage.DefaultRetry) or rewritten whole, so the expectation is
// graceful degradation — commits slow down but keep succeeding — rather
// than failures.
func init() {
	register(Experiment{
		ID:    "faulttolerance",
		Title: "Throughput and commit latency vs injected transient-fault rate",
		Paper: "robustness (no paper counterpart)",
		Run: func(cfg Config, w io.Writer) error {
			keys := uint64(scaled(20_000, cfg.Scale*4))
			threads := cfg.Threads
			if threads < 1 {
				threads = 1
			}
			secs := cfg.Seconds
			if secs <= 0 {
				secs = 1.0
			}
			fmt.Fprintf(w, "%-12s %10s %12s %10s %10s %10s %10s   (%d keys, %d threads, %.1fs/point)\n",
				"fault-rate", "Mops", "commit(ms)", "commits", "failed", "retries", "injected",
				keys, threads, secs)
			for _, rate := range []float64{0, 1e-4, 1e-3, 5e-3, 2e-2} {
				if err := runFaultPoint(cfg, w, rate, keys, threads, secs); err != nil {
					return err
				}
			}
			return nil
		}})
}

// runFaultPoint runs one YCSB-style measurement against a store whose device
// and checkpoint store inject transient faults at the given rate.
func runFaultPoint(cfg Config, w io.Writer, rate float64, keys uint64, threads int, secs float64) error {
	reg := obs.NewRegistry()
	inj := storage.NewInjector(storage.FaultConfig{
		Seed:           42,
		ReadErrorRate:  rate,
		WriteErrorRate: rate,
		TornWriteRate:  rate / 2,
		Metrics:        reg,
	})
	dev := storage.NewFaultDevice(storage.NewMemDevice(), inj)
	cs := storage.NewFaultCheckpointStore(storage.NewMemCheckpointStore(), inj)

	buckets := 1
	for uint64(buckets) < keys/2 {
		buckets <<= 1
	}
	s, err := faster.Open(faster.Config{
		IndexBuckets: buckets, PageBits: 16, MemPages: 64,
		Device: dev, Checkpoints: cs, Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	// Load.
	load := s.StartSession()
	var kb, vb [8]byte
	for i := uint64(0); i < keys; i++ {
		binary.LittleEndian.PutUint64(kb[:], i)
		binary.LittleEndian.PutUint64(vb[:], i)
		if st := load.Upsert(kb[:], vb[:]); st == faster.Pending {
			load.CompletePending(true)
		}
	}
	load.CompletePending(true)
	load.StopSession()

	// Measure: worker threads run a 50:50 read/update mix while the main
	// goroutine issues commits back to back, timing each one.
	var stop atomic.Bool
	var ops atomic.Uint64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			sess := s.StartSession()
			defer sess.StopSession()
			var kb, vb [8]byte
			x := seed*0x9e3779b97f4a7c15 + 1
			for !stop.Load() {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				k := x % keys
				binary.LittleEndian.PutUint64(kb[:], k)
				if x&1 == 0 {
					binary.LittleEndian.PutUint64(vb[:], x)
					if st := sess.Upsert(kb[:], vb[:]); st == faster.Pending {
						sess.CompletePending(true)
					}
				} else {
					if _, st := sess.Read(kb[:], nil); st == faster.Pending {
						sess.CompletePending(true)
					}
				}
				ops.Add(1)
			}
			sess.CompletePending(true)
		}(uint64(t))
	}

	start := time.Now()
	deadline := start.Add(time.Duration(secs * float64(time.Second)))
	var commits, failed int
	var commitNanos int64
	for time.Now().Before(deadline) {
		t0 := time.Now()
		token, err := s.Commit(faster.CommitOptions{})
		if err != nil {
			// Another commit still in flight (should not happen: we wait).
			time.Sleep(time.Millisecond)
			continue
		}
		for {
			if res, ok := s.TryResult(token); ok {
				if res.Err != nil {
					failed++
				} else {
					commits++
					commitNanos += time.Since(t0).Nanoseconds()
				}
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	elapsed := time.Since(start)
	stop.Store(true)
	wg.Wait()

	mops := float64(ops.Load()) / elapsed.Seconds() / 1e6
	commitMs := 0.0
	if commits > 0 {
		commitMs = float64(commitNanos) / float64(commits) / 1e6
	}
	snap := reg.Snapshot()
	retries := snap.Counters["storage_io_retries_total"]
	injected := snap.Counters["fault_injected_transient_total"] +
		snap.Counters["fault_injected_torn_total"]
	cfg.Record(Row{
		"fault_rate": rate, "mops": mops, "commit_ms": commitMs, "commits": commits,
		"failed": failed, "retries": retries, "injected": injected,
	})
	fmt.Fprintf(w, "%-12g %10.3f %12.2f %10d %10d %10d %10d\n",
		rate, mops, commitMs, commits, failed, retries, injected)
	return nil
}
