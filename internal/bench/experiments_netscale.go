package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/kvserver"
	"repro/internal/storage"
)

// netscale measures what the v3 pipelined wire protocol buys: blind-write
// throughput against a live kvserver swept over connections × pipeline depth.
// Depth 1 is the classic synchronous client (one op per network round-trip);
// deeper pipelines amortize the round-trip, the server-side epoch protection
// (one refresh per BATCH), and the reply write syscalls (coalescing) across
// the whole run. The headline row is single-connection depth 64 vs depth 1 —
// the round-trip dominates a loopback sync client, so pipelining should buy
// well over 5x.
func init() {
	register(Experiment{
		ID:    "netscale",
		Title: "Pipelined wire throughput: connections x batch depth (protocol v3)",
		Paper: "Sec. 6 (throughput scaling), wire-protocol extension",
		Run:   runNetScale,
	})
}

func runNetScale(cfg Config, w io.Writer) error {
	cfg.fill()
	duration := cfg.Seconds
	keys := uint64(scaled(100_000, cfg.Scale))
	connCounts := []int{1, 2, 4}
	depths := []int{1, 8, 64}

	fmt.Fprintf(w, "%-6s %-6s %10s %10s %12s %14s\n",
		"conns", "depth", "Mops/sec", "speedup", "flushes", "replies/flush")
	base := map[int]float64{}
	for _, nc := range connCounts {
		for _, depth := range depths {
			mops, row, err := runNetScalePoint(cfg, nc, depth, keys, duration)
			if err != nil {
				return err
			}
			if depth == depths[0] {
				base[nc] = mops
			}
			speedup := 0.0
			if base[nc] > 0 {
				speedup = mops / base[nc]
			}
			row["speedup_vs_depth1"] = speedup
			flushes, _ := row["coalesced_flushes"].(uint64)
			rpf, _ := row["replies_per_flush"].(float64)
			fmt.Fprintf(w, "%-6d %-6d %10.3f %9.1fx %12d %14.1f\n",
				nc, depth, mops, speedup, flushes, rpf)
			cfg.Record(row)
		}
	}
	return nil
}

func runNetScalePoint(cfg Config, conns, depth int, keys uint64, duration float64) (float64, Row, error) {
	addr := cfg.Addr
	var store *faster.Store
	if addr == "" {
		buckets := 1
		for uint64(buckets) < keys/2 {
			buckets <<= 1
		}
		recBytes := uint64(hlog.RecordSize(8, 8))
		memPages := int(2*keys*recBytes>>18) + 4
		shards := cfg.Shards
		if shards > 1 {
			memPages += 4 * (shards - 1)
		}
		st, err := faster.Open(faster.Config{
			Shards:       shards,
			IndexBuckets: buckets,
			PageBits:     18,
			MemPages:     memPages,
			DeviceFactory: func(int) (storage.Device, error) {
				return storage.NewMemDevice(), nil
			},
		})
		if err != nil {
			return 0, nil, err
		}
		defer st.Close()
		store = st
		srv := kvserver.NewServer(store)
		go srv.Serve("127.0.0.1:0") //nolint:errcheck
		defer srv.Close()
		for srv.Addr() == nil {
			time.Sleep(time.Millisecond)
		}
		addr = srv.Addr().String()
	}

	mops := netLoad(addr, conns, depth, keys, duration)
	row := Row{"conns": conns, "depth": depth, "mops": mops}
	if store != nil {
		snap := store.Metrics().Snapshot()
		row["batch_depth"] = histRow(snap.Histograms["faster_batch_depth"])
		flushes := snap.Counters["faster_net_coalesced_flushes_total"]
		replies := snap.Counters["faster_net_coalesced_replies_total"]
		row["coalesced_flushes"] = flushes
		row["coalesced_replies"] = replies
		if flushes > 0 {
			row["replies_per_flush"] = float64(replies) / float64(flushes)
		}
	}
	return mops, row, nil
}

// netLoad drives blind writes at addr from conns connections for duration
// seconds. depth 1 issues synchronous Sets; deeper runs queue depth ops on a
// reused Pipeline and Flush them as one BATCH frame.
func netLoad(addr string, conns, depth int, keys uint64, duration float64) float64 {
	var opsTotal atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := kvserver.Dial(addr, "")
			if err != nil {
				return
			}
			defer c.Close()
			p := c.Pipeline()
			rng := seed*2654435761 + 1
			var kb, vb [8]byte
			for {
				select {
				case <-stop:
					return
				default:
				}
				if depth == 1 {
					rng = rng*6364136223846793005 + 1442695040888963407
					binary.LittleEndian.PutUint64(kb[:], rng%keys)
					binary.LittleEndian.PutUint64(vb[:], rng)
					if _, err := c.Set(kb[:], vb[:]); err != nil {
						return
					}
					opsTotal.Add(1)
					continue
				}
				for b := 0; b < depth; b++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					binary.LittleEndian.PutUint64(kb[:], rng%keys)
					binary.LittleEndian.PutUint64(vb[:], rng)
					p.Set(kb[:], vb[:])
				}
				if _, err := p.Flush(); err != nil {
					return
				}
				opsTotal.Add(uint64(depth))
			}
		}(uint64(i))
	}
	start := time.Now()
	time.Sleep(time.Duration(duration * float64(time.Second)))
	close(stop)
	wg.Wait()
	return float64(opsTotal.Load()) / time.Since(start).Seconds() / 1e6
}
