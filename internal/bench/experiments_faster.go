package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/ycsb"
)

// fasterBase builds FasterParams at laptop scale: the paper's 250M keys and
// 10s/40s commit marks shrink to cfg.Scale-proportional keys and a run of a
// few seconds with commits at 25%/60%.
func fasterBase(cfg Config, readFrac float64, zipf bool, kind faster.CommitKind) FasterParams {
	dur := 4 * cfg.TimePoints
	return FasterParams{
		Threads:     cfg.Threads,
		Shards:      cfg.Shards,
		Keys:        uint64(scaled(200_000, cfg.Scale*4)),
		ValueSize:   8,
		ReadFrac:    readFrac,
		Zipf:        zipf,
		Kind:        kind,
		Seconds:     dur,
		CommitAt:    []float64{dur * 0.25, dur * 0.6},
		WithIndex:   true,
		SampleEvery: time.Duration(dur*1000/16) * time.Millisecond,
	}
}

// fig12 prints throughput (or log growth) over time for fold-over vs
// snapshot, zipf vs uniform.
func fig12(id, title, paper string, readFrac float64, logGrowth bool) {
	register(Experiment{ID: id, Title: title, Paper: paper,
		Run: func(cfg Config, w io.Writer) error {
			for _, kind := range []faster.CommitKind{faster.FoldOver, faster.Snapshot} {
				for _, zipf := range []bool{true, false} {
					p := fasterBase(cfg, readFrac, zipf, kind)
					sum, err := RunFaster(p)
					if err != nil {
						return err
					}
					dist := "uniform"
					if zipf {
						dist = "zipf"
					}
					row := summaryRow(sum)
					row["kind"], row["dist"], row["series"] = kind.String(), dist, seriesRow(sum.Series)
					cfg.Record(row)
					fmt.Fprintf(w, "%-20s", kind.String()+" "+dist)
					for _, sm := range sum.Series {
						if logGrowth {
							fmt.Fprintf(w, " %7.2f", float64(sm.LogBytes)/(1<<20))
						} else {
							fmt.Fprintf(w, " %7.2f", sm.Mops)
						}
					}
					if logGrowth {
						fmt.Fprintf(w, "   (HybridLog MiB; commits at 25%%/60%%)\n")
					} else {
						fmt.Fprintf(w, "   (Mops/sec per interval; commits at 25%%/60%%)\n")
					}
				}
			}
			return nil
		}})
}

func init() {
	fig12("fig12a", "FASTER throughput vs time, YCSB 90:10, full commits", "Fig. 12a", 0.9, false)
	fig12("fig12b", "FASTER throughput vs time, YCSB 50:50, full commits", "Fig. 12b", 0.5, false)
	fig12("fig12c", "FASTER throughput vs time, YCSB 0:100, full commits", "Fig. 12c", 0.0, false)
	fig12("fig12d", "HybridLog growth vs time, YCSB 0:100", "Fig. 12d", 0.0, true)

	register(Experiment{ID: "fig13", Title: "FASTER throughput vs time, varying threads",
		Paper: "Fig. 13a/13b",
		Run: func(cfg Config, w io.Writer) error {
			for _, zipf := range []bool{true, false} {
				dist := "uniform"
				if zipf {
					dist = "zipf"
				}
				for _, t := range threadSweep(cfg.Threads) {
					p := fasterBase(cfg, 0.5, zipf, faster.FoldOver)
					p.Threads = t
					sum, err := RunFaster(p)
					if err != nil {
						return err
					}
					row := summaryRow(sum)
					row["dist"], row["threads"], row["series"] = dist, t, seriesRow(sum.Series)
					cfg.Record(row)
					fmt.Fprintf(w, "%-16s", fmt.Sprintf("%s thr=%d", dist, t))
					for _, sm := range sum.Series {
						fmt.Fprintf(w, " %7.2f", sm.Mops)
					}
					fmt.Fprintln(w, "   (Mops/sec per interval)")
				}
			}
			return nil
		}})

	register(Experiment{ID: "fig14", Title: "Operation latency: fine vs coarse version transfer",
		Paper: "Fig. 14a/14b",
		Run: func(cfg Config, w io.Writer) error {
			for _, rmw := range []bool{false, true} {
				kind := "blind"
				if rmw {
					kind = "RMW"
				}
				for _, transfer := range []faster.VersionTransfer{faster.FineGrained, faster.CoarseGrained} {
					for _, zipf := range []bool{true, false} {
						p := fasterBase(cfg, 0.0, zipf, faster.FoldOver)
						p.RMW = rmw
						p.Transfer = transfer
						p.WithIndex = false // log-only commits, as in the paper
						sum, err := RunFaster(p)
						if err != nil {
							return err
						}
						dist := "uniform"
						if zipf {
							dist = "zipf"
						}
						row := summaryRow(sum)
						row["op"], row["transfer"], row["dist"] = kind, transfer.String(), dist
						row["series"] = seriesRow(sum.Series)
						cfg.Record(row)
						fmt.Fprintf(w, "%-28s", fmt.Sprintf("%s %s %s", kind, transfer, dist))
						for _, sm := range sum.Series {
							fmt.Fprintf(w, " %7.3f", sm.LatencyUs)
						}
						fmt.Fprintln(w, "   (us per interval; commits at 25%/60%)")
					}
				}
			}
			return nil
		}})

	register(Experiment{ID: "fig15", Title: "End-to-end: client buffers trimmed at CPR points",
		Paper: "Fig. 15",
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-12s %-10s %12s %16s\n", "buffer(KB)", "dist", "Mops/sec", "commit-int(s)")
			for _, bufKB := range []int{31, 61, 122, 244} {
				for _, zipf := range []bool{true, false} {
					mops, interval, err := runEndToEnd(cfg, bufKB, zipf)
					if err != nil {
						return err
					}
					dist := "uniform"
					if zipf {
						dist = "zipf"
					}
					cfg.Record(Row{"buffer_kb": bufKB, "dist": dist, "mops": mops,
						"commit_interval_sec": interval})
					fmt.Fprintf(w, "%-12d %-10s %12.2f %16.3f\n", bufKB, dist, mops, interval)
				}
			}
			return nil
		}})

	register(Experiment{ID: "fig18a", Title: "Frequent log-only commits, YCSB 90:10", Paper: "Fig. 18a",
		Run: frequentCommits(0.9, false)})
	register(Experiment{ID: "fig18b", Title: "Frequent log-only commits, YCSB 50:50", Paper: "Fig. 18b",
		Run: frequentCommits(0.5, false)})
	register(Experiment{ID: "fig18c", Title: "Frequent log-only commits, YCSB 0:100", Paper: "Fig. 18c",
		Run: frequentCommits(0.0, false)})
	register(Experiment{ID: "fig18d", Title: "HybridLog growth, frequent log-only commits", Paper: "Fig. 18d",
		Run: frequentCommits(0.0, true)})
}

// frequentCommits runs the Fig. 18 variant: log-only commits at a fixed
// cadence (the paper's every-15s becomes four evenly spaced commits).
func frequentCommits(readFrac float64, logGrowth bool) func(cfg Config, w io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		for _, kind := range []faster.CommitKind{faster.FoldOver, faster.Snapshot} {
			for _, zipf := range []bool{true, false} {
				p := fasterBase(cfg, readFrac, zipf, kind)
				p.WithIndex = false
				d := p.Seconds
				p.CommitAt = []float64{d * 0.2, d * 0.4, d * 0.6, d * 0.8}
				sum, err := RunFaster(p)
				if err != nil {
					return err
				}
				dist := "uniform"
				if zipf {
					dist = "zipf"
				}
				row := summaryRow(sum)
				row["kind"], row["dist"], row["series"] = kind.String(), dist, seriesRow(sum.Series)
				cfg.Record(row)
				fmt.Fprintf(w, "%-20s", kind.String()+" "+dist)
				for _, sm := range sum.Series {
					if logGrowth {
						fmt.Fprintf(w, " %7.2f", float64(sm.LogBytes)/(1<<20))
					} else {
						fmt.Fprintf(w, " %7.2f", sm.Mops)
					}
				}
				if logGrowth {
					fmt.Fprintln(w, "   (HybridLog MiB; log-only commits at 20/40/60/80%)")
				} else {
					fmt.Fprintln(w, "   (Mops/sec; log-only commits at 20/40/60/80%)")
				}
			}
		}
		return nil
	}
}

// runEndToEnd implements the Fig. 15 scenario: each client session keeps a
// bounded buffer of in-flight (uncommitted) operations; at 80% occupancy it
// requests a log-only fold-over commit, and trims the buffer to its CPR
// point when the commit completes. Full buffers block the client.
func runEndToEnd(cfg Config, bufKB int, zipf bool) (mops, avgCommitInterval float64, err error) {
	p := fasterBase(cfg, 0.5, zipf, faster.FoldOver)
	p.WithIndex = false
	s, err := OpenLoadedStore(p)
	if err != nil {
		return 0, 0, err
	}
	defer s.Close()

	bufCap := bufKB * 1024 / 16 // 16 bytes per in-flight entry, as in Sec. 7.3.4
	theta := 0.0
	if zipf {
		theta = 0.99
	}
	duration := p.Seconds

	var stop atomic.Bool
	var opsTotal atomic.Int64
	var commitTimes []time.Time
	var commitMu sync.Mutex
	var commitActive atomic.Bool

	type client struct {
		sess    *faster.Session
		trimmed atomic.Uint64 // serial up to which the buffer is trimmed
	}
	clients := make([]*client, p.Threads)
	for i := range clients {
		clients[i] = &client{sess: s.StartSession()}
	}

	requestCommit := func() {
		if commitActive.Swap(true) {
			return
		}
		_, cerr := s.Commit(faster.CommitOptions{OnDone: func(res faster.CommitResult) {
			commitMu.Lock()
			commitTimes = append(commitTimes, time.Now())
			commitMu.Unlock()
			for _, c := range clients {
				if pt, ok := res.Serials[c.sess.ID()]; ok {
					c.trimmed.Store(pt)
				}
			}
			commitActive.Store(false)
		}})
		if cerr != nil {
			commitActive.Store(false)
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	for i, c := range clients {
		i, c := i, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			gen := ycsb.NewGenerator(ycsb.TxnSpec{Keys: p.Keys, TxnSize: 1,
				ReadFraction: 0.5, Theta: theta}, uint64(i)*31+5)
			var kb, vb [8]byte
			local := int64(0)
			for n := 0; ; n++ {
				if n%64 == 0 {
					if stop.Load() {
						break
					}
					opsTotal.Add(local)
					local = 0
					c.sess.CompletePending(false)
				}
				// In-flight = issued - trimmed; block (refreshing) when full.
				inflight := c.sess.Serial() - c.trimmed.Load()
				if inflight >= uint64(bufCap) {
					requestCommit()
					c.sess.Refresh()
					c.sess.CompletePending(false)
					continue
				}
				if inflight >= uint64(bufCap)*8/10 {
					requestCommit()
				}
				k := gen.NextKey()
				binary.LittleEndian.PutUint64(kb[:], k)
				if gen.IsWrite() {
					binary.LittleEndian.PutUint64(vb[:], uint64(n))
					c.sess.Upsert(kb[:], vb[:])
				} else {
					c.sess.Read(kb[:], nil)
				}
				local++
			}
			opsTotal.Add(local)
			c.sess.CompletePending(true)
			for s.Phase() != faster.Rest {
				c.sess.Refresh()
				c.sess.CompletePending(false)
			}
			c.sess.StopSession()
		}()
	}
	for time.Since(start).Seconds() < duration {
		time.Sleep(20 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	mops = float64(opsTotal.Load()) / elapsed / 1e6
	commitMu.Lock()
	if len(commitTimes) > 1 {
		avgCommitInterval = commitTimes[len(commitTimes)-1].Sub(commitTimes[0]).Seconds() /
			float64(len(commitTimes)-1)
	}
	commitMu.Unlock()
	return mops, avgCommitInterval, nil
}
