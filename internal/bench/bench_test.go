package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/txdb"
	"repro/internal/ycsb"
)

// tinyCfg is a smoke-test configuration: every experiment must run end to
// end in well under a second of measured time.
func tinyCfg() Config {
	return Config{Threads: 2, Seconds: 0.05, Scale: 0.02, TimePoints: 0.05}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must be registered.
	want := []string{
		"fig2",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e",
		"fig11a", "fig11b", "fig11c", "fig11d", "fig11e",
		"fig12a", "fig12b", "fig12c", "fig12d",
		"fig13", "fig14", "fig15",
		"fig16a", "fig16b", "fig16c", "fig16d", "fig16e",
		"fig17a", "fig17b", "fig17c", "fig17d", "fig17e",
		"fig18a", "fig18b", "fig18c", "fig18d",
		"ablate-incr", "ablate-flush", "ablate-recovery",
		"shardscale",
		"repllag",
		"faulttolerance",
		"durabilitylag",
		"tailtrace",
		"netscale",
		"ingest",
		"recoveryttfo",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke-running every experiment is slow; run without -short")
	}
	cfg := tinyCfg()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(cfg, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestRunTxdbBasics(t *testing.T) {
	spec := ycsb.TxnSpec{Keys: 1000, TxnSize: 1, ReadFraction: 0.5, Theta: 0.1}
	res, err := RunTxdb(TxdbParams{
		Engine: txdb.EngineCPR, Threads: 2, ValueSize: 8, Seconds: 0.1,
		Records: 1000,
		Source:  func(w int) TxnSource { return newYCSBSource(spec, 8, uint64(w)+1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mtps <= 0 {
		t.Fatalf("throughput = %v", res.Mtps)
	}
	if res.AvgLatencyUs <= 0 {
		t.Fatalf("latency = %v", res.AvgLatencyUs)
	}
}

func TestRunTxdbWithCommitsAndSeries(t *testing.T) {
	spec := ycsb.TxnSpec{Keys: 1000, TxnSize: 1, ReadFraction: 0.5, Theta: 0.1}
	res, err := RunTxdb(TxdbParams{
		Engine: txdb.EngineCPR, Threads: 2, ValueSize: 8, Seconds: 1.0,
		Records:     1000,
		CommitAt:    []float64{0.2, 0.7},
		SampleEvery: 50 * time.Millisecond,
		Source:      func(w int) TxnSource { return newYCSBSource(spec, 8, uint64(w)+1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// A mark is skipped when the previous commit is still in flight, so at
	// least one of the two well-separated marks must land.
	if res.CommitCount < 1 {
		t.Fatalf("commits = %d, want >= 1", res.CommitCount)
	}
	if len(res.Series) < 3 {
		t.Fatalf("series too short: %d", len(res.Series))
	}
}

func TestRunFasterBasics(t *testing.T) {
	sum, err := RunFaster(FasterParams{
		Threads: 2, Keys: 2000, ValueSize: 8, ReadFrac: 0.5,
		Seconds: 0.2, CommitAt: []float64{0.1}, WithIndex: true,
		SampleEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Mops <= 0 {
		t.Fatalf("throughput = %v", sum.Mops)
	}
	if len(sum.Commits) != 1 {
		t.Fatalf("commits completed = %d, want 1", len(sum.Commits))
	}
	if len(sum.Series) == 0 {
		t.Fatal("no time series")
	}
}

func TestRunFasterRMWAndTransfers(t *testing.T) {
	for _, tr := range []faster.VersionTransfer{faster.FineGrained, faster.CoarseGrained} {
		sum, err := RunFaster(FasterParams{
			Threads: 2, Keys: 1000, ValueSize: 8, ReadFrac: 0, RMW: true,
			Zipf: true, Transfer: tr, Seconds: 0.2, CommitAt: []float64{0.1},
		})
		if err != nil {
			t.Fatalf("%v: %v", tr, err)
		}
		if sum.Mops <= 0 {
			t.Fatalf("%v: no throughput", tr)
		}
		if len(sum.Commits) != 1 {
			t.Fatalf("%v: commit did not complete", tr)
		}
	}
}

func TestEndToEndRunner(t *testing.T) {
	cfg := tinyCfg()
	mops, _, err := runEndToEnd(cfg, 31, true)
	if err != nil {
		t.Fatal(err)
	}
	if mops <= 0 {
		t.Fatal("no throughput in end-to-end runner")
	}
}

func TestThreadSweep(t *testing.T) {
	got := threadSweep(8)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("sweep = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", got, want)
		}
	}
	if s := threadSweep(6); s[len(s)-1] != 6 {
		t.Fatalf("sweep(6) = %v must end at 6", s)
	}
}

func TestExperimentOutputShape(t *testing.T) {
	// fig11e must produce one row per transaction size.
	e, _ := Lookup("fig11e")
	var buf bytes.Buffer
	if err := e.Run(tinyCfg(), &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 6 { // header + 5 sizes
		t.Fatalf("fig11e printed %d lines:\n%s", len(lines), buf.String())
	}
}
