package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"repro/internal/faster"
	"repro/internal/inlog"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ingest measures the durable ingestion path end to end: client -> TCP
// ingest server -> segmented log (fsync policy under test) -> ack, with the
// apply pump draining records into a FASTER store behind the acks. The sweep
// is fsync policy x batch size — the paper's durability story (Sec. 7.3.4)
// hinges on acks meaning "fsynced", so the experiment quantifies what that
// guarantee costs per policy and how batching amortizes it.
func init() {
	register(Experiment{
		ID:    "ingest",
		Title: "Durable ingestion: ack throughput/latency vs fsync policy and batch size",
		Paper: "Sec. 7.3.4 (ingestion feed)",
		Run: func(cfg Config, w io.Writer) error {
			msgs := scaled(40_000, cfg.Scale)
			fmt.Fprintf(w, "%-8s %8s %10s %10s %10s %10s %10s   (%d msgs/point, pipelined)\n",
				"fsync", "batch", "kmsgs/s", "ack-p50", "ack-p99", "fsyncs", "msgs/sync", msgs)
			points := []struct {
				policy inlog.FsyncPolicy
				batch  int
			}{
				{inlog.FsyncAlways, 1},
				{inlog.FsyncBatch, 8},
				{inlog.FsyncBatch, 64},
				{inlog.FsyncBatch, 256},
			}
			for _, pt := range points {
				if err := runIngestPoint(cfg, w, pt.policy, pt.batch, msgs); err != nil {
					return err
				}
			}
			return nil
		}})
}

// runIngestPoint runs one (policy, batch) cell: msgs pipelined messages with
// a bounded in-flight window, acked by the durable frontier, applied by the
// pump, and finished with one CPR commit so the watermark/trim path runs.
func runIngestPoint(cfg Config, w io.Writer, policy inlog.FsyncPolicy, batch, msgs int) error {
	reg := obs.NewRegistry()
	dir, err := os.MkdirTemp("", "cprbench-ingest-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	segs, err := inlog.NewDirSegmentStore(dir)
	if err != nil {
		return err
	}
	lg, err := inlog.Open(inlog.Config{
		Segments: segs, SegmentBytes: 8 << 20,
		Fsync: policy, BatchRecords: batch, BatchInterval: 2 * time.Millisecond,
		Metrics: reg,
	})
	if err != nil {
		return err
	}
	store, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 14, PageBits: 16, MemPages: 64,
		Device:      storage.NewMemDevice(),
		Checkpoints: storage.NewMemCheckpointStore(),
		RMW:         faster.AddUint64{},
	})
	if err != nil {
		lg.Close()
		return err
	}
	pump, err := inlog.StartPump(inlog.PumpConfig{Log: lg, Store: store, Metrics: reg})
	if err != nil {
		store.Close()
		lg.Close()
		return err
	}
	srv := inlog.NewIngestServer(lg, reg, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln) //nolint:errcheck

	client, err := inlog.DialIngest(ln.Addr().String())
	if err != nil {
		return err
	}

	// Pipelined send with a bounded window: sendAt[off % window] timestamps
	// each in-flight message; acks arrive in offset order.
	const window = 512
	sendAt := make([]time.Time, window)
	ackNs := make([]int64, 0, msgs)
	var kb [8]byte
	start := time.Now()
	acked := 0
	for sent := 0; sent < msgs || acked < msgs; {
		for sent < msgs && sent-acked < window {
			binary.LittleEndian.PutUint64(kb[:], uint64(sent)%1024)
			sendAt[sent%window] = time.Now()
			if err := client.Send(inlog.Message{Op: inlog.OpRMW, Key: kb[:], Value: one8}); err != nil {
				return err
			}
			sent++
		}
		off, err := client.Ack()
		if err != nil {
			return err
		}
		ackNs = append(ackNs, time.Since(sendAt[off%window]).Nanoseconds())
		acked++
	}
	elapsed := time.Since(start)

	// Drain the pump and take one commit so the run exercises the watermark
	// attachment and the CPR trim.
	if err := pump.WaitApplied(uint64(msgs) - 1); err != nil {
		return err
	}
	token, err := store.Commit(faster.CommitOptions{WithIndex: true})
	if err != nil {
		return err
	}
	if res := store.WaitForCommit(token); res.Err != nil {
		return res.Err
	}

	client.Close()
	srv.Close()
	pump.Close()
	store.Close()
	if err := lg.Close(); err != nil {
		return err
	}

	snap := reg.Snapshot()
	fsyncs := snap.Counters["inlog_fsyncs"]
	perSync := float64(msgs)
	if fsyncs > 0 {
		perSync = float64(msgs) / float64(fsyncs)
	}
	kps := float64(msgs) / elapsed.Seconds() / 1e3
	p50 := pctile(ackNs, 0.50)
	p99 := pctile(ackNs, 0.99)
	row := Row{
		"fsync":         policy.String(),
		"batch_records": batch,
		"msgs":          msgs,
		"kmsgs_per_sec": kps,
		"ack_p50_ns":    p50,
		"ack_p99_ns":    p99,
		"elapsed_sec":   elapsed.Seconds(),
	}
	// Embed the inlog_* metric deltas (fresh registry per point, so the
	// totals are the deltas): appends, fsync count/latency, applied, trims.
	counters := make(map[string]uint64)
	for k, v := range snap.Counters {
		if v != 0 && len(k) >= 6 && k[:6] == "inlog_" {
			counters[k] = v
		}
	}
	row["counter_deltas"] = counters
	if h, ok := snap.Histograms["inlog_fsync_ns"]; ok && h.Count > 0 {
		row["histogram_deltas"] = map[string]Row{"inlog_fsync_ns": histRow(h)}
	}
	cfg.Record(row)
	fmt.Fprintf(w, "%-8s %8d %10.1f %10s %10s %10d %10.1f\n",
		policy, batch, kps,
		time.Duration(p50).Round(time.Microsecond),
		time.Duration(p99).Round(time.Microsecond),
		fsyncs, perSync)
	return nil
}

// one8 is an 8-byte LE 1, the RMW increment the ingest workload applies.
var one8 = []byte{1, 0, 0, 0, 0, 0, 0, 0}
