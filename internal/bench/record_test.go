package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

func TestRecorderArtifactRoundTrip(t *testing.T) {
	e, ok := Lookup("ablate-flush")
	if !ok {
		t.Fatal("ablate-flush not registered")
	}
	cfg := tinyCfg()
	cfg.Rec = NewRecorder(e, cfg)
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	cfg.Rec.SetElapsed(1.5)
	path, err := cfg.Rec.WriteFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if art.V != ArtifactSchemaV {
		t.Fatalf("schema version %d, want %d", art.V, ArtifactSchemaV)
	}
	if art.Experiment != "ablate-flush" || art.Title == "" || art.Paper == "" {
		t.Fatalf("artifact header incomplete: %+v", art)
	}
	if art.ElapsedSec != 1.5 {
		t.Fatalf("elapsed %v", art.ElapsedSec)
	}
	if len(art.Rows) != 4 { // one row per bandwidth point
		t.Fatalf("rows = %d, want 4", len(art.Rows))
	}
	for _, row := range art.Rows {
		if _, ok := row["commit_ms"]; !ok {
			t.Fatalf("row missing commit_ms: %v", row)
		}
	}
	if art.Params["threads"] == nil || art.Params["seconds"] == nil {
		t.Fatalf("params incomplete: %v", art.Params)
	}
}

// TestRecorderNilSafe checks experiments run identically with no recorder
// attached (cprbench -outdir ” and every pre-existing caller).
func TestRecorderNilSafe(t *testing.T) {
	cfg := tinyCfg() // cfg.Rec == nil
	cfg.Record(Row{"x": 1})
	e, _ := Lookup("ablate-recovery")
	var buf bytes.Buffer
	if err := e.Run(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no output")
	}
}
