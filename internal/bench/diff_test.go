package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func mkArtifact(experiment string, rows ...Row) *Artifact {
	return &Artifact{V: ArtifactSchemaV, Experiment: experiment, Rows: rows}
}

func diffOne(t *testing.T, res *DiffResult, key string) MetricDiff {
	t.Helper()
	for _, d := range res.Diffs {
		if d.Key == key {
			return d
		}
	}
	t.Fatalf("no diff for key %q in %+v", key, res.Diffs)
	return MetricDiff{}
}

func TestDiffArtifactsRegressionDirections(t *testing.T) {
	oldA := mkArtifact("netscale", Row{
		"mops":       10.0,
		"p99_ns":     1000.0,
		"clients":    8,
		"elapsed_ns": 500.0,
	})
	newA := mkArtifact("netscale", Row{
		"mops":       6.0,    // throughput down 40%: regression
		"p99_ns":     1500.0, // latency up 50%: regression
		"clients":    8,      // info, unchanged
		"elapsed_ns": 400.0,  // latency down: improvement
	})
	res, err := DiffArtifacts(oldA, newA, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 2 {
		t.Fatalf("regressions = %d, want 2: %+v", res.Regressions, res.Diffs)
	}
	if d := diffOne(t, res, "mops"); !d.Regression || d.Direction != DirHigherBetter {
		t.Fatalf("mops diff: %+v", d)
	}
	if d := diffOne(t, res, "p99_ns"); !d.Regression || d.Direction != DirLowerBetter {
		t.Fatalf("p99_ns diff: %+v", d)
	}
	if d := diffOne(t, res, "clients"); d.Regression || d.Direction != DirInfo {
		t.Fatalf("clients diff: %+v", d)
	}
	if d := diffOne(t, res, "elapsed_ns"); d.Regression || d.PctChange >= 0 {
		t.Fatalf("elapsed_ns improvement misreported: %+v", d)
	}
}

func TestDiffArtifactsThresholdAndZeroBaseline(t *testing.T) {
	oldA := mkArtifact("x", Row{"mops": 10.0, "startup_ns": 0.0})
	newA := mkArtifact("x", Row{"mops": 9.0, "startup_ns": 5000.0})
	// -10% throughput is inside a 25% threshold; zero baseline never regresses.
	res, err := DiffArtifacts(oldA, newA, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 {
		t.Fatalf("regressions = %d, want 0: %+v", res.Regressions, res.Diffs)
	}
	// Tighten the threshold: the same -10% now regresses.
	res, err = DiffArtifacts(oldA, newA, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 1 || !diffOne(t, res, "mops").Regression {
		t.Fatalf("tight-threshold regressions = %d: %+v", res.Regressions, res.Diffs)
	}
	if diffOne(t, res, "startup_ns").Regression {
		t.Fatal("zero-baseline metric counted as a regression")
	}
}

func TestDiffArtifactsNestedAndMismatch(t *testing.T) {
	oldA := mkArtifact("y",
		Row{"summary": map[string]any{"lag_p99_ns": 100.0}, "series": []any{1.0, 2.0}},
		Row{"mops": 5.0})
	newA := mkArtifact("y",
		Row{"summary": map[string]any{"lag_p99_ns": 300.0}, "series": []any{9.0}})
	res, err := DiffArtifacts(oldA, newA, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.RowMismatch || res.Rows != 1 {
		t.Fatalf("rows=%d mismatch=%v, want 1/true", res.Rows, res.RowMismatch)
	}
	d := diffOne(t, res, "summary.lag_p99_ns")
	if !d.Regression || d.Direction != DirLowerBetter {
		t.Fatalf("nested lag diff: %+v", d)
	}
	// Arrays carry shapes, not metrics: never diffed.
	for _, d := range res.Diffs {
		if d.Key == "series" {
			t.Fatal("array leaf was diffed")
		}
	}

	if _, err := DiffArtifacts(mkArtifact("a"), mkArtifact("b"), 25); err == nil {
		t.Fatal("experiment mismatch not rejected")
	}
}

func TestLoadArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := mkArtifact("ingest", Row{"mops": 12.5, "histogram_deltas": map[string]Row{
		"faster_op_exec_ns": {"p50_ns": 100.0},
	}})
	buf, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "BENCH_ingest.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	// A self-diff of a loaded artifact is all-quiet: the regression gate's
	// CI smoke case.
	res, err := DiffArtifacts(got, got, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressions != 0 || len(res.Diffs) == 0 {
		t.Fatalf("self-diff: %d regressions over %d diffs", res.Regressions, len(res.Diffs))
	}
	if diffOne(t, res, "histogram_deltas.faster_op_exec_ns.p50_ns").PctChange != 0 {
		t.Fatal("nested histogram delta not flattened through JSON round-trip")
	}

	// Wrong schema version is rejected.
	bad := *a
	bad.V = ArtifactSchemaV + 1
	buf, _ = json.Marshal(&bad)
	os.WriteFile(path, buf, 0o644)
	if _, err := LoadArtifact(path); err == nil {
		t.Fatal("schema-version mismatch not rejected")
	}
}
