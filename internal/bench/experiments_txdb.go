package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/tpcc"
	"repro/internal/txdb"
	"repro/internal/ycsb"
)

var engines = []txdb.EngineKind{txdb.EngineCPR, txdb.EngineCALC, txdb.EngineWAL}

// ycsbParams builds TxdbParams for the paper's YCSB-based database workloads.
func ycsbParams(cfg Config, eng txdb.EngineKind, threads, txnSize int, readFrac, theta float64) TxdbParams {
	keys := scaled(250_000, cfg.Scale*4) // paper: 250M keys, scaled down
	spec := ycsb.TxnSpec{Keys: uint64(keys), TxnSize: txnSize,
		ReadFraction: readFrac, Theta: theta}
	return TxdbParams{
		Engine: eng, Threads: threads, ValueSize: 8,
		Seconds: cfg.Seconds, Records: keys,
		Source: func(worker int) TxnSource {
			return newYCSBSource(spec, 8, uint64(worker)*7919+uint64(eng)*3+1)
		},
	}
}

// scalabilityExperiment prints throughput vs threads for the three engines.
func scalabilityExperiment(id, title, paper string, txnSize int, theta float64) {
	register(Experiment{ID: id, Title: title, Paper: paper,
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-8s %12s %12s %12s   (Mtxns/sec, 50:50, size %d, theta %.2f)\n",
				"threads", "CPR", "CALC", "WAL", txnSize, theta)
			for _, t := range threadSweep(cfg.Threads) {
				fmt.Fprintf(w, "%-8d", t)
				for _, eng := range engines {
					res, err := RunTxdb(ycsbParams(cfg, eng, t, txnSize, 0.5, theta))
					if err != nil {
						return err
					}
					cfg.Record(Row{"threads": t, "engine": fmt.Sprint(eng), "mtps": res.Mtps})
					fmt.Fprintf(w, " %12.2f", res.Mtps)
				}
				fmt.Fprintln(w)
			}
			return nil
		}})
}

// latencyExperiment prints average latency vs threads.
func latencyExperiment(id, title, paper string, txnSize int, theta float64) {
	register(Experiment{ID: id, Title: title, Paper: paper,
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-8s %12s %12s %12s   (avg latency us, 50:50, size %d, theta %.2f)\n",
				"threads", "CPR", "CALC", "WAL", txnSize, theta)
			for _, t := range threadSweep(cfg.Threads) {
				fmt.Fprintf(w, "%-8d", t)
				for _, eng := range engines {
					res, err := RunTxdb(ycsbParams(cfg, eng, t, txnSize, 0.5, theta))
					if err != nil {
						return err
					}
					cfg.Record(Row{"threads": t, "engine": fmt.Sprint(eng), "avg_latency_us": res.AvgLatencyUs})
					fmt.Fprintf(w, " %12.3f", res.AvgLatencyUs)
				}
				fmt.Fprintln(w)
			}
			return nil
		}})
}

// breakdownExperiment prints the cycle breakdown (Fig. 10e/16e/17e).
func breakdownExperiment(id, title, paper string, sizes []int, theta float64, tpccMode bool, payFracs []float64) {
	register(Experiment{ID: id, Title: title, Paper: paper,
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-22s %8s %8s %8s %8s   (%% of sampled cycles)\n",
				"config", "Exec", "Tail", "LogWr", "Abort")
			run := func(label string, p TxdbParams) error {
				p.Instrument = true
				res, err := RunTxdb(p)
				if err != nil {
					return err
				}
				b := res.Breakdown
				total := b.ExecNanos + b.TailNanos + b.LogWriteNanos + b.AbortNanos
				if total == 0 {
					total = 1
				}
				pc := func(x int64) float64 { return 100 * float64(x) / float64(total) }
				// Exec excludes the separately attributed engine sections.
				exec := b.ExecNanos - b.TailNanos - b.LogWriteNanos
				if exec < 0 {
					exec = 0
				}
				cfg.Record(Row{"label": label, "exec_pct": pc(exec), "tail_pct": pc(b.TailNanos),
					"logwrite_pct": pc(b.LogWriteNanos), "abort_pct": pc(b.AbortNanos)})
				fmt.Fprintf(w, "%-22s %8.1f %8.1f %8.1f %8.1f\n",
					label, pc(exec), pc(b.TailNanos), pc(b.LogWriteNanos), pc(b.AbortNanos))
				return nil
			}
			for _, threads := range []int{1, cfg.Threads} {
				if tpccMode {
					for _, pf := range payFracs {
						for _, eng := range engines {
							label := fmt.Sprintf("%s pay%.0f%% thr%d", eng, pf*100, threads)
							if err := run(label, tpccParams(cfg, eng, threads, pf)); err != nil {
								return err
							}
						}
					}
					continue
				}
				for _, size := range sizes {
					for _, eng := range engines {
						label := fmt.Sprintf("%s size%d thr%d", eng, size, threads)
						if err := run(label, ycsbParams(cfg, eng, threads, size, 0.5, theta)); err != nil {
							return err
						}
					}
				}
			}
			return nil
		}})
}

// timeSeriesExperiment prints throughput over time with commits at marks
// (Fig. 11a/11b/17a).
func timeSeriesExperiment(id, title, paper string, txnSize int, mixes []float64, tpccMode bool) {
	register(Experiment{ID: id, Title: title, Paper: paper,
		Run: func(cfg Config, w io.Writer) error {
			duration := 4 * cfg.TimePoints // paper's ~120s squeezed
			for _, readFrac := range mixes {
				for _, eng := range engines {
					var p TxdbParams
					label := ""
					if tpccMode {
						p = tpccParams(cfg, eng, cfg.Threads, readFrac)
						label = fmt.Sprintf("%s pay=%.0f%%", eng, readFrac*100)
					} else {
						p = ycsbParams(cfg, eng, cfg.Threads, txnSize, readFrac, 0.1)
						label = fmt.Sprintf("%s %.0f:%.0f", eng, (1-readFrac)*100, readFrac*100)
					}
					p.Seconds = duration
					p.CommitAt = []float64{0.25, 0.5, 0.75}
					p.SampleEvery = time.Duration(duration*1000/16) * time.Millisecond
					res, err := RunTxdb(p)
					if err != nil {
						return err
					}
					mtps := make([]float64, len(res.Series))
					for i, sm := range res.Series {
						mtps[i] = sm.Mtps
					}
					cfg.Record(Row{"label": label, "mtps_series": mtps})
					fmt.Fprintf(w, "%-14s", label)
					for _, sm := range res.Series {
						fmt.Fprintf(w, " %7.2f", sm.Mtps)
					}
					fmt.Fprintf(w, "   (Mtxns/sec per interval; commits at 25/50/75%%)\n")
				}
			}
			return nil
		}})
}

// readPctExperiment prints throughput vs read percentage (Fig. 11c/11d).
func readPctExperiment(id, title, paper string, txnSize int) {
	register(Experiment{ID: id, Title: title, Paper: paper,
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-8s %12s %12s %12s   (Mtxns/sec, size %d, theta 0.1)\n",
				"read%", "CPR", "CALC", "WAL", txnSize)
			for _, readPct := range []float64{0, 0.25, 0.5, 0.75, 0.9} {
				fmt.Fprintf(w, "%-8.0f", readPct*100)
				for _, eng := range engines {
					res, err := RunTxdb(ycsbParams(cfg, eng, cfg.Threads, txnSize, readPct, 0.1))
					if err != nil {
						return err
					}
					cfg.Record(Row{"read_pct": readPct * 100, "engine": fmt.Sprint(eng), "mtps": res.Mtps})
					fmt.Fprintf(w, " %12.2f", res.Mtps)
				}
				fmt.Fprintln(w)
			}
			return nil
		}})
}

func tpccParams(cfg Config, eng txdb.EngineKind, threads int, payFraction float64) TxdbParams {
	warehouses := scaled(256, cfg.Scale)
	if warehouses < 8 {
		warehouses = 8
	}
	layout := tpcc.NewLayout(warehouses, 10000)
	return TxdbParams{
		Engine: eng, Threads: threads, ValueSize: 64,
		Seconds: cfg.Seconds, Records: int(layout.TotalRecords),
		Source: func(worker int) TxnSource {
			return &tpccSource{gen: tpcc.NewGenerator(layout, payFraction, uint64(worker)+1)}
		},
	}
}

type tpccSource struct{ gen *tpcc.Generator }

func (s *tpccSource) Next() *txdb.Txn { t, _ := s.gen.Next(); return t }

func init() {
	scalabilityExperiment("fig2", "Scalability: CPR vs CALC vs WAL", "Fig. 2", 1, 0.1)
	scalabilityExperiment("fig10a", "Low-contention scalability, 1-key txns", "Fig. 10a", 1, 0.1)
	scalabilityExperiment("fig10b", "Low-contention scalability, 10-key txns", "Fig. 10b", 10, 0.1)
	latencyExperiment("fig10c", "Low-contention latency, 1-key txns", "Fig. 10c", 1, 0.1)
	latencyExperiment("fig10d", "Low-contention latency, 10-key txns", "Fig. 10d", 10, 0.1)
	breakdownExperiment("fig10e", "Cycle breakdown, low contention", "Fig. 10e",
		[]int{1, 10}, 0.1, false, nil)

	timeSeriesExperiment("fig11a", "Throughput during checkpoints, 1-key txns", "Fig. 11a",
		1, []float64{0.5, 0}, false)
	timeSeriesExperiment("fig11b", "Throughput during checkpoints, 10-key txns", "Fig. 11b",
		10, []float64{0.5, 0}, false)
	readPctExperiment("fig11c", "Throughput vs read%, 1-key txns", "Fig. 11c", 1)
	readPctExperiment("fig11d", "Throughput vs read%, 10-key txns", "Fig. 11d", 10)
	register(Experiment{ID: "fig11e", Title: "Throughput vs transaction size",
		Paper: "Fig. 11e",
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-8s %12s %12s %12s   (Mtxns/sec, 50:50, theta 0.1)\n",
				"size", "CPR", "CALC", "WAL")
			for _, size := range []int{1, 3, 5, 7, 10} {
				fmt.Fprintf(w, "%-8d", size)
				for _, eng := range engines {
					res, err := RunTxdb(ycsbParams(cfg, eng, cfg.Threads, size, 0.5, 0.1))
					if err != nil {
						return err
					}
					cfg.Record(Row{"txn_size": size, "engine": fmt.Sprint(eng), "mtps": res.Mtps})
					fmt.Fprintf(w, " %12.2f", res.Mtps)
				}
				fmt.Fprintln(w)
			}
			return nil
		}})

	// Appendix E.1: high contention.
	scalabilityExperiment("fig16a", "High-contention scalability, 1-key txns", "Fig. 16a", 1, 0.99)
	scalabilityExperiment("fig16b", "High-contention scalability, 10-key txns", "Fig. 16b", 10, 0.99)
	latencyExperiment("fig16c", "High-contention latency, 1-key txns", "Fig. 16c", 1, 0.99)
	latencyExperiment("fig16d", "High-contention latency, 10-key txns", "Fig. 16d", 10, 0.99)
	breakdownExperiment("fig16e", "Cycle breakdown, high contention", "Fig. 16e",
		[]int{1, 10}, 0.99, false, nil)

	// Appendix E.2: TPC-C.
	timeSeriesExperiment("fig17a", "TPC-C throughput during checkpoints (50:50 mix)", "Fig. 17a",
		0, []float64{0.5}, true)
	register(Experiment{ID: "fig17b", Title: "TPC-C scalability, mixed 50:50",
		Paper: "Fig. 17b", Run: tpccScalability(0.5)})
	register(Experiment{ID: "fig17c", Title: "TPC-C scalability, payments-only",
		Paper: "Fig. 17c", Run: tpccScalability(1.0)})
	register(Experiment{ID: "fig17d", Title: "TPC-C latency, mixed 50:50",
		Paper: "Fig. 17d",
		Run: func(cfg Config, w io.Writer) error {
			fmt.Fprintf(w, "%-8s %12s %12s %12s   (avg latency us, TPC-C 50:50)\n",
				"threads", "CPR", "CALC", "WAL")
			for _, t := range threadSweep(cfg.Threads) {
				fmt.Fprintf(w, "%-8d", t)
				for _, eng := range engines {
					res, err := RunTxdb(tpccParams(cfg, eng, t, 0.5))
					if err != nil {
						return err
					}
					cfg.Record(Row{"threads": t, "engine": fmt.Sprint(eng), "avg_latency_us": res.AvgLatencyUs})
					fmt.Fprintf(w, " %12.3f", res.AvgLatencyUs)
				}
				fmt.Fprintln(w)
			}
			return nil
		}})
	breakdownExperiment("fig17e", "TPC-C cycle breakdown", "Fig. 17e",
		nil, 0, true, []float64{0.5, 1.0})
}

func tpccScalability(payFrac float64) func(cfg Config, w io.Writer) error {
	return func(cfg Config, w io.Writer) error {
		fmt.Fprintf(w, "%-8s %12s %12s %12s   (Mtxns/sec, TPC-C pay=%.0f%%)\n",
			"threads", "CPR", "CALC", "WAL", payFrac*100)
		for _, t := range threadSweep(cfg.Threads) {
			fmt.Fprintf(w, "%-8d", t)
			for _, eng := range engines {
				res, err := RunTxdb(tpccParams(cfg, eng, t, payFrac))
				if err != nil {
					return err
				}
				cfg.Record(Row{"threads": t, "engine": fmt.Sprint(eng), "mtps": res.Mtps})
				fmt.Fprintf(w, " %12.2f", res.Mtps)
			}
			fmt.Fprintln(w)
		}
		return nil
	}
}
