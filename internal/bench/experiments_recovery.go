package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

// ablate-recovery measures recovery time with and without a recent fuzzy
// index checkpoint. Sec. 6.3's stated motivation for checkpointing the index
// is "to reduce recovery time by replaying a smaller suffix of the
// HybridLog"; with only an old (or no recent) index, recovery must rescan
// from that checkpoint's position.
func init() {
	register(Experiment{
		ID:    "ablate-recovery",
		Title: "Ablation: recovery time with vs without index checkpoint",
		Paper: "Sec. 6.3 motivation",
		Run: func(cfg Config, w io.Writer) error {
			keys := uint64(scaled(50_000, cfg.Scale*4))
			fmt.Fprintf(w, "%-24s %14s %14s   (%d keys, %d update rounds)\n",
				"last commit", "scan bytes", "recover(ms)", keys, 4)
			for _, withIndex := range []bool{true, false} {
				dev := storage.NewMemDevice()
				ckpts := storage.NewMemCheckpointStore()
				open := faster.Config{IndexBuckets: 1 << 14, PageBits: 18,
					MemPages: 64, Device: dev, Checkpoints: ckpts}
				s, err := faster.Open(open)
				if err != nil {
					return err
				}
				sess := s.StartSession()
				var kb, vb [8]byte
				load := func(round uint64) {
					for i := uint64(0); i < keys; i++ {
						binary.LittleEndian.PutUint64(kb[:], i)
						binary.LittleEndian.PutUint64(vb[:], i+round)
						if st := sess.Upsert(kb[:], vb[:]); st == faster.Pending {
							sess.CompletePending(true)
						}
					}
				}
				commit := func(idx bool) {
					token, err := s.Commit(faster.CommitOptions{WithIndex: idx})
					if err != nil {
						return
					}
					for {
						if _, ok := s.TryResult(token); ok {
							return
						}
						sess.Refresh()
					}
				}
				// Round 0 always takes a full commit (index baseline), then
				// three more rounds of updates with log-only commits; the
				// final commit optionally refreshes the index.
				load(0)
				commit(true)
				for r := uint64(1); r <= 3; r++ {
					load(r)
					commit(false)
				}
				if withIndex {
					commit(true)
				}
				scanBytes := s.Log().Tail()
				sess.StopSession()
				s.Close()

				start := time.Now()
				r, err := faster.Recover(open)
				if err != nil {
					return err
				}
				elapsed := time.Since(start)
				r.Close()
				label := "log-only (old index)"
				if withIndex {
					label = "fresh index checkpoint"
				}
				cfg.Record(Row{"with_index": withIndex, "scan_bytes": scanBytes,
					"recover_ms": float64(elapsed.Microseconds()) / 1000})
				fmt.Fprintf(w, "%-24s %14d %14.1f\n",
					label, scanBytes, float64(elapsed.Microseconds())/1000)
			}
			return nil
		}})
}
