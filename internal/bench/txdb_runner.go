package bench

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/txdb"
	"repro/internal/ycsb"
)

// TxnSource supplies transactions to one worker thread.
type TxnSource interface {
	Next() *txdb.Txn
}

// ycsbSource adapts a ycsb.Generator to txdb transactions.
type ycsbSource struct {
	gen *ycsb.Generator
	ops []txdb.Op
	val []byte
	txn txdb.Txn
}

func newYCSBSource(spec ycsb.TxnSpec, valueSize int, seed uint64) *ycsbSource {
	return &ycsbSource{
		gen: ycsb.NewGenerator(spec, seed),
		ops: make([]txdb.Op, spec.TxnSize),
		val: make([]byte, valueSize),
	}
}

func (s *ycsbSource) Next() *txdb.Txn {
	keys, writes := s.gen.NextTxn()
	for i := range keys {
		s.ops[i] = txdb.Op{Key: keys[i], Write: writes[i]}
	}
	s.txn = txdb.Txn{Ops: s.ops, WriteValue: s.val}
	return &s.txn
}

// TxdbParams configures one transactional-database measurement.
type TxdbParams struct {
	Engine    txdb.EngineKind
	Threads   int
	ValueSize int
	Seconds   float64
	// Source builds the per-worker transaction source (YCSB or TPC-C).
	Source func(worker int) TxnSource
	// Records is the database size.
	Records int
	// Instrument enables the Fig. 10e breakdown sampling.
	Instrument bool
	// CommitAt issues commits at these fractions of the run (e.g. paper's
	// 30/60/90s marks scale to 0.25/0.5/0.75).
	CommitAt []float64
	// SampleEvery enables a throughput time series at this interval.
	SampleEvery time.Duration
	// Checkpoints / WALDevice override the default in-memory stores.
	DB *txdb.DB // reuse an open database (pre-loaded); nil = fresh
}

// TxdbSample is one time-series point.
type TxdbSample struct {
	T    float64 // seconds since start
	Mtps float64 // millions of committed txns/sec in the interval
}

// TxdbResult aggregates one measurement.
type TxdbResult struct {
	Mtps         float64 // committed millions of txns/sec
	AvgLatencyUs float64
	AbortFrac    float64
	Breakdown    txdb.Stats
	// Metrics is the registry delta over the run (all txdb_*/epoch_* series).
	Metrics     obs.Snapshot
	Series      []TxdbSample
	CommitCount int
}

// RunTxdb executes the workload on a txdb instance for the configured
// duration and reports throughput/latency/breakdown.
func RunTxdb(p TxdbParams) (TxdbResult, error) {
	db := p.DB
	if db == nil {
		var err error
		db, err = txdb.Open(txdb.Config{
			Records: p.Records, ValueSize: p.ValueSize,
			Engine: p.Engine, Instrument: p.Instrument,
		})
		if err != nil {
			return TxdbResult{}, err
		}
		defer db.Close()
	}

	var stop atomic.Bool
	var committedTotal atomic.Int64
	var latSumNs, latCount atomic.Int64
	var abortsTotal atomic.Int64
	var wg sync.WaitGroup
	// Workers flush their counters into the database's metrics registry;
	// deltas against this baseline scope the breakdown to this run.
	statsBefore := db.Stats()
	metricsBefore := db.Metrics().Snapshot()

	for i := 0; i < p.Threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := db.NewWorker()
			defer w.Close()
			src := p.Source(i)
			local := int64(0)
			for n := 0; ; n++ {
				if n%64 == 0 {
					if stop.Load() {
						break
					}
					committedTotal.Add(local)
					local = 0
				}
				txn := src.Next()
				var res txdb.Result
				if n%256 == 0 {
					t0 := time.Now()
					res = w.Execute(txn)
					latSumNs.Add(time.Since(t0).Nanoseconds())
					latCount.Add(1)
				} else {
					res = w.Execute(txn)
				}
				if res == txdb.Committed {
					local++
				} else {
					abortsTotal.Add(1)
				}
			}
			committedTotal.Add(local)
			// Keep acknowledging until no commit is active so the state
			// machine can finish.
			for db.Phase() != txdb.Rest {
				w.Refresh()
			}
		}()
	}

	// Commit coordinator + sampler.
	start := time.Now()
	var series []TxdbSample
	commits := 0
	var commitWG sync.WaitGroup
	commitWG.Add(1)
	go func() {
		defer commitWG.Done()
		marks := make([]float64, len(p.CommitAt))
		for i, f := range p.CommitAt {
			marks[i] = f * p.Seconds
		}
		tick := p.SampleEvery
		if tick == 0 {
			tick = 50 * time.Millisecond
		}
		last := int64(0)
		lastT := 0.0
		nextMark := 0
		for {
			time.Sleep(tick)
			now := time.Since(start).Seconds()
			if p.SampleEvery > 0 {
				cur := committedTotal.Load()
				series = append(series, TxdbSample{
					T:    now,
					Mtps: float64(cur-last) / (now - lastT) / 1e6,
				})
				last, lastT = cur, now
			}
			for nextMark < len(marks) && now >= marks[nextMark] {
				if _, err := db.Commit(nil); err == nil {
					commits++
				}
				nextMark++
			}
			if now >= p.Seconds {
				stop.Store(true)
				return
			}
		}
	}()
	commitWG.Wait()
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := TxdbResult{
		Mtps:        float64(committedTotal.Load()) / elapsed / 1e6,
		Series:      series,
		CommitCount: commits,
	}
	if n := latCount.Load(); n > 0 {
		res.AvgLatencyUs = float64(latSumNs.Load()) / float64(n) / 1e3
	}
	total := committedTotal.Load() + abortsTotal.Load()
	if total > 0 {
		res.AbortFrac = float64(abortsTotal.Load()) / float64(total)
	}
	// All workers have closed (and therefore flushed), so the registry delta
	// is the exact per-run breakdown.
	res.Breakdown = db.Stats().Sub(statsBefore)
	res.Metrics = db.Metrics().Snapshot().Sub(metricsBefore)
	return res, nil
}
