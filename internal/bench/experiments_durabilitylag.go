package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// durabilitylag measures per-session durability lag — how far each session's
// issued serial runs ahead of its committed CPR point t_i, in operations and
// wall time — as a function of the commit cadence. Slower cadences trade
// commit overhead for a longer window of unacknowledged work; the experiment
// quantifies that window from the faster_session_lag_* histograms and the
// live SessionLags watermark.
func init() {
	register(Experiment{
		ID:    "durabilitylag",
		Title: "Per-session durability lag (ops and time) vs commit cadence",
		Paper: "observability (no paper counterpart)",
		Run: func(cfg Config, w io.Writer) error {
			keys := uint64(scaled(20_000, cfg.Scale*4))
			threads := cfg.Threads
			if threads < 1 {
				threads = 1
			}
			secs := cfg.Seconds
			if secs <= 0 {
				secs = 1.0
			}
			fmt.Fprintf(w, "%-10s %8s %12s %12s %12s %12s %12s   (%d keys, %d threads, %.1fs/point)\n",
				"cadence", "commits", "lag-p50(ops)", "lag-p99(ops)", "peak(ops)",
				"lag-p99(ms)", "peak(ms)", keys, threads, secs)
			for _, every := range []time.Duration{
				25 * time.Millisecond, 50 * time.Millisecond,
				100 * time.Millisecond, 250 * time.Millisecond,
			} {
				if err := runLagPoint(cfg, w, every, keys, threads, secs); err != nil {
					return err
				}
			}
			return nil
		}})
}

// runLagPoint runs one YCSB-style measurement with commits issued at the
// given cadence, reporting the session durability-lag distribution.
func runLagPoint(cfg Config, w io.Writer, every time.Duration, keys uint64, threads int, secs float64) error {
	reg := obs.NewRegistry()
	buckets := 1
	for uint64(buckets) < keys/2 {
		buckets <<= 1
	}
	s, err := faster.Open(faster.Config{
		IndexBuckets: buckets, PageBits: 16, MemPages: 64, Metrics: reg,
	})
	if err != nil {
		return err
	}
	defer s.Close()

	var stop atomic.Bool
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		seed := uint64(t)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := s.StartSession()
			var kb, vb [8]byte
			for n := uint64(0); !stop.Load(); n++ {
				if n%64 == 0 {
					sess.Refresh()
					sess.CompletePending(false)
				}
				binary.LittleEndian.PutUint64(kb[:], (seed*1_000_003+n*2_654_435_761)%keys)
				binary.LittleEndian.PutUint64(vb[:], n)
				sess.Upsert(kb[:], vb[:])
			}
			sess.CompletePending(true)
			for s.Phase() != faster.Rest {
				sess.Refresh()
				sess.CompletePending(false)
			}
			sess.StopSession()
		}()
	}

	// Committer plus lag watermark sampler: SessionLags is the live view a
	// kvserver stats snapshot exposes; the histograms aggregate per commit.
	var peakOps uint64
	var peakNs int64
	commits := 0
	deadline := time.Now().Add(time.Duration(secs * float64(time.Second)))
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	sample := time.NewTicker(5 * time.Millisecond)
	defer sample.Stop()
	for time.Now().Before(deadline) {
		select {
		case <-ticker.C:
			if _, err := s.Commit(faster.CommitOptions{}); err == nil {
				commits++
			} else if err != faster.ErrCommitInProgress {
				stop.Store(true)
				wg.Wait()
				return err
			}
		case <-sample.C:
			for _, l := range s.SessionLags() {
				if l.LagOps > peakOps {
					peakOps = l.LagOps
				}
				if l.LagNanos > peakNs {
					peakNs = l.LagNanos
				}
			}
		}
	}
	stop.Store(true)
	wg.Wait()

	snap := reg.Snapshot()
	ops := snap.Histograms["faster_session_lag_ops"]
	ns := snap.Histograms["faster_session_lag_ns"]
	cfg.Record(Row{
		"cadence_ms": float64(every) / 1e6, "commits": commits,
		"lag_ops": histRow(ops), "lag_ns": histRow(ns),
		"peak_ops": peakOps, "peak_ms": float64(peakNs) / 1e6,
	})
	fmt.Fprintf(w, "%-10s %8d %12d %12d %12d %12.2f %12.2f\n",
		every, commits, ops.P50Nanos, ops.P99Nanos, peakOps,
		float64(ns.P99Nanos)/1e6, float64(peakNs)/1e6)
	return nil
}
