package bench

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faster"
	"repro/internal/hlog"
	"repro/internal/repl"
	"repro/internal/storage"
)

// repllag measures the replication extension: a primary under a YCSB update
// workload ships commits and its log tail to a loopback replica, and the
// time series shows write throughput alongside the replica's lag — bytes not
// yet received and committed versions not yet installed. The final rows
// verify the replica converges to the primary's last commit once writes
// stop.
func init() {
	register(Experiment{
		ID:    "repllag",
		Title: "Replica lag vs write throughput, YCSB updates, periodic commits",
		Paper: "replication extension (internal/repl)",
		Run:   runReplLag,
	})
}

func runReplLag(cfg Config, w io.Writer) error {
	cfg.fill()
	keys := uint64(scaled(100_000, cfg.Scale))
	threads := cfg.Threads
	if threads > 4 {
		threads = 4 // past a few writers the bottleneck is the loopback, not the store
	}

	mkConfig := func() faster.Config {
		buckets := 1
		for uint64(buckets) < keys/2 {
			buckets <<= 1
		}
		recBytes := uint64(hlog.RecordSize(8, 8))
		memPages := int(2*keys*recBytes>>18) + 4
		shards := cfg.Shards
		if shards > 1 {
			memPages += 4 * (shards - 1)
		}
		return faster.Config{
			Shards:       shards,
			IndexBuckets: buckets,
			PageBits:     18,
			MemPages:     memPages,
			DeviceFactory: func(int) (storage.Device, error) {
				return storage.NewMemDevice(), nil
			},
		}
	}

	primary, err := faster.Open(mkConfig())
	if err != nil {
		return err
	}
	defer primary.Close()

	srv := repl.NewServer(primary)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close()
	go srv.Serve(addr) //nolint:errcheck
	defer srv.Close()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}

	rep, err := repl.NewReplica(repl.Config{Upstream: addr, StoreConfig: mkConfig()})
	if err != nil {
		return err
	}
	defer rep.Store().Close()
	defer rep.Close()

	// Measured run: writers blind-update uniformly while commits fire on a
	// fixed cadence and a sampler logs throughput and replica lag.
	duration := cfg.Seconds * 4 * cfg.TimePoints
	sampleEvery := duration / 12
	commitEvery := duration / 6

	var opsTotal atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			sess := primary.StartSession()
			defer sess.StopSession()
			rng := seed*2654435761 + 1
			var kb [8]byte
			val := make([]byte, 8)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for b := 0; b < 64; b++ {
					rng = rng*6364136223846793005 + 1442695040888963407
					binary.LittleEndian.PutUint64(kb[:], rng%keys)
					binary.LittleEndian.PutUint64(val, rng)
					if st := sess.Upsert(kb[:], val); st == faster.Pending {
						sess.CompletePending(false)
					}
					opsTotal.Add(1)
				}
				sess.Refresh()
			}
		}(uint64(i))
	}

	committer := primary.StartSession()
	commitDone := make(chan struct{})
	go func() {
		defer close(commitDone)
		defer committer.StopSession()
		tick := time.NewTicker(time.Duration(commitEvery * float64(time.Second)))
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				token, err := primary.Commit(faster.CommitOptions{})
				if err != nil {
					continue // previous commit still in flight
				}
				for {
					if _, ok := primary.TryResult(token); ok {
						break
					}
					committer.Refresh()
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	fmt.Fprintf(w, "%-8s %10s %10s %12s %14s\n",
		"t(s)", "Mops/sec", "applied", "vers-behind", "bytes-behind")
	start := time.Now()
	var lastOps uint64
	lastT := 0.0
	for {
		time.Sleep(time.Duration(sampleEvery * float64(time.Second)))
		now := time.Since(start).Seconds()
		cur := opsTotal.Load()
		st := rep.ReplStats()
		cfg.Record(Row{"t_sec": now, "mops": float64(cur-lastOps) / (now - lastT) / 1e6,
			"applied_version": st.AppliedVersion, "versions_behind": st.VersionsBehind,
			"bytes_behind": st.BytesBehind})
		fmt.Fprintf(w, "%-8.2f %10.2f %10d %12d %14d\n",
			now, float64(cur-lastOps)/(now-lastT)/1e6,
			st.AppliedVersion, st.VersionsBehind, st.BytesBehind)
		lastOps, lastT = cur, now
		if now >= duration {
			break
		}
	}
	close(stop)
	wg.Wait()
	<-commitDone

	// Convergence: one final commit with writers stopped; the replica must
	// install it and report zero lag.
	final := primary.StartSession()
	defer final.StopSession()
	token, err := primary.Commit(faster.CommitOptions{})
	if err == nil {
		for {
			if _, ok := primary.TryResult(token); ok {
				break
			}
			final.Refresh()
			time.Sleep(time.Millisecond)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for rep.ReplStats().VersionsBehind > 0 || rep.ReplStats().BytesBehind > 0 {
		if time.Now().After(deadline) {
			return fmt.Errorf("repllag: replica never converged (%d versions, %d bytes behind)",
				rep.ReplStats().VersionsBehind, rep.ReplStats().BytesBehind)
		}
		time.Sleep(time.Millisecond)
	}
	st := rep.ReplStats()
	fmt.Fprintf(w, "converged: applied version %d, %d bytes received\n",
		st.AppliedVersion,
		rep.Store().Metrics().Snapshot().Counters["repl_received_log_bytes_total"])
	return nil
}
