// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Sec. 7 and App. E). Each experiment has
// an ID matching DESIGN.md's experiment index (fig2, fig10a, ... fig18d) and
// prints the same rows/series the paper reports, at a laptop scale chosen so
// the shape of the results — who wins, by what factor, where crossovers
// fall — reproduces; absolute numbers differ from the paper's testbed.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
)

// Config is the shared experiment configuration.
type Config struct {
	// Threads is the maximum thread count (sweeps go 1,2,4,... up to it).
	// Defaults to GOMAXPROCS.
	Threads int
	// Seconds is the measured duration per data point (default 1.0).
	Seconds float64
	// Scale multiplies key-space sizes (default 1.0 = laptop scale).
	Scale float64
	// TimePoints compresses the paper's long time-series runs: a paper
	// minute becomes this many seconds (default 1.0).
	TimePoints float64
	// Shards partitions the store in every FASTER experiment (default 1 =
	// the unpartitioned store; the shardscale experiment sweeps its own).
	Shards int
	// Rec, when non-nil, collects the experiment's structured rows for the
	// BENCH_<exp>.json artifact (see record.go). Nil drops them.
	Rec *Recorder
	// Addr, when set, points client-driven experiments (tailtrace) at an
	// already-running cprserver instead of an in-process one.
	Addr string
}

func (c *Config) fill() {
	if c.Threads <= 0 {
		c.Threads = runtime.GOMAXPROCS(0)
	}
	if c.Seconds <= 0 {
		c.Seconds = 1.0
	}
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.TimePoints <= 0 {
		c.TimePoints = 1.0
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
}

// Experiment is one reproducible figure or table.
type Experiment struct {
	ID    string
	Title string
	Paper string // which figure/table of the paper this regenerates
	Run   func(cfg Config, w io.Writer) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Lookup returns the experiment with the given ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// threadSweep returns 1,2,4,...,max (always including max).
func threadSweep(max int) []int {
	var out []int
	for t := 1; t < max; t *= 2 {
		out = append(out, t)
	}
	return append(out, max)
}

// header prints an experiment banner.
func header(w io.Writer, e Experiment, cfg Config) {
	fmt.Fprintf(w, "== %s: %s (%s) ==\n", e.ID, e.Title, e.Paper)
	fmt.Fprintf(w, "   threads<=%d seconds=%.2g scale=%.2g\n", cfg.Threads, cfg.Seconds, cfg.Scale)
}

func scaled(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 1 {
		n = 1
	}
	return n
}
