package kvserver

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

// TestIdleSessionReaped covers Server.IdleTimeout: a connection that goes
// quiet past the cap is closed server-side with its FASTER session released,
// the reap is counted, and the client can resume the same logical session by
// reconnecting with its session ID.
func TestIdleSessionReaped(t *testing.T) {
	store, err := faster.Open(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.IdleTimeout = 60 * time.Millisecond
	if _, err := serveAsync(srv, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); store.Close() }()
	addr := srv.Addr().String()

	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(false); err != nil {
		t.Fatal(err)
	}
	id := c.ID()

	// Go quiet past the idle cap; the server must reap the connection.
	reaps := store.Metrics().Counter("kvserver_idle_reaps_total")
	deadline := time.Now().Add(5 * time.Second)
	for reaps.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The client's next call fails against the closed socket...
	var errSeen error
	for i := 0; i < 50 && errSeen == nil; i++ {
		if _, _, err := c.Get([]byte("k")); err != nil {
			errSeen = err
		}
		time.Sleep(5 * time.Millisecond)
	}
	if errSeen == nil {
		t.Fatal("client calls kept succeeding after the server reaped the connection")
	}
	// ...but the logical session survives: reconnecting with the ID resumes it.
	c2, err := Dial(addr, id)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.ID() != id {
		t.Fatalf("resumed session id %q, want %q", c2.ID(), id)
	}
	if val, found, err := c2.Get([]byte("k")); err != nil || !found || !bytes.Equal(val, []byte("v1")) {
		t.Fatalf("resumed session read: %q %v %v", val, found, err)
	}
}

// TestRestoreStatsOverWire covers the RESTORE stats block: a server brought
// up via instant restore reports warm-up progress through OpStats, and keeps
// reporting the final statistics once fully warm.
func TestRestoreStatsOverWire(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := faster.Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 8,
		Device: dev, Checkpoints: ckpts}
	s, err := faster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	for i := uint64(0); i < 256; i++ {
		if st := sess.Upsert(u64(i), u64(i+1)); st == faster.Pending {
			sess.CompletePending(true)
		}
	}
	commit := func(withIndex bool) {
		tok, err := s.Commit(faster.CommitOptions{WithIndex: withIndex})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if res, ok := s.TryResult(tok); ok {
				if res.Err != nil {
					t.Fatal(res.Err)
				}
				return
			}
			sess.Refresh()
			sess.CompletePending(false)
			time.Sleep(100 * time.Microsecond)
		}
	}
	commit(true)
	for i := uint64(0); i < 256; i++ {
		if st := sess.Upsert(u64(i), u64(i+1000)); st == faster.Pending {
			sess.CompletePending(true)
		}
	}
	commit(false)
	sess.StopSession()
	s.Close()

	cfg.InstantRestore = true
	r, err := faster.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(r)
	if _, err := serveAsync(srv, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); r.Close() }()

	c, err := Dial(srv.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Restore == nil || snap.Restore.Mode != "instant" {
		t.Fatalf("stats restore block = %+v", snap.Restore)
	}
	// Reads work throughout the warm-up and see only committed state.
	if val, found, err := c.Get(u64(3)); err != nil || !found || !bytes.Equal(val, u64(1003)) {
		t.Fatalf("read during restore: %q %v %v", val, found, err)
	}

	if err := r.WaitRestored(); err != nil {
		t.Fatal(err)
	}
	snap, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rst := snap.Restore
	if rst == nil || rst.Restoring {
		t.Fatalf("final stats restore block = %+v", rst)
	}
	if rst.ColdBuckets() != 0 || rst.WarmBuckets() == 0 {
		t.Fatalf("final warm counts: warm=%d cold=%d", rst.WarmBuckets(), rst.ColdBuckets())
	}
	for _, sh := range rst.Shards {
		if sh.ReplayedRecords != sh.SuffixRecords || sh.TimeToWarmNanos <= 0 {
			t.Fatalf("shard %d final restore stats: %+v", sh.Shard, sh)
		}
	}
}
