package kvserver

import (
	"bytes"
	"encoding/binary"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

func startServer(t *testing.T, cfg faster.Config) (*Server, string, *faster.Store) {
	t.Helper()
	store, err := faster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	ready := make(chan struct{})
	go func() {
		ln, err := serveAsync(srv, "127.0.0.1:0")
		if err != nil {
			t.Error(err)
		}
		_ = ln
		close(ready)
	}()
	<-ready
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })
	return srv, srv.Addr().String(), store
}

// serveAsync starts Serve in a goroutine and waits for the listener.
func serveAsync(srv *Server, addr string) (struct{}, error) {
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(addr) }()
	for srv.Addr() == nil {
		select {
		case err := <-errCh:
			return struct{}{}, err
		default:
			time.Sleep(time.Millisecond)
		}
	}
	return struct{}{}, nil
}

// smallCfg honors FASTER_TEST_SHARDS (CI's sharded job) so the whole server
// suite also runs against a partitioned store.
func smallCfg() faster.Config {
	cfg := faster.Config{IndexBuckets: 1 << 8, PageBits: 14, MemPages: 8}
	if v := os.Getenv("FASTER_TEST_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 1 {
			cfg.Shards = n
			cfg.MemPages = 8 * n
		}
	}
	return cfg
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestSetGetDelete(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	serial, err := c.Set([]byte("name"), []byte("faster"))
	if err != nil || serial != 1 {
		t.Fatalf("set: serial=%d err=%v", serial, err)
	}
	val, found, err := c.Get([]byte("name"))
	if err != nil || !found || string(val) != "faster" {
		t.Fatalf("get: %q %v %v", val, found, err)
	}
	if _, found, _ = c.Get([]byte("missing")); found {
		t.Fatal("missing key found")
	}
	if _, err := c.Delete([]byte("name")); err != nil {
		t.Fatal(err)
	}
	if _, found, _ = c.Get([]byte("name")); found {
		t.Fatal("deleted key still found")
	}
}

func TestRMWOverNetwork(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.RMW([]byte("ctr"), u64(3)); err != nil {
			t.Fatal(err)
		}
	}
	val, found, err := c.Get([]byte("ctr"))
	if err != nil || !found {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(val); got != 30 {
		t.Fatalf("counter = %d, want 30", got)
	}
}

func TestCommitReturnsCPRPoint(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 25; i++ {
		if _, err := c.Set(u64(uint64(i)), u64(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	point, err := c.Commit(true)
	if err != nil {
		t.Fatal(err)
	}
	if point != 25 {
		t.Fatalf("CPR point = %d, want 25", point)
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	const clients = 4
	const ops = 200
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr, "")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for n := 0; n < ops; n++ {
				key := u64(uint64(i)<<32 | uint64(n))
				if _, err := c.Set(key, u64(uint64(n))); err != nil {
					t.Error(err)
					return
				}
			}
			// Verify own writes.
			for n := 0; n < ops; n += 17 {
				key := u64(uint64(i)<<32 | uint64(n))
				val, found, err := c.Get(key)
				if err != nil || !found || binary.LittleEndian.Uint64(val) != uint64(n) {
					t.Errorf("client %d key %d: %v %v %v", i, n, val, found, err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerRestartResumeSession(t *testing.T) {
	cfg := smallCfg()
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	devs := make([]*storage.MemDevice, shards)
	for i := range devs {
		devs[i] = storage.NewMemDevice()
	}
	if cfg.Shards > 1 {
		cfg.DeviceFactory = func(i int) (storage.Device, error) { return devs[i], nil }
	} else {
		cfg.Device = devs[0]
	}
	cfg.Checkpoints = storage.NewMemCheckpointStore()

	srv, addr, store := startServer(t, cfg)
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	id := c.ID()
	for i := 0; i < 50; i++ {
		if _, err := c.Set(u64(uint64(i)), u64(uint64(i)+7)); err != nil {
			t.Fatal(err)
		}
	}
	point, err := c.Commit(true)
	if err != nil || point != 50 {
		t.Fatalf("commit: point=%d err=%v", point, err)
	}
	// Uncommitted operations, then crash the server.
	for i := 0; i < 10; i++ {
		c.Set(u64(uint64(i)), u64(9999)) //nolint:errcheck
	}
	c.Close()
	srv.Close()
	store.Close()

	// Restart: recover the store, serve again, reconnect with the same ID.
	store2, err := faster.Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(store2)
	if _, err := serveAsync(srv2, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { srv2.Close(); store2.Close() }()

	c2, err := Dial(srv2.Addr().String(), id)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.CPRPoint() != 50 {
		t.Fatalf("recovered CPR point = %d, want 50", c2.CPRPoint())
	}
	val, found, err := c2.Get(u64(3))
	if err != nil || !found {
		t.Fatalf("get after restart: %v %v", found, err)
	}
	if got := binary.LittleEndian.Uint64(val); got != 10 {
		t.Fatalf("key 3 = %d, want 10 (uncommitted 9999 must be gone)", got)
	}
}

func TestAutoCommit(t *testing.T) {
	store, err := faster.Open(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	srv.AutoCommit = 30 * time.Millisecond
	if _, err := serveAsync(srv, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); store.Close() }()

	c, err := Dial(srv.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Set([]byte("k"), []byte("v")) //nolint:errcheck
	// The idle-connection refresh must let auto-commits finish: version
	// should advance within a few intervals.
	deadline := time.Now().Add(3 * time.Second)
	for store.Version() < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("auto-commit stalled at version %d", store.Version())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestStats(t *testing.T) {
	_, addr, store := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.V != StatsVersion {
		t.Fatalf("schema version = %d, want %d", stats.V, StatsVersion)
	}
	if stats.Version != 1 || stats.Phase != "rest" {
		t.Fatalf("version=%d phase=%q, want 1/rest", stats.Version, stats.Phase)
	}
	if stats.Sessions != 1 {
		t.Fatalf("sessions = %d, want 1", stats.Sessions)
	}
	if stats.LogTail == 0 {
		t.Fatal("log tail missing from snapshot")
	}
	if got := stats.Metrics.Counters["faster_upserts_total"]; got != 1 {
		t.Fatalf("faster_upserts_total = %d, want 1", got)
	}
	if n := store.NumShards(); n > 1 {
		if len(stats.Shards) != n {
			t.Fatalf("snapshot has %d shard entries, want %d", len(stats.Shards), n)
		}
		for i, ss := range stats.Shards {
			if ss.Phase != "rest" || ss.Version != 1 {
				t.Fatalf("shard %d: version=%d phase=%q, want 1/rest", i, ss.Version, ss.Phase)
			}
		}
	} else if len(stats.Shards) != 0 {
		t.Fatalf("unsharded snapshot carries %d shard entries", len(stats.Shards))
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := appendValue(appendString(nil, []byte("key")), []byte("value"))
	if err := writeFrame(&buf, OpSet, payload); err != nil {
		t.Fatal(err)
	}
	op, got, err := readFrame(&buf)
	if err != nil || op != OpSet {
		t.Fatalf("op=%d err=%v", op, err)
	}
	k, rest, err := takeString(got)
	if err != nil || string(k) != "key" {
		t.Fatalf("key=%q err=%v", k, err)
	}
	v, _, err := takeValue(rest)
	if err != nil || string(v) != "value" {
		t.Fatalf("val=%q err=%v", v, err)
	}
}

func TestProtocolTruncation(t *testing.T) {
	if _, _, err := takeString([]byte{5}); err == nil {
		t.Fatal("short string header accepted")
	}
	if _, _, err := takeString([]byte{5, 0, 'a'}); err == nil {
		t.Fatal("truncated string body accepted")
	}
	if _, _, err := takeValue([]byte{1, 2}); err == nil {
		t.Fatal("short value header accepted")
	}
	if _, _, err := takeU64([]byte{1}); err == nil {
		t.Fatal("short u64 accepted")
	}
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0}) // zero-length frame
	if _, _, err := readFrame(&buf); err == nil {
		t.Fatal("zero-length frame accepted")
	}
}
