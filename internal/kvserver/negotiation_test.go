package kvserver

import (
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestHelloNegotiatesV3 checks that a current client against a current server
// lands on ProtoV3 and that traced ops and BATCH frames work end to end.
func TestHelloNegotiatesV3(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())

	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != ProtoV3 {
		t.Fatalf("negotiated proto %d, want %d", c.Proto(), ProtoV3)
	}
	// Every call now carries a trace field; the server must strip it and
	// serve normally.
	if _, err := c.Set([]byte("nk"), []byte("nv")); err != nil {
		t.Fatal(err)
	}
	v, found, err := c.Get([]byte("nk"))
	if err != nil || !found || string(v) != "nv" {
		t.Fatalf("traced get: %q %v %v", v, found, err)
	}
	// And a real BATCH frame round-trips.
	p := c.Pipeline()
	p.Set([]byte("nk2"), []byte("nv2"))
	p.Get([]byte("nk2"))
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[1].Status != StatusOK || string(res[1].Value) != "nv2" {
		t.Fatalf("batch results: %+v", res)
	}
}

// TestV2ClientAgainstV3Server simulates last release's client: it offers
// ProtoV2 in its Hello. The server must echo exactly ProtoV2 — not its own
// maximum — and serve traced single-op frames as before.
func TestV2ClientAgainstV3Server(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck

	payload := append(appendString(nil, nil), ProtoV2)
	if err := writeFrame(conn, OpHello, payload); err != nil {
		t.Fatal(err)
	}
	op, resp, err := readFrame(conn)
	if err != nil || op != OpHello || resp[0] != StatusOK {
		t.Fatalf("hello: op=%d err=%v", op, err)
	}
	_, rest, err := takeU64(resp[1:])
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err = takeString(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0] != ProtoV2 {
		t.Fatalf("server echoed %v to a v2 offer, want exactly [%d]", rest, ProtoV2)
	}

	// Traced v2 single-op frames still round-trip.
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), ParentSpan: 1, IssuedUnixNanos: time.Now().UnixNano()}
	body := appendValue(appendString(nil, []byte("v2k")), []byte("v2v"))
	if err := writeFrameTr(conn, OpSet, tc, body); err != nil {
		t.Fatal(err)
	}
	op, resp, err = readFrame(conn)
	if err != nil || op != OpSet || resp[0] != StatusOK {
		t.Fatalf("v2 set: op=%d err=%v", op, err)
	}
}

// TestV3ClientAgainstV2Server simulates last release's server: it clamps any
// offer to ProtoV2 and speaks only single-op frames. The current client must
// settle on ProtoV2 and Pipeline.Flush must degrade to sequential calls.
func TestV3ClientAgainstV2Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		op, _, payload, err := readFrameTr(conn)
		if err != nil || op != OpHello {
			srvErr <- fmt.Errorf("hello: op=%d err=%v", op, err)
			return
		}
		if _, _, err := takeString(payload); err != nil {
			srvErr <- err
			return
		}
		resp := appendU64([]byte{StatusOK}, 0)
		resp = appendString(resp, []byte("v2-sess"))
		resp = append(resp, ProtoV2) // old server's max
		if err := writeFrame(conn, OpHello, resp); err != nil {
			srvErr <- err
			return
		}
		// Serve exactly two single-op frames; an OpBatch here means the
		// client ignored the negotiated version.
		for i := 0; i < 2; i++ {
			op, _, _, err := readFrameTr(conn)
			if err != nil {
				srvErr <- err
				return
			}
			switch op {
			case OpSet:
				if err := writeFrame(conn, OpSet, appendU64([]byte{StatusOK}, uint64(i+1))); err != nil {
					srvErr <- err
					return
				}
			case OpGet:
				if err := writeFrame(conn, OpGet, appendValue([]byte{StatusOK}, []byte("sv"))); err != nil {
					srvErr <- err
					return
				}
			default:
				srvErr <- fmt.Errorf("v2 server got opcode %d (batch sent to a non-batch peer?)", op)
				return
			}
		}
		srvErr <- nil
	}()

	c, err := Dial(ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != ProtoV2 {
		t.Fatalf("client negotiated proto %d against a v2 server, want %d", c.Proto(), ProtoV2)
	}
	c.Timeout = 5 * time.Second
	p := c.Pipeline()
	p.Set([]byte("k"), []byte("v"))
	p.Get([]byte("k"))
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Serial != 1 || string(res[1].Value) != "sv" {
		t.Fatalf("sequential fallback results: %+v", res)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

// TestV1ClientAgainstV2Server simulates an old client: its Hello payload ends
// at the client-ID string and its frames are plain. The server must not
// append a proto byte to the Hello response and must serve plain frames.
func TestV1ClientAgainstV2Server(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck

	// v1 Hello: just the (empty) client ID, no proto byte.
	if err := writeFrame(conn, OpHello, appendString(nil, nil)); err != nil {
		t.Fatal(err)
	}
	op, resp, err := readFrame(conn)
	if err != nil || op != OpHello || resp[0] != StatusOK {
		t.Fatalf("hello: op=%d err=%v", op, err)
	}
	_, rest, err := takeU64(resp[1:])
	if err != nil {
		t.Fatal(err)
	}
	_, rest, err = takeString(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("server appended %d bytes after session ID to a v1 Hello (old clients would still ignore them, but negotiation should be symmetric)", len(rest))
	}

	// Plain v1 data frames round-trip.
	payload := appendValue(appendString(nil, []byte("v1k")), []byte("v1v"))
	if err := writeFrame(conn, OpSet, payload); err != nil {
		t.Fatal(err)
	}
	op, resp, err = readFrame(conn)
	if err != nil || op != OpSet || resp[0] != StatusOK {
		t.Fatalf("v1 set: op=%d err=%v", op, err)
	}
}

// TestV2ClientAgainstV1Server simulates an old server: its Hello parser stops
// at the client-ID string and its response carries no proto byte. The current
// client must downgrade to ProtoV1 and stop attaching trace fields.
func TestV2ClientAgainstV1Server(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	sawFlag := make(chan bool, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		defer conn.Close()
		// Old-server Hello: parse the string, ignore any trailing bytes.
		op, payload, err := readFrame(conn)
		if err != nil || op != OpHello {
			srvErr <- err
			return
		}
		if _, _, err := takeString(payload); err != nil {
			srvErr <- err
			return
		}
		resp := appendU64([]byte{StatusOK}, 0)
		resp = appendString(resp, []byte("old-sess")) // no proto byte
		if err := writeFrame(conn, OpHello, resp); err != nil {
			srvErr <- err
			return
		}
		// Read the next frame RAW to prove the opcode byte has no trace flag.
		var hdr [5]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			srvErr <- err
			return
		}
		sawFlag <- hdr[4]&frameFlagTrace != 0
		srvErr <- nil
	}()

	c, err := Dial(ln.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Proto() != ProtoV1 {
		t.Fatalf("client negotiated proto %d against a v1 server, want %d", c.Proto(), ProtoV1)
	}
	if c.ID() != "old-sess" {
		t.Fatalf("session id %q", c.ID())
	}
	c.Timeout = 2 * time.Second
	c.Set([]byte("k"), []byte("v")) //nolint:errcheck // fake server never responds
	if flagged := <-sawFlag; flagged {
		t.Fatal("downgraded client sent a trace-flagged frame to a v1 server")
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
}

// TestTracedRequestRetainedServerSide drives traced requests at a server whose
// store carries a request tracer and checks a span tree is retained with the
// client's trace ID and the expected hop kinds.
func TestTracedRequestRetainedServerSide(t *testing.T) {
	cfg := smallCfg()
	cfg.ReqTrace = obs.NewRequestTracer(16)
	_, addr, store := startServer(t, cfg)

	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set([]byte("tk"), []byte("tv")); err != nil {
		t.Fatal(err)
	}
	// A second session provides the covering commit WaitDurable rides
	// (standing in for a production auto-committer).
	go func() {
		time.Sleep(5 * time.Millisecond)
		c2, err := Dial(addr, "")
		if err != nil {
			return
		}
		defer c2.Close()
		c2.Commit(false) //nolint:errcheck
	}()
	serial, token, err := c.WaitDurable()
	if err != nil {
		t.Fatal(err)
	}
	if serial == 0 {
		t.Fatal("wait-durable reported serial 0 after a set")
	}
	if token == "" {
		t.Fatal("wait-durable reported no covering commit token")
	}

	rt := store.RequestTracer()
	traces := rt.Slowest(0)
	if len(traces) == 0 {
		t.Fatal("no traces retained (warmup threshold retains everything)")
	}
	kinds := map[obs.SpanKind]bool{}
	var durTok string
	for _, tr := range traces {
		if tr.TraceID == 0 {
			t.Fatal("retained trace without a trace ID")
		}
		for _, sp := range tr.Spans {
			kinds[sp.Kind] = true
			if sp.Kind == obs.SpanDurWait && sp.Token != "" {
				durTok = sp.Token
			}
		}
	}
	for _, want := range []obs.SpanKind{obs.SpanRequest, obs.SpanQueue, obs.SpanExec, obs.SpanDurWait, obs.SpanRespWrite} {
		if !kinds[want] {
			t.Fatalf("no retained span of kind %v (saw %v)", want, kinds)
		}
	}
	if durTok != token {
		t.Fatalf("durwait span token %q != wait-durable token %q", durTok, token)
	}

	// The OpTrace round-trip returns the same trees as JSON.
	dump, err := c.Trace(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(dump.Traces) == 0 {
		t.Fatal("OpTrace returned no traces")
	}
}

// TestWaitDurableRedirectOnReplica is in the repl integration tests; here we
// just check OpTrace against a server with no tracer fails cleanly.
func TestTraceWithoutTracerErrors(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Trace(4); err == nil {
		t.Fatal("Trace succeeded against a server without a request tracer")
	}
}
