//go:build !race

// Allocation guards for the v3 serving path. testing.AllocsPerRun is
// meaningless under the race detector's instrumented allocator, so this file
// is excluded there (mirroring internal/obs's race-gated guards).

package kvserver

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// nopConn satisfies net.Conn for driving the dispatch path without a socket.
type nopConn struct{}

func (nopConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (nopConn) Write(p []byte) (int, error)        { return len(p), nil }
func (nopConn) Close() error                       { return nil }
func (nopConn) LocalAddr() net.Addr                { return nil }
func (nopConn) RemoteAddr() net.Addr               { return nil }
func (nopConn) SetDeadline(time.Time) error        { return nil }
func (nopConn) SetReadDeadline(t time.Time) error  { return nil }
func (nopConn) SetWriteDeadline(t time.Time) error { return nil }

// TestBatchEncodeAllocFree: building a batch request over a reused buffer
// allocates nothing once the buffer is warm.
func TestBatchEncodeAllocFree(t *testing.T) {
	key := []byte("alloc-key")
	val := []byte("alloc-val")
	var payload []byte
	allocs := testing.AllocsPerRun(200, func() {
		payload = appendU32(payload[:0], 2)
		payload = appendBatchOp(payload, OpSet, 1, key, val)
		payload = appendBatchOp(payload, OpGet, 2, key, nil)
	})
	if allocs != 0 {
		t.Fatalf("batch encode: %.1f allocs/run, want 0", allocs)
	}
}

// TestFrameDecodeAllocFree: readFrameBuf plus the arena-style batch decode
// allocate nothing once the caller-owned frame buffer is warm.
func TestFrameDecodeAllocFree(t *testing.T) {
	payload := appendU32(nil, 2)
	payload = appendBatchOp(payload, OpSet, 1, []byte("k1"), []byte("v1"))
	payload = appendBatchOp(payload, OpGet, 2, []byte("k2"), nil)
	var fb bytes.Buffer
	if err := writeFrame(&fb, OpBatch, payload); err != nil {
		t.Fatal(err)
	}
	raw := fb.Bytes()
	rd := bytes.NewReader(raw)
	br := bufio.NewReader(rd)
	var frame []byte
	bad := false
	allocs := testing.AllocsPerRun(200, func() {
		rd.Reset(raw)
		br.Reset(rd)
		op, _, body, err := readFrameBuf(br, &frame)
		if err != nil || op != OpBatch {
			bad = true
			return
		}
		r, err := newBatchReader(body)
		if err != nil {
			bad = true
			return
		}
		for i := 0; i < r.count; i++ {
			if _, _, _, _, err := r.next(); err != nil {
				bad = true
				return
			}
		}
	})
	if bad {
		t.Fatal("decode failed inside guard loop")
	}
	if allocs != 0 {
		t.Fatalf("frame decode: %.1f allocs/run, want 0", allocs)
	}
}

// TestServingLoopAllocFree drives the real read -> dispatch -> respond path —
// readFrameBuf into the pooled frame buffer, execBatch scattering GETs
// through the session, replies gathered into the reused reply buffer behind
// the coalescing writer — and requires zero allocations per batch in steady
// state.
func TestServingLoopAllocFree(t *testing.T) {
	cfg := faster.Config{IndexBuckets: 1 << 10, PageBits: 16, MemPages: 8}
	store, err := faster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store)
	sess := store.StartSession()
	defer sess.StopSession()

	const depth = 64
	keys := make([][]byte, depth)
	for i := range keys {
		keys[i] = u64(uint64(i) * 0x9e3779b97f4a7c15)
		if st := sess.Upsert(keys[i], u64(uint64(i))); st != faster.Ok {
			t.Fatalf("preload %d: %v", i, st)
		}
	}

	// One GET-only BATCH frame, re-served from the same bytes each run.
	payload := appendU32(nil, depth)
	for i, k := range keys {
		payload = appendBatchOp(payload, OpGet, uint64(i+1), k, nil)
	}
	var fb bytes.Buffer
	if err := writeFrame(&fb, OpBatch, payload); err != nil {
		t.Fatal(err)
	}
	raw := fb.Bytes()

	rd := bytes.NewReader(raw)
	cs := &connState{conn: nopConn{}, bw: bufio.NewWriterSize(io.Discard, srv.coalesceBytes())}
	cs.br = bufio.NewReaderSize(rd, 32<<10)
	cs.readCB = func(v []byte, st faster.Status) {
		cs.pendVal = append(cs.pendVal[:0], v...)
		cs.pendSt = st
		cs.pendDone = true
	}
	var at obs.ActiveTrace
	var tc obs.TraceContext
	bad := false
	allocs := testing.AllocsPerRun(300, func() {
		rd.Reset(raw)
		cs.br.Reset(rd)
		op, _, body, err := readFrameBuf(cs.br, &cs.frame)
		if err != nil || op != OpBatch {
			bad = true
			return
		}
		if err := srv.dispatch(cs, sess, op, tc, body, &at); err != nil {
			bad = true
		}
	})
	if bad {
		t.Fatal("serving loop failed inside guard loop")
	}
	if allocs != 0 {
		t.Fatalf("steady-state serving loop: %.2f allocs/batch of %d GETs, want 0", allocs, depth)
	}
}
