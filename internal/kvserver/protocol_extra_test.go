package kvserver

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestOversizedFrameRejected: a frame claiming more than maxFrame bytes is
// rejected before any allocation, both by readFrame directly and by a live
// server (which closes the connection).
func TestOversizedFrameRejected(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxFrame+1)
	hdr[4] = OpGet
	if _, _, err := readFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Fatal("oversized frame accepted")
	}

	_, addr, _ := startServer(t, smallCfg())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Valid hello first, then the bomb.
	if err := writeFrame(conn, OpHello, appendString(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(conn); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		if _, err = conn.Read(buf); err == nil {
			t.Fatal("server kept talking after oversized frame")
		}
	}
}

// TestUnknownOpcodeClosesConnection: an unrecognized opcode after a valid
// handshake terminates the connection instead of wedging the session.
func TestUnknownOpcodeClosesConnection(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, OpHello, appendString(nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readFrame(conn); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, 0x6E, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, _, err := readFrame(conn); err == nil {
		t.Fatal("server answered an unknown opcode")
	}
}

// TestTruncatedFrameMidPayload: a frame header promising more bytes than the
// peer ever sends must error out, not hang past the read deadline or return
// a short frame.
func TestTruncatedFrameMidPayload(t *testing.T) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], 100)
	hdr[4] = OpGet
	r := io.MultiReader(bytes.NewReader(hdr[:]), bytes.NewReader([]byte("only ten b")))
	if _, _, err := readFrame(r); err == nil {
		t.Fatal("truncated payload accepted")
	}
}

// TestTraceFlaggedFrameTooShort: a frame whose opcode carries the trace flag
// but whose body is shorter than the 24-byte trace field must be rejected.
func TestTraceFlaggedFrameTooShort(t *testing.T) {
	for n := 0; n < traceFieldLen; n++ {
		raw := append([]byte{OpGet | frameFlagTrace}, bytes.Repeat([]byte{7}, n)...)
		if _, _, _, err := readFrameTr(bytes.NewReader(append(lenPrefix(uint32(len(raw))), raw...))); err == nil {
			t.Fatalf("trace-flagged frame with %d-byte body accepted", n)
		}
	}
}

// FuzzFrame round-trips arbitrary opcode/payload pairs through the codec —
// both plain v1 frames and v2 frames carrying the optional trace field — and
// feeds arbitrary raw bytes to readFrame, which must never panic and must
// never return a frame larger than maxFrame.
func FuzzFrame(f *testing.F) {
	f.Add(byte(OpSet), []byte("hello"))
	f.Add(byte(0), []byte{})
	f.Add(byte(255), bytes.Repeat([]byte{0xAA}, 1024))
	// Batch codec seeds: a well-formed two-op batch, a count overclaiming its
	// body, and a batch whose op list is truncated mid-entry.
	wellFormed := appendU32(nil, 2)
	wellFormed = appendBatchOp(wellFormed, OpSet, 1, []byte("bk"), []byte("bv"))
	wellFormed = appendBatchOp(wellFormed, OpGet, 2, []byte("bk"), nil)
	f.Add(byte(OpBatch), wellFormed)
	f.Add(byte(OpBatch), appendU32(nil, 1000))
	f.Add(byte(OpBatch), wellFormed[:len(wellFormed)-3])
	f.Fuzz(func(t *testing.T, opcode byte, payload []byte) {
		if len(payload) >= maxFrame-traceFieldLen-1 {
			t.Skip()
		}
		// Opcodes live below 0x80 — the high bit is the trace flag.
		plain := opcode &^ frameFlagTrace
		var buf bytes.Buffer
		if err := writeFrame(&buf, plain, payload); err != nil {
			t.Fatal(err)
		}
		op, tc, got, err := readFrameTr(&buf)
		if err != nil {
			t.Fatalf("round-trip: %v", err)
		}
		if op != plain || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch: op %d/%d, %d/%d bytes", op, plain, len(got), len(payload))
		}
		if tc != (obs.TraceContext{}) {
			t.Fatalf("plain frame decoded a trace context %+v", tc)
		}

		// Traced round-trip: the trace field must survive unchanged and must
		// not leak into the payload.
		want := obs.TraceContext{
			TraceID:         1 + uint64(opcode), // never zero, or the field is omitted
			ParentSpan:      uint64(len(payload)),
			IssuedUnixNanos: int64(opcode) * 1e9,
		}
		buf.Reset()
		if err := writeFrameTr(&buf, plain, want, payload); err != nil {
			t.Fatal(err)
		}
		op, tc, got, err = readFrameTr(&buf)
		if err != nil {
			t.Fatalf("traced round-trip: %v", err)
		}
		if op != plain || tc != want || !bytes.Equal(got, payload) {
			t.Fatalf("traced round-trip mismatch: op %d/%d tc %+v/%+v", op, plain, tc, want)
		}

		// The same bytes interpreted as a raw stream (header included) must
		// decode identically; arbitrary prefixes must fail cleanly.
		raw := append([]byte{plain}, payload...)
		if op2, got2, err := readFrame(bytes.NewReader(append(lenPrefix(uint32(len(raw))), raw...))); err != nil || op2 != plain || !bytes.Equal(got2, payload) {
			t.Fatalf("re-decode: op=%d err=%v", op2, err)
		}
		if _, _, err := readFrame(bytes.NewReader(payload)); err == nil && len(payload) > 0 {
			n := binary.LittleEndian.Uint32(payload)
			if int(n) > len(payload)-4 {
				t.Fatalf("readFrame fabricated a frame from %d stray bytes", len(payload))
			}
		}

		// The same payload interpreted as a batch body must never panic, never
		// yield more ops than announced, and keep every decoded key/value
		// inside the payload's bounds (arena-style decode invariant).
		if br, err := newBatchReader(payload); err == nil {
			decoded := 0
			for i := 0; i < br.count; i++ {
				op, _, key, val, err := br.next()
				if err != nil {
					break
				}
				decoded++
				if op != OpGet && op != OpSet && op != OpRMW && op != OpDelete {
					t.Fatalf("batch decode yielded non-batchable opcode %d", op)
				}
				for _, b := range [][]byte{key, val} {
					if len(b) > len(payload) {
						t.Fatalf("batch decode returned a %d-byte slice from a %d-byte payload", len(b), len(payload))
					}
				}
			}
			if decoded > br.count {
				t.Fatalf("batch decode yielded %d ops from a count of %d", decoded, br.count)
			}
			// A well-formed decode must re-encode to the identical bytes.
			if decoded == br.count {
				re := appendU32(nil, uint32(br.count))
				rr, _ := newBatchReader(payload)
				for i := 0; i < rr.count; i++ {
					op, seq, key, val, _ := rr.next()
					re = appendBatchOp(re, op, seq, key, val)
				}
				if len(rr.body) == 0 && !bytes.Equal(re, payload) {
					t.Fatalf("batch re-encode mismatch: %d/%d bytes", len(re), len(payload))
				}
			}
		}
	})
}

func lenPrefix(n uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], n)
	return b[:]
}
