package kvserver

import (
	"strings"
	"testing"
	"time"

	"repro/internal/health"
)

func TestOpHealthRoundTrip(t *testing.T) {
	srv, addr, store := startServer(t, smallCfg())
	eng := health.New(health.Config{Registry: store.Metrics(), Interval: 5 * time.Millisecond})
	srv.Health = eng.Verdict
	eng.Start()
	defer eng.Stop()

	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	v, err := c.Health()
	if err != nil {
		t.Fatalf("health op: %v", err)
	}
	if v.State != "healthy" {
		t.Fatalf("verdict state = %q, want healthy", v.State)
	}
	names := map[string]bool{}
	for _, d := range v.Detectors {
		names[d.Name] = true
	}
	for _, want := range []string{"cpr-commit-stuck", "epoch-drain-stuck", "flush-starvation"} {
		if !names[want] {
			t.Errorf("verdict missing built-in detector %s: %v", want, names)
		}
	}

	// The stats snapshot carries the same verdict when the hook is wired.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Health == nil || stats.Health.State != "healthy" {
		t.Fatalf("stats.Health = %+v, want healthy verdict", stats.Health)
	}
}

func TestOpHealthDisabled(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Health(); err == nil || !strings.Contains(err.Error(), "health engine disabled") {
		t.Fatalf("health on a server without an engine: err = %v, want disabled error", err)
	}

	// Stats still works, just without the health block.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Health != nil {
		t.Fatalf("stats.Health = %+v on a server without an engine, want nil", stats.Health)
	}
}
