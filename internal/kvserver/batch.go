package kvserver

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Batch codec (protocol v3). An OpBatch request carries N pipelined data ops
// with client-assigned sequence numbers; the reply carries one entry per op,
// in the same order. Both directions are built as append-style encoders over
// caller-owned buffers so the steady-state path encodes and decodes without
// allocating: the server parses ops as sub-slices of the (reused) frame
// buffer and gathers replies into a per-connection (reused) reply buffer.
//
//	request payload  := u32 count | count * (u8 opcode | u64 seq | key string [| value])
//	reply payload    := u8 status | u32 count | count * (u64 seq | u8 status | result)
//
// The value field is present only for OpSet/OpRMW requests. A reply result is
// a value (only on StatusOK) for OpGet and a u64 serial for OpSet/OpRMW/
// OpDelete. A reply whose leading status is StatusRedirect carries the
// primary's address string instead of entries (the whole batch was rejected
// by a read-only replica).

// maxBatchOps bounds the op count a single BATCH frame may claim, so a
// malicious count cannot drive a huge reply allocation. The frame length
// itself is already bounded by maxFrame.
const maxBatchOps = 1 << 16

// ErrBadBatch is returned (wrapped) for structurally invalid batch payloads.
// The connection is failed: mid-batch corruption leaves no way to resync.
var ErrBadBatch = errors.New("kvserver: malformed batch")

// batchOpBytes is the minimum encoding of one batch op: opcode, seq, and an
// empty key string.
const batchOpBytes = 1 + 8 + 2

// appendBatchOp encodes one op onto a batch request body (the part after the
// u32 count). val is ignored for opcodes that carry no value.
func appendBatchOp(dst []byte, op byte, seq uint64, key, val []byte) []byte {
	dst = append(dst, op)
	dst = appendU64(dst, seq)
	dst = appendString(dst, key)
	if op == OpSet || op == OpRMW {
		dst = appendValue(dst, val)
	}
	return dst
}

// appendU32 appends a little-endian u32.
func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

// takeU32 consumes a little-endian u32.
func takeU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("%w: truncated u32", ErrBadBatch)
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// batchReader iterates a batch request payload. Keys and values are
// sub-slices of the payload (arena-style decode): valid only while the
// underlying frame buffer is.
type batchReader struct {
	body  []byte
	count int
}

// newBatchReader validates the count header against the payload size.
func newBatchReader(payload []byte) (batchReader, error) {
	n, body, err := takeU32(payload)
	if err != nil {
		return batchReader{}, err
	}
	if n > maxBatchOps {
		return batchReader{}, fmt.Errorf("%w: %d ops (max %d)", ErrBadBatch, n, maxBatchOps)
	}
	if int(n)*batchOpBytes > len(body) {
		return batchReader{}, fmt.Errorf("%w: %d ops in %d bytes", ErrBadBatch, n, len(body))
	}
	return batchReader{body: body, count: int(n)}, nil
}

// next decodes the next op. val is nil for opcodes that carry no value.
func (r *batchReader) next() (op byte, seq uint64, key, val []byte, err error) {
	if len(r.body) < batchOpBytes {
		return 0, 0, nil, nil, fmt.Errorf("%w: truncated op", ErrBadBatch)
	}
	op = r.body[0]
	seq = binary.LittleEndian.Uint64(r.body[1:])
	key, rest, err := takeString(r.body[9:])
	if err != nil {
		return 0, 0, nil, nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
	}
	switch op {
	case OpSet, OpRMW:
		val, rest, err = takeValue(rest)
		if err != nil {
			return 0, 0, nil, nil, fmt.Errorf("%w: %v", ErrBadBatch, err)
		}
	case OpGet, OpDelete:
	default:
		return 0, 0, nil, nil, fmt.Errorf("%w: opcode %d not batchable", ErrBadBatch, op)
	}
	r.body = rest
	return op, seq, key, val, nil
}

// appendBatchValueResult encodes a GET reply entry: the value is present only
// on StatusOK.
func appendBatchValueResult(dst []byte, seq uint64, status byte, val []byte) []byte {
	dst = appendU64(dst, seq)
	dst = append(dst, status)
	if status == StatusOK {
		dst = appendValue(dst, val)
	}
	return dst
}

// appendBatchSerialResult encodes a SET/RMW/DELETE reply entry.
func appendBatchSerialResult(dst []byte, seq uint64, status byte, serial uint64) []byte {
	dst = appendU64(dst, seq)
	dst = append(dst, status)
	return appendU64(dst, serial)
}

// batchReplyHdr is the fixed prefix of a batch reply frame, built in place in
// the reply buffer so the whole frame goes out as one contiguous write (a
// stack header array would escape through an io.Writer interface and cost an
// allocation per frame): u32 frame len | u8 OpBatch | u8 status | u32 count.
const batchReplyHdr = 10

// beginBatchReply resets frame to a reply frame's header placeholder; append
// entries after it and call finishBatchReply before writing it out.
func beginBatchReply(frame []byte) []byte {
	var zero [batchReplyHdr]byte
	return append(frame[:0], zero[:]...)
}

// finishBatchReply patches the in-place header for count entries.
func finishBatchReply(frame []byte, count int) {
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(frame)-4))
	frame[4] = OpBatch
	frame[5] = StatusOK
	binary.LittleEndian.PutUint32(frame[6:], uint32(count))
}
