package kvserver

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faster"
)

// startServerTuned mirrors startServer but lets the test tune the server
// (e.g. coalescing caps) before it listens.
func startServerTuned(t *testing.T, cfg faster.Config, tune func(*Server)) (*Server, string, *faster.Store) {
	t.Helper()
	store, err := faster.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(store)
	if tune != nil {
		tune(srv)
	}
	if _, err := serveAsync(srv, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	t.Cleanup(func() { srv.Close(); store.Close() })
	return srv, srv.Addr().String(), store
}

// TestBatchRoundTrip pipelines a mixed batch and checks per-op statuses,
// values, and serials come back matched in issue order.
func TestBatchRoundTrip(t *testing.T) {
	_, addr, store := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p := c.Pipeline()
	seqSet := p.Set([]byte("bk1"), []byte("bv1"))
	p.RMW([]byte("bk2"), u64(5))
	p.Get([]byte("bk1"))
	p.Get([]byte("absent"))
	p.Delete([]byte("bk1"))
	p.Get([]byte("bk1"))
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("got %d results, want 6", len(res))
	}
	if res[0].Seq != seqSet || res[0].Status != StatusOK || res[0].Serial == 0 {
		t.Fatalf("set result: %+v", res[0])
	}
	if res[1].Status != StatusOK || res[1].Serial <= res[0].Serial {
		t.Fatalf("rmw result: %+v (serials must advance in issue order)", res[1])
	}
	if res[2].Status != StatusOK || string(res[2].Value) != "bv1" {
		t.Fatalf("get result: %+v", res[2])
	}
	if res[3].Status != StatusNotFound {
		t.Fatalf("absent get result: %+v", res[3])
	}
	if res[4].Status != StatusOK {
		t.Fatalf("delete result: %+v", res[4])
	}
	if res[5].Status != StatusNotFound {
		t.Fatalf("get-after-delete result: %+v", res[5])
	}

	// Batch effects are visible to plain single-op calls on the same session.
	if _, found, err := c.Get([]byte("bk2")); err != nil || !found {
		t.Fatalf("bk2 after batch: found=%v err=%v", found, err)
	}

	// The pipeline is reusable after Flush.
	p.Set([]byte("bk3"), []byte("bv3"))
	if res, err = p.Flush(); err != nil || len(res) != 1 || res[0].Status != StatusOK {
		t.Fatalf("reflush: %v %+v", err, res)
	}

	// The server observed the batch in its pipelining metrics.
	snap := store.Metrics().Snapshot()
	if snap.Counters["faster_net_batches_total"] < 2 {
		t.Fatalf("faster_net_batches_total = %d, want >= 2", snap.Counters["faster_net_batches_total"])
	}
	if h, ok := snap.Histograms["faster_batch_depth"]; !ok || h.Count < 2 {
		t.Fatalf("faster_batch_depth missing or empty: %+v", h)
	}
	if snap.Counters["faster_net_coalesced_flushes_total"] == 0 {
		t.Fatal("no coalesced flushes recorded")
	}
}

// TestBatchReplySplit forces the server to split one batch's replies across
// several BATCH frames (tiny coalescing byte cap); the client must reassemble
// them transparently and in order.
func TestBatchReplySplit(t *testing.T) {
	_, addr, _ := startServerTuned(t, smallCfg(), func(s *Server) {
		s.CoalesceBytes = 64 // a few reply entries per frame
	})
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 50
	p := c.Pipeline()
	for i := 0; i < n; i++ {
		p.Set(u64(uint64(i)), u64(uint64(i*7)))
	}
	res, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("got %d results, want %d", len(res), n)
	}
	var last uint64
	for i, r := range res {
		if r.Status != StatusOK || r.Serial <= last {
			t.Fatalf("result %d: %+v (after serial %d)", i, r, last)
		}
		last = r.Serial
	}
	// And read them all back through one split-reply GET batch.
	vals, found, err := c.GetN(func() [][]byte {
		ks := make([][]byte, n)
		for i := range ks {
			ks[i] = u64(uint64(i))
		}
		return ks
	}())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !found[i] || string(vals[i]) != string(u64(uint64(i*7))) {
			t.Fatalf("GetN[%d]: found=%v val=%x", i, found[i], vals[i])
		}
	}
}

// TestGetNSetN exercises the convenience wrappers end to end.
func TestGetNSetN(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := [][]byte{[]byte("na"), []byte("nb"), []byte("nc")}
	vals := [][]byte{[]byte("va"), []byte("vb"), []byte("vc")}
	serials, err := c.SetN(keys, vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(serials) != 3 || serials[2] <= serials[0] {
		t.Fatalf("serials: %v", serials)
	}
	got, found, err := c.GetN([][]byte{keys[1], []byte("absent"), keys[0]})
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || string(got[0]) != "vb" || found[1] || !found[2] || string(got[2]) != "va" {
		t.Fatalf("GetN: vals=%q found=%v", got, found)
	}
}

// TestBatchMalformedFailsConnection: mid-batch corruption leaves no way to
// resync, so the server must drop the connection, not guess.
func TestBatchMalformedFailsConnection(t *testing.T) {
	_, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Hand-roll a batch frame whose single op has a non-batchable opcode.
	payload := appendU32(nil, 1)
	payload = appendBatchOp(payload, OpCommit, 1, []byte("k"), nil)
	if err := writeFrame(c.conn, OpBatch, payload); err != nil {
		t.Fatal(err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, _, err := readFrame(c.conn); err == nil {
		t.Fatal("server answered a malformed batch")
	}
}

// TestFrameErrorsTyped: oversized and structurally broken frames surface the
// typed sentinels so callers can distinguish them with errors.Is.
func TestFrameErrorsTyped(t *testing.T) {
	over := lenPrefix(maxFrame + 1)
	over = append(over, OpGet)
	if _, _, _, err := readFrameTr(bytes.NewReader(over)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err=%v, want ErrFrameTooLarge", err)
	}
	if _, _, _, err := readFrameTr(bytes.NewReader(lenPrefix(0))); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("zero-length frame: err=%v, want ErrBadFrame", err)
	}
	short := lenPrefix(2)
	short = append(short, OpGet|frameFlagTrace, 7)
	if _, _, _, err := readFrameTr(bytes.NewReader(short)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short traced frame: err=%v, want ErrBadFrame", err)
	}
	if _, err := newBatchReader([]byte{1}); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("truncated batch header: err=%v, want ErrBadBatch", err)
	}
}

// TestGracefulCloseDrainsWaitDurable: Close while a WAITDUR is blocked must
// deliver a complete, well-formed error frame (the client sees the server's
// timed-out response), never a torn or missing reply.
func TestGracefulCloseDrainsWaitDurable(t *testing.T) {
	srv, addr, _ := startServer(t, smallCfg())
	c, err := Dial(addr, "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Set([]byte("gk"), []byte("gv")); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		// No committer is running, so this blocks until the server shuts down.
		_, _, err := c.WaitDurable()
		errCh <- err
	}()
	time.Sleep(150 * time.Millisecond)
	srv.Close()
	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "wait-durable timed out") {
			t.Fatalf("wait-durable during close: %v, want the server's own timed-out reply", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("wait-durable reply never arrived after Close")
	}
}

// TestBatchRedirectOnReplica: a replica serves read-only batches from its
// installed prefix and redirects any batch containing a write, whole.
func TestBatchRedirectOnReplica(t *testing.T) {
	store, err := faster.Open(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rb := &fakeReplica{store: store, data: map[string]string{"rk": "rv"}}
	srv := NewReplicaServer(rb)
	if _, err := serveAsync(srv, "127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr().String(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	vals, found, err := c.GetN([][]byte{[]byte("rk"), []byte("absent")})
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || string(vals[0]) != "rv" || found[1] {
		t.Fatalf("replica GetN: vals=%q found=%v", vals, found)
	}

	p := c.Pipeline()
	p.Get([]byte("rk"))
	p.Set([]byte("rk"), []byte("nope"))
	_, err = p.Flush()
	var re *RedirectError
	if !errors.As(err, &re) || re.Addr != "primary.example:9" {
		t.Fatalf("mixed batch on replica: %v, want RedirectError to the primary", err)
	}
}

type fakeReplica struct {
	store *faster.Store
	data  map[string]string
}

func (f *fakeReplica) Read(key []byte) ([]byte, bool, error) {
	v, ok := f.data[string(key)]
	return []byte(v), ok, nil
}
func (f *fakeReplica) RecoveredPoint(string) uint64 { return 0 }
func (f *fakeReplica) Upstream() string             { return "primary.example:9" }
func (f *fakeReplica) Store() *faster.Store         { return f.store }
func (f *fakeReplica) ReplStats() *ReplStats        { return &ReplStats{} }
