// Package kvserver provides a TCP server and client for a CPR-enabled
// FASTER store. Each connection owns one store session, so the paper's
// session model maps directly onto the network: a client reconnecting with
// its client ID resumes via ContinueSession and learns its recovered CPR
// point — the offset from which to replay its input.
//
// Wire format: length-prefixed binary frames, stdlib only.
//
//	frame  := u32 length | u8 opcode | payload
//	string := u16 len | bytes
//	value  := u32 len | bytes
//
// Requests carry an opcode from the Op* set; responses echo a status byte
// followed by an opcode-specific payload.
package kvserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/faster"
	"repro/internal/health"
	"repro/internal/obs"
)

// Opcodes. Opcode values stay below 0x80: the high bit of the frame's opcode
// byte is the trace flag (see frameFlagTrace).
const (
	OpHello  byte = 1 // payload: clientID string [+ u8 proto] -> resp: u64 CPR point, id string [+ u8 proto]
	OpGet    byte = 2 // payload: key string       -> resp: value
	OpSet    byte = 3 // payload: key string, value -> resp: u64 serial
	OpRMW    byte = 4 // payload: key string, value -> resp: u64 serial
	OpDelete byte = 5 // payload: key string       -> resp: u64 serial
	OpCommit byte = 6 // payload: u8 withIndex     -> resp: u64 CPR point
	OpStats  byte = 7 // payload: none             -> resp: StatsSnapshot JSON
	OpFlight byte = 8 // payload: token string (may be empty) -> resp: obs.FlightDump JSON
	// OpTrace fetches the server's retained slow-request span trees.
	OpTrace byte = 9 // payload: u16 maxTraces -> resp: obs.TraceDump JSON
	// OpWaitDurable blocks until the session's committed point t_i covers
	// every operation issued on this connection so far, piggybacking on
	// whatever commit (auto-committer or another session's) gets there first.
	// The response names the covering commit.
	OpWaitDurable byte = 10 // payload: none -> resp: u64 committed serial, token string
	// OpBatch (v3) carries N pipelined data ops in one frame. Request payload:
	// u32 count, then per op: u8 opcode | u64 seq | key string [| value]
	// (value present for OpSet/OpRMW only). Response payload: u8 status; on
	// StatusOK a u32 count and per op u64 seq | u8 status | result (value for
	// GET on StatusOK, u64 serial for SET/RMW/DELETE); on StatusRedirect the
	// primary's address string. A server may split one request's replies
	// across several OpBatch frames (each self-contained with its own count);
	// the client reads frames until every seq is answered, in issue order.
	OpBatch byte = 11
	// OpHealth fetches the server's health verdict — the health engine's
	// detector-by-detector state. Errors when no engine is wired.
	OpHealth byte = 12 // payload: none -> resp: health.Verdict JSON
)

// Protocol versions, negotiated at Hello. A v1 Hello omits the proto byte;
// peers on either side that never saw this field keep speaking v1 frames
// (plain opcodes), so old and new binaries interoperate in both directions.
// v2 adds the optional per-frame trace field (frameFlagTrace). v3 adds the
// OpBatch pipelined frame. Each side offers its highest version; the server
// echoes min(offered, supported), so every pair lands on the highest protocol
// both speak and neither ever sends a frame the other cannot parse.
const (
	ProtoV1 byte = 1
	ProtoV2 byte = 2
	ProtoV3 byte = 3
)

// frameFlagTrace, set on the frame's opcode byte, means a 24-byte trace
// field — trace ID u64, parent span u64, issued-at unix nanos u64 — sits
// between the opcode and the payload. Only sent after both sides negotiated
// ProtoV2 (a v1 peer would read the flagged opcode as unknown).
const (
	frameFlagTrace = byte(0x80)
	traceFieldLen  = 24
)

// StatsVersion is the current StatsSnapshot schema version; bump on any
// incompatible change so clients can reject snapshots they do not understand.
const StatsVersion = 1

// StatsSnapshot is the OpStats response payload: a versioned JSON document
// carrying store state, HybridLog offsets, and the full metrics registry.
type StatsSnapshot struct {
	V          uint32       `json:"v"`
	Version    uint32       `json:"version"` // CPR version
	Phase      string       `json:"phase"`
	LogTail    uint64       `json:"log_tail"`
	LogDurable uint64       `json:"log_durable"`
	LogHead    uint64       `json:"log_head"`
	Sessions   int          `json:"sessions"`
	Metrics    obs.Snapshot `json:"metrics"`
	// Shards carries per-shard state on a partitioned store (absent when the
	// store is unsharded — an additive field, so StatsVersion stays 1). The
	// top-level log offsets then refer to shard 0.
	Shards []ShardStats `json:"shards,omitempty"`
	// Repl carries replication state when the server participates in
	// replication (absent otherwise — additive, StatsVersion stays 1).
	Repl *ReplStats `json:"repl,omitempty"`
	// SessionLags reports per-session durability lag — how far each session's
	// issued serial runs ahead of its committed CPR point t_i, and for how
	// long (absent when no sessions exist — additive, StatsVersion stays 1).
	SessionLags []faster.SessionLag `json:"session_lags,omitempty"`
	// Restore carries instant-restore progress after a Config.InstantRestore
	// recovery: warm/cold bucket counts, sweeper progress and per-shard
	// time-to-warm. Absent when the store was never instant-restored —
	// additive, StatsVersion stays 1. Final statistics remain available after
	// the store is fully warm (Restoring=false).
	Restore *faster.RestoreStatus `json:"restore,omitempty"`
	// Health carries the health engine's verdict when one is wired (absent
	// otherwise — additive, StatsVersion stays 1).
	Health *health.Verdict `json:"health,omitempty"`
}

// ReplStats is the StatsSnapshot "repl" block: the server's replication role
// and, on a replica, how far it trails its upstream primary.
type ReplStats struct {
	Role     string `json:"role"`               // "primary" or "replica"
	Upstream string `json:"upstream,omitempty"` // replica: the primary's replication address
	Replicas int    `json:"replicas,omitempty"` // primary: currently connected replicas
	// AppliedVersion is the CPR version of the replica's installed commit
	// (on a primary: its own current version).
	AppliedVersion uint32 `json:"applied_version"`
	// VersionsBehind is the primary's latest committed version minus
	// AppliedVersion (0 on a primary).
	VersionsBehind uint32 `json:"versions_behind"`
	// BytesBehind is the log volume (across shards) the primary has made
	// durable but the replica has not yet received.
	BytesBehind uint64 `json:"bytes_behind"`
}

// ShardStats is one shard's slice of a StatsSnapshot.
type ShardStats struct {
	Version    uint32 `json:"version"`
	Phase      string `json:"phase"`
	LogTail    uint64 `json:"log_tail"`
	LogDurable uint64 `json:"log_durable"`
	LogHead    uint64 `json:"log_head"`
}

// Response status bytes.
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusError    byte = 2
	// StatusRedirect rejects a write on a read-only replica; the payload is
	// the primary's client address (may be empty if unknown).
	StatusRedirect byte = 3
)

// maxFrame bounds a frame to keep a malicious peer from forcing huge
// allocations.
const maxFrame = 16 << 20

// ErrFrameTooLarge is returned (wrapped) when a peer announces a frame larger
// than maxFrame; the connection is failed cleanly instead of attempting the
// allocation. Match with errors.Is.
var ErrFrameTooLarge = errors.New("kvserver: frame exceeds maximum size")

// ErrBadFrame is returned (wrapped) for structurally invalid frames — zero
// length, or a trace-flagged frame too short to hold the trace field. Match
// with errors.Is.
var ErrBadFrame = errors.New("kvserver: malformed frame")

// writeFrame sends opcode+payload as one v1 frame (no trace field).
func writeFrame(w io.Writer, opcode byte, payload []byte) error {
	return writeFrameTr(w, opcode, obs.TraceContext{}, payload)
}

// writeFrameTr sends one frame, attaching the 24-byte trace field when tc
// carries a trace (TraceID != 0). Callers must only pass a trace on
// connections that negotiated ProtoV2.
func writeFrameTr(w io.Writer, opcode byte, tc obs.TraceContext, payload []byte) error {
	var hdr [5 + traceFieldLen]byte
	n := 5
	if tc.TraceID != 0 {
		hdr[4] = opcode | frameFlagTrace
		binary.LittleEndian.PutUint64(hdr[5:], tc.TraceID)
		binary.LittleEndian.PutUint64(hdr[13:], tc.ParentSpan)
		binary.LittleEndian.PutUint64(hdr[21:], uint64(tc.IssuedUnixNanos))
		n += traceFieldLen
	} else {
		hdr[4] = opcode
	}
	binary.LittleEndian.PutUint32(hdr[:4], uint32(n-4+len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, returning its opcode and payload. A trace field,
// if present, is decoded and dropped — use readFrameTr to keep it.
func readFrame(r io.Reader) (byte, []byte, error) {
	op, _, payload, err := readFrameTr(r)
	return op, payload, err
}

// readFrameTr reads one frame, returning its opcode (trace flag cleared), the
// trace context (zero when the frame carries none), and the payload.
func readFrameTr(r io.Reader) (byte, obs.TraceContext, []byte, error) {
	var buf []byte
	return readFrameBuf(r, &buf)
}

// readFrameBuf is readFrameTr on a caller-owned reusable buffer: the frame
// body is read into *buf (grown only when a frame exceeds its capacity), so a
// steady-state serving loop reads frames without allocating. The returned
// payload aliases *buf and is valid until the next call.
func readFrameBuf(r io.Reader, buf *[]byte) (byte, obs.TraceContext, []byte, error) {
	var tc obs.TraceContext
	// The length header is read into *buf too: a stack array here would
	// escape through the io.Reader interface and cost an allocation per call.
	if cap(*buf) < 4 {
		*buf = make([]byte, 64)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, tc, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n == 0 {
		return 0, tc, nil, fmt.Errorf("%w: zero frame length", ErrBadFrame)
	}
	if n > maxFrame {
		return 0, tc, nil, fmt.Errorf("%w: %d bytes (max %d)", ErrFrameTooLarge, n, maxFrame)
	}
	if uint32(cap(*buf)) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, tc, nil, err
	}
	op := b[0]
	body := b[1:]
	if op&frameFlagTrace != 0 {
		op &^= frameFlagTrace
		if len(body) < traceFieldLen {
			return 0, tc, nil, fmt.Errorf("%w: trace-flagged frame too short (%d bytes)", ErrBadFrame, len(body))
		}
		tc.TraceID = binary.LittleEndian.Uint64(body)
		tc.ParentSpan = binary.LittleEndian.Uint64(body[8:])
		tc.IssuedUnixNanos = int64(binary.LittleEndian.Uint64(body[16:]))
		body = body[traceFieldLen:]
	}
	return op, tc, body, nil
}

func appendString(dst []byte, s []byte) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	return append(append(dst, l[:]...), s...)
}

func takeString(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("kvserver: truncated string")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, nil, fmt.Errorf("kvserver: truncated string body")
	}
	return b[2 : 2+n], b[2+n:], nil
}

func appendValue(dst []byte, v []byte) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(v)))
	return append(append(dst, l[:]...), v...)
}

func takeValue(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("kvserver: truncated value")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, nil, fmt.Errorf("kvserver: truncated value body")
	}
	return b[4 : 4+n], b[4+n:], nil
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("kvserver: truncated u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}
