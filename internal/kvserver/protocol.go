// Package kvserver provides a TCP server and client for a CPR-enabled
// FASTER store. Each connection owns one store session, so the paper's
// session model maps directly onto the network: a client reconnecting with
// its client ID resumes via ContinueSession and learns its recovered CPR
// point — the offset from which to replay its input.
//
// Wire format: length-prefixed binary frames, stdlib only.
//
//	frame  := u32 length | u8 opcode | payload
//	string := u16 len | bytes
//	value  := u32 len | bytes
//
// Requests carry an opcode from the Op* set; responses echo a status byte
// followed by an opcode-specific payload.
package kvserver

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/faster"
	"repro/internal/obs"
)

// Opcodes.
const (
	OpHello  byte = 1 // payload: clientID string  -> resp: u64 CPR point
	OpGet    byte = 2 // payload: key string       -> resp: value
	OpSet    byte = 3 // payload: key string, value -> resp: u64 serial
	OpRMW    byte = 4 // payload: key string, value -> resp: u64 serial
	OpDelete byte = 5 // payload: key string       -> resp: u64 serial
	OpCommit byte = 6 // payload: u8 withIndex     -> resp: u64 CPR point
	OpStats  byte = 7 // payload: none             -> resp: StatsSnapshot JSON
	OpFlight byte = 8 // payload: token string (may be empty) -> resp: obs.FlightDump JSON
)

// StatsVersion is the current StatsSnapshot schema version; bump on any
// incompatible change so clients can reject snapshots they do not understand.
const StatsVersion = 1

// StatsSnapshot is the OpStats response payload: a versioned JSON document
// carrying store state, HybridLog offsets, and the full metrics registry.
type StatsSnapshot struct {
	V          uint32       `json:"v"`
	Version    uint32       `json:"version"` // CPR version
	Phase      string       `json:"phase"`
	LogTail    uint64       `json:"log_tail"`
	LogDurable uint64       `json:"log_durable"`
	LogHead    uint64       `json:"log_head"`
	Sessions   int          `json:"sessions"`
	Metrics    obs.Snapshot `json:"metrics"`
	// Shards carries per-shard state on a partitioned store (absent when the
	// store is unsharded — an additive field, so StatsVersion stays 1). The
	// top-level log offsets then refer to shard 0.
	Shards []ShardStats `json:"shards,omitempty"`
	// Repl carries replication state when the server participates in
	// replication (absent otherwise — additive, StatsVersion stays 1).
	Repl *ReplStats `json:"repl,omitempty"`
	// SessionLags reports per-session durability lag — how far each session's
	// issued serial runs ahead of its committed CPR point t_i, and for how
	// long (absent when no sessions exist — additive, StatsVersion stays 1).
	SessionLags []faster.SessionLag `json:"session_lags,omitempty"`
}

// ReplStats is the StatsSnapshot "repl" block: the server's replication role
// and, on a replica, how far it trails its upstream primary.
type ReplStats struct {
	Role     string `json:"role"`               // "primary" or "replica"
	Upstream string `json:"upstream,omitempty"` // replica: the primary's replication address
	Replicas int    `json:"replicas,omitempty"` // primary: currently connected replicas
	// AppliedVersion is the CPR version of the replica's installed commit
	// (on a primary: its own current version).
	AppliedVersion uint32 `json:"applied_version"`
	// VersionsBehind is the primary's latest committed version minus
	// AppliedVersion (0 on a primary).
	VersionsBehind uint32 `json:"versions_behind"`
	// BytesBehind is the log volume (across shards) the primary has made
	// durable but the replica has not yet received.
	BytesBehind uint64 `json:"bytes_behind"`
}

// ShardStats is one shard's slice of a StatsSnapshot.
type ShardStats struct {
	Version    uint32 `json:"version"`
	Phase      string `json:"phase"`
	LogTail    uint64 `json:"log_tail"`
	LogDurable uint64 `json:"log_durable"`
	LogHead    uint64 `json:"log_head"`
}

// Response status bytes.
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusError    byte = 2
	// StatusRedirect rejects a write on a read-only replica; the payload is
	// the primary's client address (may be empty if unknown).
	StatusRedirect byte = 3
)

// maxFrame bounds a frame to keep a malicious peer from forcing huge
// allocations.
const maxFrame = 16 << 20

// writeFrame sends opcode+payload as one frame.
func writeFrame(w io.Writer, opcode byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = opcode
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, returning its opcode and payload.
func readFrame(r io.Reader) (byte, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("kvserver: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

func appendString(dst []byte, s []byte) []byte {
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	return append(append(dst, l[:]...), s...)
}

func takeString(b []byte) ([]byte, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("kvserver: truncated string")
	}
	n := int(binary.LittleEndian.Uint16(b))
	if len(b) < 2+n {
		return nil, nil, fmt.Errorf("kvserver: truncated string body")
	}
	return b[2 : 2+n], b[2+n:], nil
}

func appendValue(dst []byte, v []byte) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(v)))
	return append(append(dst, l[:]...), v...)
}

func takeValue(b []byte) ([]byte, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("kvserver: truncated value")
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) < 4+n {
		return nil, nil, fmt.Errorf("kvserver: truncated value body")
	}
	return b[4 : 4+n], b[4+n:], nil
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func takeU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("kvserver: truncated u64")
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}
