package kvserver

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/obs"
)

// BatchResult is one op's outcome from a flushed Pipeline, in issue order.
type BatchResult struct {
	Seq    uint64 // the client-assigned sequence number returned at issue time
	Op     byte   // OpGet / OpSet / OpRMW / OpDelete
	Status byte   // StatusOK / StatusNotFound / StatusError
	Value  []byte // GET result (nil unless Status == StatusOK)
	Serial uint64 // session serial for SET/RMW/DELETE
}

// Pipeline accumulates data ops and sends them as one BATCH frame (protocol
// v3), amortizing the network round-trip — and, server-side, the epoch
// protection — across the whole run. Replies come back per op, matched in
// issue order by sequence number. Against a v1/v2 server Flush transparently
// degrades to sequential single-op calls, so callers need not care what the
// peer speaks.
//
// A Pipeline is reusable: Flush resets it for the next run, retaining its
// buffers. It is bound to its Client and shares its single-logical-thread
// rule. Results (including Value slices) are valid until the next Flush.
type Pipeline struct {
	c *Client

	// Timeout bounds one whole Flush — the batch write plus every reply
	// frame (the per-batch deadline). Zero falls back to c.Timeout.
	Timeout time.Duration

	buf     []byte // u32 count placeholder, then the encoded ops
	meta    []pipeMeta
	results []BatchResult
}

// pipeMeta remembers, per queued op, where its encoding lives in buf — the
// bytes from start+9 (past opcode and seq) to end are exactly the single-op
// request payload, which is what the v1/v2 sequential fallback replays.
type pipeMeta struct {
	op         byte
	seq        uint64
	start, end int
}

// Pipeline returns a new empty pipeline on this client.
func (c *Client) Pipeline() *Pipeline {
	p := &Pipeline{c: c}
	p.buf = make([]byte, 4, 256) // count header patched at Flush
	return p
}

// Len returns the number of ops queued since the last Flush.
func (p *Pipeline) Len() int { return len(p.meta) }

func (p *Pipeline) add(op byte, key, val []byte) uint64 {
	p.c.nextSeq++
	seq := p.c.nextSeq
	start := len(p.buf)
	p.buf = appendBatchOp(p.buf, op, seq, key, val)
	p.meta = append(p.meta, pipeMeta{op: op, seq: seq, start: start, end: len(p.buf)})
	return seq
}

// Get queues a read and returns its sequence number.
func (p *Pipeline) Get(key []byte) uint64 { return p.add(OpGet, key, nil) }

// Set queues a blind write and returns its sequence number.
func (p *Pipeline) Set(key, val []byte) uint64 { return p.add(OpSet, key, val) }

// RMW queues a read-modify-write and returns its sequence number.
func (p *Pipeline) RMW(key, input []byte) uint64 { return p.add(OpRMW, key, input) }

// Delete queues a delete and returns its sequence number.
func (p *Pipeline) Delete(key []byte) uint64 { return p.add(OpDelete, key, nil) }

// Reset drops queued ops without sending them, retaining buffers.
func (p *Pipeline) Reset() {
	p.buf = p.buf[:4]
	p.meta = p.meta[:0]
}

// Flush sends the queued ops and returns one result per op, in issue order.
// On a v3 connection everything travels in a single BATCH frame (the server
// may split the reply across several; Flush reads until every op is
// answered). On older connections ops are replayed as sequential single-op
// calls. Flushing an empty pipeline returns (nil, nil). After Flush — error
// or not — the pipeline is reset; results are valid until the next Flush.
func (p *Pipeline) Flush() ([]BatchResult, error) {
	if len(p.meta) == 0 {
		return nil, nil
	}
	if len(p.meta) > maxBatchOps {
		p.Reset()
		return nil, fmt.Errorf("kvserver: pipeline of %d ops exceeds max %d", len(p.meta), maxBatchOps)
	}
	defer p.Reset()
	if p.c.proto < ProtoV3 {
		return p.flushSequential()
	}
	return p.flushBatch()
}

func (p *Pipeline) timeout() time.Duration {
	if p.Timeout > 0 {
		return p.Timeout
	}
	return p.c.Timeout
}

func (p *Pipeline) flushBatch() ([]BatchResult, error) {
	c := p.c
	if d := p.timeout(); d > 0 {
		c.conn.SetDeadline(time.Now().Add(d)) //nolint:errcheck
		defer c.conn.SetDeadline(time.Time{}) //nolint:errcheck
	}
	binary.LittleEndian.PutUint32(p.buf[:4], uint32(len(p.meta)))
	var tc obs.TraceContext
	t0 := time.Now().UnixNano()
	if c.proto >= ProtoV2 {
		// One trace context covers the whole batch; the server records per-op
		// exec spans plus a batch-window span under it.
		tc = obs.TraceContext{TraceID: obs.NewTraceID(), ParentSpan: 1, IssuedUnixNanos: t0}
	}
	if err := writeFrameTr(c.conn, OpBatch, tc, p.buf); err != nil {
		return nil, err
	}
	results := p.results[:0]
	i := 0
	for i < len(p.meta) {
		rop, resp, err := readFrame(c.conn)
		if err != nil {
			return nil, err
		}
		if rop != OpBatch {
			return nil, fmt.Errorf("kvserver: response opcode %d for batch", rop)
		}
		if len(resp) < 1 {
			return nil, fmt.Errorf("kvserver: empty batch response")
		}
		if resp[0] == StatusRedirect {
			primary, _, perr := takeString(resp[1:])
			if perr != nil {
				primary = nil
			}
			return nil, &RedirectError{Addr: string(primary)}
		}
		if resp[0] != StatusOK {
			return nil, fmt.Errorf("kvserver: batch failed (status %d)", resp[0])
		}
		n, body, err := takeU32(resp[1:])
		if err != nil {
			return nil, err
		}
		for j := 0; j < int(n); j++ {
			if i >= len(p.meta) {
				return nil, fmt.Errorf("kvserver: batch reply has extra entries")
			}
			m := p.meta[i]
			if len(body) < 9 {
				return nil, fmt.Errorf("kvserver: truncated batch reply entry")
			}
			seq := binary.LittleEndian.Uint64(body)
			status := body[8]
			body = body[9:]
			if seq != m.seq {
				return nil, fmt.Errorf("kvserver: batch reply out of order: seq %d, want %d", seq, m.seq)
			}
			res := BatchResult{Seq: seq, Op: m.op, Status: status}
			if m.op == OpGet {
				if status == StatusOK {
					v, rest, err := takeValue(body)
					if err != nil {
						return nil, err
					}
					res.Value = append([]byte(nil), v...)
					body = rest
				}
			} else {
				serial, rest, err := takeU64(body)
				if err != nil {
					return nil, err
				}
				res.Serial = serial
				body = rest
			}
			results = append(results, res)
			i++
		}
	}
	if c.Tracer != nil && tc.TraceID != 0 {
		var at obs.ActiveTrace
		c.Tracer.Begin(&at, obs.TraceContext{TraceID: tc.TraceID}, opName(OpBatch), c.id)
		c.Tracer.Finish(&at, t0, time.Now().UnixNano())
	}
	p.results = results
	return results, nil
}

// flushSequential replays the queued ops one call at a time against a peer
// that predates BATCH frames, reusing each op's already-encoded payload.
func (p *Pipeline) flushSequential() ([]BatchResult, error) {
	results := p.results[:0]
	for _, m := range p.meta {
		payload := p.buf[m.start+9 : m.end]
		status, resp, err := p.c.call(m.op, payload)
		if err != nil {
			return nil, err
		}
		res := BatchResult{Seq: m.seq, Op: m.op, Status: status}
		if m.op == OpGet {
			if status == StatusOK {
				v, _, err := takeValue(resp)
				if err != nil {
					return nil, err
				}
				res.Value = append([]byte(nil), v...)
			}
		} else {
			serial, _, err := takeU64(resp)
			if err != nil {
				return nil, err
			}
			res.Serial = serial
		}
		results = append(results, res)
	}
	p.results = results
	return results, nil
}

// GetN reads keys in one pipelined batch. found[i] reports whether keys[i]
// existed; vals[i] is nil when it did not.
func (c *Client) GetN(keys [][]byte) (vals [][]byte, found []bool, err error) {
	p := c.Pipeline()
	for _, k := range keys {
		p.Get(k)
	}
	res, err := p.Flush()
	if err != nil {
		return nil, nil, err
	}
	vals = make([][]byte, len(res))
	found = make([]bool, len(res))
	for i, r := range res {
		switch r.Status {
		case StatusOK:
			vals[i], found[i] = r.Value, true
		case StatusNotFound:
		default:
			return nil, nil, fmt.Errorf("kvserver: get %d in batch failed (status %d)", i, r.Status)
		}
	}
	return vals, found, nil
}

// SetN blindly writes keys[i]=vals[i] in one pipelined batch and returns the
// per-op serials.
func (c *Client) SetN(keys, vals [][]byte) ([]uint64, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("kvserver: SetN: %d keys, %d vals", len(keys), len(vals))
	}
	p := c.Pipeline()
	for i := range keys {
		p.Set(keys[i], vals[i])
	}
	res, err := p.Flush()
	if err != nil {
		return nil, err
	}
	serials := make([]uint64, len(res))
	for i, r := range res {
		if r.Status != StatusOK {
			return nil, fmt.Errorf("kvserver: set %d in batch failed (status %d)", i, r.Status)
		}
		serials[i] = r.Serial
	}
	return serials, nil
}
