package kvserver

import (
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/health"
	"repro/internal/obs"
)

// DefaultCallTimeout bounds each client call's network I/O unless the caller
// overrides Client.Timeout. Generous, because Commit legitimately waits for
// a full checkpoint to become durable.
const DefaultCallTimeout = 30 * time.Second

// RedirectError is returned for writes sent to a read-only replica: retry
// against Addr (the primary), or Reconnect there after a failover.
type RedirectError struct{ Addr string }

// Error implements error.
func (e *RedirectError) Error() string {
	return fmt.Sprintf("kvserver: server is a read-only replica (primary at %q)", e.Addr)
}

// Client is a synchronous client for one server session. It is not safe for
// concurrent use (a session is a single logical thread); open one Client per
// goroutine, as the paper opens one session per thread.
type Client struct {
	conn     net.Conn
	addr     string
	id       string
	cprPoint uint64
	proto    byte
	nextSeq  uint64 // last batch sequence number issued (Pipeline)
	// Timeout bounds each call's network I/O (request write + response
	// read), so a dead server surfaces as an error instead of hanging the
	// session forever. Zero disables deadlines.
	Timeout time.Duration
	// Tracer, when set, records a client-side root span per call, so the
	// server's span tree (sharing the same trace ID) nests under the
	// client-observed request latency. Requires a ProtoV2 server; on a v1
	// server calls are untraced and Tracer is ignored.
	Tracer *obs.RequestTracer
}

// Dial connects and performs the Hello handshake. A non-empty clientID
// resumes that session after a server restart; the returned CPRPoint is the
// serial up to which the session's operations are durable (0 for new
// sessions). An empty clientID starts a fresh session whose server-assigned
// ID is available via ID.
func Dial(addr, clientID string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, DefaultCallTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, addr: addr, Timeout: DefaultCallTimeout}
	conn.SetDeadline(time.Now().Add(DefaultCallTimeout)) //nolint:errcheck
	defer conn.SetDeadline(time.Time{})                  //nolint:errcheck
	// Offer ProtoV3 via the trailing proto byte; a v1 server's Hello parser
	// stops at the client-ID string and its response carries no proto byte,
	// which downgrades this client to v1 (plain frames, no trace field). A v2
	// server echoes ProtoV2 — min(offered, supported) — which keeps traces but
	// disables BATCH frames (Pipeline falls back to sequential calls).
	payload := append(appendString(nil, []byte(clientID)), ProtoV3)
	if err := writeFrame(conn, OpHello, payload); err != nil {
		conn.Close()
		return nil, err
	}
	op, resp, err := readFrame(conn)
	if err != nil || op != OpHello || len(resp) < 1 || resp[0] != StatusOK {
		conn.Close()
		return nil, fmt.Errorf("kvserver: handshake failed: %v", err)
	}
	point, rest, err := takeU64(resp[1:])
	if err != nil {
		conn.Close()
		return nil, err
	}
	id, rest, err := takeString(rest)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.proto = ProtoV1
	if len(rest) > 0 {
		// The echoed version is already min(offered, server max); clamp it to
		// what this client speaks in case a future server misbehaves.
		c.proto = rest[0]
		if c.proto > ProtoV3 {
			c.proto = ProtoV3
		}
		if c.proto < ProtoV1 {
			c.proto = ProtoV1
		}
	}
	c.id = string(id)
	c.cprPoint = point
	return c, nil
}

// ID returns the session ID (use it to resume after reconnecting).
func (c *Client) ID() string { return c.id }

// CPRPoint returns the recovered commit point from the most recent
// handshake: the serial up to which this session's operations are durable.
// After Reconnect it reflects the new server's recovered state — the offset
// from which to replay input.
func (c *Client) CPRPoint() uint64 { return c.cprPoint }

// Proto returns the wire protocol version negotiated at the last handshake
// (ProtoV1 against an old server, ProtoV2 when both sides speak traces,
// ProtoV3 when both also speak pipelined BATCH frames).
func (c *Client) Proto() byte { return c.proto }

// Close closes the connection (the server stops the session).
func (c *Client) Close() error { return c.conn.Close() }

// Reconnect re-dials with the same client ID and refreshes CPRPoint from the
// new server's handshake. addr selects a different server (a promoted
// replica after failover, or a RedirectError's primary); "" re-dials the
// previous address. The old connection is closed. On error the client keeps
// its previous connection state (likely dead; call Reconnect again).
func (c *Client) Reconnect(addr string) error {
	if addr == "" {
		addr = c.addr
	}
	nc, err := Dial(addr, c.id)
	if err != nil {
		return err
	}
	nc.Timeout = c.Timeout
	nc.Tracer = c.Tracer
	c.conn.Close()
	*c = *nc
	return nil
}

func (c *Client) call(op byte, payload []byte) (byte, []byte, error) {
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout)) //nolint:errcheck
		defer c.conn.SetDeadline(time.Time{})         //nolint:errcheck
	}
	var tc obs.TraceContext
	t0 := time.Now().UnixNano()
	if c.proto >= ProtoV2 {
		// ParentSpan 1 is the ID Begin assigns to this client's own root span
		// (below), so the server's tree nests under the client-observed call.
		tc = obs.TraceContext{TraceID: obs.NewTraceID(), ParentSpan: 1, IssuedUnixNanos: t0}
	}
	if err := writeFrameTr(c.conn, op, tc, payload); err != nil {
		return 0, nil, err
	}
	rop, resp, err := readFrame(c.conn)
	if c.Tracer != nil && tc.TraceID != 0 {
		// Root-only client trace: span 1 is the client-observed call window
		// [issue, response-read]; the server's spans (IDs from 2) nest under
		// it. No child spans here — their IDs would collide with the server's.
		var at obs.ActiveTrace
		c.Tracer.Begin(&at, obs.TraceContext{TraceID: tc.TraceID}, opName(op), c.id)
		c.Tracer.Finish(&at, t0, time.Now().UnixNano())
	}
	if err != nil {
		return 0, nil, err
	}
	if rop != op {
		return 0, nil, fmt.Errorf("kvserver: response opcode %d for request %d", rop, op)
	}
	if len(resp) < 1 {
		return 0, nil, fmt.Errorf("kvserver: empty response")
	}
	if resp[0] == StatusRedirect {
		primary, _, perr := takeString(resp[1:])
		if perr != nil {
			primary = nil
		}
		return 0, nil, &RedirectError{Addr: string(primary)}
	}
	return resp[0], resp[1:], nil
}

// Get reads key. found is false when the key does not exist.
func (c *Client) Get(key []byte) (val []byte, found bool, err error) {
	status, resp, err := c.call(OpGet, appendString(nil, key))
	if err != nil {
		return nil, false, err
	}
	switch status {
	case StatusNotFound:
		return nil, false, nil
	case StatusOK:
		v, _, err := takeValue(resp)
		if err != nil {
			return nil, false, err
		}
		return append([]byte(nil), v...), true, nil
	}
	return nil, false, fmt.Errorf("kvserver: get failed")
}

// Set blindly writes key=val and returns the operation's serial number.
func (c *Client) Set(key, val []byte) (uint64, error) {
	return c.mutate(OpSet, key, val)
}

// RMW applies the store's read-modify-write with input to key.
func (c *Client) RMW(key, input []byte) (uint64, error) {
	return c.mutate(OpRMW, key, input)
}

func (c *Client) mutate(op byte, key, val []byte) (uint64, error) {
	payload := appendValue(appendString(nil, key), val)
	status, resp, err := c.call(op, payload)
	if err != nil {
		return 0, err
	}
	if status != StatusOK {
		return 0, fmt.Errorf("kvserver: op %d failed (status %d)", op, status)
	}
	serial, _, err := takeU64(resp)
	return serial, err
}

// Delete removes key. found is false when the key did not exist.
func (c *Client) Delete(key []byte) (found bool, err error) {
	status, _, err := c.call(OpDelete, appendString(nil, key))
	if err != nil {
		return false, err
	}
	switch status {
	case StatusOK:
		return true, nil
	case StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("kvserver: delete failed")
}

// Commit requests a CPR commit (withIndex takes a full checkpoint) and
// blocks until it is durable, returning this session's CPR point: all of
// this client's operations with serial <= point survived.
func (c *Client) Commit(withIndex bool) (uint64, error) {
	flags := []byte{0}
	if withIndex {
		flags[0] = 1
	}
	status, resp, err := c.call(OpCommit, flags)
	if err != nil {
		return 0, err
	}
	if status != StatusOK {
		return 0, fmt.Errorf("kvserver: commit failed")
	}
	point, _, err := takeU64(resp)
	return point, err
}

// WaitDurable blocks until every operation issued on this session so far is
// covered by a durable commit (riding the auto-committer or a peer's commit
// rather than forcing one), returning the committed serial and the covering
// commit's token — the cross-link into flight-recorder events and trace
// durwait spans. On a replica it returns a RedirectError.
func (c *Client) WaitDurable() (uint64, string, error) {
	status, resp, err := c.call(OpWaitDurable, nil)
	if err != nil {
		return 0, "", err
	}
	serial, rest, err := takeU64(resp)
	if err != nil {
		return 0, "", err
	}
	token, _, err := takeString(rest)
	if err != nil {
		return 0, "", err
	}
	if status != StatusOK {
		return serial, "", fmt.Errorf("kvserver: wait-durable timed out at serial %d", serial)
	}
	return serial, string(token), nil
}

// Trace fetches the server's retained slow-request span trees (at most n;
// n <= 0 means server default). Returns an error when the server runs without
// a request tracer.
func (c *Client) Trace(n int) (obs.TraceDump, error) {
	var dump obs.TraceDump
	var payload []byte
	if n > 0 {
		if n > 0xffff {
			n = 0xffff
		}
		payload = []byte{byte(n), byte(n >> 8)} // u16 LE
	}
	status, resp, err := c.call(OpTrace, payload)
	if err != nil {
		return dump, err
	}
	v, _, verr := takeValue(resp)
	if status != StatusOK {
		if verr == nil && len(v) > 0 {
			return dump, fmt.Errorf("kvserver: trace failed: %s", v)
		}
		return dump, fmt.Errorf("kvserver: trace failed")
	}
	if verr != nil {
		return dump, verr
	}
	if err := json.Unmarshal(v, &dump); err != nil {
		return dump, fmt.Errorf("kvserver: trace payload: %w", err)
	}
	return dump, nil
}

// Stats fetches the server's introspection snapshot: store state, HybridLog
// offsets, and the full metrics registry.
func (c *Client) Stats() (StatsSnapshot, error) {
	var snap StatsSnapshot
	status, resp, err := c.call(OpStats, nil)
	if err != nil {
		return snap, err
	}
	if status != StatusOK {
		return snap, fmt.Errorf("kvserver: stats failed")
	}
	v, _, err := takeValue(resp)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(v, &snap); err != nil {
		return snap, fmt.Errorf("kvserver: stats payload: %w", err)
	}
	if snap.V != StatsVersion {
		return snap, fmt.Errorf("kvserver: stats schema v%d, want v%d", snap.V, StatsVersion)
	}
	return snap, nil
}

// Flight fetches the server's flight-recorder contents: the causal event
// timeline the store has been recording, filtered to events carrying the
// given commit token when token is non-empty. Returns an error when the
// server runs without a flight recorder.
func (c *Client) Flight(token string) (obs.FlightDump, error) {
	var dump obs.FlightDump
	status, resp, err := c.call(OpFlight, appendString(nil, []byte(token)))
	if err != nil {
		return dump, err
	}
	v, _, verr := takeValue(resp)
	if status != StatusOK {
		if verr == nil && len(v) > 0 {
			return dump, fmt.Errorf("kvserver: flight failed: %s", v)
		}
		return dump, fmt.Errorf("kvserver: flight failed")
	}
	if verr != nil {
		return dump, verr
	}
	if err := json.Unmarshal(v, &dump); err != nil {
		return dump, fmt.Errorf("kvserver: flight payload: %w", err)
	}
	return dump, nil
}

// Health fetches the server's health verdict. Returns an error when the
// server runs without a health engine.
func (c *Client) Health() (*health.Verdict, error) {
	status, resp, err := c.call(OpHealth, nil)
	if err != nil {
		return nil, err
	}
	v, _, verr := takeValue(resp)
	if status != StatusOK {
		if verr == nil && len(v) > 0 {
			return nil, fmt.Errorf("kvserver: health failed: %s", v)
		}
		return nil, fmt.Errorf("kvserver: health failed")
	}
	if verr != nil {
		return nil, verr
	}
	var verdict health.Verdict
	if err := json.Unmarshal(v, &verdict); err != nil {
		return nil, fmt.Errorf("kvserver: health payload: %w", err)
	}
	return &verdict, nil
}
