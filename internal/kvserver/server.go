package kvserver

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/faster"
)

// Server serves a CPR-enabled FASTER store over TCP. Each accepted
// connection runs a handler goroutine that owns one store session; idle
// connections still refresh their epoch entries periodically so in-flight
// commits can complete.
type Server struct {
	store *faster.Store
	ln    net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]bool
	closed bool
	wg     sync.WaitGroup

	// AutoCommit, when positive, triggers a log-only commit at this cadence.
	AutoCommit time.Duration
	// Logger receives connection errors; defaults to the standard logger.
	Logger *log.Logger

	stopAuto chan struct{}
}

// NewServer wraps an open store.
func NewServer(store *faster.Store) *Server {
	return &Server{
		store:    store,
		conns:    make(map[net.Conn]bool),
		Logger:   log.New(os.Stderr, "kvserver: ", log.LstdFlags),
		stopAuto: make(chan struct{}),
	}
}

// Serve listens on addr (e.g. "127.0.0.1:0") and blocks accepting
// connections until Close. It returns the bound address via Addr.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	if s.AutoCommit > 0 {
		s.wg.Add(1)
		go s.autoCommitter()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the bound listen address (after Serve started).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	close(s.stopAuto)
	s.wg.Wait()
}

func (s *Server) autoCommitter() {
	defer s.wg.Done()
	t := time.NewTicker(s.AutoCommit)
	defer t.Stop()
	for {
		select {
		case <-s.stopAuto:
			return
		case <-t.C:
			// Log-only fold-over commits at the configured cadence; skipped
			// while another commit is still in flight.
			s.store.Commit(faster.CommitOptions{}) //nolint:errcheck
		}
	}
}

// idlePoll is how often an idle connection refreshes its session's epoch.
const idlePoll = 20 * time.Millisecond

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// The first frame must be Hello, binding the connection to a session.
	op, payload, err := readFrame(conn)
	if err != nil || op != OpHello {
		return
	}
	clientID, _, err := takeString(payload)
	if err != nil {
		return
	}
	var sess *faster.Session
	var cprPoint uint64
	if len(clientID) > 0 {
		sess, cprPoint = s.store.ContinueSession(string(clientID))
	} else {
		sess = s.store.StartSession()
	}
	defer sess.StopSession()
	resp := appendU64([]byte{StatusOK}, cprPoint)
	resp = appendString(resp, []byte(sess.ID()))
	if err := writeFrame(conn, OpHello, resp); err != nil {
		return
	}

	br := bufio.NewReader(conn)
	for {
		// Bounded wait for the first byte of a frame so idle connections
		// keep refreshing their epoch entry — otherwise an idle client
		// would stall every commit. The deadline only ever gates the peek
		// (which consumes nothing on timeout); the frame itself is read
		// with a generous deadline so it is never cut in half.
		conn.SetReadDeadline(time.Now().Add(idlePoll)) //nolint:errcheck
		if _, err := br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				sess.Refresh()
				sess.CompletePending(false)
				continue
			}
			return // connection closed
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		op, payload, err = readFrame(br)
		if err != nil {
			return // connection closed or protocol error
		}
		if err := s.dispatch(conn, sess, op, payload); err != nil {
			s.Logger.Printf("conn %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) dispatch(conn net.Conn, sess *faster.Session, op byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	switch op {
	case OpGet:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		var out []byte
		var status byte
		done := false
		val, st := sess.Read(key, func(v []byte, s2 faster.Status) {
			done = true
			if s2 == faster.Ok {
				out = append(out[:0], v...)
				status = StatusOK
			} else if s2 == faster.NotFound {
				status = StatusNotFound
			} else {
				status = StatusError
			}
		})
		switch st {
		case faster.Ok:
			out, status, done = append(out[:0], val...), StatusOK, true
		case faster.NotFound:
			status, done = StatusNotFound, true
		case faster.Pending:
			sess.CompletePending(true)
		}
		if !done {
			status = StatusError
		}
		return writeFrame(conn, OpGet, appendValue([]byte{status}, out))

	case OpSet, OpRMW:
		key, rest, err := takeString(payload)
		if err != nil {
			return err
		}
		val, _, err := takeValue(rest)
		if err != nil {
			return err
		}
		var st faster.Status
		if op == OpSet {
			st = sess.Upsert(key, val)
		} else {
			st = sess.RMW(key, val)
		}
		if st == faster.Pending {
			sess.CompletePending(true)
			st = faster.Ok
		}
		status := StatusOK
		if st != faster.Ok {
			status = StatusError
		}
		return writeFrame(conn, op, appendU64([]byte{status}, sess.Serial()))

	case OpDelete:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		st := sess.Delete(key)
		if st == faster.Pending {
			sess.CompletePending(true)
			st = faster.Ok
		}
		status := StatusOK
		if st == faster.Error {
			status = StatusError
		} else if st == faster.NotFound {
			status = StatusNotFound
		}
		return writeFrame(conn, OpDelete, appendU64([]byte{status}, sess.Serial()))

	case OpCommit:
		if len(payload) < 1 {
			return fmt.Errorf("commit: missing flags")
		}
		withIndex := payload[0] != 0
		token, err := s.store.Commit(faster.CommitOptions{WithIndex: withIndex})
		if err == faster.ErrCommitInProgress {
			// Piggyback on the commit already in flight.
			token = ""
		} else if err != nil {
			return writeFrame(conn, OpCommit, appendU64([]byte{StatusError}, 0))
		}
		// Drive until some commit completes and this session is at rest.
		for {
			if token != "" {
				if res, ok := s.store.TryResult(token); ok {
					point := res.Serials[sess.ID()]
					status := StatusOK
					if res.Err != nil {
						status = StatusError
					}
					return writeFrame(conn, OpCommit, appendU64([]byte{status}, point))
				}
			} else if s.store.Phase() == faster.Rest {
				return writeFrame(conn, OpCommit, appendU64([]byte{StatusOK}, sess.Serial()))
			}
			sess.Refresh()
			sess.CompletePending(false)
		}

	case OpStats:
		lg := s.store.Log()
		snap := StatsSnapshot{
			V:          StatsVersion,
			Version:    s.store.Version(),
			Phase:      s.store.Phase().String(),
			LogTail:    lg.Tail(),
			LogDurable: lg.Durable(),
			LogHead:    lg.Head(),
			Sessions:   s.store.SessionCount(),
			Metrics:    s.store.Metrics().Snapshot(),
		}
		if n := s.store.NumShards(); n > 1 {
			snap.Shards = make([]ShardStats, n)
			for i := 0; i < n; i++ {
				sl := s.store.ShardLog(i)
				snap.Shards[i] = ShardStats{
					Version:    s.store.ShardVersion(i),
					Phase:      s.store.ShardPhase(i).String(),
					LogTail:    sl.Tail(),
					LogDurable: sl.Durable(),
					LogHead:    sl.Head(),
				}
			}
		}
		buf, err := json.Marshal(snap)
		if err != nil {
			return writeFrame(conn, OpStats, appendValue([]byte{StatusError}, nil))
		}
		return writeFrame(conn, OpStats, appendValue([]byte{StatusOK}, buf))
	}
	return fmt.Errorf("unknown opcode %d", op)
}
