package kvserver

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// Server serves a CPR-enabled FASTER store over TCP. Each accepted
// connection runs a handler goroutine that owns one store session; idle
// connections still refresh their epoch entries periodically so in-flight
// commits can complete.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	store   *faster.Store
	replica ReplicaBackend // non-nil while serving in replica mode
	conns   map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup

	// om holds the per-op latency-decomposition histogram handles, resolved
	// from the served store's registry (re-resolved on Promote).
	om opMetrics

	// AutoCommit, when positive, triggers a log-only commit at this cadence.
	AutoCommit time.Duration
	// Logger receives connection errors; defaults to the standard logger.
	Logger *log.Logger
	// ReplStats, when set, attaches a replication block to OpStats responses
	// (the replication server's progress on a primary; set automatically by
	// NewReplicaServer on a replica).
	ReplStats func() *ReplStats

	stopAuto chan struct{}
}

// ReplicaBackend is the read-only view a replica-mode server serves from
// (implemented by repl.Replica). Its methods must be internally synchronized
// against the replica's installs.
type ReplicaBackend interface {
	// Read returns key's value in the replica's installed prefix.
	Read(key []byte) (val []byte, found bool, err error)
	// RecoveredPoint returns the installed CPR point for a session ID.
	RecoveredPoint(id string) uint64
	// Upstream returns the primary's client-facing address for redirects
	// (may be empty when unknown).
	Upstream() string
	// Store exposes the replica's underlying store (stats snapshots).
	Store() *faster.Store
	// ReplStats describes the replica's replication progress.
	ReplStats() *ReplStats
}

// NewServer wraps an open store.
func NewServer(store *faster.Store) *Server {
	return &Server{
		store:    store,
		conns:    make(map[net.Conn]bool),
		om:       resolveOpMetrics(store.Metrics()),
		Logger:   log.New(os.Stderr, "kvserver: ", log.LstdFlags),
		stopAuto: make(chan struct{}),
	}
}

// NewReplicaServer serves the read-only replica rb: reads come from the
// installed committed prefix, writes are rejected with StatusRedirect, and a
// Hello with a known session ID reports that session's installed CPR point.
// Promote later switches the same server to full primary service.
func NewReplicaServer(rb ReplicaBackend) *Server {
	s := NewServer(rb.Store())
	s.replica = rb
	s.ReplStats = rb.ReplStats
	return s
}

// Promote switches a replica-mode server to primary service over store (the
// replica's store after faster.Store.Promote). Open replica connections are
// closed so their clients reconnect into real sessions and learn their
// prefix-consistent CPR points; the auto-committer starts if configured.
func (s *Server) Promote(store *faster.Store) {
	s.mu.Lock()
	wasReplica := s.replica != nil
	s.store = store
	s.om = resolveOpMetrics(store.Metrics())
	s.replica = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	closed := s.closed
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if wasReplica && !closed && s.AutoCommit > 0 {
		s.wg.Add(1)
		go s.autoCommitter()
	}
}

// getStore returns the currently served store (swapped by Promote).
func (s *Server) getStore() *faster.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// opMetrics returns the decomposition histogram handles for the currently
// served store (swapped by Promote).
func (s *Server) opMetrics() opMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.om
}

// replicaBackend returns the replica backend, or nil in primary mode.
func (s *Server) replicaBackend() ReplicaBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

// Serve listens on addr (e.g. "127.0.0.1:0") and blocks accepting
// connections until Close. It returns the bound address via Addr.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	replica := s.replica != nil
	s.mu.Unlock()
	if s.AutoCommit > 0 && !replica {
		// A replica never commits on its own; Promote starts the committer.
		s.wg.Add(1)
		go s.autoCommitter()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the bound listen address (after Serve started).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes all connections, and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	close(s.stopAuto)
	s.wg.Wait()
}

func (s *Server) autoCommitter() {
	defer s.wg.Done()
	t := time.NewTicker(s.AutoCommit)
	defer t.Stop()
	for {
		select {
		case <-s.stopAuto:
			return
		case <-t.C:
			// Log-only fold-over commits at the configured cadence; skipped
			// while another commit is still in flight.
			s.getStore().Commit(faster.CommitOptions{}) //nolint:errcheck
		}
	}
}

// idlePoll is how often an idle connection refreshes its session's epoch.
const idlePoll = 20 * time.Millisecond

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// The first frame must be Hello, binding the connection to a session.
	op, payload, err := readFrame(conn)
	if err != nil || op != OpHello {
		return
	}
	clientID, rest, err := takeString(payload)
	if err != nil {
		return
	}
	// Version negotiation: a v2 client appends a proto byte after its client
	// ID; a v1 client's payload ends at the string, so rest is empty. The
	// negotiated version is echoed at the end of the response (which a v1
	// client never looks at). Only after this exchange may either side send
	// trace-flagged frames.
	proto := ProtoV1
	if len(rest) > 0 && rest[0] >= ProtoV2 {
		proto = ProtoV2
	}
	if rb := s.replicaBackend(); rb != nil {
		s.handleReplica(conn, rb, string(clientID), proto, len(rest) > 0)
		return
	}
	var sess *faster.Session
	var cprPoint uint64
	if len(clientID) > 0 {
		sess, cprPoint = s.getStore().ContinueSession(string(clientID))
	} else {
		sess = s.getStore().StartSession()
	}
	defer sess.StopSession()
	resp := appendU64([]byte{StatusOK}, cprPoint)
	resp = appendString(resp, []byte(sess.ID()))
	if len(rest) > 0 {
		resp = append(resp, proto)
	}
	if err := writeFrame(conn, OpHello, resp); err != nil {
		return
	}

	br := bufio.NewReader(conn)
	var at obs.ActiveTrace // per-connection scratch; armed per request by Begin
	for {
		// Bounded wait for the first byte of a frame so idle connections
		// keep refreshing their epoch entry — otherwise an idle client
		// would stall every commit. The deadline only ever gates the peek
		// (which consumes nothing on timeout); the frame itself is read
		// with a generous deadline so it is never cut in half.
		conn.SetReadDeadline(time.Now().Add(idlePoll)) //nolint:errcheck
		if _, err := br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				sess.Refresh()
				sess.CompletePending(false)
				continue
			}
			return // connection closed
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		op, tc, payload, err := readFrameTr(br)
		if err != nil {
			return // connection closed or protocol error
		}
		if err := s.dispatch(conn, sess, op, tc, payload, &at); err != nil {
			s.Logger.Printf("conn %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch wraps one request in a trace: the root span opens at frame receipt
// and closes after the response write, with queue/decode/exec/durwait/resp
// child spans recorded along the way. With no tracer configured the scratch
// stays disarmed and every span call is a single pointer test.
func (s *Server) dispatch(conn net.Conn, sess *faster.Session, op byte, tc obs.TraceContext, payload []byte, at *obs.ActiveTrace) error {
	store := s.getStore()
	rt := store.RequestTracer()
	om := s.opMetrics()
	tRecv := time.Now().UnixNano()
	rt.Begin(at, tc, opName(op), sess.ID())
	if tc.IssuedUnixNanos > 0 {
		iss := tc.IssuedUnixNanos
		if iss > tRecv {
			iss = tRecv // client/server clock skew: clamp to zero length
		}
		at.Span(obs.SpanQueue, iss, tRecv, 0, 0, "")
		om.queueNs.ObserveValue(uint64(tRecv - iss))
	}
	err := s.dispatchOp(conn, store, om, sess, op, payload, at, tRecv)
	rt.Finish(at, tRecv, time.Now().UnixNano())
	return err
}

// respond writes one response frame, recording it as a resp-write span.
func (s *Server) respond(conn net.Conn, at *obs.ActiveTrace, op byte, resp []byte) error {
	t0 := time.Now().UnixNano()
	err := writeFrame(conn, op, resp)
	at.Span(obs.SpanRespWrite, t0, time.Now().UnixNano(), uint64(len(resp)), 0, "")
	return err
}

func (s *Server) dispatchOp(conn net.Conn, store *faster.Store, om opMetrics, sess *faster.Session, op byte, payload []byte, at *obs.ActiveTrace, tRecv int64) error {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	switch op {
	case OpGet:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		tDec := time.Now().UnixNano()
		at.Span(obs.SpanDecode, tRecv, tDec, uint64(store.ShardOfKey(key)), 0, "")
		var out []byte
		var status byte
		done := false
		val, st := sess.Read(key, func(v []byte, s2 faster.Status) {
			done = true
			if s2 == faster.Ok {
				out = append(out[:0], v...)
				status = StatusOK
			} else if s2 == faster.NotFound {
				status = StatusNotFound
			} else {
				status = StatusError
			}
		})
		switch st {
		case faster.Ok:
			out, status, done = append(out[:0], val...), StatusOK, true
		case faster.NotFound:
			status, done = StatusNotFound, true
		case faster.Pending:
			sess.CompletePending(true)
		}
		if !done {
			status = StatusError
		}
		tExec := time.Now().UnixNano()
		at.Span(obs.SpanExec, tDec, tExec, sess.Serial(), 0, "")
		om.execNs.ObserveValue(uint64(tExec - tDec))
		return s.respond(conn, at, OpGet, appendValue([]byte{status}, out))

	case OpSet, OpRMW:
		key, rest, err := takeString(payload)
		if err != nil {
			return err
		}
		val, _, err := takeValue(rest)
		if err != nil {
			return err
		}
		tDec := time.Now().UnixNano()
		at.Span(obs.SpanDecode, tRecv, tDec, uint64(store.ShardOfKey(key)), 0, "")
		var st faster.Status
		if op == OpSet {
			st = sess.Upsert(key, val)
		} else {
			st = sess.RMW(key, val)
		}
		if st == faster.Pending {
			sess.CompletePending(true)
			st = faster.Ok
		}
		status := StatusOK
		if st != faster.Ok {
			status = StatusError
		}
		tExec := time.Now().UnixNano()
		at.Span(obs.SpanExec, tDec, tExec, sess.Serial(), 0, "")
		om.execNs.ObserveValue(uint64(tExec - tDec))
		return s.respond(conn, at, op, appendU64([]byte{status}, sess.Serial()))

	case OpDelete:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		tDec := time.Now().UnixNano()
		at.Span(obs.SpanDecode, tRecv, tDec, uint64(store.ShardOfKey(key)), 0, "")
		st := sess.Delete(key)
		if st == faster.Pending {
			sess.CompletePending(true)
			st = faster.Ok
		}
		status := StatusOK
		if st == faster.Error {
			status = StatusError
		} else if st == faster.NotFound {
			status = StatusNotFound
		}
		tExec := time.Now().UnixNano()
		at.Span(obs.SpanExec, tDec, tExec, sess.Serial(), 0, "")
		om.execNs.ObserveValue(uint64(tExec - tDec))
		return s.respond(conn, at, OpDelete, appendU64([]byte{status}, sess.Serial()))

	case OpCommit:
		if len(payload) < 1 {
			return fmt.Errorf("commit: missing flags")
		}
		withIndex := payload[0] != 0
		token, err := store.Commit(faster.CommitOptions{WithIndex: withIndex})
		if err == faster.ErrCommitInProgress {
			// Piggyback on the commit already in flight.
			token = ""
		} else if err != nil {
			return s.respond(conn, at, OpCommit, appendU64([]byte{StatusError}, 0))
		}
		// Drive until some commit completes and this session is at rest.
		tWait := time.Now().UnixNano()
		var status byte = StatusOK
		var point uint64
	commitWait:
		for {
			if token != "" {
				if res, ok := store.TryResult(token); ok {
					point = res.Serials[sess.ID()]
					if res.Err != nil {
						status = StatusError
					}
					break commitWait
				}
			} else if store.Phase() == faster.Rest {
				point = sess.Serial()
				break commitWait
			}
			sess.Refresh()
			sess.CompletePending(false)
		}
		tDone := time.Now().UnixNano()
		if token == "" {
			token = sess.CommittedToken() // piggybacked: name the covering commit
		}
		at.Span(obs.SpanDurWait, tWait, tDone, point, sess.CommittedSerial(), token)
		om.durwaitNs.ObserveValue(uint64(tDone - tWait))
		return s.respond(conn, at, OpCommit, appendU64([]byte{status}, point))

	case OpWaitDurable:
		// Block until the session's committed point t_i covers everything this
		// connection has issued, riding whatever commit (auto-committer or a
		// peer's explicit commit) gets there first. This is the durability
		// handshake a traced client uses to expose durwait as a distinct hop.
		target := sess.Serial()
		tWait := time.Now().UnixNano()
		deadline := time.Now().Add(25 * time.Second)
		for sess.CommittedSerial() < target {
			if time.Now().After(deadline) {
				return s.respond(conn, at, OpWaitDurable,
					appendString(appendU64([]byte{StatusError}, sess.CommittedSerial()), nil))
			}
			sess.Refresh()
			sess.CompletePending(false)
			time.Sleep(100 * time.Microsecond)
		}
		tDone := time.Now().UnixNano()
		token := sess.CommittedToken()
		at.Span(obs.SpanDurWait, tWait, tDone, target, sess.CommittedSerial(), token)
		om.durwaitNs.ObserveValue(uint64(tDone - tWait))
		resp := appendU64([]byte{StatusOK}, sess.CommittedSerial())
		resp = appendString(resp, []byte(token))
		return s.respond(conn, at, OpWaitDurable, resp)

	case OpTrace:
		return s.writeTraceDump(conn, store, payload)

	case OpStats:
		return s.writeStats(conn, store)

	case OpFlight:
		return s.writeFlight(conn, store, payload)
	}
	return fmt.Errorf("unknown opcode %d", op)
}

// writeTraceDump sends the OpTrace response: the request tracer's retained
// slow-request span trees plus global replication spans as JSON.
func (s *Server) writeTraceDump(conn net.Conn, store *faster.Store, payload []byte) error {
	n := 16
	if len(payload) >= 2 {
		n = int(binary.LittleEndian.Uint16(payload))
	}
	rt := store.RequestTracer()
	if rt == nil {
		return writeFrame(conn, OpTrace, appendValue([]byte{StatusError},
			[]byte("request tracer disabled")))
	}
	buf, err := json.Marshal(rt.Dump(n))
	if err != nil {
		return writeFrame(conn, OpTrace, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(conn, OpTrace, appendValue([]byte{StatusOK}, buf))
}

// writeFlight sends the OpFlight response: the store's flight-recorder
// contents as an obs.FlightDump JSON document, filtered to events whose
// commit token matches the requested token when one is given.
func (s *Server) writeFlight(conn net.Conn, store *faster.Store, payload []byte) error {
	var token string
	if len(payload) > 0 {
		tok, _, err := takeString(payload)
		if err != nil {
			return err
		}
		token = string(tok)
	}
	fr := store.Flight()
	if fr == nil {
		return writeFrame(conn, OpFlight, appendValue([]byte{StatusError},
			[]byte("flight recorder disabled")))
	}
	events, dropped := fr.Events()
	if token != "" {
		events = obs.FilterFlightEvents(events, token)
	}
	dump := obs.FlightDump{WallStartNanos: fr.WallStart(), Dropped: dropped, Events: events}
	buf, err := json.Marshal(dump)
	if err != nil {
		return writeFrame(conn, OpFlight, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(conn, OpFlight, appendValue([]byte{StatusOK}, buf))
}

// writeStats marshals and sends the OpStats response for store.
func (s *Server) writeStats(conn net.Conn, store *faster.Store) error {
	lg := store.Log()
	snap := StatsSnapshot{
		V:          StatsVersion,
		Version:    store.Version(),
		Phase:      store.Phase().String(),
		LogTail:    lg.Tail(),
		LogDurable: lg.Durable(),
		LogHead:    lg.Head(),
		Sessions:   store.SessionCount(),
		Metrics:    store.Metrics().Snapshot(),
	}
	if n := store.NumShards(); n > 1 {
		snap.Shards = make([]ShardStats, n)
		for i := 0; i < n; i++ {
			sl := store.ShardLog(i)
			snap.Shards[i] = ShardStats{
				Version:    store.ShardVersion(i),
				Phase:      store.ShardPhase(i).String(),
				LogTail:    sl.Tail(),
				LogDurable: sl.Durable(),
				LogHead:    sl.Head(),
			}
		}
	}
	if s.ReplStats != nil {
		snap.Repl = s.ReplStats()
	}
	snap.SessionLags = store.SessionLags()
	buf, err := json.Marshal(snap)
	if err != nil {
		return writeFrame(conn, OpStats, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(conn, OpStats, appendValue([]byte{StatusOK}, buf))
}

// handleReplica runs a connection against the replica backend: reads are
// served from the installed committed prefix; writes get StatusRedirect with
// the primary's address. The loop ends (closing the connection) when the
// server is promoted, so clients reconnect into real sessions.
func (s *Server) handleReplica(conn net.Conn, rb ReplicaBackend, clientID string, proto byte, sentProto bool) {
	resp := appendU64([]byte{StatusOK}, rb.RecoveredPoint(clientID))
	resp = appendString(resp, []byte(clientID))
	if sentProto {
		resp = append(resp, proto)
	}
	if err := writeFrame(conn, OpHello, resp); err != nil {
		return
	}
	for {
		conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		op, payload, err := readFrame(conn)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() && s.replicaBackend() != nil {
				continue // idle replica reader; keep waiting
			}
			return
		}
		if s.replicaBackend() == nil {
			return // promoted mid-stream: force the client to reconnect
		}
		if err := s.dispatchReplica(conn, rb, op, payload); err != nil {
			s.Logger.Printf("replica conn %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) dispatchReplica(conn net.Conn, rb ReplicaBackend, op byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	switch op {
	case OpGet:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		val, found, err := rb.Read(key)
		status := StatusOK
		if err != nil {
			status, val = StatusError, nil
		} else if !found {
			status, val = StatusNotFound, nil
		}
		return writeFrame(conn, OpGet, appendValue([]byte{status}, val))
	case OpSet, OpRMW, OpDelete, OpCommit, OpWaitDurable:
		// Writes (and durability waits on them) belong on the primary; tell
		// the client where to go.
		return writeFrame(conn, op, appendString([]byte{StatusRedirect}, []byte(rb.Upstream())))
	case OpStats:
		return s.writeStats(conn, rb.Store())
	case OpFlight:
		return s.writeFlight(conn, rb.Store(), payload)
	case OpTrace:
		return s.writeTraceDump(conn, rb.Store(), payload)
	}
	return fmt.Errorf("unknown opcode %d", op)
}
