package kvserver

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/faster"
	"repro/internal/health"
	"repro/internal/obs"
)

// Server serves a CPR-enabled FASTER store over TCP. Each accepted
// connection runs a handler goroutine that owns one store session; idle
// connections still refresh their epoch entries periodically so in-flight
// commits can complete.
//
// The serving loop is allocation-free in steady state: frames are read into
// a per-connection reusable buffer, batch payloads are decoded arena-style
// (keys and values as sub-slices of the frame buffer), the session recycles
// op records through its freelist (faster.Session.BeginBatch), and replies
// are gathered into a reusable buffer behind a coalescing writer.
type Server struct {
	ln net.Listener

	mu      sync.Mutex
	store   *faster.Store
	replica ReplicaBackend // non-nil while serving in replica mode
	conns   map[net.Conn]bool
	closed  bool
	wg      sync.WaitGroup

	// om holds the per-op latency-decomposition histogram handles, resolved
	// from the served store's registry (re-resolved on Promote).
	om opMetrics

	// AutoCommit, when positive, triggers a log-only commit at this cadence.
	AutoCommit time.Duration
	// IdleTimeout, when positive, reaps connections that go this long without
	// sending a frame: the connection is closed and its FASTER session
	// released, so abandoned clients stop pinning epoch entries and session
	// state. A reaped client reconnects into the same logical session via
	// Hello with its session ID. Zero disables reaping. Set before Serve.
	IdleTimeout time.Duration
	// Logger receives connection errors; defaults to the standard logger.
	Logger *log.Logger
	// ReplStats, when set, attaches a replication block to OpStats responses
	// (the replication server's progress on a primary; set automatically by
	// NewReplicaServer on a replica).
	ReplStats func() *ReplStats
	// Health, when set, serves the health engine's verdict for OpHealth and
	// attaches it to OpStats responses (wired to health.Engine.Verdict by
	// cprserver when -health-interval is on). Set before Serve.
	Health func() *health.Verdict

	// CoalesceBytes / CoalesceOps bound per-connection write coalescing (the
	// MaxSyncLag idiom applied to reply frames): buffered replies are flushed
	// to the socket when either the byte or reply-count cap is exceeded, and
	// always before the connection blocks waiting for more requests — so a
	// reply's lag behind its request is bounded by the pipeline the client
	// itself keeps in flight. Zero means the defaults. Set before Serve.
	CoalesceBytes int
	CoalesceOps   int

	stopAuto chan struct{}
}

// Write-coalescing defaults: flush the reply buffer beyond 64KiB or 128
// reply frames, whichever trips first.
const (
	DefaultCoalesceBytes = 64 << 10
	DefaultCoalesceOps   = 128
)

func (s *Server) coalesceBytes() int {
	if s.CoalesceBytes > 0 {
		return s.CoalesceBytes
	}
	return DefaultCoalesceBytes
}

func (s *Server) coalesceOps() int {
	if s.CoalesceOps > 0 {
		return s.CoalesceOps
	}
	return DefaultCoalesceOps
}

// ReplicaBackend is the read-only view a replica-mode server serves from
// (implemented by repl.Replica). Its methods must be internally synchronized
// against the replica's installs.
type ReplicaBackend interface {
	// Read returns key's value in the replica's installed prefix.
	Read(key []byte) (val []byte, found bool, err error)
	// RecoveredPoint returns the installed CPR point for a session ID.
	RecoveredPoint(id string) uint64
	// Upstream returns the primary's client-facing address for redirects
	// (may be empty when unknown).
	Upstream() string
	// Store exposes the replica's underlying store (stats snapshots).
	Store() *faster.Store
	// ReplStats describes the replica's replication progress.
	ReplStats() *ReplStats
}

// NewServer wraps an open store.
func NewServer(store *faster.Store) *Server {
	return &Server{
		store:    store,
		conns:    make(map[net.Conn]bool),
		om:       resolveOpMetrics(store.Metrics()),
		Logger:   log.New(os.Stderr, "kvserver: ", log.LstdFlags),
		stopAuto: make(chan struct{}),
	}
}

// NewReplicaServer serves the read-only replica rb: reads come from the
// installed committed prefix, writes are rejected with StatusRedirect, and a
// Hello with a known session ID reports that session's installed CPR point.
// Promote later switches the same server to full primary service.
func NewReplicaServer(rb ReplicaBackend) *Server {
	s := NewServer(rb.Store())
	s.replica = rb
	s.ReplStats = rb.ReplStats
	return s
}

// Promote switches a replica-mode server to primary service over store (the
// replica's store after faster.Store.Promote). Open replica connections are
// closed so their clients reconnect into real sessions and learn their
// prefix-consistent CPR points; the auto-committer starts if configured.
func (s *Server) Promote(store *faster.Store) {
	s.mu.Lock()
	wasReplica := s.replica != nil
	s.store = store
	s.om = resolveOpMetrics(store.Metrics())
	s.replica = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	closed := s.closed
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if wasReplica && !closed && s.AutoCommit > 0 {
		s.wg.Add(1)
		go s.autoCommitter()
	}
}

// getStore returns the currently served store (swapped by Promote).
func (s *Server) getStore() *faster.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// opMetrics returns the decomposition histogram handles for the currently
// served store (swapped by Promote).
func (s *Server) opMetrics() opMetrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.om
}

// replicaBackend returns the replica backend, or nil in primary mode.
func (s *Server) replicaBackend() ReplicaBackend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replica
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Serve listens on addr (e.g. "127.0.0.1:0") and blocks accepting
// connections until Close. It returns the bound address via Addr.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	replica := s.replica != nil
	s.mu.Unlock()
	if s.AutoCommit > 0 && !replica {
		// A replica never commits on its own; Promote starts the committer.
		s.wg.Add(1)
		go s.autoCommitter()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		s.conns[conn] = true
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the bound listen address (after Serve started).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the listener and waits for every in-flight handler to drain:
// handlers notice the closed flag at their next frame boundary, flush any
// coalesced replies, and close their own connections — a reply frame is
// never torn mid-write by shutdown. Reads blocked mid-frame are woken via an
// expired read deadline (tearing a *read* is safe; nothing was promised to
// the peer yet).
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	now := time.Now()
	for c := range s.conns {
		c.SetReadDeadline(now) //nolint:errcheck
	}
	s.mu.Unlock()
	close(s.stopAuto)
	s.wg.Wait()
}

func (s *Server) autoCommitter() {
	defer s.wg.Done()
	t := time.NewTicker(s.AutoCommit)
	defer t.Stop()
	for {
		select {
		case <-s.stopAuto:
			return
		case <-t.C:
			// Log-only fold-over commits at the configured cadence; skipped
			// while another commit is still in flight.
			s.getStore().Commit(faster.CommitOptions{}) //nolint:errcheck
		}
	}
}

// idlePoll is how often an idle connection refreshes its session's epoch
// (and checks for server shutdown).
const idlePoll = 20 * time.Millisecond

// helloTimeout bounds how long a fresh connection may sit silent before its
// Hello; without it a dialed-but-mute client would pin a handler forever.
const helloTimeout = 30 * time.Second

// connState is a connection's reusable serving state: buffered reader,
// coalescing writer, the frame/reply scratch buffers the zero-allocation
// loop reuses across requests, and the pending-read completion scratch the
// persistent readCB closure delivers into.
type connState struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	frame []byte // reusable frame read buffer (readFrameBuf)
	reply []byte // reusable batch reply build buffer

	// unflushed counts per-op replies written into bw since the last flush
	// (the op-count half of the coalescing cap; batch frames count each
	// entry).
	unflushed int

	// Pending cold-read completion scratch: readCB (created once per
	// connection) copies the value here, execBatch and the single-op GET
	// path consume it.
	pendVal  []byte
	pendSt   faster.Status
	pendDone bool
	readCB   func(val []byte, st faster.Status)
}

// flushConn pushes coalesced replies to the socket and records the flush in
// the coalescing counters.
func (s *Server) flushConn(cs *connState, om opMetrics) error {
	if cs.bw.Buffered() == 0 {
		cs.unflushed = 0
		return nil
	}
	cs.conn.SetWriteDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	if err := cs.bw.Flush(); err != nil {
		return err
	}
	om.coalescedFlushes.Inc()
	om.coalescedReplies.Add(uint64(cs.unflushed))
	cs.unflushed = 0
	return nil
}

// waitReadable blocks until the connection has readable bytes, polling at
// idlePoll so the session (if any) keeps refreshing its epoch entry —
// otherwise an idle client would stall every commit — and so server shutdown
// (or the stop condition) is noticed promptly. The deadline only ever gates
// the peek, which consumes nothing on timeout. A positive cap bounds the
// total wait.
func (s *Server) waitReadable(cs *connState, sess *faster.Session, cap time.Duration, stop func() bool) error {
	var deadline time.Time
	if cap > 0 {
		deadline = time.Now().Add(cap)
	}
	for {
		if s.isClosed() || (stop != nil && stop()) {
			return net.ErrClosed
		}
		cs.conn.SetReadDeadline(time.Now().Add(idlePoll)) //nolint:errcheck
		if _, err := cs.br.Peek(1); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if sess != nil {
					sess.Refresh()
					sess.CompletePending(false)
				}
				if cap > 0 && time.Now().After(deadline) {
					return err
				}
				continue
			}
			return err // connection closed
		}
		return nil
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	cs := &connState{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 32<<10),
	}
	cs.bw = bufio.NewWriterSize(conn, s.coalesceBytes())
	cs.readCB = func(v []byte, st faster.Status) {
		cs.pendVal = append(cs.pendVal[:0], v...)
		cs.pendSt = st
		cs.pendDone = true
	}

	// The first frame must be Hello, binding the connection to a session.
	if err := s.waitReadable(cs, nil, helloTimeout, nil); err != nil {
		return
	}
	conn.SetReadDeadline(time.Now().Add(helloTimeout)) //nolint:errcheck
	op, _, payload, err := readFrameBuf(cs.br, &cs.frame)
	if err != nil || op != OpHello {
		return
	}
	clientID, rest, err := takeString(payload)
	if err != nil {
		return
	}
	// Version negotiation: a v2+ client appends its highest supported proto
	// byte after its client ID; a v1 client's payload ends at the string, so
	// rest is empty. The server takes min(offered, ProtoV3) and echoes it at
	// the end of the response (which a v1 client never looks at), landing
	// both sides on the highest protocol they share. Only after this
	// exchange may either side send trace-flagged or BATCH frames.
	proto := ProtoV1
	if len(rest) > 0 {
		proto = rest[0]
		if proto > ProtoV3 {
			proto = ProtoV3
		}
		if proto < ProtoV1 {
			proto = ProtoV1
		}
	}
	id := string(clientID) // copy: payload aliases the reused frame buffer
	if rb := s.replicaBackend(); rb != nil {
		s.handleReplica(cs, rb, id, proto, len(rest) > 0)
		return
	}
	var sess *faster.Session
	var cprPoint uint64
	if len(id) > 0 {
		sess, cprPoint = s.getStore().ContinueSession(id)
	} else {
		sess = s.getStore().StartSession()
	}
	defer sess.StopSession()
	resp := appendU64([]byte{StatusOK}, cprPoint)
	resp = appendString(resp, []byte(sess.ID()))
	if len(rest) > 0 {
		resp = append(resp, proto)
	}
	if err := writeFrame(cs.bw, OpHello, resp); err != nil {
		return
	}
	if err := s.flushConn(cs, s.opMetrics()); err != nil {
		return
	}

	var at obs.ActiveTrace // per-connection scratch; armed per request by Begin
	for {
		// Coalescing invariant: replies may lag their requests by at most
		// CoalesceOps frames / CoalesceBytes bytes while more requests are
		// already buffered (a pipelining client), and never lag past a quiet
		// boundary — the buffer is always flushed before blocking for input.
		if cs.br.Buffered() == 0 {
			if err := s.flushConn(cs, s.opMetrics()); err != nil {
				return
			}
			if err := s.waitReadable(cs, sess, s.IdleTimeout, nil); err != nil {
				var ne net.Error
				if s.IdleTimeout > 0 && errors.As(err, &ne) && ne.Timeout() && !s.isClosed() {
					// Idle past the cap: reap the connection. The deferred
					// close + StopSession release the socket and the session's
					// epoch entry; the client's session state survives for a
					// reconnecting Hello.
					s.opMetrics().idleReaps.Inc()
					s.Logger.Printf("conn %v: reaped after %v idle (session %s released)",
						conn.RemoteAddr(), s.IdleTimeout, sess.ID())
				}
				return
			}
		} else if cs.unflushed >= s.coalesceOps() || cs.bw.Buffered() >= s.coalesceBytes() {
			if err := s.flushConn(cs, s.opMetrics()); err != nil {
				return
			}
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		op, tc, payload, err := readFrameBuf(cs.br, &cs.frame)
		if err != nil {
			return // connection closed or protocol error
		}
		if err := s.dispatch(cs, sess, op, tc, payload, &at); err != nil {
			s.Logger.Printf("conn %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

// dispatch wraps one request in a trace: the root span opens at frame receipt
// and closes after the response write, with queue/decode/exec/durwait/resp
// child spans recorded along the way. With no tracer configured the scratch
// stays disarmed and every span call is a single pointer test.
func (s *Server) dispatch(cs *connState, sess *faster.Session, op byte, tc obs.TraceContext, payload []byte, at *obs.ActiveTrace) error {
	store := s.getStore()
	rt := store.RequestTracer()
	om := s.opMetrics()
	tRecv := time.Now().UnixNano()
	rt.Begin(at, tc, opName(op), sess.ID())
	if tc.IssuedUnixNanos > 0 {
		iss := tc.IssuedUnixNanos
		if iss > tRecv {
			iss = tRecv // client/server clock skew: clamp to zero length
		}
		at.Span(obs.SpanQueue, iss, tRecv, 0, 0, "")
		om.queueNs.ObserveValue(uint64(tRecv - iss))
	}
	err := s.dispatchOp(cs, store, om, sess, op, payload, at, tRecv)
	rt.Finish(at, tRecv, time.Now().UnixNano())
	return err
}

// respond writes one response frame into the coalescing buffer, recording it
// as a resp-write span.
func (s *Server) respond(cs *connState, at *obs.ActiveTrace, op byte, resp []byte) error {
	t0 := time.Now().UnixNano()
	err := writeFrame(cs.bw, op, resp)
	cs.unflushed++
	at.Span(obs.SpanRespWrite, t0, time.Now().UnixNano(), uint64(len(resp)), 0, "")
	return err
}

func (s *Server) dispatchOp(cs *connState, store *faster.Store, om opMetrics, sess *faster.Session, op byte, payload []byte, at *obs.ActiveTrace, tRecv int64) error {
	conn := cs.conn
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	switch op {
	case OpBatch:
		return s.execBatch(cs, store, om, sess, payload, at, tRecv)

	case OpGet:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		tDec := time.Now().UnixNano()
		at.Span(obs.SpanDecode, tRecv, tDec, uint64(store.ShardOfKey(key)), 0, "")
		out, status := s.readOne(cs, sess, key)
		tExec := time.Now().UnixNano()
		at.Span(obs.SpanExec, tDec, tExec, sess.Serial(), 0, "")
		om.execNs.ObserveValue(uint64(tExec - tDec))
		return s.respond(cs, at, OpGet, appendValue([]byte{status}, out))

	case OpSet, OpRMW:
		key, rest, err := takeString(payload)
		if err != nil {
			return err
		}
		val, _, err := takeValue(rest)
		if err != nil {
			return err
		}
		tDec := time.Now().UnixNano()
		at.Span(obs.SpanDecode, tRecv, tDec, uint64(store.ShardOfKey(key)), 0, "")
		var st faster.Status
		if op == OpSet {
			st = sess.Upsert(key, val)
		} else {
			st = sess.RMW(key, val)
		}
		if st == faster.Pending {
			sess.CompletePending(true)
			st = faster.Ok
		}
		status := StatusOK
		if st != faster.Ok {
			status = StatusError
		}
		tExec := time.Now().UnixNano()
		at.Span(obs.SpanExec, tDec, tExec, sess.Serial(), 0, "")
		om.execNs.ObserveValue(uint64(tExec - tDec))
		return s.respond(cs, at, op, appendU64([]byte{status}, sess.Serial()))

	case OpDelete:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		tDec := time.Now().UnixNano()
		at.Span(obs.SpanDecode, tRecv, tDec, uint64(store.ShardOfKey(key)), 0, "")
		st := sess.Delete(key)
		if st == faster.Pending {
			sess.CompletePending(true)
			st = faster.Ok
		}
		status := StatusOK
		if st == faster.Error {
			status = StatusError
		} else if st == faster.NotFound {
			status = StatusNotFound
		}
		tExec := time.Now().UnixNano()
		at.Span(obs.SpanExec, tDec, tExec, sess.Serial(), 0, "")
		om.execNs.ObserveValue(uint64(tExec - tDec))
		return s.respond(cs, at, OpDelete, appendU64([]byte{status}, sess.Serial()))

	case OpCommit:
		if len(payload) < 1 {
			return fmt.Errorf("commit: missing flags")
		}
		// Push earlier pipelined replies out before a potentially long wait.
		if err := s.flushConn(cs, om); err != nil {
			return err
		}
		withIndex := payload[0] != 0
		token, err := store.Commit(faster.CommitOptions{WithIndex: withIndex})
		if err == faster.ErrCommitInProgress {
			// Piggyback on the commit already in flight.
			token = ""
		} else if err != nil {
			return s.respond(cs, at, OpCommit, appendU64([]byte{StatusError}, 0))
		}
		// Drive until some commit completes and this session is at rest.
		tWait := time.Now().UnixNano()
		var status byte = StatusOK
		var point uint64
	commitWait:
		for {
			if token != "" {
				if res, ok := store.TryResult(token); ok {
					point = res.Serials[sess.ID()]
					if res.Err != nil {
						status = StatusError
					}
					break commitWait
				}
			} else if store.Phase() == faster.Rest {
				point = sess.Serial()
				break commitWait
			}
			sess.Refresh()
			sess.CompletePending(false)
		}
		tDone := time.Now().UnixNano()
		if token == "" {
			token = sess.CommittedToken() // piggybacked: name the covering commit
		}
		at.Span(obs.SpanDurWait, tWait, tDone, point, sess.CommittedSerial(), token)
		om.durwaitNs.ObserveValue(uint64(tDone - tWait))
		return s.respond(cs, at, OpCommit, appendU64([]byte{status}, point))

	case OpWaitDurable:
		// Block until the session's committed point t_i covers everything this
		// connection has issued, riding whatever commit (auto-committer or a
		// peer's explicit commit) gets there first. This is the durability
		// handshake a traced client uses to expose durwait as a distinct hop.
		if err := s.flushConn(cs, om); err != nil {
			return err
		}
		target := sess.Serial()
		tWait := time.Now().UnixNano()
		deadline := time.Now().Add(25 * time.Second)
		for sess.CommittedSerial() < target {
			if time.Now().After(deadline) || s.isClosed() {
				// Timed out — or the server is shutting down and the covering
				// commit may never arrive. Either way the client gets a
				// complete, well-formed error frame, never a torn one.
				return s.respond(cs, at, OpWaitDurable,
					appendString(appendU64([]byte{StatusError}, sess.CommittedSerial()), nil))
			}
			sess.Refresh()
			sess.CompletePending(false)
			time.Sleep(100 * time.Microsecond)
		}
		tDone := time.Now().UnixNano()
		token := sess.CommittedToken()
		at.Span(obs.SpanDurWait, tWait, tDone, target, sess.CommittedSerial(), token)
		om.durwaitNs.ObserveValue(uint64(tDone - tWait))
		resp := appendU64([]byte{StatusOK}, sess.CommittedSerial())
		resp = appendString(resp, []byte(token))
		return s.respond(cs, at, OpWaitDurable, resp)

	case OpTrace:
		return s.writeTraceDump(cs.bw, store, payload)

	case OpStats:
		return s.writeStats(cs.bw, store)

	case OpFlight:
		return s.writeFlight(cs.bw, store, payload)

	case OpHealth:
		return s.writeHealth(cs.bw)
	}
	return fmt.Errorf("unknown opcode %d", op)
}

// readOne serves one GET on the connection's session, delivering cold-read
// completions through the connection's persistent callback scratch so the
// steady-state path allocates nothing.
func (s *Server) readOne(cs *connState, sess *faster.Session, key []byte) ([]byte, byte) {
	cs.pendDone = false
	val, st := sess.Read(key, cs.readCB)
	if st == faster.Pending {
		sess.CompletePending(true)
		if !cs.pendDone {
			return nil, StatusError
		}
		val, st = cs.pendVal, cs.pendSt
	}
	switch st {
	case faster.Ok:
		return val, StatusOK
	case faster.NotFound:
		return nil, StatusNotFound
	}
	return nil, StatusError
}

// execBatch serves one BATCH frame: ops are decoded arena-style from the
// frame buffer, scattered to shards through the session's hash router in
// issue order, and their replies gathered in the same order into the reused
// reply buffer. The session runs in batch mode (one epoch refresh up front,
// op records recycled), so the in-memory steady state allocates nothing per
// op. A reply run exceeding the coalescing byte cap is emitted as its own
// self-contained frame, bounding buffered reply memory for huge batches.
func (s *Server) execBatch(cs *connState, store *faster.Store, om opMetrics, sess *faster.Session, payload []byte, at *obs.ActiveTrace, tRecv int64) error {
	r, err := newBatchReader(payload)
	if err != nil {
		return err
	}
	om.batches.Inc()
	om.batchDepth.ObserveValue(uint64(r.count))
	tBatch := time.Now().UnixNano()
	at.Span(obs.SpanDecode, tRecv, tBatch, uint64(r.count), 0, "")
	sess.BeginBatch()
	defer sess.EndBatch()
	byteCap := s.coalesceBytes()
	reply := beginBatchReply(cs.reply)
	count := 0 // entries in the current reply run
	sent := 0  // reply frames already emitted (split batches)
	for i := 0; i < r.count; i++ {
		op, seq, key, val, err := r.next()
		if err != nil {
			cs.reply = reply[:0]
			return err
		}
		t0 := time.Now().UnixNano()
		switch op {
		case OpGet:
			v, status := s.readOne(cs, sess, key)
			reply = appendBatchValueResult(reply, seq, status, v)
		case OpSet, OpRMW:
			var st faster.Status
			if op == OpSet {
				st = sess.Upsert(key, val)
			} else {
				st = sess.RMW(key, val)
			}
			if st == faster.Pending {
				sess.CompletePending(true)
				st = faster.Ok
			}
			status := StatusOK
			if st != faster.Ok {
				status = StatusError
			}
			reply = appendBatchSerialResult(reply, seq, status, sess.Serial())
		case OpDelete:
			st := sess.Delete(key)
			if st == faster.Pending {
				sess.CompletePending(true)
				st = faster.Ok
			}
			status := StatusOK
			if st == faster.Error {
				status = StatusError
			} else if st == faster.NotFound {
				status = StatusNotFound
			}
			reply = appendBatchSerialResult(reply, seq, status, sess.Serial())
		}
		t1 := time.Now().UnixNano()
		om.execNs.ObserveValue(uint64(t1 - t0))
		if at.Remaining() > 1 {
			// Per-op exec spans while the trace has room; the SpanBatch
			// window below summarizes the whole run regardless.
			at.Span(obs.SpanExec, t0, t1, sess.Serial(), 0, "")
		}
		count++
		if len(reply) >= byteCap {
			finishBatchReply(reply, count)
			if _, err := cs.bw.Write(reply); err != nil {
				cs.reply = reply[:0]
				return err
			}
			cs.unflushed += count
			sent++
			reply = beginBatchReply(reply)
			count = 0
		}
	}
	tEnd := time.Now().UnixNano()
	at.Span(obs.SpanBatch, tBatch, tEnd, uint64(r.count), uint64(len(reply)), "")
	if count > 0 || sent == 0 {
		t0 := time.Now().UnixNano()
		finishBatchReply(reply, count)
		_, err := cs.bw.Write(reply)
		cs.unflushed += count
		at.Span(obs.SpanRespWrite, t0, time.Now().UnixNano(), uint64(len(reply)), 0, "")
		cs.reply = reply[:0]
		return err
	}
	cs.reply = reply[:0]
	return nil
}

// writeTraceDump sends the OpTrace response: the request tracer's retained
// slow-request span trees plus global replication spans as JSON.
func (s *Server) writeTraceDump(w io.Writer, store *faster.Store, payload []byte) error {
	n := 16
	if len(payload) >= 2 {
		n = int(binary.LittleEndian.Uint16(payload))
	}
	rt := store.RequestTracer()
	if rt == nil {
		return writeFrame(w, OpTrace, appendValue([]byte{StatusError},
			[]byte("request tracer disabled")))
	}
	buf, err := json.Marshal(rt.Dump(n))
	if err != nil {
		return writeFrame(w, OpTrace, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(w, OpTrace, appendValue([]byte{StatusOK}, buf))
}

// writeFlight sends the OpFlight response: the store's flight-recorder
// contents as an obs.FlightDump JSON document, filtered to events whose
// commit token matches the requested token when one is given.
func (s *Server) writeFlight(w io.Writer, store *faster.Store, payload []byte) error {
	var token string
	if len(payload) > 0 {
		tok, _, err := takeString(payload)
		if err != nil {
			return err
		}
		token = string(tok)
	}
	fr := store.Flight()
	if fr == nil {
		return writeFrame(w, OpFlight, appendValue([]byte{StatusError},
			[]byte("flight recorder disabled")))
	}
	events, dropped := fr.Events()
	if token != "" {
		events = obs.FilterFlightEvents(events, token)
	}
	dump := obs.FlightDump{WallStartNanos: fr.WallStart(), Dropped: dropped, Events: events}
	buf, err := json.Marshal(dump)
	if err != nil {
		return writeFrame(w, OpFlight, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(w, OpFlight, appendValue([]byte{StatusOK}, buf))
}

// writeHealth serves the health engine's verdict as JSON, or an error frame
// when no engine is wired.
func (s *Server) writeHealth(w io.Writer) error {
	if s.Health == nil {
		return writeFrame(w, OpHealth, appendValue([]byte{StatusError},
			[]byte("health engine disabled")))
	}
	buf, err := json.Marshal(s.Health())
	if err != nil {
		return writeFrame(w, OpHealth, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(w, OpHealth, appendValue([]byte{StatusOK}, buf))
}

// writeStats marshals and sends the OpStats response for store.
func (s *Server) writeStats(w io.Writer, store *faster.Store) error {
	lg := store.Log()
	snap := StatsSnapshot{
		V:          StatsVersion,
		Version:    store.Version(),
		Phase:      store.Phase().String(),
		LogTail:    lg.Tail(),
		LogDurable: lg.Durable(),
		LogHead:    lg.Head(),
		Sessions:   store.SessionCount(),
		Metrics:    store.Metrics().Snapshot(),
	}
	if n := store.NumShards(); n > 1 {
		snap.Shards = make([]ShardStats, n)
		for i := 0; i < n; i++ {
			sl := store.ShardLog(i)
			snap.Shards[i] = ShardStats{
				Version:    store.ShardVersion(i),
				Phase:      store.ShardPhase(i).String(),
				LogTail:    sl.Tail(),
				LogDurable: sl.Durable(),
				LogHead:    sl.Head(),
			}
		}
	}
	if s.ReplStats != nil {
		snap.Repl = s.ReplStats()
	}
	if s.Health != nil {
		snap.Health = s.Health()
	}
	snap.SessionLags = store.SessionLags()
	snap.Restore = store.RestoreStatus()
	buf, err := json.Marshal(snap)
	if err != nil {
		return writeFrame(w, OpStats, appendValue([]byte{StatusError}, nil))
	}
	return writeFrame(w, OpStats, appendValue([]byte{StatusOK}, buf))
}

// handleReplica runs a connection against the replica backend: reads are
// served from the installed committed prefix; writes get StatusRedirect with
// the primary's address. The loop ends (closing the connection) when the
// server is promoted, so clients reconnect into real sessions. Replies are
// written straight through (no coalescing): replica read traffic is not
// pipelined by the fallback client, and promotion must not strand buffered
// replies.
func (s *Server) handleReplica(cs *connState, rb ReplicaBackend, clientID string, proto byte, sentProto bool) {
	conn := cs.conn
	resp := appendU64([]byte{StatusOK}, rb.RecoveredPoint(clientID))
	resp = appendString(resp, []byte(clientID))
	if sentProto {
		resp = append(resp, proto)
	}
	if err := writeFrame(conn, OpHello, resp); err != nil {
		return
	}
	promoted := func() bool { return s.replicaBackend() == nil }
	for {
		if err := s.waitReadable(cs, nil, 0, promoted); err != nil {
			return
		}
		conn.SetReadDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
		op, _, payload, err := readFrameBuf(cs.br, &cs.frame)
		if err != nil {
			return
		}
		if promoted() {
			return // promoted mid-stream: force the client to reconnect
		}
		if err := s.dispatchReplica(conn, rb, op, payload); err != nil {
			s.Logger.Printf("replica conn %v: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) dispatchReplica(conn net.Conn, rb ReplicaBackend, op byte, payload []byte) error {
	conn.SetWriteDeadline(time.Now().Add(30 * time.Second)) //nolint:errcheck
	switch op {
	case OpGet:
		key, _, err := takeString(payload)
		if err != nil {
			return err
		}
		val, found, err := rb.Read(key)
		status := StatusOK
		if err != nil {
			status, val = StatusError, nil
		} else if !found {
			status, val = StatusNotFound, nil
		}
		return writeFrame(conn, OpGet, appendValue([]byte{status}, val))
	case OpBatch:
		return s.replicaBatch(conn, rb, payload)
	case OpSet, OpRMW, OpDelete, OpCommit, OpWaitDurable:
		// Writes (and durability waits on them) belong on the primary; tell
		// the client where to go.
		return writeFrame(conn, op, appendString([]byte{StatusRedirect}, []byte(rb.Upstream())))
	case OpStats:
		return s.writeStats(conn, rb.Store())
	case OpFlight:
		return s.writeFlight(conn, rb.Store(), payload)
	case OpTrace:
		return s.writeTraceDump(conn, rb.Store(), payload)
	case OpHealth:
		return s.writeHealth(conn)
	}
	return fmt.Errorf("unknown opcode %d", op)
}

// replicaBatch serves a BATCH frame in replica mode: a read-only batch is
// served from the installed prefix; a batch containing any write is
// redirected whole — mixing served reads with redirected writes would tear
// the client's pipeline in half.
func (s *Server) replicaBatch(conn net.Conn, rb ReplicaBackend, payload []byte) error {
	scan, err := newBatchReader(payload)
	if err != nil {
		return err
	}
	for i := 0; i < scan.count; i++ {
		op, _, _, _, err := scan.next()
		if err != nil {
			return err
		}
		if op != OpGet {
			return writeFrame(conn, OpBatch,
				appendString([]byte{StatusRedirect}, []byte(rb.Upstream())))
		}
	}
	r, err := newBatchReader(payload)
	if err != nil {
		return err
	}
	frame := beginBatchReply(nil)
	for i := 0; i < r.count; i++ {
		_, seq, key, _, err := r.next()
		if err != nil {
			return err
		}
		val, found, rerr := rb.Read(key)
		status := StatusOK
		if rerr != nil {
			status, val = StatusError, nil
		} else if !found {
			status, val = StatusNotFound, nil
		}
		frame = appendBatchValueResult(frame, seq, status, val)
	}
	finishBatchReply(frame, r.count)
	_, err = conn.Write(frame)
	return err
}
