package kvserver

import "repro/internal/obs"

// opMetrics holds the per-op latency-decomposition histograms: where a
// request's wall-clock time went, split into queue (client issue to server
// decode), exec (FASTER operation), durwait (waiting for a covering commit)
// and replwait (commit durable to replica commit-announce; observed by the
// repl package into the same registry). Together with the request tracer's
// span trees these attribute tail latency to a specific hop.
type opMetrics struct {
	queueNs    *obs.Histogram
	execNs     *obs.Histogram
	durwaitNs  *obs.Histogram
	replwaitNs *obs.Histogram

	// Protocol v3 pipelining counters: how deep BATCH frames run, and how
	// well per-connection write coalescing amortizes flush syscalls
	// (replies-per-flush = coalescedReplies / coalescedFlushes).
	batchDepth       *obs.Histogram
	batches          *obs.Counter
	coalescedFlushes *obs.Counter
	coalescedReplies *obs.Counter

	// idleReaps counts connections closed (and their FASTER sessions
	// released) for sitting idle past Server.IdleTimeout.
	idleReaps *obs.Counter
}

// resolveOpMetrics resolves (creating if absent) the decomposition histograms
// in reg so every family is present in /metrics.prom even before first use.
func resolveOpMetrics(reg *obs.Registry) opMetrics {
	reg.SetHelp("faster_op_queue_ns",
		"Per-request client-issue to server-decode latency (network + accept queueing; requires a v2 traced client).")
	reg.SetHelp("faster_op_exec_ns",
		"Per-request FASTER operation execution latency, including pending completion.")
	reg.SetHelp("faster_op_durwait_ns",
		"Per-request durability wait: time spent blocked for a covering commit (COMMIT / WAITDUR ops).")
	reg.SetHelp("faster_op_replwait_ns",
		"Per-commit wait from local durability to replica commit-announce.")
	reg.SetHelp("faster_batch_depth",
		"Ops per BATCH frame (protocol v3 pipelining depth as observed by the server).")
	reg.SetHelp("faster_net_batches_total",
		"BATCH frames served (protocol v3).")
	reg.SetHelp("faster_net_coalesced_flushes_total",
		"Per-connection reply-buffer flushes (write syscalls after coalescing), summed across connections.")
	reg.SetHelp("faster_net_coalesced_replies_total",
		"Per-op replies that passed through the coalescing buffer, summed across connections; divide by flushes for replies-per-write-syscall.")
	reg.SetHelp("kvserver_idle_reaps_total",
		"Connections closed for idling past the server's idle timeout; their FASTER sessions were released.")
	return opMetrics{
		queueNs:          reg.Histogram("faster_op_queue_ns"),
		execNs:           reg.Histogram("faster_op_exec_ns"),
		durwaitNs:        reg.Histogram("faster_op_durwait_ns"),
		replwaitNs:       reg.Histogram("faster_op_replwait_ns"),
		batchDepth:       reg.Histogram("faster_batch_depth"),
		batches:          reg.Counter("faster_net_batches_total"),
		coalescedFlushes: reg.Counter("faster_net_coalesced_flushes_total"),
		coalescedReplies: reg.Counter("faster_net_coalesced_replies_total"),
		idleReaps:        reg.Counter("kvserver_idle_reaps_total"),
	}
}

// opName returns a stable human-readable label for a request opcode, used as
// the Op field of retained request traces.
func opName(op byte) string {
	switch op {
	case OpHello:
		return "HELLO"
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpRMW:
		return "RMW"
	case OpDelete:
		return "DEL"
	case OpCommit:
		return "COMMIT"
	case OpStats:
		return "STATS"
	case OpFlight:
		return "FLIGHT"
	case OpTrace:
		return "TRACE"
	case OpWaitDurable:
		return "WAITDUR"
	case OpBatch:
		return "BATCH"
	}
	return "OP?"
}
