// Package epoch implements the epoch-protection framework of Sec. 3 of the
// CPR paper (Prasaad et al., SIGMOD 2019), the loose-synchronization building
// block used by every CPR commit protocol in this repository.
//
// A Manager maintains a shared atomic counter E (the current epoch). Every
// participating thread T owns an entry in a shared epoch table holding its
// thread-local copy E_T, refreshed periodically. An epoch c is safe when all
// registered threads have a strictly higher local epoch. Threads may register
// trigger actions with BumpEpoch: the action fires exactly once, after the
// bumped epoch becomes safe — i.e. after every registered thread has
// refreshed and therefore observed any global state written before the bump.
package epoch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// MaxThreads is the capacity of the epoch table. Each registered Guard
// occupies one entry until released.
const MaxThreads = 512

const cacheLine = 64

// entry is one slot of the shared epoch table. Entries are padded to a cache
// line so refreshes by different threads do not false-share.
type entry struct {
	local atomic.Uint64 // thread-local epoch; 0 means the slot is free
	_     [cacheLine - 8]byte
}

// action is a registered trigger: fn runs once epoch is safe.
type action struct {
	epoch uint64
	fn    func()
}

// Manager is a shared epoch table plus a drain list of trigger actions.
// The zero value is not usable; call New.
type Manager struct {
	current atomic.Uint64 // E
	safe    atomic.Uint64 // E_s, largest known-safe epoch

	table [MaxThreads]entry

	drainCount atomic.Int32 // fast-path check: non-zero iff drain may be non-empty
	drainMu    sync.Mutex
	drain      []action

	// Observability (set once by Instrument/InstrumentFlight before
	// concurrent use; nil-safe).
	bumps       *obs.Counter
	drains      *obs.Counter
	drainNs     *obs.Histogram
	flight      *obs.FlightRecorder
	flightShard int
}

// Instrument registers the manager's metrics with reg:
//
//	epoch_bumps_total   epoch increments
//	epoch_drains_total  trigger actions fired
//	epoch_drain_ns      latency from bump to the action firing (all threads
//	                    refreshed past the bumped epoch)
//	epoch_current/epoch_safe/epoch_registered  live table state
//
// Call it once, before the manager is shared across goroutines.
func (m *Manager) Instrument(reg *obs.Registry) {
	m.bumps = reg.Counter("epoch_bumps_total")
	m.drains = reg.Counter("epoch_drains_total")
	m.drainNs = reg.Histogram("epoch_drain_ns")
	reg.GaugeFunc("epoch_current", func() int64 { return int64(m.current.Load()) })
	reg.SetHelp("epoch_current", "Current (most recently bumped) epoch.")
	reg.GaugeFunc("epoch_safe", func() int64 { return int64(m.safe.Load()) })
	reg.SetHelp("epoch_safe",
		"Safe-to-reclaim epoch (every registered thread has refreshed past it).")
	reg.GaugeFunc("epoch_registered", func() int64 { return int64(m.Registered()) })
	reg.GaugeFunc("epoch_pending_drains", func() int64 { return int64(m.drainCount.Load()) })
	reg.SetHelp("epoch_pending_drains",
		"Trigger actions queued behind an unsafe epoch; nonzero with no drains firing is the health engine's epoch-drain-stuck signal.")
	reg.SetHelp("epoch_drains_total", "Epoch trigger actions fired (drains executed).")
}

// InstrumentFlight attaches a flight recorder: every epoch bump emits an
// epoch-bump event and every drained trigger an epoch-drain event, tagged
// with shard. Call it once, before the manager is shared across goroutines.
// A nil recorder is a no-op.
func (m *Manager) InstrumentFlight(fr *obs.FlightRecorder, shard int) {
	m.flight = fr
	m.flightShard = shard
}

// New returns a Manager with the current epoch initialized to 1 so that a
// zero local-epoch value can mean "slot free".
func New() *Manager {
	m := &Manager{}
	m.current.Store(1)
	return m
}

// Guard is a registered thread's handle into the epoch table. A Guard is not
// safe for concurrent use; it belongs to the goroutine that acquired it.
type Guard struct {
	m    *Manager
	slot int
}

// Acquire registers the calling goroutine in the epoch table and returns its
// Guard. It panics if the table is full, which indicates a configuration
// error (more concurrent sessions than MaxThreads).
func (m *Manager) Acquire() *Guard {
	e := m.current.Load()
	for i := range m.table {
		if m.table[i].local.Load() == 0 && m.table[i].local.CompareAndSwap(0, e) {
			return &Guard{m: m, slot: i}
		}
	}
	panic("epoch: table full; raise MaxThreads or release unused guards")
}

// Refresh copies the current epoch into the guard's table entry, recomputes
// the maximal safe epoch, and runs any trigger actions that became ready.
func (g *Guard) Refresh() {
	g.m.table[g.slot].local.Store(g.m.current.Load())
	g.m.computeSafeAndDrain()
}

// Release removes the guard from the epoch table. Any actions that become
// ready as a result are triggered. The guard must not be used afterwards.
func (g *Guard) Release() {
	g.m.table[g.slot].local.Store(0)
	g.m.computeSafeAndDrain()
	g.m = nil
}

// Current returns the current global epoch E.
func (m *Manager) Current() uint64 { return m.current.Load() }

// Safe returns the most recently computed maximal safe epoch E_s.
func (m *Manager) Safe() uint64 { return m.safe.Load() }

// BumpEpoch increments the current epoch from e to e+1 and registers fn to
// run after epoch e becomes safe — that is, after every registered thread has
// refreshed its local epoch to at least e+1 and has therefore observed any
// global state stored before this call. If no threads are registered, fn runs
// immediately. fn may itself call BumpEpoch.
func (m *Manager) BumpEpoch(fn func()) {
	prev := m.current.Add(1) - 1
	m.bumps.Inc()
	m.flight.Emit(obs.FlightEpochBump, m.flightShard, 0, "", "", prev, 0)
	if fn == nil {
		return
	}
	if m.drainNs != nil || m.flight != nil {
		inner := fn
		t0 := time.Now()
		fn = func() {
			d := time.Since(t0)
			m.drains.Inc()
			m.drainNs.Observe(d)
			m.flight.Emit(obs.FlightEpochDrain, m.flightShard, 0, "", "", prev, uint64(d.Nanoseconds()))
			inner()
		}
	}
	m.drainMu.Lock()
	m.drain = append(m.drain, action{epoch: prev, fn: fn})
	m.drainMu.Unlock()
	m.drainCount.Add(1)
	m.computeSafeAndDrain()
}

// Bump increments the current epoch without registering an action.
func (m *Manager) Bump() { m.BumpEpoch(nil) }

// computeSafeAndDrain recomputes E_s by scanning the table and fires every
// drain-list action whose epoch is now safe. Actions are removed under the
// lock (so each runs exactly once) but invoked outside it (so an action may
// bump the epoch and register further actions).
func (m *Manager) computeSafeAndDrain() {
	cur := m.current.Load()
	minLocal := cur
	for i := range m.table {
		if v := m.table[i].local.Load(); v != 0 && v < minLocal {
			minLocal = v
		}
	}
	safe := minLocal - 1
	// Monotonically advance the published safe epoch.
	for {
		old := m.safe.Load()
		if safe <= old || m.safe.CompareAndSwap(old, safe) {
			break
		}
	}
	if m.drainCount.Load() == 0 {
		return
	}
	var ready []action
	m.drainMu.Lock()
	kept := m.drain[:0]
	for _, a := range m.drain {
		if a.epoch <= m.safe.Load() {
			ready = append(ready, a)
		} else {
			kept = append(kept, a)
		}
	}
	m.drain = kept
	m.drainMu.Unlock()
	if len(ready) > 0 {
		m.drainCount.Add(int32(-len(ready)))
		for _, a := range ready {
			a.fn()
		}
	}
}

// SpinUntil refreshes the guard and yields until cond returns true. It is
// used by threads that must wait for a global transition (e.g. a page frame
// becoming available) without stalling epoch progress.
func (g *Guard) SpinUntil(cond func() bool) {
	for i := 0; !cond(); i++ {
		g.Refresh()
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
}

// Registered reports how many guards are currently registered. Intended for
// tests and diagnostics.
func (m *Manager) Registered() int {
	n := 0
	for i := range m.table {
		if m.table[i].local.Load() != 0 {
			n++
		}
	}
	return n
}
