package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestAcquireRefreshRelease(t *testing.T) {
	m := New()
	if got := m.Current(); got != 1 {
		t.Fatalf("initial epoch = %d, want 1", got)
	}
	g := m.Acquire()
	if m.Registered() != 1 {
		t.Fatalf("registered = %d, want 1", m.Registered())
	}
	m.Bump()
	g.Refresh()
	if m.Safe() != m.Current()-1 {
		t.Fatalf("safe = %d, want %d", m.Safe(), m.Current()-1)
	}
	g.Release()
	if m.Registered() != 0 {
		t.Fatalf("registered after release = %d, want 0", m.Registered())
	}
}

func TestBumpEpochNoThreadsFiresImmediately(t *testing.T) {
	m := New()
	fired := false
	m.BumpEpoch(func() { fired = true })
	if !fired {
		t.Fatal("action did not fire with empty epoch table")
	}
}

func TestBumpEpochWaitsForAllThreads(t *testing.T) {
	m := New()
	g1 := m.Acquire()
	g2 := m.Acquire()
	var fired atomic.Bool
	m.BumpEpoch(func() { fired.Store(true) })
	if fired.Load() {
		t.Fatal("action fired before any thread refreshed")
	}
	g1.Refresh()
	if fired.Load() {
		t.Fatal("action fired before second thread refreshed")
	}
	g2.Refresh()
	if !fired.Load() {
		t.Fatal("action did not fire after all threads refreshed")
	}
	g1.Release()
	g2.Release()
}

func TestReleaseTriggersDrain(t *testing.T) {
	m := New()
	g1 := m.Acquire()
	g2 := m.Acquire()
	var fired atomic.Bool
	m.BumpEpoch(func() { fired.Store(true) })
	g1.Refresh()
	// g2 never refreshes; releasing it must unblock the action.
	g2.Release()
	if !fired.Load() {
		t.Fatal("action did not fire after blocking thread released")
	}
	g1.Release()
}

func TestActionFiresExactlyOnce(t *testing.T) {
	m := New()
	g := m.Acquire()
	var count atomic.Int32
	m.BumpEpoch(func() { count.Add(1) })
	for i := 0; i < 10; i++ {
		g.Refresh()
	}
	if got := count.Load(); got != 1 {
		t.Fatalf("action fired %d times, want 1", got)
	}
	g.Release()
}

func TestChainedBumps(t *testing.T) {
	m := New()
	g := m.Acquire()
	var order []int
	m.BumpEpoch(func() {
		order = append(order, 1)
		m.BumpEpoch(func() { order = append(order, 2) })
	})
	g.Refresh() // fires 1, registers 2
	g.Refresh() // fires 2
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
	g.Release()
}

func TestSafeInvariant(t *testing.T) {
	// Invariant from Sec. 3: forall T: E_s < E_T <= E.
	m := New()
	guards := make([]*Guard, 8)
	for i := range guards {
		guards[i] = m.Acquire()
	}
	for step := 0; step < 100; step++ {
		m.Bump()
		guards[step%len(guards)].Refresh()
		es, e := m.Safe(), m.Current()
		if es >= e {
			t.Fatalf("step %d: E_s=%d >= E=%d", step, es, e)
		}
		for i, g := range guards {
			et := m.table[g.slot].local.Load()
			if !(es < et && et <= e) {
				t.Fatalf("step %d guard %d: violated E_s(%d) < E_T(%d) <= E(%d)", step, i, es, et, e)
			}
		}
	}
	for _, g := range guards {
		g.Release()
	}
}

func TestConcurrentRefreshAndBump(t *testing.T) {
	m := New()
	const threads = 8
	const actions = 200
	var fired atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := m.Acquire()
			defer g.Release()
			for {
				select {
				case <-stop:
					return
				default:
					g.Refresh()
				}
			}
		}()
	}
	for i := 0; i < actions; i++ {
		m.BumpEpoch(func() { fired.Add(1) })
	}
	close(stop)
	wg.Wait()
	// All guards released; any remaining actions must have drained.
	m.computeSafeAndDrain()
	if got := fired.Load(); got != actions {
		t.Fatalf("fired %d actions, want %d", got, actions)
	}
}

func TestSpinUntil(t *testing.T) {
	m := New()
	g := m.Acquire()
	defer g.Release()
	var flag atomic.Bool
	go func() { flag.Store(true) }()
	g.SpinUntil(flag.Load)
	if !flag.Load() {
		t.Fatal("SpinUntil returned before condition held")
	}
}

func TestQuickSafeNeverExceedsCurrent(t *testing.T) {
	// Property: under any interleaving of bumps and refreshes, Safe < Current.
	f := func(ops []bool) bool {
		m := New()
		g := m.Acquire()
		defer g.Release()
		for _, bump := range ops {
			if bump {
				m.Bump()
			} else {
				g.Refresh()
			}
			if m.Safe() >= m.Current() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestGuardSlotReuse(t *testing.T) {
	m := New()
	g1 := m.Acquire()
	slot := g1.slot
	g1.Release()
	g2 := m.Acquire()
	if g2.slot != slot {
		t.Fatalf("freed slot %d not reused, got %d", slot, g2.slot)
	}
	g2.Release()
}
