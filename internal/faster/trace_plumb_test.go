package faster

import (
	"testing"

	"repro/internal/obs"
)

// TestCommittedTokenTracksCoveringCommit: after a commit completes, every
// session it covered reports that commit's token — the attribution source for
// request-trace durability-wait spans.
func TestCommittedTokenTracksCoveringCommit(t *testing.T) {
	store, err := Open(Config{Metrics: obs.NewNop()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sess := store.StartSession()
	defer sess.StopSession()

	if got := sess.CommittedToken(); got != "" {
		t.Fatalf("fresh session reports covering token %q", got)
	}
	if st := sess.Upsert([]byte("k"), []byte("v")); st != Ok {
		t.Fatalf("upsert: %v", st)
	}
	token, err := store.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if res, ok := store.TryResult(token); ok {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			break
		}
		sess.Refresh()
	}
	if got := sess.CommittedToken(); got != token {
		t.Fatalf("covering token = %q, want %q", got, token)
	}
	if sess.CommittedSerial() != sess.Serial() {
		t.Fatalf("committed serial %d != issued %d after covering commit",
			sess.CommittedSerial(), sess.Serial())
	}
}

// TestShardOfKeyMatchesRouting: ShardOfKey agrees with the store's shard
// count bounds and is stable per key.
func TestShardOfKeyMatchesRouting(t *testing.T) {
	store, err := Open(Config{Shards: 4, Metrics: obs.NewNop()})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	seen := map[int]bool{}
	for i := 0; i < 256; i++ {
		key := []byte{byte(i), byte(i >> 4), 'k'}
		sh := store.ShardOfKey(key)
		if sh < 0 || sh >= store.NumShards() {
			t.Fatalf("ShardOfKey(%v) = %d out of range", key, sh)
		}
		if again := store.ShardOfKey(key); again != sh {
			t.Fatalf("ShardOfKey not stable: %d then %d", sh, again)
		}
		seen[sh] = true
	}
	if len(seen) < 2 {
		t.Fatalf("256 keys landed on %d shard(s); routing looks degenerate", len(seen))
	}
}
