package faster

import (
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
)

// Instant-restore torture: crash the store AGAIN while it is still warming up
// — mid-lazy-replay (on-demand warms in flight, some post-prefix records
// already invalidated on the device) and mid-sweep — and require every such
// image to converge, under both full replay and instant restore, to the
// identical CPR prefix. The warm-up mutates the device (invalidation of v+1
// records is eager), so these images are genuinely different from the
// original crash image; convergence proves the mutation is idempotent and
// prefix-preserving. Counter determinism is part of the contract: two instant
// recoveries of the same image must report exactly the same suffix, replayed
// and invalidated record counts.

func TestInstantRestoreTortureCrashMidWarm(t *testing.T) {
	for _, seed := range []uint64{3, 71} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			instantRestoreTorture(t, seed)
		})
	}
}

// restoreCounters is the deterministic part of a finished restore's stats.
type restoreCounters struct {
	suffix, replayed, invalidated uint64
}

// recoverInstantWarm recovers an image in instant mode, waits for full warm,
// and returns the store plus its deterministic counters.
func recoverInstantWarm(t *testing.T, label string, dev *storage.MemDevice,
	ckpts *storage.MemCheckpointStore) (*Store, restoreCounters) {
	t.Helper()
	r, report, err := RecoverWithReport(Config{IndexBuckets: 1 << 8, PageBits: 13,
		MemPages: 8, Device: dev, Checkpoints: ckpts, InstantRestore: true})
	if err != nil {
		t.Fatalf("%s: instant recovery: %v", label, err)
	}
	if !report.Instant {
		t.Fatalf("%s: recovery not flagged instant", label)
	}
	if err := r.WaitRestored(); err != nil {
		t.Fatalf("%s: WaitRestored: %v", label, err)
	}
	st := r.RestoreStatus()
	if st == nil || st.Restoring || len(st.Shards) != 1 {
		t.Fatalf("%s: RestoreStatus = %+v", label, st)
	}
	sh := st.Shards[0]
	if sh.ReplayedRecords != sh.SuffixRecords || sh.ColdBuckets != 0 {
		t.Fatalf("%s: warm incomplete: %+v", label, sh)
	}
	return r, restoreCounters{sh.SuffixRecords, sh.ReplayedRecords, sh.InvalidatedRecords}
}

func instantRestoreTorture(t *testing.T, seed uint64) {
	// Phase 1: a crash image whose fuzzy window is live — the workload keeps
	// writing while two commits complete, so the recovered (log-only) commit
	// has both a real suffix and durable post-prefix (v+1) records to
	// invalidate. The crash instant is mid-workload right after the commit.
	memDev := storage.NewMemDevice()
	memCk := storage.NewMemCheckpointStore()
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 8,
		Device: memDev, Checkpoints: memCk}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, stop := tortureWorkload(t, s)
	for c, withIndex := range []bool{true, false} {
		tok, err := s.Commit(CommitOptions{WithIndex: withIndex})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if res, ok := s.TryResult(tok); ok {
				if res.Err != nil {
					t.Fatalf("commit %d: %v", c, res.Err)
				}
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	time.Sleep(time.Duration(1+seed%4) * time.Millisecond)
	baseDev, baseCk := memDev.Clone(), memCk.Clone()
	stop()
	s.Close()

	// Phase 2: instant-restore the crash image and crash it AGAIN mid-warm.
	// Clones are taken while the restore goroutine is live, so they capture
	// partially-applied invalidations and a partially-warmed index's device
	// state — the images a real kill mid-lazy-replay / mid-sweep leaves.
	dev2, ck2 := baseDev.Clone(), baseCk.Clone()
	r, report, err := RecoverWithReport(Config{IndexBuckets: 1 << 8, PageBits: 13,
		MemPages: 8, Device: dev2, Checkpoints: ck2, InstantRestore: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Instant {
		t.Fatal("phase-2 recovery not flagged instant")
	}
	// Mid-lazy-replay: a few on-demand warms driven by real reads, then crash.
	sess := r.StartSession()
	var kb [8]byte
	for k := uint64(0); k < 8; k++ {
		binary.LittleEndian.PutUint64(kb[:], 0<<32|k)
		if _, st := sess.Read(kb[:], func([]byte, Status) {}); st == Pending {
			sess.CompletePending(true)
		}
	}
	midLazyDev, midLazyCk := dev2.Clone(), ck2.Clone()
	// Mid-sweep: wait for the sweeper to have warmed at least one bucket (or
	// for the restore to finish — on a fast machine the image then simply
	// degenerates to "after warm-up", which must converge all the same).
	for {
		st := r.RestoreStatus()
		if st == nil || !st.Restoring || st.Shards[0].SweepWarms > 0 {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}
	midSweepDev, midSweepCk := dev2.Clone(), ck2.Clone()
	if err := r.WaitRestored(); err != nil {
		t.Fatal(err)
	}
	assertPrefix(t, "phase2-serving", r, ids)
	sess.StopSession()
	r.Close()

	// Phase 3: every crash image — including the pristine one — must converge
	// to the identical store image under full replay and instant restore.
	images := []struct {
		label string
		dev   *storage.MemDevice
		ckpts *storage.MemCheckpointStore
	}{
		{"base", baseDev, baseCk},
		{"mid-lazy-replay", midLazyDev, midLazyCk},
		{"mid-sweep", midSweepDev, midSweepCk},
	}
	for _, img := range images {
		full, freport, err := RecoverWithReport(Config{IndexBuckets: 1 << 8,
			PageBits: 13, MemPages: 8,
			Device: img.dev.Clone(), Checkpoints: img.ckpts.Clone()})
		if err != nil {
			t.Fatalf("%s: full recovery: %v", img.label, err)
		}
		inst, icounters := recoverInstantWarm(t, img.label,
			img.dev.Clone(), img.ckpts.Clone())

		if ir := inst.RecoveryReport(); ir == nil || ir.Token != freport.Token {
			t.Fatalf("%s: modes recovered different commits", img.label)
		}
		assertPrefix(t, img.label+"/full", full, ids)
		assertPrefix(t, img.label+"/instant", inst, ids)
		for i := 0; i < tortureSessions; i++ {
			fs, fpoint := full.ContinueSession(ids[i])
			is, ipoint := inst.ContinueSession(ids[i])
			if fpoint != ipoint {
				t.Fatalf("%s: session %d point diverges: full %d, instant %d",
					img.label, i, fpoint, ipoint)
			}
			fs.StopSession()
			is.StopSession()
		}
		full.Close()
		inst.Close()

		// Counter determinism: a second instant recovery of the same image
		// must report exactly the same record accounting.
		inst2, icounters2 := recoverInstantWarm(t, img.label+"/again",
			img.dev.Clone(), img.ckpts.Clone())
		inst2.Close()
		if icounters != icounters2 {
			t.Fatalf("%s: restore counters not deterministic: %+v vs %+v",
				img.label, icounters, icounters2)
		}
	}
}
