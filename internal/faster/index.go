// Package faster implements the FASTER concurrent hash key-value store of
// Secs. 5–6 of the CPR paper: a latch-free hash index over a HybridLog record
// store, with session-based operation serial numbers and CPR-based group
// commit (5-phase state machine: rest → prepare → in-progress → wait-pending
// → wait-flush).
package faster

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Hash-index entry layout (one 64-bit word):
//
//	bits  0..47  logical HybridLog address of the chain's tail record
//	bits 48..61  tag (further hash bits distinguishing keys in a bucket)
//	bit  62      tentative (two-phase latch-free insertion, as in FASTER)
//	bit  63      unused
//
// A zero entry is free. Keys sharing (bucket, tag) share one entry; their
// records form a reverse linked list through record.Prev.
const (
	entryAddrMask  = (uint64(1) << 48) - 1
	entryTagShift  = 48
	entryTagBits   = 14
	entryTagMask   = (uint64(1)<<entryTagBits - 1) << entryTagShift
	entryTentative = uint64(1) << 62
)

const entriesPerBucket = 7

// bucket meta word layout:
//
//	bits  0..47  overflow bucket index + 1 into the overflow slab (0 = none)
//	bits 48..62  shared-latch count (CPR prepare-phase latches, Sec. 6.2.1)
//	bit  63      exclusive latch
const (
	metaOverflowMask = (uint64(1) << 48) - 1
	metaSharedShift  = 48
	metaSharedUnit   = uint64(1) << metaSharedShift
	metaSharedMask   = (uint64(1)<<15 - 1) << metaSharedShift
	metaExclusive    = uint64(1) << 63
)

type bucket struct {
	entries [entriesPerBucket]atomic.Uint64
	meta    atomic.Uint64
}

// Overflow buckets live in lazily allocated fixed-size chunks so the slab
// can grow without moving existing buckets (readers hold pointers into it).
const (
	overflowChunkBits = 12
	overflowChunkSize = 1 << overflowChunkBits
	overflowMaxChunks = 1 << 12
)

type overflowChunk [overflowChunkSize]bucket

// index is the FASTER hash index: a power-of-two main bucket array plus a
// growable overflow slab. All slot updates are single-word
// compare-and-swaps, so the index is always physically consistent and can be
// checkpointed fuzzily (Sec. 6.3).
type index struct {
	buckets []bucket
	mask    uint64

	overflowNext   atomic.Uint64 // next free overflow slot + 1
	overflowChunks [overflowMaxChunks]atomic.Pointer[overflowChunk]
	growMu         sync.Mutex
}

func newIndex(nBuckets int, _ int) (*index, error) {
	if nBuckets <= 0 || nBuckets&(nBuckets-1) != 0 {
		return nil, fmt.Errorf("faster: index buckets %d must be a power of two", nBuckets)
	}
	idx := &index{
		buckets: make([]bucket, nBuckets),
		mask:    uint64(nBuckets - 1),
	}
	idx.overflowNext.Store(1)
	return idx, nil
}

// overflowBucket returns the overflow bucket with 1-based id n, allocating
// its chunk if necessary.
func (idx *index) overflowBucket(n uint64) *bucket {
	i := n - 1
	ci, off := i>>overflowChunkBits, i&(overflowChunkSize-1)
	if ci >= overflowMaxChunks {
		panic("faster: index overflow slab exhausted; raise IndexBuckets")
	}
	chunk := idx.overflowChunks[ci].Load()
	if chunk == nil {
		idx.growMu.Lock()
		if chunk = idx.overflowChunks[ci].Load(); chunk == nil {
			chunk = new(overflowChunk)
			idx.overflowChunks[ci].Store(chunk)
		}
		idx.growMu.Unlock()
	}
	return &chunk[off]
}

func (idx *index) mainBucket(hash uint64) *bucket {
	return &idx.buckets[hash&idx.mask]
}

func tagOf(hash uint64) uint64 {
	t := hash >> (64 - entryTagBits) << entryTagShift & entryTagMask
	if t == 0 {
		// A zero tag with a zero address would make a committed entry
		// indistinguishable from a free slot; fold tag 0 into tag 1.
		t = 1 << entryTagShift
	}
	return t
}

func entryAddr(e uint64) uint64 { return e & entryAddrMask }

// findSlot walks the bucket chain looking for a non-tentative entry with the
// given tag. It returns the slot word or nil.
func (idx *index) findSlot(hash uint64) *atomic.Uint64 {
	tag := tagOf(hash)
	b := idx.mainBucket(hash)
	for {
		for i := range b.entries {
			e := b.entries[i].Load()
			if e != 0 && e&entryTagMask == tag && e&entryTentative == 0 {
				return &b.entries[i]
			}
		}
		next := b.meta.Load() & metaOverflowMask
		if next == 0 {
			return nil
		}
		b = idx.overflowBucket(next)
	}
}

// findOrCreateSlot returns the slot for hash, inserting a fresh (tentative →
// committed) entry with address 0 if none exists. The two-phase tentative
// protocol prevents two threads from installing duplicate tags concurrently.
func (idx *index) findOrCreateSlot(hash uint64) *atomic.Uint64 {
	tag := tagOf(hash)
	for {
		if s := idx.findSlot(hash); s != nil {
			return s
		}
		// Claim a free slot in the chain, extending it if necessary.
		slot := idx.claimFreeSlot(hash, tag)
		if slot == nil {
			continue // chain changed under us; rescan
		}
		// Two-phase: entry is tentative; check for a duplicate tag inserted
		// concurrently elsewhere in the chain.
		if idx.duplicateTag(hash, tag, slot) {
			slot.Store(0) // back off; retry the scan
			continue
		}
		// Commit the entry.
		for {
			e := slot.Load()
			if e&entryTentative == 0 {
				break
			}
			if slot.CompareAndSwap(e, e&^entryTentative) {
				break
			}
		}
		return slot
	}
}

func (idx *index) claimFreeSlot(hash, tag uint64) *atomic.Uint64 {
	b := idx.mainBucket(hash)
	for {
		for i := range b.entries {
			if b.entries[i].Load() == 0 &&
				b.entries[i].CompareAndSwap(0, tag|entryTentative) {
				return &b.entries[i]
			}
		}
		meta := b.meta.Load()
		next := meta & metaOverflowMask
		if next == 0 {
			n := idx.overflowNext.Add(1) - 1
			idx.overflowBucket(n) // ensure the chunk exists before linking
			if !b.meta.CompareAndSwap(meta, meta&^metaOverflowMask|n) {
				// Lost the race; give back nothing (slab slot n leaks, which
				// is bounded by thread count) and follow the installed link.
				meta = b.meta.Load()
				next = meta & metaOverflowMask
				if next == 0 {
					continue
				}
			} else {
				next = n
			}
		}
		b = idx.overflowBucket(next)
	}
}

// duplicateTag reports whether another non-tentative or tentative entry with
// the same tag exists in the chain besides self.
func (idx *index) duplicateTag(hash, tag uint64, self *atomic.Uint64) bool {
	b := idx.mainBucket(hash)
	for {
		for i := range b.entries {
			p := &b.entries[i]
			if p == self {
				continue
			}
			if e := p.Load(); e != 0 && e&entryTagMask == tag {
				return true
			}
		}
		next := b.meta.Load() & metaOverflowMask
		if next == 0 {
			return false
		}
		b = idx.overflowBucket(next)
	}
}

// --- CPR bucket latches (fine-grained version transfer, Sec. 6.2) ---

// trySharedLatch increments the main bucket's shared-latch count unless the
// exclusive latch is held.
func (idx *index) trySharedLatch(hash uint64) bool {
	b := idx.mainBucket(hash)
	for {
		m := b.meta.Load()
		if m&metaExclusive != 0 {
			return false
		}
		if m&metaSharedMask == metaSharedMask {
			return false // counter saturated (pathological)
		}
		if b.meta.CompareAndSwap(m, m+metaSharedUnit) {
			return true
		}
	}
}

// releaseSharedLatch decrements the shared-latch count.
func (idx *index) releaseSharedLatch(hash uint64) {
	b := idx.mainBucket(hash)
	for {
		m := b.meta.Load()
		if m&metaSharedMask == 0 {
			panic("faster: releaseSharedLatch without holder")
		}
		if b.meta.CompareAndSwap(m, m-metaSharedUnit) {
			return
		}
	}
}

// tryExclusiveLatch succeeds only when no shared or exclusive latch is held.
func (idx *index) tryExclusiveLatch(hash uint64) bool {
	b := idx.mainBucket(hash)
	m := b.meta.Load()
	if m&(metaSharedMask|metaExclusive) != 0 {
		return false
	}
	return b.meta.CompareAndSwap(m, m|metaExclusive)
}

// releaseExclusiveLatch drops the exclusive latch.
func (idx *index) releaseExclusiveLatch(hash uint64) {
	b := idx.mainBucket(hash)
	for {
		m := b.meta.Load()
		if b.meta.CompareAndSwap(m, m&^metaExclusive) {
			return
		}
	}
}

// sharedCount returns the bucket's current shared-latch count (wait-pending
// phase check, Sec. 6.2.3).
func (idx *index) sharedCount(hash uint64) int {
	return int(idx.mainBucket(hash).meta.Load() & metaSharedMask >> metaSharedShift)
}

// --- fuzzy checkpoint (Sec. 6.3) ---

// writeTo serializes the index with atomic word loads. Latch bits are
// masked out; tentative entries are dropped (their inserters will redo).
func (idx *index) writeTo(w io.Writer) error {
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(idx.buckets)))
	binary.LittleEndian.PutUint64(hdr[8:], 0) // reserved (was slab capacity)
	binary.LittleEndian.PutUint64(hdr[16:], idx.overflowNext.Load())
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var word [8]byte
	dump := func(bs []bucket) error {
		for i := range bs {
			b := &bs[i]
			for j := range b.entries {
				e := b.entries[j].Load()
				if e&entryTentative != 0 {
					e = 0
				}
				binary.LittleEndian.PutUint64(word[:], e)
				if _, err := w.Write(word[:]); err != nil {
					return err
				}
			}
			m := b.meta.Load() & metaOverflowMask // strip latches
			binary.LittleEndian.PutUint64(word[:], m)
			if _, err := w.Write(word[:]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := dump(idx.buckets); err != nil {
		return err
	}
	used := idx.overflowNext.Load() - 1
	for n := uint64(1); n <= used; n++ {
		if err := dumpOne(idx.overflowBucket(n), w); err != nil {
			return err
		}
	}
	return nil
}

// dumpOne serializes a single bucket with the same masking rules as writeTo.
func dumpOne(b *bucket, w io.Writer) error {
	var word [8]byte
	for j := range b.entries {
		e := b.entries[j].Load()
		if e&entryTentative != 0 {
			e = 0
		}
		binary.LittleEndian.PutUint64(word[:], e)
		if _, err := w.Write(word[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint64(word[:], b.meta.Load()&metaOverflowMask)
	_, err := w.Write(word[:])
	return err
}

// readIndex deserializes an index checkpoint.
func readIndex(r io.Reader) (*index, error) {
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("faster: index checkpoint header: %w", err)
	}
	nBuckets := binary.LittleEndian.Uint64(hdr[0:])
	next := binary.LittleEndian.Uint64(hdr[16:])
	idx, err := newIndex(int(nBuckets), 0)
	if err != nil {
		return nil, err
	}
	idx.overflowNext.Store(next)
	var word [8]byte
	load := func(bs []bucket) error {
		for i := range bs {
			b := &bs[i]
			for j := range b.entries {
				if _, err := io.ReadFull(r, word[:]); err != nil {
					return err
				}
				b.entries[j].Store(binary.LittleEndian.Uint64(word[:]))
			}
			if _, err := io.ReadFull(r, word[:]); err != nil {
				return err
			}
			b.meta.Store(binary.LittleEndian.Uint64(word[:]))
		}
		return nil
	}
	if err := load(idx.buckets); err != nil {
		return nil, fmt.Errorf("faster: index checkpoint buckets: %w", err)
	}
	for n := uint64(1); n < next; n++ {
		b := idx.overflowBucket(n)
		for j := range b.entries {
			if _, err := io.ReadFull(r, word[:]); err != nil {
				return nil, fmt.Errorf("faster: index checkpoint overflow: %w", err)
			}
			b.entries[j].Store(binary.LittleEndian.Uint64(word[:]))
		}
		if _, err := io.ReadFull(r, word[:]); err != nil {
			return nil, fmt.Errorf("faster: index checkpoint overflow: %w", err)
		}
		b.meta.Store(binary.LittleEndian.Uint64(word[:]))
	}
	return idx, nil
}
