package faster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/hlog"
	"repro/internal/obs"
)

// ErrRestoring is returned by Commit and CompactLog while an instant restore
// is still warming the store: a checkpoint or compaction taken over cold
// buckets would capture an index that misses their log-suffix records.
// Operations are never refused — they warm their bucket and proceed — and
// commits resume as soon as WaitRestored returns.
var ErrRestoring = errors.New("faster: instant restore in progress; commits and compaction resume once the store is warm")

// errRestoreAborted marks a restore cancelled by Store.Close.
var errRestoreAborted = errors.New("faster: instant restore aborted: store closed")

// RestoreShardStatus is one shard's instant-restore progress (a point-in-time
// snapshot; final values persist after the shard is fully warm).
type RestoreShardStatus struct {
	Shard    int  `json:"shard"`
	Analyzed bool `json:"analyzed"`
	// Failed is the restore failure, if any ("" while healthy). A failed
	// restore cannot fall back to an older commit — the store was already
	// serving this one — so operations return Error from then on.
	Failed       string `json:"failed,omitempty"`
	TotalBuckets uint64 `json:"total_buckets"`
	WarmBuckets  uint64 `json:"warm_buckets"`
	ColdBuckets  uint64 `json:"cold_buckets"`
	// SuffixRecords is the committed-version record count the analysis pass
	// found in the log suffix; PendingRecords of them are not yet re-linked.
	SuffixRecords  uint64 `json:"suffix_records"`
	PendingRecords uint64 `json:"pending_records"`
	// ReplayedRecords counts suffix records re-linked into warm buckets;
	// InvalidatedRecords counts post-prefix (v+1) records the analysis pass
	// invalidated on the device.
	ReplayedRecords    uint64 `json:"replayed_records"`
	InvalidatedRecords uint64 `json:"invalidated_records"`
	// OnDemandWarms/SweepWarms split warmed buckets by who warmed them;
	// BlockedOps counts operations that had to wait for a cold bucket.
	OnDemandWarms uint64 `json:"ondemand_warms"`
	SweepWarms    uint64 `json:"sweep_warms"`
	BlockedOps    uint64 `json:"blocked_ops"`
	AnalysisNanos int64  `json:"analysis_ns"`
	// TimeToWarmNanos is recovery-return to fully-warm (0 while restoring).
	TimeToWarmNanos int64 `json:"time_to_warm_ns,omitempty"`
}

// RestoreStatus reports instant-restore progress across shards. Nil from
// Store.RestoreStatus means the store was not instant-restored (opened fresh,
// or recovered with a full replay).
type RestoreStatus struct {
	Mode      string               `json:"mode"` // always "instant"
	Restoring bool                 `json:"restoring"`
	Shards    []RestoreShardStatus `json:"shards"`
}

// WarmBuckets and ColdBuckets aggregate the per-shard counts.
func (rs *RestoreStatus) WarmBuckets() (n uint64) {
	for i := range rs.Shards {
		n += rs.Shards[i].WarmBuckets
	}
	return n
}

// ColdBuckets aggregates the per-shard cold-bucket counts.
func (rs *RestoreStatus) ColdBuckets() (n uint64) {
	for i := range rs.Shards {
		n += rs.Shards[i].ColdBuckets
	}
	return n
}

// restoreState is one shard's instant-restore machinery. Recovery brings the
// shard up on the recovered commit's fuzzy index without scanning the log
// suffix; every hash bucket starts cold. A background analysis pass reads the
// suffix once, page-granular: committed records are filed per-bucket in a
// directory, post-prefix (v+1) records are invalidated and their slots
// unwound exactly as a full replay would (the order is equivalent — see
// DESIGN "Instant restore"). A bucket warms by replaying its directory entry
// in log order; operations on a cold bucket block until their bucket is warm
// (a bounded one-time cost), and a sweeper warms the rest, densest first.
type restoreState struct {
	sh             *shard
	token          string // recovered commit token (flight correlation)
	version        uint32 // recovered commit version v
	scanStart, end uint64

	// warmBits is the lock-free fast path: one bit per main hash bucket,
	// set only after the bucket's suffix records are fully re-linked.
	warmBits []atomic.Uint64
	nBuckets uint64

	mu   sync.Mutex
	cond *sync.Cond
	// analyzed flips once the analysis pass has examined the whole suffix;
	// no bucket can be proven warm before that, so ensureWarm waits on it.
	analyzed bool
	failed   error
	// pending is the analysis directory: bucket -> suffix record addresses
	// in log order. warming guards per-bucket exclusivity between on-demand
	// warms and the sweeper.
	pending map[uint32][]uint64
	warming map[uint32]bool
	// sweepOrder is the bucket warm priority: densest directory entries
	// first, so background progress re-links the most records earliest.
	sweepOrder []uint32
	sweepDone  bool

	aborted  atomic.Bool
	started  bool
	finished chan struct{}

	startNanos      int64
	analysisNanos   atomic.Int64
	timeToWarmNanos atomic.Int64
	warmCount       atomic.Uint64
	pendingRecords  atomic.Int64
	suffixRecords   atomic.Uint64
	invalidated     atomic.Uint64
	replayed        atomic.Uint64
	ondemandWarms   atomic.Uint64
	sweepWarms      atomic.Uint64
	blockedOps      atomic.Uint64
}

// newRestoreState prepares (but does not start) a shard's instant restore.
// Called from recoverShard after the index is loaded; the analysis goroutine
// starts from finishRecovery once the whole candidate commit is accepted.
func newRestoreState(sh *shard, token string, version uint32, scanStart, end uint64) *restoreState {
	n := uint64(len(sh.index.buckets))
	rs := &restoreState{
		sh:        sh,
		token:     token,
		version:   version,
		scanStart: scanStart,
		end:       end,
		warmBits:  make([]atomic.Uint64, (n+63)/64),
		nBuckets:  n,
		pending:   make(map[uint32][]uint64),
		warming:   make(map[uint32]bool),
		finished:  make(chan struct{}),
	}
	rs.cond = sync.NewCond(&rs.mu)
	rs.pendingRecords.Store(0)
	return rs
}

// start registers the shard's restore gauges and launches the analysis +
// sweep goroutine. Only called for shards of an accepted commit candidate
// (rejected candidates' shards are closed without ever starting).
func (rs *restoreState) start() {
	sh := rs.sh
	rs.startNanos = nowNanos()
	rs.started = true
	m := sh.cfg.Metrics
	m.GaugeFunc("faster_restore_active", func() int64 {
		if sh.restore.Load() != nil {
			return 1
		}
		return 0
	})
	m.GaugeFunc("faster_restore_cold_buckets", func() int64 {
		if st := sh.restoreSnapshot(); st != nil {
			return int64(st.ColdBuckets)
		}
		return 0
	})
	m.SetHelp("faster_restore_cold_buckets",
		"Hash buckets still cold during instant restore; cold buckets with no warms progressing is the health engine's restore-sweeper-stalled signal.")
	m.GaugeFunc("faster_restore_pending_records", func() int64 {
		if st := sh.restoreSnapshot(); st != nil {
			return int64(st.PendingRecords)
		}
		return 0
	})
	m.GaugeFunc("faster_restore_time_to_warm_ns", func() int64 {
		if st := sh.restoreSnapshot(); st != nil {
			return st.TimeToWarmNanos
		}
		return 0
	})
	go rs.run()
}

// run is the restore goroutine: analyze the suffix once, then sweep the
// remaining cold buckets warm.
func (rs *restoreState) run() {
	defer close(rs.finished)
	sh := rs.sh

	err := rs.analyze()
	if err == nil {
		// Clamp fuzzy index entries at/past the recovered end only now: the
		// analysis pass evaluated its v+1 unwind conditions against the
		// unclamped index, exactly as the interleaved full replay does.
		sh.clampIndex(rs.end)
	}

	rs.mu.Lock()
	if err != nil {
		if rs.failed == nil {
			rs.failed = err
		}
	} else {
		rs.analyzed = true
		rs.sweepOrder = make([]uint32, 0, len(rs.pending))
		for b := range rs.pending {
			rs.sweepOrder = append(rs.sweepOrder, b)
		}
		sort.Slice(rs.sweepOrder, func(i, j int) bool {
			bi, bj := rs.sweepOrder[i], rs.sweepOrder[j]
			if li, lj := len(rs.pending[bi]), len(rs.pending[bj]); li != lj {
				return li > lj
			}
			return bi < bj
		})
	}
	failed := rs.failed
	rs.cond.Broadcast()
	rs.mu.Unlock()
	if failed != nil {
		// The restore cannot fall back (the store is already serving this
		// commit); leave the pointer set so operations surface the failure.
		sh.flight.Emit(obs.FlightSweep, sh.id, uint64(rs.version), rs.token, "", rs.coldRemaining(), uint64(rs.pendingRecords.Load()))
		return
	}
	sh.flight.Emit(obs.FlightSweep, sh.id, uint64(rs.version), rs.token, "", rs.coldRemaining(), uint64(rs.pendingRecords.Load()))

	rs.sweep()

	rs.mu.Lock()
	failed = rs.failed
	if failed == nil {
		rs.sweepDone = true
		rs.timeToWarmNanos.Store(nowNanos() - rs.startNanos)
	}
	rs.cond.Broadcast()
	rs.mu.Unlock()
	if failed != nil {
		return
	}
	// Publish the final snapshot before clearing the pointer so restore
	// status never has a gap, then detach: the operation fast path returns
	// to a single nil pointer check.
	sh.restoreStats.Store(rs.snapshot())
	sh.restore.Store(nil)
	sh.flight.Emit(obs.FlightSweep, sh.id, uint64(rs.version), rs.token, "", 0, 0)
}

// analyze reads the log suffix [scanStart, end) once, page-granular: records
// of version <= v are filed in the per-bucket directory (in log order);
// records of version v+1 are invalidated on the device and their index slots
// unwound, exactly as replayLog does. Invalidation must happen now, not
// lazily: a commit taken after restore, followed by a crash, must not find
// resurrectable v+1 records on the device.
func (rs *restoreState) analyze() error {
	sh := rs.sh
	t0 := nowNanos()
	var keyBuf []byte
	var replayErr error
	err := sh.log.ScanPages(rs.scanStart, rs.end, func(addr uint64, rec hlog.RecordRef) bool {
		if rs.aborted.Load() {
			replayErr = errRestoreAborted
			return false
		}
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		if !isFutureVersion(rec.Version(), rs.version) {
			b := uint32(h & sh.index.mask)
			rs.pending[b] = append(rs.pending[b], addr)
			rs.suffixRecords.Add(1)
			rs.pendingRecords.Add(1)
			return true
		}
		slot := sh.index.findOrCreateSlot(h)
		if err := sh.log.PersistInvalid(addr); err != nil {
			replayErr = fmt.Errorf("faster: restore invalidate %d: %w", addr, err)
			return false
		}
		rs.invalidated.Add(1)
		sh.metrics.restoreInvalidated.Inc()
		if entryAddr(slot.Load()) >= addr {
			prev := rec.Prev()
			if prev >= hlog.FirstAddress {
				slot.Store(tagOf(h) | prev)
			} else {
				slot.Store(0)
			}
		}
		return true
	})
	rs.analysisNanos.Store(nowNanos() - t0)
	if err != nil {
		return fmt.Errorf("faster: restore analysis: %w", err)
	}
	return replayErr
}

// isWarm reports the bucket's warm bit (lock-free).
func (rs *restoreState) isWarm(b uint32) bool {
	return rs.warmBits[b>>6].Load()&(1<<(b&63)) != 0
}

// ensureWarm is the operation gate: nil error means the key's bucket holds
// every committed suffix record and the operation may proceed. The fast path
// is one atomic bitmap load; the slow path blocks the calling session
// goroutine (never parks the op as Pending — same-session ordering must hold)
// until the bucket is warm.
func (rs *restoreState) ensureWarm(h uint64) error {
	b := uint32(h & rs.sh.index.mask)
	if rs.isWarm(b) {
		return nil
	}
	return rs.warmSlow(b)
}

// warmSlow warms bucket b on demand (or waits for whoever is warming it).
func (rs *restoreState) warmSlow(b uint32) error {
	rs.sh.metrics.restoreBlockedOps.Inc()
	rs.blockedOps.Add(1)
	rs.mu.Lock()
	for !rs.analyzed && rs.failed == nil {
		rs.cond.Wait()
	}
	for {
		if rs.failed != nil {
			err := rs.failed
			rs.mu.Unlock()
			return err
		}
		if rs.isWarm(b) {
			rs.mu.Unlock()
			return nil
		}
		if !rs.warming[b] {
			break
		}
		rs.cond.Wait()
	}
	addrs, ok := rs.pending[b]
	if !ok {
		// No suffix records route here: the recovered index entry is already
		// complete. Mark warm without leaving the lock.
		rs.markWarmLocked(b, 0, false)
		rs.mu.Unlock()
		rs.cond.Broadcast()
		return nil
	}
	rs.warming[b] = true
	rs.mu.Unlock()

	err := rs.replayBucket(addrs)

	rs.mu.Lock()
	delete(rs.warming, b)
	if err != nil {
		if rs.failed == nil {
			rs.failed = err
		}
		err = rs.failed
		rs.mu.Unlock()
		rs.cond.Broadcast()
		return err
	}
	rs.markWarmLocked(b, len(addrs), false)
	rs.mu.Unlock()
	rs.cond.Broadcast()
	return nil
}

// replayBucket re-links one bucket's suffix records in log order. Called
// without the mutex held; per-bucket exclusivity comes from the warming map,
// and no operation can run inside this bucket yet (they are all blocked in
// ensureWarm), so the plain slot stores cannot race a CAS.
func (rs *restoreState) replayBucket(addrs []uint64) error {
	sh := rs.sh
	var keyBuf []byte
	for _, addr := range addrs {
		rec, err := sh.log.ReadRecordCopy(addr)
		if err != nil {
			return fmt.Errorf("faster: restore warm read %d: %w", addr, err)
		}
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		slot := sh.index.findOrCreateSlot(h)
		slot.Store(tagOf(h) | addr)
	}
	return nil
}

// markWarmLocked publishes bucket b as warm: directory entry dropped, warm
// bit set, and the warm-bucket flight event emitted — all before any blocked
// operation can resume, which is the recorder-visible proof that no request
// observed pre-prefix state. Caller holds rs.mu.
func (rs *restoreState) markWarmLocked(b uint32, records int, bySweep bool) {
	delete(rs.pending, b)
	// Emit BEFORE setting the warm bit: a lock-free fast-path reader that
	// observes the bit acquires everything sequenced before the bit store, so
	// the event is always in the recorder by the time any operation proceeds.
	rs.sh.flight.Emit(obs.FlightWarmBucket, rs.sh.id, uint64(rs.version), rs.token, "",
		uint64(b), uint64(records))
	// All warm-bit writers hold rs.mu; readers are lock-free atomic loads.
	rs.warmBits[b>>6].Store(rs.warmBits[b>>6].Load() | 1<<(b&63))
	rs.warmCount.Add(1)
	if records > 0 {
		rs.pendingRecords.Add(int64(-records))
		rs.replayed.Add(uint64(records))
		rs.sh.metrics.restoreReplayed.Add(uint64(records))
	}
	if bySweep {
		rs.sweepWarms.Add(1)
		rs.sh.metrics.restoreSweepWarms.Inc()
	} else {
		rs.ondemandWarms.Add(1)
		rs.sh.metrics.restoreOndemandWarms.Inc()
	}
}

// sweepFlightEvery paces FlightSweep progress events (every N warmed buckets).
const sweepFlightEvery = 256

// sweep warms every remaining cold bucket, densest directory entries first,
// then marks the untouched (record-free) buckets warm in bulk.
func (rs *restoreState) sweep() {
	sh := rs.sh
	sinceEmit := 0
	for _, b := range rs.sweepOrder {
		if rs.aborted.Load() {
			rs.mu.Lock()
			if rs.failed == nil {
				rs.failed = errRestoreAborted
			}
			rs.mu.Unlock()
			rs.cond.Broadcast()
			return
		}
		rs.mu.Lock()
		if rs.failed != nil {
			rs.mu.Unlock()
			return
		}
		if rs.isWarm(b) || rs.warming[b] {
			rs.mu.Unlock()
			continue
		}
		addrs, ok := rs.pending[b]
		if !ok {
			rs.markWarmLocked(b, 0, true)
			rs.mu.Unlock()
			rs.cond.Broadcast()
			continue
		}
		rs.warming[b] = true
		rs.mu.Unlock()

		err := rs.replayBucket(addrs)

		rs.mu.Lock()
		delete(rs.warming, b)
		if err != nil {
			if rs.failed == nil {
				rs.failed = err
			}
			rs.mu.Unlock()
			rs.cond.Broadcast()
			return
		}
		rs.markWarmLocked(b, len(addrs), true)
		rs.mu.Unlock()
		rs.cond.Broadcast()
		if sinceEmit++; sinceEmit >= sweepFlightEvery {
			sinceEmit = 0
			sh.flight.Emit(obs.FlightSweep, sh.id, uint64(rs.version), rs.token, "",
				rs.coldRemaining(), uint64(rs.pendingRecords.Load()))
		}
	}
	// Wait out any in-flight on-demand warms, then flip the record-free
	// remainder warm in bulk (they need no replay).
	rs.mu.Lock()
	for len(rs.warming) > 0 && rs.failed == nil {
		rs.cond.Wait()
	}
	if rs.failed == nil {
		// The record-free remainder has no suffix records to replay, so no
		// per-bucket events are owed — but emit the fully-warm sweep event
		// BEFORE flipping the bits, so any operation that proceeds because of
		// this flip is ordered after the recorder knows the shard is warm.
		sh.flight.Emit(obs.FlightSweep, sh.id, uint64(rs.version), rs.token, "", 0, 0)
		for i := range rs.warmBits {
			rs.warmBits[i].Store(^uint64(0))
		}
		rs.warmCount.Store(rs.nBuckets)
	}
	rs.mu.Unlock()
	rs.cond.Broadcast()
}

// coldRemaining is the not-yet-warm bucket count.
func (rs *restoreState) coldRemaining() uint64 {
	w := rs.warmCount.Load()
	if w >= rs.nBuckets {
		return 0
	}
	return rs.nBuckets - w
}

// abort cancels the restore (Store.Close). Blocked operations wake with an
// error; the goroutine exits at its next check or when the closing log fails
// its reads.
func (rs *restoreState) abort() {
	rs.aborted.Store(true)
	rs.mu.Lock()
	if rs.failed == nil && !rs.sweepDone {
		rs.failed = errRestoreAborted
	}
	rs.mu.Unlock()
	rs.cond.Broadcast()
}

// waitDone blocks until the restore completes (nil) or fails.
func (rs *restoreState) waitDone() error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for !rs.sweepDone && rs.failed == nil {
		rs.cond.Wait()
	}
	return rs.failed
}

// snapshot captures the shard's restore status.
func (rs *restoreState) snapshot() *RestoreShardStatus {
	rs.mu.Lock()
	st := &RestoreShardStatus{
		Shard:              rs.sh.id,
		Analyzed:           rs.analyzed,
		TotalBuckets:       rs.nBuckets,
		WarmBuckets:        rs.warmCount.Load(),
		SuffixRecords:      rs.suffixRecords.Load(),
		ReplayedRecords:    rs.replayed.Load(),
		InvalidatedRecords: rs.invalidated.Load(),
		OnDemandWarms:      rs.ondemandWarms.Load(),
		SweepWarms:         rs.sweepWarms.Load(),
		BlockedOps:         rs.blockedOps.Load(),
		AnalysisNanos:      rs.analysisNanos.Load(),
		TimeToWarmNanos:    rs.timeToWarmNanos.Load(),
	}
	if rs.failed != nil {
		st.Failed = rs.failed.Error()
	}
	rs.mu.Unlock()
	st.ColdBuckets = st.TotalBuckets - st.WarmBuckets
	if p := rs.pendingRecords.Load(); p > 0 {
		st.PendingRecords = uint64(p)
	}
	return st
}

// restoreSnapshot returns the shard's current restore status: the live one
// while restoring, the final one after, nil when the shard never
// instant-restored.
func (sh *shard) restoreSnapshot() *RestoreShardStatus {
	if rs := sh.restore.Load(); rs != nil {
		return rs.snapshot()
	}
	return sh.restoreStats.Load()
}

// Restoring reports whether an instant restore is still warming any shard.
func (s *Store) Restoring() bool {
	for _, sh := range s.shards {
		if sh.restore.Load() != nil {
			return true
		}
	}
	return false
}

// RestoreStatus reports instant-restore progress. Nil when the store was not
// instant-restored; after the store is fully warm it keeps returning the
// final per-shard statistics (time-to-warm, warm split) with Restoring=false.
func (s *Store) RestoreStatus() *RestoreStatus {
	out := &RestoreStatus{Mode: "instant"}
	any := false
	for _, sh := range s.shards {
		if rs := sh.restore.Load(); rs != nil {
			any = true
			out.Restoring = true
			out.Shards = append(out.Shards, *rs.snapshot())
			continue
		}
		if st := sh.restoreStats.Load(); st != nil {
			any = true
			out.Shards = append(out.Shards, *st)
		}
	}
	if !any {
		return nil
	}
	return out
}

// WaitRestored blocks until every shard of an instant restore is fully warm,
// returning the first shard's failure if the restore cannot complete. It
// returns nil immediately for stores that were not instant-restored.
func (s *Store) WaitRestored() error {
	for _, sh := range s.shards {
		if rs := sh.restore.Load(); rs != nil {
			if err := rs.waitDone(); err != nil {
				return err
			}
		}
	}
	return nil
}
