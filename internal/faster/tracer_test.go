package faster

import (
	"fmt"
	"testing"

	"repro/internal/obs"
)

// wantTransitions is the full CPR state machine walk every successful commit
// must record, in order.
var wantTransitions = [][2]string{
	{"rest", "prepare"},
	{"prepare", "in-progress"},
	{"in-progress", "wait-pending"},
	{"wait-pending", "wait-flush"},
	{"wait-flush", "rest"},
}

// TestCheckpointPhaseTimeline drives one fold-over and one snapshot commit on
// a live store and asserts the tracer recorded every state-machine transition
// exactly once, in order, with non-decreasing timestamps, plus the session's
// thread-crossing events.
func TestCheckpointPhaseTimeline(t *testing.T) {
	for _, kind := range []CommitKind{FoldOver, Snapshot} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			s, err := Open(Config{IndexBuckets: 1 << 10})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			sess := s.StartSession()
			defer sess.StopSession()
			for i := 0; i < 100; i++ {
				k := []byte(fmt.Sprintf("key-%03d", i))
				if st := sess.Upsert(k, []byte("v")); st != Ok {
					t.Fatalf("upsert: %v", st)
				}
			}

			token, err := s.Commit(CommitOptions{WithIndex: true, Kind: &kind})
			if err != nil {
				t.Fatal(err)
			}
			for {
				res, done := s.TryResult(token)
				if done {
					if res.Err != nil {
						t.Fatal(res.Err)
					}
					break
				}
				sess.Refresh()
			}

			events, dropped := s.Tracer().Events()
			if dropped != 0 {
				t.Fatalf("tracer dropped %d events", dropped)
			}

			// Timestamps never decrease across the whole trace.
			for i := 1; i < len(events); i++ {
				if events[i].AtNanos < events[i-1].AtNanos {
					t.Fatalf("timestamp regression at event %d: %d < %d",
						i, events[i].AtNanos, events[i-1].AtNanos)
				}
			}

			// This commit's phase transitions, in trace order.
			var got [][2]string
			sessionEvents := map[string]int{}
			drains := 0
			for _, e := range events {
				if e.Token != token {
					continue
				}
				switch e.Kind {
				case obs.KindPhase:
					got = append(got, [2]string{e.From, e.Phase})
				case obs.KindSession:
					sessionEvents[e.Event]++
				case obs.KindDrain:
					drains++
				}
			}
			if len(got) != len(wantTransitions) {
				t.Fatalf("recorded %d transitions %v, want %d %v",
					len(got), got, len(wantTransitions), wantTransitions)
			}
			for i, want := range wantTransitions {
				if got[i] != want {
					t.Fatalf("transition %d = %v, want %v (full: %v)", i, got[i], want, got)
				}
			}
			if sessionEvents["ack-prepare"] != 1 {
				t.Fatalf("ack-prepare events = %d, want 1 (%v)", sessionEvents["ack-prepare"], sessionEvents)
			}
			if sessionEvents["demarcate"] != 1 {
				t.Fatalf("demarcate events = %d, want 1 (%v)", sessionEvents["demarcate"], sessionEvents)
			}
			if drains == 0 {
				t.Fatal("no epoch-drain events recorded")
			}

			// The derived timeline must close every span except the trailing
			// rest span.
			tl := s.Tracer().Timeline()
			if len(tl.Spans) == 0 {
				t.Fatal("timeline has no spans")
			}
			for i, sp := range tl.Spans[:len(tl.Spans)-1] {
				if sp.Open {
					t.Fatalf("span %d (%s) marked open", i, sp.Phase)
				}
			}
			last := tl.Spans[len(tl.Spans)-1]
			if !last.Open || last.Phase != "rest" {
				t.Fatalf("trailing span = %+v, want open rest span", last)
			}
		})
	}
}
