package faster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/ycsb"
)

// The fault-torture harness: a concurrent YCSB-style workload runs over a
// fault-injected device and checkpoint store while commits fire; named crash
// points sweep the interesting instants of each commit's artifact sequence
// (before the metadata, mid-metadata-write, after the metadata) and snapshot
// the "disk" there. Every snapshot is then recovered and held to the CPR
// contract: for each session, exactly the operations up to its recovered CPR
// point are present. Snapshots whose newest commit is torn must demote to
// the previous fully-verifiable commit — not error out — with the skip
// recorded in the RecoveryReport.
//
// The workload is the self-describing one from TestCrashAtRandomPoints:
// session i's operation n upserts key (i, n%keysPer) = n, so the expected
// value of every key is computable from the recovered point alone.

const (
	tortureSessions = 3
	tortureKeysPer  = 32
)

// tortureSnapshot is one captured crash image plus what must hold for it.
type tortureSnapshot struct {
	label string
	dev   *storage.MemDevice
	ckpts *storage.MemCheckpointStore
	// completed is how many commits had fully completed when the image was
	// taken. When > 0 (or the image was taken after the commit's metadata
	// was durable), recovery MUST succeed.
	completed int
	// wantSkip: the image holds a torn newest metadata over >= 1 completed
	// commit, so recovery must both succeed and report a skipped commit.
	wantSkip bool
}

func tortureWorkload(t *testing.T, s *Store) (ids []string, stopFn func()) {
	t.Helper()
	ids = make([]string, tortureSessions)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < tortureSessions; i++ {
		i := i
		sess := s.StartSession()
		ids[i] = sess.ID()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := ycsb.NewRNG(uint64(i) + 177)
			var kb, vb [8]byte
			for n := uint64(1); ; n++ {
				if n%64 == 0 && stop.Load() {
					break
				}
				binary.LittleEndian.PutUint64(kb[:], uint64(i)<<32|n%tortureKeysPer)
				binary.LittleEndian.PutUint64(vb[:], n)
				if st := sess.Upsert(kb[:], vb[:]); st == Pending {
					sess.CompletePending(true)
				}
				if rng.Intn(997) == 0 {
					sess.CompletePending(false)
				}
			}
			sess.CompletePending(true)
			for s.Phase() != Rest {
				sess.Refresh()
				sess.CompletePending(false)
			}
			sess.StopSession()
		}()
	}
	return ids, func() { stop.Store(true); wg.Wait() }
}

// assertPrefix checks the CPR contract on a recovered store for every
// workload session.
func assertPrefix(t *testing.T, label string, r *Store, ids []string) {
	t.Helper()
	for i := 0; i < tortureSessions; i++ {
		rs, point := r.ContinueSession(ids[i])
		for k := uint64(0); k < tortureKeysPer; k++ {
			var want uint64
			if point > 0 {
				want = point - (point+tortureKeysPer-k)%tortureKeysPer
			}
			var kb [8]byte
			binary.LittleEndian.PutUint64(kb[:], uint64(i)<<32|k)
			var got uint64
			var found, done bool
			_, st := rs.Read(kb[:], func(v []byte, s2 Status) {
				done = true
				if s2 == Ok {
					got, found = binary.LittleEndian.Uint64(v), true
				}
			})
			if st == Pending {
				rs.CompletePending(true)
			}
			if !done {
				t.Fatalf("%s session %d key %d: read never completed", label, i, k)
			}
			if want == 0 {
				if found {
					t.Fatalf("%s session %d key %d: phantom value %d past point %d",
						label, i, k, got, point)
				}
				continue
			}
			if !found || got != want {
				t.Fatalf("%s session %d key %d: got (%d,%v), want %d (point %d)",
					label, i, k, got, found, want, point)
			}
		}
		rs.StopSession()
	}
}

// TestFaultTortureSweep arms crash points at every interesting instant of a
// sequence of commits — running the workload over transiently-faulty storage
// the whole time — and verifies each crash image recovers to a valid CPR
// prefix.
func TestFaultTortureSweep(t *testing.T) {
	for _, seed := range []uint64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tortureSweep(t, seed)
		})
	}
}

func tortureSweep(t *testing.T, seed uint64) {
	const commits = 4

	memDev := storage.NewMemDevice()
	memCk := storage.NewMemCheckpointStore()
	// Low transient pressure keeps the workload and commits succeeding via
	// retries while still exercising the self-healing paths.
	inj := storage.NewInjector(storage.FaultConfig{
		Seed:           seed,
		ReadErrorRate:  0.002,
		WriteErrorRate: 0.002,
		TornWriteRate:  0.001,
	})
	dev := storage.NewFaultDevice(memDev, inj)
	ckpts := storage.NewFaultCheckpointStore(memCk, inj)

	cfg := Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 8,
		Device: dev, Checkpoints: ckpts}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, stop := tortureWorkload(t, s)

	var snaps []*tortureSnapshot
	var completed atomic.Int64
	// Crash order: checkpoint store first, then the device (metadata is only
	// written after its log data is durable, so this order never captures
	// metadata whose data is missing).
	capture := func(label string, wantSkip bool) *tortureSnapshot {
		return &tortureSnapshot{
			label:     label,
			ckpts:     memCk.Clone(),
			dev:       memDev.Clone(),
			completed: int(completed.Load()),
			wantSkip:  wantSkip,
		}
	}

	rng := ycsb.NewRNG(seed * 1000003)
	for c := 1; c <= commits; c++ {
		// Commit tokens are sequential, so the artifact names of commit c are
		// known before it starts — arm this round's crash points now.
		token := fmt.Sprintf("ckpt-%06d", c)
		inj.Arm("before:meta-"+token, func() {
			snaps = append(snaps, capture("before:meta-"+token, false))
		})
		inj.Arm("torn:meta-"+token, func() {
			// A torn newest metadata over >= 1 completed commit must demote,
			// and the demotion must be reported.
			snaps = append(snaps, capture("torn:meta-"+token, completed.Load() > 0))
		})
		inj.Arm("after:meta-"+token, func() {
			snaps = append(snaps, capture("after:meta-"+token, false))
		})
		kind := FoldOver
		tok, err := s.Commit(CommitOptions{WithIndex: rng.Intn(2) == 0, Kind: &kind})
		if err != nil {
			t.Fatal(err)
		}
		if tok != token {
			t.Fatalf("commit token %s, expected %s", tok, token)
		}
		var res CommitResult
		for {
			var ok bool
			if res, ok = s.TryResult(tok); ok {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		if res.Err != nil {
			t.Fatalf("commit %s failed: %v", tok, res.Err)
		}
		completed.Add(1)
		// One more image mid-workload, after the commit fully completed.
		time.Sleep(time.Duration(1+rng.Intn(4)) * time.Millisecond)
		snaps = append(snaps, capture(fmt.Sprintf("steady-after-%s", tok), false))
	}
	stop()
	s.Close()

	if len(snaps) < 3*commits {
		t.Fatalf("only %d crash images captured, expected at least %d", len(snaps), 3*commits)
	}
	recovered := 0
	for _, snap := range snaps {
		r, report, err := RecoverWithReport(Config{IndexBuckets: 1 << 8, PageBits: 13,
			MemPages: 8, Device: snap.dev, Checkpoints: snap.ckpts})
		if err != nil {
			if snap.completed > 0 || snap.label == "after:meta-ckpt-000001" {
				t.Fatalf("%s: recovery failed despite a verifiable commit: %v", snap.label, err)
			}
			continue // no commit had completed; a fresh-store outcome is legal
		}
		recovered++
		if snap.wantSkip && len(report.Skipped) == 0 {
			t.Fatalf("%s: torn newest commit recovered without a skip report (token %s)",
				snap.label, report.Token)
		}
		for _, sk := range report.Skipped {
			if sk.Token == report.Token {
				t.Fatalf("%s: commit %s both skipped and recovered", snap.label, sk.Token)
			}
		}
		assertPrefix(t, snap.label, r, ids)
		r.Close()
	}
	if recovered == 0 {
		t.Fatal("no crash image recovered; broken commits or too-early snapshots")
	}
}

// TestRecoveryFallbackOnCorruptNewest corrupts the newest commit's metadata
// in place after a clean shutdown: recovery must land on the previous commit
// with a non-empty report, not fail — and a fresh commit afterwards must not
// reuse the skipped token.
func TestRecoveryFallbackOnCorruptNewest(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 8,
		Device: dev, Checkpoints: ckpts}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, stop := tortureWorkload(t, s)
	tokens := make([]string, 2)
	for c := 0; c < 2; c++ {
		tok, err := s.Commit(CommitOptions{WithIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		tokens[c] = tok
		for {
			if res, ok := s.TryResult(tok); ok {
				if res.Err != nil {
					t.Fatalf("commit %s: %v", tok, res.Err)
				}
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	stop()
	s.Close()

	// Flip one byte of the newest commit's metadata envelope.
	raw, err := storage.ReadArtifact(ckpts, "meta-"+tokens[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := storage.WriteArtifact(ckpts, "meta-"+tokens[1], raw); err != nil {
		t.Fatal(err)
	}

	r, report, err := RecoverWithReport(Config{IndexBuckets: 1 << 8, PageBits: 13,
		MemPages: 8, Device: dev, Checkpoints: ckpts})
	if err != nil {
		t.Fatalf("recovery must demote, not fail: %v", err)
	}
	defer r.Close()
	if report.Token != tokens[0] {
		t.Fatalf("recovered %s, want fallback to %s", report.Token, tokens[0])
	}
	if len(report.Skipped) == 0 {
		t.Fatal("fallback recovery reported no skipped commits")
	}
	if report.Skipped[0].Token != tokens[1] {
		t.Fatalf("skip names %s, want %s", report.Skipped[0].Token, tokens[1])
	}
	if got := r.RecoveryReport(); got == nil || got.Token != report.Token {
		t.Fatal("store does not expose its recovery report")
	}
	assertPrefix(t, "fallback", r, ids)

	// The next commit must mint a token strictly after the corrupt one.
	sess := r.StartSession()
	defer sess.StopSession()
	sess.Upsert([]byte("k"), []byte("v"))
	tok, err := r.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if res, ok := r.TryResult(tok); ok {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			break
		}
		sess.Refresh()
		time.Sleep(100 * time.Microsecond)
	}
	if tok <= tokens[1] {
		t.Fatalf("fresh commit token %s collides with skipped commit %s", tok, tokens[1])
	}
}

// TestRecoveryFallbackOnCorruptManifest is the partitioned variant: with the
// newest cross-shard manifest corrupted, recovery demotes to the previous
// manifest's commit on every shard.
func TestRecoveryFallbackOnCorruptManifest(t *testing.T) {
	ckpts := storage.NewMemCheckpointStore()
	devs := make(map[int]*storage.MemDevice)
	cfg := Config{Shards: 2, IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16,
		Checkpoints: ckpts,
		DeviceFactory: func(i int) (storage.Device, error) {
			d := storage.NewMemDevice()
			devs[i] = d
			return d, nil
		}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ids, stop := tortureWorkload(t, s)
	tokens := make([]string, 2)
	for c := 0; c < 2; c++ {
		tok, err := s.Commit(CommitOptions{WithIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		tokens[c] = tok
		for {
			if res, ok := s.TryResult(tok); ok {
				if res.Err != nil {
					t.Fatalf("commit %s: %v", tok, res.Err)
				}
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	stop()
	s.Close()

	raw, err := storage.ReadArtifact(ckpts, "cpr-manifest-"+tokens[1])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01
	if err := storage.WriteArtifact(ckpts, "cpr-manifest-"+tokens[1], raw); err != nil {
		t.Fatal(err)
	}

	rcfg := Config{Shards: 2, IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16,
		Checkpoints:   ckpts,
		DeviceFactory: func(i int) (storage.Device, error) { return devs[i], nil }}
	r, report, err := RecoverWithReport(rcfg)
	if err != nil {
		t.Fatalf("partitioned recovery must demote, not fail: %v", err)
	}
	defer r.Close()
	if report.Token != tokens[0] {
		t.Fatalf("recovered %s, want fallback to %s", report.Token, tokens[0])
	}
	if len(report.Skipped) == 0 {
		t.Fatal("fallback recovery reported no skipped commits")
	}
	assertPrefix(t, "manifest-fallback", r, ids)
}
