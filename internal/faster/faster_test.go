package faster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

func u64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func key(k uint64) []byte { return u64(k) }

func smallConfig() Config {
	return Config{
		IndexBuckets: 1 << 10,
		PageBits:     14,
		MemPages:     8,
	}
}

// driveCommit runs a commit to completion while keeping every session in
// sessions refreshing (the paper's model: threads continuously process).
func driveCommit(t *testing.T, s *Store, sessions []*Session, opts CommitOptions) CommitResult {
	t.Helper()
	token, err := s.Commit(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		if res, ok := s.TryResult(token); ok {
			if res.Err != nil {
				t.Fatalf("commit failed: %v", res.Err)
			}
			return res
		}
		for _, sess := range sessions {
			sess.Refresh()
			sess.CompletePending(false)
		}
		if i > 1_000_000 {
			t.Fatalf("commit %s stuck in phase %v", token, s.Phase())
		}
	}
}

func TestUpsertReadSingleSession(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	if st := sess.Upsert(key(1), u64(100)); st != Ok {
		t.Fatalf("upsert: %v", st)
	}
	val, st := sess.Read(key(1), nil)
	if st != Ok || binary.LittleEndian.Uint64(val) != 100 {
		t.Fatalf("read: %v %v", val, st)
	}
	if _, st := sess.Read(key(2), nil); st != NotFound {
		t.Fatalf("missing key status: %v", st)
	}
}

func TestRMWCreatesAndUpdates(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	for i := 0; i < 10; i++ {
		if st := sess.RMW(key(7), u64(3)); st != Ok {
			t.Fatalf("rmw %d: %v", i, st)
		}
	}
	val, st := sess.Read(key(7), nil)
	if st != Ok || binary.LittleEndian.Uint64(val) != 30 {
		t.Fatalf("rmw sum = %v (%v), want 30", val, st)
	}
}

func TestDeleteAndTombstone(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	sess.Upsert(key(5), u64(55))
	if st := sess.Delete(key(5)); st != Ok {
		t.Fatalf("delete: %v", st)
	}
	if _, st := sess.Read(key(5), nil); st != NotFound {
		t.Fatalf("read after delete: %v", st)
	}
	// Re-insert after delete.
	if st := sess.Upsert(key(5), u64(56)); st != Ok {
		t.Fatalf("re-upsert: %v", st)
	}
	val, st := sess.Read(key(5), nil)
	if st != Ok || binary.LittleEndian.Uint64(val) != 56 {
		t.Fatalf("read after re-upsert: %v %v", val, st)
	}
}

func TestManyKeysChains(t *testing.T) {
	cfg := smallConfig()
	cfg.IndexBuckets = 1 << 4 // force long chains and tag sharing
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	const n = 5000
	for i := uint64(0); i < n; i++ {
		if st := sess.Upsert(key(i), u64(i*2)); st != Ok {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}
	sess.CompletePending(true)
	for i := uint64(0); i < n; i++ {
		want := i * 2
		got := uint64(0)
		found := false
		val, st := sess.Read(key(i), func(v []byte, s2 Status) {
			if s2 == Ok {
				got, found = binary.LittleEndian.Uint64(v), true
			}
		})
		if st == Ok {
			got, found = binary.LittleEndian.Uint64(val), true
		} else if st == Pending {
			sess.CompletePending(true)
		}
		if !found || got != want {
			t.Fatalf("read %d = %d found=%v (%v), want %d", i, got, found, st, want)
		}
	}
}

func TestLargerThanMemoryReads(t *testing.T) {
	cfg := smallConfig()
	cfg.PageBits = 12
	cfg.MemPages = 4
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	const n = 3000 // 3000*32B = 96 KB >> 16 KB memory
	for i := uint64(0); i < n; i++ {
		if st := sess.Upsert(key(i), u64(i+1)); st != Ok {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}
	// Early keys must now be on storage; reads go pending and complete.
	okCount := 0
	for i := uint64(0); i < 50; i++ {
		want := i + 1
		_, st := sess.Read(key(i), func(v []byte, s2 Status) {
			if s2 == Ok && binary.LittleEndian.Uint64(v) == want {
				okCount++
			} else {
				t.Errorf("key %d: cb %v %v", i, v, s2)
			}
		})
		if st == Ok {
			okCount++
		} else if st != Pending {
			t.Fatalf("read %d: %v", i, st)
		}
	}
	sess.CompletePending(true)
	if okCount < 50 {
		t.Fatalf("completed %d of 50 cold reads", okCount)
	}
}

func TestRMWOnColdRecord(t *testing.T) {
	cfg := smallConfig()
	cfg.PageBits = 12
	cfg.MemPages = 4
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	sess.RMW(key(1), u64(10))
	// Push key 1 out of memory.
	for i := uint64(100); i < 3100; i++ {
		sess.Upsert(key(i), u64(i))
	}
	if s.shards[0].log.InMemory(64) {
		t.Skip("first record unexpectedly still in memory")
	}
	st := sess.RMW(key(1), u64(5))
	if st == Pending {
		sess.CompletePending(true)
	} else if st != Ok {
		t.Fatalf("cold rmw: %v", st)
	}
	var got uint64
	_, rst := sess.Read(key(1), func(v []byte, s2 Status) {
		if s2 == Ok {
			got = binary.LittleEndian.Uint64(v)
		}
	})
	if rst == Ok {
		// value delivered synchronously via callback too
	} else {
		sess.CompletePending(true)
	}
	if got != 15 {
		// The read may have completed synchronously; re-read.
		v, rst2 := sess.Read(key(1), nil)
		if rst2 == Ok {
			got = binary.LittleEndian.Uint64(v)
		} else {
			sess.CompletePending(true)
		}
	}
	if got != 15 {
		t.Fatalf("cold rmw sum = %d, want 15", got)
	}
}

func TestCommitAndRecoverFoldOver(t *testing.T) { testCommitAndRecover(t, FoldOver, FineGrained) }
func TestCommitAndRecoverSnapshot(t *testing.T) { testCommitAndRecover(t, Snapshot, FineGrained) }
func TestCommitAndRecoverCoarse(t *testing.T)   { testCommitAndRecover(t, FoldOver, CoarseGrained) }

func testCommitAndRecover(t *testing.T, kind CommitKind, transfer VersionTransfer) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := smallConfig()
	cfg.Device = dev
	cfg.Checkpoints = ckpts
	cfg.Kind = kind
	cfg.Transfer = transfer
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()

	const n = 1000
	for i := uint64(0); i < n; i++ {
		if st := sess.Upsert(key(i), u64(i+7)); st != Ok {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}
	res := driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	if res.Serials[id] != n {
		t.Fatalf("CPR point = %d, want %d", res.Serials[id], n)
	}
	// Post-commit operations are NOT in the commit.
	for i := uint64(0); i < 100; i++ {
		sess.Upsert(key(i), u64(999999))
	}
	sess.StopSession()
	s.Close()

	// "Crash": recover from the same device + checkpoint store.
	cfg2 := smallConfig()
	cfg2.Device = dev
	cfg2.Checkpoints = ckpts
	cfg2.Kind = kind
	cfg2.Transfer = transfer
	r, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs, serial := r.ContinueSession(id)
	defer rs.StopSession()
	if serial != n {
		t.Fatalf("recovered CPR point = %d, want %d", serial, n)
	}
	for i := uint64(0); i < n; i++ {
		want := i + 7
		v, st := rs.Read(key(i), func(v []byte, s2 Status) {
			if s2 != Ok || binary.LittleEndian.Uint64(v) != want {
				t.Errorf("key %d: recovered %v (%v), want %d", i, v, s2, want)
			}
		})
		switch st {
		case Ok:
			if binary.LittleEndian.Uint64(v) != want {
				t.Fatalf("key %d: recovered %d, want %d (post-commit leak?)", i, binary.LittleEndian.Uint64(v), want)
			}
		case Pending:
			rs.CompletePending(true)
		default:
			t.Fatalf("key %d: %v", i, st)
		}
	}
}

func TestRecoveryDropsUncommittedSuffix(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := smallConfig()
	cfg.Device = dev
	cfg.Checkpoints = ckpts
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()

	sess.Upsert(key(1), u64(10))
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	// v2 operations, never committed.
	sess.Upsert(key(1), u64(20))
	sess.Upsert(key(2), u64(30))
	// Force the uncommitted records onto the device via a log flush (as if
	// pages were evicted before the crash).
	s.shards[0].log.ShiftReadOnlyTo(s.shards[0].log.Tail())
	sess.Refresh()
	s.shards[0].log.WaitDurable(s.shards[0].log.Tail())
	sess.StopSession()
	s.Close()

	cfg2 := smallConfig()
	cfg2.Device = dev
	cfg2.Checkpoints = ckpts
	r, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs, serial := r.ContinueSession(id)
	defer rs.StopSession()
	if serial != 1 {
		t.Fatalf("CPR point = %d, want 1", serial)
	}
	v, st := rs.Read(key(1), nil)
	if st != Ok || binary.LittleEndian.Uint64(v) != 10 {
		t.Fatalf("key 1 = %v (%v), want 10 (uncommitted 20 must be gone)", v, st)
	}
	if _, st := rs.Read(key(2), nil); st != NotFound {
		t.Fatalf("key 2 should not have been recovered: %v", st)
	}
}

func TestConcurrentSessionsCPRPrefix(t *testing.T) {
	for _, transfer := range []VersionTransfer{FineGrained, CoarseGrained} {
		transfer := transfer
		t.Run(transfer.String(), func(t *testing.T) {
			dev := storage.NewMemDevice()
			ckpts := storage.NewMemCheckpointStore()
			cfg := Config{IndexBuckets: 1 << 12, PageBits: 16, MemPages: 16,
				Device: dev, Checkpoints: ckpts, Transfer: transfer}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}

			const sessions = 4
			const opsEach = 5000
			ids := make([]string, sessions)
			var wg sync.WaitGroup
			var commitWG sync.WaitGroup
			tokenCh := make(chan string, 1)
			for si := 0; si < sessions; si++ {
				si := si
				sess := s.StartSession()
				ids[si] = sess.ID()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := uint64(1); i <= opsEach; i++ {
						// Key encodes (session, serial); value is the serial.
						k := key(uint64(si)<<32 | i)
						for sess.Upsert(k, u64(i)) == Pending {
							sess.CompletePending(true)
						}
					}
					sess.CompletePending(true)
					// Keep refreshing until the commit completes so the
					// state machine can advance past our session.
					tok := <-tokenCh
					tokenCh <- tok
					for {
						if _, ok := s.TryResult(tok); ok {
							break
						}
						sess.Refresh()
						sess.CompletePending(false)
					}
					sess.StopSession()
				}()
			}
			commitWG.Add(1)
			var res CommitResult
			go func() {
				defer commitWG.Done()
				token, err := s.Commit(CommitOptions{WithIndex: true})
				if err != nil {
					t.Error(err)
					return
				}
				tokenCh <- token
				res = s.WaitForCommit(token)
			}()
			wg.Wait()
			commitWG.Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			s.Close()

			// Recover and check exact prefix semantics per session.
			r, err := Recover(Config{IndexBuckets: 1 << 12, PageBits: 16, MemPages: 16,
				Device: dev, Checkpoints: ckpts, Transfer: transfer})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			for si := 0; si < sessions; si++ {
				rs, cpr := r.ContinueSession(ids[si])
				if got := res.Serials[ids[si]]; got != cpr {
					t.Fatalf("session %d: recovered point %d != commit point %d", si, cpr, got)
				}
				// Every op with serial <= cpr must be present...
				for i := uint64(1); i <= cpr; i++ {
					k := key(uint64(si)<<32 | i)
					v, st := rs.Read(k, func(v []byte, s2 Status) {
						if s2 != Ok || binary.LittleEndian.Uint64(v) != i {
							t.Errorf("session %d op %d missing from commit (st=%v)", si, i, s2)
						}
					})
					if st == Ok && binary.LittleEndian.Uint64(v) != i {
						t.Fatalf("session %d op %d value %d", si, i, binary.LittleEndian.Uint64(v))
					}
					if st == Pending {
						rs.CompletePending(true)
					} else if st != Ok {
						t.Fatalf("session %d op %d: st=%v, want present", si, i, st)
					}
				}
				// ...and every op after it absent.
				for i := cpr + 1; i <= opsEach; i++ {
					k := key(uint64(si)<<32 | i)
					_, st := rs.Read(k, func(_ []byte, s2 Status) {
						if s2 != NotFound {
							t.Errorf("session %d op %d beyond CPR point leaked in", si, i)
						}
					})
					if st == Pending {
						rs.CompletePending(true)
					} else if st != NotFound {
						t.Fatalf("session %d op %d beyond CPR point present (st=%v)", si, i, st)
					}
				}
				rs.StopSession()
			}
		})
	}
}

func TestLogOnlyCommitRecovery(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := smallConfig()
	cfg.Device = dev
	cfg.Checkpoints = ckpts
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()

	sess.Upsert(key(1), u64(1))
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	sess.Upsert(key(2), u64(2))
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: false})
	sess.Upsert(key(3), u64(3))
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: false})
	sess.StopSession()
	s.Close()

	cfg2 := smallConfig()
	cfg2.Device = dev
	cfg2.Checkpoints = ckpts
	r, err := Recover(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs, serial := r.ContinueSession(id)
	defer rs.StopSession()
	if serial != 3 {
		t.Fatalf("CPR point = %d, want 3", serial)
	}
	for i := uint64(1); i <= 3; i++ {
		v, st := rs.Read(key(i), nil)
		if st == Pending {
			rs.CompletePending(true)
			continue
		}
		if st != Ok || binary.LittleEndian.Uint64(v) != i {
			t.Fatalf("key %d = %v (%v)", i, v, st)
		}
	}
}

func TestMultipleSequentialCommits(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	for c := 0; c < 5; c++ {
		for i := uint64(0); i < 200; i++ {
			sess.RMW(key(i), u64(1))
		}
		res := driveCommit(t, s, []*Session{sess}, CommitOptions{})
		if res.Version != uint32(c+1) {
			t.Fatalf("commit %d at version %d", c, res.Version)
		}
	}
	if s.Version() != 6 {
		t.Fatalf("final version = %d, want 6", s.Version())
	}
	// Values must reflect all 5 rounds of RMW+1.
	v, st := sess.Read(key(0), nil)
	if st == Pending {
		sess.CompletePending(true)
	} else if st != Ok || binary.LittleEndian.Uint64(v) != 5 {
		t.Fatalf("key 0 = %v (%v), want 5", v, st)
	}
}

func TestCommitWhileCommitInProgress(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	sess.Upsert(key(1), u64(1))
	token, err := s.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Commit(CommitOptions{}); err != ErrCommitInProgress {
		t.Fatalf("second commit err = %v, want ErrCommitInProgress", err)
	}
	for {
		if _, ok := s.TryResult(token); ok {
			break
		}
		sess.Refresh()
	}
}

func TestSessionSerialsMonotonic(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	last := sess.Serial()
	for i := uint64(0); i < 100; i++ {
		sess.Upsert(key(i), u64(i))
		if sess.Serial() != last+1 {
			t.Fatalf("serial jumped from %d to %d", last, sess.Serial())
		}
		last = sess.Serial()
	}
}

func TestIndexFindOrCreateConcurrent(t *testing.T) {
	idx, err := newIndex(1<<4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const threads = 8
	const keys = 2000
	slots := make([][]*uint64, threads)
	var wg sync.WaitGroup
	for ti := 0; ti < threads; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				h := uint64(i)*2654435761 + 12345
				s := idx.findOrCreateSlot(h)
				if s == nil {
					t.Errorf("nil slot for %d", i)
					return
				}
				_ = ti
			}
			slots[ti] = nil
		}()
	}
	wg.Wait()
	// Every hash must resolve to exactly one slot now.
	for i := 0; i < keys; i++ {
		h := uint64(i)*2654435761 + 12345
		if idx.findSlot(h) == nil {
			t.Fatalf("hash %d has no slot after concurrent inserts", i)
		}
	}
}

func TestBucketLatches(t *testing.T) {
	idx, err := newIndex(1<<4, 0)
	if err != nil {
		t.Fatal(err)
	}
	h := uint64(42)
	if !idx.trySharedLatch(h) {
		t.Fatal("shared latch failed on idle bucket")
	}
	if !idx.trySharedLatch(h) {
		t.Fatal("second shared latch failed")
	}
	if idx.sharedCount(h) != 2 {
		t.Fatalf("shared count = %d", idx.sharedCount(h))
	}
	if idx.tryExclusiveLatch(h) {
		t.Fatal("exclusive latch acquired while shared held")
	}
	idx.releaseSharedLatch(h)
	idx.releaseSharedLatch(h)
	if !idx.tryExclusiveLatch(h) {
		t.Fatal("exclusive latch failed on idle bucket")
	}
	if idx.trySharedLatch(h) {
		t.Fatal("shared latch acquired while exclusive held")
	}
	idx.releaseExclusiveLatch(h)
	if !idx.trySharedLatch(h) {
		t.Fatal("shared latch failed after exclusive release")
	}
	idx.releaseSharedLatch(h)
}

func TestIndexCheckpointRoundTrip(t *testing.T) {
	idx, err := newIndex(1<<4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		h := uint64(i) * 0x9E3779B97F4A7C15
		slot := idx.findOrCreateSlot(h)
		slot.Store(tagOf(h) | uint64(64+i*32))
	}
	store := storage.NewMemCheckpointStore()
	w, _ := store.Create("idx")
	if err := idx.writeTo(w); err != nil {
		t.Fatal(err)
	}
	w.Close()
	r, _ := store.Open("idx")
	idx2, err := readIndex(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		h := uint64(i) * 0x9E3779B97F4A7C15
		s1, s2 := idx.findSlot(h), idx2.findSlot(h)
		if s1 == nil || s2 == nil {
			t.Fatalf("key %d missing after round trip", i)
		}
		if entryAddr(s1.Load()) != entryAddr(s2.Load()) {
			t.Fatalf("key %d addr %d != %d", i, entryAddr(s1.Load()), entryAddr(s2.Load()))
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{Rest: "rest", Prepare: "prepare", InProgress: "in-progress",
		WaitPending: "wait-pending", WaitFlush: "wait-flush"}
	for p, w := range want {
		if p.String() != w {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), w)
		}
	}
	if FoldOver.String() != "fold-over" || Snapshot.String() != "snapshot" {
		t.Error("CommitKind strings wrong")
	}
	if FineGrained.String() != "fine" || CoarseGrained.String() != "coarse" {
		t.Error("VersionTransfer strings wrong")
	}
}

func TestVersionHelpers(t *testing.T) {
	if !isFutureVersion(recVersion(2), 1) {
		t.Fatal("version 2 should be future of commit 1")
	}
	if isFutureVersion(recVersion(1), 1) {
		t.Fatal("version 1 is not future of commit 1")
	}
	// Wraparound: version 8191+1 wraps to 0 in 13 bits.
	if !isFutureVersion(recVersion(8192), 8191) {
		t.Fatal("wrapped future version not detected")
	}
}

func TestStateMachinePhasesObserved(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	sess.Upsert(key(1), u64(1))

	if s.Phase() != Rest {
		t.Fatalf("initial phase %v", s.Phase())
	}
	token, err := s.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Phase() != Prepare {
		t.Fatalf("phase after Commit = %v, want prepare", s.Phase())
	}
	seen := map[Phase]bool{}
	for {
		seen[s.Phase()] = true
		if _, ok := s.TryResult(token); ok {
			break
		}
		sess.Refresh()
	}
	if !seen[Prepare] {
		t.Error("never observed prepare")
	}
	if s.Phase() != Rest || s.Version() != 2 {
		t.Fatalf("final state %v v%d", s.Phase(), s.Version())
	}
}

func TestFmtAppease(t *testing.T) { _ = fmt.Sprintf } // keep fmt import used if tests shrink
