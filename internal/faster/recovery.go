package faster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/hlog"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ErrNoCheckpoint is wrapped by Recover when the checkpoint store holds no
// commit to recover from. Callers that fall back to a fresh store on this
// error (errors.Is) still fail hard on real recovery problems — a corrupt
// store with no surviving commit or a shard-count mismatch must never
// silently discard data.
var ErrNoCheckpoint = errors.New("no checkpoint to recover from")

// SkippedCommit records one commit that recovery examined and rejected.
type SkippedCommit struct {
	Token  string `json:"token"`
	Reason string `json:"reason"`
}

// RecoveryReport describes what Recover did: which commit it landed on and
// which newer commits it had to skip because an artifact was torn, corrupt,
// or unreadable. A non-empty Skipped list means the newest commit on disk was
// not fully verifiable and the store fell back to an older — still valid —
// CPR prefix.
type RecoveryReport struct {
	Token   string          `json:"token"`
	Version uint32          `json:"version"`
	Skipped []SkippedCommit `json:"skipped,omitempty"`
	// Instant reports that the store came up in instant-restore mode
	// (Config.InstantRestore): serving began before the log suffix was
	// replayed, with buckets warming lazily. See Store.RestoreStatus.
	Instant bool `json:"instant,omitempty"`
}

// Recover rebuilds a Store from its most recent fully-verifiable CPR commit
// (Sec. 6.4). The Config must reference the same Device contents and
// CheckpointStore the failed instance used. The recovered store is
// CPR-consistent: for every session, exactly the operations up to its
// recovered CPR point are present; clients learn those points via
// ContinueSession.
//
// Every artifact read during recovery is verified against its checksum
// envelope, and log pages are verified against the commit's per-page
// checksums. If the newest commit fails verification — a torn manifest, a
// corrupt snapshot, a damaged log page — recovery falls back to the most
// recent commit that verifies end to end (an older commit is still a valid
// CPR prefix) and notes the skips in the store's RecoveryReport.
//
// A partitioned store (Shards > 1) recovers from the latest verifiable
// cross-shard manifest: a commit counts only if every shard's checkpoint
// became durable before the crash, so shards that finished a newer commit
// individually roll back to the manifest's version and the recovered prefix
// is consistent across shards. A session's recovered CPR point is the
// minimum of its per-shard points (they are equal when the commit completed
// normally).
func Recover(cfg Config) (*Store, error) {
	s, _, err := RecoverWithReport(cfg)
	return s, err
}

// RecoverWithReport is Recover, also returning the recovery report (which
// commit was chosen and which newer ones were skipped as unverifiable).
func RecoverWithReport(cfg Config) (*Store, *RecoveryReport, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	s := newStore(cfg)
	s.shards = make([]*shard, cfg.Shards)

	if len(s.shards) == 1 {
		return s.recoverSingle()
	}
	return s.recoverMulti()
}

// recoverSingle recovers an unpartitioned store, walking commit candidates
// newest-first until one verifies.
func (s *Store) recoverSingle() (*Store, *RecoveryReport, error) {
	sc, err := s.shardConfig(0)
	if err != nil {
		return nil, nil, err
	}
	cands, err := commitCandidates(sc.Checkpoints, "meta")
	if err != nil {
		return nil, nil, err
	}
	if len(cands) == 0 {
		// No single-shard commit — but a cross-shard manifest means the store
		// was written partitioned; opening it unpartitioned would silently
		// shadow that data.
		if _, merr := storage.ReadArtifact(s.cfg.Checkpoints, "cpr-latest"); merr == nil {
			return nil, nil, fmt.Errorf("faster: store was written partitioned (cross-shard manifest present); set Config.Shards to match")
		}
		return nil, nil, fmt.Errorf("faster: %w: no commit metadata found", ErrNoCheckpoint)
	}
	report := &RecoveryReport{}
	for _, tok := range cands {
		sh, serials, rerr := recoverShard(sc, 0, s.traceSuffix(0), s.metrics, &s.commitSeq, tok)
		if rerr != nil {
			report.Skipped = append(report.Skipped, SkippedCommit{Token: tok, Reason: rerr.Error()})
			s.metrics.recoverySkips.Inc()
			s.cfg.Flight.Emit(obs.FlightRecoverFallback, 0, 0, tok, "", 0, 0)
			continue
		}
		s.shards[0] = sh
		for id, serial := range serials {
			s.recoveredSerials[id] = serial
		}
		report.Token = tok
		report.Version = sh.Version() - 1
		s.finishRecovery(cands, report)
		return s, report, nil
	}
	return nil, nil, fmt.Errorf("faster: no verifiable commit among %d candidate(s); newest (%s): %s",
		len(cands), report.Skipped[0].Token, report.Skipped[0].Reason)
}

// recoverMulti recovers a partitioned store from the newest cross-shard
// manifest whose every shard verifies.
func (s *Store) recoverMulti() (*Store, *RecoveryReport, error) {
	cands, err := commitCandidates(s.cfg.Checkpoints, "cpr-manifest")
	if err != nil {
		return nil, nil, err
	}
	if len(cands) == 0 {
		// No cross-shard commit — but a shard-0-unprefixed "latest" means the
		// store was written unpartitioned; recovering it as shard 0 of a
		// partitioned store would scatter its keys across empty shards.
		if _, lerr := storage.ReadArtifact(s.cfg.Checkpoints, "latest"); lerr == nil {
			return nil, nil, fmt.Errorf("faster: store was written unpartitioned; set Config.Shards to 1")
		}
		return nil, nil, fmt.Errorf("faster: %w: no cross-shard manifest found", ErrNoCheckpoint)
	}
	report := &RecoveryReport{}
	skip := func(tok string, err error) {
		report.Skipped = append(report.Skipped, SkippedCommit{Token: tok, Reason: err.Error()})
		s.metrics.recoverySkips.Inc()
		s.cfg.Flight.Emit(obs.FlightRecoverFallback, -1, 0, tok, "", 0, 0)
	}
candidates:
	for _, tok := range cands {
		buf, merr := storage.ReadArtifactChecked(s.cfg.Checkpoints, "cpr-manifest-"+tok)
		if merr != nil {
			skip(tok, fmt.Errorf("cross-shard manifest: %w", merr))
			continue
		}
		var man manifest
		if err := json.Unmarshal(buf, &man); err != nil {
			skip(tok, fmt.Errorf("cross-shard manifest: %w", err))
			continue
		}
		if man.Shards != s.cfg.Shards {
			// Configuration error, not corruption: no older manifest can fix a
			// store opened with the wrong shard count.
			return nil, nil, fmt.Errorf("faster: manifest has %d shards, config has %d", man.Shards, s.cfg.Shards)
		}
		clear(s.recoveredSerials)
		for i := range s.shards {
			sc, err := s.shardConfig(i)
			if err != nil {
				s.closeShards(i)
				return nil, nil, err
			}
			sh, serials, rerr := recoverShard(sc, i, s.traceSuffix(i), s.metrics, &s.commitSeq, man.Token)
			if rerr != nil {
				s.closeShards(i)
				clear(s.shards[:i])
				skip(tok, fmt.Errorf("shard %d: %w", i, rerr))
				continue candidates
			}
			s.shards[i] = sh
			// Min-merge: the recovered prefix for a session is bounded by the
			// weakest shard (equal across shards for a completed commit).
			for id, serial := range serials {
				if cur, ok := s.recoveredSerials[id]; !ok || serial < cur {
					s.recoveredSerials[id] = serial
				}
			}
		}
		report.Token = man.Token
		report.Version = man.Version
		s.finishRecovery(cands, report)
		return s, report, nil
	}
	return nil, nil, fmt.Errorf("faster: no verifiable cross-shard commit among %d candidate(s); newest (%s): %s",
		len(cands), report.Skipped[0].Token, report.Skipped[0].Reason)
}

// finishRecovery resumes the token sequence past every enumerated candidate
// (so fresh commits never collide with a skipped-but-present newer token, nor
// overwrite artifacts the live chain references) and publishes the report.
func (s *Store) finishRecovery(cands []string, report *RecoveryReport) {
	for _, tok := range cands {
		if seq, ok := tokenSeq(tok); ok && seq > s.commitSeq.Load() {
			s.commitSeq.Store(seq)
		}
	}
	for _, sh := range s.shards {
		sh.noteCommitted = s.noteCommitted
	}
	s.report = report
	s.registerStoreGauges()
	s.registerLagGauges()
	// Instant restore: only now — with every shard of the accepted candidate
	// open for good (rejected candidates' shards were closed) — start each
	// shard's analysis + sweep goroutine.
	for _, sh := range s.shards {
		if rs := sh.restore.Load(); rs != nil {
			report.Instant = true
			rs.start()
		}
	}
	// arg1 = number of skipped newer commits: zero means the newest commit on
	// disk verified end to end.
	s.cfg.Flight.Emit(obs.FlightRecoverVerdict, -1, uint64(report.Version), report.Token, "",
		uint64(len(report.Skipped)), 0)
}

// commitCandidates enumerates commit tokens present in the store for the
// given artifact kind ("meta" or "cpr-manifest"), newest first by token
// sequence number. Enumerating artifacts — rather than trusting the "latest"
// pointer — is what makes fallback possible when the pointer or the newest
// commit is damaged.
func commitCandidates(cs storage.CheckpointStore, kind string) ([]string, error) {
	names, err := storage.ListPrefix(cs, kind+"-")
	if err != nil {
		return nil, err
	}
	type cand struct {
		token string
		seq   uint64
		hasN  bool
	}
	cands := make([]cand, 0, len(names))
	for _, n := range names {
		tok := n[len(kind)+1:]
		seq, ok := tokenSeq(tok)
		cands = append(cands, cand{token: tok, seq: seq, hasN: ok})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hasN != cands[j].hasN {
			return cands[i].hasN // parseable tokens first (ordered), foreign tokens last
		}
		if cands[i].hasN {
			return cands[i].seq > cands[j].seq
		}
		return cands[i].token > cands[j].token
	})
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.token
	}
	return out, nil
}

// closeShards closes the shards recovered so far ([0, n)).
func (s *Store) closeShards(n int) {
	for j := 0; j < n; j++ {
		if s.shards[j] != nil {
			s.shards[j].close()
		}
	}
}

// tokenSeq extracts the sequence number from a store-generated commit token.
func tokenSeq(token string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(token, "ckpt-%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// recoverShard rebuilds one shard from the commit identified by token,
// verifying every artifact it reads and the log pages the commit's checksum
// table covers. cfg must be the shard's private configuration, exactly as
// for openShard. Any verification failure returns an error; the caller falls
// back to an older commit.
func recoverShard(cfg Config, id int, traceSuffix string, metrics storeMetrics, seq *atomic.Uint64, token string) (*shard, map[string]uint64, error) {
	meta, err := loadMetadata(cfg.Checkpoints, token)
	if err != nil {
		return nil, nil, err
	}
	sh, err := openShard(cfg, id, traceSuffix, metrics, seq)
	if err != nil {
		return nil, nil, err
	}

	// Snapshot commits keep the captured volatile region in a separate
	// artifact; slot it back into the log's address space first (App. D).
	if meta.Kind == Snapshot.String() {
		data, err := storage.ReadArtifactChecked(cfg.Checkpoints, "snapshot-"+meta.Token)
		if err != nil {
			sh.close()
			return nil, nil, fmt.Errorf("faster: recover snapshot: %w", err)
		}
		if err := sh.log.RestoreRange(meta.SnapshotStart, data); err != nil {
			sh.close()
			return nil, nil, err
		}
	}

	// The checkpoint extended the log capture to cover the fuzzy index
	// window, so max(Lie, Lhe) is always on the device when the index was
	// taken by this commit; carried-forward indexes lie below Lhe entirely.
	end := meta.Lhe
	if meta.HasIndex && meta.Lie > end {
		end = meta.Lie
	}
	if err := sh.log.RecoverTo(end); err != nil {
		sh.close()
		return nil, nil, err
	}

	// Verify the device's log pages against the commit's per-page checksums
	// (seeding the recovered log's checksum table with the pages that pass).
	// Commits predating page checksums carry no table and skip this. Instant
	// restore only seeds the table here: pages are verified lazily as the
	// analysis pass reads them, so startup cost stays independent of the
	// suffix size — the trade-off is that a corrupt log page discovered
	// during analysis can no longer fall back to an older commit (the store
	// is already serving this one); the restore fails and operations error.
	instant := cfg.InstantRestore && !cfg.Replica
	if crcBuf, cerr := storage.ReadArtifactChecked(cfg.Checkpoints, "pagecrc-"+meta.Token); cerr == nil {
		var crcs []hlog.PageCRC
		if err := json.Unmarshal(crcBuf, &crcs); err != nil {
			sh.close()
			return nil, nil, fmt.Errorf("faster: page checksums: %w", err)
		}
		if instant {
			sh.log.SeedPageCRCs(crcs, end)
		} else if err := sh.log.VerifyPages(crcs, end); err != nil {
			sh.close()
			return nil, nil, fmt.Errorf("faster: log page verification: %w", err)
		}
	} else if !storage.IsNotFound(cerr) {
		sh.close()
		return nil, nil, fmt.Errorf("faster: page checksums: %w", cerr)
	}

	// Load the most recent fuzzy index checkpoint, or start empty and
	// replay the whole log.
	scanStart := uint64(hlog.FirstAddress)
	if meta.IndexToken != "" {
		data, err := storage.ReadArtifactChecked(cfg.Checkpoints, "index-"+meta.IndexToken)
		if err != nil {
			sh.close()
			return nil, nil, fmt.Errorf("faster: recover index: %w", err)
		}
		idx, err := readIndex(bytes.NewReader(data))
		if err != nil {
			sh.close()
			return nil, nil, err
		}
		sh.index = idx
		scanStart = meta.Lis
		if meta.Lhs < scanStart {
			scanStart = meta.Lhs
		}
	}

	if cfg.Replica {
		// A replica must not rewrite shipped log bytes: records ahead of the
		// recovered commit become live at the next installed commit.
		err = sh.replayReplica(scanStart, end, meta.Version)
	} else if instant {
		// Defer the suffix replay: the shard serves on the recovered index
		// with every bucket cold. The analysis + warm machinery (started by
		// finishRecovery) reproduces replayLog's effects incrementally.
		sh.restore.Store(newRestoreState(sh, token, meta.Version, scanStart, end))
		sh.recoveredScanStart = scanStart
	} else {
		err = sh.replayLog(scanStart, end, meta.Version)
		sh.recoveredScanStart = scanStart
	}
	if err != nil {
		sh.close()
		return nil, nil, err
	}

	// Clamp any index entry still pointing at or beyond the recovered end
	// (fuzzy capture of addresses whose records were lost in the crash).
	// Instant restore clamps after its analysis pass instead: the v+1 unwind
	// conditions must be evaluated against the unclamped index, exactly as
	// the interleaved full replay evaluates them.
	if !instant {
		sh.clampIndex(end)
	}

	sh.state.Store(packState(Rest, meta.Version+1))
	sh.lastIndexToken, sh.lastLis, sh.lastLie = meta.IndexToken, meta.Lis, meta.Lie
	return sh, meta.Serials, nil
}

// replayLog implements Alg. 3: records of version <= v re-point their index
// slots; records of version v+1 are invalidated, and any slot referencing
// them (or a later address) is unwound to their predecessor.
func (sh *shard) replayLog(start, end uint64, v uint32) error {
	var keyBuf []byte
	var replayErr error
	err := sh.log.Scan(start, end, func(addr uint64, rec hlog.RecordRef) bool {
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		slot := sh.index.findOrCreateSlot(h)
		if !isFutureVersion(rec.Version(), v) {
			slot.Store(tagOf(h) | addr)
			return true
		}
		if err := sh.log.PersistInvalid(addr); err != nil {
			// Recovery is single-threaded; surface the first error by
			// stopping the scan (the caller fails this commit candidate).
			replayErr = fmt.Errorf("faster: invalidate %d: %w", addr, err)
			return false
		}
		if entryAddr(slot.Load()) >= addr {
			prev := rec.Prev()
			if prev >= hlog.FirstAddress {
				slot.Store(tagOf(h) | prev)
			} else {
				slot.Store(0)
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	return replayErr
}

// clampIndex clears index entries that reference addresses at or beyond the
// recovered log end (unreachable records lost in the crash).
func (sh *shard) clampIndex(end uint64) {
	clampBuckets := func(bs []bucket) {
		for i := range bs {
			for j := range bs[i].entries {
				e := bs[i].entries[j].Load()
				if e != 0 && entryAddr(e) >= end {
					bs[i].entries[j].Store(0)
				}
			}
		}
	}
	clampBuckets(sh.index.buckets)
	used := sh.index.overflowNext.Load() - 1
	for n := uint64(1); n <= used; n++ {
		b := sh.index.overflowBucket(n)
		for j := range b.entries {
			e := b.entries[j].Load()
			if e != 0 && entryAddr(e) >= end {
				b.entries[j].Store(0)
			}
		}
	}
}

func loadMetadata(store storage.CheckpointStore, token string) (*metadata, error) {
	buf, err := storage.ReadArtifactChecked(store, "meta-"+token)
	if err != nil {
		return nil, fmt.Errorf("faster: commit metadata: %w", err)
	}
	var meta metadata
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("faster: commit metadata: %w", err)
	}
	return &meta, nil
}

func readArtifact(store interface {
	Open(string) (io.ReadCloser, error)
}, name string) ([]byte, error) {
	r, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
