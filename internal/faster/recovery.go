package faster

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/hashfn"
	"repro/internal/hlog"
)

// Recover rebuilds a Store from its most recent CPR commit (Sec. 6.4). The
// Config must reference the same Device contents and CheckpointStore the
// failed instance used. The recovered store is CPR-consistent: for every
// session, exactly the operations up to its recovered CPR point are present;
// clients learn those points via ContinueSession.
func Recover(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	meta, err := loadLatestMetadata(cfg.Checkpoints)
	if err != nil {
		return nil, err
	}
	s, err := Open(cfg)
	if err != nil {
		return nil, err
	}

	// Snapshot commits keep the captured volatile region in a separate
	// artifact; slot it back into the log's address space first (App. D).
	if meta.Kind == Snapshot.String() {
		data, err := readArtifact(cfg.Checkpoints, "snapshot-"+meta.Token)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("faster: recover snapshot: %w", err)
		}
		if err := s.log.RestoreRange(meta.SnapshotStart, data); err != nil {
			s.Close()
			return nil, err
		}
	}

	// The checkpoint extended the log capture to cover the fuzzy index
	// window, so max(Lie, Lhe) is always on the device when the index was
	// taken by this commit; carried-forward indexes lie below Lhe entirely.
	end := meta.Lhe
	if meta.HasIndex && meta.Lie > end {
		end = meta.Lie
	}
	if err := s.log.RecoverTo(end); err != nil {
		s.Close()
		return nil, err
	}

	// Load the most recent fuzzy index checkpoint, or start empty and
	// replay the whole log.
	scanStart := uint64(hlog.FirstAddress)
	if meta.IndexToken != "" {
		r, err := cfg.Checkpoints.Open("index-" + meta.IndexToken)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("faster: recover index: %w", err)
		}
		idx, err := readIndex(r)
		r.Close()
		if err != nil {
			s.Close()
			return nil, err
		}
		s.index = idx
		scanStart = meta.Lis
		if meta.Lhs < scanStart {
			scanStart = meta.Lhs
		}
	}

	if err := s.replayLog(scanStart, end, meta.Version); err != nil {
		s.Close()
		return nil, err
	}

	// Clamp any index entry still pointing at or beyond the recovered end
	// (fuzzy capture of addresses whose records were lost in the crash).
	s.clampIndex(end)

	s.state.Store(packState(Rest, meta.Version+1))
	s.lastIndexToken, s.lastLis, s.lastLie = meta.IndexToken, meta.Lis, meta.Lie
	s.sessionMu.Lock()
	for id, serial := range meta.Serials {
		s.recoveredSerials[id] = serial
	}
	s.sessionMu.Unlock()
	return s, nil
}

// replayLog implements Alg. 3: records of version <= v re-point their index
// slots; records of version v+1 are invalidated, and any slot referencing
// them (or a later address) is unwound to their predecessor.
func (s *Store) replayLog(start, end uint64, v uint32) error {
	var keyBuf []byte
	return s.log.Scan(start, end, func(addr uint64, rec hlog.RecordRef) bool {
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		slot := s.index.findOrCreateSlot(h)
		if !isFutureVersion(rec.Version(), v) {
			slot.Store(tagOf(h) | addr)
			return true
		}
		if err := s.log.PersistInvalid(addr); err != nil {
			// Recovery is single-threaded; surface the first error by
			// stopping the scan (the outer call re-checks consistency).
			panic(fmt.Sprintf("faster: invalidate %d: %v", addr, err))
		}
		if entryAddr(slot.Load()) >= addr {
			prev := rec.Prev()
			if prev >= hlog.FirstAddress {
				slot.Store(tagOf(h) | prev)
			} else {
				slot.Store(0)
			}
		}
		return true
	})
}

// clampIndex clears index entries that reference addresses at or beyond the
// recovered log end (unreachable records lost in the crash).
func (s *Store) clampIndex(end uint64) {
	clampBuckets := func(bs []bucket) {
		for i := range bs {
			for j := range bs[i].entries {
				e := bs[i].entries[j].Load()
				if e != 0 && entryAddr(e) >= end {
					bs[i].entries[j].Store(0)
				}
			}
		}
	}
	clampBuckets(s.index.buckets)
	used := s.index.overflowNext.Load() - 1
	for n := uint64(1); n <= used; n++ {
		b := s.index.overflowBucket(n)
		for j := range b.entries {
			e := b.entries[j].Load()
			if e != 0 && entryAddr(e) >= end {
				b.entries[j].Store(0)
			}
		}
	}
}

func loadLatestMetadata(store interface {
	Open(string) (io.ReadCloser, error)
}) (*metadata, error) {
	tok, err := readArtifact(store, "latest")
	if err != nil {
		return nil, fmt.Errorf("faster: no commit to recover from: %w", err)
	}
	buf, err := readArtifact(store, "meta-"+string(tok))
	if err != nil {
		return nil, fmt.Errorf("faster: commit metadata: %w", err)
	}
	var meta metadata
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("faster: commit metadata: %w", err)
	}
	return &meta, nil
}

func readArtifact(store interface {
	Open(string) (io.ReadCloser, error)
}, name string) ([]byte, error) {
	r, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
