package faster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/hlog"
)

// ErrNoCheckpoint is wrapped by Recover when the checkpoint store holds no
// commit to recover from. Callers that fall back to a fresh store on this
// error (errors.Is) still fail hard on real recovery problems — a corrupt
// artifact or a shard-count mismatch must never silently discard data.
var ErrNoCheckpoint = errors.New("no checkpoint to recover from")

// Recover rebuilds a Store from its most recent CPR commit (Sec. 6.4). The
// Config must reference the same Device contents and CheckpointStore the
// failed instance used. The recovered store is CPR-consistent: for every
// session, exactly the operations up to its recovered CPR point are present;
// clients learn those points via ContinueSession.
//
// A partitioned store (Shards > 1) recovers from the latest cross-shard
// manifest: a commit counts only if every shard's checkpoint became durable
// before the crash, so shards that finished a newer commit individually roll
// back to the manifest's version and the recovered prefix is consistent
// across shards. A session's recovered CPR point is the minimum of its
// per-shard points (they are equal when the commit completed normally).
func Recover(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := newStore(cfg)
	s.shards = make([]*shard, cfg.Shards)

	if len(s.shards) == 1 {
		sc, err := s.shardConfig(0)
		if err != nil {
			return nil, err
		}
		sh, serials, err := recoverShard(sc, 0, s.traceSuffix(0), s.metrics, &s.commitSeq, "")
		if err != nil {
			if errors.Is(err, ErrNoCheckpoint) {
				// No single-shard commit — but a cross-shard manifest means
				// the store was written partitioned; opening it unpartitioned
				// would silently shadow that data.
				if _, merr := readArtifact(cfg.Checkpoints, "cpr-latest"); merr == nil {
					return nil, fmt.Errorf("faster: store was written partitioned (cross-shard manifest present); set Config.Shards to match")
				}
			}
			return nil, err
		}
		s.shards[0] = sh
		for id, serial := range serials {
			s.recoveredSerials[id] = serial
		}
		s.registerStoreGauges()
		return s, nil
	}

	tok, err := readArtifact(s.cfg.Checkpoints, "cpr-latest")
	if err != nil {
		// No cross-shard commit — but a shard-0-unprefixed "latest" means the
		// store was written unpartitioned; recovering it as shard 0 of a
		// partitioned store would scatter its keys across empty shards.
		if _, lerr := readArtifact(s.cfg.Checkpoints, "latest"); lerr == nil {
			return nil, fmt.Errorf("faster: store was written unpartitioned; set Config.Shards to 1")
		}
		return nil, fmt.Errorf("faster: %w: %v", ErrNoCheckpoint, err)
	}
	buf, err := readArtifact(s.cfg.Checkpoints, "cpr-manifest-"+string(tok))
	if err != nil {
		return nil, fmt.Errorf("faster: cross-shard manifest: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(buf, &man); err != nil {
		return nil, fmt.Errorf("faster: cross-shard manifest: %w", err)
	}
	if man.Shards != cfg.Shards {
		return nil, fmt.Errorf("faster: manifest has %d shards, config has %d", man.Shards, cfg.Shards)
	}
	for i := range s.shards {
		sc, err := s.shardConfig(i)
		if err != nil {
			s.closeShards(i)
			return nil, err
		}
		sh, serials, err := recoverShard(sc, i, s.traceSuffix(i), s.metrics, &s.commitSeq, man.Token)
		if err != nil {
			s.closeShards(i)
			return nil, fmt.Errorf("faster: recover shard %d: %w", i, err)
		}
		s.shards[i] = sh
		// Min-merge: the recovered prefix for a session is bounded by the
		// weakest shard (equal across shards for a completed commit).
		for id, serial := range serials {
			if cur, ok := s.recoveredSerials[id]; !ok || serial < cur {
				s.recoveredSerials[id] = serial
			}
		}
	}
	// Resume the token sequence past the recovered commit so new commits
	// never overwrite artifacts the live manifest chain references.
	if seq, ok := tokenSeq(man.Token); ok && seq > s.commitSeq.Load() {
		s.commitSeq.Store(seq)
	}
	s.registerStoreGauges()
	return s, nil
}

// closeShards closes the shards recovered so far ([0, n)).
func (s *Store) closeShards(n int) {
	for j := 0; j < n; j++ {
		if s.shards[j] != nil {
			s.shards[j].close()
		}
	}
}

// tokenSeq extracts the sequence number from a store-generated commit token.
func tokenSeq(token string) (uint64, bool) {
	var seq uint64
	if _, err := fmt.Sscanf(token, "ckpt-%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// recoverShard rebuilds one shard from the commit identified by token (the
// shard's latest commit when token is empty). cfg must be the shard's private
// configuration, exactly as for openShard.
func recoverShard(cfg Config, id int, traceSuffix string, metrics storeMetrics, seq *atomic.Uint64, token string) (*shard, map[string]uint64, error) {
	var meta *metadata
	var err error
	if token == "" {
		meta, err = loadLatestMetadata(cfg.Checkpoints)
	} else {
		meta, err = loadMetadata(cfg.Checkpoints, token)
	}
	if err != nil {
		return nil, nil, err
	}
	sh, err := openShard(cfg, id, traceSuffix, metrics, seq)
	if err != nil {
		return nil, nil, err
	}

	// Snapshot commits keep the captured volatile region in a separate
	// artifact; slot it back into the log's address space first (App. D).
	if meta.Kind == Snapshot.String() {
		data, err := readArtifact(cfg.Checkpoints, "snapshot-"+meta.Token)
		if err != nil {
			sh.close()
			return nil, nil, fmt.Errorf("faster: recover snapshot: %w", err)
		}
		if err := sh.log.RestoreRange(meta.SnapshotStart, data); err != nil {
			sh.close()
			return nil, nil, err
		}
	}

	// The checkpoint extended the log capture to cover the fuzzy index
	// window, so max(Lie, Lhe) is always on the device when the index was
	// taken by this commit; carried-forward indexes lie below Lhe entirely.
	end := meta.Lhe
	if meta.HasIndex && meta.Lie > end {
		end = meta.Lie
	}
	if err := sh.log.RecoverTo(end); err != nil {
		sh.close()
		return nil, nil, err
	}

	// Load the most recent fuzzy index checkpoint, or start empty and
	// replay the whole log.
	scanStart := uint64(hlog.FirstAddress)
	if meta.IndexToken != "" {
		r, err := cfg.Checkpoints.Open("index-" + meta.IndexToken)
		if err != nil {
			sh.close()
			return nil, nil, fmt.Errorf("faster: recover index: %w", err)
		}
		idx, err := readIndex(r)
		r.Close()
		if err != nil {
			sh.close()
			return nil, nil, err
		}
		sh.index = idx
		scanStart = meta.Lis
		if meta.Lhs < scanStart {
			scanStart = meta.Lhs
		}
	}

	if cfg.Replica {
		// A replica must not rewrite shipped log bytes: records ahead of the
		// recovered commit become live at the next installed commit.
		err = sh.replayReplica(scanStart, end, meta.Version)
	} else {
		err = sh.replayLog(scanStart, end, meta.Version)
		sh.recoveredScanStart = scanStart
	}
	if err != nil {
		sh.close()
		return nil, nil, err
	}

	// Clamp any index entry still pointing at or beyond the recovered end
	// (fuzzy capture of addresses whose records were lost in the crash).
	sh.clampIndex(end)

	sh.state.Store(packState(Rest, meta.Version+1))
	sh.lastIndexToken, sh.lastLis, sh.lastLie = meta.IndexToken, meta.Lis, meta.Lie
	return sh, meta.Serials, nil
}

// replayLog implements Alg. 3: records of version <= v re-point their index
// slots; records of version v+1 are invalidated, and any slot referencing
// them (or a later address) is unwound to their predecessor.
func (sh *shard) replayLog(start, end uint64, v uint32) error {
	var keyBuf []byte
	return sh.log.Scan(start, end, func(addr uint64, rec hlog.RecordRef) bool {
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		slot := sh.index.findOrCreateSlot(h)
		if !isFutureVersion(rec.Version(), v) {
			slot.Store(tagOf(h) | addr)
			return true
		}
		if err := sh.log.PersistInvalid(addr); err != nil {
			// Recovery is single-threaded; surface the first error by
			// stopping the scan (the outer call re-checks consistency).
			panic(fmt.Sprintf("faster: invalidate %d: %v", addr, err))
		}
		if entryAddr(slot.Load()) >= addr {
			prev := rec.Prev()
			if prev >= hlog.FirstAddress {
				slot.Store(tagOf(h) | prev)
			} else {
				slot.Store(0)
			}
		}
		return true
	})
}

// clampIndex clears index entries that reference addresses at or beyond the
// recovered log end (unreachable records lost in the crash).
func (sh *shard) clampIndex(end uint64) {
	clampBuckets := func(bs []bucket) {
		for i := range bs {
			for j := range bs[i].entries {
				e := bs[i].entries[j].Load()
				if e != 0 && entryAddr(e) >= end {
					bs[i].entries[j].Store(0)
				}
			}
		}
	}
	clampBuckets(sh.index.buckets)
	used := sh.index.overflowNext.Load() - 1
	for n := uint64(1); n <= used; n++ {
		b := sh.index.overflowBucket(n)
		for j := range b.entries {
			e := b.entries[j].Load()
			if e != 0 && entryAddr(e) >= end {
				b.entries[j].Store(0)
			}
		}
	}
}

func loadLatestMetadata(store interface {
	Open(string) (io.ReadCloser, error)
}) (*metadata, error) {
	tok, err := readArtifact(store, "latest")
	if err != nil {
		return nil, fmt.Errorf("faster: %w: %v", ErrNoCheckpoint, err)
	}
	return loadMetadata(store, string(tok))
}

func loadMetadata(store interface {
	Open(string) (io.ReadCloser, error)
}, token string) (*metadata, error) {
	buf, err := readArtifact(store, "meta-"+token)
	if err != nil {
		return nil, fmt.Errorf("faster: commit metadata: %w", err)
	}
	var meta metadata
	if err := json.Unmarshal(buf, &meta); err != nil {
		return nil, fmt.Errorf("faster: commit metadata: %w", err)
	}
	return &meta, nil
}

func readArtifact(store interface {
	Open(string) (io.ReadCloser, error)
}, name string) ([]byte, error) {
	r, err := store.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
