package faster

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/storage"
)

// TestFlightCommitTimeline checks the recorder captures a commit's causal
// chain end to end on a sharded store: commit-start, per-shard phase
// transitions and persist-done on every shard, then manifest-write and
// commit-done — in that causal order.
func TestFlightCommitTimeline(t *testing.T) {
	const shards = 4
	fr := obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	s, err := Open(Config{Shards: shards, IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16, Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sess := s.StartSession()
	defer sess.StopSession()
	var kb, vb [8]byte
	for i := 0; i < 256; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i))
		binary.LittleEndian.PutUint64(vb[:], uint64(i))
		if st := sess.Upsert(kb[:], vb[:]); st == Pending {
			sess.CompletePending(true)
		}
	}
	res := driveCommit(t, s, []*Session{sess}, CommitOptions{})

	evs, _ := fr.Events()
	evs = obs.FilterFlightEvents(evs, res.Token)
	idx := func(kind obs.FlightKind, shard int) int {
		for i, e := range evs {
			if e.Kind == kind && (shard == -2 || e.Shard == shard) {
				return i
			}
		}
		return -1
	}
	start := idx(obs.FlightCommitStart, -2)
	manifest := idx(obs.FlightManifestWrite, -1)
	done := idx(obs.FlightCommitDone, -1)
	if start < 0 || manifest < 0 || done < 0 {
		t.Fatalf("missing lifecycle events (start=%d manifest=%d done=%d) in %d events",
			start, manifest, done, len(evs))
	}
	if !(manifest < done) {
		t.Fatalf("commit-done (#%d) before manifest-write (#%d)", done, manifest)
	}
	for sh := 0; sh < shards; sh++ {
		pd := idx(obs.FlightPersistDone, sh)
		if pd < 0 {
			t.Fatalf("shard %d has no persist-done event", sh)
		}
		if pd > manifest {
			t.Fatalf("shard %d persist-done (#%d) after manifest-write (#%d): causality violated",
				sh, pd, manifest)
		}
		if idx(obs.FlightPhase, sh) < 0 {
			t.Fatalf("shard %d has no phase transition events", sh)
		}
	}
}

// TestFlightCrashDump arms a crash point just before the cross-shard manifest
// of the first commit is persisted, dumps the flight recorder from inside the
// callback (what a real crash handler does), and asserts causal consistency
// from the decoded dump alone: every shard had reported persist-done, and the
// commit had NOT been announced — no manifest-write, commit-done or
// commit-announced event exists. If FLIGHT_DUMP_DIR is set, the framed dump
// artifact is also written there for `fasterctl flight -dump` (the CI
// crash-dump job decodes it and greps the ordering).
func TestFlightCrashDump(t *testing.T) {
	const shards = 4
	fr := obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	inj := storage.NewInjector(storage.FaultConfig{Seed: 7, Flight: fr})
	ckpts := storage.NewFaultCheckpointStore(storage.NewMemCheckpointStore(), inj)
	s, err := Open(Config{Shards: shards, IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16,
		Flight: fr, Checkpoints: ckpts})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// The store's first commit deterministically takes token ckpt-000001.
	const token = "ckpt-000001"
	dumped := make(chan error, 1)
	inj.Arm("before:cpr-manifest-"+token, func() {
		dumped <- s.DumpFlight("crash")
	})

	sess := s.StartSession()
	defer sess.StopSession()
	var kb, vb [8]byte
	for i := 0; i < 256; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i))
		binary.LittleEndian.PutUint64(vb[:], uint64(i))
		if st := sess.Upsert(kb[:], vb[:]); st == Pending {
			sess.CompletePending(true)
		}
	}
	res := driveCommit(t, s, []*Session{sess}, CommitOptions{})
	if res.Token != token {
		t.Fatalf("first commit token %s, want %s", res.Token, token)
	}
	select {
	case err := <-dumped:
		if err != nil {
			t.Fatalf("DumpFlight: %v", err)
		}
	default:
		t.Fatal("crash point before:cpr-manifest never fired")
	}

	// Read the dump back exactly as a post-mortem tool would: verify the
	// storage envelope, then decode the flight payload.
	payload, err := storage.ReadArtifactChecked(ckpts, "flight-crash")
	if err != nil {
		t.Fatal(err)
	}
	dump, err := obs.DecodeFlightDump(payload)
	if err != nil {
		t.Fatal(err)
	}
	evs := obs.FilterFlightEvents(dump.Events, token)
	if len(evs) == 0 {
		t.Fatal("dump holds no events for the crashed commit")
	}

	persisted := map[int]bool{}
	for _, e := range evs {
		switch e.Kind {
		case obs.FlightPersistDone:
			persisted[e.Shard] = true
		case obs.FlightManifestWrite, obs.FlightCommitDone, obs.FlightCommitAnnounced:
			// The dump was taken before the manifest became durable: the
			// commit must not look complete (or announced) in the dump.
			t.Fatalf("dump taken before manifest durability contains %v", e.Kind)
		}
	}
	for sh := 0; sh < shards; sh++ {
		if !persisted[sh] {
			t.Fatalf("shard %d has no persist-done in the crash dump", sh)
		}
	}
	// The dump itself records its trigger.
	if i := func() int {
		for i, e := range dump.Events {
			if e.Kind == obs.FlightCrashPoint && e.Token == "before:cpr-manifest-"+token {
				return i
			}
		}
		return -1
	}(); i < 0 {
		t.Fatal("crash-point event missing from dump")
	}

	if dir := os.Getenv("FLIGHT_DUMP_DIR"); dir != "" {
		framed := storage.EncodeArtifact(payload)
		path := filepath.Join(dir, "flight-crash")
		if err := os.WriteFile(path, framed, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote crash dump to %s", path)
	}
}

// TestSessionLags checks the durability-lag accounting: before any commit a
// session's issued serial runs ahead of t_i = 0; after a completed commit the
// lag collapses to zero and the histograms record the window.
func TestSessionLags(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := Open(Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sess := s.StartSession()
	defer sess.StopSession()
	var kb, vb [8]byte
	for i := 0; i < 100; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i))
		binary.LittleEndian.PutUint64(vb[:], uint64(i))
		if st := sess.Upsert(kb[:], vb[:]); st == Pending {
			sess.CompletePending(true)
		}
	}

	lags := s.SessionLags()
	if len(lags) != 1 {
		t.Fatalf("got %d session lags, want 1", len(lags))
	}
	if lags[0].ID != sess.ID() {
		t.Fatalf("lag for session %s, want %s", lags[0].ID, sess.ID())
	}
	if lags[0].IssuedSerial != 100 || lags[0].CommittedSerial != 0 || lags[0].LagOps != 100 {
		t.Fatalf("pre-commit lag = %+v, want issued 100, committed 0, lag 100", lags[0])
	}

	driveCommit(t, s, []*Session{sess}, CommitOptions{})
	lags = s.SessionLags()
	if lags[0].CommittedSerial != 100 || lags[0].LagOps != 0 || lags[0].LagNanos != 0 {
		t.Fatalf("post-commit lag = %+v, want committed 100, lag 0", lags[0])
	}
	if sess.CommittedSerial() != 100 {
		t.Fatalf("CommittedSerial = %d, want 100", sess.CommittedSerial())
	}

	snap := reg.Snapshot()
	if h := snap.Histograms["faster_session_lag_ops"]; h.Count == 0 || h.MaxNanos != 0 {
		// Count must reflect the commit's observation; the session was idle
		// at commit time so issued == point and the recorded lag is 0 ops.
		if h.Count == 0 {
			t.Fatalf("faster_session_lag_ops recorded nothing: %+v", h)
		}
	}
	if h := snap.Histograms["faster_session_lag_ns"]; h.Count == 0 {
		t.Fatalf("faster_session_lag_ns recorded nothing: %+v", h)
	}
	if _, ok := snap.Gauges["faster_session_lag_ops_max"]; !ok {
		t.Fatal("faster_session_lag_ops_max gauge not registered")
	}
	if _, ok := snap.Gauges["faster_session_lag_ns_max"]; !ok {
		t.Fatal("faster_session_lag_ns_max gauge not registered")
	}
}
