package faster

import (
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/obs"
)

// shard is one CPR domain of a Store: the original single-store internals —
// latch-free hash index, HybridLog, epoch manager, pending-I/O bookkeeping
// and the five-phase checkpoint state machine — instantiated once per
// partition. Each shard runs its own instance of Fig. 9a; the Store-level
// coordinator drives all of them to a common version on Commit. A
// single-shard store behaves exactly like the pre-partitioning code.
type shard struct {
	id          int
	traceSuffix string // appended to trace tokens ("/s<i>"; empty when unsharded)

	cfg    Config
	epochs *epoch.Manager
	log    *hlog.Log
	index  *index

	// state packs the shard's phase (high 8 bits) and version (low 32 bits).
	state atomic.Uint64

	ckptMu sync.Mutex
	ckpt   *checkpointCtx // non-nil while a commit is active on this shard

	sessionMu sync.Mutex
	sessions  map[string]*shardSession

	// seq is the store-wide commit token counter, shared across shards so a
	// shard-local (uncoordinated) commit never collides with a store token.
	seq *atomic.Uint64

	// lastIndexToken/lastLis/lastLie identify the most recent fuzzy index
	// checkpoint, carried into log-only commit metadata (Sec. 6.3). Written
	// only from the single active checkpoint goroutine.
	lastIndexToken   string
	lastLis, lastLie uint64

	// results retains completed commit results by token (guarded by ckptMu).
	results map[string]CommitResult

	// onCommit, when set, fires after an uncoordinated commit completes with
	// no error (the single-shard store's replication hook; coordinated
	// commits fire at the store level instead).
	onCommit func(CommitResult)

	// commitAttach, when set, persists the store's commit-artifact
	// attachments (Store.OnCommitArtifact) once this shard's uncoordinated
	// checkpoint is durable; an error fails the commit. Coordinated commits
	// attach at the store level after the manifest instead.
	commitAttach func(CommitResult) error

	// recoveredScanStart is the address from which this shard's own recovery
	// (or promotion) rewrote log state on the device — see Store.ResyncFrom.
	// Zero when the shard was opened fresh. Written single-threaded at
	// recovery/promotion time.
	recoveredScanStart uint64

	// replicaDead tracks records shipped ahead of their commit (replica mode
	// only; see replayReplica). The replication applier serializes every
	// access externally.
	replicaDead map[uint64]bool

	// restore is non-nil while an instant restore is warming this shard's
	// buckets (Config.InstantRestore); the operation path checks it with a
	// single pointer load. restoreStats keeps the final restore statistics
	// after the shard is fully warm (restore-status survives completion).
	restore      atomic.Pointer[restoreState]
	restoreStats atomic.Pointer[RestoreShardStatus]

	metrics storeMetrics // shared across shards: store-wide operation counts
	tracer  *obs.Tracer
	flight  *obs.FlightRecorder // nil-safe; events tagged with sh.id

	// noteCommitted, when set, records a successful commit's session points
	// in the store's durability-lag metrics. Fired from the uncoordinated
	// completion path only; coordinated commits record at the store level.
	noteCommitted func(CommitResult)
}

// openShard creates one shard at version 1. cfg must already be the shard's
// private configuration (own device, namespaced checkpoints, prefixed
// metrics view — see Store.shardConfig).
func openShard(cfg Config, id int, traceSuffix string, metrics storeMetrics, seq *atomic.Uint64) (*shard, error) {
	em := epoch.New()
	em.Instrument(cfg.Metrics)
	em.InstrumentFlight(cfg.Flight, id)
	l, err := hlog.New(hlog.Config{
		PageBits:        cfg.PageBits,
		MemPages:        cfg.MemPages,
		MutableFraction: cfg.MutableFraction,
		Device:          cfg.Device,
		Epochs:          em,
		IOWorkers:       cfg.IOWorkers,
		Metrics:         cfg.Metrics,
		VerifyReads:     cfg.VerifyReads,
		Flight:          cfg.Flight,
		FlightShard:     id,
	})
	if err != nil {
		return nil, err
	}
	idx, err := newIndex(cfg.IndexBuckets, 0)
	if err != nil {
		l.Close()
		return nil, err
	}
	sh := &shard{
		id:          id,
		traceSuffix: traceSuffix,
		cfg:         cfg,
		epochs:      em,
		log:         l,
		index:       idx,
		sessions:    make(map[string]*shardSession),
		seq:         seq,
		results:     make(map[string]CommitResult),
		metrics:     metrics,
		tracer:      cfg.Tracer,
		flight:      cfg.Flight,
	}
	cfg.Metrics.GaugeFunc("faster_version", func() int64 { return int64(sh.Version()) })
	cfg.Metrics.GaugeFunc("faster_phase", func() int64 { return int64(sh.Phase()) })
	cfg.Metrics.GaugeFunc("faster_sessions", func() int64 { return int64(sh.sessionCount()) })
	sh.state.Store(packState(Rest, 1))
	return sh, nil
}

// close shuts down the shard's background I/O, cancelling any in-flight
// instant restore first (blocked operations wake with an error; the restore
// goroutine exits on its next abort check or when the closed log fails its
// reads).
func (sh *shard) close() {
	rs := sh.restore.Load()
	if rs != nil {
		rs.abort()
	}
	sh.log.Close()
	if rs != nil && rs.started {
		<-rs.finished
	}
}

// Phase returns the shard's current CPR phase.
func (sh *shard) Phase() Phase { p, _ := unpackState(sh.state.Load()); return p }

// Version returns the shard's current CPR version.
func (sh *shard) Version() uint32 { _, v := unpackState(sh.state.Load()); return v }

func (sh *shard) sessionCount() int {
	sh.sessionMu.Lock()
	defer sh.sessionMu.Unlock()
	return len(sh.sessions)
}

// waitForRest spins until the shard is at rest, driving epoch progress so an
// in-flight commit can advance even if all sessions are idle.
func (sh *shard) waitForRest() {
	for {
		if p, _ := unpackState(sh.state.Load()); p == Rest {
			return
		}
		g := sh.epochs.Acquire()
		g.Refresh()
		g.Release()
	}
}
