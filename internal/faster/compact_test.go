package faster

import (
	"encoding/binary"
	"testing"

	"repro/internal/storage"
)

func TestCompactLogReclaimsDeadVersions(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 12, MemPages: 6}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	const keys = 2000
	// Several overwrite rounds build up dead versions on the log (updates
	// to records that migrated into the read-only region force RCU copies).
	for round := uint64(1); round <= 5; round++ {
		for i := uint64(0); i < keys; i++ {
			sess.Upsert(key(i), u64(round*1000+i))
		}
	}
	// Delete a quarter of the keys.
	for i := uint64(0); i < keys; i += 4 {
		sess.Delete(key(i))
	}
	sess.CompletePending(true)
	// Let pending read-only-offset shifts become epoch-safe.
	for i := 0; i < 4; i++ {
		sess.Refresh()
	}
	until := s.shards[0].log.SafeReadOnly()
	if until <= s.shards[0].log.Begin() {
		t.Fatalf("safe read-only offset never advanced (sro=%d begin=%d tail=%d)",
			until, s.shards[0].log.Begin(), s.shards[0].log.Tail())
	}
	if err := sess.CompactLog(until); err != nil {
		t.Fatal(err)
	}
	if s.shards[0].log.Begin() != until {
		t.Fatalf("begin = %d, want %d", s.shards[0].log.Begin(), until)
	}

	// Every surviving key reads its final value; deleted keys stay dead.
	for i := uint64(0); i < keys; i++ {
		want := uint64(5000 + i)
		v, st := sess.Read(key(i), func(v []byte, s2 Status) {
			if i%4 == 0 {
				if s2 != NotFound {
					t.Errorf("deleted key %d resurrected by compaction", i)
				}
			} else if s2 != Ok || binary.LittleEndian.Uint64(v) != want {
				t.Errorf("key %d: %v %v, want %d", i, v, s2, want)
			}
		})
		switch st {
		case Pending:
			sess.CompletePending(true)
		case Ok:
			if i%4 == 0 {
				t.Fatalf("deleted key %d returned %v", i, v)
			}
			if binary.LittleEndian.Uint64(v) != want {
				t.Fatalf("key %d = %d, want %d", i, binary.LittleEndian.Uint64(v), want)
			}
		case NotFound:
			if i%4 != 0 {
				t.Fatalf("live key %d lost by compaction", i)
			}
		}
	}
}

func TestCompactLogRejectedDuringCommit(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	sess.Upsert(key(1), u64(1))
	if _, err := s.Commit(CommitOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := sess.CompactLog(s.shards[0].log.Tail()); err != ErrCommitInProgress {
		t.Fatalf("compaction during commit: err = %v, want ErrCommitInProgress", err)
	}
	for s.Phase() != Rest {
		sess.Refresh()
	}
}

func TestCompactThenCommitAndRecover(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 12, MemPages: 6,
		Device: dev, Checkpoints: ckpts}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()

	const keys = 150
	for round := uint64(1); round <= 4; round++ {
		for i := uint64(0); i < keys; i++ {
			sess.Upsert(key(i), u64(round*100+i))
		}
	}
	sess.CompletePending(true)
	if err := sess.CompactLog(s.shards[0].log.SafeReadOnly()); err != nil {
		t.Fatal(err)
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	sess.StopSession()
	s.Close()

	r, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs, _ := r.ContinueSession(id)
	defer rs.StopSession()
	for i := uint64(0); i < keys; i++ {
		want := uint64(400 + i)
		v, st := rs.Read(key(i), func(v []byte, s2 Status) {
			if s2 != Ok || binary.LittleEndian.Uint64(v) != want {
				t.Errorf("key %d after compact+commit+recover: %v %v, want %d", i, v, s2, want)
			}
		})
		if st == Pending {
			rs.CompletePending(true)
		} else if st != Ok || binary.LittleEndian.Uint64(v) != want {
			t.Fatalf("key %d = %v (%v), want %d", i, v, st, want)
		}
	}
}
