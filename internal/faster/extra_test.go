package faster

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/storage"
)

// TestTombstoneSurvivesRecovery: deletes committed before the crash must
// still read as NotFound after recovery (tombstone records recover too).
func TestTombstoneSurvivesRecovery(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := smallConfig()
	cfg.Device = dev
	cfg.Checkpoints = ckpts
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()
	for i := uint64(0); i < 100; i++ {
		sess.Upsert(key(i), u64(i))
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	// Delete evens, then commit again.
	for i := uint64(0); i < 100; i += 2 {
		sess.Delete(key(i))
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{})
	sess.StopSession()
	s.Close()

	r, err := Recover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rs, _ := r.ContinueSession(id)
	defer rs.StopSession()
	for i := uint64(0); i < 100; i++ {
		v, st := rs.Read(key(i), func(v []byte, s2 Status) {
			if i%2 == 0 && s2 != NotFound {
				t.Errorf("deleted key %d resurrected: %v", i, s2)
			}
			if i%2 == 1 && (s2 != Ok || binary.LittleEndian.Uint64(v) != i) {
				t.Errorf("key %d lost: %v", i, s2)
			}
		})
		switch st {
		case Pending:
			rs.CompletePending(true)
		case Ok:
			if i%2 == 0 {
				t.Fatalf("deleted key %d returned value %v", i, v)
			}
		case NotFound:
			if i%2 == 1 {
				t.Fatalf("live key %d missing", i)
			}
		}
	}
}

// TestStartSessionDuringCommit: a session starting while a commit is in
// flight waits out the commit (the participant set stays fixed) and then
// operates normally.
func TestStartSessionDuringCommit(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	sess.Upsert(key(1), u64(1))
	token, err := s.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var late *Session
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		late = s.StartSession() // must block until the commit finishes
	}()
	for {
		if _, ok := s.TryResult(token); ok {
			break
		}
		sess.Refresh()
	}
	wg.Wait()
	if late == nil {
		t.Fatal("late session never started")
	}
	if s.Version() != 2 {
		t.Fatalf("version = %d", s.Version())
	}
	if st := late.Upsert(key(2), u64(2)); st != Ok {
		t.Fatalf("late session upsert: %v", st)
	}
	late.StopSession()
	sess.StopSession()
}

// TestPendingReadAcrossCommit: a read that goes pending (cold record) while
// a commit is running holds its shared latch and completes as a version-v
// request; the commit must not finish before it does.
func TestPendingReadAcrossCommit(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 12, MemPages: 4}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	// Fill enough to push early keys to storage.
	for i := uint64(0); i < 3000; i++ {
		sess.Upsert(key(i), u64(i+1))
	}
	sess.CompletePending(true)
	if s.shards[0].log.InMemory(64) {
		t.Skip("data unexpectedly fits in memory")
	}
	// Issue a cold read, then immediately a commit.
	delivered := false
	_, st := sess.Read(key(0), func(v []byte, s2 Status) {
		delivered = true
		if s2 != Ok || binary.LittleEndian.Uint64(v) != 1 {
			t.Errorf("cold read: %v %v", v, s2)
		}
	})
	if st != Pending {
		t.Skipf("read completed synchronously (%v)", st)
	}
	res := driveCommit(t, s, []*Session{sess}, CommitOptions{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	sess.CompletePending(true)
	if !delivered {
		t.Fatal("pending read never completed")
	}
}

// TestUpsertGrowingValues: an in-place update that no longer fits the
// record's capacity must fall back to read-copy-update transparently.
func TestUpsertGrowingValues(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	k := key(9)
	for size := 1; size <= 256; size *= 2 {
		val := make([]byte, size)
		for i := range val {
			val[i] = byte(size)
		}
		if st := sess.Upsert(k, val); st != Ok {
			t.Fatalf("upsert size %d: %v", size, st)
		}
		got, st := sess.Read(k, nil)
		if st != Ok || len(got) != size || got[0] != byte(size) {
			t.Fatalf("read size %d: len=%d st=%v", size, len(got), st)
		}
	}
}

// TestCommitWithNoSessions: a commit on an idle store (no sessions) must
// complete on its own.
func TestCommitWithNoSessions(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	sess.Upsert(key(1), u64(1))
	sess.StopSession()

	token, err := s.Commit(CommitOptions{WithIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.WaitForCommit(token)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if s.Version() != 2 {
		t.Fatalf("version = %d", s.Version())
	}
}

// TestStopSessionMidCommitUnblocksStateMachine: if a participant stops
// during prepare, the commit must still complete.
func TestStopSessionMidCommitUnblocksStateMachine(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	active := s.StartSession()
	idle := s.StartSession() // never refreshes; will stop mid-commit
	active.Upsert(key(1), u64(1))
	idle.Upsert(key(2), u64(2))

	token, err := s.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idle.StopSession() // drops out of the participant set
	for i := 0; ; i++ {
		if res, ok := s.TryResult(token); ok {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			break
		}
		active.Refresh()
		if i > 1_000_000 {
			t.Fatalf("commit stuck in %v after participant left", s.Phase())
		}
	}
	active.StopSession()
}
