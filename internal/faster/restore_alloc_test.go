//go:build !race

package faster

import (
	"bytes"
	"testing"
)

// TestRestoreWarmHotPathAllocFree guards the instant-restore operation gate:
// once a bucket is warm, the per-op cost of an active restore must be a single
// atomic bitmap load — zero allocations. The restore state is installed by
// hand (analysis done, buckets cold) so the warm/cold transition is
// deterministic; the first read warms the bucket on demand, the steady-state
// reads after it must not allocate. CI runs this with the other AllocFree
// guards (no race detector — it instruments allocations).
func TestRestoreWarmHotPathAllocFree(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	kb := key(7)
	if st := sess.Upsert(kb, u64(77)); st != Ok {
		t.Fatalf("seed upsert: %v", st)
	}

	sh := s.shards[0]
	rs := newRestoreState(sh, "tok", 1, 0, 0)
	rs.analyzed = true // analysis done, every bucket still cold
	sh.restore.Store(rs)
	defer sh.restore.Store(nil)

	sess.BeginBatch()
	defer sess.EndBatch()
	// First touch warms the bucket (allocates the one-time bookkeeping).
	if _, st := sess.Read(kb, func(v []byte, st Status) {
		if st != Ok || !bytes.Equal(v, u64(77)) {
			t.Errorf("warming read: %v %x", st, v)
		}
	}); st != Ok {
		t.Fatalf("warming read status: %v", st)
	}
	if rs.ondemandWarms.Load() != 1 {
		t.Fatalf("bucket not warmed on demand: %d", rs.ondemandWarms.Load())
	}

	allocs := testing.AllocsPerRun(300, func() {
		if _, st := sess.Read(kb, nil); st != Ok {
			t.Fatalf("hot read status: %v", st)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm-bucket read allocates %.1f times per op, want 0", allocs)
	}
	if got := rs.blockedOps.Load(); got != 1 {
		t.Fatalf("steady-state reads hit the slow path: %d blocked ops", got)
	}
}
