package faster

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hashfn"
	"repro/internal/hlog"
)

// Status is the result of a session operation.
type Status uint8

// Operation results.
const (
	// Ok: the operation completed.
	Ok Status = iota
	// NotFound: a read or delete found no live record for the key.
	NotFound
	// Pending: the operation was queued (async I/O or CPR hand-off); it
	// completes during a later CompletePending call.
	Pending
	// Error: the operation failed (I/O error); see the callback's error.
	Error
)

// String implements fmt.Stringer.
func (st Status) String() string {
	switch st {
	case Ok:
		return "ok"
	case NotFound:
		return "not-found"
	case Pending:
		return "pending"
	}
	return "error"
}

type opKind uint8

const (
	opRead opKind = iota
	opUpsert
	opRMW
	opDelete
)

// pendingOp carries an in-flight operation: either awaiting async I/O for a
// cold record or parked by the CPR protocol (fuzzy region, latch conflict,
// version hand-off).
type pendingOp struct {
	kind    opKind
	key     []byte
	input   []byte // upsert value or RMW input
	hash    uint64
	version uint32 // CPR version this operation belongss to
	serial  uint64

	latched bool // holds a shared latch on the key's bucket (fine-grained)
	counted bool // counted in the active checkpoint's pending-v tally

	awaitingIO bool
	ioAddr     uint64
	ioRec      hlog.RecordRef
	ioErr      error
	// diskResume, when non-zero, is the next unexamined chain address on
	// storage: everything above it on this key's chain has already been
	// checked (the on-storage part of a chain is immutable, so the check
	// history stays valid across retries).
	diskResume uint64

	readCB func(val []byte, st Status)
}

// Session is a client session (Sec. 5.2): a single-goroutine handle issuing
// operations with strictly increasing serial numbers. CPR commits announce,
// per session, the serial up to which operations are durable.
type Session struct {
	store *Store
	id    string
	guard *epoch.Guard

	serial  uint64 // serial of the most recently issued operation
	phase   Phase  // local view of the global phase
	version uint32 // local view of the global version

	pending []*pendingOp
	// compMu guards completed: async I/O completions are appended by pool
	// workers and drained by CompletePending. A slice (not a channel) so a
	// slow session can never block the shared I/O pool — that would deadlock
	// sessions submitting new requests into a jammed pool.
	compMu        sync.Mutex
	completed     []*pendingOp
	outstandingIO atomic.Int64

	opsSinceRefresh int
	// abortedSerial, when non-zero, is the serial of an operation that
	// detected the CPR shift mid-execution and therefore belongs to v+1.
	abortedSerial uint64

	closed bool
}

// refreshInterval is how many operations a session performs between epoch
// refreshes (the paper's "k times" in Alg. 1).
const refreshInterval = 64

func newGUID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("faster: guid: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// StartSession registers a new client session. If a CPR commit is in flight,
// the call waits for it to finish so the commit's participant set stays
// fixed.
func (s *Store) StartSession() *Session {
	return s.startSession(newGUID(), 0)
}

// ContinueSession re-establishes a session after failure (Sec. 5.2). It
// returns the session and the serial number of its recovered CPR point: all
// operations up to that serial are durable; the client replays the rest.
func (s *Store) ContinueSession(id string) (*Session, uint64) {
	s.sessionMu.Lock()
	serial := s.recoveredSerials[id]
	s.sessionMu.Unlock()
	return s.startSession(id, serial), serial
}

func (s *Store) startSession(id string, serial uint64) *Session {
	for {
		s.sessionMu.Lock()
		s.ckptMu.Lock()
		active := s.ckpt != nil
		if !active {
			sess := &Session{
				store:  s,
				id:     id,
				serial: serial,
			}
			sess.guard = s.epochs.Acquire()
			sess.phase, sess.version = unpackState(s.state.Load())
			s.sessions[id] = sess
			s.ckptMu.Unlock()
			s.sessionMu.Unlock()
			return sess
		}
		s.ckptMu.Unlock()
		s.sessionMu.Unlock()
		// A commit is running; its participant set was snapshotted. Spin
		// until it finishes (commits are short relative to session setup).
		s.waitForRest()
	}
}

func (s *Store) waitForRest() {
	for {
		if p, _ := unpackState(s.state.Load()); p == Rest {
			return
		}
		// Drive epoch progress so the commit can advance even if all other
		// sessions are idle.
		g := s.epochs.Acquire()
		g.Refresh()
		g.Release()
	}
}

// ID returns the session's GUID.
func (sess *Session) ID() string { return sess.id }

// Serial returns the serial number of the most recently issued operation.
func (sess *Session) Serial() uint64 { return sess.serial }

// StopSession completes pending work and unregisters the session.
func (sess *Session) StopSession() {
	if sess.closed {
		return
	}
	sess.CompletePending(true)
	st := sess.store
	st.sessionMu.Lock()
	delete(st.sessions, sess.id)
	st.sessionMu.Unlock()
	st.ckptMu.Lock()
	ck := st.ckpt
	st.ckptMu.Unlock()
	if ck != nil {
		ck.dropParticipant(sess)
	}
	sess.guard.Release()
	sess.closed = true
}

// Refresh updates the session's epoch entry and synchronizes its local view
// of the CPR state machine, performing phase-entry work (Sec. 6.2): latching
// pending requests on prepare entry and demarcating the CPR point on
// in-progress entry.
func (sess *Session) Refresh() {
	st := sess.store
	gp, gv := unpackState(st.state.Load())
	if gv != sess.version {
		// The previous commit completed since our last refresh (and a new
		// one may already be active): reset to rest of the new version, then
		// process any phase entries of the active commit below — skipping
		// them would lose this session's acknowledgments.
		sess.version = gv
		sess.phase = Rest
	}
	if sess.phase == Rest && gp >= Prepare {
		sess.enterPrepare()
	}
	if sess.phase == Prepare && gp >= InProgress {
		sess.enterInProgress()
	}
	if gp > sess.phase {
		sess.phase = gp
	}
	sess.guard.Refresh()
	sess.opsSinceRefresh = 0
}

// enterPrepare performs prepare-entry work: every outstanding pending
// request of the commit version acquires a shared latch on its bucket
// (fine-grained transfer) and is counted toward the commit's pending tally.
func (sess *Session) enterPrepare() {
	st := sess.store
	st.ckptMu.Lock()
	ck := st.ckpt
	st.ckptMu.Unlock()
	if ck == nil || ck.version != sess.version {
		sess.phase = Prepare
		return
	}
	for _, op := range sess.pending {
		if op.version != sess.version || op.counted {
			continue
		}
		if st.cfg.Transfer == FineGrained && !op.latched {
			// No exclusive latches can exist yet (they appear only in
			// in-progress, which requires every session to have passed
			// prepare), so this acquisition succeeds.
			for !st.index.trySharedLatch(op.hash) {
			}
			op.latched = true
		}
		op.counted = true
		ck.pendingV.Add(1)
	}
	sess.phase = Prepare
	sess.store.tracer.Session(ck.token, sess.id, "ack-prepare", uint64(ck.version), sess.serial)
	ck.ackPrepare(sess)
}

// enterInProgress demarcates the session's CPR point: all operations with
// serial <= the recorded value are part of the commit, none after.
func (sess *Session) enterInProgress() {
	st := sess.store
	st.ckptMu.Lock()
	ck := st.ckpt
	st.ckptMu.Unlock()
	sess.phase = InProgress
	if ck == nil || ck.version != sess.version {
		return
	}
	cpr := sess.serial
	if sess.abortedSerial != 0 && sess.abortedSerial <= cpr {
		// The operation that detected the shift belongs to v+1.
		cpr = sess.abortedSerial - 1
	}
	sess.abortedSerial = 0
	sess.store.tracer.Session(ck.token, sess.id, "demarcate", uint64(ck.version), cpr)
	ck.ackInProgress(sess, cpr)
}

func (sess *Session) maybeRefresh() {
	sess.opsSinceRefresh++
	if sess.opsSinceRefresh >= refreshInterval {
		sess.Refresh()
	}
}

// targetVersion returns the CPR version new work by this session belongs to.
func (sess *Session) targetVersion() uint32 {
	if sess.phase >= InProgress {
		return sess.version + 1
	}
	return sess.version
}

// --- public operations ---

// Upsert blindly writes value for key.
func (sess *Session) Upsert(key, value []byte) Status {
	sess.store.metrics.upserts.Inc()
	sess.maybeRefresh()
	sess.serial++
	op := &pendingOp{kind: opUpsert, key: append([]byte(nil), key...),
		input: append([]byte(nil), value...), hash: hashfn.Hash64(key),
		serial: sess.serial, version: sess.targetVersion()}
	return sess.run(op)
}

// RMW applies the store's RMWOps with input to key's value.
func (sess *Session) RMW(key, input []byte) Status {
	sess.store.metrics.rmws.Inc()
	sess.maybeRefresh()
	sess.serial++
	op := &pendingOp{kind: opRMW, key: append([]byte(nil), key...),
		input: append([]byte(nil), input...), hash: hashfn.Hash64(key),
		serial: sess.serial, version: sess.targetVersion()}
	return sess.run(op)
}

// Delete removes key (writes a tombstone).
func (sess *Session) Delete(key []byte) Status {
	sess.store.metrics.deletes.Inc()
	sess.maybeRefresh()
	sess.serial++
	op := &pendingOp{kind: opDelete, key: append([]byte(nil), key...),
		hash: hashfn.Hash64(key), serial: sess.serial, version: sess.targetVersion()}
	return sess.run(op)
}

// Read returns the value for key. If the record is cold (on storage) the
// read goes pending: the value is delivered to cb (which may be nil) during
// a later CompletePending.
func (sess *Session) Read(key []byte, cb func(val []byte, st Status)) ([]byte, Status) {
	sess.store.metrics.reads.Inc()
	sess.maybeRefresh()
	sess.serial++
	op := &pendingOp{kind: opRead, key: append([]byte(nil), key...),
		hash: hashfn.Hash64(key), serial: sess.serial,
		version: sess.targetVersion(), readCB: cb}
	st := sess.run(op)
	if st == Ok {
		return op.input, Ok // run stores the read value in op.input
	}
	return nil, st
}

// maxPendingSoft is the pending-list size beyond which run drains
// completions before issuing new work, bounding in-flight state (the paper's
// clients bound their in-flight buffers similarly, Sec. 7.3.4).
const maxPendingSoft = 4096

// run executes a fresh operation, parking it on the pending list if needed.
func (sess *Session) run(op *pendingOp) Status {
	if len(sess.pending) >= maxPendingSoft {
		sess.CompletePending(false)
	}
	st := sess.doOp(op)
	if st == Pending {
		sess.store.metrics.pendings.Inc()
		sess.pending = append(sess.pending, op)
	}
	return st
}

// CompletePending drains async I/O completions and retries parked
// operations. With wait=true it loops until no operation remains pending
// (refreshing epochs while waiting so global progress continues).
func (sess *Session) CompletePending(wait bool) {
	for {
		// Drain I/O completions.
		sess.compMu.Lock()
		done := sess.completed
		sess.completed = nil
		sess.compMu.Unlock()
		for _, op := range done {
			op.awaitingIO = false
		}
		sess.outstandingIO.Add(int64(-len(done)))
		// Retry every parked op that is not awaiting I/O.
		kept := sess.pending[:0]
		for _, op := range sess.pending {
			if op.awaitingIO {
				kept = append(kept, op)
				continue
			}
			if st := sess.doOp(op); st == Pending {
				kept = append(kept, op)
			}
		}
		// Zero dropped slots so finished ops are collectable.
		for i := len(kept); i < len(sess.pending); i++ {
			sess.pending[i] = nil
		}
		sess.pending = kept
		if !wait || len(sess.pending) == 0 {
			return
		}
		sess.Refresh()
	}
}

// PendingCount reports the number of parked operations (diagnostics).
func (sess *Session) PendingCount() int { return len(sess.pending) }

// finish releases CPR resources held by a completed pending op.
func (sess *Session) finish(op *pendingOp) {
	st := sess.store
	if op.latched {
		st.index.releaseSharedLatch(op.hash)
		op.latched = false
	}
	if op.counted {
		op.counted = false
		st.ckptMu.Lock()
		ck := st.ckpt
		st.ckptMu.Unlock()
		if ck != nil {
			if ck.pendingV.Add(-1) == 0 {
				ck.checkPendingDone()
			}
		}
	}
}

// regions of the HybridLog relative to a record address.
type region uint8

const (
	regNone region = iota
	regMutable
	regFuzzy
	regSafeRO
	regDisk
)

// findResult is the outcome of a hash-chain traversal.
type findResult struct {
	slot *atomic.Uint64
	rec  hlog.RecordRef
	addr uint64
	reg  region
}

// find walks the hash chain for op's key. With skipFuture set, records of
// version op.version+1 are skipped: a version-v operation completing during
// the shift must not observe v+1 state (Sec. 6.2.3). When the walk reaches
// storage, the result region is regDisk: if the op already fetched that
// exact address, its private copy is attached; otherwise the caller must
// issue I/O for result.addr.
func (sess *Session) find(op *pendingOp, create, skipFuture bool) findResult {
	st := sess.store
	var slot *atomic.Uint64
	if create {
		slot = st.index.findOrCreateSlot(op.hash)
	} else {
		slot = st.index.findSlot(op.hash)
		if slot == nil {
			return findResult{reg: regNone}
		}
	}
	head := st.log.Head()
	ro := st.log.ReadOnly()
	sro := st.log.SafeReadOnly()
	begin := st.log.Begin()
	addr := entryAddr(slot.Load())
	for addr >= begin && addr >= hlog.FirstAddress {
		if addr < head {
			if op.ioRec.Valid() && op.ioAddr == addr {
				rec := op.ioRec
				if !rec.Invalid() &&
					!(skipFuture && isFutureVersion(rec.Version(), op.version)) &&
					rec.KeyEquals(op.key) {
					return findResult{slot: slot, rec: rec, addr: addr, reg: regDisk}
				}
				addr = rec.Prev()
				op.ioRec = hlog.RecordRef{}
				op.diskResume = addr // chain above addr fully examined
				continue
			}
			if op.diskResume != 0 && addr > op.diskResume {
				// Skip the already-examined immutable prefix of the chain.
				addr = op.diskResume
				continue
			}
			return findResult{slot: slot, addr: addr, reg: regDisk}
		}
		rec := st.log.Record(addr)
		if !rec.Invalid() &&
			!(skipFuture && isFutureVersion(rec.Version(), op.version)) &&
			rec.KeyEquals(op.key) {
			reg := regSafeRO
			switch {
			case addr >= ro:
				reg = regMutable
			case addr >= sro:
				reg = regFuzzy
			}
			return findResult{slot: slot, rec: rec, addr: addr, reg: reg}
		}
		addr = rec.Prev()
	}
	return findResult{slot: slot, reg: regNone}
}

// issueIO starts an async read for the record at addr and parks the op.
func (sess *Session) issueIO(op *pendingOp, addr uint64) Status {
	sess.store.metrics.ioReads.Inc()
	op.awaitingIO = true
	op.ioAddr = addr
	sess.outstandingIO.Add(1)
	sess.store.log.AsyncRead(addr, func(rec hlog.RecordRef, err error) {
		op.ioRec, op.ioErr = rec, err
		sess.compMu.Lock()
		sess.completed = append(sess.completed, op)
		sess.compMu.Unlock()
	})
	return Pending
}

// rcu installs a new record for op at the log tail with the given version,
// linking the entire previous chain behind it. It retries the slot CAS until
// it wins or the caller's view is stale (returns false, caller re-runs).
func (sess *Session) rcu(op *pendingOp, slot *atomic.Uint64, version uint32, value []byte, tombstone bool) bool {
	st := sess.store
	valCap := len(value)
	if valCap < 8 {
		valCap = 8 // keep small values in-place updatable
	}
	size := hlog.RecordSize(len(op.key), valCap)
	addr := st.log.Allocate(sess.guard, size)
	oldEntry := slot.Load()
	if err := st.log.WriteRecord(addr, entryAddr(oldEntry), recVersion(version), op.key, value, valCap); err != nil {
		panic(fmt.Sprintf("faster: write record: %v", err))
	}
	rec := st.log.Record(addr)
	if tombstone {
		rec.SetTombstone()
	}
	newEntry := oldEntry&^entryAddrMask | addr
	if newEntry == 0 {
		newEntry = tagOf(op.hash) | addr
	}
	if slot.CompareAndSwap(oldEntry, newEntry) {
		return true
	}
	// Lost the race: orphan the record and let the caller retry.
	rec.SetInvalid()
	return false
}
