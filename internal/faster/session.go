package faster

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hashfn"
	"repro/internal/hlog"
	"repro/internal/obs"
)

// Status is the result of a session operation.
type Status uint8

// Operation results.
const (
	// Ok: the operation completed.
	Ok Status = iota
	// NotFound: a read or delete found no live record for the key.
	NotFound
	// Pending: the operation was queued (async I/O or CPR hand-off); it
	// completes during a later CompletePending call.
	Pending
	// Error: the operation failed (I/O error); see the callback's error.
	Error
)

// String implements fmt.Stringer.
func (st Status) String() string {
	switch st {
	case Ok:
		return "ok"
	case NotFound:
		return "not-found"
	case Pending:
		return "pending"
	}
	return "error"
}

type opKind uint8

const (
	opRead opKind = iota
	opUpsert
	opRMW
	opDelete
)

// pendingOp carries an in-flight operation: either awaiting async I/O for a
// cold record or parked by the CPR protocol (fuzzy region, latch conflict,
// version hand-off).
type pendingOp struct {
	kind    opKind
	key     []byte
	input   []byte // upsert value or RMW input
	hash    uint64
	version uint32 // CPR version this operation belongss to
	serial  uint64

	latched bool // holds a shared latch on the key's bucket (fine-grained)
	counted bool // counted in the active checkpoint's pending-v tally

	awaitingIO bool
	ioAddr     uint64
	ioRec      hlog.RecordRef
	ioErr      error
	// diskResume, when non-zero, is the next unexamined chain address on
	// storage: everything above it on this key's chain has already been
	// checked (the on-storage part of a chain is immutable, so the check
	// history stays valid across retries).
	diskResume uint64

	readCB func(val []byte, st Status)
}

// Session is a client session (Sec. 5.2): a single-goroutine handle issuing
// operations with strictly increasing serial numbers. On a partitioned store
// the session holds one lightweight context per shard and routes each
// operation by key hash; the serial number stays global to the session, so
// CPR commits still announce a single per-session prefix and
// ContinueSession semantics are unchanged.
type Session struct {
	store *Store
	id    string

	// serial is the serial of the most recently issued operation. Atomic so
	// the durability-lag scans (Store.SessionLags, commit completion) can read
	// it from other goroutines; the owning goroutine is still the only writer.
	serial atomic.Uint64
	ctxs   []*shardSession

	// committedSerial/committedAtNanos track the session's durable prefix
	// t_i: updated by Store.noteCommitted whenever a commit completes, read by
	// the durability-lag metrics. demarcAtNanos is when the session last fixed
	// a CPR point, giving the wall-time component of the lag histograms.
	committedSerial  atomic.Uint64
	committedAtNanos atomic.Int64
	demarcAtNanos    atomic.Int64

	// committedToken names the commit that last advanced committedSerial —
	// the covering commit for a durability wait, cross-linking a request's
	// durwait span to the flight recorder's commit timeline. Atomic pointer:
	// written by Store.noteCommitted, read from serving goroutines.
	committedToken atomic.Pointer[string]

	// demarcVersion/demarcSerial cache the session's CPR point for commit
	// version demarcVersion: the first shard context to enter in-progress
	// computes it and every other context reuses it, so all shards demarcate
	// the same prefix for this session.
	demarcVersion uint32
	demarcSerial  uint64
	// abortedSerial, when non-zero, is the serial of an operation that
	// detected the CPR shift mid-execution and therefore belongs to v+1.
	// Consumed by cprPoint.
	abortedSerial uint64

	opsSinceRefresh int
	closed          bool

	// inBatch/opFree implement the multi-op batch entry (BeginBatch): while a
	// batch is open, synchronously-completed operations recycle their
	// pendingOp records — including key/input buffer capacity — through a
	// small per-session freelist, so the steady-state in-memory path issues
	// ops without allocating. Session ops are single-goroutine by contract,
	// so the freelist needs no locking.
	inBatch bool
	opFree  []*pendingOp
}

// opFreeMax bounds the freelist so a burst of pending-heavy batches cannot
// pin an unbounded set of retired op buffers.
const opFreeMax = 64

// shardSession is a session's per-shard context: its epoch guard on that
// shard, its local view of the shard's CPR state machine, and the pending
// operations routed to that shard.
type shardSession struct {
	store *shard
	owner *Session
	guard *epoch.Guard

	phase   Phase  // local view of the shard's phase
	version uint32 // local view of the shard's version

	pending []*pendingOp
	// compMu guards completed: async I/O completions are appended by pool
	// workers and drained by CompletePending. A slice (not a channel) so a
	// slow session can never block the shared I/O pool — that would deadlock
	// sessions submitting new requests into a jammed pool.
	compMu        sync.Mutex
	completed     []*pendingOp
	outstandingIO atomic.Int64
}

// refreshInterval is how many operations a session performs between epoch
// refreshes (the paper's "k times" in Alg. 1).
const refreshInterval = 64

func newGUID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("faster: guid: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// StartSession registers a new client session. If a CPR commit is in flight,
// the call waits for it to finish so the commit's participant set stays
// fixed.
func (s *Store) StartSession() *Session {
	return s.startSession(newGUID(), 0)
}

// ContinueSession re-establishes a session after failure (Sec. 5.2). It
// returns the session and the serial number of its recovered CPR point: all
// operations up to that serial are durable; the client replays the rest. On
// a partitioned store the recovered point is the minimum across shards — the
// largest prefix durable everywhere.
func (s *Store) ContinueSession(id string) (*Session, uint64) {
	s.mu.Lock()
	serial := s.recoveredSerials[id]
	s.mu.Unlock()
	return s.startSession(id, serial), serial
}

func (s *Store) startSession(id string, serial uint64) *Session {
	for {
		if sess, ok := s.tryStartSession(id, serial); ok {
			return sess
		}
		// A commit is running; its participant set was snapshotted. Spin
		// until it finishes (commits are short relative to session setup).
		s.waitForRest()
	}
}

// tryStartSession registers the session on every shard, or on none: all
// shard locks are held together (in shard order) so a commit can never
// snapshot a participant set containing a half-registered session.
func (s *Store) tryStartSession(id string, serial uint64) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sh := range s.shards {
		sh.sessionMu.Lock()
		sh.ckptMu.Lock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].ckptMu.Unlock()
			s.shards[i].sessionMu.Unlock()
		}
	}()
	for _, sh := range s.shards {
		if sh.ckpt != nil {
			return nil, false
		}
	}
	sess := &Session{
		store: s,
		id:    id,
		ctxs:  make([]*shardSession, len(s.shards)),
	}
	sess.serial.Store(serial)
	// Everything issued so far (the recovered prefix) is durable by
	// definition; the lag clock starts now.
	sess.committedSerial.Store(serial)
	sess.committedAtNanos.Store(nowNanos())
	for i, sh := range s.shards {
		ctx := &shardSession{store: sh, owner: sess}
		ctx.guard = sh.epochs.Acquire()
		ctx.phase, ctx.version = unpackState(sh.state.Load())
		sh.sessions[id] = ctx
		sess.ctxs[i] = ctx
	}
	s.sessions[id] = sess
	return sess, true
}

// ID returns the session's GUID.
func (sess *Session) ID() string { return sess.id }

// Serial returns the serial number of the most recently issued operation.
func (sess *Session) Serial() uint64 { return sess.serial.Load() }

// CommittedSerial returns the session's durable commit point t_i: every
// operation with serial <= t_i survives failure.
func (sess *Session) CommittedSerial() uint64 { return sess.committedSerial.Load() }

// CommittedToken returns the token of the commit that last advanced this
// session's commit point ("" before the first covering commit). A durability
// wait that observes its serial covered attributes the wait to this token.
func (sess *Session) CommittedToken() string {
	if p := sess.committedToken.Load(); p != nil {
		return *p
	}
	return ""
}

// lag computes the session's durability lag at wall-clock instant now (a
// nowNanos value). Callers hold store.mu (the session registry lock).
func (sess *Session) lag(id string, now int64) SessionLag {
	issued := sess.serial.Load()
	committed := sess.committedSerial.Load()
	l := SessionLag{ID: id, IssuedSerial: issued, CommittedSerial: committed}
	if issued > committed {
		l.LagOps = issued - committed
		if at := sess.committedAtNanos.Load(); at != 0 && now > at {
			l.LagNanos = now - at
		}
	}
	return l
}

// StopSession completes pending work and unregisters the session.
func (sess *Session) StopSession() {
	if sess.closed {
		return
	}
	sess.CompletePending(true)
	st := sess.store
	st.mu.Lock()
	delete(st.sessions, sess.id)
	st.mu.Unlock()
	for _, ctx := range sess.ctxs {
		sh := ctx.store
		sh.sessionMu.Lock()
		delete(sh.sessions, sess.id)
		sh.sessionMu.Unlock()
		sh.ckptMu.Lock()
		ck := sh.ckpt
		sh.ckptMu.Unlock()
		if ck != nil {
			ck.dropParticipant(ctx)
		}
		ctx.guard.Release()
	}
	sess.closed = true
}

// Refresh updates the session's epoch entries and synchronizes its local
// views of every shard's CPR state machine, performing phase-entry work
// (Sec. 6.2): latching pending requests on prepare entry and demarcating the
// CPR point on in-progress entry.
func (sess *Session) Refresh() {
	for _, ctx := range sess.ctxs {
		ctx.refresh()
	}
	sess.opsSinceRefresh = 0
}

// refresh synchronizes one shard context with its shard's state machine.
func (sess *shardSession) refresh() {
	sh := sess.store
	gp, gv := unpackState(sh.state.Load())
	if gv != sess.version {
		// The previous commit completed since our last refresh (and a new
		// one may already be active): reset to rest of the new version, then
		// process any phase entries of the active commit below — skipping
		// them would lose this session's acknowledgments.
		sess.version = gv
		sess.phase = Rest
	}
	if sess.phase == Rest && gp >= Prepare {
		sess.enterPrepare()
	}
	if sess.phase == Prepare && gp >= InProgress {
		sess.enterInProgress()
	}
	if gp > sess.phase {
		sess.phase = gp
	}
	sess.guard.Refresh()
}

// enterPrepare performs prepare-entry work: every outstanding pending
// request of the commit version acquires a shared latch on its bucket
// (fine-grained transfer) and is counted toward the commit's pending tally.
func (sess *shardSession) enterPrepare() {
	sh := sess.store
	sh.ckptMu.Lock()
	ck := sh.ckpt
	sh.ckptMu.Unlock()
	if ck == nil || ck.version != sess.version {
		sess.phase = Prepare
		return
	}
	for _, op := range sess.pending {
		if op.version != sess.version || op.counted {
			continue
		}
		if sh.cfg.Transfer == FineGrained && !op.latched {
			// No exclusive latches can exist yet (they appear only in
			// in-progress, which requires every session to have passed
			// prepare), so this acquisition succeeds.
			for !sh.index.trySharedLatch(op.hash) {
			}
			op.latched = true
		}
		op.counted = true
		ck.pendingV.Add(1)
	}
	sess.phase = Prepare
	serial := sess.owner.serial.Load()
	sh.flight.Emit(obs.FlightAckPrepare, sh.id, uint64(ck.version), ck.token, sess.owner.id, serial, 0)
	sh.tracer.Session(ck.traceToken, sess.owner.id, "ack-prepare", uint64(ck.version), serial)
	ck.ackPrepare(sess)
}

// enterInProgress demarcates the session's CPR point on this shard: all
// operations with serial <= the recorded value are part of the commit, none
// after. The point itself is computed once per version at the session level
// (cprPoint), so every shard demarcates the same prefix.
func (sess *shardSession) enterInProgress() {
	sh := sess.store
	sh.ckptMu.Lock()
	ck := sh.ckpt
	sh.ckptMu.Unlock()
	sess.phase = InProgress
	if ck == nil || ck.version != sess.version {
		return
	}
	cpr := sess.owner.cprPoint(sess.version)
	sh.flight.Emit(obs.FlightDemarcate, sh.id, uint64(ck.version), ck.token, sess.owner.id, cpr, 0)
	sh.tracer.Session(ck.traceToken, sess.owner.id, "demarcate", uint64(ck.version), cpr)
	ck.ackInProgress(sess, cpr)
}

// cprPoint returns the session's commit point for version v, computing it on
// first use — by whichever shard context first enters in-progress — and
// reusing the cached value for every other shard, so the cross-shard commit
// demarcates a single consistent prefix.
func (sess *Session) cprPoint(v uint32) uint64 {
	if sess.demarcVersion == v {
		return sess.demarcSerial
	}
	cpr := sess.serial.Load()
	if sess.abortedSerial != 0 && sess.abortedSerial <= cpr {
		// The operation that detected the shift belongs to v+1.
		cpr = sess.abortedSerial - 1
	}
	sess.abortedSerial = 0
	sess.demarcVersion, sess.demarcSerial = v, cpr
	sess.demarcAtNanos.Store(nowNanos())
	return cpr
}

func (sess *Session) maybeRefresh() {
	sess.opsSinceRefresh++
	if sess.opsSinceRefresh >= refreshInterval {
		sess.Refresh()
	}
}

// BeginBatch enters the session's batch mode for a run of pipelined
// operations (the kvserver BATCH frame): one epoch refresh up front covers
// the whole run — amortizing epoch protection across the batch instead of
// paying the per-op bookkeeping — and completed operations recycle their op
// records and buffers through the session freelist, making the in-memory hot
// path allocation-free. The per-refreshInterval refresh still fires inside
// very large batches so CPR commits never stall on a busy session.
//
// While a batch is open, the value slice returned by Read is valid only
// until the session's next operation (it aliases a recycled buffer); callers
// must consume or copy it immediately. EndBatch restores the default
// caller-owns-the-value semantics.
func (sess *Session) BeginBatch() {
	sess.Refresh()
	sess.inBatch = true
}

// EndBatch leaves batch mode. Pending (cold-read) operations, if any remain,
// are still completed by CompletePending as usual.
func (sess *Session) EndBatch() {
	sess.inBatch = false
}

// newOp returns a pendingOp populated for a fresh operation. In batch mode it
// reuses a retired record from the freelist, growing its key/input buffers in
// place; otherwise it allocates, preserving the caller-owned-buffer semantics
// of non-batch reads.
func (sess *Session) newOp(kind opKind, key, input []byte, h uint64) *pendingOp {
	if n := len(sess.opFree); sess.inBatch && n > 0 {
		op := sess.opFree[n-1]
		sess.opFree[n-1] = nil
		sess.opFree = sess.opFree[:n-1]
		k := append(op.key[:0], key...)
		in := append(op.input[:0], input...)
		*op = pendingOp{kind: kind, key: k, input: in, hash: h}
		return op
	}
	return &pendingOp{kind: kind, key: append([]byte(nil), key...),
		input: append([]byte(nil), input...), hash: h}
}

// recycle retires a synchronously-completed op to the freelist. Only called
// in batch mode, and never for parked (Pending) ops — those own their buffers
// until their callbacks have run, and are simply left to the GC.
func (sess *Session) recycle(op *pendingOp) {
	if len(sess.opFree) < opFreeMax {
		op.readCB = nil
		sess.opFree = append(sess.opFree, op)
	}
}

// targetVersion returns the CPR version new work on this shard belongs to.
// Once the session has demarcated its commit point for the shard's current
// version (via any shard), fresh work is v+1 even if this shard's local
// shift has not completed — otherwise an operation past the commit point
// could slip into the commit and break the prefix guarantee.
func (sess *shardSession) targetVersion() uint32 {
	if sess.phase >= InProgress || sess.owner.demarcVersion == sess.version {
		return sess.version + 1
	}
	return sess.version
}

// ctx returns the shard context an operation with the given key hash routes
// to.
func (sess *Session) ctx(hash uint64) *shardSession {
	return sess.ctxs[sess.store.shardOf(hash)]
}

// --- public operations ---

// Upsert blindly writes value for key.
func (sess *Session) Upsert(key, value []byte) Status {
	sess.store.metrics.upserts.Inc()
	sess.maybeRefresh()
	serial := sess.serial.Add(1)
	h := hashfn.Hash64(key)
	ctx := sess.ctx(h)
	op := sess.newOp(opUpsert, key, value, h)
	op.serial, op.version = serial, ctx.targetVersion()
	return ctx.run(op)
}

// RMW applies the store's RMWOps with input to key's value.
func (sess *Session) RMW(key, input []byte) Status {
	sess.store.metrics.rmws.Inc()
	sess.maybeRefresh()
	serial := sess.serial.Add(1)
	h := hashfn.Hash64(key)
	ctx := sess.ctx(h)
	op := sess.newOp(opRMW, key, input, h)
	op.serial, op.version = serial, ctx.targetVersion()
	return ctx.run(op)
}

// Delete removes key (writes a tombstone).
func (sess *Session) Delete(key []byte) Status {
	sess.store.metrics.deletes.Inc()
	sess.maybeRefresh()
	serial := sess.serial.Add(1)
	h := hashfn.Hash64(key)
	ctx := sess.ctx(h)
	op := sess.newOp(opDelete, key, nil, h)
	op.serial, op.version = serial, ctx.targetVersion()
	return ctx.run(op)
}

// Read returns the value for key. If the record is cold (on storage) the
// read goes pending: the value is delivered to cb (which may be nil) during
// a later CompletePending. In batch mode (BeginBatch) the returned slice is
// valid only until the session's next operation.
func (sess *Session) Read(key []byte, cb func(val []byte, st Status)) ([]byte, Status) {
	sess.store.metrics.reads.Inc()
	sess.maybeRefresh()
	serial := sess.serial.Add(1)
	h := hashfn.Hash64(key)
	ctx := sess.ctx(h)
	op := sess.newOp(opRead, key, nil, h)
	op.serial, op.version, op.readCB = serial, ctx.targetVersion(), cb
	st := ctx.run(op)
	if st == Ok {
		return op.input, Ok // run stores the read value in op.input
	}
	return nil, st
}

// maxPendingSoft is the pending-list size beyond which run drains
// completions before issuing new work, bounding in-flight state (the paper's
// clients bound their in-flight buffers similarly, Sec. 7.3.4).
const maxPendingSoft = 4096

// run executes a fresh operation, parking it on the pending list if needed.
// In batch mode, synchronously-completed ops go back to the session freelist
// (their buffers stay valid until the next operation reuses them).
func (sess *shardSession) run(op *pendingOp) Status {
	// Instant restore: a cold bucket must be warmed before any operation in
	// it executes. One nil pointer load on the post-restore hot path; while
	// restoring, one atomic bitmap load for warm buckets. The slow path
	// BLOCKS the session goroutine (never parks the op as Pending): a later
	// same-session op completing first would break session ordering. Parked
	// ops retried by completeOnce bypass this gate safely — they passed it
	// when first issued, and warm is sticky.
	if rs := sess.store.restore.Load(); rs != nil {
		if err := rs.ensureWarm(op.hash); err != nil {
			if op.readCB != nil {
				op.readCB(nil, Error)
			}
			if sess.owner.inBatch {
				sess.owner.recycle(op)
			}
			return Error
		}
	}
	if len(sess.pending) >= maxPendingSoft {
		sess.completeOnce()
	}
	st := sess.doOp(op)
	if st == Pending {
		sess.store.metrics.pendings.Inc()
		sess.pending = append(sess.pending, op)
	} else if sess.owner.inBatch {
		sess.owner.recycle(op)
	}
	return st
}

// CompletePending drains async I/O completions and retries parked
// operations on every shard. With wait=true it loops until no operation
// remains pending (refreshing epochs while waiting so global progress
// continues).
func (sess *Session) CompletePending(wait bool) {
	for {
		remaining := 0
		for _, ctx := range sess.ctxs {
			ctx.completeOnce()
			remaining += len(ctx.pending)
		}
		if !wait || remaining == 0 {
			return
		}
		sess.Refresh()
	}
}

// completeOnce performs one drain-and-retry pass over the shard context's
// pending operations.
func (sess *shardSession) completeOnce() {
	// Drain I/O completions.
	sess.compMu.Lock()
	done := sess.completed
	sess.completed = nil
	sess.compMu.Unlock()
	for _, op := range done {
		op.awaitingIO = false
	}
	sess.outstandingIO.Add(int64(-len(done)))
	// Retry every parked op that is not awaiting I/O.
	kept := sess.pending[:0]
	for _, op := range sess.pending {
		if op.awaitingIO {
			kept = append(kept, op)
			continue
		}
		if st := sess.doOp(op); st == Pending {
			kept = append(kept, op)
		}
	}
	// Zero dropped slots so finished ops are collectable.
	for i := len(kept); i < len(sess.pending); i++ {
		sess.pending[i] = nil
	}
	sess.pending = kept
}

// PendingCount reports the number of parked operations (diagnostics).
func (sess *Session) PendingCount() int {
	n := 0
	for _, ctx := range sess.ctxs {
		n += len(ctx.pending)
	}
	return n
}

// finish releases CPR resources held by a completed pending op.
func (sess *shardSession) finish(op *pendingOp) {
	sh := sess.store
	if op.latched {
		sh.index.releaseSharedLatch(op.hash)
		op.latched = false
	}
	if op.counted {
		op.counted = false
		sh.ckptMu.Lock()
		ck := sh.ckpt
		sh.ckptMu.Unlock()
		if ck != nil {
			if ck.pendingV.Add(-1) == 0 {
				ck.checkPendingDone()
			}
		}
	}
}

// regions of the HybridLog relative to a record address.
type region uint8

const (
	regNone region = iota
	regMutable
	regFuzzy
	regSafeRO
	regDisk
)

// findResult is the outcome of a hash-chain traversal.
type findResult struct {
	slot *atomic.Uint64
	rec  hlog.RecordRef
	addr uint64
	reg  region
}

// find walks the hash chain for op's key. With skipFuture set, records of
// version op.version+1 are skipped: a version-v operation completing during
// the shift must not observe v+1 state (Sec. 6.2.3). When the walk reaches
// storage, the result region is regDisk: if the op already fetched that
// exact address, its private copy is attached; otherwise the caller must
// issue I/O for result.addr.
func (sess *shardSession) find(op *pendingOp, create, skipFuture bool) findResult {
	sh := sess.store
	var slot *atomic.Uint64
	if create {
		slot = sh.index.findOrCreateSlot(op.hash)
	} else {
		slot = sh.index.findSlot(op.hash)
		if slot == nil {
			return findResult{reg: regNone}
		}
	}
	head := sh.log.Head()
	ro := sh.log.ReadOnly()
	sro := sh.log.SafeReadOnly()
	begin := sh.log.Begin()
	addr := entryAddr(slot.Load())
	for addr >= begin && addr >= hlog.FirstAddress {
		if addr < head {
			if op.ioRec.Valid() && op.ioAddr == addr {
				rec := op.ioRec
				if !rec.Invalid() &&
					!(skipFuture && isFutureVersion(rec.Version(), op.version)) &&
					rec.KeyEquals(op.key) {
					return findResult{slot: slot, rec: rec, addr: addr, reg: regDisk}
				}
				addr = rec.Prev()
				op.ioRec = hlog.RecordRef{}
				op.diskResume = addr // chain above addr fully examined
				continue
			}
			if op.diskResume != 0 && addr > op.diskResume {
				// Skip the already-examined immutable prefix of the chain.
				addr = op.diskResume
				continue
			}
			return findResult{slot: slot, addr: addr, reg: regDisk}
		}
		rec := sh.log.Record(addr)
		if !rec.Invalid() &&
			!(skipFuture && isFutureVersion(rec.Version(), op.version)) &&
			rec.KeyEquals(op.key) {
			reg := regSafeRO
			switch {
			case addr >= ro:
				reg = regMutable
			case addr >= sro:
				reg = regFuzzy
			}
			return findResult{slot: slot, rec: rec, addr: addr, reg: reg}
		}
		addr = rec.Prev()
	}
	return findResult{slot: slot, reg: regNone}
}

// issueIO starts an async read for the record at addr and parks the op.
func (sess *shardSession) issueIO(op *pendingOp, addr uint64) Status {
	sess.store.metrics.ioReads.Inc()
	op.awaitingIO = true
	op.ioAddr = addr
	sess.outstandingIO.Add(1)
	sess.store.log.AsyncRead(addr, func(rec hlog.RecordRef, err error) {
		op.ioRec, op.ioErr = rec, err
		sess.compMu.Lock()
		sess.completed = append(sess.completed, op)
		sess.compMu.Unlock()
	})
	return Pending
}

// rcu installs a new record for op at the log tail with the given version,
// linking the entire previous chain behind it. It retries the slot CAS until
// it wins or the caller's view is stale (returns false, caller re-runs).
func (sess *shardSession) rcu(op *pendingOp, slot *atomic.Uint64, version uint32, value []byte, tombstone bool) bool {
	sh := sess.store
	valCap := len(value)
	if valCap < 8 {
		valCap = 8 // keep small values in-place updatable
	}
	size := hlog.RecordSize(len(op.key), valCap)
	addr := sh.log.Allocate(sess.guard, size)
	oldEntry := slot.Load()
	if err := sh.log.WriteRecord(addr, entryAddr(oldEntry), recVersion(version), op.key, value, valCap); err != nil {
		panic(fmt.Sprintf("faster: write record: %v", err))
	}
	rec := sh.log.Record(addr)
	if tombstone {
		rec.SetTombstone()
	}
	newEntry := oldEntry&^entryAddrMask | addr
	if newEntry == 0 {
		newEntry = tagOf(op.hash) | addr
	}
	if slot.CompareAndSwap(oldEntry, newEntry) {
		return true
	}
	// Lost the race: orphan the record and let the caller retry.
	rec.SetInvalid()
	return false
}
