package faster

import (
	"encoding/json"
	"fmt"

	"repro/internal/hashfn"
	"repro/internal/hlog"
	"repro/internal/storage"
)

// This file is the store-side half of CPR-consistent replication
// (internal/repl): hooks and queries the primary-side shipper needs, and the
// incremental install path a replica uses to advance its visible state from
// one committed CPR prefix to the next.
//
// The invariant throughout: a replica's visible state is always exactly the
// state of one completed commit of the primary. Log bytes stream ahead of
// commits (they are staged, not visible), and records of the in-flight next
// version that ride along in the durable tail are neutralized *non
// destructively* — in memory for resident records, via a dead-address set for
// records below the head — because the very next installed commit makes them
// live. Only Promote, which ends replication, persists their invalidation:
// that is the paper's recovery treatment, applied at the last installed
// commit instead of the last local one.

// ErrNotReplica is returned by replica-only operations on a store that was
// not opened with Config.Replica.
var ErrNotReplica = fmt.Errorf("faster: store is not a replica (Config.Replica unset)")

// Checkpoints exposes the store's checkpoint artifact store (the replication
// shipper reads commit artifacts through it).
func (s *Store) Checkpoints() storage.CheckpointStore { return s.cfg.Checkpoints }

// RecoveredPoint returns the CPR point recovered (or installed, on a replica)
// for session id: the serial up to which that session's operations are
// durable. Zero for unknown sessions.
func (s *Store) RecoveredPoint(id string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recoveredSerials[id]
}

// RecoveredPoints returns a copy of every known session's recovered CPR
// point.
func (s *Store) RecoveredPoints() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.recoveredSerials))
	for id, pt := range s.recoveredSerials {
		out[id] = pt
	}
	return out
}

// OnCommit registers fn to run (from the checkpoint goroutine) after every
// successfully completed commit, in completion order. The replication server
// uses this as its manifest-completion hook: when fn fires, every artifact of
// the commit is durable in the checkpoint store.
func (s *Store) OnCommit(fn func(CommitResult)) {
	s.hookMu.Lock()
	s.commitHooks = append(s.commitHooks, fn)
	s.hookMu.Unlock()
	if len(s.shards) == 1 {
		s.shards[0].onCommit = s.fireCommitHooks
	}
}

// fireCommitHooks invokes the registered commit hooks.
func (s *Store) fireCommitHooks(res CommitResult) {
	s.hookMu.Lock()
	hooks := s.commitHooks
	s.hookMu.Unlock()
	for _, fn := range hooks {
		fn(res)
	}
}

// LatestCommitToken returns the token of the most recent completed commit
// recorded in the checkpoint store, or ok=false when no commit exists yet.
func (s *Store) LatestCommitToken() (string, bool) {
	name := "latest"
	if s.cfg.Shards > 1 {
		name = "cpr-latest"
	}
	tok, err := storage.ReadArtifactChecked(s.cfg.Checkpoints, name)
	if err != nil || len(tok) == 0 {
		return "", false
	}
	return string(tok), true
}

// ShipInfo describes what a replica needs to install one completed commit:
// the artifact names to copy and, per shard, how much of the log must be on
// the replica's device first.
type ShipInfo struct {
	Token   string
	Version uint32
	Kind    CommitKind
	// Artifacts are checkpoint-store names (parent namespace) whose contents
	// are immutable once the commit completed. Pointer artifacts ("latest",
	// "cpr-latest") are deliberately excluded: a replica writes its own
	// pointers at install time, so its local state is always recoverable.
	Artifacts []string
	// ShardEnds is, per shard, the log address the install covers (the
	// replica's log tail after installing).
	ShardEnds []uint64
	// ShardFloors is, per shard, the device coverage the replica needs from
	// the log stream before installing: equal to ShardEnds for fold-over
	// commits; the snapshot start for snapshot commits (the rest comes from
	// the snapshot artifact).
	ShardFloors []uint64
}

// CommitShipInfo assembles the ShipInfo for a completed commit.
func (s *Store) CommitShipInfo(token string) (*ShipInfo, error) {
	info := &ShipInfo{Token: token}
	multi := s.cfg.Shards > 1
	for i, sh := range s.shards {
		meta, err := loadMetadata(sh.cfg.Checkpoints, token)
		if err != nil {
			return nil, fmt.Errorf("faster: ship info shard %d: %w", i, err)
		}
		prefix := ""
		if multi {
			prefix = fmt.Sprintf("shard%d/", i)
		}
		info.Version = meta.Version
		info.Artifacts = append(info.Artifacts, prefix+"meta-"+token)
		if artifactExists(sh.cfg.Checkpoints, "pagecrc-"+token) {
			// Page checksums ride along so the replica can verify its own
			// artifacts on restart. Absent only for pre-integrity commits.
			info.Artifacts = append(info.Artifacts, prefix+"pagecrc-"+token)
		}
		if meta.IndexToken != "" {
			info.Artifacts = append(info.Artifacts, prefix+"index-"+meta.IndexToken)
		}
		end := meta.Lhe
		if meta.HasIndex && meta.Lie > end {
			end = meta.Lie
		}
		floor := end
		if meta.Kind == Snapshot.String() {
			info.Kind = Snapshot
			info.Artifacts = append(info.Artifacts, prefix+"snapshot-"+token)
			floor = meta.SnapshotStart
		}
		info.ShardEnds = append(info.ShardEnds, end)
		info.ShardFloors = append(info.ShardFloors, floor)
	}
	if multi {
		info.Artifacts = append(info.Artifacts, "cpr-manifest-"+token)
	}
	return info, nil
}

// artifactExists reports whether the named artifact can be opened.
func artifactExists(cs storage.CheckpointStore, name string) bool {
	r, err := cs.Open(name)
	if err != nil {
		return false
	}
	r.Close()
	return true
}

// ResyncFrom reports, per shard, the address from which this store's own
// recovery rewrote log state (invalidating uncommitted records on the
// device). A replica that replicated from the pre-crash instance must
// re-stream from here so its device copy matches post-recovery reality. Zero
// for stores opened fresh (nothing was rewritten).
func (s *Store) ResyncFrom(i int) uint64 { return s.shards[i].recoveredScanStart }

// ApplyCommitted advances a replica store's visible state to the completed
// commit identified by token. The commit's artifacts must already be in the
// store's checkpoint store and each shard's device must hold the streamed
// log prefix the commit covers (ShardFloors of the primary's ShipInfo).
//
// The caller must serialize ApplyCommitted against ReadCommitted and any
// sessions — the replication applier holds a write lock across installs.
func (s *Store) ApplyCommitted(token string) error {
	if !s.cfg.Replica {
		return ErrNotReplica
	}
	if s.cfg.Shards > 1 {
		buf, err := storage.ReadArtifactChecked(s.cfg.Checkpoints, "cpr-manifest-"+token)
		if err != nil {
			return fmt.Errorf("faster: install manifest: %w", err)
		}
		var man manifest
		if err := json.Unmarshal(buf, &man); err != nil {
			return fmt.Errorf("faster: install manifest: %w", err)
		}
		if man.Shards != s.cfg.Shards {
			return fmt.Errorf("faster: manifest has %d shards, replica has %d", man.Shards, s.cfg.Shards)
		}
	}
	for i, sh := range s.shards {
		meta, err := loadMetadata(sh.cfg.Checkpoints, token)
		if err != nil {
			return fmt.Errorf("faster: install shard %d: %w", i, err)
		}
		if err := sh.applyCommitted(meta); err != nil {
			return fmt.Errorf("faster: install shard %d: %w", i, err)
		}
		s.mu.Lock()
		for id, serial := range meta.Serials {
			if i == 0 {
				s.recoveredSerials[id] = serial
			} else if cur, ok := s.recoveredSerials[id]; !ok || serial < cur {
				// Min-merge across shards (equal for a completed commit).
				s.recoveredSerials[id] = serial
			}
		}
		s.mu.Unlock()
	}
	// Persist the local pointer last: the replica's on-disk state only ever
	// references fully installed commits, so a replica restart recovers at an
	// all-shard-durable manifest by construction.
	name := "latest"
	if s.cfg.Shards > 1 {
		name = "cpr-latest"
	}
	if err := storage.WriteArtifactChecked(s.cfg.Checkpoints, name, []byte(token)); err != nil {
		return fmt.Errorf("faster: install pointer: %w", err)
	}
	if seq, ok := tokenSeq(token); ok && seq > s.commitSeq.Load() {
		s.commitSeq.Store(seq)
	}
	return nil
}

// applyCommitted installs one commit on one shard: slot the snapshot capture
// back (if any), extend the log to the commit's end, and replay the fresh
// range — plus any previously skipped future records, now committed — into
// the index.
func (sh *shard) applyCommitted(meta *metadata) error {
	if v := sh.Version(); meta.Version < v {
		return nil // stale announcement (already past this commit)
	}
	end := meta.Lhe
	if meta.HasIndex && meta.Lie > end {
		end = meta.Lie
	}
	if meta.Kind == Snapshot.String() {
		data, err := storage.ReadArtifactChecked(sh.cfg.Checkpoints, "snapshot-"+meta.Token)
		if err != nil {
			return fmt.Errorf("install snapshot: %w", err)
		}
		if err := sh.log.RestoreRange(meta.SnapshotStart, data); err != nil {
			return err
		}
	}
	prevEnd := sh.log.Tail()
	start := prevEnd
	// Records skipped as future at the previous install are committed by this
	// one (or still future at their original address): re-replay from the
	// lowest of them.
	for addr := range sh.replicaDead {
		if addr < start {
			start = addr
		}
	}
	if err := sh.log.RecoverTo(end); err != nil {
		return err
	}
	sh.replicaDead = nil
	if err := sh.replayReplica(start, end, meta.Version); err != nil {
		return err
	}
	sh.clampIndex(end)
	sh.state.Store(packState(Rest, meta.Version+1))
	sh.lastIndexToken, sh.lastLis, sh.lastLie = meta.IndexToken, meta.Lis, meta.Lie
	return nil
}

// replayReplica is the non-destructive variant of replayLog (Alg. 3) used on
// replicas: records of version v+1 — shipped ahead of their commit — are
// neutralized without touching the device (in-memory invalid bit when
// resident, dead-address set otherwise), because the next installed commit
// revives them simply by reloading frames from the device and re-replaying.
func (sh *shard) replayReplica(start, end uint64, v uint32) error {
	var keyBuf []byte
	head := sh.log.Head()
	return sh.log.Scan(start, end, func(addr uint64, rec hlog.RecordRef) bool {
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		slot := sh.index.findOrCreateSlot(h)
		if isFutureVersion(rec.Version(), v) {
			if sh.replicaDead == nil {
				sh.replicaDead = make(map[uint64]bool)
			}
			sh.replicaDead[addr] = true
			if addr >= head {
				// Resident: the in-memory invalid bit hides it from chain
				// walks; the device copy stays pristine for later installs.
				sh.log.Record(addr).SetInvalid()
			}
			if entryAddr(slot.Load()) >= addr {
				prev := rec.Prev()
				if prev >= hlog.FirstAddress {
					slot.Store(tagOf(h) | prev)
				} else {
					slot.Store(0)
				}
			}
			return true
		}
		// Committed records — including ones the primary's own recovery
		// invalidated (the read path skips them but the chain stays walkable)
		// — re-point their slots, exactly as in replayLog.
		slot.Store(tagOf(h) | addr)
		return true
	})
}

// Promote finalizes a replica store for read-write service after failover:
// every record still pending its commit is persistently invalidated — the
// standard recovery treatment (Alg. 3), applied at the last installed
// commit — and the store stops being a replica. Sessions may then be
// continued exactly as after single-node recovery: clients learn their
// installed CPR points and replay from there.
func (s *Store) Promote() error {
	if !s.cfg.Replica {
		return ErrNotReplica
	}
	for _, sh := range s.shards {
		var minDead uint64
		for addr := range sh.replicaDead {
			if err := sh.log.PersistInvalid(addr); err != nil {
				return fmt.Errorf("faster: promote shard %d: invalidate %d: %w", sh.id, addr, err)
			}
			if minDead == 0 || addr < minDead {
				minDead = addr
			}
		}
		if minDead != 0 {
			// Promotion rewrote device state from here on; replicas of this
			// newly promoted primary must re-stream the range (ResyncFrom).
			sh.recoveredScanStart = minDead
		}
		sh.replicaDead = nil
		sh.cfg.Replica = false
	}
	s.cfg.Replica = false
	return nil
}

// IsReplica reports whether the store is (still) a replica target.
func (s *Store) IsReplica() bool { return s.cfg.Replica }

// ReadCommitted performs a sessionless point read of the store's current
// visible state. On a replica this is the last installed commit — a
// committed CPR prefix of the primary — which is what the replica read path
// serves. The caller must serialize it against ApplyCommitted (the
// replication applier's read lock).
func (s *Store) ReadCommitted(key []byte) ([]byte, bool, error) {
	h := hashfn.Hash64(key)
	sh := s.shards[s.shardOf(h)]
	g := sh.epochs.Acquire()
	defer g.Release()
	slot := sh.index.findSlot(h)
	if slot == nil {
		return nil, false, nil
	}
	begin := sh.log.Begin()
	head := sh.log.Head()
	addr := entryAddr(slot.Load())
	for addr >= begin && addr >= hlog.FirstAddress {
		var rec hlog.RecordRef
		if addr >= head {
			rec = sh.log.Record(addr)
		} else {
			var err error
			rec, err = sh.log.ReadRecordSync(addr)
			if err != nil {
				return nil, false, err
			}
		}
		if rec.Header() == 0 {
			return nil, false, nil // unwritten region (below a shipped prefix)
		}
		if !rec.Invalid() && !sh.replicaDead[addr] && rec.KeyEquals(key) {
			if rec.Tombstone() {
				return nil, false, nil
			}
			return rec.Value(nil), true, nil
		}
		addr = rec.Prev()
	}
	return nil, false, nil
}
