package faster

import "repro/internal/hlog"

// This file implements the per-operation CPR logic of Algs. 4 and 5 (App. B)
// plus the coarse-grained variant of App. C, executed against one shard via
// the session's per-shard context:
//
//   - rest:        normal FASTER processing, records carry the rest version.
//   - prepare:     operations belong to commit version v; encountering a
//                  v+1 record or a failed shared-latch acquisition means the
//                  CPR shift has begun (the op aborts to v+1 and the session
//                  refreshes immediately) — unless the session has already
//                  demarcated version v on another shard, in which case the
//                  op must stay at v and completes with wait-pending
//                  semantics instead.
//   - in-progress / wait-pending / wait-flush: fresh operations belong to
//                  v+1 and must never update a version-≤v record in place;
//                  the hand-off is guarded by bucket latches (fine-grained)
//                  or the safe-read-only marker (coarse-grained).
//   - v-completions: pending version-v operations (async I/O, fuzzy-region
//                  parks) complete as version v during later phases, holding
//                  their shared latches until done.

// statusRetry is an internal sentinel: re-run the dispatch loop.
const statusRetry Status = 255

// doOp drives one operation to a terminal status or Pending.
func (sess *shardSession) doOp(op *pendingOp) Status {
	if op.ioErr != nil {
		sess.finish(op)
		if op.readCB != nil {
			op.readCB(nil, Error)
		}
		return Error
	}
	for {
		st := sess.dispatch(op)
		if st == statusRetry {
			continue
		}
		if st != Pending {
			sess.finish(op)
			if op.kind == opRead && op.readCB != nil {
				if st == Ok {
					op.readCB(op.input, Ok)
				} else {
					op.readCB(nil, st)
				}
			}
		}
		return st
	}
}

func (sess *shardSession) dispatch(op *pendingOp) Status {
	if op.version < sess.version {
		// The commit this op belonged to has fully completed (its pending
		// work drained before wait-flush); treat it as current-version work.
		op.version = sess.version
	}
	switch {
	case sess.phase == Rest || op.version > sess.version:
		if op.version > sess.version {
			return sess.processFuture(op)
		}
		return sess.processNormal(op)
	case sess.phase == Prepare && !op.counted:
		return sess.processPrepare(op)
	default:
		// A version-v operation completing while the commit is past prepare
		// (or a counted pending op retried during prepare).
		return sess.processVCompletion(op)
	}
}

// initialValue computes the value a missing-key update writes.
func (sess *shardSession) initialValue(op *pendingOp) []byte {
	if op.kind == opRMW {
		return sess.store.cfg.RMW.Initial(op.input)
	}
	return op.input
}

// updatedValue computes the RCU value from an existing record.
func (sess *shardSession) updatedValue(op *pendingOp, rec hlog.RecordRef) []byte {
	if op.kind == opUpsert {
		return op.input
	}
	if rec.Tombstone() {
		return sess.initialValue(op)
	}
	return sess.store.cfg.RMW.Update(rec.Value(nil), op.input)
}

// processNormal is the rest-phase path: in-place updates in the mutable
// region, read-copy-update below the safe-read-only offset, pending parks in
// the fuzzy region, async I/O below the head offset (Sec. 5.1).
func (sess *shardSession) processNormal(op *pendingOp) Status {
	r := sess.find(op, op.kind != opRead, false)
	if op.kind == opRead {
		return sess.finishRead(op, r)
	}
	switch r.reg {
	case regNone:
		if op.kind == opDelete {
			return NotFound
		}
		if !sess.rcu(op, r.slot, op.version, sess.initialValue(op), false) {
			return statusRetry
		}
		return Ok
	case regMutable:
		if st, ok := sess.tryInPlace(op, r); ok {
			return st
		}
		fallthrough // capacity exceeded or tombstoned: read-copy-update
	case regSafeRO:
		return sess.rcuFrom(op, r, op.version)
	case regFuzzy:
		return Pending
	case regDisk:
		if r.rec.Valid() {
			return sess.rcuFrom(op, r, op.version)
		}
		if op.kind == opUpsert || op.kind == opDelete {
			// Blind update: no need to fetch the old record.
			return sess.rcuFrom(op, r, op.version)
		}
		return sess.issueIO(op, r.addr)
	}
	return statusRetry
}

// tryInPlace performs an in-place mutable-region update; ok=false means the
// caller must fall back to read-copy-update.
func (sess *shardSession) tryInPlace(op *pendingOp, r findResult) (Status, bool) {
	switch op.kind {
	case opDelete:
		r.rec.SetTombstone()
		return Ok, true
	case opUpsert:
		if r.rec.Tombstone() {
			return Error, false
		}
		if r.rec.SetValue(op.input) {
			return Ok, true
		}
		return Error, false
	case opRMW:
		if r.rec.Tombstone() {
			return Error, false
		}
		rmw := sess.store.cfg.RMW
		if r.rec.UpdateValue(func(cur []byte) []byte { return rmw.Update(cur, op.input) }) {
			return Ok, true
		}
		return Error, false
	}
	return Error, false
}

// rcuFrom performs a read-copy-update: the new record's value derives from
// the found record (or the initial value for tombstones/blind paths).
func (sess *shardSession) rcuFrom(op *pendingOp, r findResult, version uint32) Status {
	var val []byte
	tombstone := op.kind == opDelete
	switch {
	case tombstone:
		val = nil
	case r.rec.Valid():
		val = sess.updatedValue(op, r.rec)
	default:
		val = sess.initialValue(op)
	}
	if !sess.rcu(op, r.slot, version, val, tombstone) {
		return statusRetry
	}
	return Ok
}

// processPrepare handles a fresh version-v operation in the prepare phase
// (Alg. 4). Fine-grained transfer takes a shared bucket latch around the
// whole operation; detecting the shift (latch failure or a v+1 record)
// aborts the op to v+1 and refreshes immediately.
//
// On a partitioned store the session may already have demarcated version v
// via another shard's in-progress entry. Such an op must NOT abort to v+1
// (its serial is at or below the session's CPR point, so it belongs to the
// committing prefix): shift signals are ignored and the op completes as
// version v with wait-pending semantics, exactly like a counted pending op.
// A single-shard store never takes this path — the session cannot demarcate
// before its only context leaves prepare.
func (sess *shardSession) processPrepare(op *pendingOp) Status {
	st := sess.store
	demarcated := sess.owner.demarcVersion == sess.version
	fine := st.cfg.Transfer == FineGrained
	if fine && !op.latched {
		if !st.index.trySharedLatch(op.hash) {
			if demarcated {
				return Pending
			}
			return sess.shiftDetected(op)
		}
		op.latched = true
	}
	r := sess.find(op, op.kind != opRead, demarcated)
	if !demarcated && r.rec.Valid() && isFutureVersion(r.rec.Version(), sess.version) {
		return sess.shiftDetected(op)
	}
	if op.kind == opRead {
		s := sess.finishRead(op, r)
		if s == Pending {
			sess.markCounted(op)
		}
		return s
	}
	switch r.reg {
	case regNone:
		if op.kind == opDelete {
			return NotFound
		}
		if !sess.rcu(op, r.slot, op.version, sess.initialValue(op), false) {
			return statusRetry
		}
		return Ok
	case regMutable:
		if s, ok := sess.tryInPlace(op, r); ok {
			return s
		}
		fallthrough
	case regSafeRO:
		return sess.rcuFrom(op, r, op.version)
	case regFuzzy:
		sess.markCounted(op)
		return Pending
	case regDisk:
		if r.rec.Valid() || op.kind == opUpsert || op.kind == opDelete {
			return sess.rcuFrom(op, r, op.version)
		}
		sess.markCounted(op)
		return sess.issueIO(op, r.addr)
	}
	return statusRetry
}

// markCounted registers op in the active commit's pending-v tally; such
// operations must complete before the commit's wait-flush phase.
func (sess *shardSession) markCounted(op *pendingOp) {
	if op.counted {
		return
	}
	ck := sess.currentCkpt()
	if ck == nil || ck.version != op.version {
		return
	}
	op.counted = true
	ck.pendingV.Add(1)
}

func (sess *shardSession) currentCkpt() *checkpointCtx {
	sh := sess.store
	sh.ckptMu.Lock()
	ck := sh.ckpt
	sh.ckptMu.Unlock()
	return ck
}

// shiftDetected implements the CPR_SHIFT_DETECTED path of Alg. 4: release
// any latch, remember that this serial belongs to v+1, refresh (entering
// in-progress), and retry the op as a v+1 operation.
func (sess *shardSession) shiftDetected(op *pendingOp) Status {
	if op.latched {
		sess.store.index.releaseSharedLatch(op.hash)
		op.latched = false
	}
	sess.owner.abortedSerial = op.serial
	sess.owner.Refresh()
	op.version = sess.targetVersion()
	return statusRetry
}

// processVCompletion completes a version-v operation during or after the
// version shift (wait-pending semantics, Sec. 6.2.3). The walk skips v+1
// records — they are not part of this op's commit — and new records are
// written with version v. The op's shared latch (fine-grained) is released
// by finish() when the op leaves the pending list.
func (sess *shardSession) processVCompletion(op *pendingOp) Status {
	r := sess.find(op, op.kind != opRead, true)
	if op.kind == opRead {
		return sess.finishRead(op, r)
	}
	switch r.reg {
	case regNone:
		if op.kind == opDelete {
			return NotFound
		}
		if !sess.rcu(op, r.slot, op.version, sess.initialValue(op), false) {
			return statusRetry
		}
		return Ok
	case regMutable:
		// Still version-v work: the in-place update is part of the commit.
		// Fine-grained: our shared latch excludes v+1 copies on this bucket.
		// Coarse-grained: a shadowing v+1 record cannot exist (v+1 copies
		// happen only below the safe-read-only offset; this record is above).
		if s, ok := sess.tryInPlace(op, r); ok {
			return s
		}
		fallthrough
	case regSafeRO:
		return sess.rcuFrom(op, r, op.version)
	case regFuzzy:
		return Pending
	case regDisk:
		if r.rec.Valid() || op.kind == opUpsert || op.kind == opDelete {
			return sess.rcuFrom(op, r, op.version)
		}
		return sess.issueIO(op, r.addr)
	}
	return statusRetry
}

// processFuture handles a v+1 operation during in-progress, wait-pending, or
// wait-flush (Alg. 5). Updates to version-≤v records are handed off via
// read-copy-update, guarded by the exclusive bucket latch (fine-grained) or
// the safe-read-only marker (coarse-grained) so no v+1 record is installed
// while a pending v operation on the bucket could still complete.
func (sess *shardSession) processFuture(op *pendingOp) Status {
	st := sess.store
	r := sess.find(op, op.kind != opRead, false)
	if op.kind == opRead {
		return sess.finishRead(op, r)
	}
	if r.reg == regNone {
		if op.kind == opDelete {
			return NotFound
		}
		if !sess.rcu(op, r.slot, op.version, sess.initialValue(op), false) {
			return statusRetry
		}
		return Ok
	}
	if r.rec.Valid() && isFutureVersion(r.rec.Version(), sess.version) {
		// Already a v+1 record: process by region, as in rest.
		switch r.reg {
		case regMutable:
			if s, ok := sess.tryInPlace(op, r); ok {
				return s
			}
			return sess.rcuFrom(op, r, op.version)
		case regFuzzy:
			return Pending
		default: // safe read-only or disk copy in hand
			return sess.rcuFrom(op, r, op.version)
		}
	}
	// Version-≤v record (or cold record of unknown version): hand-off.
	// On a partitioned store a demarcated session can issue v+1 operations
	// while THIS shard is still in rest or prepare; park them until the
	// shard's own state machine reaches in-progress (the hand-off gates
	// below assume the version shift has been published here). Unreachable
	// on a single-shard store: op.version > sess.version implies the shard
	// entered in-progress, and processFuture runs only for such ops.
	if sess.phase < InProgress {
		return Pending
	}
	if r.reg == regDisk && !r.rec.Valid() {
		if op.kind == opRMW {
			return sess.issueIO(op, r.addr)
		}
		// Blind updates still respect the hand-off gates below, with no
		// record value needed.
	}
	if st.cfg.Transfer == FineGrained {
		switch sess.phase {
		case InProgress:
			if !st.index.tryExclusiveLatch(op.hash) {
				return Pending
			}
			s := sess.rcuFrom(op, r, op.version)
			st.index.releaseExclusiveLatch(op.hash)
			return s
		case WaitPending:
			if st.index.sharedCount(op.hash) != 0 {
				return Pending
			}
			return sess.rcuFrom(op, r, op.version)
		default: // WaitFlush or stale view after commit completion
			return sess.rcuFrom(op, r, op.version)
		}
	}
	// Coarse-grained (App. C): copy only records already below the
	// safe-read-only marker; for cold records, wait until no pending v
	// operation can exist (wait-flush or later).
	switch r.reg {
	case regSafeRO:
		return sess.rcuFrom(op, r, op.version)
	case regDisk:
		if sess.phase >= WaitFlush {
			return sess.rcuFrom(op, r, op.version)
		}
		return Pending
	default: // mutable or fuzzy v record
		return Pending
	}
}

// finishRead resolves a read against a find result, delivering the value via
// op.input (and, for previously pending reads, the registered callback).
func (sess *shardSession) finishRead(op *pendingOp, r findResult) Status {
	switch r.reg {
	case regNone:
		return NotFound
	case regDisk:
		if !r.rec.Valid() {
			return sess.issueIO(op, r.addr)
		}
	}
	if r.rec.Tombstone() {
		return NotFound
	}
	op.input = r.rec.Value(op.input[:0])
	return Ok
}
