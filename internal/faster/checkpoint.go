package faster

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// CommitOptions configures a single CPR commit.
type CommitOptions struct {
	// WithIndex also takes a fuzzy checkpoint of the hash index (a "full"
	// commit, Sec. 7.3.1). Log-only commits recover by replaying a longer
	// log suffix from the most recent index checkpoint.
	WithIndex bool
	// Kind overrides the store's default commit kind when non-nil.
	Kind *CommitKind
	// OnDone, if set, is invoked (from the checkpoint goroutine) when the
	// commit becomes durable, with the per-session CPR points.
	OnDone func(res CommitResult)
}

// CommitResult describes a completed CPR commit.
type CommitResult struct {
	Token   string
	Version uint32
	Kind    CommitKind
	// Serials maps each participating session ID to its CPR point: every
	// operation with serial <= Serials[id] is durable, none after.
	Serials map[string]uint64
	// Bytes is the volume written for this commit (log + snapshot + index).
	Bytes int64
	Err   error
}

// checkpointCtx tracks one in-flight CPR commit.
type checkpointCtx struct {
	store   *Store
	version uint32
	kind    CommitKind
	opts    CommitOptions
	token   string

	// coord collects the per-session acknowledgments that drive the first
	// two transitions of Fig. 9a and the sessions' CPR points.
	coord *core.Coordinator[*Session]

	pendingV atomic.Int64
	flushing atomic.Bool
	started  time.Time

	lhs, lhe      uint64
	lis, lie      uint64
	snapshotStart uint64

	done chan struct{}
	res  CommitResult
}

// metadata is the persisted commit descriptor.
type metadata struct {
	Token         string            `json:"token"`
	Version       uint32            `json:"version"`
	Kind          string            `json:"kind"`
	Lhs           uint64            `json:"log_start"`
	Lhe           uint64            `json:"log_end"`
	Lis           uint64            `json:"index_start"`
	Lie           uint64            `json:"index_end"`
	SnapshotStart uint64            `json:"snapshot_start"`
	HasIndex      bool              `json:"has_index"`
	IndexToken    string            `json:"index_token"`
	Serials       map[string]uint64 `json:"serials"`
}

// ErrCommitInProgress is returned when Commit is called while another commit
// has not yet completed.
var ErrCommitInProgress = fmt.Errorf("faster: a CPR commit is already in progress")

// Commit starts an asynchronous CPR commit (Sec. 6.2) and returns its token
// immediately. The commit proceeds through prepare, in-progress,
// wait-pending and wait-flush as sessions refresh; opts.OnDone fires when
// the checkpoint is durable. Use WaitForCommit to block.
func (s *Store) Commit(opts CommitOptions) (string, error) {
	s.sessionMu.Lock()
	s.ckptMu.Lock()
	if s.ckpt != nil {
		s.ckptMu.Unlock()
		s.sessionMu.Unlock()
		return "", ErrCommitInProgress
	}
	if p, _ := unpackState(s.state.Load()); p != Rest {
		s.ckptMu.Unlock()
		s.sessionMu.Unlock()
		return "", ErrCommitInProgress
	}
	kind := s.cfg.Kind
	if opts.Kind != nil {
		kind = *opts.Kind
	}
	ck := &checkpointCtx{
		store:   s,
		version: s.Version(),
		kind:    kind,
		opts:    opts,
		token:   fmt.Sprintf("ckpt-%06d", s.commitSeq.Add(1)),
		started: time.Now(),
		done:    make(chan struct{}),
	}
	ck.coord = core.NewCoordinator[*Session](ck.advanceToInProgress, ck.advanceToWaitPending)
	for _, sess := range s.sessions {
		ck.coord.Add(sess)
	}
	ck.lhs = s.log.Tail()
	s.ckpt = ck
	// Publish the prepare phase; sessions observe it on refresh.
	s.state.Store(packState(Prepare, ck.version))
	s.tracer.Phase(ck.token, uint64(ck.version), Rest.String(), Prepare.String())
	ck.bumpTraced(Prepare)
	s.ckptMu.Unlock()
	s.sessionMu.Unlock()
	// With zero participants the seal completes both transitions at once.
	ck.coord.Seal()
	return ck.token, nil
}

// WaitForCommit blocks until the commit identified by token completes and
// returns its result. It must not be called from a session's own goroutine
// unless other sessions keep refreshing (the commit needs every session to
// acknowledge the version shift).
func (s *Store) WaitForCommit(token string) CommitResult {
	s.ckptMu.Lock()
	ck := s.ckpt
	if ck == nil || ck.token != token {
		res, ok := s.results[token]
		s.ckptMu.Unlock()
		if ok {
			return res
		}
		return CommitResult{Token: token, Err: fmt.Errorf("faster: unknown commit %q", token)}
	}
	s.ckptMu.Unlock()
	<-ck.done
	return ck.res
}

// TryResult returns the result of a completed commit without blocking. ok is
// false while the commit is still in flight (or the token is unknown).
func (s *Store) TryResult(token string) (CommitResult, bool) {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	res, ok := s.results[token]
	return res, ok
}

// ackPrepare records that one participant finished its prepare-entry work;
// the last acknowledgment advances the machine to in-progress (transition 2
// of Fig. 9a).
func (ck *checkpointCtx) ackPrepare(sess *Session) {
	ck.coord.AckPrepare(sess)
}

// bumpTraced bumps the epoch for a phase publication, recording the drain
// latency (how long until every registered thread observed the phase) in the
// store's tracer.
func (ck *checkpointCtx) bumpTraced(published Phase) {
	s := ck.store
	t0 := time.Now()
	s.epochs.BumpEpoch(func() {
		s.tracer.Drain(ck.token, published.String(), uint64(ck.version), time.Since(t0))
	})
}

func (ck *checkpointCtx) advanceToInProgress() {
	ck.store.state.Store(packState(InProgress, ck.version))
	ck.store.tracer.Phase(ck.token, uint64(ck.version), Prepare.String(), InProgress.String())
	ck.bumpTraced(InProgress)
}

// ackInProgress records a session's CPR point (transition 3 of Fig. 9a).
func (ck *checkpointCtx) ackInProgress(sess *Session, cprSerial uint64) {
	ck.coord.Demarcate(sess, cprSerial)
}

func (ck *checkpointCtx) advanceToWaitPending() {
	ck.store.state.Store(packState(WaitPending, ck.version))
	ck.store.tracer.Phase(ck.token, uint64(ck.version), InProgress.String(), WaitPending.String())
	ck.checkPendingDone()
}

// dropParticipant removes a stopping session from the commit; a session that
// leaves before demarcating contributes everything it issued (it can issue
// nothing further).
func (ck *checkpointCtx) dropParticipant(sess *Session) {
	sameVersion := sess.version == ck.version
	ck.store.tracer.Session(ck.token, sess.id, "drop", uint64(ck.version), sess.serial)
	ck.coord.Drop(sess,
		sameVersion && sess.phase >= Prepare,
		sameVersion && sess.phase >= InProgress,
		sess.serial)
}

// serialsByID converts the coordinator's per-session commit points to the
// session-ID keyed map persisted in commit metadata.
func (ck *checkpointCtx) serialsByID() map[string]uint64 {
	points := ck.coord.Points()
	out := make(map[string]uint64, len(points))
	for sess, pt := range points {
		out[sess.id] = pt
	}
	return out
}

// checkPendingDone advances wait-pending → wait-flush once every pending
// version-v request has completed (transition 4 of Fig. 9a).
func (ck *checkpointCtx) checkPendingDone() {
	if p, _ := unpackState(ck.store.state.Load()); p != WaitPending {
		return
	}
	if ck.pendingV.Load() != 0 {
		return
	}
	if ck.flushing.Swap(true) {
		return
	}
	ck.store.state.Store(packState(WaitFlush, ck.version))
	ck.store.tracer.Phase(ck.token, uint64(ck.version), WaitPending.String(), WaitFlush.String())
	go ck.waitFlush()
}

// waitFlush captures version v durably (transition 5 of Fig. 9a): fold-over
// shifts the read-only offset to the tail and waits for the flush; snapshot
// writes the volatile log region to a separate artifact. Then the metadata
// (including per-session CPR points) is persisted and the store returns to
// rest at version v+1.
func (ck *checkpointCtx) waitFlush() {
	s := ck.store
	var bytes int64
	var err error

	// Record the commit's log end, then take the fuzzy index checkpoint (if
	// requested) before capturing the log: the capture is extended to cover
	// [Lhe, Lie) so that recovery's Alg. 3 scan range max(Lie, Lhe) is fully
	// on the device and v+1 records referenced by fuzzy index entries can be
	// invalidated and chased back to their committed predecessors.
	ck.lhe = s.log.Tail()
	indexToken := ""
	if ck.opts.WithIndex {
		ck.lis = s.log.Tail()
		indexToken = ck.token
		w, cerr := s.cfg.Checkpoints.Create("index-" + ck.token)
		err = cerr
		if err == nil {
			cw := &countingWriter{w: w}
			err = s.index.writeTo(cw)
			if cerr := w.Close(); err == nil {
				err = cerr
			}
			bytes += cw.n
		}
		ck.lie = s.log.Tail()
	} else {
		// Carry the most recent index checkpoint forward so log-only
		// commits can recover by replaying from it (Sec. 6.3).
		indexToken, ck.lis, ck.lie = s.lastIndexToken, s.lastLis, s.lastLie
	}
	captureEnd := ck.lhe
	if ck.opts.WithIndex && ck.lie > captureEnd {
		captureEnd = ck.lie
	}

	if err == nil {
		switch ck.kind {
		case FoldOver:
			s.log.ShiftReadOnlyTo(captureEnd)
			// Drive epoch progress ourselves so the shift's trigger action
			// and flush run even if every session is momentarily idle.
			g := s.epochs.Acquire()
			for s.log.Durable() < captureEnd {
				g.Refresh()
				time.Sleep(50 * time.Microsecond)
			}
			g.Release()
			bytes += int64(captureEnd - ck.lhs)
		case Snapshot:
			ck.snapshotStart = s.log.Durable()
			data := s.log.SnapshotRange(ck.snapshotStart, captureEnd)
			err = ck.writeArtifact("snapshot-"+ck.token, data)
			bytes += int64(len(data))
		}
	}

	serials := ck.serialsByID()
	if err == nil {
		meta := metadata{
			Token: ck.token, Version: ck.version, Kind: ck.kind.String(),
			Lhs: ck.lhs, Lhe: ck.lhe, Lis: ck.lis, Lie: ck.lie,
			SnapshotStart: ck.snapshotStart,
			HasIndex:      ck.opts.WithIndex, IndexToken: indexToken,
			Serials: serials,
		}
		var buf []byte
		buf, err = json.Marshal(meta)
		if err == nil {
			err = ck.writeArtifact("meta-"+ck.token, buf)
		}
		if err == nil {
			err = ck.writeArtifact("latest", []byte(ck.token))
		}
		if err == nil && ck.opts.WithIndex {
			s.lastIndexToken, s.lastLis, s.lastLie = indexToken, ck.lis, ck.lie
		}
	}

	ck.res = CommitResult{
		Token: ck.token, Version: ck.version, Kind: ck.kind,
		Serials: serials, Bytes: bytes, Err: err,
	}
	// Return to rest at version v+1 and detach the context.
	s.ckptMu.Lock()
	s.ckpt = nil
	if s.results == nil {
		s.results = make(map[string]CommitResult)
	}
	s.results[ck.token] = ck.res
	s.state.Store(packState(Rest, ck.version+1))
	s.ckptMu.Unlock()
	s.tracer.Phase(ck.token, uint64(ck.version), WaitFlush.String(), Rest.String())
	ck.bumpTraced(Rest)
	if err == nil {
		s.metrics.commits.Inc()
		s.metrics.commitBytes.Add(uint64(bytes))
		s.metrics.commitNs.Observe(time.Since(ck.started))
	}
	close(ck.done)
	if ck.opts.OnDone != nil {
		ck.opts.OnDone(ck.res)
	}
}

func (ck *checkpointCtx) writeArtifact(name string, data []byte) error {
	w, err := ck.store.cfg.Checkpoints.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

type countingWriter struct {
	w interface{ Write([]byte) (int, error) }
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
