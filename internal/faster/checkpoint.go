package faster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// CommitOptions configures a single CPR commit.
type CommitOptions struct {
	// WithIndex also takes a fuzzy checkpoint of the hash index (a "full"
	// commit, Sec. 7.3.1). Log-only commits recover by replaying a longer
	// log suffix from the most recent index checkpoint.
	WithIndex bool
	// Kind overrides the store's default commit kind when non-nil.
	Kind *CommitKind
	// OnDone, if set, is invoked (from the checkpoint goroutine) when the
	// commit becomes durable, with the per-session CPR points.
	OnDone func(res CommitResult)
}

// CommitResult describes a completed CPR commit.
type CommitResult struct {
	Token   string
	Version uint32
	Kind    CommitKind
	// Serials maps each participating session ID to its CPR point: every
	// operation with serial <= Serials[id] is durable, none after. On a
	// partitioned store this is the same point on every shard (the session
	// demarcates once per version).
	Serials map[string]uint64
	// Bytes is the volume written for this commit (log + snapshot + index,
	// summed across shards).
	Bytes int64
	Err   error
}

// checkpointCtx tracks one in-flight CPR commit on a single shard.
type checkpointCtx struct {
	store   *shard
	version uint32
	kind    CommitKind
	opts    CommitOptions
	token   string
	// traceToken is token plus the shard's trace suffix, so the per-shard
	// state machines of a coordinated commit stay distinguishable in the
	// shared tracer.
	traceToken string
	// coordinated marks a shard-level leg of a cross-shard commit: the
	// store-level coordinator owns the merged result, commit metrics and
	// OnDone callback.
	coordinated bool

	// coord collects the per-session acknowledgments that drive the first
	// two transitions of Fig. 9a and the sessions' CPR points.
	coord *core.Coordinator[*shardSession]

	pendingV atomic.Int64
	flushing atomic.Bool
	started  time.Time

	lhs, lhe      uint64
	lis, lie      uint64
	snapshotStart uint64

	done chan struct{}
	res  CommitResult
}

// metadata is the persisted commit descriptor (one per shard).
type metadata struct {
	Token         string            `json:"token"`
	Version       uint32            `json:"version"`
	Kind          string            `json:"kind"`
	Lhs           uint64            `json:"log_start"`
	Lhe           uint64            `json:"log_end"`
	Lis           uint64            `json:"index_start"`
	Lie           uint64            `json:"index_end"`
	SnapshotStart uint64            `json:"snapshot_start"`
	HasIndex      bool              `json:"has_index"`
	IndexToken    string            `json:"index_token"`
	Serials       map[string]uint64 `json:"serials"`
}

// manifest is the persisted descriptor of a cross-shard commit. It is
// written only after every shard's checkpoint is durable, so its existence
// under "cpr-latest" proves the version is recoverable on all shards; a
// crash that leaves some shards committed and others not falls back to the
// previous manifest.
type manifest struct {
	Token   string `json:"token"`
	Version uint32 `json:"version"`
	Shards  int    `json:"shards"`
	Kind    string `json:"kind"`
}

// multiCommit tracks one in-flight cross-shard commit at the store level.
type multiCommit struct {
	token   string
	version uint32
	opts    CommitOptions
	started time.Time
	done    chan struct{}
	res     CommitResult
}

// ErrCommitInProgress is returned when Commit is called while another commit
// has not yet completed.
var ErrCommitInProgress = fmt.Errorf("faster: a CPR commit is already in progress")

// Commit starts an asynchronous CPR commit (Sec. 6.2) and returns its token
// immediately. On a partitioned store one token and version cover every
// shard: the coordinator starts all shard state machines concurrently and
// the commit completes — manifest written, OnDone fired — only when every
// shard is durable at that version. Use WaitForCommit to block.
func (s *Store) Commit(opts CommitOptions) (string, error) {
	// An instant restore must finish warming first: a checkpoint taken over
	// cold buckets would capture an index missing their suffix records, and
	// recovering from it would lose them.
	if s.Restoring() {
		return "", ErrRestoring
	}
	if len(s.shards) == 1 {
		return s.shards[0].commit(opts, "")
	}
	s.mu.Lock()
	s.ckptMu.Lock()
	if s.multi != nil {
		s.ckptMu.Unlock()
		s.mu.Unlock()
		return "", ErrCommitInProgress
	}
	for _, sh := range s.shards {
		if p, _ := unpackState(sh.state.Load()); p != Rest {
			s.ckptMu.Unlock()
			s.mu.Unlock()
			return "", ErrCommitInProgress
		}
	}
	token := fmt.Sprintf("ckpt-%06d", s.commitSeq.Add(1))
	mc := &multiCommit{
		token:   token,
		version: s.shards[0].Version(),
		opts:    opts,
		started: time.Now(),
		done:    make(chan struct{}),
	}
	shOpts := opts
	shOpts.OnDone = nil // the store-level coordinator fires the merged OnDone
	for _, sh := range s.shards {
		if _, err := sh.commit(shOpts, token); err != nil {
			// Unreachable under the store-level serialization of commits;
			// surface it rather than wedge (already-started shards complete
			// on their own and the manifest is never written).
			s.ckptMu.Unlock()
			s.mu.Unlock()
			return "", err
		}
	}
	s.multi = mc
	s.ckptMu.Unlock()
	s.mu.Unlock()
	go s.finishMultiCommit(mc)
	return token, nil
}

// finishMultiCommit waits for every shard's leg of the commit, merges the
// per-shard results, and — only if all shards are durable — publishes the
// cross-shard manifest that makes the commit recoverable.
func (s *Store) finishMultiCommit(mc *multiCommit) {
	var bytes int64
	var firstErr error
	var kind CommitKind
	serials := make(map[string]uint64)
	for _, sh := range s.shards {
		r := sh.waitForCommit(mc.token)
		if r.Err != nil && firstErr == nil {
			firstErr = fmt.Errorf("faster: shard %d commit: %w", sh.id, r.Err)
		}
		bytes += r.Bytes
		kind = r.Kind
		for id, pt := range r.Serials {
			if cur, ok := serials[id]; !ok || pt < cur {
				serials[id] = pt
			}
		}
	}
	if firstErr == nil {
		man := manifest{Token: mc.token, Version: mc.version, Shards: len(s.shards), Kind: kind.String()}
		buf, err := json.Marshal(man)
		if err == nil {
			err = writeArtifactFlight(s.cfg.Checkpoints, "cpr-manifest-"+mc.token, buf, s.cfg.Flight, -1, mc.version)
		}
		if err == nil {
			err = writeArtifactFlight(s.cfg.Checkpoints, "cpr-latest", []byte(mc.token), s.cfg.Flight, -1, mc.version)
		}
		if err == nil {
			// The manifest and latest-pointer are durable: the commit is now
			// recoverable on every shard.
			s.cfg.Flight.Emit(obs.FlightManifestWrite, -1, uint64(mc.version), mc.token, "", 0, 0)
			err = s.writeCommitAttachments(CommitResult{
				Token: mc.token, Version: mc.version, Kind: kind, Serials: serials,
			})
		}
		firstErr = err
	}
	mc.res = CommitResult{
		Token: mc.token, Version: mc.version, Kind: kind,
		Serials: serials, Bytes: bytes, Err: firstErr,
	}
	s.ckptMu.Lock()
	s.results[mc.token] = mc.res
	s.multi = nil
	s.ckptMu.Unlock()
	if firstErr == nil {
		s.metrics.commits.Inc()
		s.metrics.commitBytes.Add(uint64(bytes))
		s.metrics.commitNs.Observe(time.Since(mc.started))
		s.cfg.Flight.Emit(obs.FlightCommitDone, -1, uint64(mc.version), mc.token, "", uint64(bytes), 0)
		s.noteCommitted(mc.res)
	} else {
		s.metrics.commitFailures.Inc()
		s.cfg.Flight.Emit(obs.FlightCommitFail, -1, uint64(mc.version), mc.token, "", 0, 0)
	}
	close(mc.done)
	if mc.opts.OnDone != nil {
		mc.opts.OnDone(mc.res)
	}
	if firstErr == nil {
		s.fireCommitHooks(mc.res)
	}
}

// WaitForCommit blocks until the commit identified by token completes and
// returns its result. It must not be called from a session's own goroutine
// unless other sessions keep refreshing (the commit needs every session to
// acknowledge the version shift).
func (s *Store) WaitForCommit(token string) CommitResult {
	if len(s.shards) == 1 {
		return s.shards[0].waitForCommit(token)
	}
	s.ckptMu.Lock()
	mc := s.multi
	if mc == nil || mc.token != token {
		res, ok := s.results[token]
		s.ckptMu.Unlock()
		if ok {
			return res
		}
		return CommitResult{Token: token, Err: fmt.Errorf("faster: unknown commit %q", token)}
	}
	s.ckptMu.Unlock()
	<-mc.done
	return mc.res
}

// TryResult returns the result of a completed commit without blocking. ok is
// false while the commit is still in flight (or the token is unknown).
func (s *Store) TryResult(token string) (CommitResult, bool) {
	if len(s.shards) == 1 {
		return s.shards[0].tryResult(token)
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	res, ok := s.results[token]
	return res, ok
}

// commit starts this shard's CPR state machine. token == "" (an
// uncoordinated, single-shard commit) allocates the next store token;
// otherwise the shard joins the cross-shard commit under the given token.
func (sh *shard) commit(opts CommitOptions, token string) (string, error) {
	coordinated := token != ""
	sh.sessionMu.Lock()
	sh.ckptMu.Lock()
	if sh.restore.Load() != nil {
		sh.ckptMu.Unlock()
		sh.sessionMu.Unlock()
		return "", ErrRestoring
	}
	if sh.ckpt != nil {
		sh.ckptMu.Unlock()
		sh.sessionMu.Unlock()
		return "", ErrCommitInProgress
	}
	if p, _ := unpackState(sh.state.Load()); p != Rest {
		sh.ckptMu.Unlock()
		sh.sessionMu.Unlock()
		return "", ErrCommitInProgress
	}
	kind := sh.cfg.Kind
	if opts.Kind != nil {
		kind = *opts.Kind
	}
	if !coordinated {
		token = fmt.Sprintf("ckpt-%06d", sh.seq.Add(1))
	}
	ck := &checkpointCtx{
		store:       sh,
		version:     sh.Version(),
		kind:        kind,
		opts:        opts,
		token:       token,
		traceToken:  token + sh.traceSuffix,
		coordinated: coordinated,
		started:     time.Now(),
		done:        make(chan struct{}),
	}
	ck.coord = core.NewCoordinator[*shardSession](ck.advanceToInProgress, ck.advanceToWaitPending)
	for _, ss := range sh.sessions {
		ck.coord.Add(ss)
	}
	ck.lhs = sh.log.Tail()
	sh.ckpt = ck
	// Publish the prepare phase; sessions observe it on refresh.
	sh.state.Store(packState(Prepare, ck.version))
	sh.flight.Emit(obs.FlightCommitStart, sh.id, uint64(ck.version), ck.token, "", 0, 0)
	ck.emitPhase(Rest, Prepare)
	sh.tracer.Phase(ck.traceToken, uint64(ck.version), Rest.String(), Prepare.String())
	ck.bumpTraced(Prepare)
	sh.ckptMu.Unlock()
	sh.sessionMu.Unlock()
	// With zero participants the seal completes both transitions at once.
	ck.coord.Seal()
	return ck.token, nil
}

// waitForCommit blocks until the shard-level commit identified by token
// completes and returns its result.
func (sh *shard) waitForCommit(token string) CommitResult {
	sh.ckptMu.Lock()
	ck := sh.ckpt
	if ck == nil || ck.token != token {
		res, ok := sh.results[token]
		sh.ckptMu.Unlock()
		if ok {
			return res
		}
		return CommitResult{Token: token, Err: fmt.Errorf("faster: unknown commit %q", token)}
	}
	sh.ckptMu.Unlock()
	<-ck.done
	return ck.res
}

// tryResult returns the result of a completed shard commit without blocking.
func (sh *shard) tryResult(token string) (CommitResult, bool) {
	sh.ckptMu.Lock()
	defer sh.ckptMu.Unlock()
	res, ok := sh.results[token]
	return res, ok
}

// ackPrepare records that one participant finished its prepare-entry work;
// the last acknowledgment advances the machine to in-progress (transition 2
// of Fig. 9a).
func (ck *checkpointCtx) ackPrepare(sess *shardSession) {
	ck.coord.AckPrepare(sess)
}

// bumpTraced bumps the epoch for a phase publication, recording the drain
// latency (how long until every registered thread observed the phase) in the
// store's tracer.
func (ck *checkpointCtx) bumpTraced(published Phase) {
	sh := ck.store
	t0 := time.Now()
	sh.epochs.BumpEpoch(func() {
		sh.tracer.Drain(ck.traceToken, published.String(), uint64(ck.version), time.Since(t0))
	})
}

// emitPhase records a state-machine transition in the flight recorder (phase
// codes match the Phase constants; obs.FlightPhaseName renders them).
func (ck *checkpointCtx) emitPhase(from, to Phase) {
	ck.store.flight.Emit(obs.FlightPhase, ck.store.id, uint64(ck.version), ck.token, "",
		uint64(from), uint64(to))
}

func (ck *checkpointCtx) advanceToInProgress() {
	ck.store.state.Store(packState(InProgress, ck.version))
	ck.emitPhase(Prepare, InProgress)
	ck.store.tracer.Phase(ck.traceToken, uint64(ck.version), Prepare.String(), InProgress.String())
	ck.bumpTraced(InProgress)
}

// ackInProgress records a session's CPR point (transition 3 of Fig. 9a).
func (ck *checkpointCtx) ackInProgress(sess *shardSession, cprSerial uint64) {
	ck.coord.Demarcate(sess, cprSerial)
}

func (ck *checkpointCtx) advanceToWaitPending() {
	ck.store.state.Store(packState(WaitPending, ck.version))
	ck.emitPhase(InProgress, WaitPending)
	ck.store.tracer.Phase(ck.traceToken, uint64(ck.version), InProgress.String(), WaitPending.String())
	ck.checkPendingDone()
}

// dropParticipant removes a stopping session from the commit; a session that
// leaves before demarcating contributes everything it issued (it can issue
// nothing further).
func (ck *checkpointCtx) dropParticipant(sess *shardSession) {
	sameVersion := sess.version == ck.version
	ck.store.flight.Emit(obs.FlightDrop, ck.store.id, uint64(ck.version), ck.token,
		sess.owner.id, sess.owner.Serial(), 0)
	ck.store.tracer.Session(ck.traceToken, sess.owner.id, "drop", uint64(ck.version), sess.owner.Serial())
	ck.coord.Drop(sess,
		sameVersion && sess.phase >= Prepare,
		sameVersion && sess.phase >= InProgress,
		sess.owner.Serial())
}

// serialsByID converts the coordinator's per-session commit points to the
// session-ID keyed map persisted in commit metadata.
func (ck *checkpointCtx) serialsByID() map[string]uint64 {
	points := ck.coord.Points()
	out := make(map[string]uint64, len(points))
	for sess, pt := range points {
		out[sess.owner.id] = pt
	}
	return out
}

// checkPendingDone advances wait-pending → wait-flush once every pending
// version-v request has completed (transition 4 of Fig. 9a).
func (ck *checkpointCtx) checkPendingDone() {
	if p, _ := unpackState(ck.store.state.Load()); p != WaitPending {
		return
	}
	if ck.pendingV.Load() != 0 {
		return
	}
	if ck.flushing.Swap(true) {
		return
	}
	ck.store.state.Store(packState(WaitFlush, ck.version))
	ck.emitPhase(WaitPending, WaitFlush)
	ck.store.tracer.Phase(ck.traceToken, uint64(ck.version), WaitPending.String(), WaitFlush.String())
	go ck.waitFlush()
}

// waitFlush captures version v durably (transition 5 of Fig. 9a): fold-over
// shifts the read-only offset to the tail and waits for the flush; snapshot
// writes the volatile log region to a separate artifact. Then the metadata
// (including per-session CPR points) is persisted and the shard returns to
// rest at version v+1.
func (ck *checkpointCtx) waitFlush() {
	sh := ck.store
	var written int64
	var err error

	// Record the commit's log end, then take the fuzzy index checkpoint (if
	// requested) before capturing the log: the capture is extended to cover
	// [Lhe, Lie) so that recovery's Alg. 3 scan range max(Lie, Lhe) is fully
	// on the device and v+1 records referenced by fuzzy index entries can be
	// invalidated and chased back to their committed predecessors.
	ck.lhe = sh.log.Tail()
	indexToken := ""
	if ck.opts.WithIndex {
		ck.lis = sh.log.Tail()
		indexToken = ck.token
		// Buffer the index image so it can be framed in the checksum
		// envelope (and the write retried whole on a transient fault).
		var ibuf bytes.Buffer
		err = sh.index.writeTo(&ibuf)
		if err == nil {
			err = ck.writeArtifact("index-"+ck.token, ibuf.Bytes())
			written += int64(ibuf.Len())
		}
		ck.lie = sh.log.Tail()
	} else {
		// Carry the most recent index checkpoint forward so log-only
		// commits can recover by replaying from it (Sec. 6.3).
		indexToken, ck.lis, ck.lie = sh.lastIndexToken, sh.lastLis, sh.lastLie
	}
	captureEnd := ck.lhe
	if ck.opts.WithIndex && ck.lie > captureEnd {
		captureEnd = ck.lie
	}

	if err == nil {
		switch ck.kind {
		case FoldOver:
			sh.log.ShiftReadOnlyTo(captureEnd)
			// Drive epoch progress ourselves so the shift's trigger action
			// and flush run even if every session is momentarily idle. A
			// permanent flush failure (transient errors are retried inside
			// the I/O pool) aborts the commit cleanly: the metadata is never
			// written, the commit is never announced, and the store keeps
			// serving at v+1 so the next commit attempt proceeds.
			g := sh.epochs.Acquire()
			for sh.log.Durable() < captureEnd {
				if ferr := sh.log.FlushErr(); ferr != nil {
					err = fmt.Errorf("faster: commit %s: %w", ck.token, ferr)
					break
				}
				g.Refresh()
				time.Sleep(50 * time.Microsecond)
			}
			g.Release()
			if err == nil {
				written += int64(captureEnd - ck.lhs)
			}
		case Snapshot:
			ck.snapshotStart = sh.log.Durable()
			var data []byte
			data, err = sh.log.SnapshotRange(ck.snapshotStart, captureEnd)
			if err == nil {
				err = ck.writeArtifact("snapshot-"+ck.token, data)
				written += int64(len(data))
			}
		}
	}

	// Persist the log's per-page checksum table so recovery can verify the
	// device written it is about to trust (covers every page fully flushed
	// under this Log's watch; see hlog.PageChecksums).
	if err == nil {
		var crcBuf []byte
		crcBuf, err = json.Marshal(sh.log.PageChecksums())
		if err == nil {
			err = ck.writeArtifact("pagecrc-"+ck.token, crcBuf)
			written += int64(len(crcBuf))
		}
	}

	serials := ck.serialsByID()
	if err == nil {
		meta := metadata{
			Token: ck.token, Version: ck.version, Kind: ck.kind.String(),
			Lhs: ck.lhs, Lhe: ck.lhe, Lis: ck.lis, Lie: ck.lie,
			SnapshotStart: ck.snapshotStart,
			HasIndex:      ck.opts.WithIndex, IndexToken: indexToken,
			Serials: serials,
		}
		var buf []byte
		buf, err = json.Marshal(meta)
		if err == nil {
			err = ck.writeArtifact("meta-"+ck.token, buf)
		}
		if err == nil {
			err = ck.writeArtifact("latest", []byte(ck.token))
		}
		if err == nil && ck.opts.WithIndex {
			sh.lastIndexToken, sh.lastLis, sh.lastLie = indexToken, ck.lis, ck.lie
		}
		// Commit attachments (Store.OnCommitArtifact) ride the same
		// durability boundary: written after the checkpoint's own artifacts,
		// and a failure fails the commit. Coordinated commits attach at the
		// store level, after the cross-shard manifest.
		if err == nil && !ck.coordinated && sh.commitAttach != nil {
			err = sh.commitAttach(CommitResult{
				Token: ck.token, Version: ck.version, Kind: ck.kind, Serials: serials,
			})
		}
	}
	if err == nil {
		// This shard's checkpoint — log capture, page CRCs, metadata and
		// latest-pointer — is fully durable.
		sh.flight.Emit(obs.FlightPersistDone, sh.id, uint64(ck.version), ck.token, "", uint64(written), 0)
	} else {
		sh.flight.Emit(obs.FlightCommitFail, sh.id, uint64(ck.version), ck.token, "", 0, 0)
	}

	ck.res = CommitResult{
		Token: ck.token, Version: ck.version, Kind: ck.kind,
		Serials: serials, Bytes: written, Err: err,
	}
	// Return to rest at version v+1 and detach the context.
	sh.ckptMu.Lock()
	sh.ckpt = nil
	sh.results[ck.token] = ck.res
	sh.state.Store(packState(Rest, ck.version+1))
	sh.ckptMu.Unlock()
	ck.emitPhase(WaitFlush, Rest)
	sh.tracer.Phase(ck.traceToken, uint64(ck.version), WaitFlush.String(), Rest.String())
	ck.bumpTraced(Rest)
	if err == nil && !ck.coordinated {
		sh.metrics.commits.Inc()
		sh.metrics.commitBytes.Add(uint64(written))
		sh.metrics.commitNs.Observe(time.Since(ck.started))
		sh.flight.Emit(obs.FlightCommitDone, sh.id, uint64(ck.version), ck.token, "", uint64(written), 0)
		if sh.noteCommitted != nil {
			sh.noteCommitted(ck.res)
		}
	}
	if err != nil && !ck.coordinated {
		sh.metrics.commitFailures.Inc()
	}
	close(ck.done)
	if ck.opts.OnDone != nil {
		ck.opts.OnDone(ck.res)
	}
	if err == nil && !ck.coordinated && sh.onCommit != nil {
		sh.onCommit(ck.res)
	}
}

func (ck *checkpointCtx) writeArtifact(name string, data []byte) error {
	return writeArtifactFlight(ck.store.cfg.Checkpoints, name, data,
		ck.store.flight, ck.store.id, ck.version)
}

// writeArtifact persists one named artifact inside the checksum envelope,
// retrying transient store errors (see storage.WriteArtifactChecked).
func writeArtifact(cs storage.CheckpointStore, name string, data []byte) error {
	return storage.WriteArtifactChecked(cs, name, data)
}

// writeArtifactFlight is writeArtifact plus flight events: one artifact-retry
// per transient failure that gets retried and one artifact-write on success
// (token = artifact name, so filtering by commit token matches every artifact
// of that commit).
func writeArtifactFlight(cs storage.CheckpointStore, name string, data []byte, fr *obs.FlightRecorder, shard int, version uint32) error {
	err := storage.WriteArtifactCheckedObserved(cs, name, data, func(attempt int, _ error) {
		fr.Emit(obs.FlightArtifactRetry, shard, uint64(version), name, "", uint64(attempt), 0)
	})
	if err == nil {
		fr.Emit(obs.FlightArtifactWrite, shard, uint64(version), name, "", uint64(len(data)), 0)
	}
	return err
}
