package faster

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/storage"
	"repro/internal/ycsb"
)

// TestModelRandomOps runs a long random workload against a map oracle:
// after every operation the store and the model must agree. Exercises
// upsert/RMW/delete/read across in-place updates, RCU, chains, and async
// I/O (tiny memory forces spills).
func TestModelRandomOps(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 6, PageBits: 12, MemPages: 4}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	model := map[uint64]uint64{}
	rng := ycsb.NewRNG(12345)
	const ops = 30000
	const keys = 200

	readBack := func(k uint64) (uint64, bool) {
		var got uint64
		var found, done bool
		_, st := sess.Read(key(k), func(v []byte, s2 Status) {
			done = true
			if s2 == Ok {
				got, found = binary.LittleEndian.Uint64(v), true
			}
		})
		if st == Pending {
			sess.CompletePending(true)
		}
		if !done {
			t.Fatalf("read callback never fired for key %d", k)
		}
		return got, found
	}

	for i := 0; i < ops; i++ {
		k := rng.Intn(keys)
		switch rng.Intn(4) {
		case 0: // upsert
			v := rng.Next()
			if st := sess.Upsert(key(k), u64(v)); st == Pending {
				sess.CompletePending(true)
			}
			model[k] = v
		case 1: // rmw +delta
			d := rng.Intn(100)
			if st := sess.RMW(key(k), u64(d)); st == Pending {
				sess.CompletePending(true)
			}
			model[k] += d // AddUint64.Initial copies the input
		case 2: // delete
			if st := sess.Delete(key(k)); st == Pending {
				sess.CompletePending(true)
			}
			delete(model, k)
		case 3: // read + verify
			got, found := readBack(k)
			want, exists := model[k]
			if found != exists || (found && got != want) {
				t.Fatalf("op %d key %d: store=(%d,%v) model=(%d,%v)", i, k, got, found, want, exists)
			}
		}
	}
	// Final full verification.
	for k := uint64(0); k < keys; k++ {
		got, found := readBack(k)
		want, exists := model[k]
		if found != exists || (found && got != want) {
			t.Fatalf("final key %d: store=(%d,%v) model=(%d,%v)", k, got, found, want, exists)
		}
	}
}

// TestModelWithCommitsAndRecovery interleaves random ops with commits and a
// final crash/recover, comparing against the model state captured at the
// session's CPR point.
func TestModelWithCommitsAndRecovery(t *testing.T) {
	for _, kind := range []CommitKind{FoldOver, Snapshot} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			dev := storage.NewMemDevice()
			ckpts := storage.NewMemCheckpointStore()
			cfg := Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 6,
				Device: dev, Checkpoints: ckpts, Kind: kind}
			s, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sess := s.StartSession()
			id := sess.ID()

			model := map[uint64]uint64{}      // live model
			var snapshots []map[uint64]uint64 // model at each op boundary
			rng := ycsb.NewRNG(999)
			const keys = 150
			const rounds = 4
			const opsPerRound = 4000

			var lastCPR uint64
			for r := 0; r < rounds; r++ {
				for i := 0; i < opsPerRound; i++ {
					k := rng.Intn(keys)
					switch rng.Intn(3) {
					case 0:
						v := rng.Next()
						if st := sess.Upsert(key(k), u64(v)); st == Pending {
							sess.CompletePending(true)
						}
						model[k] = v
					case 1:
						d := rng.Intn(10)
						if st := sess.RMW(key(k), u64(d)); st == Pending {
							sess.CompletePending(true)
						}
						model[k] += d
					case 2:
						if st := sess.Delete(key(k)); st == Pending {
							sess.CompletePending(true)
						}
						delete(model, k)
					}
					// Snapshot the model at every serial so we can look up
					// the state at an arbitrary CPR point.
					snap := make(map[uint64]uint64, len(model))
					for mk, mv := range model {
						snap[mk] = mv
					}
					snapshots = append(snapshots, snap)
				}
				res := driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: r == 0})
				lastCPR = res.Serials[id]
			}
			sess.StopSession()
			s.Close()

			r2, err := Recover(Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 6,
				Device: dev, Checkpoints: ckpts, Kind: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			rs, point := r2.ContinueSession(id)
			defer rs.StopSession()
			if point != lastCPR {
				t.Fatalf("recovered point %d != last commit point %d", point, lastCPR)
			}
			if point == 0 || point > uint64(len(snapshots)) {
				t.Fatalf("implausible CPR point %d", point)
			}
			want := snapshots[point-1] // state after operation #point
			for k := uint64(0); k < keys; k++ {
				var got uint64
				var found, done bool
				_, st := rs.Read(key(k), func(v []byte, s2 Status) {
					done = true
					if s2 == Ok {
						got, found = binary.LittleEndian.Uint64(v), true
					}
				})
				if st == Pending {
					rs.CompletePending(true)
				}
				if !done {
					t.Fatalf("read callback never fired for key %d", k)
				}
				wv, exists := want[k]
				if found != exists || (found && got != wv) {
					t.Fatalf("%v: recovered key %d = (%d,%v), model at CPR point %d = (%d,%v)",
						kind, k, got, found, point, wv, exists)
				}
			}
		})
	}
}

// TestChainInvariant checks the structural invariant of the hash chains:
// addresses strictly decrease along every chain, and every in-memory record
// reachable from a slot parses correctly.
func TestChainInvariant(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 4, PageBits: 14, MemPages: 8}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	for i := uint64(0); i < 2000; i++ {
		sess.Upsert(key(i%97), u64(i))
	}
	head := s.shards[0].log.Head()
	checkChain := func(b *bucket) {
		for e := range b.entries {
			entry := b.entries[e].Load()
			if entry == 0 {
				continue
			}
			addr := entryAddr(entry)
			steps := 0
			for addr != 0 && addr >= head {
				rec := s.shards[0].log.Record(addr)
				prev := rec.Prev()
				if prev != 0 && prev >= addr {
					t.Fatalf("chain not decreasing: %d -> %d", addr, prev)
				}
				if rec.KeyLen() == 0 || rec.KeyLen() > 8 {
					t.Fatalf("record at %d has key length %d", addr, rec.KeyLen())
				}
				addr = prev
				if steps++; steps > 10000 {
					t.Fatal("chain cycle detected")
				}
			}
		}
	}
	for i := range s.shards[0].index.buckets {
		checkChain(&s.shards[0].index.buckets[i])
	}
	used := s.shards[0].index.overflowNext.Load() - 1
	for n := uint64(1); n <= used; n++ {
		checkChain(s.shards[0].index.overflowBucket(n))
	}
}

// TestRecoveryIdempotent recovers twice from the same artifacts and checks
// the stores agree on every key.
func TestRecoveryIdempotent(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := smallConfig()
	cfg.Device = dev
	cfg.Checkpoints = ckpts
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	for i := uint64(0); i < 300; i++ {
		sess.Upsert(key(i), u64(i^0xABCD))
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	sess.StopSession()
	s.Close()

	read := func(store *Store, k uint64) ([]byte, Status) {
		sx := store.StartSession()
		defer sx.StopSession()
		v, st := sx.Read(key(k), nil)
		if st == Pending {
			sx.CompletePending(true)
		}
		return append([]byte(nil), v...), st
	}
	c1 := cfg
	r1, err := Recover(c1)
	if err != nil {
		t.Fatal(err)
	}
	c2 := cfg
	r2, err := Recover(c2)
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	defer r2.Close()
	for i := uint64(0); i < 300; i++ {
		v1, s1 := read(r1, i)
		v2, s2 := read(r2, i)
		if s1 != s2 || !bytes.Equal(v1, v2) {
			t.Fatalf("key %d: recover#1 (%v,%v) != recover#2 (%v,%v)", i, v1, s1, v2, s2)
		}
	}
}

// TestCrashRecoverCycles performs several commit/crash/recover cycles,
// verifying values accumulate correctly across generations.
func TestCrashRecoverCycles(t *testing.T) {
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	base := smallConfig()
	base.Device = dev
	base.Checkpoints = ckpts

	var id string
	for cycle := 0; cycle < 4; cycle++ {
		var s *Store
		var err error
		if cycle == 0 {
			s, err = Open(base)
		} else {
			s, err = Recover(base)
		}
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		var sess *Session
		if cycle == 0 {
			sess = s.StartSession()
			id = sess.ID()
		} else {
			sess, _ = s.ContinueSession(id)
		}
		// Each cycle adds +1 to 100 counters, commits, then writes garbage
		// that the crash discards.
		for i := uint64(0); i < 100; i++ {
			if st := sess.RMW(key(i), u64(1)); st == Pending {
				sess.CompletePending(true)
			}
		}
		driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: cycle%2 == 0})
		for i := uint64(0); i < 100; i++ {
			sess.Upsert(key(i), u64(0xDEAD))
		}
		sess.StopSession()
		s.Close() // crash
	}

	final, err := Recover(base)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	fs, _ := final.ContinueSession(id)
	defer fs.StopSession()
	for i := uint64(0); i < 100; i++ {
		v, st := fs.Read(key(i), func(v []byte, s2 Status) {
			if s2 != Ok || binary.LittleEndian.Uint64(v) != 4 {
				t.Errorf("key %d: cb %v %v, want 4", i, v, s2)
			}
		})
		if st == Pending {
			fs.CompletePending(true)
		} else if st != Ok || binary.LittleEndian.Uint64(v) != 4 {
			t.Fatalf("key %d = %v (%v), want 4 after 4 cycles", i, v, st)
		}
	}
}

// TestValueSizes100B covers the paper's 100-byte value configuration.
func TestValueSizes100B(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	val := make([]byte, 100)
	for i := range val {
		val[i] = byte(i)
	}
	for i := uint64(0); i < 500; i++ {
		if st := sess.Upsert(key(i), val); st != Ok {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}
	got, st := sess.Read(key(123), nil)
	if st == Pending {
		sess.CompletePending(true)
	} else if st != Ok || !bytes.Equal(got, val) {
		t.Fatalf("100B value mismatch: %v (%v)", got, st)
	}
	_ = fmt.Sprintf
}
