package faster

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
	"repro/internal/ycsb"
)

// TestCrashAtRandomPoints is the crash-consistency stress test: sessions run
// a continuous workload while commits fire; at random instants the "disk"
// (checkpoint store first, then the log device — matching write-ordering) is
// cloned, modelling a hard crash. Recovery from each clone must satisfy the
// CPR contract exactly: for every session, all operations up to its
// recovered CPR point present, none after.
//
// The workload makes the check self-describing: session i's operation n
// upserts key (i, n%keysPer) = n, so from the recovered point alone the
// expected value of every key is computable.
func TestCrashAtRandomPoints(t *testing.T) {
	const sessions = 3
	const keysPer = 32
	const crashes = 6

	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 8,
		Device: dev, Checkpoints: ckpts}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]string, sessions)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		sess := s.StartSession()
		ids[i] = sess.ID()
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := ycsb.NewRNG(uint64(i) + 77)
			var kb, vb [8]byte
			for n := uint64(1); ; n++ {
				if n%64 == 0 && stop.Load() {
					break
				}
				binary.LittleEndian.PutUint64(kb[:], uint64(i)<<32|n%keysPer)
				binary.LittleEndian.PutUint64(vb[:], n)
				if st := sess.Upsert(kb[:], vb[:]); st == Pending {
					sess.CompletePending(true)
				}
				if rng.Intn(997) == 0 {
					sess.CompletePending(false)
				}
			}
			sess.CompletePending(true)
			for s.Phase() != Rest {
				sess.Refresh()
				sess.CompletePending(false)
			}
			sess.StopSession()
		}()
	}

	// Commit continuously while taking crash snapshots at random moments.
	type snapshot struct {
		dev   *storage.MemDevice
		ckpts *storage.MemCheckpointStore
	}
	var snaps []snapshot
	// Crash order: checkpoint store first, then the device (metadata is
	// only written after its log data is durable, so this order never
	// captures metadata whose data is missing).
	crash := func() {
		ck := ckpts.Clone()
		dv := dev.Clone()
		snaps = append(snaps, snapshot{dev: dv, ckpts: ck})
	}
	rng := ycsb.NewRNG(99)
	for c := 0; c < crashes; c++ {
		kind := FoldOver
		if rng.Intn(2) == 1 {
			kind = Snapshot
		}
		token, err := s.Commit(CommitOptions{WithIndex: rng.Intn(2) == 0, Kind: &kind})
		if err != nil {
			t.Fatal(err)
		}
		// One crash mid-commit (recovery must land on the previous commit)...
		time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		crash()
		// ...and one after the commit completed, mid-workload.
		for {
			if _, ok := s.TryResult(token); ok {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
		time.Sleep(time.Duration(1+rng.Intn(10)) * time.Millisecond)
		crash()
	}
	stop.Store(true)
	wg.Wait()
	s.Close()

	recoveredAny := false
	for ci, snap := range snaps {
		r, err := Recover(Config{IndexBuckets: 1 << 8, PageBits: 13, MemPages: 8,
			Device: snap.dev, Checkpoints: snap.ckpts})
		if err != nil {
			// No commit had completed by this crash point; that is a legal
			// outcome for the earliest snapshots.
			continue
		}
		recoveredAny = true
		for i := 0; i < sessions; i++ {
			rs, point := r.ContinueSession(ids[i])
			// Expected value of key k: the largest n <= point with
			// n % keysPer == k (0 if none).
			for k := uint64(0); k < keysPer; k++ {
				var want uint64
				if point > 0 {
					n := point - (point+keysPer-k)%keysPer
					want = n
				}
				var kb [8]byte
				binary.LittleEndian.PutUint64(kb[:], uint64(i)<<32|k)
				var got uint64
				var found, done bool
				_, st := rs.Read(kb[:], func(v []byte, s2 Status) {
					done = true
					if s2 == Ok {
						got, found = binary.LittleEndian.Uint64(v), true
					}
				})
				if st == Pending {
					rs.CompletePending(true)
				}
				if !done {
					t.Fatalf("crash %d session %d key %d: read never completed", ci, i, k)
				}
				if want == 0 {
					if found {
						t.Fatalf("crash %d session %d key %d: phantom value %d (point %d)",
							ci, i, k, got, point)
					}
					continue
				}
				if !found || got != want {
					t.Fatalf("crash %d session %d key %d: got (%d,%v), want %d (point %d)",
						ci, i, k, got, found, want, point)
				}
			}
			rs.StopSession()
		}
		r.Close()
	}
	if !recoveredAny {
		t.Fatal("no crash snapshot contained a completed commit; slow host or broken commits")
	}
}
