package faster

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/epoch"
	"repro/internal/hashfn"
	"repro/internal/hlog"
	"repro/internal/obs"
	"repro/internal/storage"
)

// nowNanos is the wall clock used by the durability-lag bookkeeping.
func nowNanos() int64 { return time.Now().UnixNano() }

// Phase is a state of the CPR commit state machine (Fig. 9a).
type Phase uint8

// The five phases of a FASTER CPR commit.
const (
	Rest Phase = iota
	Prepare
	InProgress
	WaitPending
	WaitFlush
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Rest:
		return "rest"
	case Prepare:
		return "prepare"
	case InProgress:
		return "in-progress"
	case WaitPending:
		return "wait-pending"
	case WaitFlush:
		return "wait-flush"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// CommitKind selects how a checkpoint captures volatile records (App. D).
type CommitKind uint8

const (
	// FoldOver shifts the read-only offset to the tail: fully incremental,
	// but post-commit updates pay read-copy-update until the working set
	// migrates back to the mutable region.
	FoldOver CommitKind = iota
	// Snapshot writes the volatile log region to a separate artifact and
	// re-opens the region for in-place updates immediately after.
	Snapshot
)

// String implements fmt.Stringer.
func (k CommitKind) String() string {
	if k == Snapshot {
		return "snapshot"
	}
	return "fold-over"
}

// VersionTransfer selects how prepare→in-progress hand-off of records is
// coordinated (Sec. 6.5 / App. C).
type VersionTransfer uint8

const (
	// FineGrained uses bucket-level shared/exclusive latches (Alg. 4/5).
	FineGrained VersionTransfer = iota
	// CoarseGrained uses the safe-read-only offset as the eligibility
	// marker; conflicting operations go pending instead of latching.
	CoarseGrained
)

// String implements fmt.Stringer.
func (v VersionTransfer) String() string {
	if v == CoarseGrained {
		return "coarse"
	}
	return "fine"
}

// RMWOps defines read-modify-write semantics for a store (the paper's
// running per-key "sum" is AddUint64).
type RMWOps interface {
	// Initial returns the value for an RMW on a missing key.
	Initial(input []byte) []byte
	// Update computes the new value from the current one. It must not retain
	// cur or input.
	Update(cur, input []byte) []byte
}

// AddUint64 implements RMWOps over little-endian 8-byte counters, matching
// the paper's RMW workload (increment by an input array entry).
type AddUint64 struct{}

// Initial implements RMWOps.
func (AddUint64) Initial(input []byte) []byte {
	out := make([]byte, 8)
	copy(out, input)
	return out
}

// Update implements RMWOps.
func (AddUint64) Update(cur, input []byte) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(cur)+binary.LittleEndian.Uint64(input))
	return out
}

// Config parameterizes a Store.
type Config struct {
	// Shards partitions the store into independent CPR domains — each with
	// its own hash index, HybridLog, epoch manager and checkpoint state
	// machine — routed by key-hash high bits. The default (1) is the original
	// unpartitioned store; commits on a multi-shard store are coordinated so
	// every session still receives a single cross-shard commit point.
	Shards int
	// IndexBuckets is the number of main hash buckets (power of two), split
	// across shards. The paper's default is #keys/2 with 7 entries per bucket.
	IndexBuckets int
	// PageBits, MemPages, MutableFraction configure the HybridLog. MemPages
	// is a store-wide budget: a multi-shard store divides it across shards.
	PageBits        uint
	MemPages        int
	MutableFraction float64
	// Device backs the HybridLog. Defaults to an in-memory device.
	// Only valid for a single-shard store; use DeviceFactory otherwise.
	Device storage.Device
	// DeviceFactory supplies one device per shard (required if a multi-shard
	// store should not default to per-shard in-memory devices). Mutually
	// exclusive with Device.
	DeviceFactory func(shard int) (storage.Device, error)
	// Checkpoints stores commit artifacts. Defaults to an in-memory store.
	// A multi-shard store namespaces each shard under "shard<i>/" and keeps
	// the cross-shard commit manifests at the top level.
	Checkpoints storage.CheckpointStore
	// RMW supplies read-modify-write semantics. Defaults to AddUint64.
	RMW RMWOps
	// Kind selects fold-over or snapshot commits.
	Kind CommitKind
	// Transfer selects fine- or coarse-grained version transfer.
	Transfer VersionTransfer
	// IOWorkers sizes the async I/O pool (per shard).
	IOWorkers int
	// VerifyReads makes cold-record reads fetch and verify the record's whole
	// log page against its recorded checksum (when known), healing read-path
	// bit flips by retrying instead of returning corrupt data.
	VerifyReads bool
	// Metrics receives the store's instrumentation (and the log's, epoch
	// manager's and I/O pool's). Defaults to a fresh enabled registry; pass
	// obs.NewNop() to disable collection. Multi-shard stores expose per-shard
	// infrastructure metrics under a "shard<i>_" prefix.
	Metrics *obs.Registry
	// Tracer records checkpoint state-machine activity. Defaults to a fresh
	// tracer with obs.DefaultTracerCapacity events.
	Tracer *obs.Tracer
	// Flight, when non-nil, records the causal commit-lifecycle event stream
	// (epoch bumps, phase transitions, artifact writes, log flushes, ...) for
	// every shard. Nil disables the flight recorder at zero hot-path cost.
	Flight *obs.FlightRecorder
	// ReqTrace, when non-nil, is the request tracer shared by the layers
	// serving this store (kvserver request hops, repl ship/announce spans).
	// The store itself only carries it — per-request spans are emitted by the
	// serving layer, which owns request boundaries. Nil disables request
	// tracing at one pointer test per call site.
	ReqTrace *obs.RequestTracer
	// Replica opens the store as a replication target: recovery replays
	// non-destructively (records shipped ahead of their commit are hidden in
	// memory instead of invalidated on the device, because the next installed
	// commit makes them live) and ApplyCommitted may advance the visible
	// state. See internal/repl and Store.Promote.
	Replica bool
	// InstantRestore makes Recover serve traffic before the log suffix is
	// replayed: the store comes up on the recovered commit's index with every
	// hash bucket cold, a background pass analyzes the suffix once
	// (page-granular, invalidating post-prefix records), and each bucket's
	// records are re-linked lazily on first touch or by a background sweeper.
	// Time-to-first-served-op becomes independent of the log-suffix size;
	// operations on cold buckets pay a bounded one-time warm-up, and Commit/
	// CompactLog return ErrRestoring until the store is warm (WaitRestored).
	// Ignored for replicas (their staged-suffix replay is not lazy-safe) and
	// by Open (nothing to restore). See DESIGN "Instant restore".
	InstantRestore bool
}

func (c *Config) fill() error {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 {
		return fmt.Errorf("faster: Shards %d must be positive", c.Shards)
	}
	if c.Device != nil && c.DeviceFactory != nil {
		return fmt.Errorf("faster: Device and DeviceFactory are mutually exclusive")
	}
	if c.Shards > 1 && c.Device != nil {
		return fmt.Errorf("faster: Shards > 1 needs one device per shard; set DeviceFactory instead of Device")
	}
	if c.IndexBuckets == 0 {
		c.IndexBuckets = 1 << 16
	}
	if c.IndexBuckets&(c.IndexBuckets-1) != 0 {
		return fmt.Errorf("faster: IndexBuckets %d must be a power of two", c.IndexBuckets)
	}
	if c.Shards == 1 && c.Device == nil && c.DeviceFactory == nil {
		c.Device = storage.NewMemDevice()
	}
	if c.Checkpoints == nil {
		c.Checkpoints = storage.NewMemCheckpointStore()
	}
	if c.RMW == nil {
		c.RMW = AddUint64{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(obs.DefaultTracerCapacity)
	}
	return nil
}

// storeMetrics holds the store's hot-path metric handles, resolved once at
// Open so operations never touch the registry. All shards share one set: a
// partitioned store reports store-wide operation counts.
type storeMetrics struct {
	reads, upserts, rmws, deletes *obs.Counter
	pendings                      *obs.Counter // operations that went pending
	ioReads                       *obs.Counter // cold-record fetches issued
	commits                       *obs.Counter
	commitBytes                   *obs.Counter
	commitNs                      *obs.Histogram
	commitFailures                *obs.Counter // commits aborted by I/O failure
	recoverySkips                 *obs.Counter // commits skipped as unverifiable
	lagOps                        *obs.Histogram
	lagNs                         *obs.Histogram

	// Instant-restore progress (store-wide; per-shard state lives in gauges).
	restoreOndemandWarms *obs.Counter // buckets warmed by a blocked operation
	restoreSweepWarms    *obs.Counter // buckets warmed by the background sweeper
	restoreReplayed      *obs.Counter // suffix records re-linked into warm buckets
	restoreInvalidated   *obs.Counter // post-prefix records invalidated by analysis
	restoreBlockedOps    *obs.Counter // operations that waited on a cold bucket
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		reads:          reg.Counter("faster_reads_total"),
		upserts:        reg.Counter("faster_upserts_total"),
		rmws:           reg.Counter("faster_rmws_total"),
		deletes:        reg.Counter("faster_deletes_total"),
		pendings:       reg.Counter("faster_pending_ops_total"),
		ioReads:        reg.Counter("faster_io_reads_total"),
		commits:        reg.Counter("faster_commits_total"),
		commitBytes:    reg.Counter("faster_commit_bytes_total"),
		commitNs:       reg.Histogram("faster_commit_ns"),
		commitFailures: reg.Counter("faster_commit_failures_total"),
		recoverySkips:  reg.Counter("faster_recovery_skipped_commits_total"),
		// Durability lag, observed per session at every completed commit:
		// how far the session's issued operations ran ahead of its committed
		// point t_i, in operations and in wall time since its commit point was
		// demarcated.
		lagOps: reg.Histogram("faster_session_lag_ops"),
		lagNs:  reg.Histogram("faster_session_lag_ns"),

		restoreOndemandWarms: reg.Counter("faster_restore_ondemand_warms_total"),
		restoreSweepWarms:    reg.Counter("faster_restore_sweep_warms_total"),
		restoreReplayed:      reg.Counter("faster_restore_replayed_records_total"),
		restoreInvalidated:   reg.Counter("faster_restore_invalidated_records_total"),
		restoreBlockedOps:    reg.Counter("faster_restore_blocked_ops_total"),
	}
}

// Store is a FASTER instance with CPR durability, partitioned into one or
// more shards. All operations happen through Sessions (Sec. 5.2), which
// route by key hash; Commit triggers an asynchronous CPR checkpoint across
// every shard; Recover rebuilds a store from its latest commit. With
// Shards == 1 the store behaves exactly like the original unpartitioned
// implementation, including its checkpoint format.
type Store struct {
	cfg        Config
	shards     []*shard
	shardShift uint // 64 - log2(Shards) when Shards is a power of two

	// mu guards the session registry and serializes session registration
	// against commit admission (lock order: mu, then ckptMu, then per-shard
	// locks in shard order).
	mu               sync.Mutex
	sessions         map[string]*Session
	recoveredSerials map[string]uint64

	ckptMu    sync.Mutex
	multi     *multiCommit // non-nil while a cross-shard commit is active
	results   map[string]CommitResult
	commitSeq atomic.Uint64 // token counter, shared with the shards

	// hookMu guards commitHooks (see OnCommit; fired after every completed
	// commit, used by the replication shipper) and artifactHooks (see
	// OnCommitArtifact; produce extra artifacts persisted with each commit).
	hookMu        sync.Mutex
	commitHooks   []func(CommitResult)
	artifactHooks []func(CommitResult) (string, []byte, error)

	metrics storeMetrics
	tracer  *obs.Tracer

	// report describes how the store was recovered (nil when opened fresh).
	report *RecoveryReport
}

// RecoveryReport returns the report from the Recover call that produced this
// store: the commit recovered and any newer commits skipped as unverifiable.
// It is nil for a store created with Open.
func (s *Store) RecoveryReport() *RecoveryReport { return s.report }

func packState(p Phase, v uint32) uint64   { return uint64(p)<<32 | uint64(v) }
func unpackState(s uint64) (Phase, uint32) { return Phase(s >> 32), uint32(s) }

func newStore(cfg Config) *Store {
	s := &Store{
		cfg:              cfg,
		sessions:         make(map[string]*Session),
		recoveredSerials: make(map[string]uint64),
		results:          make(map[string]CommitResult),
		metrics:          newStoreMetrics(cfg.Metrics),
		tracer:           cfg.Tracer,
	}
	if n := cfg.Shards; n > 1 && n&(n-1) == 0 {
		s.shardShift = 64 - uint(bits.Len(uint(n))-1)
	}
	return s
}

// shardConfig derives shard i's private configuration: its own device, a
// namespaced view of the checkpoint store, a prefixed metrics view, and a
// 1/N slice of the index and log-memory budgets. With Shards == 1 the
// shard's configuration is the store's, untouched.
func (s *Store) shardConfig(i int) (Config, error) {
	sc := s.cfg
	sc.DeviceFactory = nil
	if s.cfg.DeviceFactory != nil {
		d, err := s.cfg.DeviceFactory(i)
		if err != nil {
			return Config{}, fmt.Errorf("faster: shard %d device: %w", i, err)
		}
		sc.Device = d
	}
	if s.cfg.Shards == 1 {
		return sc, nil
	}
	if sc.Device == nil {
		sc.Device = storage.NewMemDevice()
	}
	sc.IndexBuckets = shardBuckets(s.cfg.IndexBuckets, s.cfg.Shards)
	if s.cfg.MemPages > 0 {
		sc.MemPages = s.cfg.MemPages / s.cfg.Shards
		if sc.MemPages < hlog.MinMemPages {
			sc.MemPages = hlog.MinMemPages
		}
	}
	sc.Checkpoints = storage.NewPrefixCheckpointStore(s.cfg.Checkpoints, fmt.Sprintf("shard%d/", i))
	sc.Metrics = s.cfg.Metrics.WithPrefix(fmt.Sprintf("shard%d_", i))
	return sc, nil
}

// shardBuckets splits a power-of-two bucket budget across n shards, keeping
// every shard's index a power of two with a sane floor.
func shardBuckets(total, n int) int {
	per := total / n
	if per < 64 {
		per = 64
	}
	if per&(per-1) != 0 {
		per = 1 << bits.Len(uint(per)) // non-power-of-two shard count: round up
	}
	return per
}

// traceSuffix distinguishes per-shard checkpoint state machines in the
// shared tracer; a single-shard store traces under the bare token.
func (s *Store) traceSuffix(i int) string {
	if s.cfg.Shards == 1 {
		return ""
	}
	return fmt.Sprintf("/s%d", i)
}

// Open creates a Store ready for use at version 1.
func Open(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	s := newStore(cfg)
	for i := 0; i < cfg.Shards; i++ {
		sc, err := s.shardConfig(i)
		if err == nil {
			var sh *shard
			sh, err = openShard(sc, i, s.traceSuffix(i), s.metrics, &s.commitSeq)
			if err == nil {
				s.shards = append(s.shards, sh)
				continue
			}
		}
		s.Close()
		return nil, err
	}
	for _, sh := range s.shards {
		sh.noteCommitted = s.noteCommitted
	}
	s.registerStoreGauges()
	s.registerLagGauges()
	return s, nil
}

// registerStoreGauges exposes store-wide aggregates. With one shard the
// shard itself registered the unprefixed gauges, preserving the original
// metric set exactly.
func (s *Store) registerStoreGauges() {
	if s.cfg.Shards == 1 {
		return
	}
	reg := s.cfg.Metrics
	reg.GaugeFunc("faster_shards", func() int64 { return int64(len(s.shards)) })
	reg.GaugeFunc("faster_version", func() int64 { return int64(s.Version()) })
	reg.GaugeFunc("faster_phase", func() int64 { return int64(s.Phase()) })
	reg.GaugeFunc("faster_sessions", func() int64 { return int64(s.SessionCount()) })
}

// Close shuts down background I/O. Outstanding sessions become invalid.
func (s *Store) Close() {
	for _, sh := range s.shards {
		sh.close()
	}
}

// shardOf routes a key hash to its shard. High bits are used so the
// per-shard index distribution stays uniform (buckets select on low bits).
func (s *Store) shardOf(hash uint64) int {
	if len(s.shards) == 1 {
		return 0
	}
	if s.shardShift != 0 {
		return int(hash >> s.shardShift)
	}
	return int((hash >> 32) % uint64(len(s.shards)))
}

// Phase returns the store-wide CPR phase: the most advanced phase across
// shards. While a cross-shard commit is finalizing its manifest (all shards
// back at rest, manifest not yet durable) it reports wait-flush, so polling
// Phase() == Rest observes completed commits only.
func (s *Store) Phase() Phase {
	p := s.shards[0].Phase()
	for _, sh := range s.shards[1:] {
		if sp := sh.Phase(); sp > p {
			p = sp
		}
	}
	if p == Rest && len(s.shards) > 1 {
		s.ckptMu.Lock()
		active := s.multi != nil
		s.ckptMu.Unlock()
		if active {
			return WaitFlush
		}
	}
	return p
}

// Version returns the current CPR version (the minimum across shards while a
// commit is completing).
func (s *Store) Version() uint32 {
	v := s.shards[0].Version()
	for _, sh := range s.shards[1:] {
		if sv := sh.Version(); sv < v {
			v = sv
		}
	}
	return v
}

// NumShards reports the store's shard count.
func (s *Store) NumShards() int { return len(s.shards) }

// Log exposes shard 0's HybridLog (diagnostics and experiments; the only
// log of a single-shard store). See ShardLog for the others.
func (s *Store) Log() *hlog.Log { return s.shards[0].log }

// ShardLog exposes shard i's HybridLog.
func (s *Store) ShardLog(i int) *hlog.Log { return s.shards[i].log }

// ShardPhase returns shard i's CPR phase.
func (s *Store) ShardPhase(i int) Phase { return s.shards[i].Phase() }

// ShardVersion returns shard i's CPR version.
func (s *Store) ShardVersion(i int) uint32 { return s.shards[i].Version() }

// LogBytes reports the total live log volume ([Begin, Tail)) across shards.
func (s *Store) LogBytes() int64 {
	var n int64
	for _, sh := range s.shards {
		n += int64(sh.log.Tail() - sh.log.Begin())
	}
	return n
}

// Epochs exposes shard 0's epoch manager (shared with helper goroutines of
// single-shard deployments).
func (s *Store) Epochs() *epoch.Manager { return s.shards[0].epochs }

// Metrics returns the store's metrics registry (never nil after Open, though
// it may be the nop registry).
func (s *Store) Metrics() *obs.Registry { return s.cfg.Metrics }

// Tracer returns the store's CPR phase tracer.
func (s *Store) Tracer() *obs.Tracer { return s.tracer }

// Flight returns the store's flight recorder (nil when not configured).
func (s *Store) Flight() *obs.FlightRecorder { return s.cfg.Flight }

// RequestTracer returns the store's request tracer (nil when not configured).
func (s *Store) RequestTracer() *obs.RequestTracer { return s.cfg.ReqTrace }

// ShardOfKey reports which shard serves key — the same route its operations
// take. Surfaced so serving layers can annotate dispatch spans without
// re-deriving the hash split.
func (s *Store) ShardOfKey(key []byte) int { return s.shardOf(hashfn.Hash64(key)) }

// DumpFlight snapshots the flight recorder and writes it as a CRC-framed
// artifact named "flight-<reason>" in the checkpoint store, overwriting any
// earlier dump with the same reason. Call it from a panic handler or a crash
// point; decode with `fasterctl flight -dump` (or obs.DecodeFlightDump after
// storage.ReadArtifactChecked). A nil recorder is a no-op.
func (s *Store) DumpFlight(reason string) error {
	if s.cfg.Flight == nil {
		return nil
	}
	return storage.WriteArtifactChecked(s.cfg.Checkpoints, "flight-"+reason, s.cfg.Flight.EncodeDump())
}

// SessionLag is one live session's durability lag: how far its issued
// operations run ahead of its committed prefix t_i.
type SessionLag struct {
	ID string `json:"id"`
	// IssuedSerial is the session's latest issued operation serial;
	// CommittedSerial is its durable commit point t_i.
	IssuedSerial    uint64 `json:"issued_serial"`
	CommittedSerial uint64 `json:"committed_serial"`
	// LagOps = IssuedSerial - CommittedSerial.
	LagOps uint64 `json:"lag_ops"`
	// LagNanos is the wall-clock age of the uncommitted suffix: time since
	// the oldest issued-but-uncommitted state changed (0 when fully durable).
	LagNanos int64 `json:"lag_ns"`
}

// SessionLags reports the durability lag of every live session, sorted by
// session ID.
func (s *Store) SessionLags() []SessionLag {
	now := nowNanos()
	s.mu.Lock()
	out := make([]SessionLag, 0, len(s.sessions))
	for id, sess := range s.sessions {
		out = append(out, sess.lag(id, now))
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// maxSessionLag scans live sessions for the largest lag (ops and ns) — the
// faster_session_lag_*_max gauges.
func (s *Store) maxSessionLag() (ops uint64, ns int64) {
	now := nowNanos()
	s.mu.Lock()
	for id, sess := range s.sessions {
		l := sess.lag(id, now)
		if l.LagOps > ops {
			ops = l.LagOps
		}
		if l.LagNanos > ns {
			ns = l.LagNanos
		}
	}
	s.mu.Unlock()
	return ops, ns
}

// noteCommitted records a completed commit's session points in the
// durability-lag metrics and advances each session's committed watermark.
// Invoked on the commit-completion path of both the coordinated (multi-shard)
// and uncoordinated (single-shard) protocols.
func (s *Store) noteCommitted(res CommitResult) {
	now := nowNanos()
	token := res.Token // one shared cell for every session's covering token
	s.mu.Lock()
	for id, pt := range res.Serials {
		sess, ok := s.sessions[id]
		if !ok {
			continue
		}
		s.metrics.lagOps.ObserveValue(sess.serial.Load() - pt)
		if d := sess.demarcAtNanos.Load(); d != 0 && now > d {
			s.metrics.lagNs.ObserveValue(uint64(now - d))
		}
		sess.committedSerial.Store(pt)
		sess.committedAtNanos.Store(now)
		sess.committedToken.Store(&token)
	}
	s.mu.Unlock()
}

// registerLagGauges exposes the worst-case live durability lag. Registered at
// store level for every shard count (the lag is a session property, not a
// shard property).
func (s *Store) registerLagGauges() {
	reg := s.cfg.Metrics
	reg.GaugeFunc("faster_session_lag_ops_max", func() int64 {
		ops, _ := s.maxSessionLag()
		return int64(ops)
	})
	reg.GaugeFunc("faster_session_lag_ns_max", func() int64 {
		_, ns := s.maxSessionLag()
		return ns
	})
}

// OnCommitArtifact registers fn as a commit attachment: at every commit,
// after the checkpoint (and, on a partitioned store, the cross-shard
// manifest) is durable but before the commit is announced as complete, fn is
// invoked with the commit's result and returns an artifact name and payload
// to persist alongside the commit's own artifacts — inside the checksum
// envelope, with the usual retries. An empty name skips the write. An error
// from fn or from the write fails the commit, so a completed commit always
// carries its attachments (the ingestion log's inlog-<token> watermark
// depends on this ordering). fn runs on the checkpoint goroutine and must
// not block on session progress.
func (s *Store) OnCommitArtifact(fn func(CommitResult) (name string, payload []byte, err error)) {
	s.hookMu.Lock()
	s.artifactHooks = append(s.artifactHooks, fn)
	s.hookMu.Unlock()
	if len(s.shards) == 1 {
		s.shards[0].commitAttach = s.writeCommitAttachments
	}
}

// writeCommitAttachments runs the registered attachment hooks for a commit
// that has just become durable, persisting each returned artifact in the
// store's top-level checkpoint namespace.
func (s *Store) writeCommitAttachments(res CommitResult) error {
	s.hookMu.Lock()
	hooks := s.artifactHooks
	s.hookMu.Unlock()
	for _, fn := range hooks {
		name, payload, err := fn(res)
		if err != nil {
			return fmt.Errorf("faster: commit %s attachment: %w", res.Token, err)
		}
		if name == "" {
			continue
		}
		if err := writeArtifactFlight(s.cfg.Checkpoints, name, payload, s.cfg.Flight, -1, res.Version); err != nil {
			return fmt.Errorf("faster: commit %s attachment %q: %w", res.Token, name, err)
		}
	}
	return nil
}

// SessionCount reports the number of live sessions.
func (s *Store) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// waitForRest spins until every shard is at rest, driving epoch progress so
// in-flight commits can advance even when all sessions are idle.
func (s *Store) waitForRest() {
	for _, sh := range s.shards {
		sh.waitForRest()
	}
}

// recVersion returns the 13-bit on-record version for store version v.
func recVersion(v uint32) uint16 { return uint16(v) & hlog.MaxVersion }

// isFutureVersion reports whether a record version corresponds to v+1
// relative to commit version v (wraparound-safe: during a checkpoint only
// versions v and earlier, plus v+1, can appear).
func isFutureVersion(recVer uint16, v uint32) bool {
	return recVer == recVersion(v+1)
}
