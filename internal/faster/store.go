package faster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/obs"
	"repro/internal/storage"
)

// Phase is a state of the CPR commit state machine (Fig. 9a).
type Phase uint8

// The five phases of a FASTER CPR commit.
const (
	Rest Phase = iota
	Prepare
	InProgress
	WaitPending
	WaitFlush
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Rest:
		return "rest"
	case Prepare:
		return "prepare"
	case InProgress:
		return "in-progress"
	case WaitPending:
		return "wait-pending"
	case WaitFlush:
		return "wait-flush"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// CommitKind selects how a checkpoint captures volatile records (App. D).
type CommitKind uint8

const (
	// FoldOver shifts the read-only offset to the tail: fully incremental,
	// but post-commit updates pay read-copy-update until the working set
	// migrates back to the mutable region.
	FoldOver CommitKind = iota
	// Snapshot writes the volatile log region to a separate artifact and
	// re-opens the region for in-place updates immediately after.
	Snapshot
)

// String implements fmt.Stringer.
func (k CommitKind) String() string {
	if k == Snapshot {
		return "snapshot"
	}
	return "fold-over"
}

// VersionTransfer selects how prepare→in-progress hand-off of records is
// coordinated (Sec. 6.5 / App. C).
type VersionTransfer uint8

const (
	// FineGrained uses bucket-level shared/exclusive latches (Alg. 4/5).
	FineGrained VersionTransfer = iota
	// CoarseGrained uses the safe-read-only offset as the eligibility
	// marker; conflicting operations go pending instead of latching.
	CoarseGrained
)

// String implements fmt.Stringer.
func (v VersionTransfer) String() string {
	if v == CoarseGrained {
		return "coarse"
	}
	return "fine"
}

// RMWOps defines read-modify-write semantics for a store (the paper's
// running per-key "sum" is AddUint64).
type RMWOps interface {
	// Initial returns the value for an RMW on a missing key.
	Initial(input []byte) []byte
	// Update computes the new value from the current one. It must not retain
	// cur or input.
	Update(cur, input []byte) []byte
}

// AddUint64 implements RMWOps over little-endian 8-byte counters, matching
// the paper's RMW workload (increment by an input array entry).
type AddUint64 struct{}

// Initial implements RMWOps.
func (AddUint64) Initial(input []byte) []byte {
	out := make([]byte, 8)
	copy(out, input)
	return out
}

// Update implements RMWOps.
func (AddUint64) Update(cur, input []byte) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(cur)+binary.LittleEndian.Uint64(input))
	return out
}

// Config parameterizes a Store.
type Config struct {
	// IndexBuckets is the number of main hash buckets (power of two). The
	// paper's default is #keys/2 with 7 entries per bucket.
	IndexBuckets int
	// PageBits, MemPages, MutableFraction configure the HybridLog.
	PageBits        uint
	MemPages        int
	MutableFraction float64
	// Device backs the HybridLog. Defaults to an in-memory device.
	Device storage.Device
	// Checkpoints stores commit artifacts. Defaults to an in-memory store.
	Checkpoints storage.CheckpointStore
	// RMW supplies read-modify-write semantics. Defaults to AddUint64.
	RMW RMWOps
	// Kind selects fold-over or snapshot commits.
	Kind CommitKind
	// Transfer selects fine- or coarse-grained version transfer.
	Transfer VersionTransfer
	// IOWorkers sizes the async I/O pool.
	IOWorkers int
	// Metrics receives the store's instrumentation (and the log's, epoch
	// manager's and I/O pool's). Defaults to a fresh enabled registry; pass
	// obs.NewNop() to disable collection.
	Metrics *obs.Registry
	// Tracer records checkpoint state-machine activity. Defaults to a fresh
	// tracer with obs.DefaultTracerCapacity events.
	Tracer *obs.Tracer
}

func (c *Config) fill() error {
	if c.IndexBuckets == 0 {
		c.IndexBuckets = 1 << 16
	}
	if c.IndexBuckets&(c.IndexBuckets-1) != 0 {
		return fmt.Errorf("faster: IndexBuckets %d must be a power of two", c.IndexBuckets)
	}
	if c.Device == nil {
		c.Device = storage.NewMemDevice()
	}
	if c.Checkpoints == nil {
		c.Checkpoints = storage.NewMemCheckpointStore()
	}
	if c.RMW == nil {
		c.RMW = AddUint64{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Tracer == nil {
		c.Tracer = obs.NewTracer(obs.DefaultTracerCapacity)
	}
	return nil
}

// storeMetrics holds the store's hot-path metric handles, resolved once at
// Open so operations never touch the registry.
type storeMetrics struct {
	reads, upserts, rmws, deletes *obs.Counter
	pendings                      *obs.Counter // operations that went pending
	ioReads                       *obs.Counter // cold-record fetches issued
	commits                       *obs.Counter
	commitBytes                   *obs.Counter
	commitNs                      *obs.Histogram
}

func newStoreMetrics(reg *obs.Registry) storeMetrics {
	return storeMetrics{
		reads:       reg.Counter("faster_reads_total"),
		upserts:     reg.Counter("faster_upserts_total"),
		rmws:        reg.Counter("faster_rmws_total"),
		deletes:     reg.Counter("faster_deletes_total"),
		pendings:    reg.Counter("faster_pending_ops_total"),
		ioReads:     reg.Counter("faster_io_reads_total"),
		commits:     reg.Counter("faster_commits_total"),
		commitBytes: reg.Counter("faster_commit_bytes_total"),
		commitNs:    reg.Histogram("faster_commit_ns"),
	}
}

// Store is a FASTER instance with CPR durability. All operations happen
// through Sessions (Sec. 5.2); Commit triggers an asynchronous CPR
// checkpoint; Recover rebuilds a store from its latest commit.
type Store struct {
	cfg    Config
	epochs *epoch.Manager
	log    *hlog.Log
	index  *index

	// state packs the global phase (high 8 bits) and version (low 32 bits).
	state atomic.Uint64

	ckptMu sync.Mutex
	ckpt   *checkpointCtx // non-nil while a commit is active

	sessionMu sync.Mutex
	sessions  map[string]*Session
	// recoveredSerials maps session IDs to their recovered CPR points.
	recoveredSerials map[string]uint64

	commitSeq atomic.Uint64 // token counter

	// lastIndexToken/lastLis/lastLie identify the most recent fuzzy index
	// checkpoint, carried into log-only commit metadata (Sec. 6.3). Written
	// only from the single active checkpoint goroutine.
	lastIndexToken   string
	lastLis, lastLie uint64

	// results retains completed commit results by token (guarded by ckptMu).
	results map[string]CommitResult

	metrics storeMetrics
	tracer  *obs.Tracer
}

func packState(p Phase, v uint32) uint64   { return uint64(p)<<32 | uint64(v) }
func unpackState(s uint64) (Phase, uint32) { return Phase(s >> 32), uint32(s) }

// Open creates a Store ready for use at version 1.
func Open(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	em := epoch.New()
	em.Instrument(cfg.Metrics)
	l, err := hlog.New(hlog.Config{
		PageBits:        cfg.PageBits,
		MemPages:        cfg.MemPages,
		MutableFraction: cfg.MutableFraction,
		Device:          cfg.Device,
		Epochs:          em,
		IOWorkers:       cfg.IOWorkers,
		Metrics:         cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	idx, err := newIndex(cfg.IndexBuckets, 0)
	if err != nil {
		l.Close()
		return nil, err
	}
	s := &Store{
		cfg:              cfg,
		epochs:           em,
		log:              l,
		index:            idx,
		sessions:         make(map[string]*Session),
		recoveredSerials: make(map[string]uint64),
		metrics:          newStoreMetrics(cfg.Metrics),
		tracer:           cfg.Tracer,
	}
	cfg.Metrics.GaugeFunc("faster_version", func() int64 { return int64(s.Version()) })
	cfg.Metrics.GaugeFunc("faster_phase", func() int64 { return int64(s.Phase()) })
	cfg.Metrics.GaugeFunc("faster_sessions", func() int64 { return int64(s.SessionCount()) })
	s.state.Store(packState(Rest, 1))
	return s, nil
}

// Close shuts down background I/O. Outstanding sessions become invalid.
func (s *Store) Close() { s.log.Close() }

// Phase returns the current global phase.
func (s *Store) Phase() Phase { p, _ := unpackState(s.state.Load()); return p }

// Version returns the current CPR version.
func (s *Store) Version() uint32 { _, v := unpackState(s.state.Load()); return v }

// Log exposes the underlying HybridLog (diagnostics and experiments).
func (s *Store) Log() *hlog.Log { return s.log }

// Epochs exposes the store's epoch manager (shared with helper goroutines).
func (s *Store) Epochs() *epoch.Manager { return s.epochs }

// Metrics returns the store's metrics registry (never nil after Open, though
// it may be the nop registry).
func (s *Store) Metrics() *obs.Registry { return s.cfg.Metrics }

// Tracer returns the store's CPR phase tracer.
func (s *Store) Tracer() *obs.Tracer { return s.tracer }

// SessionCount reports the number of live sessions.
func (s *Store) SessionCount() int {
	s.sessionMu.Lock()
	defer s.sessionMu.Unlock()
	return len(s.sessions)
}

// recVersion returns the 13-bit on-record version for store version v.
func recVersion(v uint32) uint16 { return uint16(v) & hlog.MaxVersion }

// isFutureVersion reports whether a record version corresponds to v+1
// relative to commit version v (wraparound-safe: during a checkpoint only
// versions v and earlier, plus v+1, can appear).
func isFutureVersion(recVer uint16, v uint32) bool {
	return recVer == recVersion(v+1)
}
