package faster

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/epoch"
	"repro/internal/hlog"
	"repro/internal/storage"
)

// Phase is a state of the CPR commit state machine (Fig. 9a).
type Phase uint8

// The five phases of a FASTER CPR commit.
const (
	Rest Phase = iota
	Prepare
	InProgress
	WaitPending
	WaitFlush
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case Rest:
		return "rest"
	case Prepare:
		return "prepare"
	case InProgress:
		return "in-progress"
	case WaitPending:
		return "wait-pending"
	case WaitFlush:
		return "wait-flush"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// CommitKind selects how a checkpoint captures volatile records (App. D).
type CommitKind uint8

const (
	// FoldOver shifts the read-only offset to the tail: fully incremental,
	// but post-commit updates pay read-copy-update until the working set
	// migrates back to the mutable region.
	FoldOver CommitKind = iota
	// Snapshot writes the volatile log region to a separate artifact and
	// re-opens the region for in-place updates immediately after.
	Snapshot
)

// String implements fmt.Stringer.
func (k CommitKind) String() string {
	if k == Snapshot {
		return "snapshot"
	}
	return "fold-over"
}

// VersionTransfer selects how prepare→in-progress hand-off of records is
// coordinated (Sec. 6.5 / App. C).
type VersionTransfer uint8

const (
	// FineGrained uses bucket-level shared/exclusive latches (Alg. 4/5).
	FineGrained VersionTransfer = iota
	// CoarseGrained uses the safe-read-only offset as the eligibility
	// marker; conflicting operations go pending instead of latching.
	CoarseGrained
)

// String implements fmt.Stringer.
func (v VersionTransfer) String() string {
	if v == CoarseGrained {
		return "coarse"
	}
	return "fine"
}

// RMWOps defines read-modify-write semantics for a store (the paper's
// running per-key "sum" is AddUint64).
type RMWOps interface {
	// Initial returns the value for an RMW on a missing key.
	Initial(input []byte) []byte
	// Update computes the new value from the current one. It must not retain
	// cur or input.
	Update(cur, input []byte) []byte
}

// AddUint64 implements RMWOps over little-endian 8-byte counters, matching
// the paper's RMW workload (increment by an input array entry).
type AddUint64 struct{}

// Initial implements RMWOps.
func (AddUint64) Initial(input []byte) []byte {
	out := make([]byte, 8)
	copy(out, input)
	return out
}

// Update implements RMWOps.
func (AddUint64) Update(cur, input []byte) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, binary.LittleEndian.Uint64(cur)+binary.LittleEndian.Uint64(input))
	return out
}

// Config parameterizes a Store.
type Config struct {
	// IndexBuckets is the number of main hash buckets (power of two). The
	// paper's default is #keys/2 with 7 entries per bucket.
	IndexBuckets int
	// PageBits, MemPages, MutableFraction configure the HybridLog.
	PageBits        uint
	MemPages        int
	MutableFraction float64
	// Device backs the HybridLog. Defaults to an in-memory device.
	Device storage.Device
	// Checkpoints stores commit artifacts. Defaults to an in-memory store.
	Checkpoints storage.CheckpointStore
	// RMW supplies read-modify-write semantics. Defaults to AddUint64.
	RMW RMWOps
	// Kind selects fold-over or snapshot commits.
	Kind CommitKind
	// Transfer selects fine- or coarse-grained version transfer.
	Transfer VersionTransfer
	// IOWorkers sizes the async I/O pool.
	IOWorkers int
}

func (c *Config) fill() error {
	if c.IndexBuckets == 0 {
		c.IndexBuckets = 1 << 16
	}
	if c.IndexBuckets&(c.IndexBuckets-1) != 0 {
		return fmt.Errorf("faster: IndexBuckets %d must be a power of two", c.IndexBuckets)
	}
	if c.Device == nil {
		c.Device = storage.NewMemDevice()
	}
	if c.Checkpoints == nil {
		c.Checkpoints = storage.NewMemCheckpointStore()
	}
	if c.RMW == nil {
		c.RMW = AddUint64{}
	}
	return nil
}

// Store is a FASTER instance with CPR durability. All operations happen
// through Sessions (Sec. 5.2); Commit triggers an asynchronous CPR
// checkpoint; Recover rebuilds a store from its latest commit.
type Store struct {
	cfg    Config
	epochs *epoch.Manager
	log    *hlog.Log
	index  *index

	// state packs the global phase (high 8 bits) and version (low 32 bits).
	state atomic.Uint64

	ckptMu sync.Mutex
	ckpt   *checkpointCtx // non-nil while a commit is active

	sessionMu sync.Mutex
	sessions  map[string]*Session
	// recoveredSerials maps session IDs to their recovered CPR points.
	recoveredSerials map[string]uint64

	commitSeq atomic.Uint64 // token counter

	// lastIndexToken/lastLis/lastLie identify the most recent fuzzy index
	// checkpoint, carried into log-only commit metadata (Sec. 6.3). Written
	// only from the single active checkpoint goroutine.
	lastIndexToken   string
	lastLis, lastLie uint64

	// results retains completed commit results by token (guarded by ckptMu).
	results map[string]CommitResult
}

func packState(p Phase, v uint32) uint64   { return uint64(p)<<32 | uint64(v) }
func unpackState(s uint64) (Phase, uint32) { return Phase(s >> 32), uint32(s) }

// Open creates a Store ready for use at version 1.
func Open(cfg Config) (*Store, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	em := epoch.New()
	l, err := hlog.New(hlog.Config{
		PageBits:        cfg.PageBits,
		MemPages:        cfg.MemPages,
		MutableFraction: cfg.MutableFraction,
		Device:          cfg.Device,
		Epochs:          em,
		IOWorkers:       cfg.IOWorkers,
	})
	if err != nil {
		return nil, err
	}
	idx, err := newIndex(cfg.IndexBuckets, 0)
	if err != nil {
		l.Close()
		return nil, err
	}
	s := &Store{
		cfg:              cfg,
		epochs:           em,
		log:              l,
		index:            idx,
		sessions:         make(map[string]*Session),
		recoveredSerials: make(map[string]uint64),
	}
	s.state.Store(packState(Rest, 1))
	return s, nil
}

// Close shuts down background I/O. Outstanding sessions become invalid.
func (s *Store) Close() { s.log.Close() }

// Phase returns the current global phase.
func (s *Store) Phase() Phase { p, _ := unpackState(s.state.Load()); return p }

// Version returns the current CPR version.
func (s *Store) Version() uint32 { _, v := unpackState(s.state.Load()); return v }

// Log exposes the underlying HybridLog (diagnostics and experiments).
func (s *Store) Log() *hlog.Log { return s.log }

// Epochs exposes the store's epoch manager (shared with helper goroutines).
func (s *Store) Epochs() *epoch.Manager { return s.epochs }

// recVersion returns the 13-bit on-record version for store version v.
func recVersion(v uint32) uint16 { return uint16(v) & hlog.MaxVersion }

// isFutureVersion reports whether a record version corresponds to v+1
// relative to commit version v (wraparound-safe: during a checkpoint only
// versions v and earlier, plus v+1, can appear).
func isFutureVersion(recVer uint16, v uint32) bool {
	return recVer == recVersion(v+1)
}
