package faster

import (
	"encoding/binary"
	"os"
	"strconv"
	"sync"
	"testing"

	"repro/internal/storage"
)

// testShardCount returns the shard count multi-shard tests run at. The
// FASTER_TEST_SHARDS environment variable overrides the default (used by CI's
// second race-detector job to exercise the partitioned paths).
func testShardCount(def int) int {
	if v := os.Getenv("FASTER_TEST_SHARDS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func shardedConfig(n int) Config {
	return Config{
		Shards:       n,
		IndexBuckets: 1 << 10,
		PageBits:     14,
		MemPages:     8 * n,
	}
}

// TestShardedRouting checks that operations land on the shard the router
// picks and that every shard receives traffic under a spread of keys.
func TestShardedRouting(t *testing.T) {
	n := testShardCount(4)
	s, err := Open(shardedConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.NumShards() != n {
		t.Fatalf("NumShards = %d, want %d", s.NumShards(), n)
	}
	sess := s.StartSession()
	const keys = 512
	for k := uint64(0); k < keys; k++ {
		if st := sess.Upsert(key(k), u64(k+1)); st == Pending {
			sess.CompletePending(true)
		}
	}
	for k := uint64(0); k < keys; k++ {
		var got uint64
		var ok bool
		_, st := sess.Read(key(k), func(v []byte, s2 Status) {
			if s2 == Ok {
				got, ok = binary.LittleEndian.Uint64(v), true
			}
		})
		if st == Pending {
			sess.CompletePending(true)
		}
		if !ok || got != k+1 {
			t.Fatalf("key %d: got (%d,%v), want %d", k, got, ok, k+1)
		}
	}
	if n > 1 {
		// Each shard's log should have grown past its empty state.
		for i := 0; i < n; i++ {
			l := s.ShardLog(i)
			if l.Tail() == l.Begin() {
				t.Fatalf("shard %d received no records; router is not spreading keys", i)
			}
		}
	}
	sess.StopSession()
}

// TestShardedCommitAndRecover runs a cross-shard commit to completion and
// recovers from it: one token, one version, every shard durable, and the
// session's commit point covering exactly the pre-commit prefix.
func TestShardedCommitAndRecover(t *testing.T) {
	n := testShardCount(4)
	devs := make([]*storage.MemDevice, n)
	for i := range devs {
		devs[i] = storage.NewMemDevice()
	}
	ckpts := storage.NewMemCheckpointStore()
	cfg := shardedConfig(n)
	cfg.Checkpoints = ckpts
	cfg.DeviceFactory = func(i int) (storage.Device, error) { return devs[i], nil }
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()
	const committed = 200
	for k := uint64(1); k <= committed; k++ {
		if st := sess.Upsert(key(k), u64(k)); st == Pending {
			sess.CompletePending(true)
		}
	}
	res := driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	if res.Serials[id] != committed {
		t.Fatalf("commit point = %d, want %d", res.Serials[id], committed)
	}
	// Post-commit suffix that must NOT survive recovery.
	for k := uint64(committed + 1); k <= committed+100; k++ {
		if st := sess.Upsert(key(k), u64(k)); st == Pending {
			sess.CompletePending(true)
		}
	}
	sess.StopSession()
	s.Close()

	rcfg := shardedConfig(n)
	rcfg.Checkpoints = ckpts
	rcfg.DeviceFactory = func(i int) (storage.Device, error) { return devs[i], nil }
	r, err := Recover(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < n; i++ {
		if r.ShardVersion(i) != res.Version+1 {
			t.Fatalf("shard %d recovered at version %d, want %d", i, r.ShardVersion(i), res.Version+1)
		}
	}
	rs, point := r.ContinueSession(id)
	if point != committed {
		t.Fatalf("recovered commit point = %d, want %d", point, committed)
	}
	verifyPrefix(t, rs, committed, committed+100)
	rs.StopSession()
}

// TestShardedPartialCommitCrash is the coordinated-commit crash test: a
// cross-shard commit "crashes" after k of N shards finished wait-flush (their
// shard checkpoints are durable, the manifest is not). Recovery must land on
// the last commit durable on ALL shards — rolling the k finished shards back
// — and ContinueSession must return the minimum cross-shard prefix serial.
func TestShardedPartialCommitCrash(t *testing.T) {
	n := testShardCount(4)
	if n < 2 {
		t.Skip("needs at least 2 shards")
	}
	k := n / 2 // shards that finish the second commit before the crash

	devs := make([]*storage.MemDevice, n)
	for i := range devs {
		devs[i] = storage.NewMemDevice()
	}
	ckpts := storage.NewMemCheckpointStore()
	cfg := shardedConfig(n)
	cfg.Checkpoints = ckpts
	cfg.DeviceFactory = func(i int) (storage.Device, error) { return devs[i], nil }
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()

	const commit1 = 150
	for kk := uint64(1); kk <= commit1; kk++ {
		if st := sess.Upsert(key(kk), u64(kk)); st == Pending {
			sess.CompletePending(true)
		}
	}
	res1 := driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	if res1.Serials[id] != commit1 {
		t.Fatalf("commit 1 point = %d, want %d", res1.Serials[id], commit1)
	}

	const total = 300
	for kk := uint64(commit1 + 1); kk <= total; kk++ {
		if st := sess.Upsert(key(kk), u64(kk)); st == Pending {
			sess.CompletePending(true)
		}
	}

	// Second commit reaches wait-flush completion on only k shards: drive
	// their shard-level state machines directly, never writing the manifest —
	// exactly the on-disk state of a coordinator crash mid-commit.
	token2 := "ckpt-crash-000002"
	for i := 0; i < k; i++ {
		if _, err := s.shards[i].commit(CommitOptions{}, token2); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < k; i++ {
		for j := 0; ; j++ {
			if res, ok := s.shards[i].tryResult(token2); ok {
				if res.Err != nil {
					t.Fatalf("shard %d commit failed: %v", i, res.Err)
				}
				break
			}
			sess.Refresh()
			sess.CompletePending(false)
			if j > 1_000_000 {
				t.Fatalf("shard %d commit stuck in phase %v", i, s.ShardPhase(i))
			}
		}
		if s.ShardVersion(i) != res1.Version+2 {
			t.Fatalf("shard %d version = %d after second commit, want %d",
				i, s.ShardVersion(i), res1.Version+2)
		}
	}

	// Crash: snapshot checkpoint store first, then the devices (matching
	// write ordering — metadata follows its data).
	snapCkpts := ckpts.Clone()
	snapDevs := make([]*storage.MemDevice, n)
	for i := range devs {
		snapDevs[i] = devs[i].Clone()
	}
	sess.StopSession()
	s.Close()

	rcfg := shardedConfig(n)
	rcfg.Checkpoints = snapCkpts
	rcfg.DeviceFactory = func(i int) (storage.Device, error) { return snapDevs[i], nil }
	r, err := Recover(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The manifest for the partial commit was never written, so recovery must
	// land on commit 1 — the last version durable on ALL shards — rolling the
	// k finished shards back past their newer (orphaned) shard checkpoints.
	for i := 0; i < n; i++ {
		if r.ShardVersion(i) != res1.Version+1 {
			t.Fatalf("shard %d recovered at version %d, want %d (commit 1)",
				i, r.ShardVersion(i), res1.Version+1)
		}
	}
	rs, point := r.ContinueSession(id)
	if point != commit1 {
		t.Fatalf("recovered commit point = %d, want min cross-shard prefix %d", point, commit1)
	}
	verifyPrefix(t, rs, commit1, total)
	rs.StopSession()
}

// verifyPrefix asserts keys 1..present hold their own value and keys
// present+1..absentMax are gone.
func verifyPrefix(t *testing.T, sess *Session, present, absentMax uint64) {
	t.Helper()
	for kk := uint64(1); kk <= absentMax; kk++ {
		var got uint64
		var found, done bool
		_, st := sess.Read(key(kk), func(v []byte, s2 Status) {
			done = true
			if s2 == Ok {
				got, found = binary.LittleEndian.Uint64(v), true
			}
		})
		if st == Pending {
			sess.CompletePending(true)
		}
		if !done {
			t.Fatalf("key %d: read never completed", kk)
		}
		if kk <= present {
			if !found || got != kk {
				t.Fatalf("key %d: got (%d,%v), want %d", kk, got, found, kk)
			}
		} else if found {
			t.Fatalf("key %d: phantom value %d beyond the recovered prefix", kk, got)
		}
	}
}

// TestShardedConcurrentCommits runs concurrent sessions across shards with
// repeated coordinated commits — the multi-shard analogue of the single-store
// stress tests, primarily valuable under -race.
func TestShardedConcurrentCommits(t *testing.T) {
	n := testShardCount(2)
	cfg := shardedConfig(n)
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const sessions = 3
	const opsPer = 2000
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		i := i
		sess := s.StartSession()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for nn := uint64(1); nn <= opsPer; nn++ {
				if st := sess.Upsert(key(uint64(i)<<32|nn%64), u64(nn)); st == Pending {
					sess.CompletePending(true)
				}
			}
			sess.CompletePending(true)
			for s.Phase() != Rest {
				sess.Refresh()
				sess.CompletePending(false)
			}
			sess.StopSession()
		}()
	}
	pump := s.StartSession()
	for c := 0; c < 3; c++ {
		token, err := s.Commit(CommitOptions{})
		if err == ErrCommitInProgress {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for {
			if res, ok := s.TryResult(token); ok {
				if res.Err != nil {
					t.Fatalf("commit %d failed: %v", c, res.Err)
				}
				break
			}
			pump.Refresh()
			pump.CompletePending(false)
		}
	}
	pump.StopSession()
	wg.Wait()
}
