package faster

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hashfn"
	"repro/internal/hlog"
)

// CompactLog reclaims the log prefix [Begin, until): every record in it that
// is still live — reachable as the first match for its key from the hash
// index — is copied to the tail, then the begin address advances so chain
// walks treat the prefix as gone. This is the log-trimming role of FASTER's
// garbage collection referenced in the paper's setup (Sec. 7.1); dead
// versions, overwritten values and tombstoned keys are dropped.
//
// Compaction runs concurrently with normal operations but not with a CPR
// commit: it must be called in the rest phase and fails with
// ErrCommitInProgress otherwise (copied records would straddle the version
// shift). until is clamped to the safe-read-only offset — only the immutable
// region compacts. On a partitioned store each shard compacts its own log
// prefix up to min(until, shard safe-read-only).
// CompactLog runs on a session so the compaction work shares the session's
// epoch entry: the scan refreshes it continuously, keeping global progress
// (offset shifts, flushes) alive even when this is the only session.
func (sess *Session) CompactLog(until uint64) error {
	for _, ctx := range sess.ctxs {
		if err := ctx.compactLog(until); err != nil {
			return err
		}
	}
	return nil
}

// compactLog compacts one shard's log prefix (see Session.CompactLog).
func (sess *shardSession) compactLog(until uint64) error {
	s := sess.store
	if s.restore.Load() != nil {
		// Cold buckets still point into the prefix being compacted; copying
		// records around them would race the warm-up replay.
		return ErrRestoring
	}
	if p, _ := unpackState(s.state.Load()); p != Rest {
		return ErrCommitInProgress
	}
	if sro := s.log.SafeReadOnly(); until > sro {
		until = sro
	}
	begin := s.log.Begin()
	if until <= begin {
		return nil
	}
	g := sess.guard
	_, version := unpackState(s.state.Load())

	var keyBuf, valBuf []byte
	count := 0
	err := s.log.Scan(begin, until, func(addr uint64, rec hlog.RecordRef) bool {
		if count++; count%64 == 0 {
			g.Refresh()
		}
		if rec.Invalid() {
			return true
		}
		keyBuf = rec.Key(keyBuf[:0])
		h := hashfn.Hash64(keyBuf)
		for {
			slot := s.index.findSlot(h)
			if slot == nil {
				return true // key no longer indexed
			}
			liveAddr, ok := s.chainFirstMatch(slot, keyBuf)
			if !ok || liveAddr != addr {
				return true // a newer version supersedes this record
			}
			if rec.Tombstone() {
				// A live tombstone at the chain position: if it is the chain
				// head, the key can be dropped from the index entirely;
				// otherwise leave it (the walk ends at begin afterwards).
				if entryAddr(slot.Load()) == addr {
					old := slot.Load()
					slot.CompareAndSwap(old, 0) //nolint:errcheck
				}
				return true
			}
			// Copy the live record to the tail, linked ahead of the chain.
			valBuf = rec.Value(valBuf[:0])
			valCap := len(valBuf)
			if valCap < 8 {
				valCap = 8
			}
			size := hlog.RecordSize(len(keyBuf), valCap)
			newAddr := s.log.Allocate(g, size)
			oldEntry := slot.Load()
			if err := s.log.WriteRecord(newAddr, entryAddr(oldEntry),
				recVersion(version), keyBuf, valBuf, valCap); err != nil {
				panic(fmt.Sprintf("faster: compact write: %v", err))
			}
			if slot.CompareAndSwap(oldEntry, oldEntry&^entryAddrMask|newAddr) {
				return true
			}
			// A concurrent update moved the chain head; orphan our copy and
			// re-check liveness (the update may have superseded this record).
			s.log.Record(newAddr).SetInvalid()
		}
	})
	if err != nil {
		return fmt.Errorf("faster: compact scan: %w", err)
	}
	s.log.ShiftBegin(until)
	return nil
}

// chainFirstMatch walks a slot's chain and returns the address of the first
// record matching key. Cold records are read synchronously (compaction is a
// maintenance path).
func (s *shard) chainFirstMatch(slot *atomic.Uint64, key []byte) (uint64, bool) {
	addr := entryAddr(slot.Load())
	head := s.log.Head()
	begin := s.log.Begin()
	for addr >= begin && addr >= hlog.FirstAddress {
		var rec hlog.RecordRef
		if addr >= head {
			rec = s.log.Record(addr)
		} else {
			r, err := s.log.ReadRecordSync(addr)
			if err != nil {
				return 0, false
			}
			rec = r
		}
		if !rec.Invalid() && rec.KeyEquals(key) {
			return addr, true
		}
		addr = rec.Prev()
	}
	return 0, false
}
