package faster

import (
	"encoding/binary"
	"testing"

	"repro/internal/ycsb"
)

// Microbenchmarks for the store's hot paths (rest phase, in-memory working
// set — the regime the paper's 150M+ ops/sec headline numbers measure).

func benchStore(b *testing.B, keys uint64) (*Store, *Session) {
	b.Helper()
	s, err := Open(Config{IndexBuckets: 1 << 14, PageBits: 18, MemPages: 64})
	if err != nil {
		b.Fatal(err)
	}
	sess := s.StartSession()
	var kb, vb [8]byte
	for i := uint64(0); i < keys; i++ {
		binary.LittleEndian.PutUint64(kb[:], i)
		binary.LittleEndian.PutUint64(vb[:], i)
		if st := sess.Upsert(kb[:], vb[:]); st == Pending {
			sess.CompletePending(true)
		}
	}
	b.Cleanup(func() { sess.StopSession(); s.Close() })
	return s, sess
}

func BenchmarkUpsertInPlace(b *testing.B) {
	_, sess := benchStore(b, 1<<14)
	var kb, vb [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i)&(1<<14-1))
		binary.LittleEndian.PutUint64(vb[:], uint64(i))
		sess.Upsert(kb[:], vb[:])
	}
}

func BenchmarkReadHot(b *testing.B) {
	_, sess := benchStore(b, 1<<14)
	var kb [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i)&(1<<14-1))
		sess.Read(kb[:], nil)
	}
}

func BenchmarkRMWInPlace(b *testing.B) {
	_, sess := benchStore(b, 1<<14)
	var kb, db_ [8]byte
	binary.LittleEndian.PutUint64(db_[:], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i)&(1<<14-1))
		sess.RMW(kb[:], db_[:])
	}
}

func BenchmarkYCSBZipf5050(b *testing.B) {
	_, sess := benchStore(b, 1<<14)
	gen := ycsb.NewGenerator(ycsb.TxnSpec{Keys: 1 << 14, TxnSize: 1,
		ReadFraction: 0.5, Theta: 0.99}, 7)
	var kb, vb [8]byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binary.LittleEndian.PutUint64(kb[:], gen.NextKey())
		if gen.IsWrite() {
			binary.LittleEndian.PutUint64(vb[:], uint64(i))
			sess.Upsert(kb[:], vb[:])
		} else {
			sess.Read(kb[:], nil)
		}
	}
}

func BenchmarkCommitLogOnly(b *testing.B) {
	s, sess := benchStore(b, 1<<12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		token, err := s.Commit(CommitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok := s.TryResult(token); ok {
				break
			}
			sess.Refresh()
		}
		// Touch a few keys so the next commit has fresh work.
		var kb, vb [8]byte
		for k := 0; k < 16; k++ {
			binary.LittleEndian.PutUint64(kb[:], uint64(k))
			binary.LittleEndian.PutUint64(vb[:], uint64(i))
			sess.Upsert(kb[:], vb[:])
		}
	}
}
