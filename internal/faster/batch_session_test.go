package faster

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func bkey(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i)*0x9e3779b97f4a7c15)
	return b
}

// TestSessionBatchMode: a BeginBatch/EndBatch run produces the same results
// as plain ops, serials keep advancing monotonically, and the op freelist
// actually recycles records instead of growing without bound.
func TestSessionBatchMode(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 14, MemPages: 8}
	store, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sess := store.StartSession()
	defer sess.StopSession()

	const n = 500
	sess.BeginBatch()
	var lastSerial uint64
	for i := 0; i < n; i++ {
		if st := sess.Upsert(bkey(i), []byte(fmt.Sprintf("val-%d", i))); st != Ok {
			t.Fatalf("batched upsert %d: %v", i, st)
		}
		if s := sess.Serial(); s <= lastSerial {
			t.Fatalf("serial went backwards in batch: %d after %d", s, lastSerial)
		} else {
			lastSerial = s
		}
		// Interleave reads: in batch mode the returned slice is only valid
		// until the next op, so compare immediately.
		if i%7 == 0 {
			v, st := sess.Read(bkey(i), nil)
			if st != Ok || string(v) != fmt.Sprintf("val-%d", i) {
				t.Fatalf("batched read %d: %q %v", i, v, st)
			}
		}
	}
	sess.EndBatch()

	if len(sess.opFree) == 0 {
		t.Fatal("batch mode never recycled an op record into the freelist")
	}
	if len(sess.opFree) > opFreeMax {
		t.Fatalf("freelist grew past its cap: %d > %d", len(sess.opFree), opFreeMax)
	}

	// Everything written in batch mode reads back via plain ops.
	for i := 0; i < n; i++ {
		v, st := sess.Read(bkey(i), nil)
		if st != Ok || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("post-batch read %d: %q %v", i, v, st)
		}
	}

	// A second batch run reuses the warm freelist and stays correct even when
	// key/value sizes change shape between runs.
	sess.BeginBatch()
	for i := 0; i < 64; i++ {
		big := make([]byte, 200+i)
		for j := range big {
			big[j] = byte(i)
		}
		if st := sess.Upsert(bkey(i), big); st != Ok {
			t.Fatalf("second batch upsert %d: %v", i, st)
		}
		v, st := sess.Read(bkey(i), nil)
		if st != Ok || len(v) != 200+i || v[0] != byte(i) {
			t.Fatalf("second batch read %d: len=%d %v", i, len(v), st)
		}
	}
	sess.EndBatch()

	// Batched writes participate in CPR commits like any other op.
	token, err := store.Commit(CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		sess.Refresh()
		sess.CompletePending(false)
		if res, ok := store.TryResult(token); ok {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if got := res.Serials[sess.ID()]; got != sess.Serial() {
				t.Fatalf("commit point %d, want session serial %d", got, sess.Serial())
			}
			break
		}
	}
}

// TestSessionBatchDeleteRecycle: deletes and not-found reads recycle through
// the freelist too, and batch mode never aliases results across ops.
func TestSessionBatchDeleteRecycle(t *testing.T) {
	cfg := Config{IndexBuckets: 1 << 8, PageBits: 14, MemPages: 8}
	store, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	sess := store.StartSession()
	defer sess.StopSession()

	sess.BeginBatch()
	for i := 0; i < 32; i++ {
		sess.Upsert(bkey(i), bkey(i))
	}
	for i := 0; i < 32; i += 2 {
		if st := sess.Delete(bkey(i)); st != Ok {
			t.Fatalf("batched delete %d: %v", i, st)
		}
	}
	for i := 0; i < 32; i++ {
		v, st := sess.Read(bkey(i), nil)
		if i%2 == 0 {
			if st != NotFound {
				t.Fatalf("read deleted %d: %v", i, st)
			}
		} else if st != Ok || string(v) != string(bkey(i)) {
			t.Fatalf("read kept %d: %v", i, st)
		}
	}
	sess.EndBatch()
}
