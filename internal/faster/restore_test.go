package faster

import (
	"bytes"
	"testing"

	"repro/internal/hashfn"
	"repro/internal/obs"
	"repro/internal/storage"
)

// buildRestoreImage builds a crash image whose newest commit is log-only, so
// recovery has a real suffix to replay: an index-anchored commit over nBase
// keys, then a suffix of overwrites, brand-new keys and tombstones, committed
// without the index. Returns the "disk", the expected value of every live key,
// the set of keys that must be absent, and the workload session's ID.
func buildRestoreImage(t *testing.T, nBase, nSuffix int) (
	*storage.MemDevice, *storage.MemCheckpointStore,
	map[uint64]uint64, map[uint64]bool, string) {
	t.Helper()
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	cfg := smallConfig()
	cfg.Device, cfg.Checkpoints = dev, ckpts
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	id := sess.ID()
	want := map[uint64]uint64{}
	gone := map[uint64]bool{}
	put := func(k, v uint64) {
		if st := sess.Upsert(key(k), u64(v)); st == Pending {
			sess.CompletePending(true)
		}
		want[k] = v
		delete(gone, k)
	}
	for i := 0; i < nBase; i++ {
		put(uint64(i), uint64(i)+1000)
		if i%64 == 0 {
			sess.Refresh()
		}
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	for i := 0; i < nSuffix; i++ {
		switch i % 3 {
		case 0: // overwrite a base key
			put(uint64(i%nBase), uint64(i)+5000)
		case 1: // a key that exists only in the suffix
			put(uint64(nBase+i), uint64(i)+7000)
		case 2: // tombstone a base key
			k := uint64((i * 7) % nBase)
			if st := sess.Delete(key(k)); st == Pending {
				sess.CompletePending(true)
			}
			delete(want, k)
			gone[k] = true
		}
		if i%64 == 0 {
			sess.Refresh()
		}
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{}) // log-only: suffix on the log
	sess.StopSession()
	s.Close()
	return dev, ckpts, want, gone, id
}

// readVal drives one read to completion and reports (value, found).
func readVal(t *testing.T, sess *Session, k uint64) ([]byte, bool) {
	t.Helper()
	var got []byte
	var found, done bool
	_, st := sess.Read(key(k), func(v []byte, s2 Status) {
		done = true
		if s2 == Ok {
			got, found = append([]byte(nil), v...), true
		} else if s2 != NotFound {
			t.Fatalf("read key %d: status %v", k, s2)
		}
	})
	if st == Pending {
		sess.CompletePending(true)
	}
	if !done {
		t.Fatalf("read key %d never completed", k)
	}
	return got, found
}

// checkImage asserts the store serves exactly the expected post-recovery
// values: every live key its newest committed value, every tombstoned key
// absent.
func checkImage(t *testing.T, label string, s *Store, want map[uint64]uint64, gone map[uint64]bool) {
	t.Helper()
	sess := s.StartSession()
	defer sess.StopSession()
	for k, v := range want {
		got, found := readVal(t, sess, k)
		if !found || !bytes.Equal(got, u64(v)) {
			t.Fatalf("%s: key %d: got (%x,%v), want %d", label, k, got, found, v)
		}
	}
	for k := range gone {
		if got, found := readVal(t, sess, k); found {
			t.Fatalf("%s: tombstoned key %d resurrected with %x", label, k, got)
		}
	}
}

// TestInstantRestoreFlightProvesPrefix is the instant-restore safety
// assertion run by CI: with a flight recorder attached, every read issued
// during the warm-up window must already have a warm-bucket event for its
// key's bucket (or the fully-warm sweep event) in the recorder by the time it
// returns — the recorder-visible proof that no request observed pre-prefix
// state. Values are checked against the committed image at the same time.
func TestInstantRestoreFlightProvesPrefix(t *testing.T) {
	dev, ckpts, want, gone, _ := buildRestoreImage(t, 256, 3000)

	cfg := smallConfig()
	cfg.Device, cfg.Checkpoints = dev, ckpts
	cfg.InstantRestore = true
	cfg.Flight = obs.NewFlightRecorder(1 << 14)
	r, report, err := RecoverWithReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !report.Instant {
		t.Fatal("RecoveryReport.Instant not set for an instant restore")
	}

	sess := r.StartSession()
	defer sess.StopSession()
	mask := r.shards[0].index.mask
	warmSeen := map[uint64]bool{}
	fullyWarm := false
	refreshWarm := func() {
		evs, _ := r.Flight().Events()
		for _, ev := range evs {
			switch ev.Kind {
			case obs.FlightWarmBucket:
				warmSeen[ev.Arg1] = true
			case obs.FlightSweep:
				if ev.Arg1 == 0 {
					fullyWarm = true
				}
			}
		}
	}
	assertWarmProof := func(k uint64) {
		b := uint64(uint32(hashfn.Hash64(key(k)) & mask))
		if warmSeen[b] || fullyWarm {
			return
		}
		refreshWarm()
		if !warmSeen[b] && !fullyWarm {
			t.Fatalf("read of key %d returned but bucket %d has no warm-bucket "+
				"flight event: request may have observed pre-prefix state", k, b)
		}
	}
	for k, v := range want {
		got, found := readVal(t, sess, k)
		assertWarmProof(k)
		if !found || !bytes.Equal(got, u64(v)) {
			t.Fatalf("key %d during warm-up: got (%x,%v), want %d", k, got, found, v)
		}
	}
	for k := range gone {
		_, found := readVal(t, sess, k)
		assertWarmProof(k)
		if found {
			t.Fatalf("tombstoned key %d visible during warm-up", k)
		}
	}

	if err := r.WaitRestored(); err != nil {
		t.Fatalf("WaitRestored: %v", err)
	}
	if r.Restoring() {
		t.Fatal("Restoring() still true after WaitRestored")
	}
	st := r.RestoreStatus()
	if st == nil || st.Restoring || len(st.Shards) != 1 {
		t.Fatalf("final RestoreStatus = %+v", st)
	}
	sh := st.Shards[0]
	if sh.WarmBuckets != sh.TotalBuckets || sh.ColdBuckets != 0 {
		t.Fatalf("not fully warm: %+v", sh)
	}
	if sh.SuffixRecords == 0 || sh.ReplayedRecords != sh.SuffixRecords {
		t.Fatalf("suffix accounting off: replayed %d of %d",
			sh.ReplayedRecords, sh.SuffixRecords)
	}
	if sh.PendingRecords != 0 {
		t.Fatalf("pending records remain after full warm: %d", sh.PendingRecords)
	}
	if sh.OnDemandWarms+sh.SweepWarms == 0 {
		t.Fatal("no bucket was ever warmed by name")
	}
	if sh.TimeToWarmNanos <= 0 {
		t.Fatalf("time-to-warm not recorded: %d", sh.TimeToWarmNanos)
	}
	// Once warm the store must commit again.
	s2 := r.StartSession()
	s2.Upsert(key(9999), u64(1))
	driveCommit(t, r, []*Session{sess, s2}, CommitOptions{})
	s2.StopSession()
}

// TestInstantRestoreMatchesFullRecovery recovers the same crash image twice —
// full replay and instant restore — and requires identical serving state:
// every key's value, every tombstone, and the recovered CPR point.
func TestInstantRestoreMatchesFullRecovery(t *testing.T) {
	dev, ckpts, want, gone, id := buildRestoreImage(t, 200, 2000)

	full := smallConfig()
	full.Device, full.Checkpoints = dev.Clone(), ckpts.Clone()
	fr, freport, err := RecoverWithReport(full)
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Close()
	if freport.Instant {
		t.Fatal("full recovery flagged Instant")
	}
	if fr.RestoreStatus() != nil {
		t.Fatal("full recovery exposes a RestoreStatus")
	}

	inst := smallConfig()
	inst.Device, inst.Checkpoints = dev.Clone(), ckpts.Clone()
	inst.InstantRestore = true
	ir, ireport, err := RecoverWithReport(inst)
	if err != nil {
		t.Fatal(err)
	}
	defer ir.Close()
	if !ireport.Instant {
		t.Fatal("instant recovery not flagged Instant")
	}
	if ireport.Token != freport.Token || ireport.Version != freport.Version {
		t.Fatalf("recovered different commits: instant %s/v%d vs full %s/v%d",
			ireport.Token, ireport.Version, freport.Token, freport.Version)
	}
	if err := ir.WaitRestored(); err != nil {
		t.Fatal(err)
	}

	checkImage(t, "full", fr, want, gone)
	checkImage(t, "instant", ir, want, gone)

	fs, fpoint := fr.ContinueSession(id)
	is, ipoint := ir.ContinueSession(id)
	if fpoint != ipoint {
		t.Fatalf("CPR points diverge: full %d, instant %d", fpoint, ipoint)
	}
	fs.StopSession()
	is.StopSession()
}

// TestInstantRestoreGatesCommitAndCompaction pins the maintenance gates
// deterministically with a hand-built restore state: Commit and CompactLog
// refuse with ErrRestoring while the shard is cold, operations warm their
// bucket and proceed, and both resume once the restore detaches.
func TestInstantRestoreGatesCommitAndCompaction(t *testing.T) {
	s, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	if st := sess.Upsert(key(1), u64(41)); st != Ok {
		t.Fatalf("seed upsert: %v", st)
	}

	sh := s.shards[0]
	rs := newRestoreState(sh, "tok", 1, 0, 0)
	rs.analyzed = true // analysis done, buckets still cold
	sh.restore.Store(rs)

	if !s.Restoring() {
		t.Fatal("Restoring() false with an active restore")
	}
	if _, err := s.Commit(CommitOptions{}); err != ErrRestoring {
		t.Fatalf("Commit during restore: %v, want ErrRestoring", err)
	}
	if err := sess.CompactLog(^uint64(0)); err != ErrRestoring {
		t.Fatalf("CompactLog during restore: %v, want ErrRestoring", err)
	}
	st := s.RestoreStatus()
	if st == nil || !st.Restoring || st.ColdBuckets() == 0 {
		t.Fatalf("mid-restore status = %+v", st)
	}

	// Operations are never refused: they warm their bucket and proceed.
	if st := sess.Upsert(key(1), u64(42)); st != Ok {
		t.Fatalf("upsert during restore: %v", st)
	}
	if got, found := readVal(t, sess, 1); !found || !bytes.Equal(got, u64(42)) {
		t.Fatalf("read during restore: (%x,%v)", got, found)
	}
	if rs.ondemandWarms.Load() == 0 {
		t.Fatal("ops did not warm their bucket on demand")
	}

	sh.restore.Store(nil)
	driveCommit(t, s, []*Session{sess}, CommitOptions{})
}

// TestInstantRestoreMultiShard runs the instant path on a partitioned store:
// every shard restores independently and the aggregate status covers them all.
func TestInstantRestoreMultiShard(t *testing.T) {
	ckpts := storage.NewMemCheckpointStore()
	devs := make(map[int]*storage.MemDevice)
	cfg := Config{Shards: 2, IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16,
		Checkpoints: ckpts,
		DeviceFactory: func(i int) (storage.Device, error) {
			d := storage.NewMemDevice()
			devs[i] = d
			return d, nil
		}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.StartSession()
	want := map[uint64]uint64{}
	for i := 0; i < 512; i++ {
		k := uint64(i)
		if st := sess.Upsert(key(k), u64(k+100)); st == Pending {
			sess.CompletePending(true)
		}
		want[k] = k + 100
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{WithIndex: true})
	for i := 0; i < 512; i++ {
		k := uint64(i)
		if st := sess.Upsert(key(k), u64(k+900)); st == Pending {
			sess.CompletePending(true)
		}
		want[k] = k + 900
	}
	driveCommit(t, s, []*Session{sess}, CommitOptions{})
	sess.StopSession()
	s.Close()

	rcfg := Config{Shards: 2, IndexBuckets: 1 << 8, PageBits: 13, MemPages: 16,
		Checkpoints:    ckpts,
		DeviceFactory:  func(i int) (storage.Device, error) { return devs[i], nil },
		InstantRestore: true}
	r, report, err := RecoverWithReport(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !report.Instant {
		t.Fatal("partitioned instant restore not flagged")
	}
	checkImage(t, "multishard", r, want, nil)
	if err := r.WaitRestored(); err != nil {
		t.Fatal(err)
	}
	st := r.RestoreStatus()
	if st == nil || len(st.Shards) != 2 {
		t.Fatalf("RestoreStatus shards = %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.ColdBuckets != 0 || sh.ReplayedRecords != sh.SuffixRecords {
			t.Fatalf("shard %d not cleanly warm: %+v", sh.Shard, sh)
		}
	}
}
