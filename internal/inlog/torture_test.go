package inlog

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

// Crash-torture: seeded crashes mid-append, mid-fsync, mid-commit and
// mid-trim. Every crash image must recover to a state containing exactly
// the records the reopened log retains — each acked offset applied exactly
// once, and nothing that the log lost (never-fsynced appends) surviving as
// applied. The workload is self-describing: record o is "RMW key (o % keys)
// += 1", so the exact expected value of every counter is computable from
// the reopened log's tail alone.

const tortureKeys = 5

// crashImage is a hard-crash snapshot: cloned in write-ordering order —
// checkpoint store, then the store's log device, then the ingestion-log
// segments — paired with the ack frontier the client had observed.
type crashImage struct {
	name  string
	acked uint64
	ck    *storage.MemCheckpointStore
	dev   *storage.MemDevice
	segs  *MemSegmentStore
}

// rig wires the full stack: ingestion log over SyncBufferDevice(FaultDevice)
// segments (so crashes drop unsynced appends and armed faults tear fsyncs),
// a FASTER store whose checkpoint artifacts flow through the same injector
// (for named commit crash points), and the apply pump between them.
type rig struct {
	t     *testing.T
	segs  *MemSegmentStore
	inj   *storage.Injector
	memCk *storage.MemCheckpointStore
	dev   *storage.MemDevice
	log   *Log
	store *faster.Store
	pump  *Pump
	acked atomic.Uint64
	next  int // next record index to append
}

func newRig(t *testing.T, segmentBytes int64) *rig {
	t.Helper()
	r := &rig{
		t:     t,
		segs:  NewMemSegmentStore(),
		inj:   storage.NewInjector(storage.FaultConfig{Seed: 1}),
		memCk: storage.NewMemCheckpointStore(),
		dev:   storage.NewMemDevice(),
	}
	var err error
	r.log, err = Open(Config{
		Segments: r.segs, SegmentBytes: segmentBytes, Fsync: FsyncManual,
		WrapDevice: func(d storage.Device) (storage.Device, error) {
			return storage.NewSyncBufferDevice(storage.NewFaultDevice(d, r.inj))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.store, err = faster.Open(faster.Config{
		IndexBuckets: 1 << 8, PageBits: 12, MemPages: 8,
		Device:      r.dev,
		Checkpoints: storage.NewFaultCheckpointStore(r.memCk, r.inj),
		RMW:         faster.AddUint64{},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.pump, err = StartPump(PumpConfig{Log: r.log, Store: r.store})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) append(n int) {
	for i := 0; i < n; i++ {
		appendAdd(r.t, r.log, r.next, tortureKeys)
		r.next++
	}
}

// sync fsyncs the log and advances the client-visible ack frontier — the
// moment after which those offsets count as acked for the crash contract.
func (r *rig) sync() {
	if err := r.log.Sync(); err != nil {
		r.t.Fatal(err)
	}
	r.acked.Store(r.log.Durable())
}

func (r *rig) waitApplied() {
	if r.next > 0 {
		if err := r.pump.WaitApplied(uint64(r.next) - 1); err != nil {
			r.t.Fatal(err)
		}
	}
}

func (r *rig) commit() faster.CommitResult {
	token, err := r.store.Commit(faster.CommitOptions{WithIndex: true})
	if err != nil {
		r.t.Fatal(err)
	}
	res := r.store.WaitForCommit(token)
	if res.Err != nil {
		r.t.Fatalf("commit %s: %v", token, res.Err)
	}
	return res
}

// snap takes a crash image. Safe to call from fault-injection callbacks:
// it reads the ack frontier first (conservative — an ack that races the
// clone is simply not checked) and touches no Log locks.
func (r *rig) snap(name string) crashImage {
	return crashImage{
		name:  name,
		acked: r.acked.Load(),
		ck:    r.memCk.Clone(),
		dev:   r.dev.Clone(),
		segs:  r.segs.Clone(),
	}
}

func (r *rig) close() {
	r.pump.Close()
	r.store.Close()
	r.log.Close()
}

// verifyImage recovers from a crash image and asserts the exactly-once
// contract.
func verifyImage(t *testing.T, img crashImage) {
	t.Helper()
	cfg := faster.Config{IndexBuckets: 1 << 8, PageBits: 12, MemPages: 8,
		Device: img.dev, Checkpoints: img.ck, RMW: faster.AddUint64{}}
	s, err := faster.Recover(cfg)
	if err != nil {
		// No commit had completed in this image: recovery is a fresh store
		// fed by a full log replay.
		cfg.Device = storage.NewMemDevice()
		cfg.Checkpoints = storage.NewMemCheckpointStore()
		if s, err = faster.Open(cfg); err != nil {
			t.Fatalf("%s: %v", img.name, err)
		}
	}
	l, err := Open(Config{Segments: img.segs, Fsync: FsyncManual})
	if err != nil {
		t.Fatalf("%s: reopen log: %v", img.name, err)
	}
	tail := l.Tail()
	if tail < img.acked {
		t.Fatalf("%s: log lost acked records: tail %d < acked %d", img.name, tail, img.acked)
	}
	p, err := StartPump(PumpConfig{Log: l, Store: s})
	if err != nil {
		t.Fatalf("%s: %v", img.name, err)
	}
	if tail > 0 {
		if err := p.WaitApplied(tail - 1); err != nil {
			t.Fatalf("%s: %v", img.name, err)
		}
	}
	sess := s.StartSession()
	for k := 0; k < tortureKeys; k++ {
		want := expectedCount(k, tortureKeys, tail)
		got := readCounter(t, sess, counterKey(k))
		if got != want {
			t.Fatalf("%s: key %d = %d, want %d (tail %d, acked %d): exactly-once violated",
				img.name, k, got, want, tail, img.acked)
		}
	}
	sess.StopSession()
	p.Close()
	s.Close()
	l.Close()
}

// TestTortureMidAppend: crash with a suffix of appends never fsynced —
// they must vanish, everything acked must survive.
func TestTortureMidAppend(t *testing.T) {
	for seed := 1; seed <= 3; seed++ {
		r := newRig(t, 1<<20)
		r.append(30)
		r.sync()
		r.waitApplied()
		r.commit()
		r.append(10)
		r.sync()
		r.append(3 + 2*seed) // never synced: must not survive the crash
		img := r.snap(fmt.Sprintf("mid-append/seed%d", seed))
		r.close()
		verifyImage(t, img)
		if img.acked != 40 {
			t.Fatalf("seed %d: acked = %d, want 40", seed, img.acked)
		}
	}
}

// TestTortureMidFsync: the crash tears the fsync flush itself — a prefix
// of the dirty range reaches the medium mid-Sync. The reopened log must
// truncate at the tear, losing only unacked records.
func TestTortureMidFsync(t *testing.T) {
	for seed := 1; seed <= 3; seed++ {
		r := newRig(t, 1<<20) // single segment: each Sync is one flush write
		r.append(25)
		r.sync() // flush write #1
		r.waitApplied()
		r.commit()
		r.append(10 + 3*seed)
		var img crashImage
		name := fmt.Sprintf("mid-fsync/seed%d", seed)
		r.inj.ArmDeviceWrite(2, func() { img = r.snap(name) }) // tear flush write #2
		r.sync()
		if img.ck == nil {
			t.Fatalf("seed %d: device-write crash point never fired", seed)
		}
		r.waitApplied()
		r.close()
		verifyImage(t, img)
		// The tear hit after phase A was acked but before phase B's sync
		// returned, so the image's ack frontier is still phase A.
		if img.acked != 25 {
			t.Fatalf("seed %d: acked = %d, want 25", seed, img.acked)
		}
	}
}

// TestTortureMidCommit: crashes at every interesting instant of the commit
// pipeline — before/mid the metadata write, mid the latest-pointer write,
// after the latest-pointer but before the watermark attachment, and mid the
// watermark artifact itself. Recovery must land on a consistent commit
// (falling back as needed) and the anchor arithmetic must still produce an
// exact replay offset.
func TestTortureMidCommit(t *testing.T) {
	points := []string{
		"before:meta-ckpt-000002",
		"torn:meta-ckpt-000002",
		"torn:latest",
		"after:latest",
		"torn:inlog-ckpt-000002",
	}
	for _, point := range points {
		point := point
		t.Run(point, func(t *testing.T) {
			r := newRig(t, 512)
			r.append(30)
			r.sync()
			r.waitApplied()
			r.commit() // ckpt-000001, with watermark
			r.append(20)
			r.sync()
			r.waitApplied()
			var img crashImage
			r.inj.Arm(point, func() { img = r.snap(point) })
			r.commit() // ckpt-000002: crash point fires mid-flight, live run completes
			if img.ck == nil {
				t.Fatalf("crash point %s never fired", point)
			}
			r.append(12) // post-crash-point traffic: not in the image, live run must still work
			r.sync()
			r.waitApplied()
			r.close()
			verifyImage(t, img)
		})
	}
}

// TestTortureMidTrim: crash right after a commit whose trim is (or may
// still be) running, plus a deterministic "one segment removed, then died"
// image. Recovery must replay from the watermark even though the log no
// longer starts at offset zero.
func TestTortureMidTrim(t *testing.T) {
	r := newRig(t, 256)
	r.append(40)
	r.sync()
	r.waitApplied()
	r.commit() // trims everything below offset 40 (async)
	waitTrim := func(min uint64) {
		deadline := time.Now().Add(2 * time.Second)
		for r.log.Start() < min && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	waitTrim(1)
	if r.log.Start() == 0 {
		t.Fatal("trim never advanced the log start")
	}
	bases, _ := r.segs.List()
	if bases[0] != r.log.Start() {
		t.Fatalf("segments below the trim watermark still on disk: %v (start %d)", bases, r.log.Start())
	}

	r.append(20)
	r.sync()
	r.waitApplied()
	r.commit()
	img := r.snap("mid-trim/racing") // trim for this commit races the clone
	r.append(15)                     // uncommitted suffix above the watermark
	r.sync()
	r.waitApplied()
	imgSuffix := r.snap("mid-trim/suffix")
	r.close()

	verifyImage(t, img)
	verifyImage(t, imgSuffix)

	// Deterministic partial trim: the crash struck after one segment was
	// unlinked but before the rest were.
	partial := crashImage{name: "mid-trim/partial", acked: imgSuffix.acked,
		ck: imgSuffix.ck.Clone(), dev: imgSuffix.dev.Clone(), segs: imgSuffix.segs.Clone()}
	pb, _ := partial.segs.List()
	committed := uint64(60) // both commits cover offsets < 60
	if len(pb) > 1 && pb[1] <= committed {
		if err := partial.segs.Remove(pb[0]); err != nil {
			t.Fatal(err)
		}
		verifyImage(t, partial)
	}
}
