package inlog

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSegmentRecord hammers the record framing from both directions: any
// payload must round-trip through appendRecord/parseRecord, and arbitrary
// byte soup fed to the parser must either yield exactly the frame that a
// legitimate writer could have produced or fail as torn — never panic,
// never mis-frame.
func FuzzSegmentRecord(f *testing.F) {
	f.Add(uint64(0), []byte{}, []byte{})
	f.Add(uint64(1), []byte("hello"), []byte("garbage"))
	f.Add(uint64(1<<40), bytes.Repeat([]byte{0xAB}, 300), []byte{0x49, 0x4C, 0x52, 0x31})
	seed := appendRecord(nil, 7, []byte("seed-payload"))
	f.Add(uint64(7), []byte("x"), seed)

	f.Fuzz(func(t *testing.T, offset uint64, payload, raw []byte) {
		// Round-trip: a frame written at `offset` parses back exactly when
		// the reader expects that offset...
		frame := appendRecord(nil, offset, payload)
		got, n, err := parseRecord(frame, offset)
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if n != len(frame) || !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch: n=%d len=%d payload %q != %q", n, len(frame), got, payload)
		}
		// ... and under any other expected offset it reads as torn, which is
		// what keeps stale bytes past a logical truncation unparseable.
		if _, _, err := parseRecord(frame, offset+1); err != errTorn {
			t.Fatalf("offset-mismatched frame parsed: %v", err)
		}

		// Every strict prefix of a frame is a torn record, not garbage data.
		for _, cut := range []int{0, 1, recordHeader - 1, recordHeader, len(frame) - 1} {
			if cut < 0 || cut >= len(frame) {
				continue
			}
			if _, _, err := parseRecord(frame[:cut], offset); err != errTorn {
				t.Fatalf("prefix of %d bytes parsed as whole record: %v", cut, err)
			}
		}

		// Arbitrary bytes: must not panic; on success the reported length
		// must stay in bounds and the frame must re-verify bit-for-bit.
		p, n, err := parseRecord(raw, offset)
		if err == nil {
			if n < recordHeader || n > len(raw) {
				t.Fatalf("parse of raw bytes reported length %d of %d", n, len(raw))
			}
			if crc := recordCRC(offset, p); crc != binary.LittleEndian.Uint32(raw[16:20]) {
				t.Fatalf("accepted frame fails CRC re-verification")
			}
		}
	})
}

// TestTornPrefixTruncation is the deterministic seam for the fuzzer's core
// property: a log whose final frame is cut at EVERY possible byte boundary
// reopens cleanly at the last whole record — a torn tail is truncation, not
// corruption.
func TestTornPrefixTruncation(t *testing.T) {
	var whole []byte
	for i := 0; i < 3; i++ {
		whole = appendRecord(whole, uint64(i), []byte{byte('a' + i), byte('a' + i)})
	}
	last := appendRecord(nil, 3, []byte("final-record"))

	for cut := 0; cut < len(last); cut++ {
		segs := NewMemSegmentStore()
		dev, err := segs.Open(0)
		if err != nil {
			t.Fatal(err)
		}
		torn := append(append([]byte{}, whole...), last[:cut]...)
		if _, err := dev.WriteAt(torn, 0); err != nil {
			t.Fatal(err)
		}
		dev.Close()

		l, err := Open(Config{Segments: segs})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if l.Tail() != 3 {
			t.Fatalf("cut %d: tail = %d, want 3", cut, l.Tail())
		}
		// The truncated slot is reusable: a fresh append lands at offset 3
		// and survives reopen even though stale bytes sat past the tail.
		if off, err := l.Append([]byte("replacement")); err != nil || off != 3 {
			t.Fatalf("cut %d: append after truncation: off=%d err=%v", cut, off, err)
		}
		l.Close()

		re, err := Open(Config{Segments: segs})
		if err != nil {
			t.Fatalf("cut %d: second reopen: %v", cut, err)
		}
		if re.Tail() != 4 {
			t.Fatalf("cut %d: tail after replacement = %d, want 4", cut, re.Tail())
		}
		if got, err := re.Read(3); err != nil || string(got) != "replacement" {
			t.Fatalf("cut %d: read(3) = %q, %v", cut, got, err)
		}
		re.Close()
	}
}
