package inlog

import (
	"encoding/binary"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/storage"
)

func storeConfig(dev storage.Device, ckpts storage.CheckpointStore) faster.Config {
	return faster.Config{
		IndexBuckets: 1 << 8, PageBits: 12, MemPages: 8,
		Device: dev, Checkpoints: ckpts, RMW: faster.AddUint64{},
	}
}

func counterKey(i int) []byte {
	var k [8]byte
	binary.LittleEndian.PutUint64(k[:], uint64(i))
	return k[:]
}

var one = func() []byte {
	var v [8]byte
	binary.LittleEndian.PutUint64(v[:], 1)
	return v[:]
}()

// appendAdd appends "RMW key+=1" for record offset i (key = i % keys).
func appendAdd(t *testing.T, l *Log, i, keys int) {
	t.Helper()
	msg := EncodeMessage(nil, Message{Op: OpRMW, Key: counterKey(i % keys), Value: one})
	if _, err := l.Append(msg); err != nil {
		t.Fatal(err)
	}
}

func readCounter(t *testing.T, sess *faster.Session, key []byte) uint64 {
	t.Helper()
	var got uint64
	var done bool
	_, st := sess.Read(key, func(v []byte, s faster.Status) {
		done = true
		if s == faster.Ok {
			got = binary.LittleEndian.Uint64(v)
		}
	})
	if st == faster.Pending {
		sess.CompletePending(true)
	}
	if !done {
		t.Fatal("read never completed")
	}
	return got
}

// expectedCount is the value of counter k after records [0, tail) applied
// exactly once, where record o increments key o % keys.
func expectedCount(k, keys int, tail uint64) uint64 {
	if tail <= uint64(k) {
		return 0
	}
	return (tail-uint64(k)-1)/uint64(keys) + 1
}

func TestPumpAppliesAndCommitsWatermark(t *testing.T) {
	const n, keys = 60, 4
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, SegmentBytes: 256})
	ckpts := storage.NewMemCheckpointStore()
	s, err := faster.Open(storeConfig(storage.NewMemDevice(), ckpts))
	if err != nil {
		t.Fatal(err)
	}
	p, err := StartPump(PumpConfig{Log: l, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		appendAdd(t, l, i, keys)
	}
	if err := p.WaitApplied(n - 1); err != nil {
		t.Fatal(err)
	}

	token, err := s.Commit(faster.CommitOptions{WithIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	res := s.WaitForCommit(token)
	if res.Err != nil {
		t.Fatal(res.Err)
	}

	w, ok, err := LoadWatermark(ckpts, token)
	if err != nil || !ok {
		t.Fatalf("no watermark for %s: %v", token, err)
	}
	if w.Session != p.Session() || w.Offset != n || w.Serial != res.Serials[p.Session()] {
		t.Fatalf("watermark = %+v, want offset %d for serial %d",
			w, n, res.Serials[p.Session()])
	}

	// The trim hook fires after the commit; wait for the start to advance
	// past every fully-committed segment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		infos := l.Segments()
		if len(infos) == 1 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	infos := l.Segments()
	if len(infos) != 1 {
		t.Fatalf("trim left %d segments: %+v", len(infos), infos)
	}
	bases, _ := segs.List()
	if len(bases) != 1 {
		t.Fatalf("trimmed segments not deleted from store: %v", bases)
	}

	p.Close()
	s.Close()
	l.Close()
}

// TestPumpRecoveryReplaysSuffixExactlyOnce is the end-to-end contract: a
// crash after a commit recovers the store to the committed prefix and the
// pump replays only the log suffix above the recovered watermark — every
// durable record applied exactly once overall.
func TestPumpRecoveryReplaysSuffixExactlyOnce(t *testing.T) {
	const phaseA, phaseB, keys = 100, 80, 10
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, SegmentBytes: 512, Fsync: FsyncManual})
	dev := storage.NewMemDevice()
	ckpts := storage.NewMemCheckpointStore()
	s, err := faster.Open(storeConfig(dev, ckpts))
	if err != nil {
		t.Fatal(err)
	}
	p, err := StartPump(PumpConfig{Log: l, Store: s})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < phaseA; i++ {
		appendAdd(t, l, i, keys)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitApplied(phaseA - 1); err != nil {
		t.Fatal(err)
	}
	token, err := s.Commit(faster.CommitOptions{WithIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if res := s.WaitForCommit(token); res.Err != nil {
		t.Fatal(res.Err)
	}

	// Phase B lands in the log (durably) and is applied in memory, but no
	// further commit covers it.
	for i := phaseA; i < phaseA+phaseB; i++ {
		appendAdd(t, l, i, keys)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := p.WaitApplied(phaseA + phaseB - 1); err != nil {
		t.Fatal(err)
	}

	// Crash: clone checkpoints, then device, then the log's segments.
	ckCrash := ckpts.Clone()
	devCrash := dev.Clone()
	segCrash := segs.Clone()

	// Recover: the store restores the committed prefix (phase A only) ...
	r, err := faster.Recover(storeConfig(devCrash, ckCrash))
	if err != nil {
		t.Fatal(err)
	}
	rl := mustOpen(t, Config{Segments: segCrash, Fsync: FsyncManual})
	rp, err := StartPump(PumpConfig{Log: rl, Store: r})
	if err != nil {
		t.Fatal(err)
	}
	// ... and the pump replays exactly the suffix above the watermark.
	if rp.Applied() > phaseA+phaseB {
		t.Fatalf("pump resumed at %d, beyond the durable tail", rp.Applied())
	}
	if err := rp.WaitApplied(phaseA + phaseB - 1); err != nil {
		t.Fatal(err)
	}

	check := r.StartSession()
	for k := 0; k < keys; k++ {
		want := expectedCount(k, keys, phaseA+phaseB)
		if got := readCounter(t, check, counterKey(k)); got != want {
			t.Fatalf("key %d = %d after recovery, want %d (exactly-once violated)", k, got, want)
		}
	}
	check.StopSession()
	rp.Close()
	r.Close()
	rl.Close()

	p.Close()
	s.Close()
	l.Close()
}

// TestPumpFreshStoreFromExistingLog: a brand-new store pointed at a log
// with existing durable records replays them all from offset zero.
func TestPumpFreshStoreFromExistingLog(t *testing.T) {
	const n, keys = 30, 3
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs})
	for i := 0; i < n; i++ {
		appendAdd(t, l, i, keys)
	}
	l.Close()

	re := mustOpen(t, Config{Segments: segs})
	s, err := faster.Open(storeConfig(storage.NewMemDevice(), storage.NewMemCheckpointStore()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := StartPump(PumpConfig{Log: re, Store: s})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WaitApplied(n - 1); err != nil {
		t.Fatal(err)
	}
	check := s.StartSession()
	for k := 0; k < keys; k++ {
		if got, want := readCounter(t, check, counterKey(k)), expectedCount(k, keys, n); got != want {
			t.Fatalf("key %d = %d, want %d", k, got, want)
		}
	}
	check.StopSession()
	p.Close()
	s.Close()
	re.Close()
}

// TestIngestServerAcksAreDurable drives the TCP front door: every acked
// offset must already be durable in the log.
func TestIngestServerAcksAreDurable(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, Fsync: FsyncBatch, BatchRecords: 8,
		BatchInterval: time.Millisecond})
	defer l.Close()
	srv := NewIngestServer(l, nil, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	c, err := DialIngest(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Send(Message{Op: OpUpsert, Key: counterKey(i), Value: []byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		off, err := c.Ack()
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("ack %d carried offset %d", i, off)
		}
		if l.Durable() <= off {
			t.Fatalf("offset %d acked while durable frontier is %d", off, l.Durable())
		}
	}
}
