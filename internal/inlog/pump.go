package inlog

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// DefaultPumpSession is the session ID the apply pump runs under when the
// config names none. The session is owned exclusively by the pump: its
// serial stream must mirror the log's offset stream one-to-one, which is
// the invariant every watermark anchor depends on.
const DefaultPumpSession = "inlog-pump"

// PumpConfig configures an apply pump.
type PumpConfig struct {
	Log   *Log
	Store *faster.Store
	// Session is the FASTER session ID the pump applies under (default
	// DefaultPumpSession). No other client may issue operations on it.
	Session string
	// IdleInterval is how long the pump sleeps between polls when the log
	// has no durable records to drain (default 200µs). While idle it keeps
	// refreshing its session so CPR commits never stall on the pump.
	IdleInterval time.Duration
	// Metrics receives inlog_applied / inlog_replayed (default nop).
	Metrics *obs.Registry
	// Flight receives inlog-apply/watermark/replay events (nil-safe).
	Flight *obs.FlightRecorder
}

// Pump drains durable ingestion-log records into a FASTER session, exactly
// once across crashes:
//
//   - It applies only records below the log's durability frontier, so a CPR
//     commit can never capture an operation whose log record might still be
//     lost — the committed prefix is always a durable-log prefix.
//   - Each record consumes exactly one session serial, making serial and
//     offset interconvertible by a linear anchor (see Watermark). At every
//     commit the pump attaches the inlog-<token> watermark via
//     Store.OnCommitArtifact, and trims committed-out segments afterwards.
//   - On restart it continues the session, converts the recovered CPR point
//     back to an offset through the newest readable anchor, and resumes
//     applying from exactly that record.
type Pump struct {
	log    *Log
	store  *faster.Store
	sess   *faster.Session
	sessID string
	anchor Watermark // serial<->offset anchor (Token empty for the origin)
	idle   time.Duration

	mu      sync.Mutex
	cond    *sync.Cond
	applied uint64 // next offset to apply
	err     error
	closed  bool
	stopped chan struct{}

	applies  *obs.Counter
	replays  *obs.Counter
	applyErr *obs.Counter
	flight   *obs.FlightRecorder
}

// StartPump recovers the pump's position and starts the apply loop. Call it
// after the store is opened (or recovered); the replayed suffix, if any, is
// applied asynchronously — WaitApplied(log.Durable()-1) blocks until the
// store has caught up.
func StartPump(cfg PumpConfig) (*Pump, error) {
	if cfg.Log == nil || cfg.Store == nil {
		return nil, fmt.Errorf("inlog: PumpConfig.Log and Store are required")
	}
	if cfg.Session == "" {
		cfg.Session = DefaultPumpSession
	}
	if cfg.IdleInterval <= 0 {
		cfg.IdleInterval = 200 * time.Microsecond
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewNop()
	}
	p := &Pump{
		log:      cfg.Log,
		store:    cfg.Store,
		sessID:   cfg.Session,
		idle:     cfg.IdleInterval,
		stopped:  make(chan struct{}),
		applies:  cfg.Metrics.Counter("inlog_applied"),
		replays:  cfg.Metrics.Counter("inlog_replayed"),
		applyErr: cfg.Metrics.Counter("inlog_apply_errors"),
		flight:   cfg.Flight,
	}
	p.cond = sync.NewCond(&p.mu)

	anchor, ok, err := LatestWatermark(cfg.Store.Checkpoints())
	if err != nil {
		return nil, err
	}
	if ok && anchor.Session != p.sessID {
		return nil, fmt.Errorf("inlog: watermark %s anchors session %q, pump runs %q",
			anchor.Token, anchor.Session, p.sessID)
	}
	sess, point := cfg.Store.ContinueSession(p.sessID)
	if !ok {
		// No commit has ever covered the pump: the session starts at its
		// recovered point (0 on a fresh store) aligned with the oldest
		// retained record.
		anchor = Watermark{Session: p.sessID, Serial: point, Offset: cfg.Log.Start()}
	}
	p.sess = sess
	p.anchor = anchor
	start := anchor.OffsetForSerial(point)
	if start < cfg.Log.Start() || start > cfg.Log.Durable() {
		sess.StopSession()
		return nil, fmt.Errorf(
			"inlog: recovered point %d maps to offset %d outside retained log [%d, %d]",
			point, start, cfg.Log.Start(), cfg.Log.Durable())
	}
	p.applied = start
	if d := cfg.Log.Durable(); d > start {
		// The suffix above the recovered watermark replays through the
		// normal apply loop; announce its extent up front.
		p.replays.Add(d - start)
		p.flight.Emit(obs.FlightInlogReplay, -1, 0, anchor.Token, p.sessID, start, d-start)
	}

	cfg.Metrics.GaugeFunc("inlog_apply_lag", func() int64 {
		return int64(p.log.Tail()) - int64(p.Applied())
	})
	cfg.Store.OnCommitArtifact(p.commitWatermark)
	cfg.Store.OnCommit(p.trimCommitted)
	go p.loop()
	return p, nil
}

// Session returns the pump's FASTER session ID.
func (p *Pump) Session() string { return p.sessID }

// Applied returns the next offset to apply: every record below it has been
// applied to the store.
func (p *Pump) Applied() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied
}

// Err returns the pump's terminal error, if it has stopped on one.
func (p *Pump) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// WaitApplied blocks until the record at offset has been applied (Applied()
// > offset), the pump stops on an error, or it is closed.
func (p *Pump) WaitApplied(offset uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.applied <= offset && p.err == nil && !p.closed {
		p.cond.Wait()
	}
	if p.applied > offset {
		return nil
	}
	if p.err != nil {
		return p.err
	}
	return ErrClosed
}

// OffsetForSerial converts a pump-session serial to its log offset through
// the pump's anchor.
func (p *Pump) OffsetForSerial(serial uint64) uint64 {
	return p.anchor.OffsetForSerial(serial)
}

// commitWatermark is the Store.OnCommitArtifact hook: it pins the commit's
// pump-session CPR point to its log offset, persisted as inlog-<token>
// beside the commit's own artifacts. A write failure fails the commit.
func (p *Pump) commitWatermark(res faster.CommitResult) (string, []byte, error) {
	serial, ok := res.Serials[p.sessID]
	if !ok {
		return "", nil, nil // pump session not registered at commit time
	}
	w := Watermark{
		Token:   res.Token,
		Session: p.sessID,
		Serial:  serial,
		Offset:  p.anchor.OffsetForSerial(serial),
	}
	buf, err := json.Marshal(w)
	if err != nil {
		return "", nil, err
	}
	p.flight.Emit(obs.FlightInlogWatermark, -1, uint64(res.Version), res.Token, p.sessID, w.Offset, serial)
	return WatermarkName(res.Token), buf, nil
}

// trimCommitted is the Store.OnCommit hook: once a commit (and therefore
// its watermark) is durable, segments wholly below the watermark are
// deleted. Trim failure is non-fatal — the commit stands, the space is
// reclaimed by a later trim.
func (p *Pump) trimCommitted(res faster.CommitResult) {
	serial, ok := res.Serials[p.sessID]
	if !ok {
		return
	}
	p.log.Trim(p.anchor.OffsetForSerial(serial))
}

// loop is the apply pump: drain durable records in offset order, refreshing
// the session while idle so commits keep advancing.
func (p *Pump) loop() {
	defer close(p.stopped)
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		cursor := p.applied
		p.mu.Unlock()

		d := p.log.Durable()
		if d <= cursor {
			p.sess.Refresh()
			p.sess.CompletePending(false)
			time.Sleep(p.idle)
			continue
		}
		n := uint64(0)
		for cursor < d {
			if err := p.applyOne(cursor); err != nil {
				p.fail(err)
				return
			}
			cursor++
			n++
			p.mu.Lock()
			p.applied = cursor
			closed := p.closed
			p.cond.Broadcast()
			p.mu.Unlock()
			if closed {
				return
			}
		}
		p.sess.CompletePending(false)
		p.applies.Add(n)
		p.flight.Emit(obs.FlightInlogApply, -1, 0, "", p.sessID, cursor, n)
	}
}

// applyOne reads and applies the record at offset through the pump session.
// Exactly one serial is consumed per record — including on a decode error,
// which would otherwise silently shear the serial<->offset anchor.
//
// Under an instant restore (faster.Config.InstantRestore) these session ops
// self-gate per key: each blocks until its hash bucket is warm, so the pump
// resumes from the converted watermark only as fast as its buckets come warm
// and never applies a record over pre-prefix state. No pump-side coordination
// is needed.
func (p *Pump) applyOne(offset uint64) error {
	payload, err := p.log.Read(offset)
	if err != nil {
		return fmt.Errorf("inlog: pump read offset %d: %w", offset, err)
	}
	msg, err := DecodeMessage(payload)
	if err != nil {
		p.applyErr.Inc()
		return fmt.Errorf("inlog: pump offset %d: %w", offset, err)
	}
	var st faster.Status
	switch msg.Op {
	case OpRMW:
		st = p.sess.RMW(msg.Key, msg.Value)
	case OpUpsert:
		st = p.sess.Upsert(msg.Key, msg.Value)
	case OpDelete:
		st = p.sess.Delete(msg.Key)
	}
	if st == faster.Error {
		p.applyErr.Inc()
		return fmt.Errorf("inlog: pump offset %d: %s failed", offset, msg.Op)
	}
	return nil
}

func (p *Pump) fail(err error) {
	p.mu.Lock()
	p.err = err
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Close stops the apply loop and the pump's session. The log and store stay
// open (they have their own Close).
func (p *Pump) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	<-p.stopped
	p.sess.CompletePending(true)
	p.sess.StopSession()
}
