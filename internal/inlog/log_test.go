package inlog

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/storage"
)

func mustOpen(t *testing.T, cfg Config) *Log {
	t.Helper()
	l, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendReadRoundtrip(t *testing.T) {
	l := mustOpen(t, Config{Segments: NewMemSegmentStore()})
	defer l.Close()
	const n = 100
	for i := 0; i < n; i++ {
		off, err := l.Append([]byte(fmt.Sprintf("payload-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i) {
			t.Fatalf("append %d assigned offset %d", i, off)
		}
	}
	if l.Tail() != n {
		t.Fatalf("tail = %d, want %d", l.Tail(), n)
	}
	// FsyncAlways: everything is durable the moment Append returns.
	if l.Durable() != n {
		t.Fatalf("durable = %d, want %d under FsyncAlways", l.Durable(), n)
	}
	for i := 0; i < n; i++ {
		got, err := l.Read(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("payload-%03d", i); string(got) != want {
			t.Fatalf("offset %d = %q, want %q", i, got, want)
		}
	}
}

func TestSegmentRollAndTrim(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, SegmentBytes: 256})
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 12; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	infos := l.Segments()
	if len(infos) < 3 {
		t.Fatalf("expected >= 3 segments after 12 x 120-byte records at 256-byte roll, got %d", len(infos))
	}
	for i := 1; i < len(infos); i++ {
		if infos[i].Base != infos[i-1].End {
			t.Fatalf("segment %d base %d does not continue previous end %d",
				i, infos[i].Base, infos[i-1].End)
		}
	}
	// Trim below the base of the last segment: all earlier segments must be
	// physically deleted from the store.
	cut := infos[len(infos)-1].Base
	removed, err := l.Trim(cut)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("trim removed nothing")
	}
	if l.Start() != cut {
		t.Fatalf("start = %d after trim, want %d", l.Start(), cut)
	}
	bases, _ := segs.List()
	for _, b := range bases {
		if b < cut {
			t.Fatalf("segment %d still on disk below trim point %d", b, cut)
		}
	}
	// Reads below the trim point fail; at and above succeed.
	if _, err := l.Read(cut - 1); err == nil {
		t.Fatal("read below trim point succeeded")
	}
	if _, err := l.Read(cut); err != nil {
		t.Fatal(err)
	}
}

func TestReopenPreservesRecords(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, SegmentBytes: 128})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("r%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpen(t, Config{Segments: segs, SegmentBytes: 128})
	defer re.Close()
	if re.Tail() != 20 || re.Durable() != 20 {
		t.Fatalf("reopened tail/durable = %d/%d, want 20/20", re.Tail(), re.Durable())
	}
	for i := 0; i < 20; i++ {
		got, err := re.Read(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("r%02d", i); string(got) != want {
			t.Fatalf("offset %d = %q, want %q", i, got, want)
		}
	}
	// Appends continue at the right offset.
	off, err := re.Append([]byte("r20"))
	if err != nil || off != 20 {
		t.Fatalf("append after reopen = (%d, %v), want (20, nil)", off, err)
	}
}

// TestTornTailTruncatedOnReopen is the torn-record seam test: a crashed
// append leaves a partial frame at the end of the last segment; reopening
// must treat it as clean truncation — not an error — and the next append
// must overwrite it.
func TestTornTailTruncatedOnReopen(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs})
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	validBytes := l.Segments()[0].Bytes
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash residue: a half-written frame for offset 5.
	frame := appendRecord(nil, 5, []byte("torn-payload"))
	dev, err := segs.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt(frame[:len(frame)/2], validBytes); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Config{Segments: segs})
	defer re.Close()
	if re.Tail() != 5 {
		t.Fatalf("reopened tail = %d, want 5 (torn record dropped)", re.Tail())
	}
	// The replacement record lands where the torn one was and survives the
	// next reopen even though stale torn bytes may extend past it.
	off, err := re.Append([]byte("replacement"))
	if err != nil || off != 5 {
		t.Fatalf("append = (%d, %v), want (5, nil)", off, err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := mustOpen(t, Config{Segments: segs})
	defer re2.Close()
	if re2.Tail() != 6 {
		t.Fatalf("second reopen tail = %d, want 6", re2.Tail())
	}
	got, err := re2.Read(5)
	if err != nil || string(got) != "replacement" {
		t.Fatalf("offset 5 = (%q, %v), want replacement", got, err)
	}
}

// TestTornMidLogDropsLaterSegments: damage in a non-final segment means
// everything after it was never acked (syncs are ordered); reopen keeps the
// valid prefix and deletes the later segments.
func TestTornMidLogDropsLaterSegments(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, SegmentBytes: 64})
	payload := bytes.Repeat([]byte("y"), 40)
	for i := 0; i < 6; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	infos := l.Segments()
	if len(infos) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(infos))
	}
	l.Close()

	// Corrupt the tail record of the second segment.
	second := infos[1]
	dev, err := segs.Open(second.Base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.WriteAt([]byte{0xFF}, second.Bytes-1); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, Config{Segments: segs, SegmentBytes: 64})
	defer re.Close()
	if want := second.End - 1; re.Tail() != want {
		t.Fatalf("tail = %d, want %d (corrupted record and later segments dropped)", re.Tail(), want)
	}
	bases, _ := segs.List()
	for _, b := range bases {
		if b > second.Base {
			t.Fatalf("segment %d past the damage still on disk", b)
		}
	}
}

func TestBatchPolicyDurability(t *testing.T) {
	l := mustOpen(t, Config{
		Segments: NewMemSegmentStore(), Fsync: FsyncBatch,
		BatchRecords: 4, BatchInterval: -1, // no background flusher
	})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("a")); err != nil {
			t.Fatal(err)
		}
	}
	if d := l.Durable(); d != 0 {
		t.Fatalf("durable = %d before the batch fills, want 0", d)
	}
	if _, err := l.Append([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if d := l.Durable(); d != 4 {
		t.Fatalf("durable = %d after 4th append, want 4", d)
	}
}

func TestBatchIntervalFlusher(t *testing.T) {
	l := mustOpen(t, Config{
		Segments: NewMemSegmentStore(), Fsync: FsyncBatch,
		BatchRecords: 1000, BatchInterval: time.Millisecond,
	})
	defer l.Close()
	if _, err := l.Append([]byte("straggler")); err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(0); err != nil {
		t.Fatal(err)
	}
}

func TestManualSyncAndWaitDurable(t *testing.T) {
	l := mustOpen(t, Config{Segments: NewMemSegmentStore(), Fsync: FsyncManual})
	defer l.Close()
	off, err := l.Append([]byte("manual"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(off) }()
	select {
	case <-done:
		t.Fatal("WaitDurable returned before Sync")
	case <-time.After(5 * time.Millisecond):
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCrashDropsUnsyncedAppends wires the page-cache model under the log:
// records appended but not fsynced must vanish from a crash image, while
// synced ones survive — the physical basis of the ack contract.
func TestCrashDropsUnsyncedAppends(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{
		Segments: segs, Fsync: FsyncManual,
		WrapDevice: func(d storage.Device) (storage.Device, error) {
			return storage.NewSyncBufferDevice(d)
		},
	})
	for i := 0; i < 8; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 8; i < 12; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if d := l.Durable(); d != 8 {
		t.Fatalf("durable = %d, want 8", d)
	}

	crash := segs.Clone() // crash image: only fsynced bytes
	re := mustOpen(t, Config{Segments: crash})
	defer re.Close()
	if re.Tail() != 8 {
		t.Fatalf("crash image tail = %d, want 8 (unsynced appends dropped)", re.Tail())
	}
	for i := 0; i < 8; i++ {
		got, err := re.Read(uint64(i))
		if err != nil || string(got) != fmt.Sprintf("s%d", i) {
			t.Fatalf("offset %d = (%q, %v)", i, got, err)
		}
	}
	l.Close()
}

func TestWaitOffsetTailingRead(t *testing.T) {
	l := mustOpen(t, Config{Segments: NewMemSegmentStore()})
	defer l.Close()
	got := make(chan []byte, 1)
	go func() {
		p, err := l.WaitRead(0)
		if err != nil {
			p = []byte("err:" + err.Error())
		}
		got <- p
	}()
	time.Sleep(2 * time.Millisecond)
	if _, err := l.Append([]byte("tailed")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if string(p) != "tailed" {
			t.Fatalf("WaitRead = %q", p)
		}
	case <-time.After(time.Second):
		t.Fatal("WaitRead never woke")
	}
}

func TestInspectFlagsMidLogCorruption(t *testing.T) {
	segs := NewMemSegmentStore()
	l := mustOpen(t, Config{Segments: segs, SegmentBytes: 64})
	payload := bytes.Repeat([]byte("z"), 40)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	rep, err := Inspect(segs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt {
		t.Fatalf("clean log reported corrupt: %v", rep.Errors)
	}
	if rep.End != 4 {
		t.Fatalf("inspect end = %d, want 4", rep.End)
	}

	// Flip a byte inside the FIRST segment (not the final one): that can
	// never be a torn tail, so it must be flagged as corruption.
	dev, err := segs.Open(0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := dev.ReadAt(b[:], 30); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := dev.WriteAt(b[:], 30); err != nil {
		t.Fatal(err)
	}
	rep, err = Inspect(segs)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt {
		t.Fatal("mid-log bit flip not flagged as corruption")
	}
}
