package inlog

import (
	"fmt"

	"repro/internal/storage"
)

// SegmentReport is the offline verification result for one segment.
type SegmentReport struct {
	Base       uint64 `json:"base"`
	End        uint64 `json:"end"` // one past the last valid record
	Records    int    `json:"records"`
	Bytes      int64  `json:"bytes"`       // device extent
	ValidBytes int64  `json:"valid_bytes"` // bytes covered by valid records
	Torn       bool   `json:"torn"`        // trailing bytes failed to parse
}

// InspectReport is the result of a full offline scan (fasterctl inlog).
type InspectReport struct {
	Segments []SegmentReport `json:"segments"`
	Start    uint64          `json:"start"` // oldest retained offset
	End      uint64          `json:"end"`   // one past the newest valid record
	// Corrupt flags damage that cannot be a torn tail: an invalid frame
	// that is *followed* by more data (a later segment, or a continuity
	// break between segments). A torn final record in the final segment is
	// normal crash residue, not corruption.
	Corrupt bool     `json:"corrupt"`
	Errors  []string `json:"errors,omitempty"`
}

// Inspect scans every segment read-only — no truncation, no segment
// creation, no removal — validating each record's CRC and offset chain.
// Use it for offline verification of a log directory.
func Inspect(store SegmentStore) (InspectReport, error) {
	var rep InspectReport
	bases, err := store.List()
	if err != nil {
		return rep, fmt.Errorf("inlog: list segments: %w", err)
	}
	expectBase := uint64(0)
	for i, base := range bases {
		if i == 0 {
			rep.Start = base
		} else if base != expectBase {
			rep.Corrupt = true
			rep.Errors = append(rep.Errors, fmt.Sprintf(
				"segment %d does not continue previous segment (expected base %d)", base, expectBase))
		}
		sr, scanErrs := inspectSegment(store, base)
		rep.Segments = append(rep.Segments, sr)
		rep.Errors = append(rep.Errors, scanErrs...)
		if len(scanErrs) > 0 || (sr.Torn && i != len(bases)-1) {
			// Damage mid-log: a torn tail is only legitimate on the final
			// segment.
			rep.Corrupt = true
		}
		expectBase = sr.End
		rep.End = sr.End
	}
	return rep, nil
}

func inspectSegment(store SegmentStore, base uint64) (SegmentReport, []string) {
	sr := SegmentReport{Base: base, End: base}
	dev, err := store.Open(base)
	if err != nil {
		return sr, []string{fmt.Sprintf("segment %d: open: %v", base, err)}
	}
	defer dev.Close()
	sr.Bytes = dev.Size()
	if sr.Bytes == 0 {
		return sr, nil
	}
	buf := make([]byte, sr.Bytes)
	if _, err := dev.ReadAt(buf, 0); err != nil {
		return sr, []string{fmt.Sprintf("segment %d: read: %v", base, err)}
	}
	pos := 0
	for pos < len(buf) {
		_, n, err := parseRecord(buf[pos:], base+uint64(sr.Records))
		if err != nil {
			sr.Torn = true
			break
		}
		sr.Records++
		pos += n
	}
	sr.ValidBytes = int64(pos)
	sr.End = base + uint64(sr.Records)
	return sr, nil
}

// verify that FileDevice-backed stores satisfy the interface at compile time.
var (
	_ SegmentStore   = (*MemSegmentStore)(nil)
	_ SegmentStore   = (*DirSegmentStore)(nil)
	_ storage.Device = (*storage.SyncBufferDevice)(nil)
)
