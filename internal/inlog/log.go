package inlog

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// FsyncPolicy selects when appended records become durable (and therefore
// ackable — an offset is acked only once WaitDurable covers it).
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: lowest ack latency per record,
	// one fsync per record.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch syncs after BatchRecords appends, plus a background flusher
	// every BatchInterval so a trickle of appends is never stranded.
	FsyncBatch
	// FsyncManual syncs only on explicit Sync calls (tests and the crash
	// harness, which place fsync boundaries by hand).
	FsyncManual
)

// String implements fmt.Stringer (bench rows key on it).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncManual:
		return "manual"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseFsyncPolicy parses the flag spelling used by cprserver and cprbench.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "manual":
		return FsyncManual, nil
	}
	return 0, fmt.Errorf("inlog: unknown fsync policy %q (want always|batch|manual)", s)
}

// Config configures a Log.
type Config struct {
	// Segments is the backing segment store (required).
	Segments SegmentStore
	// SegmentBytes is the roll threshold: once the active segment reaches
	// this many bytes, the next append opens a new segment. Default 1 MiB.
	SegmentBytes int64
	// Fsync selects the durability policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// BatchRecords is the append count that triggers a sync under
	// FsyncBatch. Default 64.
	BatchRecords int
	// BatchInterval bounds how long a record can sit unsynced under
	// FsyncBatch. Default 2ms; 0 keeps the default, negative disables the
	// background flusher.
	BatchInterval time.Duration
	// WrapDevice, when set, wraps every segment device as it is opened —
	// the layering hook for fault injection (storage.NewFaultDevice) and the
	// page-cache crash model (storage.NewSyncBufferDevice).
	WrapDevice func(storage.Device) (storage.Device, error)
	// Metrics receives inlog_* metrics (default: a nop registry).
	Metrics *obs.Registry
	// Flight receives inlog-append/fsync/trim events (nil-safe).
	Flight *obs.FlightRecorder
}

func (c *Config) fill() error {
	if c.Segments == nil {
		return errors.New("inlog: Config.Segments is required")
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 1 << 20
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = 64
	}
	if c.BatchInterval == 0 {
		c.BatchInterval = 2 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewNop()
	}
	return nil
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("inlog: log closed")

// segment is one open segment: its device plus an in-memory byte index of
// its records (rebuilt by scanning on open).
type segment struct {
	base  uint64 // logical offset of the first record
	dev   storage.Device
	size  int64   // valid byte extent (stale bytes beyond are ignored)
	index []int64 // byte position of record base+i
	dirty bool    // has writes not yet covered by a successful sync
}

func (s *segment) end() uint64 { return s.base + uint64(len(s.index)) }

// Log is the durable segmented ingestion log. Logical offsets are dense
// record numbers (0, 1, 2, ...): offset arithmetic is what lets a CPR
// commit's session serial be converted to a log watermark by pure linear
// math (see Pump). All methods are safe for concurrent use.
type Log struct {
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond // broadcast when tail or durable advances, and on close
	segs []*segment // ascending base; the last is the active segment
	next uint64     // next logical offset to assign
	// durable: every record with offset < durable is fsynced. Only a
	// successful sync advances it, and segment syncs run in ascending
	// order, so the durable prefix is always a physical prefix of the log.
	durable   uint64
	sinceSync int
	closed    bool

	stopFlush chan struct{}
	flushWG   sync.WaitGroup

	scratch []byte // frame build buffer, reused under mu

	appends      *obs.Counter
	appendBytes  *obs.Counter
	fsyncs       *obs.Counter
	fsyncNs      *obs.Histogram
	trims        *obs.Counter
	trimmedBytes *obs.Counter
	flight       *obs.FlightRecorder
}

// Open opens (or creates) the log over cfg.Segments. Existing segments are
// scanned in order: each record must parse with the expected logical offset
// and a valid CRC. The first failure — the torn tail of a crashed append —
// logically truncates the log there: the remainder of that segment is
// ignored (later appends overwrite it) and any later segments are removed.
// Under ordered prefix fsyncs nothing past the first invalid frame can have
// been acked, so truncation never loses an acked record.
func Open(cfg Config) (*Log, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	l := &Log{
		cfg:          cfg,
		appends:      cfg.Metrics.Counter("inlog_appends"),
		appendBytes:  cfg.Metrics.Counter("inlog_append_bytes"),
		fsyncs:       cfg.Metrics.Counter("inlog_fsyncs"),
		fsyncNs:      cfg.Metrics.Histogram("inlog_fsync_ns"),
		trims:        cfg.Metrics.Counter("inlog_trims"),
		trimmedBytes: cfg.Metrics.Counter("inlog_trimmed_bytes"),
		flight:       cfg.Flight,
	}
	l.cond = sync.NewCond(&l.mu)

	bases, err := cfg.Segments.List()
	if err != nil {
		return nil, fmt.Errorf("inlog: list segments: %w", err)
	}
	torn := false
	for _, base := range bases {
		if torn || (len(l.segs) > 0 && l.segs[len(l.segs)-1].end() != base) {
			// Everything after a torn tail (or a continuity break) was never
			// acked; drop it.
			if err := cfg.Segments.Remove(base); err != nil {
				l.closeSegs()
				return nil, fmt.Errorf("inlog: drop stale segment %d: %w", base, err)
			}
			continue
		}
		seg, segTorn, err := l.openSegment(base)
		if err != nil {
			l.closeSegs()
			return nil, err
		}
		l.segs = append(l.segs, seg)
		torn = segTorn
	}
	if len(l.segs) == 0 {
		seg, _, err := l.openSegment(0)
		if err != nil {
			return nil, err
		}
		l.segs = append(l.segs, seg)
	}
	l.next = l.segs[len(l.segs)-1].end()
	// Everything that survived the scan is on the medium by definition.
	l.durable = l.next

	cfg.Metrics.GaugeFunc("inlog_tail", func() int64 { return int64(l.Tail()) })
	cfg.Metrics.SetHelp("inlog_tail",
		"Ingestion log append frontier in bytes; tail above inlog_durable means appends await fsync (the health engine's inlog-fsync-stalled signal).")
	cfg.Metrics.GaugeFunc("inlog_durable", func() int64 { return int64(l.Durable()) })
	cfg.Metrics.SetHelp("inlog_durable",
		"Ingestion log fsync frontier in bytes: every record below it survives a crash.")
	cfg.Metrics.GaugeFunc("inlog_start", func() int64 { return int64(l.Start()) })
	cfg.Metrics.GaugeFunc("inlog_segments", func() int64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return int64(len(l.segs))
	})

	if cfg.Fsync == FsyncBatch && cfg.BatchInterval > 0 {
		l.stopFlush = make(chan struct{})
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// openSegment opens and scans one segment, returning whether its tail was
// torn (bytes past the last valid record).
func (l *Log) openSegment(base uint64) (*segment, bool, error) {
	dev, err := l.cfg.Segments.Open(base)
	if err != nil {
		return nil, false, fmt.Errorf("inlog: open segment %d: %w", base, err)
	}
	if l.cfg.WrapDevice != nil {
		if dev, err = l.cfg.WrapDevice(dev); err != nil {
			return nil, false, fmt.Errorf("inlog: wrap segment %d: %w", base, err)
		}
	}
	seg := &segment{base: base, dev: dev}
	sz := dev.Size()
	if sz == 0 {
		return seg, false, nil
	}
	buf := make([]byte, sz)
	if _, err := dev.ReadAt(buf, 0); err != nil {
		dev.Close()
		return nil, false, fmt.Errorf("inlog: scan segment %d: %w", base, err)
	}
	pos := 0
	for pos < len(buf) {
		_, n, err := parseRecord(buf[pos:], base+uint64(len(seg.index)))
		if err != nil {
			seg.size = int64(pos)
			return seg, true, nil // torn tail: valid extent ends at pos
		}
		seg.index = append(seg.index, int64(pos))
		pos += n
	}
	seg.size = int64(pos)
	return seg, false, nil
}

func (l *Log) closeSegs() {
	for _, seg := range l.segs {
		seg.dev.Close()
	}
}

// flushLoop is the FsyncBatch background flusher: it bounds how long an
// appended record can wait for the batch to fill.
func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	t := time.NewTicker(l.cfg.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.sinceSync > 0 {
				l.syncLocked() // best effort; appenders see the error on retry
			}
			l.mu.Unlock()
		}
	}
}

// Append appends one record and returns its logical offset. Durability is
// governed by the fsync policy; the offset must not be acked to a client
// until WaitDurable(offset) returns (or Durable() covers it).
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	offset := l.next
	seg := l.segs[len(l.segs)-1]
	if seg.size >= l.cfg.SegmentBytes && len(seg.index) > 0 {
		rolled, _, err := l.openSegment(offset)
		if err != nil {
			return 0, err
		}
		l.segs = append(l.segs, rolled)
		seg = rolled
	}
	l.scratch = appendRecord(l.scratch[:0], offset, payload)
	if _, err := seg.dev.WriteAt(l.scratch, seg.size); err != nil {
		// size/index unchanged: a partial write is overwritten by the retry.
		return 0, fmt.Errorf("inlog: append at offset %d: %w", offset, err)
	}
	seg.index = append(seg.index, seg.size)
	seg.size += int64(len(l.scratch))
	seg.dirty = true
	l.next = offset + 1
	l.sinceSync++
	l.appends.Inc()
	l.appendBytes.Add(uint64(len(payload)))
	l.flight.Emit(obs.FlightInlogAppend, -1, 0, "", "", offset, uint64(len(payload)))
	l.cond.Broadcast()

	switch l.cfg.Fsync {
	case FsyncAlways:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncBatch:
		if l.sinceSync >= l.cfg.BatchRecords {
			if err := l.syncLocked(); err != nil {
				return 0, err
			}
		}
	}
	return offset, nil
}

// Sync makes every appended record durable (fsync). It is the whole of the
// FsyncManual policy and a barrier under the others.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// syncLocked flushes dirty segments in ascending base order, then advances
// the durable offset to the current tail. Ascending order is what keeps the
// durable prefix physical: if a sync fails (or a crash tears it), only a
// suffix of the unsynced records is lost, never a hole.
func (l *Log) syncLocked() error {
	target := l.next
	start := time.Now()
	synced := false
	for _, seg := range l.segs {
		if !seg.dirty {
			continue
		}
		if err := seg.dev.Sync(); err != nil {
			return fmt.Errorf("inlog: fsync segment %d: %w", seg.base, err)
		}
		seg.dirty = false
		synced = true
	}
	l.sinceSync = 0
	if l.durable != target {
		l.durable = target
		l.cond.Broadcast()
	}
	if synced {
		d := time.Since(start)
		l.fsyncs.Inc()
		l.fsyncNs.Observe(d)
		l.flight.Emit(obs.FlightInlogFsync, -1, 0, "", "", target, uint64(d.Nanoseconds()))
	}
	return nil
}

// Tail returns the next offset to be assigned (one past the last appended
// record).
func (l *Log) Tail() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Durable returns the durability frontier: every record with offset <
// Durable() is fsynced and safe to ack.
func (l *Log) Durable() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durable
}

// Start returns the logical offset of the oldest retained record (records
// below it have been trimmed).
func (l *Log) Start() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].base
}

// WaitDurable blocks until the record at offset is durable (Durable() >
// offset) — the ack gate. Returns ErrClosed if the log closes first.
func (l *Log) WaitDurable(offset uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.durable <= offset && !l.closed {
		l.cond.Wait()
	}
	if l.durable > offset {
		return nil
	}
	return ErrClosed
}

// WaitOffset blocks until the record at offset exists (Tail() > offset) —
// the tailing-read gate. Returns ErrClosed if the log closes first.
func (l *Log) WaitOffset(offset uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.next <= offset && !l.closed {
		l.cond.Wait()
	}
	if l.next > offset {
		return nil
	}
	return ErrClosed
}

// Read returns the payload of the record at the given logical offset. The
// record must exist (offset < Tail()) and not be trimmed (offset >= Start()).
func (l *Log) Read(offset uint64) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	seg := l.findSegment(offset)
	if seg == nil {
		return nil, fmt.Errorf("inlog: offset %d out of range [%d, %d)", offset, l.segs[0].base, l.next)
	}
	i := int(offset - seg.base)
	start := seg.index[i]
	end := seg.size
	if i+1 < len(seg.index) {
		end = seg.index[i+1]
	}
	buf := make([]byte, end-start)
	if _, err := seg.dev.ReadAt(buf, start); err != nil {
		return nil, fmt.Errorf("inlog: read offset %d: %w", offset, err)
	}
	payload, _, err := parseRecord(buf, offset)
	if err != nil {
		return nil, fmt.Errorf("inlog: offset %d failed verification: %w", offset, storage.ErrCorruptArtifact)
	}
	return payload, nil
}

// WaitRead blocks until the record at offset exists, then returns it.
func (l *Log) WaitRead(offset uint64) ([]byte, error) {
	if err := l.WaitOffset(offset); err != nil {
		return nil, err
	}
	return l.Read(offset)
}

func (l *Log) findSegment(offset uint64) *segment {
	for i := len(l.segs) - 1; i >= 0; i-- {
		seg := l.segs[i]
		if offset >= seg.base && offset < seg.end() {
			return seg
		}
	}
	return nil
}

// Trim removes segments whose every record lies below the given offset —
// the committed prefix made durable by a CPR commit's watermark. The active
// segment is never removed, so the log always retains its offset anchor.
// Returns the number of bytes physically deleted.
func (l *Log) Trim(before uint64) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	var removed int64
	for len(l.segs) > 1 && l.segs[0].end() <= before {
		seg := l.segs[0]
		seg.dev.Close()
		if err := l.cfg.Segments.Remove(seg.base); err != nil {
			return removed, fmt.Errorf("inlog: trim segment %d: %w", seg.base, err)
		}
		removed += seg.size
		l.segs = l.segs[1:]
	}
	if removed > 0 {
		l.trims.Inc()
		l.trimmedBytes.Add(uint64(removed))
		l.flight.Emit(obs.FlightInlogTrim, -1, 0, "", "", before, uint64(removed))
	}
	return removed, nil
}

// SegmentInfo describes one live segment (fasterctl inlog).
type SegmentInfo struct {
	Base    uint64 `json:"base"`    // logical offset of the first record
	End     uint64 `json:"end"`     // one past the last record
	Bytes   int64  `json:"bytes"`   // valid byte extent
	Records int    `json:"records"` // record count
	Dirty   bool   `json:"dirty"`   // has unsynced writes
}

// Segments returns a snapshot of the live segments in ascending base order.
func (l *Log) Segments() []SegmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SegmentInfo, len(l.segs))
	for i, seg := range l.segs {
		out[i] = SegmentInfo{Base: seg.base, End: seg.end(), Bytes: seg.size,
			Records: len(seg.index), Dirty: seg.dirty}
	}
	return out
}

// Close syncs outstanding appends (clean shutdown — the crash paths never
// call Close; they clone the segment store instead) and closes every
// segment device. Blocked WaitDurable/WaitOffset callers return ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	l.cond.Broadcast()
	stop := l.stopFlush
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		l.flushWG.Wait()
	}
	l.mu.Lock()
	l.closeSegs()
	l.mu.Unlock()
	return err
}
