package inlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/storage"
)

// SegmentStore names and stores log segments by the logical offset of their
// first record. It is the ingestion log's analogue of storage.CheckpointStore:
// MemSegmentStore backs the crash simulations (Clone is the crash image),
// DirSegmentStore runs the identical code path against real files.
type SegmentStore interface {
	// Open returns the device for the segment based at the given offset,
	// creating it if absent.
	Open(base uint64) (storage.Device, error)
	// List returns the base offsets of all existing segments in ascending
	// order.
	List() ([]uint64, error)
	// Remove deletes the segment based at the given offset.
	Remove(base uint64) error
}

// MemSegmentStore is a RAM-backed SegmentStore. Clone — taken at an
// arbitrary instant — is the crash-simulation primitive, mirroring
// MemDevice.Clone and MemCheckpointStore.Clone.
type MemSegmentStore struct {
	mu   sync.Mutex
	segs map[uint64]*storage.MemDevice
}

// NewMemSegmentStore returns an empty RAM-backed segment store.
func NewMemSegmentStore() *MemSegmentStore {
	return &MemSegmentStore{segs: make(map[uint64]*storage.MemDevice)}
}

// Open implements SegmentStore. Reopening a segment whose device was closed
// (a clean Log.Close) yields a fresh device over the same bytes, like
// remounting a file.
func (s *MemSegmentStore) Open(base uint64) (storage.Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.segs[base]
	if !ok {
		d = storage.NewMemDevice()
		s.segs[base] = d
		return d, nil
	}
	if d.Sync() == storage.ErrClosed {
		d = d.Clone()
		s.segs[base] = d
	}
	return d, nil
}

// List implements SegmentStore.
func (s *MemSegmentStore) List() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bases := make([]uint64, 0, len(s.segs))
	for b := range s.segs {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// Remove implements SegmentStore.
func (s *MemSegmentStore) Remove(base uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.segs, base)
	return nil
}

// Clone returns an independent copy of every segment's current contents —
// restarting from a clone models recovering from whatever had reached
// "disk". Layer SyncBufferDevice on top (Config.WrapDevice) to make that
// boundary an fsync boundary.
func (s *MemSegmentStore) Clone() *MemSegmentStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := NewMemSegmentStore()
	for b, d := range s.segs {
		c.segs[b] = d.Clone()
	}
	return c
}

// DirSegmentStore keeps each segment as a file <dir>/inlog-<base>.seg.
type DirSegmentStore struct {
	dir string
}

const (
	segPrefix = "inlog-"
	segSuffix = ".seg"
)

// NewDirSegmentStore creates dir if needed and returns a store over it.
func NewDirSegmentStore(dir string) (*DirSegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("inlog: segment dir: %w", err)
	}
	return &DirSegmentStore{dir: dir}, nil
}

func (s *DirSegmentStore) path(base uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix))
}

// Open implements SegmentStore.
func (s *DirSegmentStore) Open(base uint64) (storage.Device, error) {
	return storage.OpenFileDevice(s.path(base))
}

// List implements SegmentStore.
func (s *DirSegmentStore) List() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var bases []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		base, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		bases = append(bases, base)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	return bases, nil
}

// Remove implements SegmentStore.
func (s *DirSegmentStore) Remove(base uint64) error {
	return os.Remove(s.path(base))
}
