package inlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/obs"
)

// IngestServer accepts TCP connections speaking the ingest wire protocol:
// the client sends length-prefixed messages (u32 LE length, then a Message
// wire form — see EncodeMessage), and for each one the server replies with
// the record's logical offset (u64 LE) once the record is fsync-durable.
// The ack therefore IS the durability guarantee: a client that saw offset o
// acked will find that record applied after any crash. Appends and acks are
// pipelined per connection so a batched fsync policy amortizes across
// in-flight requests.
type IngestServer struct {
	log    *Log
	flight *obs.FlightRecorder
	msgs   *obs.Counter
	conns  *obs.Counter

	mu       sync.Mutex
	listener net.Listener
	closed   bool
}

// NewIngestServer returns a server appending into log. metrics may be nil.
func NewIngestServer(log *Log, metrics *obs.Registry, flight *obs.FlightRecorder) *IngestServer {
	if metrics == nil {
		metrics = obs.NewNop()
	}
	return &IngestServer{
		log:    log,
		flight: flight,
		msgs:   metrics.Counter("inlog_ingest_msgs"),
		conns:  metrics.Counter("inlog_ingest_conns"),
	}
}

// Serve accepts connections on ln until Close (or the listener fails).
func (s *IngestServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.conns.Inc()
		go s.serveConn(conn)
	}
}

// Close stops accepting; in-flight connections finish their current acks.
func (s *IngestServer) Close() {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
}

// serveConn pipelines one connection: the read loop appends records and
// queues their offsets; the ack loop waits for durability in offset order
// and writes each ack. A batch fsync policy makes many queued offsets
// durable at once, so acks drain in bursts.
func (s *IngestServer) serveConn(conn net.Conn) {
	defer conn.Close()
	acks := make(chan uint64, 1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf [8]byte
		for off := range acks {
			if s.log.WaitDurable(off) != nil {
				return
			}
			binary.LittleEndian.PutUint64(buf[:], off)
			if _, err := conn.Write(buf[:]); err != nil {
				return
			}
		}
	}()

	var lenBuf [4]byte
	var msgBuf []byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			break
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n == 0 || n > 16<<20 {
			break
		}
		if int(n) > cap(msgBuf) {
			msgBuf = make([]byte, n)
		}
		msgBuf = msgBuf[:n]
		if _, err := io.ReadFull(conn, msgBuf); err != nil {
			break
		}
		if _, err := DecodeMessage(msgBuf); err != nil {
			break // malformed payloads are rejected before they reach the log
		}
		off, err := s.log.Append(msgBuf)
		if err != nil {
			break
		}
		s.msgs.Inc()
		acks <- off
	}
	close(acks)
	<-done
}

// IngestClient is the matching client: Send pipelines a message, Ack reads
// the next durable offset. It is a test/bench aid, not a production SDK.
type IngestClient struct {
	conn net.Conn
	wbuf []byte
}

// DialIngest connects to an IngestServer.
func DialIngest(addr string) (*IngestClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("inlog: dial %s: %w", addr, err)
	}
	return &IngestClient{conn: conn}, nil
}

// Send writes one message; the matching Ack arrives in order.
func (c *IngestClient) Send(m Message) error {
	c.wbuf = c.wbuf[:0]
	c.wbuf = append(c.wbuf, 0, 0, 0, 0)
	c.wbuf = EncodeMessage(c.wbuf, m)
	if len(c.wbuf)-4 == 0 {
		return errors.New("inlog: empty message")
	}
	binary.LittleEndian.PutUint32(c.wbuf[0:4], uint32(len(c.wbuf)-4))
	_, err := c.conn.Write(c.wbuf)
	return err
}

// Ack blocks for the next ack and returns the acked record's offset.
func (c *IngestClient) Ack() (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(c.conn, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// Close closes the connection.
func (c *IngestClient) Close() error { return c.conn.Close() }
