// Package inlog is the durable ingestion log in front of the FASTER store:
// clients append operation records, an fsync policy makes them durable, and
// acks carry the record's logical offset. An apply pump drains durable
// records into a dedicated FASTER session and, at every CPR commit, persists
// the highest log offset contained in the committed prefix as an
// inlog-<token> watermark artifact next to the commit's own artifacts.
// Segments wholly below the watermark are truncated after the commit; after
// a crash, recovery restores the store to its last verified commit and
// replays only the log suffix above the recovered watermark — each acked
// record applied exactly once.
//
// The log is segmented: records live in fixed-threshold segments named by
// the logical offset of their first record, each a storage.Device so the
// fault injector and the SyncBufferDevice page-cache model layer underneath
// unchanged (see Config.WrapDevice).
package inlog

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Record frame: a 20-byte header followed by the payload.
//
//	magic  "ILR1"             4 bytes
//	offset uint64 LE          8 bytes  — the record's logical offset
//	length uint32 LE          4 bytes  — payload bytes
//	crc    uint32 LE          4 bytes  — CRC32-C over offset||length||payload
//
// The CRC covers the logical offset, so bytes recycled from an earlier
// (crashed) write at the same file position can never masquerade as a
// different record: a frame is valid only at the exact logical offset the
// reader expects next. This is what makes logical truncation safe — the
// torn tail of a crashed append is simply overwritten, and any stale bytes
// beyond the new extent fail to parse on the next open.
const (
	recordMagic  = "ILR1"
	recordHeader = 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks bytes that do not parse as the expected next record. Under
// the log's append-only discipline with ordered prefix fsyncs, such bytes
// can only be the torn tail of the last crashed write (or stale garbage
// beyond it), never acked data; openers truncate at the first occurrence.
var errTorn = errors.New("inlog: torn record")

func recordCRC(offset uint64, payload []byte) uint32 {
	var pre [12]byte
	binary.LittleEndian.PutUint64(pre[0:8], offset)
	binary.LittleEndian.PutUint32(pre[8:12], uint32(len(payload)))
	c := crc32.Update(0, castagnoli, pre[:])
	return crc32.Update(c, castagnoli, payload)
}

// appendRecord appends the wire frame for (offset, payload) to dst and
// returns the extended slice.
func appendRecord(dst []byte, offset uint64, payload []byte) []byte {
	var hdr [recordHeader]byte
	copy(hdr[0:4], recordMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], offset)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[16:20], recordCRC(offset, payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseRecord decodes the record at the start of buf, which must carry
// logical offset want. It returns the payload (aliasing buf) and the total
// frame size. Every deviation — short header, bad magic, wrong offset,
// payload running past the buffer, CRC mismatch — is errTorn.
func parseRecord(buf []byte, want uint64) ([]byte, int, error) {
	if len(buf) < recordHeader {
		return nil, 0, errTorn
	}
	if string(buf[0:4]) != recordMagic {
		return nil, 0, errTorn
	}
	off := binary.LittleEndian.Uint64(buf[4:12])
	if off != want {
		return nil, 0, errTorn
	}
	n := int(binary.LittleEndian.Uint32(buf[12:16]))
	if n < 0 || recordHeader+n > len(buf) {
		return nil, 0, errTorn
	}
	payload := buf[recordHeader : recordHeader+n]
	if binary.LittleEndian.Uint32(buf[16:20]) != recordCRC(want, payload) {
		return nil, 0, errTorn
	}
	return payload, recordHeader + n, nil
}
