package inlog

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/storage"
)

// Watermark is the inlog-<token> commit attachment: for CPR commit Token,
// the pump session's committed serial and the corresponding log offset —
// every record with offset < Offset is inside the committed prefix.
//
// A watermark is also a serial<->offset *anchor*: the pump applies exactly
// one record per serial, so serial - offset is constant for the life of the
// pump session and any watermark (however old) converts a recovered CPR
// point to its exact replay offset by linear arithmetic. That is what makes
// a crash between a commit's manifest and its watermark artifact harmless:
// recovery falls back to an older anchor and still lands on the same byte.
type Watermark struct {
	Token   string `json:"token"`
	Session string `json:"session"`
	Serial  uint64 `json:"serial"`
	Offset  uint64 `json:"offset"`
}

// WatermarkName returns the artifact name carrying the watermark for a
// commit token.
func WatermarkName(token string) string { return "inlog-" + token }

const watermarkPrefix = "inlog-"

// OffsetForSerial converts a session serial to its log offset using this
// watermark as the anchor (signed-safe in both directions).
func (w Watermark) OffsetForSerial(serial uint64) uint64 {
	return uint64(int64(w.Offset) + (int64(serial) - int64(w.Serial)))
}

// LoadWatermark reads the watermark attached to one commit token.
// ok is false when the commit has no watermark artifact.
func LoadWatermark(cs storage.CheckpointStore, token string) (Watermark, bool, error) {
	return readWatermark(cs, WatermarkName(token))
}

// LatestWatermark returns the newest watermark artifact in the checkpoint
// store (tokens sort chronologically), or ok=false when none exists yet.
func LatestWatermark(cs storage.CheckpointStore) (Watermark, bool, error) {
	names, err := storage.ListPrefix(cs, watermarkPrefix)
	if err != nil {
		return Watermark{}, false, fmt.Errorf("inlog: list watermarks: %w", err)
	}
	sort.Strings(names)
	// Walk newest-first so a single corrupt (torn) watermark artifact falls
	// back to the previous anchor instead of failing recovery.
	for i := len(names) - 1; i >= 0; i-- {
		w, ok, err := readWatermark(cs, names[i])
		if err == nil && ok {
			return w, true, nil
		}
	}
	return Watermark{}, false, nil
}

// ListWatermarks returns every readable watermark, oldest first (fasterctl
// inlog).
func ListWatermarks(cs storage.CheckpointStore) ([]Watermark, error) {
	names, err := storage.ListPrefix(cs, watermarkPrefix)
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []Watermark
	for _, name := range names {
		if w, ok, err := readWatermark(cs, name); err == nil && ok {
			out = append(out, w)
		}
	}
	return out, nil
}

func readWatermark(cs storage.CheckpointStore, name string) (Watermark, bool, error) {
	if !strings.HasPrefix(name, watermarkPrefix) {
		return Watermark{}, false, fmt.Errorf("inlog: %q is not a watermark artifact", name)
	}
	buf, err := storage.ReadArtifactChecked(cs, name)
	if err != nil {
		if storage.IsNotFound(err) {
			return Watermark{}, false, nil
		}
		return Watermark{}, false, fmt.Errorf("inlog: read %s: %w", name, err)
	}
	var w Watermark
	if err := json.Unmarshal(buf, &w); err != nil {
		return Watermark{}, false, fmt.Errorf("inlog: decode %s: %w", name, err)
	}
	return w, true, nil
}
