package inlog

import (
	"encoding/binary"
	"fmt"
)

// Op identifies the store operation an ingested record carries.
type Op byte

// Record operations, mirroring the FASTER session surface.
const (
	OpRMW    Op = 1
	OpUpsert Op = 2
	OpDelete Op = 3
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpRMW:
		return "rmw"
	case OpUpsert:
		return "upsert"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("op(%d)", byte(op))
}

// Message is the payload of one ingestion record: a single store operation.
// Wire form: op(1) | klen u32 LE(4) | key | value. Value is the RMW input
// for OpRMW, the new value for OpUpsert, and empty for OpDelete.
type Message struct {
	Op    Op
	Key   []byte
	Value []byte
}

// EncodeMessage appends m's wire form to dst and returns the extended slice.
func EncodeMessage(dst []byte, m Message) []byte {
	var hdr [5]byte
	hdr[0] = byte(m.Op)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(m.Key)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, m.Key...)
	return append(dst, m.Value...)
}

// DecodeMessage parses one message. Key and Value alias buf.
func DecodeMessage(buf []byte) (Message, error) {
	if len(buf) < 5 {
		return Message{}, fmt.Errorf("inlog: message too short (%d bytes)", len(buf))
	}
	op := Op(buf[0])
	switch op {
	case OpRMW, OpUpsert, OpDelete:
	default:
		return Message{}, fmt.Errorf("inlog: unknown op %d", buf[0])
	}
	klen := int(binary.LittleEndian.Uint32(buf[1:5]))
	if klen < 0 || 5+klen > len(buf) {
		return Message{}, fmt.Errorf("inlog: key length %d exceeds message (%d bytes)", klen, len(buf))
	}
	return Message{Op: op, Key: buf[5 : 5+klen], Value: buf[5+klen:]}, nil
}
