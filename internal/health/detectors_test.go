package health

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// mkSample builds a Sample from literal metric maps — the detector contract
// is a pure function over two snapshots, so every stall shape is expressible
// as data with no running store.
func mkSample(at int64, gauges map[string]int64, counters map[string]uint64) Sample {
	return Sample{At: at, Snap: obs.Snapshot{Gauges: gauges, Counters: counters}}
}

// pair evaluates a detector Check over a (prev, cur) snapshot pair.
func pair(t *testing.T, check func(prev, cur Sample) (bool, string),
	prevG, curG map[string]int64, prevC, curC map[string]uint64) (bool, string) {
	t.Helper()
	return check(mkSample(0, prevG, prevC), mkSample(1e9, curG, curC))
}

func TestEpochDrainStuck(t *testing.T) {
	// Seeded stall: drain actions queued across the window, safe frozen, no
	// drains fired.
	bad, detail := pair(t, checkEpochDrainStuck,
		map[string]int64{"epoch_pending_drains": 2, "epoch_current": 7, "epoch_safe": 4},
		map[string]int64{"epoch_pending_drains": 2, "epoch_current": 7, "epoch_safe": 4},
		map[string]uint64{"epoch_drains_total": 10},
		map[string]uint64{"epoch_drains_total": 10})
	if !bad {
		t.Fatal("frozen safe frontier with queued drains not detected")
	}
	if !strings.Contains(detail, "current=7 safe=4") {
		t.Fatalf("detail %q lacks the epoch values", detail)
	}

	// Healthy: safe advancing.
	if bad, _ := pair(t, checkEpochDrainStuck,
		map[string]int64{"epoch_pending_drains": 2, "epoch_safe": 4},
		map[string]int64{"epoch_pending_drains": 2, "epoch_safe": 6},
		nil, nil); bad {
		t.Fatal("advancing safe frontier flagged as stuck")
	}
	// Healthy: frozen but drains fired this window (progress by action).
	if bad, _ := pair(t, checkEpochDrainStuck,
		map[string]int64{"epoch_pending_drains": 2, "epoch_safe": 4},
		map[string]int64{"epoch_pending_drains": 2, "epoch_safe": 4},
		map[string]uint64{"epoch_drains_total": 10},
		map[string]uint64{"epoch_drains_total": 11}); bad {
		t.Fatal("window with a drain flagged as stuck")
	}
	// Healthy: quiescent table (current is permanently safe+1 after the last
	// bump, but nothing is queued — no demand, no stall).
	if bad, _ := pair(t, checkEpochDrainStuck,
		map[string]int64{"epoch_pending_drains": 0, "epoch_current": 7, "epoch_safe": 6},
		map[string]int64{"epoch_pending_drains": 0, "epoch_current": 7, "epoch_safe": 6},
		nil, nil); bad {
		t.Fatal("quiescent epoch table flagged as stuck")
	}
	// Shard-prefixed metrics are scanned too.
	if bad, _ := pair(t, checkEpochDrainStuck,
		map[string]int64{"shard2_epoch_pending_drains": 1, "shard2_epoch_current": 9, "shard2_epoch_safe": 3},
		map[string]int64{"shard2_epoch_pending_drains": 1, "shard2_epoch_current": 9, "shard2_epoch_safe": 3},
		nil, nil); !bad {
		t.Fatal("shard-prefixed stall not detected")
	}
}

func TestCommitStuck(t *testing.T) {
	// Seeded stall: parked in PREPARE across the window, nothing completed.
	bad, detail := pair(t, checkCommitStuck,
		map[string]int64{"faster_phase": 1, "faster_version": 5},
		map[string]int64{"faster_phase": 1, "faster_version": 5},
		map[string]uint64{"faster_commits_total": 3},
		map[string]uint64{"faster_commits_total": 3})
	if !bad {
		t.Fatal("commit parked in prepare not detected")
	}
	if !strings.Contains(detail, "prepare") {
		t.Fatalf("detail %q does not name the phase", detail)
	}

	// Healthy: at Rest.
	if bad, _ := pair(t, checkCommitStuck,
		map[string]int64{"faster_phase": 0},
		map[string]int64{"faster_phase": 0}, nil, nil); bad {
		t.Fatal("rest phase flagged as stuck")
	}
	// Healthy: phase advancing between samples.
	if bad, _ := pair(t, checkCommitStuck,
		map[string]int64{"faster_phase": 1},
		map[string]int64{"faster_phase": 3}, nil, nil); bad {
		t.Fatal("advancing phase flagged as stuck")
	}
	// Healthy: same phase observed but a commit completed in between (two
	// back-to-back commits caught mid-flight).
	if bad, _ := pair(t, checkCommitStuck,
		map[string]int64{"faster_phase": 2},
		map[string]int64{"faster_phase": 2},
		map[string]uint64{"faster_commits_total": 3},
		map[string]uint64{"faster_commits_total": 4}); bad {
		t.Fatal("window with a completed commit flagged as stuck")
	}
	// Healthy: a commit failed — that is progress (the machine moved on).
	if bad, _ := pair(t, checkCommitStuck,
		map[string]int64{"faster_phase": 2},
		map[string]int64{"faster_phase": 2},
		map[string]uint64{"faster_commit_failures_total": 1},
		map[string]uint64{"faster_commit_failures_total": 2}); bad {
		t.Fatal("window with a failed commit flagged as stuck")
	}
}

func TestInlogFsyncStalled(t *testing.T) {
	bad, detail := pair(t, checkInlogFsyncStalled,
		map[string]int64{"inlog_tail": 9000, "inlog_durable": 4096},
		map[string]int64{"inlog_tail": 9500, "inlog_durable": 4096}, nil, nil)
	if !bad {
		t.Fatal("frozen durable frontier with queued appends not detected")
	}
	if !strings.Contains(detail, "tail=9500 durable=4096") {
		t.Fatalf("detail %q lacks the frontier values", detail)
	}

	// Healthy: frontier advancing.
	if bad, _ := pair(t, checkInlogFsyncStalled,
		map[string]int64{"inlog_tail": 9000, "inlog_durable": 4096},
		map[string]int64{"inlog_tail": 9500, "inlog_durable": 9000}, nil, nil); bad {
		t.Fatal("advancing durable frontier flagged as stalled")
	}
	// Healthy: fully synced (no demand).
	if bad, _ := pair(t, checkInlogFsyncStalled,
		map[string]int64{"inlog_tail": 9000, "inlog_durable": 9000},
		map[string]int64{"inlog_tail": 9000, "inlog_durable": 9000}, nil, nil); bad {
		t.Fatal("synced inlog flagged as stalled")
	}
	// No inlog configured: no metrics, no verdict.
	if bad, _ := pair(t, checkInlogFsyncStalled, nil, nil, nil, nil); bad {
		t.Fatal("absent inlog metrics flagged as stalled")
	}
}

func TestReplLagGrowing(t *testing.T) {
	// Replica side: bytes behind growing.
	bad, detail := pair(t, checkReplLagGrowing,
		map[string]int64{"repl_bytes_behind": 1000},
		map[string]int64{"repl_bytes_behind": 5000}, nil, nil)
	if !bad {
		t.Fatal("growing replica byte lag not detected")
	}
	if !strings.Contains(detail, "+4000") {
		t.Fatalf("detail %q lacks the growth", detail)
	}
	// Replica side: versions behind growing.
	if bad, _ := pair(t, checkReplLagGrowing,
		map[string]int64{"repl_versions_behind": 1},
		map[string]int64{"repl_versions_behind": 3}, nil, nil); !bad {
		t.Fatal("growing replica version lag not detected")
	}
	// Primary side: commits completing, none announced.
	if bad, _ := pair(t, checkReplLagGrowing,
		map[string]int64{"repl_replicas": 2},
		map[string]int64{"repl_replicas": 2},
		map[string]uint64{"faster_commits_total": 5, "repl_commits_announced_total": 5},
		map[string]uint64{"faster_commits_total": 8, "repl_commits_announced_total": 5}); !bad {
		t.Fatal("primary committing without announcing not detected")
	}

	// Healthy: replica catching up.
	if bad, _ := pair(t, checkReplLagGrowing,
		map[string]int64{"repl_bytes_behind": 5000},
		map[string]int64{"repl_bytes_behind": 1000}, nil, nil); bad {
		t.Fatal("shrinking lag flagged as growing")
	}
	// Healthy: primary announcing every commit.
	if bad, _ := pair(t, checkReplLagGrowing,
		map[string]int64{"repl_replicas": 2},
		map[string]int64{"repl_replicas": 2},
		map[string]uint64{"faster_commits_total": 5, "repl_commits_announced_total": 5},
		map[string]uint64{"faster_commits_total": 8, "repl_commits_announced_total": 8}); bad {
		t.Fatal("announcing primary flagged")
	}
	// Healthy: primary with no replicas attached owes no announcements.
	if bad, _ := pair(t, checkReplLagGrowing,
		map[string]int64{"repl_replicas": 0},
		map[string]int64{"repl_replicas": 0},
		map[string]uint64{"faster_commits_total": 5},
		map[string]uint64{"faster_commits_total": 8}); bad {
		t.Fatal("replica-less primary flagged")
	}
}

func TestRestoreSweeperStalled(t *testing.T) {
	bad, detail := pair(t, checkRestoreSweeperStalled,
		map[string]int64{"faster_restore_active": 1, "faster_restore_cold_buckets": 40},
		map[string]int64{"faster_restore_active": 1, "faster_restore_cold_buckets": 40},
		nil, nil)
	if !bad {
		t.Fatal("frozen cold-bucket count during restore not detected")
	}
	if !strings.Contains(detail, "40 cold bucket") {
		t.Fatalf("detail %q lacks the cold count", detail)
	}

	// Healthy: sweeper warming buckets (count dropping).
	if bad, _ := pair(t, checkRestoreSweeperStalled,
		map[string]int64{"faster_restore_active": 1, "faster_restore_cold_buckets": 40},
		map[string]int64{"faster_restore_active": 1, "faster_restore_cold_buckets": 25},
		nil, nil); bad {
		t.Fatal("progressing sweeper flagged as stalled")
	}
	// Healthy: count frozen but on-demand warms landed this window (the
	// store-level counters prove progress even if the gauge snapshot tied).
	if bad, _ := pair(t, checkRestoreSweeperStalled,
		map[string]int64{"faster_restore_active": 1, "faster_restore_cold_buckets": 40},
		map[string]int64{"faster_restore_active": 1, "faster_restore_cold_buckets": 40},
		map[string]uint64{"faster_restore_ondemand_warms_total": 3},
		map[string]uint64{"faster_restore_ondemand_warms_total": 9}); bad {
		t.Fatal("window with on-demand warms flagged as stalled")
	}
	// Healthy: restore finished.
	if bad, _ := pair(t, checkRestoreSweeperStalled,
		map[string]int64{"faster_restore_active": 0, "faster_restore_cold_buckets": 0},
		map[string]int64{"faster_restore_active": 0, "faster_restore_cold_buckets": 0},
		nil, nil); bad {
		t.Fatal("finished restore flagged as stalled")
	}
}

func TestFlushStarvation(t *testing.T) {
	hist := func(count uint64) obs.Snapshot {
		return obs.Snapshot{
			Histograms: map[string]obs.HistogramSnapshot{"faster_op_exec_ns": {Count: count}},
			Counters:   map[string]uint64{"faster_net_coalesced_flushes_total": 100},
		}
	}
	prev, cur := Sample{Snap: hist(50)}, Sample{Snap: hist(80)}
	bad, detail := checkFlushStarvation(prev, cur)
	if !bad {
		t.Fatal("ops executing with zero flushes not detected")
	}
	if !strings.Contains(detail, "30 op(s)") {
		t.Fatalf("detail %q lacks the op count", detail)
	}

	// Healthy: flushes happening.
	curOK := Sample{Snap: obs.Snapshot{
		Histograms: map[string]obs.HistogramSnapshot{"faster_op_exec_ns": {Count: 80}},
		Counters:   map[string]uint64{"faster_net_coalesced_flushes_total": 140},
	}}
	if bad, _ := checkFlushStarvation(prev, curOK); bad {
		t.Fatal("flushing server flagged as starved")
	}
	// Healthy: idle server (no ops this window).
	if bad, _ := checkFlushStarvation(prev, prev); bad {
		t.Fatal("idle server flagged as starved")
	}
	// No net server wired (no flush counter): not this detector's problem.
	noNet := Sample{Snap: obs.Snapshot{
		Histograms: map[string]obs.HistogramSnapshot{"faster_op_exec_ns": {Count: 80}},
	}}
	if bad, _ := checkFlushStarvation(Sample{Snap: obs.Snapshot{}}, noNet); bad {
		t.Fatal("store without a net server flagged as starved")
	}
}

func TestWindowedP99(t *testing.T) {
	mk := func(buckets map[int]uint64) obs.HistogramSnapshot {
		b := make([]uint64, 48)
		for i, c := range buckets {
			b[i] = c
		}
		return obs.HistogramSnapshot{Buckets: b}
	}
	// 100 observations in bucket 10 historically; this window adds 50 in
	// bucket 20. The windowed p99 must reflect only bucket 20.
	prev := mk(map[int]uint64{10: 100})
	cur := mk(map[int]uint64{10: 100, 20: 50})
	p99, n := windowedP99(prev, cur)
	if n != 50 {
		t.Fatalf("window count = %d, want 50", n)
	}
	lo, hi := uint64(1)<<19, uint64(1)<<20-1
	if p99 < lo || p99 > hi {
		t.Fatalf("windowed p99 %d outside bucket 20's range [%d, %d]", p99, lo, hi)
	}
	// Empty window.
	if _, n := windowedP99(cur, cur); n != 0 {
		t.Fatalf("empty window reported %d observations", n)
	}
	// No buckets at all (histogram never snapshotted with buckets).
	if _, n := windowedP99(obs.HistogramSnapshot{}, obs.HistogramSnapshot{}); n != 0 {
		t.Fatal("bucket-less snapshots reported observations")
	}
}

func TestSLODetector(t *testing.T) {
	st := &sloState{objective: 1_000_000} // 1ms
	det := newSLODetector(st)
	mkh := func(bucket int, count uint64) obs.Snapshot {
		b := make([]uint64, 48)
		b[bucket] = count
		return obs.Snapshot{Histograms: map[string]obs.HistogramSnapshot{
			"faster_session_lag_ns": {Buckets: b, Count: count},
		}}
	}
	// Window of 100 lags around 2^30 ns (~1s): far past the 1ms objective.
	bad, detail := det.Check(Sample{Snap: mkh(30, 0)}, Sample{At: 1, Snap: mkh(30, 100)})
	if !bad {
		t.Fatal("1s durability lags did not burn a 1ms objective")
	}
	if !strings.Contains(detail, "objective") {
		t.Fatalf("detail %q lacks the objective", detail)
	}
	if s := st.status(); s.WindowObservations != 100 || s.WindowP99Nanos <= s.ObjectiveNanos {
		t.Fatalf("slo status not updated: %+v", s)
	}
	// Window of lags around 2^10 ns (~1µs): well under the objective.
	if bad, _ := det.Check(Sample{Snap: mkh(10, 0)}, Sample{At: 1, Snap: mkh(10, 100)}); bad {
		t.Fatal("1µs lags burned a 1ms objective")
	}
	// Idle window: no observations, no burn.
	if bad, _ := det.Check(Sample{Snap: mkh(30, 100)}, Sample{At: 1, Snap: mkh(30, 100)}); bad {
		t.Fatal("idle window burned the objective")
	}
}
