// Package health is the in-process consumer of the repository's
// observability primitives: an always-on engine that periodically samples
// the metrics registry, runs a suite of hysteresis-guarded stall/SLO
// detectors over consecutive sample pairs, and — when a detector fires —
// captures evidence at the moment it goes wrong as a rate-limited incident
// bundle (flight-recorder dump, slowest traces, full metrics snapshot,
// goroutine and heap profiles) written through the checkpoint store.
//
// The CPR design makes the interesting failure mode a *silent stall*, not a
// crash: a commit stuck in PREPARE, an fsync frontier that stops advancing,
// a restore sweeper that never finishes. Every built-in detector is a pure
// function over two registry snapshots (demand present, progress absent), so
// each is unit-testable against a synthesized registry with no running
// store.
package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Sample is one observation of the process: a wall-clock instant plus a full
// registry snapshot. Detectors see consecutive pairs of these.
type Sample struct {
	// At is the sample's wall clock, UnixNano.
	At int64
	// Snap is the registry snapshot taken at At.
	Snap obs.Snapshot
}

// Detector is one health check evaluated over consecutive sample pairs.
// Check must be a pure function of (prev, cur): it reports whether the pair
// looks bad and a human-readable detail. Hysteresis (consecutive-sample
// thresholds before firing or clearing) is the engine's job, not Check's.
type Detector struct {
	// Name identifies the detector in verdicts, metric names, flight-event
	// tokens, and incident artifact names. Keep it short and kebab-case.
	Name string
	// Description says what the detector watches, for verdicts and runbooks.
	Description string
	// Critical detectors make the verdict "unhealthy" when firing;
	// non-critical ones only degrade it.
	Critical bool
	// Check inspects one consecutive sample pair.
	Check func(prev, cur Sample) (bad bool, detail string)
}

// Config configures an Engine. The zero value of every field except Registry
// is usable; Registry is required.
type Config struct {
	// Registry is the metrics registry to sample. Required.
	Registry *obs.Registry
	// Interval between samples for Start. Default 1s.
	Interval time.Duration
	// FireAfter is how many consecutive bad samples a detector needs before
	// it fires. Default 3.
	FireAfter int
	// ClearAfter is how many consecutive good samples a firing detector
	// needs before it clears. Default 2.
	ClearAfter int
	// SLODurLag is the durability-lag objective: the windowed p99 of
	// faster_session_lag_ns above this fires the slo-durlag-burn detector.
	// Zero disables the SLO detector.
	SLODurLag time.Duration
	// Bundles receives incident artifacts (incident-<detector>-<seq>). Nil
	// disables bundle capture; detectors still fire and the verdict still
	// degrades.
	Bundles storage.CheckpointStore
	// Flight, when set, is both dumped into incident bundles and used to
	// emit health-fire / health-clear events on detector transitions.
	Flight *obs.FlightRecorder
	// Traces, when set, contributes the slowest trace span trees to bundles.
	Traces *obs.RequestTracer
	// MinBundleInterval rate-limits bundle capture across all detectors
	// (a stalled system often trips several at once). Default 1m.
	MinBundleInterval time.Duration
	// OnIncident, when set, is called (from the sampling goroutine, after
	// the bundle is written) for every captured incident.
	OnIncident func(*Bundle)
	// Detectors are extra checks appended to the built-in suite.
	Detectors []Detector
}

// DetectorStatus is one detector's slot in a Verdict.
type DetectorStatus struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Critical    bool   `json:"critical,omitempty"`
	Firing      bool   `json:"firing"`
	// Detail is the latest bad-sample explanation; empty while healthy.
	Detail string `json:"detail,omitempty"`
	// BadStreak counts consecutive bad samples (resets on any good sample).
	BadStreak int `json:"bad_streak,omitempty"`
	// SinceUnixNanos is when the detector started firing (0 if not firing).
	SinceUnixNanos int64 `json:"since_unix_ns,omitempty"`
}

// SLOStatus reports the durability-lag objective's standing.
type SLOStatus struct {
	ObjectiveNanos uint64 `json:"objective_ns"`
	// WindowP99Nanos is the p99 of faster_session_lag_ns over the last
	// sampling window (log2-bucket midpoint, worst shard).
	WindowP99Nanos uint64 `json:"window_p99_ns"`
	// WindowObservations is how many lag observations the window held.
	WindowObservations uint64 `json:"window_observations"`
}

// Verdict is the machine-readable health state: "healthy",
// "degraded:<detectors>", or "unhealthy:<detectors>" (any critical detector
// firing). The token before the first ':' is the state proper.
type Verdict struct {
	State            string           `json:"state"`
	SampledUnixNanos int64            `json:"sampled_unix_ns"`
	Samples          uint64           `json:"samples"`
	Detectors        []DetectorStatus `json:"detectors"`
	SLO              *SLOStatus       `json:"slo,omitempty"`
}

// Healthy reports whether no detector is firing.
func (v *Verdict) Healthy() bool { return v != nil && v.State == "healthy" }

// detState is one detector plus its hysteresis counters.
type detState struct {
	det          Detector
	badStreak    int
	goodStreak   int
	firing       bool
	firedSamples uint64
	detail       string
	sinceNanos   int64
	gauge        *obs.Gauge
}

// Engine samples the registry and drives the detector suite. Create with
// New; drive with Start/Stop (a ticker goroutine) or Tick (manual, for
// tests and single-threaded embedding).
type Engine struct {
	cfg Config
	now func() int64 // seam for deterministic tests

	mu          sync.Mutex
	dets        []*detState
	prev        Sample
	havePrev    bool
	samples     uint64
	verdict     Verdict
	incidentSeq uint64
	lastBundle  int64
	started     bool
	stop        chan struct{}
	done        chan struct{}

	slo *sloState

	gState     *obs.Gauge
	gFiring    *obs.Gauge
	cSamples   *obs.Counter
	cIncidents *obs.Counter
}

// New builds an engine over cfg, registers the faster_health_* metrics on
// cfg.Registry, and evaluates nothing until ticked or started.
func New(cfg Config) *Engine {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FireAfter <= 0 {
		cfg.FireAfter = 3
	}
	if cfg.ClearAfter <= 0 {
		cfg.ClearAfter = 2
	}
	if cfg.MinBundleInterval <= 0 {
		cfg.MinBundleInterval = time.Minute
	}
	e := &Engine{
		cfg: cfg,
		now: func() int64 { return time.Now().UnixNano() },
	}
	dets := builtinDetectors()
	if cfg.SLODurLag > 0 {
		e.slo = &sloState{objective: uint64(cfg.SLODurLag.Nanoseconds())}
		dets = append(dets, newSLODetector(e.slo))
	}
	dets = append(dets, cfg.Detectors...)
	reg := cfg.Registry
	for _, d := range dets {
		g := reg.Gauge("faster_health_firing_" + metricName(d.Name))
		reg.SetHelp("faster_health_firing_"+metricName(d.Name),
			"1 while the "+d.Name+" detector is firing. "+d.Description)
		e.dets = append(e.dets, &detState{det: d, gauge: g})
	}
	e.gState = reg.Gauge("faster_health_state")
	reg.SetHelp("faster_health_state", "Health verdict: 0 healthy, 1 degraded, 2 unhealthy.")
	e.gFiring = reg.Gauge("faster_health_detectors_firing")
	reg.SetHelp("faster_health_detectors_firing", "Detectors currently firing.")
	e.cSamples = reg.Counter("faster_health_samples_total")
	reg.SetHelp("faster_health_samples_total", "Health samples taken.")
	e.cIncidents = reg.Counter("faster_health_incidents_total")
	reg.SetHelp("faster_health_incidents_total", "Incident bundles captured.")
	if e.slo != nil {
		reg.GaugeFunc("faster_health_slo_durlag_p99_ns", e.slo.p99)
		reg.SetHelp("faster_health_slo_durlag_p99_ns",
			"Windowed p99 session durability lag (ns) tracked against the -slo-durlag objective.")
	}
	e.verdict = Verdict{State: "healthy"}
	return e
}

// metricName turns a kebab-case detector name into a metric-name fragment.
func metricName(name string) string { return strings.ReplaceAll(name, "-", "_") }

// Start launches the sampling goroutine at the configured interval. Safe to
// call once; use Stop to halt it.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.stop = make(chan struct{})
	e.done = make(chan struct{})
	go e.loop(e.stop, e.done)
}

// Stop halts the sampling goroutine and waits for it to exit. No-op if not
// started.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return
	}
	stop, done := e.stop, e.done
	e.started = false
	e.mu.Unlock()
	close(stop)
	<-done
}

func (e *Engine) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(e.cfg.Interval)
	defer t.Stop()
	e.Tick()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			e.Tick()
		}
	}
}

// Tick takes one sample and evaluates every detector against the previous
// one. The first tick only establishes the baseline. Exported so tests and
// single-threaded embedders can drive the engine without the goroutine.
func (e *Engine) Tick() {
	cur := Sample{At: e.now(), Snap: e.cfg.Registry.Snapshot()}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.samples++
	e.cSamples.Inc()
	if !e.havePrev {
		e.prev, e.havePrev = cur, true
		e.verdict = e.verdictLocked(cur.At)
		e.setGaugesLocked()
		return
	}
	var fired, cleared []*detState
	for _, ds := range e.dets {
		bad, detail := ds.det.Check(e.prev, cur)
		if bad {
			ds.badStreak++
			ds.goodStreak = 0
			if detail != "" {
				ds.detail = detail
			}
			if !ds.firing && ds.badStreak >= e.cfg.FireAfter {
				ds.firing = true
				ds.sinceNanos = cur.At
				ds.firedSamples = 0
				ds.gauge.Set(1)
				fired = append(fired, ds)
			}
		} else {
			ds.goodStreak++
			ds.badStreak = 0
			if ds.firing && ds.goodStreak >= e.cfg.ClearAfter {
				ds.firing = false
				ds.gauge.Set(0)
				cleared = append(cleared, ds)
			}
		}
		if ds.firing {
			ds.firedSamples++
		}
	}
	e.prev = cur
	for _, ds := range cleared {
		if e.cfg.Flight != nil {
			e.cfg.Flight.Emit(obs.FlightHealthClear, -1, 0, ds.det.Name, "", ds.firedSamples, 0)
		}
		ds.detail = ""
		ds.sinceNanos = 0
		ds.firedSamples = 0
	}
	e.verdict = e.verdictLocked(cur.At)
	e.setGaugesLocked()
	for _, ds := range fired {
		seq := e.captureLocked(ds, cur)
		if e.cfg.Flight != nil {
			e.cfg.Flight.Emit(obs.FlightHealthFire, -1, 0, ds.det.Name, "", uint64(ds.badStreak), seq)
		}
	}
}

// verdictLocked assembles the verdict from current detector state.
func (e *Engine) verdictLocked(at int64) Verdict {
	v := Verdict{State: "healthy", SampledUnixNanos: at, Samples: e.samples}
	var critical, degraded []string
	for _, ds := range e.dets {
		v.Detectors = append(v.Detectors, DetectorStatus{
			Name:           ds.det.Name,
			Description:    ds.det.Description,
			Critical:       ds.det.Critical,
			Firing:         ds.firing,
			Detail:         ds.detail,
			BadStreak:      ds.badStreak,
			SinceUnixNanos: ds.sinceNanos,
		})
		if ds.firing {
			if ds.det.Critical {
				critical = append(critical, ds.det.Name)
			} else {
				degraded = append(degraded, ds.det.Name)
			}
		}
	}
	switch {
	case len(critical) > 0:
		v.State = "unhealthy:" + strings.Join(append(critical, degraded...), ",")
	case len(degraded) > 0:
		v.State = "degraded:" + strings.Join(degraded, ",")
	}
	if e.slo != nil {
		v.SLO = e.slo.status()
	}
	return v
}

// setGaugesLocked publishes the verdict to the faster_health_* gauges.
func (e *Engine) setGaugesLocked() {
	var firing, worst int64
	for _, ds := range e.dets {
		if !ds.firing {
			continue
		}
		firing++
		if ds.det.Critical {
			worst = 2
		} else if worst < 1 {
			worst = 1
		}
	}
	e.gState.Set(worst)
	e.gFiring.Set(firing)
}

// Verdict returns the verdict as of the last tick. Never nil; before the
// first tick it is "healthy" with zero samples.
func (e *Engine) Verdict() *Verdict {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := e.verdict
	v.Detectors = append([]DetectorStatus(nil), e.verdict.Detectors...)
	return &v
}

// Handler serves the verdict as JSON: HTTP 200 while healthy or degraded,
// 503 while unhealthy — load-balancer-friendly without hiding degradation.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		v := e.Verdict()
		w.Header().Set("Content-Type", "application/json")
		if strings.HasPrefix(v.State, "unhealthy") {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(v) //nolint:errcheck // best-effort: the client went away
	})
}

// captureLocked writes an incident bundle for a just-fired detector, subject
// to the global rate limit. Returns the bundle's sequence number, 0 if no
// bundle was written (no store, or rate-limited).
func (e *Engine) captureLocked(ds *detState, cur Sample) uint64 {
	if e.cfg.Bundles == nil {
		return 0
	}
	if e.lastBundle != 0 && cur.At-e.lastBundle < e.cfg.MinBundleInterval.Nanoseconds() {
		return 0
	}
	e.incidentSeq++
	e.lastBundle = cur.At
	seq := e.incidentSeq
	b := e.buildBundle(ds, cur, seq)
	name := fmt.Sprintf("incident-%s-%d", ds.det.Name, seq)
	payload, err := json.Marshal(b)
	if err == nil {
		err = storage.WriteArtifactChecked(e.cfg.Bundles, name, payload)
	}
	if err != nil {
		// Evidence capture must never take the node down with it; the
		// detector still fires and the verdict still degrades.
		return 0
	}
	e.cIncidents.Inc()
	if e.cfg.OnIncident != nil {
		e.cfg.OnIncident(b)
	}
	return seq
}
