package health

import (
	"encoding/binary"
	"io"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
	"repro/internal/storage"
)

// gatedStore wraps a CheckpointStore whose Create blocks while gated — the
// deterministic stall seed: a CPR commit's persist goroutine parks inside its
// artifact write, pinning the shard in WaitFlush with the commit counter
// frozen, exactly the cpr-commit-stuck signal.
type gatedStore struct {
	storage.CheckpointStore
	gated   atomic.Bool
	release chan struct{}
}

func (g *gatedStore) Create(name string) (io.WriteCloser, error) {
	if g.gated.Load() {
		<-g.release
	}
	return g.CheckpointStore.Create(name)
}

func k64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// pump keeps a session refreshing, the paper's threads-continuously-process
// model; it also drains any epoch trigger actions so only the truly stuck
// detector fires.
func pump(sess *faster.Session, n int) {
	for i := 0; i < n; i++ {
		sess.Refresh()
		sess.CompletePending(false)
	}
}

// TestIntegrationCommitStuckIncident seeds a real stall on a real store and
// walks the whole tentpole path: detector fires after FireAfter bad samples,
// an incident bundle lands in the bundle store under a decodable name with
// flight + metrics + profiles inside, and the detector clears once the
// commit completes. With HEALTH_DUMP_DIR set the bundle is written to that
// directory so CI can decode it with `fasterctl incident`.
func TestIntegrationCommitStuckIncident(t *testing.T) {
	gate := &gatedStore{CheckpointStore: storage.NewMemCheckpointStore(), release: make(chan struct{})}
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(1024)
	s, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 8,
		PageBits:     13,
		MemPages:     16,
		Metrics:      reg,
		Checkpoints:  gate,
		Flight:       fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	for i := uint64(0); i < 64; i++ {
		if st := sess.Upsert(k64(i), k64(i*10)); st != faster.Ok {
			t.Fatalf("upsert %d: %v", i, st)
		}
	}

	dir := os.Getenv("HEALTH_DUMP_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	bundles, err := storage.NewDirCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	eng := New(Config{Registry: reg, Bundles: bundles, Flight: fr})
	clock := int64(1_000_000_000)
	eng.now = func() int64 { return clock }
	tick := func() {
		clock += int64(time.Second)
		eng.Tick()
	}
	firing := func(name string) DetectorStatus {
		for _, d := range eng.Verdict().Detectors {
			if d.Name == name {
				return d
			}
		}
		t.Fatalf("detector %s not in verdict", name)
		return DetectorStatus{}
	}

	// Gate the store and start a commit: it must park in WaitFlush.
	gate.gated.Store(true)
	token, err := s.Commit(faster.CommitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Phase() != faster.WaitFlush {
		pump(sess, 16)
		if time.Now().After(deadline) {
			t.Fatalf("commit never reached WaitFlush; phase %v", s.Phase())
		}
	}

	// Baseline + FireAfter bad samples; the session keeps refreshing in
	// between (a stuck artifact write does not stop request threads).
	for i := 0; i < 4; i++ {
		pump(sess, 64)
		tick()
	}
	st := firing("cpr-commit-stuck")
	if !st.Firing {
		t.Fatalf("cpr-commit-stuck not firing over a pinned WaitFlush commit: %+v", eng.Verdict())
	}
	if got := eng.Verdict().State; got != "unhealthy:cpr-commit-stuck" {
		t.Fatalf("state = %q, want unhealthy:cpr-commit-stuck", got)
	}

	// The incident bundle is on disk under the detector-stamped name and
	// carries the full evidence set.
	payload, err := storage.ReadArtifactChecked(bundles, "incident-cpr-commit-stuck-1")
	if err != nil {
		t.Fatalf("read incident bundle: %v", err)
	}
	b, err := DecodeBundle(payload)
	if err != nil {
		t.Fatalf("decode incident bundle: %v", err)
	}
	if b.Detector != "cpr-commit-stuck" || b.Seq != 1 {
		t.Fatalf("bundle header: detector=%q seq=%d", b.Detector, b.Seq)
	}
	if b.Flight == nil || len(b.Flight.Events) == 0 {
		t.Fatal("bundle flight dump empty; commit lifecycle events expected")
	}
	if b.Metrics.Gauges["faster_phase"] != int64(faster.WaitFlush) {
		t.Fatalf("bundle metrics faster_phase = %d, want %d (WaitFlush)",
			b.Metrics.Gauges["faster_phase"], int64(faster.WaitFlush))
	}
	if len(b.GoroutineProfile) == 0 || len(b.HeapProfile) == 0 {
		t.Fatal("bundle missing goroutine/heap profile")
	}

	// Unblock the store: the commit completes and the detector clears after
	// ClearAfter good samples.
	gate.gated.Store(false)
	close(gate.release)
	for {
		if res, ok := s.TryResult(token); ok {
			if res.Err != nil {
				t.Fatalf("commit failed after release: %v", res.Err)
			}
			break
		}
		pump(sess, 16)
		if time.Now().After(deadline) {
			t.Fatal("commit never completed after release")
		}
	}
	for i := 0; i < 2; i++ {
		pump(sess, 64)
		tick()
	}
	if firing("cpr-commit-stuck").Firing {
		t.Fatal("detector still firing after the commit completed")
	}
	if got := eng.Verdict().State; got != "healthy" {
		t.Fatalf("state = %q after recovery, want healthy", got)
	}
	evs, _ := fr.Events()
	var fires, clears int
	for _, ev := range evs {
		switch ev.Kind {
		case obs.FlightHealthFire:
			fires++
			if ev.Token != "cpr-commit-stuck" {
				t.Fatalf("fire event token %q", ev.Token)
			}
		case obs.FlightHealthClear:
			clears++
		}
	}
	if fires != 1 || clears != 1 {
		t.Fatalf("flight fire/clear = %d/%d, want 1/1", fires, clears)
	}
}

// TestHealthySoakNoFalsePositives runs a live store through ops and commits
// with every built-in detector plus the SLO armed and asserts the engine
// stays silent — the detectors' demand-present/progress-absent shape must
// not fire on a slow-but-progressing node.
func TestHealthySoakNoFalsePositives(t *testing.T) {
	reg := obs.NewRegistry()
	fr := obs.NewFlightRecorder(1024)
	s, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 8,
		PageBits:     13,
		MemPages:     16,
		Metrics:      reg,
		Flight:       fr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()

	eng := New(Config{
		Registry:  reg,
		Interval:  5 * time.Millisecond,
		SLODurLag: 10 * time.Second,
		Bundles:   storage.NewMemCheckpointStore(),
		Flight:    fr,
	})
	eng.Start()

	var key uint64
	soakEnd := time.Now().Add(time.Second)
	for time.Now().Before(soakEnd) {
		for i := 0; i < 100; i++ {
			key++
			sess.Upsert(k64(key%512), k64(key))
		}
		token, err := s.Commit(faster.CommitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for {
			if res, ok := s.TryResult(token); ok {
				if res.Err != nil {
					t.Fatalf("commit: %v", res.Err)
				}
				break
			}
			pump(sess, 8)
		}
	}
	eng.Stop()

	snap := reg.Snapshot()
	if n := snap.Counters["faster_health_incidents_total"]; n != 0 {
		t.Errorf("healthy soak captured %d incident(s)", n)
	}
	if g := snap.Gauges["faster_health_state"]; g != 0 {
		t.Errorf("faster_health_state = %d after healthy soak, want 0: %+v", g, eng.Verdict())
	}
	if snap.Counters["faster_health_samples_total"] < 10 {
		t.Errorf("soak took only %d samples; engine not running?", snap.Counters["faster_health_samples_total"])
	}
	evs, _ := fr.Events()
	for _, ev := range evs {
		if ev.Kind == obs.FlightHealthFire {
			t.Errorf("healthy soak emitted a health-fire event: %s", ev.Token)
		}
	}
}

// TestSamplerOverheadBudget bounds the always-on cost: one Tick over a
// populated registry (store metrics, histograms, SLO scan) must cost well
// under 1% of the default 1s sampling interval.
func TestSamplerOverheadBudget(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := faster.Open(faster.Config{
		IndexBuckets: 1 << 8,
		PageBits:     13,
		MemPages:     16,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sess := s.StartSession()
	defer sess.StopSession()
	for i := uint64(0); i < 2048; i++ {
		sess.Upsert(k64(i%256), k64(i))
	}

	eng := New(Config{Registry: reg, SLODurLag: time.Second})
	eng.Tick() // baseline
	const ticks = 200
	start := time.Now()
	for i := 0; i < ticks; i++ {
		eng.Tick()
	}
	avg := time.Since(start) / ticks
	if budget := time.Second / 100; avg > budget {
		t.Fatalf("average Tick cost %v exceeds the 1%% sampling budget (%v)", avg, budget)
	}
}
