package health

import (
	"bytes"
	"encoding/json"
	"fmt"
	"runtime/pprof"

	"repro/internal/obs"
)

// bundleVersion versions the incident bundle's JSON payload.
const bundleVersion = 1

// Bundle is the evidence captured at the moment a detector fires: the full
// metrics snapshot, the flight-recorder dump, the slowest trace span trees,
// and goroutine + heap profiles — everything a postmortem needs, frozen at
// the instant of the stall rather than reconstructed after the fact. It is
// written as a CRC-enveloped incident-<detector>-<seq> artifact through the
// checkpoint store and decoded by `fasterctl incident`.
type Bundle struct {
	V        int    `json:"v"`
	Detector string `json:"detector"`
	Detail   string `json:"detail,omitempty"`
	// Seq is the process-wide incident sequence (artifact name suffix).
	Seq               uint64 `json:"seq"`
	CapturedUnixNanos int64  `json:"captured_unix_ns"`
	// Verdict is the full health verdict at capture time (the firing
	// detector plus everything else that was degraded alongside it).
	Verdict Verdict `json:"verdict"`
	// Metrics is the complete registry snapshot at capture time.
	Metrics obs.Snapshot `json:"metrics"`
	// Flight is the flight-recorder dump (nil when no recorder is wired).
	Flight *obs.FlightDump `json:"flight,omitempty"`
	// Traces holds the slowest retained request traces (nil when no tracer
	// is wired).
	Traces *obs.TraceDump `json:"traces,omitempty"`
	// GoroutineProfile and HeapProfile are pprof text dumps (debug=1).
	GoroutineProfile string `json:"goroutine_profile,omitempty"`
	HeapProfile      string `json:"heap_profile,omitempty"`
}

// bundleTraceCount bounds how many slowest traces a bundle retains.
const bundleTraceCount = 8

// buildBundle assembles a Bundle for a just-fired detector from the sample
// that tripped it.
func (e *Engine) buildBundle(ds *detState, cur Sample, seq uint64) *Bundle {
	b := &Bundle{
		V:                 bundleVersion,
		Detector:          ds.det.Name,
		Detail:            ds.detail,
		Seq:               seq,
		CapturedUnixNanos: cur.At,
		Verdict:           e.verdictLocked(cur.At),
		Metrics:           cur.Snap,
	}
	if e.cfg.Flight != nil {
		events, dropped := e.cfg.Flight.Events()
		b.Flight = &obs.FlightDump{
			WallStartNanos: e.cfg.Flight.WallStart(),
			Dropped:        dropped,
			Events:         events,
		}
	}
	if e.cfg.Traces != nil {
		td := e.cfg.Traces.Dump(bundleTraceCount)
		b.Traces = &td
	}
	b.GoroutineProfile = pprofText("goroutine")
	b.HeapProfile = pprofText("heap")
	return b
}

// pprofText renders a named pprof profile in its debug=1 text form ("" if
// the profile does not exist).
func pprofText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var buf bytes.Buffer
	if err := p.WriteTo(&buf, 1); err != nil {
		return ""
	}
	return buf.String()
}

// DecodeBundle parses an incident bundle's JSON payload (the artifact body
// after the CRC envelope has been stripped by storage.DecodeArtifact).
func DecodeBundle(payload []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(payload, &b); err != nil {
		return nil, fmt.Errorf("health: malformed incident bundle: %w", err)
	}
	if b.V != bundleVersion {
		return nil, fmt.Errorf("health: incident bundle version %d, want %d", b.V, bundleVersion)
	}
	return &b, nil
}
