package health

import (
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// testEngine wires an Engine to a fake monotonic clock and a switchable
// detector, the minimal rig for exercising hysteresis and capture policy.
type testEngine struct {
	e      *Engine
	reg    *obs.Registry
	store  *storage.MemCheckpointStore
	fr     *obs.FlightRecorder
	clock  atomic.Int64
	bad    atomic.Bool
	badCrt atomic.Bool
}

func newTestEngine(t *testing.T, mutate func(*Config)) *testEngine {
	t.Helper()
	te := &testEngine{
		reg:   obs.NewRegistry(),
		store: storage.NewMemCheckpointStore(),
		fr:    obs.NewFlightRecorder(256),
	}
	te.clock.Store(1_000_000_000)
	cfg := Config{
		Registry:          te.reg,
		FireAfter:         3,
		ClearAfter:        2,
		Bundles:           te.store,
		Flight:            te.fr,
		MinBundleInterval: time.Minute,
		Detectors: []Detector{
			{
				Name:        "test-stall",
				Description: "fires while the test flag is set",
				Check: func(prev, cur Sample) (bool, string) {
					return te.bad.Load(), "test detail"
				},
			},
			{
				Name:     "test-critical",
				Critical: true,
				Check: func(prev, cur Sample) (bool, string) {
					return te.badCrt.Load(), "critical detail"
				},
			},
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	te.e = New(cfg)
	te.e.now = func() int64 { return te.clock.Load() }
	return te
}

// tick advances the fake clock by one second and takes a sample.
func (te *testEngine) tick() {
	te.clock.Add(int64(time.Second))
	te.e.Tick()
}

func (te *testEngine) status(name string) DetectorStatus {
	for _, d := range te.e.Verdict().Detectors {
		if d.Name == name {
			return d
		}
	}
	return DetectorStatus{}
}

func (te *testEngine) flightEvents(kind obs.FlightKind) []obs.FlightEvent {
	evs, _ := te.fr.Events()
	var out []obs.FlightEvent
	for _, ev := range evs {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

func TestHysteresisFireAndClear(t *testing.T) {
	te := newTestEngine(t, nil)

	te.tick() // baseline: no prev sample, nothing can fire
	te.bad.Store(true)
	for i := 1; i <= 2; i++ {
		te.tick()
		if te.status("test-stall").Firing {
			t.Fatalf("fired after %d bad sample(s); FireAfter is 3", i)
		}
	}
	te.tick() // third consecutive bad sample
	st := te.status("test-stall")
	if !st.Firing {
		t.Fatal("not firing after 3 consecutive bad samples")
	}
	if st.Detail != "test detail" || st.SinceUnixNanos == 0 {
		t.Fatalf("firing status incomplete: %+v", st)
	}
	if got := te.e.Verdict().State; got != "degraded:test-stall" {
		t.Fatalf("state = %q, want degraded:test-stall", got)
	}

	// One good sample must not clear (ClearAfter is 2)...
	te.bad.Store(false)
	te.tick()
	if !te.status("test-stall").Firing {
		t.Fatal("cleared after a single good sample; ClearAfter is 2")
	}
	// ...and a relapse resets the good streak.
	te.bad.Store(true)
	te.tick()
	te.bad.Store(false)
	te.tick()
	if !te.status("test-stall").Firing {
		t.Fatal("cleared with an interrupted good streak")
	}
	te.tick()
	st = te.status("test-stall")
	if st.Firing {
		t.Fatal("still firing after 2 consecutive good samples")
	}
	if st.Detail != "" || st.SinceUnixNanos != 0 {
		t.Fatalf("cleared status not reset: %+v", st)
	}
	if got := te.e.Verdict().State; got != "healthy" {
		t.Fatalf("state = %q, want healthy", got)
	}

	fires := te.flightEvents(obs.FlightHealthFire)
	if len(fires) != 1 || fires[0].Token != "test-stall" {
		t.Fatalf("flight fire events = %+v, want one for test-stall", fires)
	}
	clears := te.flightEvents(obs.FlightHealthClear)
	if len(clears) != 1 || clears[0].Token != "test-stall" {
		t.Fatalf("flight clear events = %+v, want one for test-stall", clears)
	}
}

func TestCriticalDetectorUnhealthyAndHandler(t *testing.T) {
	te := newTestEngine(t, nil)
	te.tick()

	// Healthy: handler serves 200.
	rr := httptest.NewRecorder()
	te.e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/health", nil))
	if rr.Code != 200 || !strings.Contains(rr.Body.String(), `"state": "healthy"`) {
		t.Fatalf("healthy handler: code=%d body=%s", rr.Code, rr.Body.String())
	}

	te.badCrt.Store(true)
	te.bad.Store(true)
	for i := 0; i < 3; i++ {
		te.tick()
	}
	v := te.e.Verdict()
	if v.State != "unhealthy:test-critical,test-stall" {
		t.Fatalf("state = %q, want unhealthy:test-critical,test-stall", v.State)
	}
	if v.Healthy() {
		t.Fatal("unhealthy verdict reported Healthy()")
	}

	// Unhealthy: handler serves 503.
	rr = httptest.NewRecorder()
	te.e.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/health", nil))
	if rr.Code != 503 {
		t.Fatalf("unhealthy handler code = %d, want 503", rr.Code)
	}

	// Gauges follow the verdict.
	snap := te.reg.Snapshot()
	if snap.Gauges["faster_health_state"] != 2 {
		t.Fatalf("faster_health_state = %d, want 2", snap.Gauges["faster_health_state"])
	}
	if snap.Gauges["faster_health_detectors_firing"] != 2 {
		t.Fatalf("faster_health_detectors_firing = %d, want 2", snap.Gauges["faster_health_detectors_firing"])
	}
	if snap.Gauges["faster_health_firing_test_critical"] != 1 {
		t.Fatal("faster_health_firing_test_critical not set")
	}

	// Clear only the critical detector: verdict degrades instead.
	te.badCrt.Store(false)
	te.tick()
	te.tick()
	if got := te.e.Verdict().State; got != "degraded:test-stall" {
		t.Fatalf("state = %q, want degraded:test-stall", got)
	}
	if g := te.reg.Snapshot().Gauges["faster_health_state"]; g != 1 {
		t.Fatalf("faster_health_state = %d, want 1", g)
	}
}

func TestIncidentBundleCaptureAndRateLimit(t *testing.T) {
	var incidents []*Bundle
	te := newTestEngine(t, func(cfg *Config) {
		cfg.OnIncident = func(b *Bundle) { incidents = append(incidents, b) }
	})
	te.tick()
	te.bad.Store(true)
	for i := 0; i < 3; i++ {
		te.tick()
	}

	// A bundle must exist under the detector-stamped name and decode whole.
	payload, err := storage.ReadArtifactChecked(te.store, "incident-test-stall-1")
	if err != nil {
		t.Fatalf("read incident artifact: %v", err)
	}
	b, err := DecodeBundle(payload)
	if err != nil {
		t.Fatalf("decode bundle: %v", err)
	}
	if b.Detector != "test-stall" || b.Seq != 1 || b.Detail != "test detail" {
		t.Fatalf("bundle header: %+v", b)
	}
	if b.Metrics.Counters["faster_health_samples_total"] == 0 {
		t.Fatal("bundle metrics snapshot missing health counters")
	}
	if !strings.HasPrefix(b.Verdict.State, "degraded") {
		t.Fatalf("bundle verdict state = %q", b.Verdict.State)
	}
	if b.Flight == nil {
		t.Fatal("bundle missing flight dump")
	}
	if len(b.GoroutineProfile) == 0 || !strings.Contains(string(b.GoroutineProfile), "goroutine") {
		t.Fatal("bundle missing goroutine profile")
	}
	if len(b.HeapProfile) == 0 {
		t.Fatal("bundle missing heap profile")
	}
	if len(incidents) != 1 {
		t.Fatalf("OnIncident called %d times, want 1", len(incidents))
	}
	if c := te.reg.Snapshot().Counters["faster_health_incidents_total"]; c != 1 {
		t.Fatalf("faster_health_incidents_total = %d, want 1", c)
	}

	// The fire event carries the bundle seq in Arg2.
	fires := te.flightEvents(obs.FlightHealthFire)
	if len(fires) != 1 || fires[0].Arg2 != 1 {
		t.Fatalf("fire event %+v, want Arg2=1", fires)
	}

	// A second detector firing 3s later is inside MinBundleInterval: the
	// detector fires but capture is rate-limited (no new artifact).
	te.badCrt.Store(true)
	for i := 0; i < 3; i++ {
		te.tick()
	}
	if !te.status("test-critical").Firing {
		t.Fatal("rate limit suppressed the detector, not just the bundle")
	}
	if _, err := storage.ReadArtifactChecked(te.store, "incident-test-critical-2"); err == nil {
		t.Fatal("rate-limited fire still wrote a bundle")
	}
	if len(incidents) != 1 {
		t.Fatal("OnIncident called for a rate-limited fire")
	}

	// After the interval passes, the next fire captures again.
	te.badCrt.Store(false)
	te.tick()
	te.tick() // cleared
	te.clock.Add(int64(2 * time.Minute))
	te.badCrt.Store(true)
	for i := 0; i < 3; i++ {
		te.tick()
	}
	if _, err := storage.ReadArtifactChecked(te.store, "incident-test-critical-2"); err != nil {
		t.Fatalf("post-interval fire did not capture: %v", err)
	}
	if len(incidents) != 2 {
		t.Fatalf("OnIncident called %d times, want 2", len(incidents))
	}
}

func TestEngineNoBundleStore(t *testing.T) {
	// Without a bundle store the engine still fires and verdicts degrade.
	te := newTestEngine(t, func(cfg *Config) { cfg.Bundles = nil })
	te.tick()
	te.bad.Store(true)
	for i := 0; i < 3; i++ {
		te.tick()
	}
	if !te.status("test-stall").Firing {
		t.Fatal("detector did not fire without a bundle store")
	}
	if c := te.reg.Snapshot().Counters["faster_health_incidents_total"]; c != 0 {
		t.Fatalf("faster_health_incidents_total = %d, want 0", c)
	}
}

func TestEngineStartStop(t *testing.T) {
	te := newTestEngine(t, func(cfg *Config) { cfg.Interval = time.Millisecond })
	te.e.Start()
	te.e.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for te.reg.Snapshot().Counters["faster_health_samples_total"] < 3 {
		if time.Now().After(deadline) {
			t.Fatal("sampling goroutine took no samples")
		}
		time.Sleep(time.Millisecond)
	}
	te.e.Stop()
	te.e.Stop() // idempotent
	after := te.reg.Snapshot().Counters["faster_health_samples_total"]
	time.Sleep(10 * time.Millisecond)
	if got := te.reg.Snapshot().Counters["faster_health_samples_total"]; got != after {
		t.Fatalf("samples kept accruing after Stop: %d -> %d", after, got)
	}
}

func TestBuiltinSuiteRegistersMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	New(Config{Registry: reg, SLODurLag: 10 * time.Millisecond})
	snap := reg.Snapshot()
	for _, name := range []string{
		"faster_health_firing_epoch_drain_stuck",
		"faster_health_firing_cpr_commit_stuck",
		"faster_health_firing_inlog_fsync_stalled",
		"faster_health_firing_repl_lag_growing",
		"faster_health_firing_restore_sweeper_stalled",
		"faster_health_firing_flush_starvation",
		"faster_health_firing_slo_durlag_burn",
		"faster_health_state",
		"faster_health_detectors_firing",
		"faster_health_slo_durlag_p99_ns",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %s not registered", name)
		}
	}
	if _, ok := snap.Counters["faster_health_samples_total"]; !ok {
		t.Error("faster_health_samples_total not registered")
	}
}
