package health

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/obs"
)

// The built-in detectors share one shape: demand present in both samples,
// progress absent between them. Stalls are never inferred from an idle
// system — every check requires queued work (epoch lag, unsynced appends, a
// non-Rest phase, cold buckets) before the missing progress counts against
// the node.
//
// Multi-shard stores register per-shard metrics under a "shard<i>_" prefix
// on the shared registry, so the detectors scan by *suffix* and evaluate
// each matching prefix independently — one stuck shard is enough to fire.

// gaugesBySuffix returns prefix → value for every gauge whose name ends in
// suffix ("" is the unprefixed store-level metric's prefix).
func gaugesBySuffix(s obs.Snapshot, suffix string) map[string]int64 {
	out := map[string]int64{}
	for n, v := range s.Gauges {
		if strings.HasSuffix(n, suffix) {
			out[n[:len(n)-len(suffix)]] = v
		}
	}
	return out
}

// counterBySuffixSum sums every counter whose name ends in suffix.
func counterBySuffixSum(s obs.Snapshot, suffix string) uint64 {
	var sum uint64
	for n, v := range s.Counters {
		if strings.HasSuffix(n, suffix) {
			sum += v
		}
	}
	return sum
}

// histsBySuffix returns prefix → snapshot for every histogram whose name
// ends in suffix.
func histsBySuffix(s obs.Snapshot, suffix string) map[string]obs.HistogramSnapshot {
	out := map[string]obs.HistogramSnapshot{}
	for n, v := range s.Histograms {
		if strings.HasSuffix(n, suffix) {
			out[n[:len(n)-len(suffix)]] = v
		}
	}
	return out
}

// at names a prefix for humans: "shard3_" as-is, "" as "store".
func at(prefix string) string {
	if prefix == "" {
		return "store"
	}
	return strings.TrimSuffix(prefix, "_")
}

// cprPhaseNames mirrors the faster package's phase encoding for detail
// strings (health must not import faster: faster is free to import health's
// consumers).
var cprPhaseNames = [...]string{"rest", "prepare", "in-progress", "wait-pending", "wait-flush"}

func phaseName(v int64) string {
	if v >= 0 && int(v) < len(cprPhaseNames) {
		return cprPhaseNames[v]
	}
	return fmt.Sprintf("phase-%d", v)
}

// builtinDetectors returns the standard suite, in verdict order.
func builtinDetectors() []Detector {
	return []Detector{
		{
			Name:        "epoch-drain-stuck",
			Description: "Epoch table has queued drain actions and neither the safe frontier nor the drain counter is advancing.",
			Critical:    true,
			Check:       checkEpochDrainStuck,
		},
		{
			Name:        "cpr-commit-stuck",
			Description: "A CPR commit is parked in one non-Rest phase with no commit completing or failing.",
			Critical:    true,
			Check:       checkCommitStuck,
		},
		{
			Name:        "inlog-fsync-stalled",
			Description: "Ingestion log has appends past the durable frontier and the frontier is not advancing.",
			Critical:    true,
			Check:       checkInlogFsyncStalled,
		},
		{
			Name:        "repl-lag-growing",
			Description: "Replication lag is growing: a replica falls further behind, or a primary commits without announcing to its replicas.",
			Check:       checkReplLagGrowing,
		},
		{
			Name:        "restore-sweeper-stalled",
			Description: "Instant restore is active with cold buckets remaining and no bucket warmed this window.",
			Check:       checkRestoreSweeperStalled,
		},
		{
			Name:        "flush-starvation",
			Description: "Server executed operations but the reply coalescing buffer never flushed.",
			Check:       checkFlushStarvation,
		},
	}
}

// checkEpochDrainStuck: demand = trigger actions queued behind an unsafe
// epoch in both samples (a quiescent table always has current == safe+1, so
// the epoch gap alone is not demand); progress = the safe frontier advancing
// or a drain action firing.
func checkEpochDrainStuck(prev, cur Sample) (bool, string) {
	for p, pending := range gaugesBySuffix(cur.Snap, "epoch_pending_drains") {
		prevPending, ok := prev.Snap.Gauges[p+"epoch_pending_drains"]
		if !ok || pending <= 0 || prevPending <= 0 {
			continue
		}
		curSafe := cur.Snap.Gauges[p+"epoch_safe"]
		prevSafe := prev.Snap.Gauges[p+"epoch_safe"]
		drained := cur.Snap.Counters[p+"epoch_drains_total"] - prev.Snap.Counters[p+"epoch_drains_total"]
		if curSafe == prevSafe && drained == 0 {
			return true, fmt.Sprintf("%s: %d drain action(s) queued, epoch current=%d safe=%d, no drain this window",
				at(p), pending, cur.Snap.Gauges[p+"epoch_current"], curSafe)
		}
	}
	return false, ""
}

// checkCommitStuck: demand = the phase gauge parked on the same non-Rest
// value in both samples; progress = any commit completing or failing.
func checkCommitStuck(prev, cur Sample) (bool, string) {
	for p, curPhase := range gaugesBySuffix(cur.Snap, "faster_phase") {
		prevPhase, ok := prev.Snap.Gauges[p+"faster_phase"]
		if !ok || curPhase == 0 || curPhase != prevPhase {
			continue
		}
		commits := cur.Snap.Counters[p+"faster_commits_total"] - prev.Snap.Counters[p+"faster_commits_total"]
		failures := cur.Snap.Counters[p+"faster_commit_failures_total"] - prev.Snap.Counters[p+"faster_commit_failures_total"]
		if commits == 0 && failures == 0 {
			return true, fmt.Sprintf("%s: commit parked in %s (version %d), no commit completed this window",
				at(p), phaseName(curPhase), cur.Snap.Gauges[p+"faster_version"])
		}
	}
	return false, ""
}

// checkInlogFsyncStalled: demand = appends past the durable frontier in both
// samples; progress = the durable frontier advancing.
func checkInlogFsyncStalled(prev, cur Sample) (bool, string) {
	for p, curDurable := range gaugesBySuffix(cur.Snap, "inlog_durable") {
		prevDurable, ok := prev.Snap.Gauges[p+"inlog_durable"]
		if !ok {
			continue
		}
		curTail := cur.Snap.Gauges[p+"inlog_tail"]
		prevTail := prev.Snap.Gauges[p+"inlog_tail"]
		if curTail > curDurable && prevTail > prevDurable && curDurable == prevDurable {
			return true, fmt.Sprintf("%s: inlog tail=%d durable=%d, frontier stuck while appends queue",
				at(p), curTail, curDurable)
		}
	}
	return false, ""
}

// checkReplLagGrowing: on a replica, bytes-behind or versions-behind
// strictly growing; on a primary with replicas attached, commits completing
// without any commit announcement shipped.
func checkReplLagGrowing(prev, cur Sample) (bool, string) {
	for p, curBehind := range gaugesBySuffix(cur.Snap, "repl_bytes_behind") {
		prevBehind, ok := prev.Snap.Gauges[p+"repl_bytes_behind"]
		if ok && curBehind > prevBehind && curBehind > 0 {
			return true, fmt.Sprintf("%s: replica %d bytes behind primary and growing (+%d this window)",
				at(p), curBehind, curBehind-prevBehind)
		}
	}
	for p, curBehind := range gaugesBySuffix(cur.Snap, "repl_versions_behind") {
		prevBehind, ok := prev.Snap.Gauges[p+"repl_versions_behind"]
		if ok && curBehind > prevBehind && curBehind > 0 {
			return true, fmt.Sprintf("%s: replica %d committed versions behind primary and growing", at(p), curBehind)
		}
	}
	for p, replicas := range gaugesBySuffix(cur.Snap, "repl_replicas") {
		if replicas <= 0 {
			continue
		}
		commits := cur.Snap.Counters[p+"faster_commits_total"] - prev.Snap.Counters[p+"faster_commits_total"]
		announced := cur.Snap.Counters[p+"repl_commits_announced_total"] - prev.Snap.Counters[p+"repl_commits_announced_total"]
		if commits > 0 && announced == 0 {
			return true, fmt.Sprintf("%s: %d commit(s) this window, none announced to %d replica(s)",
				at(p), commits, replicas)
		}
	}
	return false, ""
}

// checkRestoreSweeperStalled: demand = restore active with cold buckets
// remaining, unchanged across the window; progress = any bucket warmed
// (on-demand or by the sweeper).
func checkRestoreSweeperStalled(prev, cur Sample) (bool, string) {
	warmed := (counterBySuffixSum(cur.Snap, "faster_restore_ondemand_warms_total") -
		counterBySuffixSum(prev.Snap, "faster_restore_ondemand_warms_total")) +
		(counterBySuffixSum(cur.Snap, "faster_restore_sweep_warms_total") -
			counterBySuffixSum(prev.Snap, "faster_restore_sweep_warms_total"))
	for p, active := range gaugesBySuffix(cur.Snap, "faster_restore_active") {
		if active != 1 || prev.Snap.Gauges[p+"faster_restore_active"] != 1 {
			continue
		}
		curCold := cur.Snap.Gauges[p+"faster_restore_cold_buckets"]
		prevCold := prev.Snap.Gauges[p+"faster_restore_cold_buckets"]
		if curCold > 0 && curCold == prevCold && warmed == 0 {
			return true, fmt.Sprintf("%s: restore active, %d cold bucket(s) and none warmed this window", at(p), curCold)
		}
	}
	return false, ""
}

// checkFlushStarvation: demand = operations executed this window; progress =
// at least one reply-buffer flush (the flush counter tracks every write
// syscall after coalescing, so a served op without any flush means replies
// are accumulating unsent).
func checkFlushStarvation(prev, cur Sample) (bool, string) {
	for p, curExec := range histsBySuffix(cur.Snap, "faster_op_exec_ns") {
		if _, ok := cur.Snap.Counters[p+"faster_net_coalesced_flushes_total"]; !ok {
			continue
		}
		executed := curExec.Count - prev.Snap.Histograms[p+"faster_op_exec_ns"].Count
		flushes := cur.Snap.Counters[p+"faster_net_coalesced_flushes_total"] -
			prev.Snap.Counters[p+"faster_net_coalesced_flushes_total"]
		if executed > 0 && flushes == 0 {
			return true, fmt.Sprintf("%s: %d op(s) executed this window with zero reply flushes", at(p), executed)
		}
	}
	return false, ""
}

// sloState is the slo-durlag-burn detector's shared standing, published via
// the faster_health_slo_durlag_p99_ns gauge and the verdict's SLO block.
type sloState struct {
	objective uint64

	mu       sync.Mutex
	p99Nanos uint64
	windowN  uint64
}

func (s *sloState) set(p99, n uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.p99Nanos, s.windowN = p99, n
}

func (s *sloState) p99() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(s.p99Nanos)
}

func (s *sloState) status() *SLOStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &SLOStatus{ObjectiveNanos: s.objective, WindowP99Nanos: s.p99Nanos, WindowObservations: s.windowN}
}

// windowedP99 computes the p99 over the bucket-count deltas of two
// histogram snapshots — the distribution of only this window's
// observations, immune to the all-time histogram's averaging-out. Quantiles
// use the same log2-bucket midpoint rule as obs.HistogramSnapshot.
func windowedP99(prev, cur obs.HistogramSnapshot) (p99, n uint64) {
	if len(cur.Buckets) == 0 {
		return 0, 0
	}
	counts := make([]uint64, len(cur.Buckets))
	for i, c := range cur.Buckets {
		if i < len(prev.Buckets) {
			c -= prev.Buckets[i]
		}
		counts[i] = c
		n += c
	}
	if n == 0 {
		return 0, 0
	}
	target := uint64(0.99 * float64(n))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0, n
			}
			lo := uint64(1) << uint(i-1)
			hi := uint64(1)<<uint(i) - 1
			return lo + (hi-lo)/2, n
		}
	}
	return 0, n
}

// newSLODetector builds the slo-durlag-burn detector: bad when the windowed
// p99 of faster_session_lag_ns (worst shard) exceeds the objective. Windows
// with no lag observations are neutral — an idle node cannot burn its SLO.
func newSLODetector(st *sloState) Detector {
	return Detector{
		Name: "slo-durlag-burn",
		Description: fmt.Sprintf("Windowed p99 session durability lag exceeds the %dns objective.",
			st.objective),
		Check: func(prev, cur Sample) (bool, string) {
			var worst, total uint64
			var worstAt string
			for p, curH := range histsBySuffix(cur.Snap, "faster_session_lag_ns") {
				p99, n := windowedP99(prev.Snap.Histograms[p+"faster_session_lag_ns"], curH)
				total += n
				if n > 0 && p99 >= worst {
					worst, worstAt = p99, at(p)
				}
			}
			st.set(worst, total)
			if total == 0 || worst <= st.objective {
				return false, ""
			}
			return true, fmt.Sprintf("%s: window p99 durability lag %dns > objective %dns (%d obs)",
				worstAt, worst, st.objective, total)
		},
	}
}
