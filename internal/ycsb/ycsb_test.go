package ycsb

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministicPerSeed(t *testing.T) {
	a, b := NewRNG(1), NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(2)
	same := 0
	a = NewRNG(1)
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/100", same)
	}
}

func TestUniformCoverage(t *testing.T) {
	u := NewUniform(100)
	rng := NewRNG(42)
	counts := make([]int, 100)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[u.Next(rng)]++
	}
	for k, c := range counts {
		if c < draws/100/2 || c > draws/100*2 {
			t.Fatalf("key %d drawn %d times, expected ~%d", k, c, draws/100)
		}
	}
}

func TestZipfianSkewIncreasesWithTheta(t *testing.T) {
	const n = 10000
	const draws = 200000
	top1 := func(theta float64) float64 {
		z := NewZipfianRanked(n, theta)
		rng := NewRNG(7)
		hot := 0
		for i := 0; i < draws; i++ {
			if z.Next(rng) == 0 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	low, high := top1(0.1), top1(0.99)
	if high <= low*2 {
		t.Fatalf("theta=0.99 hottest-key mass %f not >> theta=0.1 mass %f", high, low)
	}
	// With theta=0.99 and n=10000, the hottest key gets a few percent.
	if high < 0.01 {
		t.Fatalf("theta=0.99 hottest key only %f", high)
	}
}

func TestZipfianBounds(t *testing.T) {
	f := func(seed uint64) bool {
		z := NewZipfian(1000, 0.99)
		rng := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if z.Next(rng) >= 1000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScrambleSpreadsHotKeys(t *testing.T) {
	// Scrambled zipfian's two hottest keys must not be adjacent ranks.
	z := NewZipfian(1<<20, 0.99)
	rng := NewRNG(3)
	counts := make(map[uint64]int)
	for i := 0; i < 100000; i++ {
		counts[z.Next(rng)]++
	}
	var hot1, hot2 uint64
	var c1, c2 int
	for k, c := range counts {
		if c > c1 {
			hot2, c2 = hot1, c1
			hot1, c1 = k, c
		} else if c > c2 {
			hot2, c2 = k, c
		}
	}
	if hot1+1 == hot2 || hot2+1 == hot1 {
		t.Fatalf("hottest keys %d and %d are adjacent (not scrambled)", hot1, hot2)
	}
}

func TestZetaStatic(t *testing.T) {
	// zeta(3, 1) = 1 + 1/2 + 1/3
	got := zetaStatic(3, 1.0)
	want := 1.0 + 0.5 + 1.0/3.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("zeta(3,1) = %v, want %v", got, want)
	}
}

func TestGeneratorDistinctKeysPerTxn(t *testing.T) {
	g := NewGenerator(TxnSpec{Keys: 100, TxnSize: 10, ReadFraction: 0.5, Theta: 0.99}, 9)
	for i := 0; i < 1000; i++ {
		keys, _ := g.NextTxn()
		seen := map[uint64]bool{}
		for _, k := range keys {
			if seen[k] {
				t.Fatalf("duplicate key %d in txn", k)
			}
			seen[k] = true
		}
	}
}

func TestGeneratorReadFraction(t *testing.T) {
	g := NewGenerator(TxnSpec{Keys: 1000, TxnSize: 1, ReadFraction: 0.9}, 11)
	writes := 0
	const txns = 100000
	for i := 0; i < txns; i++ {
		_, w := g.NextTxn()
		if w[0] {
			writes++
		}
	}
	frac := float64(writes) / txns
	if frac < 0.08 || frac > 0.12 {
		t.Fatalf("write fraction = %f, want ~0.10", frac)
	}
}

func BenchmarkZipfianNext(b *testing.B) {
	z := NewZipfian(1<<20, 0.99)
	rng := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = z.Next(rng)
	}
}

func BenchmarkUniformNext(b *testing.B) {
	u := NewUniform(1 << 20)
	rng := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = u.Next(rng)
	}
}
