// Package ycsb generates workloads modeled on the Yahoo! Cloud Serving
// Benchmark, as used in Sec. 7.1: transactions over a single table of N
// 8-byte keys, each a sequence of read/write requests drawn from a uniform
// or (scrambled) zipfian distribution, classified read or write by a
// configurable ratio. The FASTER experiments additionally use an extended
// YCSB-A with read-modify-write updates.
package ycsb

import "math"

// RNG is a per-thread splitmix64/xorshift generator: allocation-free and
// independent across workers (no shared state, no lock).
type RNG struct{ state uint64 }

// NewRNG seeds a generator; distinct seeds give independent streams.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Next returns the next pseudo-random 64-bit value (splitmix64).
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	return z ^ z>>31
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n uint64) uint64 {
	return r.Next() % n
}

// KeyChooser picks keys in [0, N).
type KeyChooser interface {
	// Next returns the next key using the supplied per-thread RNG.
	Next(rng *RNG) uint64
	// N returns the key-space size.
	N() uint64
}

// Uniform picks keys uniformly.
type Uniform struct{ n uint64 }

// NewUniform returns a uniform chooser over [0, n).
func NewUniform(n uint64) *Uniform { return &Uniform{n: n} }

// Next implements KeyChooser.
func (u *Uniform) Next(rng *RNG) uint64 { return rng.Intn(u.n) }

// N implements KeyChooser.
func (u *Uniform) N() uint64 { return u.n }

// Zipfian picks keys with a zipfian distribution of parameter theta, using
// the Gray et al. rejection-free method as in the YCSB implementation, and
// scrambles ranks so hot keys are scattered across the key space.
type Zipfian struct {
	n         uint64
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	zeta2     float64
	scrambled bool
}

// NewZipfian returns a scrambled zipfian chooser over [0, n). The paper uses
// theta = 0.1 (low contention) and theta = 0.99 (high contention).
func NewZipfian(n uint64, theta float64) *Zipfian {
	z := &Zipfian{n: n, theta: theta, scrambled: true}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

// NewZipfianRanked is NewZipfian without rank scrambling (rank 0 is the
// hottest key); useful for tests that need deterministic hot keys.
func NewZipfianRanked(n uint64, theta float64) *Zipfian {
	z := NewZipfian(n, theta)
	z.scrambled = false
	return z
}

// zetaStatic computes the zeta(n, theta) normalization. For the scaled-down
// key spaces used here (<= tens of millions) the direct sum is fast enough
// and exact; it runs once per generator.
func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next implements KeyChooser.
func (z *Zipfian) Next(rng *RNG) uint64 {
	u := rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
		if rank >= z.n {
			rank = z.n - 1
		}
	}
	if !z.scrambled {
		return rank
	}
	// FNV-style scramble, as in YCSB's ScrambledZipfianGenerator.
	return fnv64(rank) % z.n
}

// N implements KeyChooser.
func (z *Zipfian) N() uint64 { return z.n }

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// TxnSpec describes the transaction mix of one experiment.
type TxnSpec struct {
	// Keys is the key-space size.
	Keys uint64
	// TxnSize is the number of read/write requests per transaction.
	TxnSize int
	// ReadFraction is the probability each request is a read (the paper
	// writes mixes as W:R; 50:50 means ReadFraction 0.5).
	ReadFraction float64
	// Theta selects the zipfian parameter; 0 means uniform.
	Theta float64
}

// Generator produces transactions for one worker thread.
type Generator struct {
	spec    TxnSpec
	chooser KeyChooser
	rng     *RNG
	keys    []uint64
	writes  []bool
}

// NewGenerator creates a per-thread generator. Seed must differ per thread.
func NewGenerator(spec TxnSpec, seed uint64) *Generator {
	var chooser KeyChooser
	if spec.Theta > 0 {
		chooser = NewZipfian(spec.Keys, spec.Theta)
	} else {
		chooser = NewUniform(spec.Keys)
	}
	return &Generator{
		spec:    spec,
		chooser: chooser,
		rng:     NewRNG(seed),
		keys:    make([]uint64, spec.TxnSize),
		writes:  make([]bool, spec.TxnSize),
	}
}

// NextTxn fills the generator's scratch transaction: distinct keys (sampled
// with replacement then deduplicated by re-draw) and per-request read/write
// classification. The returned slices are valid until the next call.
func (g *Generator) NextTxn() (keys []uint64, writes []bool) {
	for i := 0; i < g.spec.TxnSize; i++ {
	redraw:
		k := g.chooser.Next(g.rng)
		for j := 0; j < i; j++ {
			if g.keys[j] == k {
				goto redraw
			}
		}
		g.keys[i] = k
		g.writes[i] = g.rng.Float64() >= g.spec.ReadFraction
	}
	return g.keys, g.writes
}

// NextKey returns a single key (for key-value store workloads).
func (g *Generator) NextKey() uint64 { return g.chooser.Next(g.rng) }

// IsWrite classifies the next single-key operation.
func (g *Generator) IsWrite() bool { return g.rng.Float64() >= g.spec.ReadFraction }

// RNG exposes the generator's RNG for auxiliary draws.
func (g *Generator) RNG() *RNG { return g.rng }
