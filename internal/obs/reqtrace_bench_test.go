package obs

import "testing"

func BenchmarkTraceLifecycle(b *testing.B) {
	tr := NewRequestTracer(DefaultTraceReservoir)
	var at ActiveTrace
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Begin(&at, TraceContext{}, "SET", "s")
		at.Span(SpanExec, int64(i), int64(i)+500, uint64(i), 0, "")
		tr.Finish(&at, int64(i), int64(i)+500)
	}
}
