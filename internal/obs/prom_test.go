package obs

import (
	"bufio"
	"bytes"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildPromTestRegistry populates a registry exercising every metric type,
// help-text escaping, and name sanitization.
func buildPromTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("faster_ops").Add(7)
	reg.SetHelp("faster_ops", "Operations executed.\nSecond line with a back\\slash.")
	reg.Gauge("faster_version").Set(3)
	reg.SetHelp("faster_version", "Current CPR version.")
	h := reg.Histogram("faster_commit_ns")
	reg.SetHelp("faster_commit_ns", "Commit latency.")
	for _, d := range []time.Duration{time.Microsecond, 50 * time.Microsecond, 3 * time.Millisecond} {
		h.Observe(d)
	}
	reg.Counter("weird-name.with/chars").Inc()
	return reg
}

// TestPrometheusConformance lints the exposition against the text format
// spec (version 0.0.4): HELP before TYPE before the first sample of a metric;
// escaped HELP text; cumulative, monotonically non-decreasing histogram
// buckets whose mandatory +Inf equals _count; float-parsable le values; and
// only sanitized metric names.
func TestPrometheusConformance(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, buildPromTestRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("exposition must end with a line feed")
	}

	typeSeen := map[string]string{} // metric name -> type
	helpSeen := map[string]bool{}
	sampleSeen := map[string]bool{}
	baseName := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typeSeen[b] == "histogram" {
				return b
			}
		}
		return name
	}

	type histState struct {
		lastCum  uint64
		lastLe   float64
		infCum   uint64
		count    uint64
		hasInf   bool
		hasCount bool
	}
	hists := map[string]*histState{}

	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, text, _ := strings.Cut(rest, " ")
			if sampleSeen[name] {
				t.Fatalf("HELP for %s after its first sample", name)
			}
			if typeSeen[name] != "" {
				t.Fatalf("HELP for %s after its TYPE line", name)
			}
			helpSeen[name] = true
			// Escaped text must contain no raw newline (scanner guarantees
			// that) and no lone backslash outside \\ and \n sequences.
			for i := 0; i < len(text); i++ {
				if text[i] == '\\' {
					if i+1 >= len(text) || (text[i+1] != '\\' && text[i+1] != 'n') {
						t.Fatalf("unescaped backslash in HELP %s: %q", name, text)
					}
					i++
				}
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := parts[0], parts[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("unknown type %q for %s", typ, name)
			}
			if sampleSeen[name] {
				t.Fatalf("TYPE for %s after its first sample", name)
			}
			if _, dup := typeSeen[name]; dup {
				t.Fatalf("duplicate TYPE line for %s", name)
			}
			typeSeen[name] = typ
			if typ == "histogram" {
				hists[name] = &histState{}
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}

		// Sample line: name[{labels}] value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				t.Fatalf("malformed labels: %q", line)
			}
			name, labels = line[:i], line[i+1:j]
			line = line[:i] + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", sc.Text())
		}
		name = fields[0]
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("non-numeric sample value in %q: %v", sc.Text(), err)
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("unsanitized metric name %q", name)
			}
		}
		base := baseName(name)
		if typeSeen[base] == "" {
			t.Fatalf("sample %s before its TYPE line", name)
		}
		sampleSeen[base] = true

		if hs, ok := hists[base]; ok {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				le, found := strings.CutPrefix(labels, `le="`)
				if !found {
					t.Fatalf("bucket without le label: %q", sc.Text())
				}
				le = strings.TrimSuffix(le, `"`)
				cum := uint64(val)
				if cum < hs.lastCum {
					t.Fatalf("%s buckets not cumulative: %d after %d", base, cum, hs.lastCum)
				}
				hs.lastCum = cum
				if le == "+Inf" {
					hs.hasInf = true
					hs.infCum = cum
				} else {
					f, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("unparsable le value %q", le)
					}
					if hs.lastLe != 0 && f <= hs.lastLe {
						t.Fatalf("%s le values not increasing: %g after %g", base, f, hs.lastLe)
					}
					hs.lastLe = f
				}
			case strings.HasSuffix(name, "_count"):
				hs.hasCount = true
				hs.count = uint64(val)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	for name, hs := range hists {
		if !hs.hasInf || !hs.hasCount {
			t.Fatalf("histogram %s missing +Inf bucket or _count", name)
		}
		if hs.infCum != hs.count {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", name, hs.infCum, hs.count)
		}
	}
	for _, n := range []string{"faster_ops", "faster_version", "faster_commit_ns"} {
		if !helpSeen[n] {
			t.Fatalf("missing HELP line for %s", n)
		}
		if !sampleSeen[n] {
			t.Fatalf("missing samples for %s", n)
		}
	}
	if typeSeen["weird_name_with_chars"] != "counter" {
		t.Fatal("unsanitized registration name did not surface as weird_name_with_chars")
	}
}

// TestPrometheusHandlerContentType: scrapers negotiate on the exact 0.0.4
// content type.
func TestPrometheusHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	PrometheusHandler(buildPromTestRegistry()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics.prom", nil))
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := rec.Header().Get("Content-Type"); got != want {
		t.Fatalf("Content-Type = %q, want %q", got, want)
	}
	if !strings.Contains(rec.Body.String(), "# HELP faster_ops ") {
		t.Fatal("handler output missing HELP line")
	}
}

// TestEscapeLabelValue pins the three escape sequences the spec defines for
// label values.
func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Fatalf("escapeLabelValue = %q", got)
	}
}

// TestHistogramTailQuantiles: the new p90/p999 columns order correctly with
// their neighbors and land in the right buckets.
func TestHistogramTailQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q")
	for i := 0; i < 990; i++ {
		h.ObserveValue(1_000)
	}
	for i := 0; i < 9; i++ {
		h.ObserveValue(1_000_000)
	}
	h.ObserveValue(100_000_000)
	s := reg.Snapshot().Histograms["q"]
	if s.P50Nanos > s.P90Nanos || s.P90Nanos > s.P95Nanos || s.P95Nanos > s.P99Nanos ||
		s.P99Nanos > s.P999Nanos || s.P999Nanos > s.MaxNanos {
		t.Fatalf("quantiles out of order: %+v", s)
	}
	if s.P90Nanos > 2_000 {
		t.Fatalf("p90 = %d, want within the 1us bucket", s.P90Nanos)
	}
	// The 999th-ranked of 1000 values is the last 1ms observation.
	if s.P999Nanos < 500_000 || s.P999Nanos > 1_100_000 {
		t.Fatalf("p999 = %d, want in the 1ms bucket", s.P999Nanos)
	}
}
