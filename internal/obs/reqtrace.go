package obs

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Request tracing is the third leg of the observability layer, next to the
// metrics registry (aggregates) and the flight recorder (causal commit
// timeline): a request-scoped span API that decomposes one client operation's
// latency into the hops of its life — client issue, frame decode/queue, shard
// dispatch, FASTER execute, durability wait, replication wait, response
// write. Spans carry a trace ID propagated over the kvserver wire protocol
// (v2 frames), so the client's round-trip and the server's hop decomposition
// join into one tree.
//
// Like the flight recorder, the nil *RequestTracer is a valid no-op — every
// method costs one pointer test — and the hot path never allocates: active
// traces come from a pool and hold their spans in a fixed inline array;
// retained traces (the slow tail) are the only heap copies.
//
// The tail sampler is always on: every finished request feeds a log2
// histogram from which a p99 threshold is recomputed periodically; any
// request slower than the current threshold has its full span tree copied
// into a lock-free, fixed-size reservoir (newest-wins ring), so the
// interesting tail is retained under bounded memory no matter the request
// rate. Durability-wait spans carry the covering commit token, cross-linking
// a slow request to the flight recorder's commit timeline.

// SpanKind identifies the hop a span covers. The names (see String) are a
// stable interface: `fasterctl trace` and the bench decomposition report them.
type SpanKind uint8

// Span kinds. Request-scoped kinds decompose one operation; global kinds
// (repl-ship, repl-announce) are token-keyed commit-lifecycle spans emitted
// outside any single request and merged into trace output by commit token.
const (
	SpanNone SpanKind = iota
	// SpanRequest is the root: the server handling one request frame.
	SpanRequest
	// SpanClientIssue is the client-side round trip (issue to response).
	SpanClientIssue
	// SpanQueue covers client issue to server frame decode: network transit
	// plus server accept/read queueing. Requires the client's issue timestamp
	// from the v2 trace field.
	SpanQueue
	// SpanDecode covers payload decode plus shard-route computation. Arg1 is
	// the target shard.
	SpanDecode
	// SpanExec covers the FASTER operation, including pending completion.
	// Arg1 is the operation serial.
	SpanExec
	// SpanDurWait covers a durability wait: issued serial to committed
	// serial. Token is the covering commit token; Arg1 the awaited serial,
	// Arg2 the committed serial reached.
	SpanDurWait
	// SpanReplWait covers waiting on replication progress inside a request.
	SpanReplWait
	// SpanRespWrite covers response serialization and the write syscall.
	SpanRespWrite
	// SpanReplShip (global) covers the primary shipping one commit's log
	// coverage and artifacts to a replica. Arg1 is bytes shipped.
	SpanReplShip
	// SpanReplAnnounce (global) covers local commit completion to the
	// commit-announce reaching a replica.
	SpanReplAnnounce
	// SpanBatch covers the execution window of one pipelined BATCH frame
	// (kvserver protocol v3). Arg1 is the op count, Arg2 the reply bytes.
	// Per-op hops inside the window appear as SpanExec children while the
	// trace has room (see ActiveTrace.Remaining).
	SpanBatch

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanNone:         "none",
	SpanRequest:      "request",
	SpanClientIssue:  "client-issue",
	SpanQueue:        "queue",
	SpanDecode:       "decode",
	SpanExec:         "exec",
	SpanDurWait:      "durwait",
	SpanReplWait:     "replwait",
	SpanRespWrite:    "resp-write",
	SpanReplShip:     "repl-ship",
	SpanReplAnnounce: "repl-announce",
	SpanBatch:        "batch",
}

var spanKindByName = func() map[string]SpanKind {
	m := make(map[string]SpanKind, numSpanKinds)
	for k, n := range spanKindNames {
		m[n] = SpanKind(k)
	}
	return m
}()

// String implements fmt.Stringer.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("span(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its stable name.
func (k SpanKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes either the stable name or a bare number.
func (k *SpanKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if v, ok := spanKindByName[s]; ok {
			*k = v
			return nil
		}
		return fmt.Errorf("obs: unknown span kind %q", s)
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = SpanKind(n)
	return nil
}

// TraceContext is the wire-propagated trace identity: which trace a request
// belongs to, the issuing side's span (the server parents its root under it),
// and when the client issued the request (for the queue hop). The zero
// TraceContext means "untraced".
type TraceContext struct {
	TraceID    uint64
	ParentSpan uint64
	// IssuedUnixNanos is the client's issue timestamp. Meaningful deltas
	// require client and server clocks to agree (same host, or NTP-close);
	// the server clamps negative queue spans to zero.
	IssuedUnixNanos int64
}

// traceIDBase is a per-process random base so trace IDs from different
// processes (client vs server self-initiated, restarts) do not collide.
var traceIDBase = func() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("obs: trace id seed: %v", err))
	}
	return binary.LittleEndian.Uint64(b[:]) | 1
}()

var traceIDCounter atomic.Uint64

// NewTraceID returns a process-unique, never-zero trace ID. Cheap: one atomic
// add mixed into a per-process random base.
func NewTraceID() uint64 {
	n := traceIDCounter.Add(1)
	id := traceIDBase + n*0x9e3779b97f4a7c15 // golden-ratio stride spreads IDs
	if id == 0 {
		id = 1
	}
	return id
}

// Span is one hop of a request (or a global, token-keyed commit-lifecycle
// hop). Timestamps are wall-clock UnixNano so spans from different processes
// line up on one axis.
type Span struct {
	ID             uint64   `json:"id"`
	Parent         uint64   `json:"parent,omitempty"`
	Kind           SpanKind `json:"kind"`
	StartUnixNanos int64    `json:"start_unix_ns"`
	EndUnixNanos   int64    `json:"end_unix_ns"`
	Arg1           uint64   `json:"arg1,omitempty"`
	Arg2           uint64   `json:"arg2,omitempty"`
	// Token is the commit token this hop waited on (durwait, repl-*): the
	// cross-link into the flight recorder's commit timeline.
	Token string `json:"token,omitempty"`
}

// DurationNanos is the span's length.
func (s Span) DurationNanos() int64 { return s.EndUnixNanos - s.StartUnixNanos }

// RequestTrace is one retained request's full span tree.
type RequestTrace struct {
	TraceID uint64 `json:"trace_id"`
	// Op names the request operation ("SET", "COMMIT", ...).
	Op      string `json:"op,omitempty"`
	Session string `json:"session,omitempty"`
	// StartUnixNanos is the earliest span start (the client's issue instant
	// when the queue hop is present); TotalNanos spans to the latest end, so
	// it approximates the client-observed latency.
	StartUnixNanos int64  `json:"start_unix_ns"`
	TotalNanos     int64  `json:"total_ns"`
	Spans          []Span `json:"spans"`
}

// maxTraceSpans bounds one request's span count; later spans are dropped (and
// counted) rather than grown onto the heap.
const maxTraceSpans = 12

// ActiveTrace accumulates one in-flight request's spans without allocating.
// It is a caller-owned scratch: embed one per connection (or declare one on
// the stack) and reuse it across requests — Begin re-arms it, Finish disarms
// it. The zero value is ready. Methods on a nil or disarmed ActiveTrace are
// no-ops, so call sites never branch on whether tracing is on.
type ActiveTrace struct {
	tr      *RequestTracer
	traceID uint64
	op      string
	session string
	rootID  uint64
	parent  uint64 // the issuing side's span, parent of the root
	nextID  uint64
	n       int
	// tick counts Finishes on this scratch across requests (never reset):
	// single-goroutine by the scratch ownership contract, so it samples the
	// latency histogram without atomics.
	tick  uint64
	spans [maxTraceSpans]Span
}

// Span records one hop. start/end are UnixNano timestamps supplied by the
// caller (call sites already read the clock for the decomposition
// histograms, so the tracer adds no clock reads of its own).
func (at *ActiveTrace) Span(kind SpanKind, startUnix, endUnix int64, arg1, arg2 uint64, token string) {
	if at == nil || at.tr == nil {
		return
	}
	if at.n >= maxTraceSpans {
		at.tr.spanDrops.Add(1)
		return
	}
	id := at.nextID
	at.nextID++
	at.spans[at.n] = Span{
		ID: id, Parent: at.rootID, Kind: kind,
		StartUnixNanos: startUnix, EndUnixNanos: endUnix,
		Arg1: arg1, Arg2: arg2, Token: token,
	}
	at.n++
}

// Remaining reports how many more spans this trace can record before drops
// begin (0 when disarmed). Emitters of per-item spans inside a bounded window
// — the batch loop's per-op exec spans — use it to stop early instead of
// flooding the drop counter: the window span (SpanBatch) still summarizes the
// whole run.
func (at *ActiveTrace) Remaining() int {
	if at == nil || at.tr == nil {
		return 0
	}
	return maxTraceSpans - at.n
}

// reservoir geometry.
const (
	// DefaultTraceReservoir is the retained-trace slot count: enough to hold
	// the recent slow tail without unbounded growth.
	DefaultTraceReservoir = 64
	// thresholdRecalcEvery is how many finished requests between p99
	// threshold recomputations.
	thresholdRecalcEvery = 64
	// latSampleEvery (power of two) is the per-scratch sampling stride for
	// the latency histogram: 1-in-8 keeps the p99 estimate unbiased while
	// cutting the hot path's atomics by 8x. Retention itself stays
	// per-request — every slow request is caught, only the threshold
	// estimate is sampled.
	latSampleEvery = 8
	// globalSpanRing is the retained global (token-keyed) span count.
	globalSpanRing = 256
)

// RequestTracer is the request-scoped tracing engine: it arms caller-owned
// ActiveTraces, aggregates total latencies into a log2 histogram, keeps a
// self-adjusting p99 threshold, and retains the span trees of requests slower
// than that threshold in a lock-free newest-wins reservoir. The nil
// RequestTracer is a valid no-op.
type RequestTracer struct {
	// latency histogram feeding the threshold: bucket i counts requests with
	// bits.Len64(totalNs) == i.
	latBuckets [histBuckets]atomic.Uint64
	finished   atomic.Uint64
	threshold  atomic.Uint64 // retain traces with total >= this (ns)

	slotMask uint64
	slots    []atomic.Pointer[RequestTrace]
	pos      atomic.Uint64
	retained atomic.Uint64

	spanDrops atomic.Uint64

	gslots []atomic.Pointer[Span]
	gpos   atomic.Uint64
}

// NewRequestTracer returns a tracer retaining up to reservoir slow traces
// (rounded up to a power of two, floor 16). Pass DefaultTraceReservoir
// unless profiling says otherwise.
func NewRequestTracer(reservoir int) *RequestTracer {
	if reservoir < 16 {
		reservoir = 16
	}
	c := 1
	for c < reservoir {
		c <<= 1
	}
	return &RequestTracer{
		slotMask: uint64(c - 1),
		slots:    make([]atomic.Pointer[RequestTrace], c),
		gslots:   make([]atomic.Pointer[Span], globalSpanRing),
	}
}

// Begin arms the caller's scratch ActiveTrace for one request. tc.TraceID of
// zero still traces (an ID is minted lazily if the trace is retained), so
// self-initiated server work can be sampled. On a nil tracer, Begin disarms
// the scratch so the rest of the lifecycle costs one pointer test per call.
func (t *RequestTracer) Begin(at *ActiveTrace, tc TraceContext, op, session string) {
	if t == nil {
		if at != nil {
			at.tr = nil
		}
		return
	}
	at.tr = t
	at.traceID = tc.TraceID // zero: minted lazily if the trace is retained
	at.op = op
	at.session = session
	at.parent = tc.ParentSpan
	at.rootID = tc.ParentSpan + 1
	at.nextID = at.rootID + 1
	at.n = 0
}

// Finish completes the request: the root span is closed over
// [startUnix, endUnix], the total latency (from the earliest recorded span,
// so a queue hop extends the window back to client issue) feeds the
// threshold histogram, and the span tree is retained if the request lands in
// the slow tail. The scratch is disarmed; re-arm it with Begin.
func (t *RequestTracer) Finish(at *ActiveTrace, startUnix, endUnix int64) {
	if t == nil || at == nil || at.tr == nil {
		return
	}
	first := startUnix
	last := endUnix
	for i := 0; i < at.n; i++ {
		if s := at.spans[i].StartUnixNanos; s != 0 && s < first {
			first = s
		}
		if e := at.spans[i].EndUnixNanos; e > last {
			last = e
		}
	}
	total := last - first
	if total < 0 {
		total = 0
	}
	at.tick++
	if at.tick&(latSampleEvery-1) == 0 {
		t.latBuckets[lenBucket(uint64(total))].Add(1)
		if n := t.finished.Add(latSampleEvery); n%thresholdRecalcEvery == 0 {
			t.recalcThreshold()
		}
	}
	// threshold of 0 means warmup (no recalc yet): retain everything.
	if uint64(total) >= t.threshold.Load() {
		if at.traceID == 0 {
			at.traceID = NewTraceID()
		}
		rt := &RequestTrace{
			TraceID:        at.traceID,
			Op:             at.op,
			Session:        at.session,
			StartUnixNanos: first,
			TotalNanos:     total,
			Spans:          make([]Span, 0, at.n+1),
		}
		rt.Spans = append(rt.Spans, Span{
			ID: at.rootID, Parent: at.parent, Kind: SpanRequest,
			StartUnixNanos: startUnix, EndUnixNanos: endUnix,
		})
		rt.Spans = append(rt.Spans, at.spans[:at.n]...)
		t.slots[(t.pos.Add(1)-1)&t.slotMask].Store(rt)
		t.retained.Add(1)
	}
	// Disarm without zeroing: the scratch is per-connection and bounded, so
	// stale span contents just wait for the next Begin (zeroing the ~1KB
	// struct would cost more per request than the rest of the lifecycle).
	at.tr = nil
}

// lenBucket maps a value to its log2 histogram bucket.
func lenBucket(n uint64) int {
	b := bits.Len64(n)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// recalcThreshold recomputes the p99 retention threshold from the latency
// histogram: the UPPER bound of the bucket holding the 99th percentile.
// Using the upper bound matters for the overhead guarantee — with a uniform
// workload the p99 falls inside the majority bucket, and a lower-bound
// threshold would retain (and heap-copy) most requests instead of the tail.
func (t *RequestTracer) recalcThreshold() {
	var counts [histBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = t.latBuckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return
	}
	target := total - total/100 // count below p99
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range counts {
		seen += c
		if seen >= target {
			t.threshold.Store(uint64(1) << uint(i))
			return
		}
	}
}

// ThresholdNanos returns the current tail-retention threshold (0 while the
// sampler is still warming up or all requests are sub-nanosecond buckets).
func (t *RequestTracer) ThresholdNanos() uint64 {
	if t == nil {
		return 0
	}
	return t.threshold.Load()
}

// Finished returns the number of requests the tracer has completed,
// accurate to the latSampleEvery stride.
func (t *RequestTracer) Finished() uint64 {
	if t == nil {
		return 0
	}
	return t.finished.Load()
}

// EmitGlobal records a token-keyed span that belongs to no single request —
// replication shipping, commit-announce waits. Retained in a fixed
// newest-wins ring; merged into trace output by commit token.
func (t *RequestTracer) EmitGlobal(kind SpanKind, token string, startUnix, endUnix int64, arg1, arg2 uint64) {
	if t == nil {
		return
	}
	sp := &Span{
		Kind: kind, Token: token,
		StartUnixNanos: startUnix, EndUnixNanos: endUnix,
		Arg1: arg1, Arg2: arg2,
	}
	t.gslots[(t.gpos.Add(1)-1)%uint64(len(t.gslots))].Store(sp)
}

// GlobalSpans snapshots the retained global spans, ordered by start time.
func (t *RequestTracer) GlobalSpans() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.gslots))
	for i := range t.gslots {
		if sp := t.gslots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNanos < out[j].StartUnixNanos })
	return out
}

// Slowest snapshots the reservoir and returns up to n retained traces,
// slowest first. n <= 0 returns everything retained.
func (t *RequestTracer) Slowest(n int) []RequestTrace {
	if t == nil {
		return nil
	}
	out := make([]RequestTrace, 0, len(t.slots))
	seen := make(map[uint64]bool, len(t.slots))
	for i := range t.slots {
		if rt := t.slots[i].Load(); rt != nil && !seen[rt.TraceID] {
			seen[rt.TraceID] = true
			out = append(out, *rt)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TotalNanos > out[j].TotalNanos })
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TraceDump is the wire/HTTP form of a tracer snapshot: the slowest retained
// traces plus the global token-keyed spans and sampler state.
type TraceDump struct {
	ThresholdNanos uint64         `json:"threshold_ns"`
	Finished       uint64         `json:"finished"`
	Retained       uint64         `json:"retained"`
	SpanDrops      uint64         `json:"span_drops,omitempty"`
	Traces         []RequestTrace `json:"traces"`
	Global         []Span         `json:"global,omitempty"`
}

// Dump snapshots the tracer for surfacing (the TRACE kvserver op and the
// /trace debug endpoint). n bounds the trace count as in Slowest.
func (t *RequestTracer) Dump(n int) TraceDump {
	if t == nil {
		return TraceDump{}
	}
	return TraceDump{
		ThresholdNanos: t.threshold.Load(),
		Finished:       t.finished.Load(),
		Retained:       t.retained.Load(),
		SpanDrops:      t.spanDrops.Load(),
		Traces:         t.Slowest(n),
		Global:         t.GlobalSpans(),
	}
}
