package obs

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// The flight recorder is the causal counterpart to the metrics registry: a
// lock-free, fixed-size set of per-core ring buffers of structured binary
// events covering the full lifecycle of a CPR commit — epoch bumps, per-shard
// phase transitions, HybridLog flushes and page-CRC records, artifact writes
// and retries, fault injections, replication ship/install/promote, recovery
// verdicts. Every event is stamped with the commit token, CPR version, shard
// and session it belongs to, so one commit's end-to-end timeline can be
// reassembled across all layers (`fasterctl flight <token>`).
//
// Emit is allocation-free and nil-receiver-safe, like Counter.Add: the hot
// path is one clock read, one atomic ticket fetch-add and a dozen atomic word
// stores into a preallocated slot. When a ring wraps, the oldest events are
// dropped (and counted) — never torn: each slot is guarded by a per-slot
// seqlock, so a reader either observes a fully-written event or skips the
// slot.

// FlightKind identifies the class of a flight-recorder event.
type FlightKind uint8

// Flight event kinds. The names (see String) are a stable interface: the
// crash-dump CI job and the causality tests grep for them.
const (
	FlightNone FlightKind = iota
	// FlightEpochBump: the epoch counter was incremented. Arg1 is the epoch
	// that was bumped.
	FlightEpochBump
	// FlightEpochDrain: a bump's trigger action fired after every registered
	// thread refreshed. Arg1 is the drained epoch, Arg2 the drain latency (ns).
	FlightEpochDrain
	// FlightPhase: a checkpoint state-machine transition. Arg1/Arg2 are the
	// from/to phase codes (see FlightPhaseName).
	FlightPhase
	// FlightAckPrepare: a session acknowledged the prepare phase. Arg1 is the
	// session's serial at the crossing.
	FlightAckPrepare
	// FlightDemarcate: a session fixed its CPR point. Arg1 is the point.
	FlightDemarcate
	// FlightDrop: a session left an active commit. Arg1 is its serial.
	FlightDrop
	// FlightCommitStart: a shard's commit state machine left rest.
	FlightCommitStart
	// FlightPersistDone: a shard's checkpoint (log capture + metadata) is
	// fully durable. Arg1 is the bytes written.
	FlightPersistDone
	// FlightManifestWrite: the cross-shard manifest and latest-pointer are
	// durable; the commit is now recoverable on every shard.
	FlightManifestWrite
	// FlightCommitDone: the commit completed successfully. Arg1 is the total
	// bytes written.
	FlightCommitDone
	// FlightCommitFail: the commit aborted with an error.
	FlightCommitFail
	// FlightCommitAnnounced: the replication primary announced the commit to
	// a replica (only after every artifact shipped).
	FlightCommitAnnounced
	// FlightFlush: a HybridLog flush segment became durable. Arg1 is the
	// segment bytes, Arg2 the submit-to-durable latency (ns).
	FlightFlush
	// FlightPageCRC: a fully-flushed log page's checksum was recorded.
	// Arg1 is the page number, Arg2 the CRC32-C value.
	FlightPageCRC
	// FlightArtifactWrite: a checkpoint artifact was written inside the
	// checksum envelope. Token is the artifact name, Arg1 the payload bytes.
	FlightArtifactWrite
	// FlightArtifactRetry: a transient fault made an artifact write retry.
	// Token is the artifact name, Arg1 the attempt number that failed.
	FlightArtifactRetry
	// FlightFaultInjected: the fault injector fired. Arg1 is the fault class
	// (see FlightFaultName).
	FlightFaultInjected
	// FlightCrashPoint: a named crash-point callback fired. Token is the
	// point name (possibly truncated).
	FlightCrashPoint
	// FlightReplShip: the primary finished shipping a commit's artifacts to a
	// replica. Arg1 is the bytes shipped.
	FlightReplShip
	// FlightReplInstall: a replica atomically installed a shipped commit.
	FlightReplInstall
	// FlightReplPromote: a replica promoted itself to primary.
	FlightReplPromote
	// FlightRecoverVerdict: recovery accepted a commit candidate (Arg1 = 1).
	FlightRecoverVerdict
	// FlightRecoverFallback: recovery rejected a commit candidate as
	// unverifiable and fell back to an older one.
	FlightRecoverFallback
	// FlightInlogAppend: one ingestion-log append call persisted records to
	// the active segment. Arg1 is the first offset appended, Arg2 the payload
	// bytes.
	FlightInlogAppend
	// FlightInlogFsync: the ingestion log fsynced its active segment,
	// advancing the durable (ackable) frontier. Arg1 is the durable offset
	// after the sync, Arg2 the fsync latency (ns).
	FlightInlogFsync
	// FlightInlogApply: the apply pump drained ingestion-log records into its
	// FASTER session. Arg1 is the next-to-apply offset after the drain, Arg2
	// the records applied in this drain.
	FlightInlogApply
	// FlightInlogWatermark: a commit persisted the inlog-<token> watermark
	// artifact. Token is the commit token, Arg1 the watermark offset, Arg2
	// the session serial it anchors.
	FlightInlogWatermark
	// FlightInlogTrim: segments wholly below the commit watermark were
	// physically deleted. Arg1 is the trim offset, Arg2 the bytes removed.
	FlightInlogTrim
	// FlightInlogReplay: recovery replayed the ingestion-log suffix above the
	// recovered watermark. Arg1 is the replay start offset, Arg2 the records
	// replayed.
	FlightInlogReplay
	// FlightWarmBucket: instant restore warmed one cold hash bucket — its
	// log-suffix records are re-linked and operations on it may proceed. The
	// event is emitted BEFORE any blocked operation resumes, so "a request
	// touched bucket B" ordered after "warm-bucket B" proves the request
	// never observed pre-prefix state. Arg1 is the bucket number, Arg2 the
	// suffix records replayed into it.
	FlightWarmBucket
	// FlightSweep: instant-restore sweeper progress. Arg1 is the cold
	// buckets remaining, Arg2 the suffix records still pending; a final
	// event with Arg1 == 0 marks the shard fully warm.
	FlightSweep
	// FlightHealthFire: a health-engine detector crossed its hysteresis bound
	// and started firing. Token is the detector name, Arg1 the consecutive
	// bad samples, Arg2 the incident bundle sequence (0 = no bundle written).
	FlightHealthFire
	// FlightHealthClear: a firing detector saw enough good samples to clear.
	// Token is the detector name, Arg1 the samples it had been firing for.
	FlightHealthClear

	numFlightKinds
)

var flightKindNames = [numFlightKinds]string{
	FlightNone:            "none",
	FlightEpochBump:       "epoch-bump",
	FlightEpochDrain:      "epoch-drain",
	FlightPhase:           "phase",
	FlightAckPrepare:      "ack-prepare",
	FlightDemarcate:       "demarcate",
	FlightDrop:            "drop",
	FlightCommitStart:     "commit-start",
	FlightPersistDone:     "persist-done",
	FlightManifestWrite:   "manifest-write",
	FlightCommitDone:      "commit-done",
	FlightCommitFail:      "commit-fail",
	FlightCommitAnnounced: "commit-announced",
	FlightFlush:           "flush",
	FlightPageCRC:         "page-crc",
	FlightArtifactWrite:   "artifact-write",
	FlightArtifactRetry:   "artifact-retry",
	FlightFaultInjected:   "fault-injected",
	FlightCrashPoint:      "crash-point",
	FlightReplShip:        "repl-ship",
	FlightReplInstall:     "repl-install",
	FlightReplPromote:     "repl-promote",
	FlightRecoverVerdict:  "recover-verdict",
	FlightRecoverFallback: "recover-fallback",
	FlightInlogAppend:     "inlog-append",
	FlightInlogFsync:      "inlog-fsync",
	FlightInlogApply:      "inlog-apply",
	FlightInlogWatermark:  "inlog-watermark",
	FlightInlogTrim:       "inlog-trim",
	FlightInlogReplay:     "inlog-replay",
	FlightWarmBucket:      "warm-bucket",
	FlightSweep:           "sweep",
	FlightHealthFire:      "health-fire",
	FlightHealthClear:     "health-clear",
}

var flightKindByName = func() map[string]FlightKind {
	m := make(map[string]FlightKind, numFlightKinds)
	for k, n := range flightKindNames {
		m[n] = FlightKind(k)
	}
	return m
}()

// String implements fmt.Stringer.
func (k FlightKind) String() string {
	if int(k) < len(flightKindNames) {
		return flightKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its stable name.
func (k FlightKind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes either the stable name or a bare number.
func (k *FlightKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if v, ok := flightKindByName[s]; ok {
			*k = v
			return nil
		}
		return fmt.Errorf("obs: unknown flight kind %q", s)
	}
	var n uint8
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = FlightKind(n)
	return nil
}

// FlightPhaseName names the checkpoint phase codes carried in FlightPhase
// events (mirrors faster.Phase and txdb's state machine; kept here so the
// decoder has no dependency on either).
func FlightPhaseName(code uint64) string {
	switch code {
	case 0:
		return "rest"
	case 1:
		return "prepare"
	case 2:
		return "in-progress"
	case 3:
		return "wait-pending"
	case 4:
		return "wait-flush"
	}
	return fmt.Sprintf("phase(%d)", code)
}

// FlightFaultName names the fault-class codes carried in FlightFaultInjected
// events (mirrors the storage fault injector's classes).
func FlightFaultName(code uint64) string {
	switch code {
	case 1:
		return "transient"
	case 2:
		return "torn"
	case 3:
		return "bit-flip"
	case 4:
		return "latency"
	}
	return fmt.Sprintf("fault(%d)", code)
}

// Fixed slot geometry. A slot is one seqlock word plus twelve data words
// (104 bytes): ticket, timestamp, packed meta, version, two arguments, a
// 32-byte token and a 16-byte session prefix. Strings longer than their field
// are truncated at Emit (store-generated commit tokens and artifact names fit
// whole; session GUIDs keep a 16-byte prefix, enough to disambiguate).
const (
	flightTokenWords   = 4
	flightSessionWords = 2
	flightDataWords    = 6 + flightTokenWords + flightSessionWords

	// FlightTokenBytes is the widest token recorded whole (longer ones are
	// truncated).
	FlightTokenBytes = 8 * flightTokenWords
	// FlightSessionBytes is the recorded session-ID prefix width.
	FlightSessionBytes = 8 * flightSessionWords
)

// flightSlot is one event slot: seq is a per-slot seqlock (odd while a writer
// owns the slot; writers claim it by CAS, so two writers lapping each other
// on a wrapped ring can never interleave their word stores).
type flightSlot struct {
	seq atomic.Uint64
	w   [flightDataWords]atomic.Uint64
}

// flightRing is one per-core ring: pos is the monotonically increasing ticket
// counter; slot (ticket-1) & mask holds the event.
type flightRing struct {
	pos   atomic.Uint64
	_     [cacheLine - 8]byte
	slots []flightSlot
}

// DefaultFlightCapacity is the per-ring slot count used when a component
// creates its own recorder: with numShards rings this retains the most recent
// few hundred thousand bytes of events — hours of steady-state commit traffic.
const DefaultFlightCapacity = 1024

// FlightRecorder records flight events into per-core rings. The nil
// FlightRecorder is a valid no-op: Emit on nil returns immediately, so
// instrumented code never branches on configuration.
type FlightRecorder struct {
	start     time.Time
	wallStart int64 // wall clock at creation (UnixNano); AtNanos is relative
	ringMask  uint64
	slotMask  uint64
	rings     []flightRing
}

// NewFlightRecorder returns a recorder with perRing slots in each of its
// per-core rings (rounded up to a power of two, floor 64). Pass
// DefaultFlightCapacity unless profiling says otherwise.
func NewFlightRecorder(perRing int) *FlightRecorder {
	if perRing < 64 {
		perRing = 64
	}
	c := 1
	for c < perRing {
		c <<= 1
	}
	now := time.Now()
	f := &FlightRecorder{
		start:     now,
		wallStart: now.UnixNano(),
		ringMask:  uint64(numShards - 1),
		slotMask:  uint64(c - 1),
		rings:     make([]flightRing, numShards),
	}
	for i := range f.rings {
		f.rings[i].slots = make([]flightSlot, c)
	}
	return f
}

// WallStart returns the wall-clock instant (UnixNano) the recorder started;
// event timestamps are nanoseconds since then.
func (f *FlightRecorder) WallStart() int64 {
	if f == nil {
		return 0
	}
	return f.wallStart
}

// packFlightMeta packs kind, shard and the string lengths into one word.
// Shard is stored +1 in 16 bits so shard -1 (store-level events) round-trips.
func packFlightMeta(kind FlightKind, shard, tlen, slen int) uint64 {
	if tlen > FlightTokenBytes {
		tlen = FlightTokenBytes
	}
	if slen > FlightSessionBytes {
		slen = FlightSessionBytes
	}
	return uint64(kind) | uint64(uint16(shard+1))<<8 | uint64(tlen)<<24 | uint64(slen)<<32
}

// Emit records one event. It is allocation-free and safe on a nil receiver.
// shard is the CPR domain the event belongs to (-1 for store-level events);
// token and session are truncated to FlightTokenBytes / FlightSessionBytes.
//
// The timestamp is read before the ticket is claimed, so events ordered by
// happens-before carry non-decreasing timestamps; the reader's merge sort by
// (AtNanos, ring, ticket) therefore respects causality across goroutines.
func (f *FlightRecorder) Emit(kind FlightKind, shard int, version uint64, token, session string, arg1, arg2 uint64) {
	if f == nil {
		return
	}
	at := uint64(time.Since(f.start).Nanoseconds())
	r := &f.rings[shardHint()&f.ringMask]
	ticket := r.pos.Add(1)
	s := &r.slots[(ticket-1)&f.slotMask]
	// Claim the slot: CAS even->odd. Contention here requires another writer
	// to be mid-write on this very slot, which needs ring-capacity tickets
	// claimed within its ~100ns write window — effectively never; the spin is
	// a correctness backstop, not a fast-path cost.
	for {
		v := s.seq.Load()
		if v&1 == 0 && s.seq.CompareAndSwap(v, v+1) {
			break
		}
	}
	s.w[0].Store(ticket)
	s.w[1].Store(at)
	s.w[2].Store(packFlightMeta(kind, shard, len(token), len(session)))
	s.w[3].Store(version)
	s.w[4].Store(arg1)
	s.w[5].Store(arg2)
	if len(token) > FlightTokenBytes {
		token = token[:FlightTokenBytes]
	}
	if len(session) > FlightSessionBytes {
		session = session[:FlightSessionBytes]
	}
	for i := 0; i < flightTokenWords; i++ {
		s.w[6+i].Store(packFlightBytes(token, i*8))
	}
	for i := 0; i < flightSessionWords; i++ {
		s.w[6+flightTokenWords+i].Store(packFlightBytes(session, i*8))
	}
	s.seq.Add(1) // release: back to even
}

// packFlightBytes packs up to eight bytes of s starting at base into a word
// (little-endian), zero-padded.
func packFlightBytes(s string, base int) uint64 {
	var w uint64
	for j := 0; j < 8 && base+j < len(s); j++ {
		w |= uint64(s[base+j]) << (8 * uint(j))
	}
	return w
}

func unpackFlightBytes(dst []byte, w uint64) []byte {
	for j := 0; j < 8; j++ {
		dst = append(dst, byte(w>>(8*uint(j))))
	}
	return dst
}

// FlightEvent is one decoded flight-recorder event.
type FlightEvent struct {
	// Ring and Seq identify the slot: Seq is the ring's ticket, strictly
	// increasing per ring, so (Ring, Seq) is unique.
	Ring int    `json:"ring"`
	Seq  uint64 `json:"seq"`
	// AtNanos is monotonic nanoseconds since the recorder started.
	AtNanos int64      `json:"at_ns"`
	Kind    FlightKind `json:"kind"`
	// Shard is the CPR domain (-1 = store-level / cross-shard).
	Shard   int    `json:"shard"`
	Version uint64 `json:"version,omitempty"`
	Arg1    uint64 `json:"arg1,omitempty"`
	Arg2    uint64 `json:"arg2,omitempty"`
	Token   string `json:"token,omitempty"`
	Session string `json:"session,omitempty"`
}

// readFlightSlot seqlock-reads one slot. ok is false for never-written slots
// and slots that stayed write-locked across all retries (the event is then
// counted as neither retained nor torn — it simply isn't visible yet).
func readFlightSlot(s *flightSlot, ring int) (FlightEvent, bool) {
	for attempt := 0; attempt < 8; attempt++ {
		s1 := s.seq.Load()
		if s1 == 0 {
			return FlightEvent{}, false // never written
		}
		if s1&1 == 1 {
			continue // writer active
		}
		var w [flightDataWords]uint64
		for i := range w {
			w[i] = s.w[i].Load()
		}
		if s.seq.Load() != s1 {
			continue // overwritten mid-read; retry
		}
		return decodeFlightWords(ring, w), true
	}
	return FlightEvent{}, false
}

func decodeFlightWords(ring int, w [flightDataWords]uint64) FlightEvent {
	meta := w[2]
	tlen := int(meta>>24) & 0xff
	slen := int(meta>>32) & 0xff
	if tlen > FlightTokenBytes {
		tlen = FlightTokenBytes
	}
	if slen > FlightSessionBytes {
		slen = FlightSessionBytes
	}
	var sbuf [FlightTokenBytes + FlightSessionBytes]byte
	buf := sbuf[:0]
	for i := 0; i < flightTokenWords; i++ {
		buf = unpackFlightBytes(buf, w[6+i])
	}
	token := string(buf[:tlen])
	buf = sbuf[:0]
	for i := 0; i < flightSessionWords; i++ {
		buf = unpackFlightBytes(buf, w[6+flightTokenWords+i])
	}
	session := string(buf[:slen])
	return FlightEvent{
		Ring:    ring,
		Seq:     w[0],
		AtNanos: int64(w[1]),
		Kind:    FlightKind(meta & 0xff),
		Shard:   int(uint16(meta>>8)) - 1,
		Version: w[3],
		Arg1:    w[4],
		Arg2:    w[5],
		Token:   token,
		Session: session,
	}
}

// Events snapshots every retained event across all rings, merged into one
// timeline ordered by (AtNanos, Ring, Seq), plus the total number of events
// dropped to ring wraparound. Safe to call concurrently with Emit: slots
// being written are skipped or retried, never observed torn.
func (f *FlightRecorder) Events() ([]FlightEvent, uint64) {
	if f == nil {
		return nil, 0
	}
	var out []FlightEvent
	var dropped uint64
	for ri := range f.rings {
		r := &f.rings[ri]
		if pos, capacity := r.pos.Load(), uint64(len(r.slots)); pos > capacity {
			dropped += pos - capacity
		}
		for si := range r.slots {
			if e, ok := readFlightSlot(&r.slots[si], ri); ok {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AtNanos != out[j].AtNanos {
			return out[i].AtNanos < out[j].AtNanos
		}
		if out[i].Ring != out[j].Ring {
			return out[i].Ring < out[j].Ring
		}
		return out[i].Seq < out[j].Seq
	})
	return out, dropped
}

// FilterFlightEvents keeps the events belonging to one commit: those whose
// token equals or contains token (artifact-write events carry artifact names
// like "meta-<token>", which contain the commit token). An empty token keeps
// everything.
func FilterFlightEvents(evs []FlightEvent, token string) []FlightEvent {
	if token == "" {
		return evs
	}
	out := make([]FlightEvent, 0, len(evs))
	for _, e := range evs {
		if e.Token == token || strings.Contains(e.Token, token) {
			out = append(out, e)
		}
	}
	return out
}

// FlightDump is a decoded flight-recorder dump: the full merged timeline at
// the instant the dump was taken.
type FlightDump struct {
	// WallStartNanos anchors AtNanos offsets to the wall clock (UnixNano of
	// the recorder's start).
	WallStartNanos int64         `json:"wall_start_unix_ns"`
	Dropped        uint64        `json:"dropped,omitempty"`
	Events         []FlightEvent `json:"events"`
}

// Dump format: an 8-byte magic (which includes the format version), the
// recorder's wall start, the dropped count, the event count, then fixed
// 104-byte event records. The CRC framing that protects a crash dump on disk
// is applied by the storage layer's artifact envelope (storage.EncodeArtifact
// / WriteArtifactChecked) — obs cannot depend on storage, which already
// depends on obs.
const (
	flightDumpMagic   = "CPRFLT01"
	flightDumpHdrSize = 8 + 8 + 8 + 4 + 4
	flightRecSize     = 104
)

// EncodeDump snapshots the recorder and encodes the dump payload. Frame it in
// the storage artifact envelope before writing it to disk.
func (f *FlightRecorder) EncodeDump() []byte {
	evs, dropped := f.Events()
	return EncodeFlightDump(FlightDump{WallStartNanos: f.WallStart(), Dropped: dropped, Events: evs})
}

// EncodeFlightDump encodes a dump payload.
func EncodeFlightDump(d FlightDump) []byte {
	buf := make([]byte, 0, flightDumpHdrSize+len(d.Events)*flightRecSize)
	buf = append(buf, flightDumpMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.WallStartNanos))
	buf = binary.LittleEndian.AppendUint64(buf, d.Dropped)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.Events)))
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved
	for _, e := range d.Events {
		buf = appendFlightEvent(buf, e)
	}
	return buf
}

// DecodeFlightDump decodes a dump payload produced by EncodeFlightDump (after
// the storage envelope, if any, has been stripped).
func DecodeFlightDump(data []byte) (FlightDump, error) {
	var d FlightDump
	if len(data) < flightDumpHdrSize {
		return d, fmt.Errorf("obs: flight dump truncated (%d bytes)", len(data))
	}
	if string(data[:8]) != flightDumpMagic {
		return d, fmt.Errorf("obs: not a flight dump (magic %q)", data[:8])
	}
	d.WallStartNanos = int64(binary.LittleEndian.Uint64(data[8:]))
	d.Dropped = binary.LittleEndian.Uint64(data[16:])
	count := int(binary.LittleEndian.Uint32(data[24:]))
	body := data[flightDumpHdrSize:]
	if len(body) != count*flightRecSize {
		return d, fmt.Errorf("obs: flight dump body is %d bytes, want %d for %d events",
			len(body), count*flightRecSize, count)
	}
	d.Events = make([]FlightEvent, 0, count)
	for i := 0; i < count; i++ {
		e, err := decodeFlightEvent(body[i*flightRecSize:])
		if err != nil {
			return d, fmt.Errorf("obs: flight dump event %d: %w", i, err)
		}
		d.Events = append(d.Events, e)
	}
	return d, nil
}

// appendFlightEvent encodes one fixed-size event record.
func appendFlightEvent(buf []byte, e FlightEvent) []byte {
	var rec [flightRecSize]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(e.Ring))
	binary.LittleEndian.PutUint32(rec[4:], uint32(int32(e.Shard)))
	binary.LittleEndian.PutUint64(rec[8:], e.Seq)
	binary.LittleEndian.PutUint64(rec[16:], uint64(e.AtNanos))
	binary.LittleEndian.PutUint64(rec[24:], e.Version)
	binary.LittleEndian.PutUint64(rec[32:], e.Arg1)
	binary.LittleEndian.PutUint64(rec[40:], e.Arg2)
	rec[48] = byte(e.Kind)
	tok, sess := e.Token, e.Session
	if len(tok) > FlightTokenBytes {
		tok = tok[:FlightTokenBytes]
	}
	if len(sess) > FlightSessionBytes {
		sess = sess[:FlightSessionBytes]
	}
	rec[49] = byte(len(tok))
	rec[50] = byte(len(sess))
	copy(rec[52:], tok)
	copy(rec[84:], sess)
	return append(buf, rec[:]...)
}

// decodeFlightEvent decodes one fixed-size event record.
func decodeFlightEvent(b []byte) (FlightEvent, error) {
	var e FlightEvent
	if len(b) < flightRecSize {
		return e, fmt.Errorf("truncated record (%d bytes)", len(b))
	}
	tlen, slen := int(b[49]), int(b[50])
	if tlen > FlightTokenBytes {
		return e, fmt.Errorf("token length %d exceeds %d", tlen, FlightTokenBytes)
	}
	if slen > FlightSessionBytes {
		return e, fmt.Errorf("session length %d exceeds %d", slen, FlightSessionBytes)
	}
	e.Ring = int(binary.LittleEndian.Uint32(b[0:]))
	e.Shard = int(int32(binary.LittleEndian.Uint32(b[4:])))
	e.Seq = binary.LittleEndian.Uint64(b[8:])
	e.AtNanos = int64(binary.LittleEndian.Uint64(b[16:]))
	e.Version = binary.LittleEndian.Uint64(b[24:])
	e.Arg1 = binary.LittleEndian.Uint64(b[32:])
	e.Arg2 = binary.LittleEndian.Uint64(b[40:])
	e.Kind = FlightKind(b[48])
	e.Token = string(b[52 : 52+tlen])
	e.Session = string(b[84 : 84+slen])
	return e, nil
}

// Describe renders an event's payload for human consumption (one line,
// without the timestamp/shard columns — callers lay those out).
func (e FlightEvent) Describe() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	switch e.Kind {
	case FlightPhase:
		fmt.Fprintf(&b, " %s->%s", FlightPhaseName(e.Arg1), FlightPhaseName(e.Arg2))
	case FlightEpochBump:
		fmt.Fprintf(&b, " epoch=%d", e.Arg1)
	case FlightEpochDrain:
		fmt.Fprintf(&b, " epoch=%d drain=%s", e.Arg1, time.Duration(e.Arg2))
	case FlightAckPrepare, FlightDemarcate, FlightDrop:
		fmt.Fprintf(&b, " serial=%d", e.Arg1)
	case FlightPersistDone, FlightCommitDone, FlightArtifactWrite, FlightReplShip:
		fmt.Fprintf(&b, " bytes=%d", e.Arg1)
	case FlightArtifactRetry:
		fmt.Fprintf(&b, " attempt=%d", e.Arg1)
	case FlightFlush:
		fmt.Fprintf(&b, " bytes=%d lat=%s", e.Arg1, time.Duration(e.Arg2))
	case FlightPageCRC:
		fmt.Fprintf(&b, " page=%d crc=%08x", e.Arg1, uint32(e.Arg2))
	case FlightFaultInjected:
		fmt.Fprintf(&b, " class=%s", FlightFaultName(e.Arg1))
	case FlightRecoverVerdict:
		// Arg1 counts newer commits skipped as unverifiable before this one.
		if e.Arg1 == 0 {
			b.WriteString(" clean")
		} else {
			fmt.Fprintf(&b, " after %d skipped commit(s)", e.Arg1)
		}
	case FlightHealthFire:
		fmt.Fprintf(&b, " after %d bad sample(s)", e.Arg1)
		if e.Arg2 != 0 {
			fmt.Fprintf(&b, " incident-seq=%d", e.Arg2)
		}
	case FlightHealthClear:
		fmt.Fprintf(&b, " fired-for=%d sample(s)", e.Arg1)
	}
	if e.Token != "" {
		fmt.Fprintf(&b, " token=%s", e.Token)
	}
	if e.Session != "" {
		fmt.Fprintf(&b, " session=%s", e.Session)
	}
	if e.Version != 0 {
		fmt.Fprintf(&b, " v%d", e.Version)
	}
	return b.String()
}
