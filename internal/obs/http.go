package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// writeJSON marshals v (indented, stable key order) to w.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: the client went away
}

// MetricsHandler serves the registry as an expvar-style JSON document.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Snapshot())
	})
}

// TimelineHandler serves the tracer's phase timeline as JSON.
func TimelineHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, t.Timeline())
	})
}

// FlightHandler serves the flight recorder's merged event timeline as a JSON
// FlightDump. An optional ?token=<commit> query filters to one commit's
// events (token containment, so artifact names match too).
func FlightHandler(f *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		evs, dropped := f.Events()
		evs = FilterFlightEvents(evs, req.URL.Query().Get("token"))
		writeJSON(w, FlightDump{WallStartNanos: f.WallStart(), Dropped: dropped, Events: evs})
	})
}

// TraceHandler serves the request tracer's retained slow-request span trees
// as a JSON TraceDump. An optional ?n=<count> query bounds the trace count
// (default 16, 0 = everything retained).
func TraceHandler(rt *RequestTracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 16
		if q := req.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		writeJSON(w, rt.Dump(n))
	})
}

// NewDebugMux returns the live-introspection mux mounted by servers that opt
// in to a debug listener:
//
//	/metrics        registry snapshot (expvar-style JSON)
//	/metrics.prom   the same registry in Prometheus text exposition format
//	/timeline       CPR phase timeline (events + spans)
//	/flight         flight-recorder timeline (?token=<commit> filters)
//	/trace          slow-request span trees (?n=<count> bounds)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// fr and rt may be nil (the corresponding endpoints then report empty
// timelines). The mux holds no locks between requests; every response is a
// fresh snapshot.
func NewDebugMux(reg *Registry, tr *Tracer, fr *FlightRecorder, rt *RequestTracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/metrics.prom", PrometheusHandler(reg))
	mux.Handle("/timeline", TimelineHandler(tr))
	mux.Handle("/flight", FlightHandler(fr))
	mux.Handle("/trace", TraceHandler(rt))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
