package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// writeJSON marshals v (indented, stable key order) to w.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // best-effort: the client went away
}

// MetricsHandler serves the registry as an expvar-style JSON document.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, r.Snapshot())
	})
}

// TimelineHandler serves the tracer's phase timeline as JSON.
func TimelineHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, t.Timeline())
	})
}

// NewDebugMux returns the live-introspection mux mounted by servers that opt
// in to a debug listener:
//
//	/metrics        registry snapshot (expvar-style JSON)
//	/timeline       CPR phase timeline (events + spans)
//	/debug/pprof/*  the standard Go profiler endpoints
//
// The mux holds no locks between requests; every response is a fresh
// snapshot.
func NewDebugMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/timeline", TimelineHandler(tr))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
