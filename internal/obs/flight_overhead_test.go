package obs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// TestFlightOverheadGuard is the regression guard for the flight recorder's
// "always-on" contract: upsert throughput on a store recording flight events
// — including the commit-lifecycle events produced by periodic commits — must
// stay within 10% of the identical store with recording disabled (nil
// recorder). The hot paths only ever pay a nil check plus, on commit/flush
// boundaries, one lock-free ring append; if someone adds locking, allocation
// or formatting to Emit or its call sites, this test catches it.
func TestFlightOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard is not meaningful under the race detector")
	}

	const (
		keys      = 128
		ops       = 150_000
		commitEvg = 25_000 // ops between commits: lifecycle events flow too
		trials    = 5
	)
	keybuf := make([][]byte, keys)
	for i := range keybuf {
		keybuf[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	val := []byte("value-00000000")

	run := func(fr *obs.FlightRecorder) time.Duration {
		store, err := faster.Open(faster.Config{Metrics: obs.NewNop(), Flight: fr})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		sess := store.StartSession()
		defer sess.StopSession()
		for _, k := range keybuf { // warm the index
			if st := sess.Upsert(k, val); st != faster.Ok {
				t.Fatalf("warmup upsert: %v", st)
			}
		}
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if st := sess.Upsert(keybuf[i%keys], val); st != faster.Ok {
				t.Fatalf("upsert: %v", st)
			}
			if i%commitEvg == commitEvg-1 {
				token, err := store.Commit(faster.CommitOptions{})
				if err != nil {
					t.Fatalf("commit: %v", err)
				}
				for {
					if res, ok := store.TryResult(token); ok {
						if res.Err != nil {
							t.Fatalf("commit result: %v", res.Err)
						}
						break
					}
					sess.Refresh()
				}
			}
		}
		return time.Since(t0)
	}

	best := map[string]time.Duration{"off": 1<<63 - 1, "on": 1<<63 - 1}
	for i := 0; i < trials; i++ {
		if d := run(nil); d < best["off"] {
			best["off"] = d
		}
		if d := run(obs.NewFlightRecorder(obs.DefaultFlightCapacity)); d < best["on"] {
			best["on"] = d
		}
	}

	offRate := float64(ops) / best["off"].Seconds()
	onRate := float64(ops) / best["on"].Seconds()
	t.Logf("upsert throughput with commits: recorder off %.0f ops/s, on %.0f ops/s (%.1f%%)",
		offRate, onRate, 100*onRate/offRate)
	if onRate < 0.90*offRate {
		t.Fatalf("flight recorder overhead exceeds 10%%: on %.0f ops/s vs off baseline %.0f ops/s",
			onRate, offRate)
	}
}
