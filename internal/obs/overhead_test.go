package obs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// TestMetricsOverheadGuard is the regression guard for the "metrics are nearly
// free" contract: single-threaded upsert throughput on a store with the
// default (enabled) registry must stay within 10% of the same store wired to
// the no-op sink (obs.NewNop()). An enabled counter costs one atomic add on a
// goroutine-affine shard; if someone adds a lock or a map lookup to the hot
// path, this test catches it.
func TestMetricsOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard is not meaningful under the race detector")
	}

	const (
		keys   = 128
		ops    = 150_000
		trials = 5
	)
	keybuf := make([][]byte, keys)
	for i := range keybuf {
		keybuf[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	val := []byte("value-00000000")

	// One timed run on a fresh store: ops upserts over a small key set.
	run := func(reg *obs.Registry) time.Duration {
		store, err := faster.Open(faster.Config{Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		sess := store.StartSession()
		defer sess.StopSession()
		for _, k := range keybuf { // warm the index
			if st := sess.Upsert(k, val); st != faster.Ok {
				t.Fatalf("warmup upsert: %v", st)
			}
		}
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			if st := sess.Upsert(keybuf[i%keys], val); st != faster.Ok {
				t.Fatalf("upsert: %v", st)
			}
		}
		return time.Since(t0)
	}

	// Alternate configurations and keep the best (minimum) time of each, so
	// one-off scheduler noise can only hurt a configuration, never flatter it.
	best := map[string]time.Duration{"nop": 1<<63 - 1, "enabled": 1<<63 - 1}
	for i := 0; i < trials; i++ {
		if d := run(obs.NewNop()); d < best["nop"] {
			best["nop"] = d
		}
		if d := run(obs.NewRegistry()); d < best["enabled"] {
			best["enabled"] = d
		}
	}

	nopRate := float64(ops) / best["nop"].Seconds()
	onRate := float64(ops) / best["enabled"].Seconds()
	t.Logf("upsert throughput: nop sink %.0f ops/s, metrics enabled %.0f ops/s (%.1f%%)",
		nopRate, onRate, 100*onRate/nopRate)
	if onRate < 0.90*nopRate {
		t.Fatalf("metrics overhead exceeds 10%%: enabled %.0f ops/s vs nop baseline %.0f ops/s",
			onRate, nopRate)
	}
}
