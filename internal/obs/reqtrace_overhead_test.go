package obs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faster"
	"repro/internal/obs"
)

// TestTracingOverheadGuard is the regression guard for request tracing's
// always-on contract, mirroring TestFlightOverheadGuard: driving the full
// per-request trace lifecycle (Begin, exec + durwait-shaped spans, Finish)
// around store upserts must stay within 10% of the identical loop with a nil
// tracer. The lifecycle is pooled and allocation-free; if someone adds
// allocation, locking or formatting to the hot path, this catches it.
func TestTracingOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing guard is not meaningful under the race detector")
	}

	const (
		keys   = 128
		ops    = 150_000
		trials = 5
	)
	keybuf := make([][]byte, keys)
	for i := range keybuf {
		keybuf[i] = []byte(fmt.Sprintf("key-%04d", i))
	}
	val := []byte("value-00000000")

	run := func(tr *obs.RequestTracer) time.Duration {
		store, err := faster.Open(faster.Config{Metrics: obs.NewNop()})
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		sess := store.StartSession()
		defer sess.StopSession()
		for _, k := range keybuf {
			if st := sess.Upsert(k, val); st != faster.Ok {
				t.Fatalf("warmup upsert: %v", st)
			}
		}
		var at obs.ActiveTrace
		t0 := time.Now()
		for i := 0; i < ops; i++ {
			start := time.Now().UnixNano()
			tr.Begin(&at, obs.TraceContext{}, "SET", "guard")
			if st := sess.Upsert(keybuf[i%keys], val); st != faster.Ok {
				t.Fatalf("upsert: %v", st)
			}
			end := time.Now().UnixNano()
			at.Span(obs.SpanExec, start, end, uint64(i), 0, "")
			tr.Finish(&at, start, end)
		}
		return time.Since(t0)
	}

	best := map[string]time.Duration{"off": 1<<63 - 1, "on": 1<<63 - 1}
	for i := 0; i < trials; i++ {
		if d := run(nil); d < best["off"] {
			best["off"] = d
		}
		if d := run(obs.NewRequestTracer(obs.DefaultTraceReservoir)); d < best["on"] {
			best["on"] = d
		}
	}

	offRate := float64(ops) / best["off"].Seconds()
	onRate := float64(ops) / best["on"].Seconds()
	t.Logf("traced upsert throughput: tracer off %.0f ops/s, on %.0f ops/s (%.1f%%)",
		offRate, onRate, 100*onRate/offRate)
	if onRate < 0.90*offRate {
		t.Fatalf("request tracing overhead exceeds 10%%: on %.0f ops/s vs off baseline %.0f ops/s",
			onRate, offRate)
	}
}
