package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

// TestNilRequestTracerIsNoop: every method on a nil tracer and a nil active
// trace must be safe — call sites never branch on whether tracing is on.
func TestNilRequestTracerIsNoop(t *testing.T) {
	var tr *RequestTracer
	var at ActiveTrace
	tr.Begin(&at, TraceContext{TraceID: 7}, "SET", "s1")
	at.Span(SpanExec, 1, 2, 0, 0, "")
	tr.Finish(&at, 1, 2)
	var nilAt *ActiveTrace
	tr.Begin(nilAt, TraceContext{}, "SET", "")
	nilAt.Span(SpanExec, 1, 2, 0, 0, "")
	tr.EmitGlobal(SpanReplShip, "tok", 1, 2, 0, 0)
	if got := tr.Slowest(5); got != nil {
		t.Fatalf("nil tracer retained traces: %v", got)
	}
	if got := tr.GlobalSpans(); got != nil {
		t.Fatalf("nil tracer retained global spans: %v", got)
	}
	if d := tr.Dump(5); len(d.Traces) != 0 || d.Finished != 0 {
		t.Fatalf("nil tracer dump not empty: %+v", d)
	}
	if tr.ThresholdNanos() != 0 || tr.Finished() != 0 {
		t.Fatal("nil tracer reported non-zero state")
	}
}

// TestRequestTraceRetention: during warmup everything is retained with the
// full span tree, span IDs chain off the wire-propagated parent, and the
// trace window extends back to the earliest span (the client issue instant).
func TestRequestTraceRetention(t *testing.T) {
	tr := NewRequestTracer(DefaultTraceReservoir)
	tc := TraceContext{TraceID: 42, ParentSpan: 10, IssuedUnixNanos: 900}
	var at ActiveTrace
	tr.Begin(&at, tc, "SET", "sess-a")
	// Server saw the frame at t=1000; the queue span reaches back to issue.
	at.Span(SpanQueue, 900, 1000, 0, 0, "")
	at.Span(SpanExec, 1000, 1400, 17, 0, "")
	at.Span(SpanDurWait, 1400, 1900, 5, 5, "ckpt-0001")
	tr.Finish(&at, 1000, 2000)
	// Finish disarms the scratch: further spans and a double Finish are no-ops.
	at.Span(SpanExec, 1, 2, 0, 0, "")
	tr.Finish(&at, 1, 2)

	traces := tr.Slowest(0)
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	rt := traces[0]
	if rt.TraceID != 42 || rt.Op != "SET" || rt.Session != "sess-a" {
		t.Fatalf("trace identity wrong: %+v", rt)
	}
	if rt.StartUnixNanos != 900 || rt.TotalNanos != 1100 {
		t.Fatalf("window = [%d, +%d], want [900, +1100]", rt.StartUnixNanos, rt.TotalNanos)
	}
	if len(rt.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (root + 3 hops)", len(rt.Spans))
	}
	root := rt.Spans[0]
	if root.Kind != SpanRequest || root.ID != 11 || root.Parent != 10 {
		t.Fatalf("root span wrong: %+v", root)
	}
	for i, sp := range rt.Spans[1:] {
		if sp.Parent != root.ID {
			t.Fatalf("span %d parent = %d, want root %d", i, sp.Parent, root.ID)
		}
		if sp.ID != root.ID+uint64(i)+1 {
			t.Fatalf("span %d id = %d, want sequential", i, sp.ID)
		}
	}
	if dw := rt.Spans[3]; dw.Token != "ckpt-0001" || dw.DurationNanos() != 500 {
		t.Fatalf("durwait span wrong: %+v", dw)
	}
}

// TestRequestTracerAssignsTraceID: a zero TraceContext still traces; the
// server mints a process-unique ID.
func TestRequestTracerAssignsTraceID(t *testing.T) {
	tr := NewRequestTracer(16)
	var at ActiveTrace
	tr.Begin(&at, TraceContext{}, "GET", "")
	tr.Finish(&at, 100, 200)
	traces := tr.Slowest(1)
	if len(traces) != 1 || traces[0].TraceID == 0 {
		t.Fatalf("expected minted trace ID, got %+v", traces)
	}
	if a, b := NewTraceID(), NewTraceID(); a == b || a == 0 || b == 0 {
		t.Fatalf("NewTraceID not unique: %d %d", a, b)
	}
}

// TestTailSamplerThreshold: after warmup, only requests at or above the
// self-adjusted p99 threshold are retained. 10_000 fast requests (~1us) and a
// sprinkle of slow ones (~1ms) must leave the slow ones in the reservoir and
// a threshold between the two populations.
func TestTailSamplerThreshold(t *testing.T) {
	tr := NewRequestTracer(DefaultTraceReservoir)
	const fast, slow = 1_000, 1_000_000
	var at ActiveTrace
	for i := 0; i < 10_000; i++ {
		tr.Begin(&at, TraceContext{}, "GET", "")
		tr.Finish(&at, 0, fast)
	}
	thr := tr.ThresholdNanos()
	if thr == 0 || thr > fast*2 {
		t.Fatalf("threshold after uniform load = %d, want within the fast bucket", thr)
	}
	for i := 0; i < 8; i++ {
		tr.Begin(&at, TraceContext{}, "COMMIT", "")
		tr.Finish(&at, 0, slow)
	}
	got := tr.Slowest(8)
	if len(got) != 8 {
		t.Fatalf("retained %d slow traces, want 8", len(got))
	}
	for _, rt := range got {
		if rt.TotalNanos != slow {
			t.Fatalf("fast request leaked into the tail reservoir: %+v", rt)
		}
	}
	// Slowest must be sorted descending.
	for i := 1; i < len(got); i++ {
		if got[i].TotalNanos > got[i-1].TotalNanos {
			t.Fatal("Slowest not sorted descending")
		}
	}
}

// TestSpanOverflowDropsNotGrows: more spans than the inline capacity are
// dropped and counted, never heap-grown.
func TestSpanOverflowDropsNotGrows(t *testing.T) {
	tr := NewRequestTracer(16)
	var at ActiveTrace
	tr.Begin(&at, TraceContext{}, "SET", "")
	for i := 0; i < maxTraceSpans+5; i++ {
		at.Span(SpanExec, int64(i), int64(i+1), 0, 0, "")
	}
	tr.Finish(&at, 0, 100)
	if d := tr.Dump(1); d.SpanDrops != 5 {
		t.Fatalf("span drops = %d, want 5", d.SpanDrops)
	}
	rt := tr.Slowest(1)[0]
	if len(rt.Spans) != maxTraceSpans+1 {
		t.Fatalf("retained %d spans, want inline cap %d + root", len(rt.Spans), maxTraceSpans)
	}
}

// TestGlobalSpanRing: token-keyed global spans are retained newest-wins and
// returned in start order.
func TestGlobalSpanRing(t *testing.T) {
	tr := NewRequestTracer(16)
	tr.EmitGlobal(SpanReplShip, "tok-b", 200, 300, 4096, 0)
	tr.EmitGlobal(SpanReplAnnounce, "tok-a", 100, 150, 0, 0)
	got := tr.GlobalSpans()
	if len(got) != 2 {
		t.Fatalf("got %d global spans, want 2", len(got))
	}
	if got[0].Token != "tok-a" || got[1].Token != "tok-b" {
		t.Fatalf("global spans not in start order: %+v", got)
	}
	if got[1].Kind != SpanReplShip || got[1].Arg1 != 4096 {
		t.Fatalf("ship span wrong: %+v", got[1])
	}
}

// TestTraceDumpJSONRoundTrip: the dump survives JSON — span kinds encode as
// stable names and decode back.
func TestTraceDumpJSONRoundTrip(t *testing.T) {
	tr := NewRequestTracer(16)
	var at ActiveTrace
	tr.Begin(&at, TraceContext{TraceID: 9}, "RMW", "s")
	at.Span(SpanDurWait, 10, 20, 3, 3, "ckpt-0002")
	tr.Finish(&at, 10, 25)
	tr.EmitGlobal(SpanReplShip, "ckpt-0002", 12, 18, 64, 0)

	raw, err := json.Marshal(tr.Dump(5))
	if err != nil {
		t.Fatal(err)
	}
	var back TraceDump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Traces) != 1 || len(back.Global) != 1 {
		t.Fatalf("round-trip lost data: %d traces, %d global", len(back.Traces), len(back.Global))
	}
	if back.Traces[0].Spans[1].Kind != SpanDurWait {
		t.Fatalf("span kind did not survive JSON: %+v", back.Traces[0].Spans[1])
	}
	if back.Global[0].Kind != SpanReplShip || back.Global[0].Token != "ckpt-0002" {
		t.Fatalf("global span did not survive JSON: %+v", back.Global[0])
	}
	var k SpanKind
	if err := k.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("unknown span kind name accepted")
	}
}

// TestRequestTracerConcurrent exercises the lock-free reservoir and global
// ring from many goroutines; run under -race in CI.
func TestRequestTracerConcurrent(t *testing.T) {
	tr := NewRequestTracer(DefaultTraceReservoir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var at ActiveTrace
			for i := 0; i < 2_000; i++ {
				tr.Begin(&at, TraceContext{}, "SET", "s")
				at.Span(SpanExec, int64(i), int64(i)+100, 0, 0, "")
				tr.Finish(&at, int64(i), int64(i)+200)
				if i%64 == 0 {
					tr.EmitGlobal(SpanReplShip, "tok", int64(i), int64(i)+10, 0, 0)
					tr.Slowest(4)
					tr.GlobalSpans()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Finished() != 16_000 {
		t.Fatalf("finished = %d, want 16000", tr.Finished())
	}
}
