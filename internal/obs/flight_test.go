package obs_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestFlightEmitAndEvents(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	f.Emit(obs.FlightCommitStart, -1, 7, "ckpt-000007", "", 0, 0)
	f.Emit(obs.FlightPhase, 2, 7, "ckpt-000007", "", 1, 2)
	f.Emit(obs.FlightDemarcate, 0, 7, "ckpt-000007", "sess-a", 123, 0)
	f.Emit(obs.FlightPersistDone, 1, 7, "ckpt-000007", "", 4096, 0)

	evs, dropped := f.Events()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Events come back merged in capture order.
	for i := 1; i < len(evs); i++ {
		if evs[i].AtNanos < evs[i-1].AtNanos {
			t.Fatalf("events out of order: %d before %d", evs[i].AtNanos, evs[i-1].AtNanos)
		}
	}
	byKind := map[obs.FlightKind]obs.FlightEvent{}
	for _, e := range evs {
		byKind[e.Kind] = e
	}
	if e := byKind[obs.FlightCommitStart]; e.Shard != -1 || e.Token != "ckpt-000007" || e.Version != 7 {
		t.Fatalf("commit-start event mangled: %+v", e)
	}
	if e := byKind[obs.FlightDemarcate]; e.Session != "sess-a" || e.Arg1 != 123 || e.Shard != 0 {
		t.Fatalf("demarcate event mangled: %+v", e)
	}
	if e := byKind[obs.FlightPhase]; e.Arg1 != 1 || e.Arg2 != 2 || e.Shard != 2 {
		t.Fatalf("phase event mangled: %+v", e)
	}
}

func TestFlightNilSafety(t *testing.T) {
	var f *obs.FlightRecorder
	f.Emit(obs.FlightFlush, 0, 1, "tok", "sess", 1, 2) // must not panic
	if evs, dropped := f.Events(); len(evs) != 0 || dropped != 0 {
		t.Fatalf("nil recorder returned events")
	}
	if f.WallStart() != 0 {
		t.Fatalf("nil recorder WallStart != 0")
	}
}

func TestFlightEmitAllocFree(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	token, session := "ckpt-000042", "sess-abcdef"
	if n := testing.AllocsPerRun(1000, func() {
		f.Emit(obs.FlightFlush, 3, 42, token, session, 512, 99)
	}); n != 0 {
		t.Fatalf("Emit allocates %.1f times per call, want 0", n)
	}
}

// TestFlightWraparoundNeverTorn hammers a deliberately tiny recorder from
// many goroutines until every ring has lapped several times, then checks two
// things: wraparound drops the oldest events (the retained+dropped totals
// add back up to everything emitted), and no surviving event is torn — each
// event's fields are cross-correlated, so a mixed-up slot is detectable.
// Run under -race to also exercise the seqlock protocol.
func TestFlightWraparoundNeverTorn(t *testing.T) {
	const (
		writers   = 8
		perWriter = 30_000
	)
	f := obs.NewFlightRecorder(64) // minimum capacity: guarantees lapping

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			token := fmt.Sprintf("ckpt-%06d", w)
			session := fmt.Sprintf("sess-%02d", w)
			for i := 0; i < perWriter; i++ {
				x := uint64(w)<<32 | uint64(i)
				// arg2 is a deterministic function of arg1; version echoes
				// the writer. A torn slot breaks at least one relation.
				f.Emit(obs.FlightFlush, w, uint64(w)+1, token, session, x, x^0x5bd1e995)
			}
		}()
	}
	wg.Wait()

	evs, dropped := f.Events()
	if dropped == 0 {
		t.Fatalf("expected wraparound drops with capacity 64 and %d events", writers*perWriter)
	}
	if got, want := uint64(len(evs))+dropped, uint64(writers*perWriter); got != want {
		t.Fatalf("retained %d + dropped %d = %d events, emitted %d", len(evs), dropped, got, want)
	}
	for _, e := range evs {
		w := int(e.Arg1 >> 32)
		if w < 0 || w >= writers {
			t.Fatalf("torn event: writer %d out of range: %+v", w, e)
		}
		if e.Arg2 != e.Arg1^0x5bd1e995 {
			t.Fatalf("torn event: arg2 %x does not match arg1 %x: %+v", e.Arg2, e.Arg1, e)
		}
		if e.Shard != w || e.Version != uint64(w)+1 {
			t.Fatalf("torn event: shard/version do not match writer %d: %+v", w, e)
		}
		if e.Token != fmt.Sprintf("ckpt-%06d", w) || e.Session != fmt.Sprintf("sess-%02d", w) {
			t.Fatalf("torn event: token/session do not match writer %d: %+v", w, e)
		}
	}
}

func TestFlightDumpRoundTrip(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	f.Emit(obs.FlightCommitStart, -1, 9, "ckpt-000009", "", 0, 0)
	f.Emit(obs.FlightArtifactWrite, 1, 9, "shard1/meta-ckpt-000009", "", 2048, 0)
	f.Emit(obs.FlightCrashPoint, -1, 0, "before:cpr-manifest-ckpt-000009", "", 0, 0)

	buf := f.EncodeDump()
	d, err := obs.DecodeFlightDump(buf)
	if err != nil {
		t.Fatal(err)
	}
	if d.WallStartNanos != f.WallStart() {
		t.Fatalf("wall start %d != %d", d.WallStartNanos, f.WallStart())
	}
	want, _ := f.Events()
	if len(d.Events) != len(want) {
		t.Fatalf("decoded %d events, want %d", len(d.Events), len(want))
	}
	for i := range want {
		if d.Events[i] != want[i] {
			t.Fatalf("event %d: decoded %+v, want %+v", i, d.Events[i], want[i])
		}
	}
	// The 31-byte crash-point token must survive unclipped.
	found := false
	for _, e := range d.Events {
		if e.Kind == obs.FlightCrashPoint && e.Token == "before:cpr-manifest-ckpt-000009" {
			found = true
		}
	}
	if !found {
		t.Fatalf("crash-point token clipped or lost in round trip")
	}

	// Corruption checks.
	if _, err := obs.DecodeFlightDump(buf[:10]); err == nil {
		t.Fatal("truncated dump decoded without error")
	}
	bad := append([]byte(nil), buf...)
	bad[0] ^= 0xff
	if _, err := obs.DecodeFlightDump(bad); err == nil {
		t.Fatal("bad magic decoded without error")
	}
	if _, err := obs.DecodeFlightDump(buf[:len(buf)-13]); err == nil {
		t.Fatal("torn dump body decoded without error")
	}
}

func TestFlightFilterByToken(t *testing.T) {
	f := obs.NewFlightRecorder(64)
	f.Emit(obs.FlightCommitStart, -1, 1, "ckpt-000001", "", 0, 0)
	f.Emit(obs.FlightArtifactWrite, 0, 1, "meta-ckpt-000001", "", 100, 0)
	f.Emit(obs.FlightCommitStart, -1, 2, "ckpt-000002", "", 0, 0)
	f.Emit(obs.FlightEpochBump, 0, 0, "", "", 3, 0)
	evs, _ := f.Events()

	got := obs.FilterFlightEvents(evs, "ckpt-000001")
	if len(got) != 2 {
		t.Fatalf("filter kept %d events, want 2 (commit-start + containing artifact name)", len(got))
	}
	for _, e := range got {
		if e.Token != "ckpt-000001" && e.Token != "meta-ckpt-000001" {
			t.Fatalf("filter kept unrelated event %+v", e)
		}
	}
	if all := obs.FilterFlightEvents(evs, ""); len(all) != len(evs) {
		t.Fatalf("empty token filtered events out")
	}
}

// TestRegistrySnapshotDuringRegistration races Snapshot against concurrent
// metric registration and updates: late registration (e.g. a shard opening
// mid-run, or registerLagGauges after recovery) must never corrupt or wedge a
// concurrent scrape. Run under -race.
func TestRegistrySnapshotDuringRegistration(t *testing.T) {
	reg := obs.NewRegistry()
	const writers, per = 4, 200

	// A scraper snapshots continuously while writers register and update new
	// metrics of every type.
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				reg.Snapshot()
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				i := i
				reg.Counter(fmt.Sprintf("reg_race_counter_%d_%d", g, i)).Add(uint64(i))
				reg.Gauge(fmt.Sprintf("reg_race_gauge_%d_%d", g, i)).Set(int64(i))
				reg.Histogram(fmt.Sprintf("reg_race_hist_%d_%d", g, i)).ObserveValue(uint64(i))
				reg.GaugeFunc(fmt.Sprintf("reg_race_gf_%d_%d", g, i), func() int64 { return int64(i) })
			}
		}()
	}
	wg.Wait()
	close(stop)
	scraper.Wait()

	snap := reg.Snapshot()
	if got := len(snap.Counters); got != writers*per {
		t.Fatalf("final snapshot has %d counters, want %d", got, writers*per)
	}
	if got := len(snap.Histograms); got != writers*per {
		t.Fatalf("final snapshot has %d histograms, want %d", got, writers*per)
	}
	if got := len(snap.Gauges); got != 2*writers*per {
		t.Fatalf("final snapshot has %d gauges, want %d", got, 2*writers*per)
	}
}
