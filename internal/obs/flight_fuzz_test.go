package obs

import (
	"testing"
)

// FuzzFlightEvent round-trips arbitrary events through the fixed-size binary
// record codec: every encodable event must decode back to itself (modulo the
// documented token/session clipping), and decode must never panic or accept
// out-of-range lengths.
func FuzzFlightEvent(f *testing.F) {
	f.Add(uint8(FlightPhase), 0, uint64(7), "ckpt-000007", "sess-a", uint64(1), uint64(2), int64(12345))
	f.Add(uint8(FlightArtifactWrite), -1, uint64(1), "shard0/snapshot-ckpt-000001", "", uint64(4096), uint64(0), int64(0))
	f.Add(uint8(FlightCrashPoint), -1, uint64(0), "before:cpr-manifest-ckpt-000001", "", uint64(0), uint64(0), int64(9))
	f.Add(uint8(255), 65534, ^uint64(0), "a-token-that-is-much-longer-than-the-thirty-two-byte-field-allows", "a-session-longer-than-sixteen", ^uint64(0), uint64(42), int64(-1))

	f.Fuzz(func(t *testing.T, kind uint8, shard int, version uint64, token, session string, arg1, arg2 uint64, at int64) {
		in := FlightEvent{
			Ring:    shard & 0xff,
			Seq:     arg1 ^ arg2,
			AtNanos: at,
			Kind:    FlightKind(kind),
			Shard:   shard,
			Version: version,
			Arg1:    arg1,
			Arg2:    arg2,
			Token:   token,
			Session: session,
		}
		buf := appendFlightEvent(nil, in)
		if len(buf) != flightRecSize {
			t.Fatalf("encoded %d bytes, want %d", len(buf), flightRecSize)
		}
		out, err := decodeFlightEvent(buf)
		if err != nil {
			t.Fatalf("decode rejected own encoding: %v", err)
		}

		// The codec clips what its fixed-width fields cannot carry; apply the
		// same clipping to the input and require equality beyond that.
		want := in
		if len(want.Token) > FlightTokenBytes {
			want.Token = want.Token[:FlightTokenBytes]
		}
		if len(want.Session) > FlightSessionBytes {
			want.Session = want.Session[:FlightSessionBytes]
		}
		want.Ring = int(uint32(want.Ring))
		want.Shard = int(int32(want.Shard))
		if out != want {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, out)
		}

		// Re-encode must be byte-identical: the codec is canonical.
		if buf2 := appendFlightEvent(nil, out); string(buf2) != string(buf) {
			t.Fatalf("re-encode differs from first encoding")
		}

		// Declared string lengths beyond the field widths must be rejected,
		// not read out of bounds.
		bad := append([]byte(nil), buf...)
		bad[49] = FlightTokenBytes + 1
		if _, err := decodeFlightEvent(bad); err == nil {
			t.Fatal("oversized token length accepted")
		}
		bad[49], bad[50] = byte(len(want.Token)), FlightSessionBytes+1
		if _, err := decodeFlightEvent(bad); err == nil {
			t.Fatal("oversized session length accepted")
		}
	})
}
