package obs

import (
	"sync"
	"time"
)

// Event kinds recorded by the Tracer.
const (
	// KindPhase is a checkpoint state-machine transition (From -> Phase).
	KindPhase = "phase"
	// KindSession is a per-session/worker thread-crossing event: the moment
	// one participant acknowledged a phase ("ack-prepare"), demarcated its
	// CPR point ("demarcate"), or left an active commit ("drop").
	KindSession = "session"
	// KindDrain is an epoch-drain measurement: how long after a phase was
	// published every registered thread had observed it.
	KindDrain = "drain"
)

// Event is one tracer record. AtNanos is monotonic time since the tracer was
// created, so event deltas are exact even across wall-clock adjustments.
type Event struct {
	Seq     uint64 `json:"seq"`
	AtNanos int64  `json:"at_ns"`
	Kind    string `json:"kind"`
	Token   string `json:"token,omitempty"`
	Version uint64 `json:"version,omitempty"`
	// Phase transitions: From -> Phase. Drain events set Phase to the phase
	// whose publication was drained.
	Phase string `json:"phase,omitempty"`
	From  string `json:"from,omitempty"`
	// Session events.
	Session string `json:"session,omitempty"`
	Event   string `json:"event,omitempty"`
	Serial  uint64 `json:"serial,omitempty"`
	// Drain events.
	DurationNanos int64 `json:"duration_ns,omitempty"`
}

// PhaseSpan is one computed phase occupancy interval of the timeline.
type PhaseSpan struct {
	Phase         string `json:"phase"`
	Token         string `json:"token,omitempty"`
	Version       uint64 `json:"version,omitempty"`
	StartNanos    int64  `json:"start_ns"`
	EndNanos      int64  `json:"end_ns"`
	DurationNanos int64  `json:"duration_ns"`
	// Open marks the most recent phase, still running at snapshot time;
	// EndNanos is then the snapshot instant.
	Open bool `json:"open,omitempty"`
}

// Timeline is the exportable trace: raw events plus per-phase spans derived
// from the phase-transition events.
type Timeline struct {
	Events []Event     `json:"events"`
	Spans  []PhaseSpan `json:"spans"`
	// Dropped counts events lost to ring-buffer overflow (oldest first).
	Dropped uint64 `json:"dropped,omitempty"`
}

// DefaultTracerCapacity is the event ring size used when a component creates
// its own tracer.
const DefaultTracerCapacity = 4096

// Tracer records checkpoint state-machine activity into a bounded ring.
// Recording takes a short mutex — transitions and session crossings are rare
// relative to data operations, so this is far off the hot path. The nil
// Tracer is a valid no-op.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	seq     uint64
	buf     []Event
	head    int // index of oldest event
	n       int // live events in buf
	dropped uint64
}

// NewTracer returns a tracer retaining up to capacity events (oldest events
// are dropped, and counted, once the ring is full).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{start: time.Now(), buf: make([]Event, capacity)}
}

func (t *Tracer) record(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = t.seq
	t.seq++
	// Timestamped under the lock: buffer order == timestamp order.
	e.AtNanos = time.Since(t.start).Nanoseconds()
	if t.n == len(t.buf) {
		t.buf[t.head] = e
		t.head = (t.head + 1) % len(t.buf)
		t.dropped++
	} else {
		t.buf[(t.head+t.n)%len(t.buf)] = e
		t.n++
	}
	t.mu.Unlock()
}

// Phase records a state-machine transition from -> to for the given commit.
func (t *Tracer) Phase(token string, version uint64, from, to string) {
	t.record(Event{Kind: KindPhase, Token: token, Version: version, From: from, Phase: to})
}

// Session records a participant thread-crossing event ("ack-prepare",
// "demarcate", "drop") with the participant's serial/sequence at the crossing.
func (t *Tracer) Session(token, session, event string, version, serial uint64) {
	t.record(Event{Kind: KindSession, Token: token, Session: session, Event: event,
		Version: version, Serial: serial})
}

// Drain records that the phase published for token became visible to every
// registered thread d after publication (the epoch-drain latency).
func (t *Tracer) Drain(token, phase string, version uint64, d time.Duration) {
	t.record(Event{Kind: KindDrain, Token: token, Phase: phase, Version: version,
		DurationNanos: d.Nanoseconds()})
}

// Events returns the retained events, oldest first, plus the dropped count.
func (t *Tracer) Events() ([]Event, uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.head+i)%len(t.buf)]
	}
	return out, t.dropped
}

// Timeline exports the retained events and computes phase spans: each phase
// transition opens a span that the next transition closes. The last span is
// marked Open and closed at the snapshot instant.
func (t *Tracer) Timeline() Timeline {
	if t == nil {
		return Timeline{}
	}
	events, dropped := t.Events()
	now := time.Since(t.start).Nanoseconds()
	tl := Timeline{Events: events, Dropped: dropped}
	var cur *PhaseSpan
	for _, e := range events {
		if e.Kind != KindPhase {
			continue
		}
		if cur != nil {
			cur.EndNanos = e.AtNanos
			cur.DurationNanos = cur.EndNanos - cur.StartNanos
			tl.Spans = append(tl.Spans, *cur)
		}
		cur = &PhaseSpan{Phase: e.Phase, Token: e.Token, Version: e.Version, StartNanos: e.AtNanos}
	}
	if cur != nil {
		cur.EndNanos = now
		cur.DurationNanos = now - cur.StartNanos
		cur.Open = true
		tl.Spans = append(tl.Spans, *cur)
	}
	return tl
}
