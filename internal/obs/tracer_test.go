package obs

import (
	"testing"
	"time"
)

func TestTracerOrderingAndTimestamps(t *testing.T) {
	tr := NewTracer(64)
	tr.Phase("tok", 1, "rest", "prepare")
	tr.Session("tok", "s1", "ack-prepare", 1, 10)
	tr.Phase("tok", 1, "prepare", "in-progress")
	tr.Session("tok", "s1", "demarcate", 1, 12)
	tr.Drain("tok", "prepare", 1, 3*time.Microsecond)
	events, dropped := tr.Events()
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(events) != 5 {
		t.Fatalf("events = %d, want 5", len(events))
	}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if i > 0 && e.AtNanos < events[i-1].AtNanos {
			t.Fatalf("timestamps decrease at %d: %d < %d", i, e.AtNanos, events[i-1].AtNanos)
		}
	}
	if events[0].Kind != KindPhase || events[0].Phase != "prepare" || events[0].From != "rest" {
		t.Fatalf("bad phase event: %+v", events[0])
	}
	if events[1].Kind != KindSession || events[1].Serial != 10 {
		t.Fatalf("bad session event: %+v", events[1])
	}
	if events[4].Kind != KindDrain || events[4].DurationNanos != 3000 {
		t.Fatalf("bad drain event: %+v", events[4])
	}
}

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 40; i++ {
		tr.Phase("tok", uint64(i), "a", "b")
	}
	events, dropped := tr.Events()
	if len(events) != 16 {
		t.Fatalf("retained = %d, want 16", len(events))
	}
	if dropped != 24 {
		t.Fatalf("dropped = %d, want 24", dropped)
	}
	// Oldest retained event is number 24 (0-based): the ring keeps the tail.
	if events[0].Version != 24 || events[15].Version != 39 {
		t.Fatalf("retained range [%d, %d], want [24, 39]", events[0].Version, events[15].Version)
	}
	if tl := tr.Timeline(); tl.Dropped != 24 {
		t.Fatalf("timeline dropped = %d, want 24", tl.Dropped)
	}
}

func TestTimelineSpans(t *testing.T) {
	tr := NewTracer(64)
	tr.Phase("tok", 1, "rest", "prepare")
	tr.Phase("tok", 1, "prepare", "in-progress")
	tr.Phase("tok", 1, "in-progress", "rest")
	tl := tr.Timeline()
	if len(tl.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tl.Spans))
	}
	for i, want := range []string{"prepare", "in-progress", "rest"} {
		sp := tl.Spans[i]
		if sp.Phase != want {
			t.Fatalf("span %d phase = %q, want %q", i, sp.Phase, want)
		}
		if sp.DurationNanos != sp.EndNanos-sp.StartNanos || sp.DurationNanos < 0 {
			t.Fatalf("span %d inconsistent: %+v", i, sp)
		}
		if i > 0 && sp.StartNanos != tl.Spans[i-1].EndNanos {
			t.Fatalf("span %d not contiguous with predecessor", i)
		}
	}
	if tl.Spans[0].Open || tl.Spans[1].Open {
		t.Fatal("closed span marked open")
	}
	if !tl.Spans[2].Open {
		t.Fatal("last span not marked open")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	tr.Phase("t", 1, "a", "b")
	tr.Session("t", "s", "e", 1, 1)
	tr.Drain("t", "p", 1, time.Second)
	if events, dropped := tr.Events(); events != nil || dropped != 0 {
		t.Fatal("nil tracer returned events")
	}
	if tl := tr.Timeline(); len(tl.Events) != 0 || len(tl.Spans) != 0 {
		t.Fatal("nil tracer returned a timeline")
	}
}
