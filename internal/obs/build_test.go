package obs

import (
	"strings"
	"testing"
)

func TestInfoMetric(t *testing.T) {
	r := NewRegistry()
	r.Info("faster_build_info", map[string]string{"version": "v1.2", "go": "go1.22"})
	snap := r.Snapshot()
	labels := snap.Infos["faster_build_info"]
	if labels["version"] != "v1.2" || labels["go"] != "go1.22" {
		t.Fatalf("info labels = %v", labels)
	}

	// Info follows the registry's prefix like every other metric kind.
	r.WithPrefix("shard0_").Info("thing_info", map[string]string{"a": "b"})
	if _, ok := r.Snapshot().Infos["shard0_thing_info"]; !ok {
		t.Fatal("prefixed info not registered under the prefixed name")
	}

	// The snapshot holds a copy: mutating the caller's map later is invisible.
	m := map[string]string{"k": "v1"}
	r.Info("mut_info", m)
	m["k"] = "v2"
	if got := r.Snapshot().Infos["mut_info"]["k"]; got != "v1" {
		t.Fatalf("info label mutated after registration: %q", got)
	}
}

func TestInfoPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Info("faster_build_info", map[string]string{
		"version": "v1.2",
		"note":    "has \"quotes\" and\nnewline",
	})
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE faster_build_info gauge") {
		t.Fatalf("missing TYPE header:\n%s", out)
	}
	// Labels are sorted, values escaped, the sample value is the constant 1.
	if !strings.Contains(out, `faster_build_info{note="has \"quotes\" and\nnewline",version="v1.2"} 1`) {
		t.Fatalf("info sample not rendered in exposition format:\n%s", out)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	r := NewRegistry()
	RegisterBuildInfo(r, map[string]string{"shards": "4"})
	labels := r.Snapshot().Infos["faster_build_info"]
	if labels == nil {
		t.Fatal("faster_build_info not registered")
	}
	for _, k := range []string{"version", "go", "shards"} {
		if labels[k] == "" {
			t.Errorf("label %q empty: %v", k, labels)
		}
	}
	if labels["shards"] != "4" {
		t.Errorf("extra label not merged: %v", labels)
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	snap := r.Snapshot()
	if g := snap.Gauges["go_goroutines"]; g < 1 {
		t.Errorf("go_goroutines = %d, want >= 1", g)
	}
	if g := snap.Gauges["go_heap_alloc_bytes"]; g <= 0 {
		t.Errorf("go_heap_alloc_bytes = %d, want > 0", g)
	}
	if g := snap.Gauges["go_heap_sys_bytes"]; g <= 0 {
		t.Errorf("go_heap_sys_bytes = %d, want > 0", g)
	}
	if _, ok := snap.Gauges["go_gc_cycles_total"]; !ok {
		t.Error("go_gc_cycles_total not registered")
	}
	if g, ok := snap.Gauges["faster_uptime_seconds"]; !ok || g < 0 {
		t.Errorf("faster_uptime_seconds = %d (present=%v)", g, ok)
	}
}
