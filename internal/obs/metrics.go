// Package obs is the repository's unified observability layer: a
// dependency-free (stdlib-only) metrics registry plus a CPR phase tracer
// (tracer.go) and an HTTP introspection mux (http.go).
//
// The registry is designed for the CPR hot path: a counter increment is one
// atomic add to a per-core-style shard (no locks, no map lookups — call sites
// hold *Counter pointers resolved at registration time). Disabling metrics
// does not change the shape of the hot path: a nil *Counter (returned by a
// nil or nop Registry) is a safe no-op, so instrumented code never branches
// on configuration.
//
// Metric names are a stable interface; see the "Observability" section of
// README.md for the full catalogue.
package obs

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

const cacheLine = 64

// counterShard is one padded slot of a sharded counter.
type counterShard struct {
	n atomic.Uint64
	_ [cacheLine - 8]byte
}

// numShards is the per-counter shard count: the next power of two covering
// the machine's CPUs, capped so idle counters stay small.
var numShards = func() int {
	n := 1
	for n < runtime.NumCPU() {
		n <<= 1
	}
	if n > 64 {
		n = 64
	}
	return n
}()

// shardHint returns a cheap goroutine-affine shard index. Distinct goroutines
// have distinct stacks, so the address of a stack variable (coarsened to 1
// KiB so call-depth differences within one goroutine mostly collapse) spreads
// concurrent writers across shards. Collisions only cost cache-line sharing,
// never correctness.
func shardHint() uint64 {
	var b byte
	return uint64(uintptr(unsafe.Pointer(&b)) >> 10)
}

// Counter is a monotonically increasing, per-core-sharded counter. The nil
// Counter is a valid no-op sink: every method is nil-receiver-safe, so
// uninstrumented components pay only a predictable branch.
type Counter struct {
	name   string
	mask   uint64
	shards []counterShard
}

func newCounter(name string) *Counter {
	return &Counter{name: name, mask: uint64(numShards - 1), shards: make([]counterShard, numShards)}
}

// Add adds n: one atomic add on a goroutine-affine shard.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[shardHint()&c.mask].n.Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value sums all shards.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value. The nil Gauge is a no-op.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations with
// bits.Len64(nanos) == i, i.e. [2^(i-1), 2^i) ns, covering 1 ns to ~1.6 days.
const histBuckets = 48

// Histogram is a fixed-bucket log2 histogram (of latencies in nanoseconds,
// or of any other non-negative value via ObserveValue). Observe costs three
// atomic adds (bucket, count, sum) plus a CAS only when a new maximum is set.
// The nil Histogram is a no-op.
type Histogram struct {
	name    string
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveValue(uint64(d.Nanoseconds()))
}

// ObserveValue records one raw value. The "nanos" in snapshot field names is
// then just a unit label — the histogram works for any non-negative quantity
// (e.g. a durability lag in operations).
func (h *Histogram) ObserveValue(n uint64) {
	if h == nil {
		return
	}
	b := bits.Len64(n)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(n)
	for {
		old := h.max.Load()
		if n <= old || h.max.CompareAndSwap(old, n) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// snapshot captures the histogram's current distribution.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	var counts [histBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		s.Count += counts[i]
	}
	s.SumNanos = h.sum.Load()
	s.MaxNanos = h.max.Load()
	s.Buckets = counts[:]
	if s.Count == 0 {
		return s
	}
	s.MeanNanos = float64(s.SumNanos) / float64(s.Count)
	quantile := func(q float64) uint64 {
		target := uint64(q * float64(s.Count))
		if target == 0 {
			target = 1
		}
		var seen uint64
		for i, c := range counts {
			seen += c
			if seen >= target {
				// Midpoint of bucket i, which covers [2^(i-1), 2^i) ns
				// (bucket 0 is exactly 0). The midpoint bounds the error at
				// a factor of 1.5 either way, versus 2x for a bucket bound.
				if i == 0 {
					return 0
				}
				lo := uint64(1) << uint(i-1)
				hi := uint64(1)<<uint(i) - 1
				mid := lo + (hi-lo)/2
				if mid > s.MaxNanos {
					mid = s.MaxNanos
				}
				return mid
			}
		}
		return s.MaxNanos
	}
	s.P50Nanos = quantile(0.50)
	s.P90Nanos = quantile(0.90)
	s.P95Nanos = quantile(0.95)
	s.P99Nanos = quantile(0.99)
	s.P999Nanos = quantile(0.999)
	return s
}

// HistogramSnapshot is a point-in-time distribution summary. Quantiles are
// log2-bucket midpoints: the quantile's bucket covers [2^(i-1), 2^i), so the
// reported midpoint is within a factor of 1.5 of the true value (at most 50%
// above, at most 25% below), and never above Max. Max is exact. Mean is exact
// up to concurrent-update skew.
type HistogramSnapshot struct {
	Count     uint64  `json:"count"`
	SumNanos  uint64  `json:"sum_ns"`
	MeanNanos float64 `json:"mean_ns"`
	P50Nanos  uint64  `json:"p50_ns"`
	P90Nanos  uint64  `json:"p90_ns"`
	P95Nanos  uint64  `json:"p95_ns"`
	P99Nanos  uint64  `json:"p99_ns"`
	P999Nanos uint64  `json:"p999_ns"`
	MaxNanos  uint64  `json:"max_ns"`

	// Buckets are the raw per-bucket counts (bucket i covers values with
	// bits.Len64(v) == i). Excluded from JSON — consumed by the Prometheus
	// text exposition, which needs cumulative series.
	Buckets []uint64 `json:"-"`
}

// Registry names and snapshots a set of metrics. Registration (Counter,
// Gauge, Histogram, GaugeFunc) takes a lock and is meant for setup time; the
// returned pointers are then updated lock-free. A nil *Registry — and one
// returned by NewNop — hands out nil metrics, turning all updates into
// no-ops with no call-site changes.
type Registry struct {
	nop bool

	// prefix is prepended to every metric name registered through this
	// handle; root points at the registry owning the maps (nil = self).
	// Prefixed views share the root's storage, so a single Snapshot of the
	// root sees every subsystem's metrics. See WithPrefix.
	prefix string
	root   *Registry

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() int64
	hists    map[string]*Histogram
	help     map[string]string
	infos    map[string]map[string]string
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
		help:     make(map[string]string),
		infos:    make(map[string]map[string]string),
	}
}

// NewNop returns a registry whose metrics are all no-op sinks: registration
// returns nil pointers and Snapshot is empty. Use it to disable collection.
func NewNop() *Registry { return &Registry{nop: true} }

// base returns the registry owning the metric storage (self unless this is a
// WithPrefix view).
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// WithPrefix returns a view of the registry that prepends prefix to every
// metric name registered through it. The view shares the parent's storage —
// Snapshot on the parent includes all prefixed metrics — so per-instance
// subsystems (e.g. the shards of a partitioned store) can register their
// fixed metric names without colliding. Prefixes compose: a view of a view
// concatenates. A nil or nop registry returns itself.
func (r *Registry) WithPrefix(prefix string) *Registry {
	if r == nil || r.nop || prefix == "" {
		return r
	}
	return &Registry{prefix: r.prefix + prefix, root: r.base()}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil || r.nop {
		return nil
	}
	name = r.prefix + name
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.counters[name]
	if !ok {
		c = newCounter(name)
		b.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil || r.nop {
		return nil
	}
	name = r.prefix + name
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	g, ok := b.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		b.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil || r.nop {
		return nil
	}
	name = r.prefix + name
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	h, ok := b.hists[name]
	if !ok {
		h = &Histogram{name: name}
		b.hists[name] = h
	}
	return h
}

// SetHelp attaches a human-readable description to the named metric
// (prefixed like registration). The text surfaces as a `# HELP` line in the
// Prometheus exposition; special characters are escaped at render time, so
// free text is fine here.
func (r *Registry) SetHelp(name, text string) {
	if r == nil || r.nop {
		return
	}
	name = r.prefix + name
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.help[name] = text
}

// Info registers a constant info metric (the Prometheus build-info idiom): a
// gauge whose value is always 1 and whose payload is its label set. Snapshots
// carry the labels verbatim; the Prometheus exposition renders
// `name{k="v",...} 1`. Re-registering a name replaces its labels. The labels
// map is copied, so the caller may reuse it.
func (r *Registry) Info(name string, labels map[string]string) {
	if r == nil || r.nop {
		return
	}
	name = r.prefix + name
	b := r.base()
	cp := make(map[string]string, len(labels))
	for k, v := range labels {
		cp[k] = v
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.infos[name] = cp
}

// GaugeFunc registers a callback evaluated at snapshot time — the natural fit
// for values the system already maintains (log region offsets, session
// counts). fn must be safe to call from any goroutine. Re-registering a name
// replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || r.nop {
		return
	}
	name = r.prefix + name
	b := r.base()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gaugeFns[name] = fn
}

// Snapshot captures every registered metric. The result marshals to stable
// (key-sorted) JSON.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`

	// Infos carries constant info metrics (see Registry.Info): metric name to
	// label set; the metric's value is always 1.
	Infos map[string]map[string]string `json:"infos,omitempty"`

	// Help carries metric descriptions for the Prometheus exposition.
	// Excluded from JSON so the /metrics document and bench metric deltas
	// stay value-only.
	Help map[string]string `json:"-"`
}

// Snapshot evaluates all metrics, including gauge callbacks. Snapshotting a
// WithPrefix view captures the whole underlying registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil || r.nop {
		return s
	}
	r = r.base()
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for n, fn := range r.gaugeFns {
		fns[n] = fn
	}
	s.Help = make(map[string]string, len(r.help))
	for n, h := range r.help {
		s.Help[n] = h
	}
	if len(r.infos) > 0 {
		s.Infos = make(map[string]map[string]string, len(r.infos))
		for n, labels := range r.infos {
			s.Infos[n] = labels
		}
	}
	r.mu.Unlock()

	s.Counters = make(map[string]uint64, len(counters))
	for _, c := range counters {
		s.Counters[c.name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(gauges)+len(fns))
	for _, g := range gauges {
		s.Gauges[g.name] = g.Value()
	}
	// Callbacks run outside the registry lock: they may take subsystem locks.
	for n, fn := range fns {
		s.Gauges[n] = fn()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(hists))
	for _, h := range hists {
		s.Histograms[h.name] = h.snapshot()
	}
	return s
}

// Sub returns the delta s - prev: counters and histogram count/sum subtract
// (missing keys in prev count as zero); gauges and histogram quantiles keep
// s's point-in-time values. Use it to scope metrics to one experiment run.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Infos:      s.Infos,
		Help:       s.Help,
	}
	for k, v := range s.Counters {
		out.Counters[k] = v - prev.Counters[k]
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		p := prev.Histograms[k]
		v.Count -= p.Count
		v.SumNanos -= p.SumNanos
		if v.Count > 0 {
			v.MeanNanos = float64(v.SumNanos) / float64(v.Count)
		} else {
			v.MeanNanos = 0
		}
		out.Histograms[k] = v
	}
	return out
}
