package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// promName sanitizes a metric name for the Prometheus text exposition:
// [a-zA-Z0-9_:] survive, everything else becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line's text per the exposition format: backslash
// and line feed are the only characters with escape sequences there.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes a label value per the exposition format: backslash,
// double quote, and line feed. The only label this package emits today is the
// numeric `le`, which never needs it, but every label value is routed through
// here so a future string-valued label cannot silently break the format.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// writePromHeader emits the optional `# HELP` line (escaped) followed by the
// mandatory `# TYPE` line, in that order — the spec requires HELP and TYPE to
// precede the metric's first sample, and convention puts HELP first.
func writePromHeader(w io.Writer, pn, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", pn, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", pn, typ)
	return err
}

// WritePrometheus renders a snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, each
// preceded by its `# HELP` (when registered via SetHelp) and `# TYPE` lines.
// Output is sorted by metric name, so it is stable across calls.
func WritePrometheus(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if err := writePromHeader(w, pn, s.Help[n], "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if err := writePromHeader(w, pn, s.Help[n], "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", pn, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Infos {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if err := writePromHeader(w, pn, s.Help[n], "gauge"); err != nil {
			return err
		}
		labels := s.Infos[n]
		keys := make([]string, 0, len(labels))
		for k := range labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=\"%s\"", promName(k), escapeLabelValue(labels[k]))
		}
		if _, err := fmt.Fprintf(w, "%s{%s} 1\n", pn, b.String()); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if err := writePromHeader(w, promName(n), s.Help[n], "histogram"); err != nil {
			return err
		}
		if err := writePromHistogram(w, promName(n), s.Histograms[n]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram renders one histogram. Bucket i holds values in
// [2^(i-1), 2^i), so its inclusive Prometheus upper bound is 2^i - 1 (0 for
// bucket 0). Empty trailing buckets are elided; the mandatory +Inf bucket
// always carries the total count.
func writePromHistogram(w io.Writer, pn string, h HistogramSnapshot) error {
	var cum uint64
	last := -1
	for i, c := range h.Buckets {
		if c != 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		cum += h.Buckets[i]
		ub := uint64(0)
		if i > 0 {
			ub = uint64(1)<<uint(i) - 1
		}
		le := escapeLabelValue(strconv.FormatUint(ub, 10))
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, h.Count, pn, h.SumNanos, pn, h.Count)
	return err
}

// PrometheusHandler serves the registry in the Prometheus text exposition
// format (the scrape-friendly sibling of the JSON MetricsHandler).
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r.Snapshot()) //nolint:errcheck // best-effort: the client went away
	})
}
