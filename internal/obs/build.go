package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildVersion is the version string stamped into faster_build_info. It
// defaults to the module's VCS revision (when built with module info) and can
// be overridden at link time:
//
//	go build -ldflags "-X repro/internal/obs.BuildVersion=v1.2.3" ./cmd/cprserver
var BuildVersion = ""

// buildRevision extracts the VCS revision from the binary's build info, if
// embedded ("unknown" otherwise).
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			if len(s.Value) > 12 {
				return s.Value[:12]
			}
			return s.Value
		}
	}
	return "unknown"
}

// RegisterBuildInfo registers the faster_build_info info metric: a constant
// gauge of value 1 whose labels identify the running binary — version (the
// linker-stamped BuildVersion, falling back to the VCS revision), the Go
// toolchain, and any caller-supplied extras (e.g. shards). Call it once per
// process at startup.
func RegisterBuildInfo(r *Registry, extra map[string]string) {
	if r == nil {
		return
	}
	version := BuildVersion
	if version == "" {
		version = buildRevision()
	}
	labels := map[string]string{
		"version": version,
		"go":      runtime.Version(),
	}
	for k, v := range extra {
		labels[k] = v
	}
	r.Info("faster_build_info", labels)
	r.SetHelp("faster_build_info", "Build and runtime identity of this process (constant 1).")
}

// memStatsCache rate-limits runtime.ReadMemStats for the heap gauges: one
// read serves every gauge of one snapshot (and any snapshot within 100ms),
// keeping the stop-the-world cost of a scrape to a single ReadMemStats.
type memStatsCache struct {
	mu sync.Mutex
	at time.Time
	ms runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); now.Sub(c.at) > 100*time.Millisecond {
		runtime.ReadMemStats(&c.ms)
		c.at = now
	}
	return c.ms
}

// RegisterRuntimeMetrics registers process-level runtime gauges:
//
//	faster_uptime_seconds  seconds since this call (process start, in practice)
//	go_goroutines          live goroutine count
//	go_heap_alloc_bytes    bytes of allocated heap objects (MemStats.HeapAlloc)
//	go_heap_sys_bytes      heap memory obtained from the OS (MemStats.HeapSys)
//	go_gc_cycles_total     completed GC cycles (MemStats.NumGC)
//
// All are GaugeFuncs evaluated at snapshot time; the two heap gauges share
// one rate-limited ReadMemStats. Call it once per process at startup.
func RegisterRuntimeMetrics(r *Registry) {
	if r == nil {
		return
	}
	start := time.Now()
	cache := &memStatsCache{}
	r.GaugeFunc("faster_uptime_seconds", func() int64 { return int64(time.Since(start).Seconds()) })
	r.SetHelp("faster_uptime_seconds", "Seconds since the process registered its runtime metrics.")
	r.GaugeFunc("go_goroutines", func() int64 { return int64(runtime.NumGoroutine()) })
	r.SetHelp("go_goroutines", "Live goroutine count.")
	r.GaugeFunc("go_heap_alloc_bytes", func() int64 { ms := cache.read(); return int64(ms.HeapAlloc) })
	r.SetHelp("go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	r.GaugeFunc("go_heap_sys_bytes", func() int64 { ms := cache.read(); return int64(ms.HeapSys) })
	r.SetHelp("go_heap_sys_bytes", "Heap memory obtained from the OS.")
	r.GaugeFunc("go_gc_cycles_total", func() int64 { ms := cache.read(); return int64(ms.NumGC) })
	r.SetHelp("go_gc_cycles_total", "Completed GC cycles.")
}
