//go:build race

package obs_test

// raceEnabled reports whether the race detector is compiled in; timing-based
// guards skip themselves when it is.
const raceEnabled = true
