package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentSum(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops")
	const goroutines = 16
	const each = 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Fatalf("counter = %d, want %d", got, goroutines*each)
	}
	if got := reg.Snapshot().Counters["ops"]; got != goroutines*each {
		t.Fatalf("snapshot counter = %d, want %d", got, goroutines*each)
	}
}

func TestCounterSameNameSameCounter(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x")
	b := reg.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(3)
	b.Add(4)
	if got := a.Value(); got != 7 {
		t.Fatalf("value = %d, want 7", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	if got := reg.Snapshot().Gauges["depth"]; got != 7 {
		t.Fatalf("snapshot gauge = %d, want 7", got)
	}
}

func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := int64(41)
	reg.GaugeFunc("live", func() int64 { return v })
	v = 42
	if got := reg.Snapshot().Gauges["live"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	// 90 fast observations (~1us) and 10 slow (~1ms).
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := reg.Snapshot().Histograms["lat"]
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if s.MaxNanos != uint64(time.Millisecond.Nanoseconds()) {
		t.Fatalf("max = %d, want %d", s.MaxNanos, time.Millisecond.Nanoseconds())
	}
	// p50 lands in the ~1us bucket (upper bound < 2us), p99 in the ~1ms one.
	if s.P50Nanos >= 2048 {
		t.Fatalf("p50 = %dns, want < 2048ns", s.P50Nanos)
	}
	if s.P99Nanos < uint64(time.Millisecond.Nanoseconds())/2 {
		t.Fatalf("p99 = %dns, want >= %dns", s.P99Nanos, time.Millisecond.Nanoseconds()/2)
	}
	if s.MeanNanos < float64(time.Microsecond.Nanoseconds()) {
		t.Fatalf("mean = %v, implausibly small", s.MeanNanos)
	}
}

func TestSnapshotSub(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops")
	h := reg.Histogram("lat")
	c.Add(5)
	h.Observe(time.Microsecond)
	before := reg.Snapshot()
	c.Add(7)
	h.Observe(time.Microsecond)
	h.Observe(time.Microsecond)
	delta := reg.Snapshot().Sub(before)
	if got := delta.Counters["ops"]; got != 7 {
		t.Fatalf("delta counter = %d, want 7", got)
	}
	if got := delta.Histograms["lat"].Count; got != 2 {
		t.Fatalf("delta histogram count = %d, want 2", got)
	}
}

func TestNilAndNopSafety(t *testing.T) {
	// All of these must be no-ops, not panics.
	var nilReg *Registry
	for _, reg := range []*Registry{nilReg, NewNop()} {
		c := reg.Counter("x")
		c.Inc()
		c.Add(10)
		if c.Value() != 0 {
			t.Fatal("nil counter has a value")
		}
		g := reg.Gauge("y")
		g.Set(1)
		g.Add(1)
		if g.Value() != 0 {
			t.Fatal("nil gauge has a value")
		}
		h := reg.Histogram("z")
		h.Observe(time.Second)
		if h.Count() != 0 {
			t.Fatal("nil histogram has observations")
		}
		reg.GaugeFunc("f", func() int64 { return 1 })
		s := reg.Snapshot()
		if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
			t.Fatal("nop snapshot not empty")
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterAddDisabled(b *testing.B) {
	c := NewNop().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i))
	}
}
