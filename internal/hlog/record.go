// Package hlog implements FASTER's HybridLog (Sec. 5.1 of the CPR paper): a
// log-structured record store whose logical address space spans main memory
// and secondary storage. The tail portion lives in in-memory page frames; the
// read-only offset splits the in-memory part into an immutable region and a
// mutable region updated in place; records below the head offset live only on
// the storage device and are fetched with asynchronous reads.
//
// Addresses are byte offsets into the logical log, always 8-byte aligned.
// Address values below FirstAddress are invalid (zero means "no record").
//
// All record memory is accessed through atomic word operations, making the
// log race-free under the Go memory model: the paper's C++ implementation
// performs racy in-place updates, which Go forbids (see DESIGN.md).
package hlog

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// FirstAddress is the smallest valid logical address. Addresses below it
// (in particular 0) denote "invalid / no record".
const FirstAddress = 64

// Header bit layout (word 0 of every record):
//
//	bits  0..47  previous address in this hash chain (48 bits, as in FASTER)
//	bits 48..60  record version (13 bits, as in Sec. 6.2)
//	bit  61      tombstone
//	bit  62      invalid (set during recovery for post-CPR-point records)
//	bit  63      lock (in-place value update latch; Go race-freedom tax)
const (
	prevMask     = (uint64(1) << 48) - 1
	versionShift = 48
	versionBits  = 13
	versionMask  = (uint64(1)<<versionBits - 1) << versionShift
	tombstoneBit = uint64(1) << 61
	invalidBit   = uint64(1) << 62
	lockBit      = uint64(1) << 63
)

// MaxVersion is the largest representable record version (13 bits).
const MaxVersion = 1<<versionBits - 1

// Lens word layout (word 1 of every record):
//
//	bits  0..15  key length in bytes
//	bits 16..39  value length in bytes
//	bits 40..63  value capacity in bytes (in-place updates may grow to this)
const (
	keyLenBits = 16
	valLenBits = 24
	maxKeyLen  = 1<<keyLenBits - 1
	maxValLen  = 1<<valLenBits - 1
)

// MakeHeader packs a record header word.
func MakeHeader(prev uint64, version uint16) uint64 {
	return (prev & prevMask) | (uint64(version) << versionShift & versionMask)
}

func makeLens(keyLen, valLen, valCap int) uint64 {
	return uint64(keyLen) | uint64(valLen)<<keyLenBits | uint64(valCap)<<(keyLenBits+valLenBits)
}

func splitLens(w uint64) (keyLen, valLen, valCap int) {
	keyLen = int(w & maxKeyLen)
	valLen = int(w >> keyLenBits & maxValLen)
	valCap = int(w >> (keyLenBits + valLenBits) & maxValLen)
	return
}

func wordsFor(n int) int { return (n + 7) / 8 }

// RecordSize returns the total record footprint in bytes for a key of keyLen
// bytes and a value capacity of valCap bytes.
func RecordSize(keyLen, valCap int) uint32 {
	return uint32(8 * (2 + wordsFor(keyLen) + wordsFor(valCap)))
}

// RecordRef is a view over one record's words, either inside a live page
// frame (shared, concurrently updated) or a private copy read from storage.
// The zero RecordRef is invalid.
type RecordRef struct {
	words []uint64
}

// Valid reports whether the ref points at a record.
func (r RecordRef) Valid() bool { return len(r.words) >= 2 }

func (r RecordRef) hdr() *uint64 { return &r.words[0] }

// Header atomically loads the header word.
func (r RecordRef) Header() uint64 { return atomic.LoadUint64(r.hdr()) }

// Prev returns the previous address in the record's hash chain.
func (r RecordRef) Prev() uint64 { return r.Header() & prevMask }

// Version returns the record's 13-bit CPR version.
func (r RecordRef) Version() uint16 {
	return uint16((r.Header() & versionMask) >> versionShift)
}

// Tombstone reports whether the record is a deletion marker.
func (r RecordRef) Tombstone() bool { return r.Header()&tombstoneBit != 0 }

// Invalid reports whether recovery marked the record invalid.
func (r RecordRef) Invalid() bool { return r.Header()&invalidBit != 0 }

// SetTombstone marks the record as a deletion marker.
func (r RecordRef) SetTombstone() {
	for {
		h := atomic.LoadUint64(r.hdr())
		if atomic.CompareAndSwapUint64(r.hdr(), h, h|tombstoneBit) {
			return
		}
	}
}

// SetInvalid marks the record invalid (used by recovery, Alg. 3).
func (r RecordRef) SetInvalid() {
	for {
		h := atomic.LoadUint64(r.hdr())
		if atomic.CompareAndSwapUint64(r.hdr(), h, h|invalidBit) {
			return
		}
	}
}

// Lock acquires the record's in-place-update latch by spinning on the
// header's lock bit.
func (r RecordRef) Lock() {
	for {
		h := atomic.LoadUint64(r.hdr())
		if h&lockBit == 0 && atomic.CompareAndSwapUint64(r.hdr(), h, h|lockBit) {
			return
		}
	}
}

// Unlock releases the latch taken by Lock.
func (r RecordRef) Unlock() {
	for {
		h := atomic.LoadUint64(r.hdr())
		if atomic.CompareAndSwapUint64(r.hdr(), h, h&^lockBit) {
			return
		}
	}
}

func (r RecordRef) lens() uint64 { return atomic.LoadUint64(&r.words[1]) }

// KeyLen returns the key length in bytes.
func (r RecordRef) KeyLen() int { k, _, _ := splitLens(r.lens()); return k }

// ValueLen returns the current value length in bytes.
func (r RecordRef) ValueLen() int { _, v, _ := splitLens(r.lens()); return v }

// ValueCap returns the value capacity in bytes.
func (r RecordRef) ValueCap() int { _, _, c := splitLens(r.lens()); return c }

// Size returns the record's total footprint in bytes.
func (r RecordRef) Size() uint32 {
	k, _, c := splitLens(r.lens())
	return RecordSize(k, c)
}

func (r RecordRef) keyWords() []uint64 {
	k, _, _ := splitLens(r.lens())
	return r.words[2 : 2+wordsFor(k)]
}

func (r RecordRef) valueWords() []uint64 {
	k, _, c := splitLens(r.lens())
	start := 2 + wordsFor(k)
	return r.words[start : start+wordsFor(c)]
}

// KeyEquals compares the record's key to key without allocating.
func (r RecordRef) KeyEquals(key []byte) bool {
	if r.KeyLen() != len(key) {
		return false
	}
	return wordsEqualBytes(r.keyWords(), key)
}

// Key appends the record's key to dst and returns the result.
func (r RecordRef) Key(dst []byte) []byte {
	k, _, _ := splitLens(r.lens())
	return appendWordsAsBytes(dst, r.keyWords(), k)
}

// Value appends the record's current value to dst and returns the result.
// For values longer than 8 bytes the read is performed under the record
// latch so it is never torn.
func (r RecordRef) Value(dst []byte) []byte {
	_, v, _ := splitLens(r.lens())
	if v == 0 {
		return dst
	}
	if v <= 8 && r.ValueCap() >= 1 {
		var w [8]byte
		binary.LittleEndian.PutUint64(w[:], atomic.LoadUint64(&r.valueWords()[0]))
		return append(dst, w[:v]...)
	}
	r.Lock()
	_, v, _ = splitLens(r.lens())
	dst = appendWordsAsBytes(dst, r.valueWords(), v)
	r.Unlock()
	return dst
}

// ValueUint64 atomically reads an 8-byte value's word. It is only meaningful
// for records whose value is exactly 8 bytes.
func (r RecordRef) ValueUint64() uint64 { return atomic.LoadUint64(&r.valueWords()[0]) }

// SetValueUint64 atomically stores an 8-byte value.
func (r RecordRef) SetValueUint64(v uint64) { atomic.StoreUint64(&r.valueWords()[0], v) }

// SetValue performs an in-place value update. It returns false when val does
// not fit the record's value capacity. Updates longer than 8 bytes happen
// under the record latch.
func (r RecordRef) SetValue(val []byte) bool {
	k, v, c := splitLens(r.lens())
	if len(val) > c {
		return false
	}
	if c == 8 && v == 8 && len(val) == 8 {
		// Fast path: the stored length already matches, so a single atomic
		// word store suffices.
		atomic.StoreUint64(&r.valueWords()[0], binary.LittleEndian.Uint64(val))
		return true
	}
	r.Lock()
	storeBytesAsWords(r.valueWords(), val)
	atomic.StoreUint64(&r.words[1], makeLens(k, len(val), c))
	r.Unlock()
	return true
}

// UpdateValue runs fn on a private copy of the value under the record latch
// and stores the result in place. It returns false if the result exceeds the
// value capacity (caller must then fall back to read-copy-update).
func (r RecordRef) UpdateValue(fn func(cur []byte) []byte) bool {
	r.Lock()
	k, v, c := splitLens(r.lens())
	cur := appendWordsAsBytes(nil, r.valueWords(), v)
	next := fn(cur)
	if len(next) > c {
		r.Unlock()
		return false
	}
	storeBytesAsWords(r.valueWords(), next)
	atomic.StoreUint64(&r.words[1], makeLens(k, len(next), c))
	r.Unlock()
	return true
}

// initRecord fills a freshly allocated record region. The region is not yet
// published (no index entry points at it), so plain stores are safe here;
// we still use atomic stores to keep the race detector and the epoch-based
// flush argument airtight.
func initRecord(words []uint64, prev uint64, version uint16, key, value []byte, valCap int) {
	if valCap < len(value) {
		valCap = len(value)
	}
	atomic.StoreUint64(&words[1], makeLens(len(key), len(value), valCap))
	kw := wordsFor(len(key))
	storeBytesAsWords(words[2:2+kw], key)
	storeBytesAsWords(words[2+kw:2+kw+wordsFor(valCap)], value)
	// Header last: a concurrent scanner treats header==0 as "empty space".
	atomic.StoreUint64(&words[0], MakeHeader(prev, version))
}

// validateKV bounds-checks key/value sizes against the record format.
func validateKV(key, value []byte, valCap int) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("hlog: key length %d out of range [1,%d]", len(key), maxKeyLen)
	}
	if len(value) > maxValLen || valCap > maxValLen {
		return fmt.Errorf("hlog: value length %d/cap %d exceeds %d", len(value), valCap, maxValLen)
	}
	return nil
}

// --- word <-> byte packing helpers (little-endian) ---

func storeBytesAsWords(dst []uint64, b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		atomic.StoreUint64(&dst[i/8], binary.LittleEndian.Uint64(b[i:]))
	}
	if i < len(b) {
		var w [8]byte
		copy(w[:], b[i:])
		atomic.StoreUint64(&dst[i/8], binary.LittleEndian.Uint64(w[:]))
	}
}

func appendWordsAsBytes(dst []byte, words []uint64, n int) []byte {
	var w [8]byte
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(w[:], atomic.LoadUint64(&words[i/8]))
		take := n - i
		if take > 8 {
			take = 8
		}
		dst = append(dst, w[:take]...)
	}
	return dst
}

func wordsEqualBytes(words []uint64, b []byte) bool {
	var w [8]byte
	for i := 0; i < len(b); i += 8 {
		binary.LittleEndian.PutUint64(w[:], atomic.LoadUint64(&words[i/8]))
		take := len(b) - i
		if take > 8 {
			take = 8
		}
		for j := 0; j < take; j++ {
			if w[j] != b[i+j] {
				return false
			}
		}
	}
	return true
}
