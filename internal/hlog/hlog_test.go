package hlog

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/epoch"
	"repro/internal/storage"
)

func newTestLog(t *testing.T, pageBits uint, memPages int) (*Log, *epoch.Manager) {
	t.Helper()
	em := epoch.New()
	l, err := New(Config{
		PageBits: pageBits, MemPages: memPages,
		Device: storage.NewMemDevice(), Epochs: em,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(l.Close)
	return l, em
}

func key64(k uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], k)
	return b[:]
}

func TestHeaderPacking(t *testing.T) {
	h := MakeHeader(0xABCDEF012345, 777)
	r := RecordRef{words: []uint64{h, makeLens(8, 8, 8), 0, 0}}
	if r.Prev() != 0xABCDEF012345 {
		t.Fatalf("prev = %x", r.Prev())
	}
	if r.Version() != 777 {
		t.Fatalf("version = %d", r.Version())
	}
	if r.Tombstone() || r.Invalid() {
		t.Fatal("fresh header has flag bits set")
	}
}

func TestRecordSizeAlignment(t *testing.T) {
	cases := []struct {
		k, v int
		want uint32
	}{
		{8, 8, 32},
		{1, 1, 32},
		{9, 8, 40},
		{8, 100, 128},
	}
	for _, c := range cases {
		if got := RecordSize(c.k, c.v); got != c.want {
			t.Errorf("RecordSize(%d,%d) = %d, want %d", c.k, c.v, got, c.want)
		}
	}
}

func TestAllocateWriteRead(t *testing.T) {
	l, em := newTestLog(t, 14, 8)
	g := em.Acquire()
	defer g.Release()

	key := key64(42)
	val := []byte("hello")
	size := RecordSize(len(key), len(val))
	addr := l.Allocate(g, size)
	if addr != FirstAddress {
		t.Fatalf("first addr = %d, want %d", addr, FirstAddress)
	}
	if err := l.WriteRecord(addr, 0, 3, key, val, len(val)); err != nil {
		t.Fatal(err)
	}
	rec := l.Record(addr)
	if !rec.KeyEquals(key) {
		t.Fatal("key mismatch")
	}
	if got := rec.Value(nil); !bytes.Equal(got, val) {
		t.Fatalf("value = %q", got)
	}
	if rec.Version() != 3 {
		t.Fatalf("version = %d", rec.Version())
	}
	if rec.Prev() != 0 {
		t.Fatalf("prev = %d", rec.Prev())
	}
}

func TestInPlaceUpdate(t *testing.T) {
	l, em := newTestLog(t, 14, 8)
	g := em.Acquire()
	defer g.Release()

	key := key64(7)
	addr := l.Allocate(g, RecordSize(8, 16))
	if err := l.WriteRecord(addr, 0, 1, key, []byte("short"), 16); err != nil {
		t.Fatal(err)
	}
	rec := l.Record(addr)
	if !rec.SetValue([]byte("a longer value!!")) { // 16 bytes, fits cap
		t.Fatal("SetValue rejected fitting value")
	}
	if got := rec.Value(nil); string(got) != "a longer value!!" {
		t.Fatalf("value = %q", got)
	}
	if rec.SetValue(make([]byte, 17)) {
		t.Fatal("SetValue accepted oversized value")
	}
}

func TestUpdateValueRMW(t *testing.T) {
	l, em := newTestLog(t, 14, 8)
	g := em.Acquire()
	defer g.Release()

	addr := l.Allocate(g, RecordSize(8, 8))
	var v0 [8]byte
	if err := l.WriteRecord(addr, 0, 1, key64(1), v0[:], 8); err != nil {
		t.Fatal(err)
	}
	rec := l.Record(addr)
	for i := 0; i < 10; i++ {
		ok := rec.UpdateValue(func(cur []byte) []byte {
			n := binary.LittleEndian.Uint64(cur)
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], n+5)
			return out[:]
		})
		if !ok {
			t.Fatal("UpdateValue failed")
		}
	}
	if got := rec.ValueUint64(); got != 50 {
		t.Fatalf("value = %d, want 50", got)
	}
}

func TestConcurrentRMWCounter(t *testing.T) {
	l, em := newTestLog(t, 16, 8)
	g := em.Acquire()
	addr := l.Allocate(g, RecordSize(8, 8))
	var v0 [8]byte
	if err := l.WriteRecord(addr, 0, 1, key64(1), v0[:], 8); err != nil {
		t.Fatal(err)
	}
	g.Release()

	const threads, perThread = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := l.Record(addr)
			for j := 0; j < perThread; j++ {
				rec.UpdateValue(func(cur []byte) []byte {
					n := binary.LittleEndian.Uint64(cur)
					var out [8]byte
					binary.LittleEndian.PutUint64(out[:], n+1)
					return out[:]
				})
			}
		}()
	}
	wg.Wait()
	if got := l.Record(addr).ValueUint64(); got != threads*perThread {
		t.Fatalf("counter = %d, want %d", got, threads*perThread)
	}
}

func TestPageCrossingAndOffsets(t *testing.T) {
	l, em := newTestLog(t, 12, 8) // 4 KiB pages
	g := em.Acquire()
	defer g.Release()

	size := RecordSize(8, 8) // 32 bytes
	var addrs []uint64
	for i := 0; i < 1000; i++ {
		addr := l.Allocate(g, size)
		if err := l.WriteRecord(addr, 0, 1, key64(uint64(i)), key64(uint64(i*10)), 8); err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, addr)
	}
	// Addresses strictly increase and never straddle a page boundary.
	for i, a := range addrs {
		if i > 0 && a <= addrs[i-1] {
			t.Fatalf("addresses not increasing: %d then %d", addrs[i-1], a)
		}
		if a>>12 != (a+uint64(size)-1)>>12 {
			t.Fatalf("record at %d straddles page boundary", a)
		}
	}
	if l.Tail() <= l.ReadOnly() && l.ReadOnly() != FirstAddress {
		t.Fatalf("tail %d <= readOnly %d", l.Tail(), l.ReadOnly())
	}
	// All records still readable (in memory or on device via Scan).
	n := 0
	err := l.Scan(FirstAddress, l.Tail(), func(addr uint64, rec RecordRef) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("scan found %d records, want 1000", n)
	}
}

func TestEvictionAndDiskRead(t *testing.T) {
	l, em := newTestLog(t, 12, 4) // tiny: 4 KiB pages, 4 frames
	g := em.Acquire()
	defer g.Release()

	size := RecordSize(8, 8)
	var first uint64
	const n = 2000 // ~64 KB of records >> 16 KB of memory
	for i := 0; i < n; i++ {
		addr := l.Allocate(g, size)
		if i == 0 {
			first = addr
		}
		if err := l.WriteRecord(addr, 0, 1, key64(uint64(i)), key64(uint64(i)*3), 8); err != nil {
			t.Fatal(err)
		}
	}
	if l.InMemory(first) {
		t.Fatalf("first record still in memory; head=%d", l.Head())
	}
	rec, err := l.ReadRecordSync(first)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.KeyEquals(key64(0)) {
		t.Fatal("evicted record key mismatch")
	}
	if got := rec.ValueUint64(); got != 0 {
		t.Fatalf("evicted record value = %d", got)
	}

	// Async path too.
	done := make(chan error, 1)
	l.AsyncRead(first+uint64(size), func(r RecordRef, err error) {
		if err == nil && !r.KeyEquals(key64(1)) {
			err = fmt.Errorf("key mismatch on async read")
		}
		done <- err
	})
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestFoldOverFlush(t *testing.T) {
	l, em := newTestLog(t, 13, 8)
	g := em.Acquire()
	defer g.Release()

	size := RecordSize(8, 8)
	for i := 0; i < 100; i++ {
		addr := l.Allocate(g, size)
		if err := l.WriteRecord(addr, 0, 1, key64(uint64(i)), key64(uint64(i)), 8); err != nil {
			t.Fatal(err)
		}
	}
	target := l.Tail()
	l.ShiftReadOnlyTo(target)
	g.Refresh() // let the epoch action fire
	l.WaitDurable(target)
	if l.Durable() < target {
		t.Fatalf("durable = %d < target %d", l.Durable(), target)
	}
	// Device must now contain the flushed records.
	rec, err := l.ReadRecordSync(FirstAddress)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.KeyEquals(key64(0)) {
		t.Fatal("flushed record mismatch")
	}
}

func TestSnapshotAndRestore(t *testing.T) {
	l, em := newTestLog(t, 13, 8)
	g := em.Acquire()
	size := RecordSize(8, 8)
	for i := 0; i < 50; i++ {
		addr := l.Allocate(g, size)
		if err := l.WriteRecord(addr, 0, 2, key64(uint64(i)), key64(uint64(i)+100), 8); err != nil {
			t.Fatal(err)
		}
	}
	end := l.Tail()
	snap, err := l.SnapshotRange(FirstAddress, end)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	l.Close()

	// Fresh log + device; restore the snapshot into the address space.
	em2 := epoch.New()
	dev := storage.NewMemDevice()
	l2, err := New(Config{PageBits: 13, MemPages: 8, Device: dev, Epochs: em2})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.RestoreRange(FirstAddress, snap); err != nil {
		t.Fatal(err)
	}
	if err := l2.RecoverTo(end); err != nil {
		t.Fatal(err)
	}
	if l2.Tail() != end {
		t.Fatalf("recovered tail = %d, want %d", l2.Tail(), end)
	}
	n := 0
	err = l2.Scan(FirstAddress, end, func(addr uint64, rec RecordRef) bool {
		if !rec.KeyEquals(key64(uint64(n))) {
			t.Fatalf("record %d key mismatch", n)
		}
		if rec.ValueUint64() != uint64(n)+100 {
			t.Fatalf("record %d value = %d", n, rec.ValueUint64())
		}
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("recovered %d records, want 50", n)
	}
}

func TestConcurrentAllocation(t *testing.T) {
	l, _ := newTestLog(t, 14, 8)
	em := l.cfg.Epochs
	const threads, per = 8, 2000
	size := RecordSize(8, 8)
	addrs := make([][]uint64, threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g := em.Acquire()
			defer g.Release()
			for j := 0; j < per; j++ {
				addr := l.Allocate(g, size)
				if err := l.WriteRecord(addr, 0, 1, key64(uint64(i)<<32|uint64(j)), key64(uint64(j)), 8); err != nil {
					t.Error(err)
					return
				}
				addrs[i] = append(addrs[i], addr)
				if j%64 == 0 {
					g.Refresh()
				}
			}
		}(i)
	}
	wg.Wait()
	// All addresses globally unique.
	seen := make(map[uint64]bool, threads*per)
	for _, as := range addrs {
		for _, a := range as {
			if seen[a] {
				t.Fatalf("duplicate address %d", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != threads*per {
		t.Fatalf("allocated %d, want %d", len(seen), threads*per)
	}
}

func TestScanSkipsPagePadding(t *testing.T) {
	l, em := newTestLog(t, 12, 8) // 4 KiB page
	g := em.Acquire()
	defer g.Release()
	// 100-byte values -> 128-byte records; 4096-64=4032 on first page,
	// 4032/128=31.5 -> padding at end of page 0.
	val := make([]byte, 100)
	size := RecordSize(8, 100)
	const n = 40
	for i := 0; i < n; i++ {
		addr := l.Allocate(g, size)
		if err := l.WriteRecord(addr, 0, 1, key64(uint64(i)), val, 100); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := l.Scan(FirstAddress, l.Tail(), func(uint64, RecordRef) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("scan found %d, want %d", count, n)
	}
}

func TestQuickLensRoundTrip(t *testing.T) {
	f := func(k uint16, v, c uint32) bool {
		kl := int(k)
		vl := int(v % (1 << 24))
		cl := int(c % (1 << 24))
		gk, gv, gc := splitLens(makeLens(kl, vl, cl))
		return gk == kl && gv == vl && gc == cl
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValueRoundTrip(t *testing.T) {
	l, em := newTestLog(t, 16, 8)
	g := em.Acquire()
	defer g.Release()
	f := func(key, val []byte) bool {
		if len(key) == 0 || len(key) > 64 {
			return true
		}
		if len(val) > 512 {
			val = val[:512]
		}
		addr := l.Allocate(g, RecordSize(len(key), len(val)))
		if err := l.WriteRecord(addr, 0, 1, key, val, len(val)); err != nil {
			return false
		}
		rec := l.Record(addr)
		return rec.KeyEquals(key) && bytes.Equal(rec.Value(nil), val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
